#include "gpgpu/simt_stack.hpp"

namespace mlp::gpgpu {

SimtStack::SimtStack(u32 width) {
  MLP_CHECK(width >= 1 && width <= 64, "warp width out of range");
  const LaneMask all =
      width == 64 ? ~LaneMask{0} : ((LaneMask{1} << width) - 1);
  stack_.push_back({0, kNoReconv, all});
}

void SimtStack::pop_converged() {
  // Classic GPGPU-Sim rule: pop the top while its lanes are all gone or it
  // has reached its reconvergence pc; execution then continues from the
  // entry beneath (the reconvergence placeholder holds the merged mask —
  // masks are nested supersets down the stack).
  while (!stack_.empty()) {
    const Entry& top = stack_.back();
    if (top.mask == 0) {
      stack_.pop_back();
      continue;
    }
    if (top.rpc != kNoReconv && top.pc == top.rpc) {
      stack_.pop_back();
      continue;
    }
    break;
  }
}

void SimtStack::advance(u32 next_pc) {
  MLP_CHECK(!stack_.empty(), "advance on empty stack");
  stack_.back().pc = next_pc;
  pop_converged();
}

bool SimtStack::branch(LaneMask taken, u32 target, u32 fallthrough,
                       u32 reconv) {
  MLP_CHECK(!stack_.empty(), "branch on empty stack");
  Entry& top = stack_.back();
  const LaneMask active = top.mask;
  taken &= active;

  if (taken == active) {  // uniform taken
    top.pc = target;
    pop_converged();
    return false;
  }
  if (taken == 0) {  // uniform not-taken
    top.pc = fallthrough;
    pop_converged();
    return false;
  }

  const LaneMask not_taken = active & ~taken;
  if (reconv != kNoReconv) {
    // The current entry becomes the reconvergence placeholder: it keeps the
    // full mask and waits at `reconv`; the split entries pop when they reach
    // it. (If reconv coincides with this entry's own rpc the placeholder
    // will itself pop at merge time, correctly chaining to the outer join.)
    top.pc = reconv;
    stack_.push_back({fallthrough, reconv, not_taken});
    stack_.push_back({target, reconv, taken});
  } else {
    // No join before exit: split with no placeholder; entries retire as
    // their lanes halt.
    stack_.pop_back();
    stack_.push_back({fallthrough, kNoReconv, not_taken});
    stack_.push_back({target, kNoReconv, taken});
  }
  // A split arm may start exactly at the join (e.g. an if with an empty
  // then-arm): pop it straight away.
  pop_converged();
  return true;
}

void SimtStack::halt_lanes(LaneMask lanes) {
  for (Entry& entry : stack_) entry.mask &= ~lanes;
  pop_converged();
}

}  // namespace mlp::gpgpu
