#pragma once
// Per-warp SIMT reconvergence stack (classic immediate-post-dominator
// scheme, as in GPGPU-Sim). The top entry holds the warp's current pc and
// active mask; divergent branches split the top into taken/fall-through
// entries that re-merge when execution reaches the reconvergence pc.

#include <vector>

#include "common/types.hpp"
#include "isa/cfg.hpp"

namespace mlp::gpgpu {

using LaneMask = u64;

class SimtStack {
 public:
  static constexpr u32 kNoReconv = isa::ReconvergenceTable::kNoReconv;

  /// Starts all `width` lanes active at pc 0.
  explicit SimtStack(u32 width);

  u32 pc() const { return stack_.back().pc; }
  LaneMask active_mask() const { return stack_.back().mask; }
  bool empty() const { return stack_.empty(); }
  size_t depth() const { return stack_.size(); }

  /// Advance the warp past a non-branch instruction to `next_pc`
  /// (next sequential pc or a uniform jump target). Handles reconvergence
  /// pops when next_pc reaches the top entry's rpc.
  void advance(u32 next_pc);

  /// Resolve a branch at the current pc. `taken` holds one bit per lane
  /// (restricted to the active mask). `target` is the taken pc,
  /// `fallthrough` the not-taken pc, `reconv` the IPDom reconvergence pc.
  /// Returns true if the branch diverged.
  bool branch(LaneMask taken, u32 target, u32 fallthrough, u32 reconv);

  /// Permanently deactivate `lanes` (they executed halt) in every entry.
  void halt_lanes(LaneMask lanes);

  bool all_halted() const { return stack_.empty(); }

  struct Entry {
    u32 pc;
    u32 rpc;
    LaneMask mask;
  };

  /// Raw stack view for snapshot capture/restore (sim/snapshot.hpp).
  const std::vector<Entry>& entries() const { return stack_; }
  void restore_entries(std::vector<Entry> entries) {
    stack_ = std::move(entries);
  }

 private:
  void pop_converged();

  std::vector<Entry> stack_;
};

}  // namespace mlp::gpgpu
