#pragma once
// GPGPU streaming multiprocessor timing model. One SM has `cores.cores`
// lanes (32), ganged into warps of `warp_width` lanes (32, or 4 under VWS),
// with `cores.contexts` warps per lane group — so thread count and peak
// issue width match the MIMD architectures exactly, as the paper requires.
//
// Modeled effects (the ones the paper's comparison hinges on):
//  * SIMT divergence via an IPDom reconvergence stack — BMLAs' 70/30
//    data-dependent branches serialize the arms;
//  * shared-memory bank conflicts for the live state (conflict-free under
//    the lane-striped BMLA mapping of Section III-E);
//  * global-access coalescing into 128 B L1 lines + sequential cache-block
//    prefetch (the paper grants the GPGPU baseline a prefetcher);
//  * optionally (VWS-row) the input stream is served by Millipede's row
//    prefetch buffer instead of the L1D.

#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/decode_cache.hpp"
#include "core/functional.hpp"
#include "gpgpu/simt_stack.hpp"
#include "isa/cfg.hpp"
#include "mem/cache.hpp"
#include "mem/prefetcher.hpp"
#include "mem/sharedmem.hpp"
#include "millipede/prefetch_buffer.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::gpgpu {

/// Counters for performance analysis, the energy model and the VWS policy.
struct SmStats {
  Counter warp_instructions, thread_instructions;
  Counter thread_float_ops, thread_local_accesses, thread_global_loads;
  Counter branches, divergent_branches;
  Counter shared_accesses, shared_conflict_cycles;
  Counter global_load_warps, global_lines;
  Counter issue_slots_idle, issue_slots_busy;
  Counter inactive_lane_slots;  ///< lanes clocked but masked off (divergence)

  void register_with(StatSet* stats, const std::string& prefix) {
    if (stats == nullptr) return;
    stats->add(prefix + ".warp_instructions", &warp_instructions);
    stats->add(prefix + ".thread_instructions", &thread_instructions);
    stats->add(prefix + ".thread_float_ops", &thread_float_ops);
    stats->add(prefix + ".thread_local_accesses", &thread_local_accesses);
    stats->add(prefix + ".thread_global_loads", &thread_global_loads);
    stats->add(prefix + ".branches", &branches);
    stats->add(prefix + ".divergent_branches", &divergent_branches);
    stats->add(prefix + ".shared_accesses", &shared_accesses);
    stats->add(prefix + ".shared_conflict_cycles", &shared_conflict_cycles);
    stats->add(prefix + ".global_load_warps", &global_load_warps);
    stats->add(prefix + ".global_lines", &global_lines);
    stats->add(prefix + ".issue_slots_idle", &issue_slots_idle);
    stats->add(prefix + ".issue_slots_busy", &issue_slots_busy);
    stats->add(prefix + ".inactive_lane_slots", &inactive_lane_slots);
  }
};

class StreamingMultiprocessor : public sim::Tickable,
                                public sim::Snapshottable {
 public:
  struct Deps {
    const isa::Program* program = nullptr;
    std::vector<mem::LocalStore>* lane_state = nullptr;  ///< one per lane
    mem::DramImage* dram = nullptr;
    mem::Cache* l1d = nullptr;                        ///< input path (plain)
    mem::SequentialPrefetcher* prefetcher = nullptr;  ///< optional
    millipede::PrefetchBuffer* pb = nullptr;          ///< input path (row)
    const mem::SharedMemBanking* banking = nullptr;
    SmStats* stats = nullptr;
    trace::TraceSession* trace = nullptr;
    core::DecodedBlockCache* dcache = nullptr;  ///< optional fast path
  };

  StreamingMultiprocessor(const MachineConfig& cfg, u32 warp_width, Deps deps);

  /// Thread context for (group, warp slot, lane-in-warp); the system
  /// initializes CSRs through this before running.
  core::Context& context(u32 group, u32 slot, u32 lane);

  /// One compute-clock edge: each lane group may issue one warp instruction.
  void tick(Picos now, Picos period_ps) override;

  /// Earliest edge with SM-side work: `now` while any warp has MSHR-bounced
  /// lines to replay (the replay touches L1 counters every edge), otherwise
  /// the soonest wake-up among non-waiting, non-halted warps.
  Picos next_event(Picos now) const override;

  /// Bulk idle accounting for fast-forwarded edges: every live lane group
  /// charges an idle issue slot and `warp_width` inactive lane slots per
  /// edge, matching tick()'s nothing-runnable path.
  void skip_idle(u64 edges) override;

  bool halted() const;

  u32 warp_width() const { return warp_width_; }
  u32 groups() const { return groups_; }

  // sim::Snapshottable: every warp's SIMT stack, lane contexts and timing
  // fields, the per-group schedulers and the per-lane local state. A warp
  // with outstanding fills or bounced lines holds callback/replay state, so
  // capture waits for all of those to drain.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;
  bool quiescent() const override {
    for (const Warp& warp : warps_) {
      if (warp.waiting || warp.outstanding != 0 || !warp.retry_lines.empty()) {
        return false;
      }
    }
    return true;
  }

  /// Per-warp scheduling state (waiting, outstanding fills, lane PCs) for
  /// watchdog diagnostics.
  std::string debug_dump() const;

 private:
  struct Warp {
    SimtStack stack;
    std::vector<core::Context> lanes;
    bool waiting = false;     ///< blocked on outstanding global fills
    Picos ready_at = 0;
    u32 outstanding = 0;
    Picos latest_fill = 0;
    Picos wait_began = 0;  ///< issue time of the blocking load (trace)
    u32 track = 0;         ///< trace track id (warp index)
    std::vector<Addr> retry_lines;  ///< lines bounced by a full MSHR

    explicit Warp(u32 width) : stack(width), lanes(width) {}
    bool runnable(Picos now) const {
      return !waiting && !stack.all_halted() && ready_at <= now;
    }
  };

  void issue(Warp& warp, u32 group, Picos now, Picos period_ps);
  void start_line_fill(Warp& warp, Addr line, Picos now);
  /// One outstanding line/word fill arrived at `at`; releases the warp (and
  /// closes its trace stall slice) when it was the last one.
  void fill_done(Warp& warp, Picos at);
  /// Marks the warp blocked on global fills, latching the stall begin time.
  void begin_wait(Warp& warp, Picos now) {
    if (!warp.waiting) warp.wait_began = now;
    warp.waiting = true;
  }
  u32 lane_id(u32 group, u32 lane_in_warp) const {
    return group * warp_width_ + lane_in_warp;
  }

  MachineConfig cfg_;
  u32 warp_width_;
  u32 groups_;
  Deps deps_;
  isa::ReconvergenceTable reconv_;

  /// warps_[group * contexts + slot]
  std::vector<Warp> warps_;
  std::vector<u32> rr_;  ///< per-group round-robin cursor
};

}  // namespace mlp::gpgpu
