#include "gpgpu/sm.hpp"

#include <bit>

#include <algorithm>
#include <cstdio>
#include <set>

namespace mlp::gpgpu {

StreamingMultiprocessor::StreamingMultiprocessor(const MachineConfig& cfg,
                                                 u32 warp_width, Deps deps)
    : cfg_(cfg),
      warp_width_(warp_width),
      groups_(cfg.core.cores / warp_width),
      deps_(deps),
      reconv_(isa::ReconvergenceTable::build(*deps.program)),
      rr_(groups_, 0) {
  MLP_CHECK(cfg.core.cores % warp_width == 0, "width must divide lanes");
  MLP_CHECK(deps_.program != nullptr && deps_.lane_state != nullptr &&
                deps_.dram != nullptr && deps_.banking != nullptr &&
                deps_.stats != nullptr,
            "SM wiring incomplete");
  MLP_CHECK(deps_.l1d != nullptr || deps_.pb != nullptr,
            "SM needs an input path (L1D or prefetch buffer)");
  MLP_CHECK(deps_.lane_state->size() == cfg.core.cores,
            "one live-state store per lane");
  warps_.reserve(static_cast<size_t>(groups_) * cfg.core.contexts);
  for (u32 g = 0; g < groups_; ++g) {
    for (u32 s = 0; s < cfg.core.contexts; ++s) warps_.emplace_back(warp_width_);
  }
  for (u32 i = 0; i < warps_.size(); ++i) warps_[i].track = i;
}

void StreamingMultiprocessor::fill_done(Warp& warp, Picos at) {
  warp.latest_fill = std::max(warp.latest_fill, at);
  MLP_CHECK(warp.outstanding > 0, "spurious fill");
  if (--warp.outstanding == 0) {
    if (deps_.trace != nullptr && warp.waiting) {
      deps_.trace->emit(trace::Domain::kCompute,
                        trace::EventKind::kStallBegin, warp.wait_began,
                        warp.track);
      deps_.trace->emit(trace::Domain::kCompute, trace::EventKind::kStallEnd,
                        warp.latest_fill, warp.track);
    }
    warp.waiting = false;
    warp.ready_at = warp.latest_fill;
  }
}

core::Context& StreamingMultiprocessor::context(u32 group, u32 slot,
                                                u32 lane) {
  MLP_CHECK(group < groups_ && slot < cfg_.core.contexts && lane < warp_width_,
            "context index out of range");
  return warps_[group * cfg_.core.contexts + slot].lanes[lane];
}

bool StreamingMultiprocessor::halted() const {
  for (const Warp& warp : warps_) {
    if (!warp.stack.all_halted()) return false;
  }
  return true;
}

void StreamingMultiprocessor::save_state(sim::SnapshotWriter& w) const {
  MLP_SIM_CHECK(quiescent(), "snapshot",
                "SM captured with outstanding global fills");
  w.put_u32(static_cast<u32>(warps_.size()));
  w.put_u32(warp_width_);
  for (const Warp& warp : warps_) {
    const auto& stack = warp.stack.entries();
    w.put_u32(static_cast<u32>(stack.size()));
    for (const SimtStack::Entry& entry : stack) {
      w.put_u32(entry.pc);
      w.put_u32(entry.rpc);
      w.put_u64(entry.mask);
    }
    for (const core::Context& ctx : warp.lanes) {
      for (const u32 reg : ctx.regs) w.put_u32(reg);
      w.put_u32(ctx.pc);
      for (const u32 value : ctx.csr.values) w.put_u32(value);
      w.put_u64(ctx.instret);
    }
    w.put_u64(warp.ready_at);
    w.put_u64(warp.latest_fill);
  }
  for (const u32 cursor : rr_) w.put_u32(cursor);
  w.put_u64(deps_.lane_state->size());
  for (const mem::LocalStore& state : *deps_.lane_state) {
    const std::vector<u32>& words = state.words();
    w.put_u64(words.size());
    for (const u32 word : words) w.put_u32(word);
  }
}

void StreamingMultiprocessor::restore_state(sim::SnapshotCursor& r) {
  const u32 warps = r.get_u32();
  const u32 width = r.get_u32();
  MLP_SIM_CHECK(warps == warps_.size() && width == warp_width_, "snapshot",
                "snapshot warp geometry does not match this SM");
  for (Warp& warp : warps_) {
    const u32 depth = r.get_u32();
    std::vector<SimtStack::Entry> stack(depth);
    for (SimtStack::Entry& entry : stack) {
      entry.pc = r.get_u32();
      entry.rpc = r.get_u32();
      entry.mask = r.get_u64();
    }
    warp.stack.restore_entries(std::move(stack));
    for (core::Context& ctx : warp.lanes) {
      for (u32& reg : ctx.regs) reg = r.get_u32();
      ctx.pc = r.get_u32();
      for (u32& value : ctx.csr.values) value = r.get_u32();
      ctx.instret = r.get_u64();
    }
    warp.ready_at = r.get_u64();
    warp.latest_fill = r.get_u64();
    warp.waiting = false;
    warp.outstanding = 0;
    warp.retry_lines.clear();
  }
  for (u32& cursor : rr_) cursor = r.get_u32();
  const u64 lanes = r.get_u64();
  MLP_SIM_CHECK(lanes == deps_.lane_state->size(), "snapshot",
                "snapshot lane count does not match this SM");
  for (mem::LocalStore& state : *deps_.lane_state) {
    std::vector<u32>& words = state.words();
    const u64 size = r.get_u64();
    MLP_SIM_CHECK(size == words.size(), "snapshot",
                  "snapshot lane-state size does not match this SM");
    for (u32& word : words) word = r.get_u32();
  }
}

std::string StreamingMultiprocessor::debug_dump() const {
  std::string out;
  char line[160];
  for (u32 g = 0; g < groups_; ++g) {
    for (u32 s = 0; s < cfg_.core.contexts; ++s) {
      const Warp& warp = warps_[g * cfg_.core.contexts + s];
      std::snprintf(line, sizeof(line),
                    "  warp[%u.%u] halted=%d waiting=%d outstanding=%u "
                    "ready_at=%llu pc0=%u\n",
                    g, s, warp.stack.all_halted() ? 1 : 0,
                    warp.waiting ? 1 : 0, warp.outstanding,
                    static_cast<unsigned long long>(warp.ready_at),
                    warp.lanes.empty() ? 0 : warp.lanes.front().pc);
      out += line;
    }
  }
  return out;
}

void StreamingMultiprocessor::tick(Picos now, Picos period_ps) {
  for (u32 g = 0; g < groups_; ++g) {
    // Retry lines previously bounced by a full MSHR (their `outstanding`
    // slots are already counted; only the L1 access is replayed).
    for (u32 s = 0; s < cfg_.core.contexts; ++s) {
      Warp& warp = warps_[g * cfg_.core.contexts + s];
      while (!warp.retry_lines.empty()) {
        const Addr line = warp.retry_lines.back();
        const auto status = deps_.l1d->access(
            line, /*is_write=*/false, now,
            [this, &warp](Picos at) { fill_done(warp, at); });
        if (status == mem::AccessStatus::kMshrFull) break;
        warp.retry_lines.pop_back();
        if (status == mem::AccessStatus::kHit) {
          fill_done(warp, now + deps_.l1d->hit_latency_ps());
        }
      }
    }
    // Issue one ready warp from this lane group (round robin).
    Warp* chosen = nullptr;
    for (u32 i = 0; i < cfg_.core.contexts; ++i) {
      const u32 slot = (rr_[g] + i) % cfg_.core.contexts;
      Warp& warp = warps_[g * cfg_.core.contexts + slot];
      if (warp.runnable(now)) {
        chosen = &warp;
        rr_[g] = (slot + 1) % cfg_.core.contexts;
        break;
      }
    }
    if (chosen == nullptr) {
      bool group_live = false;
      for (u32 s = 0; s < cfg_.core.contexts; ++s) {
        group_live |= !warps_[g * cfg_.core.contexts + s].stack.all_halted();
      }
      if (group_live) {
        deps_.stats->issue_slots_idle.inc();
        // An idle lane group still clocks all its lanes.
        deps_.stats->inactive_lane_slots.inc(warp_width_);
      }
      continue;
    }
    deps_.stats->issue_slots_busy.inc();
    issue(*chosen, g, now, period_ps);
  }
}

Picos StreamingMultiprocessor::next_event(Picos now) const {
  Picos at = sim::kNoEvent;
  for (const Warp& warp : warps_) {
    // MSHR-bounced line replays are retried (and counted) every edge.
    if (!warp.retry_lines.empty()) return now;
    if (warp.waiting || warp.stack.all_halted()) continue;
    at = std::min(at, std::max(warp.ready_at, now));
  }
  return at;
}

void StreamingMultiprocessor::skip_idle(u64 edges) {
  for (u32 g = 0; g < groups_; ++g) {
    bool group_live = false;
    for (u32 s = 0; s < cfg_.core.contexts; ++s) {
      group_live |= !warps_[g * cfg_.core.contexts + s].stack.all_halted();
    }
    if (group_live) {
      deps_.stats->issue_slots_idle.inc(edges);
      deps_.stats->inactive_lane_slots.inc(edges * warp_width_);
    }
  }
}

void StreamingMultiprocessor::issue(Warp& warp, u32 group, Picos now,
                                    Picos period_ps) {
  const u32 pc = warp.stack.pc();
  const LaneMask mask = warp.stack.active_mask();
  // Decode accounting is unconditional (counters stay bit-identical with
  // --no-block-cache); the predecoded dispatch below is what the flag gates.
  const core::DecodedInstr* de =
      deps_.dcache != nullptr ? &deps_.dcache->entry(pc) : nullptr;
  const bool fast = de != nullptr && deps_.dcache->dispatch_enabled();
  const isa::Instr& instr = fast ? de->instr : deps_.program->at(pc);
  const core::StepKind kind = fast ? de->kind : core::classify(instr);

  const u64 active_lanes = static_cast<u64>(std::popcount(mask));
  if (deps_.dcache != nullptr && active_lanes > 0) {
    // SIMT convergence batching: the extra active lanes of this warp all
    // execute the one decoded instruction fetched above.
    deps_.dcache->note_batched(active_lanes - 1);
  }
  deps_.stats->warp_instructions.inc();
  deps_.stats->thread_instructions.inc(active_lanes);
  deps_.stats->inactive_lane_slots.inc(warp_width_ - active_lanes);
  if (kind == core::StepKind::kFloat) {
    deps_.stats->thread_float_ops.inc(active_lanes);
  } else if (kind == core::StepKind::kLocal) {
    deps_.stats->thread_local_accesses.inc(active_lanes);
  } else if (kind == core::StepKind::kGlobalLoad) {
    deps_.stats->thread_global_loads.inc(active_lanes);
  }

  // Execute all active lanes functionally at the warp pc.
  auto for_active = [&](auto&& fn) {
    for (u32 l = 0; l < warp_width_; ++l) {
      if (mask & (LaneMask{1} << l)) fn(l);
    }
  };
  auto step_lane = [&](u32 l) -> core::StepResult {
    core::Context& ctx = warp.lanes[l];
    ctx.pc = pc;
    mem::LocalStore& state = (*deps_.lane_state)[lane_id(group, l)];
    return fast ? core::step_decoded(*de, ctx, state, *deps_.dram)
                : core::step(ctx, *deps_.program, state, *deps_.dram);
  };

  switch (kind) {
    case core::StepKind::kAlu:
    case core::StepKind::kFloat:
    case core::StepKind::kCsr: {
      for_active([&](u32 l) { step_lane(l); });
      warp.stack.advance(pc + 1);
      warp.ready_at = now + period_ps;
      break;
    }
    case core::StepKind::kLocal: {
      // Gather each lane's shared-memory address for the conflict model.
      std::vector<mem::SharedMemBanking::LaneAccess> accesses;
      for_active([&](u32 l) {
        core::Context& ctx = warp.lanes[l];
        accesses.push_back(
            {lane_id(group, l),
             ctx.reg(instr.rs1) + static_cast<u32>(instr.imm)});
        step_lane(l);
      });
      const u32 conflicts = deps_.banking->conflict_cycles(accesses);
      deps_.stats->shared_accesses.inc();
      if (conflicts > 1) {
        deps_.stats->shared_conflict_cycles.inc(conflicts - 1);
      }
      warp.stack.advance(pc + 1);
      warp.ready_at =
          now + static_cast<Picos>(cfg_.gpgpu.shared_latency + conflicts - 1) *
                    period_ps;
      break;
    }
    case core::StepKind::kBranch: {
      LaneMask taken = 0;
      for_active([&](u32 l) {
        if (step_lane(l).branch_taken) taken |= LaneMask{1} << l;
      });
      deps_.stats->branches.inc();
      const u32 target = static_cast<u32>(static_cast<i32>(pc) + instr.imm);
      const bool diverged =
          warp.stack.branch(taken, target, pc + 1, reconv_.at(pc));
      if (diverged) deps_.stats->divergent_branches.inc();
      u32 cycles = 1;
      if (diverged) {
        cycles += cfg_.core.branch_penalty + cfg_.gpgpu.divergence_penalty;
      } else if (taken != 0) {
        cycles += cfg_.core.branch_penalty;
      }
      warp.ready_at = now + static_cast<Picos>(cycles) * period_ps;
      break;
    }
    case core::StepKind::kJump: {
      u32 target = 0;
      bool first = true;
      for_active([&](u32 l) {
        step_lane(l);
        const u32 lane_target = warp.lanes[l].pc;
        if (first) {
          target = lane_target;
          first = false;
        } else {
          MLP_CHECK(target == lane_target, "divergent indirect jump");
        }
      });
      warp.stack.advance(target);
      warp.ready_at =
          now + static_cast<Picos>(1 + cfg_.core.branch_penalty) * period_ps;
      break;
    }
    case core::StepKind::kHalt: {
      for_active([&](u32 l) { step_lane(l); });
      warp.stack.halt_lanes(mask);
      break;
    }
    case core::StepKind::kBarrier: {
      // The software-barrier ablation targets the MIMD machines; SIMT warps
      // are already lockstep within a warp and the kernels never emit `bar`
      // for the SM.
      MLP_CHECK(false, "bar is not supported on the SM");
      break;
    }
    case core::StepKind::kGlobalStore: {
      for_active([&](u32 l) { step_lane(l); });
      warp.stack.advance(pc + 1);
      warp.ready_at = now + period_ps;
      break;
    }
    case core::StepKind::kGlobalLoad: {
      deps_.stats->global_load_warps.inc();
      warp.outstanding = 0;
      warp.latest_fill = now + period_ps;
      if (deps_.pb != nullptr) {
        // Row-oriented input path: per-lane word demands into the prefetch
        // buffer (slab discipline: lane == slab).
        for_active([&](u32 l) {
          core::Context& ctx = warp.lanes[l];
          ctx.pc = pc;
          const Addr addr = core::global_addr(ctx, instr);
          const auto result = deps_.pb->load(
              lane_id(group, l), 0, addr, now,
              [this, &warp](Picos at) { fill_done(warp, at); });
          step_lane(l);
          if (result.status == core::PortStatus::kDone) {
            warp.latest_fill = std::max(warp.latest_fill, result.ready_at);
          } else {
            MLP_CHECK(result.status == core::PortStatus::kPending,
                      "prefetch buffer cannot retry");
            ++warp.outstanding;
          }
        });
      } else {
        // Plain path: coalesce active lanes' addresses into L1 lines.
        std::set<Addr> lines;
        for_active([&](u32 l) {
          core::Context& ctx = warp.lanes[l];
          ctx.pc = pc;
          const Addr addr = core::global_addr(ctx, instr);
          lines.insert(addr & ~static_cast<Addr>(cfg_.gpgpu.line_bytes - 1));
          step_lane(l);
        });
        deps_.stats->global_lines.inc(lines.size());
        for (Addr line : lines) {
          if (deps_.prefetcher != nullptr) {
            for (Addr pf : deps_.prefetcher->observe(line)) {
              deps_.l1d->prefetch(pf, now);
            }
          }
          start_line_fill(warp, line, now);
        }
      }
      warp.stack.advance(pc + 1);
      if (warp.outstanding == 0) {
        warp.ready_at = std::max(warp.latest_fill,
                                 now + static_cast<Picos>(
                                           cfg_.gpgpu.l1_hit_latency) *
                                           period_ps);
      } else {
        begin_wait(warp, now);
      }
      break;
    }
  }
}

void StreamingMultiprocessor::start_line_fill(Warp& warp, Addr line,
                                              Picos now) {
  const auto status = deps_.l1d->access(
      line, /*is_write=*/false, now,
      [this, &warp](Picos at) { fill_done(warp, at); });
  switch (status) {
    case mem::AccessStatus::kHit:
      warp.latest_fill =
          std::max(warp.latest_fill, now + deps_.l1d->hit_latency_ps());
      break;
    case mem::AccessStatus::kMiss:
      ++warp.outstanding;
      begin_wait(warp, now);
      break;
    case mem::AccessStatus::kMshrFull:
      warp.retry_lines.push_back(line);
      ++warp.outstanding;  // accounted so the warp stays blocked
      begin_wait(warp, now);
      break;
  }
}

}  // namespace mlp::gpgpu
