#include "common/stats.hpp"

#include <sstream>

#include "common/error.hpp"

namespace mlp {

void StatSet::add(std::string name, const Counter* counter) {
  MLP_CHECK(counter != nullptr, "null counter");
  MLP_SIM_CHECK(counters_.count(name) == 0, "stat-duplicate",
                "counter already registered: " + name);
  counters_.emplace(std::move(name), counter);
}

void StatSet::add_scalar(std::string name, const double* scalar) {
  MLP_CHECK(scalar != nullptr, "null scalar");
  MLP_SIM_CHECK(scalars_.count(name) == 0, "stat-duplicate",
                "scalar already registered: " + name);
  scalars_.emplace(std::move(name), scalar);
}

u64 StatSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  MLP_SIM_CHECK(it != counters_.end(), "stat-missing",
                "no counter named: " + name);
  return it->second->value;
}

void StatSet::set(const std::string& name, u64 value) {
  auto it = counters_.find(name);
  MLP_SIM_CHECK(it != counters_.end(), "snapshot",
                "snapshot counter not present in this machine: " + name);
  // The registry intentionally stores const pointers (components own their
  // counters); restore is the one sanctioned writer, so cast the const away
  // rather than widen every registration site.
  const_cast<Counter*>(it->second)->value = value;
}

double StatSet::get_scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  MLP_SIM_CHECK(it != scalars_.end(), "stat-missing",
                "no scalar named: " + name);
  return *it->second;
}

std::vector<std::pair<std::string, u64>> StatSet::snapshot() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value);
  return out;
}

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) os << name << " = " << counter->value << "\n";
  for (const auto& [name, scalar] : scalars_) os << name << " = " << *scalar << "\n";
  return os.str();
}

}  // namespace mlp
