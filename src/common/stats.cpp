#include "common/stats.hpp"

#include <sstream>

namespace mlp {

void StatSet::add(std::string name, const Counter* counter) {
  MLP_CHECK(counter != nullptr, "null counter");
  MLP_CHECK(counters_.emplace(std::move(name), counter).second,
            "duplicate counter name");
}

void StatSet::add_scalar(std::string name, const double* scalar) {
  MLP_CHECK(scalar != nullptr, "null scalar");
  MLP_CHECK(scalars_.emplace(std::move(name), scalar).second,
            "duplicate scalar name");
}

u64 StatSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  MLP_CHECK(it != counters_.end(), name.c_str());
  return it->second->value;
}

double StatSet::get_scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  MLP_CHECK(it != scalars_.end(), name.c_str());
  return *it->second;
}

std::vector<std::pair<std::string, u64>> StatSet::snapshot() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value);
  return out;
}

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) os << name << " = " << counter->value << "\n";
  for (const auto& [name, scalar] : scalars_) os << name << " = " << *scalar << "\n";
  return os.str();
}

}  // namespace mlp
