#pragma once
// ASCII table renderer used by the benchmark harness to print paper-shaped
// tables (Fig. 3/4/... rows and Table II/IV). Also emits CSV so results can
// be post-processed.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace mlp {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> headers) { headers_ = std::move(headers); }

  /// Begin a new row; subsequent cell() calls append to it.
  void add_row() { rows_.emplace_back(); }

  void cell(std::string text);
  void cell(double value, int precision = 3);
  void cell(u64 value);

  /// Render with aligned columns and a title rule.
  std::string to_string() const;

  /// Comma-separated form, one header line then one line per row.
  std::string to_csv() const;

  const std::string& title() const { return title_; }
  size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlp
