#pragma once
// Recoverable simulation errors. The simulator distinguishes two failure
// classes:
//
//  * Internal invariant violations (MLP_CHECK) — the simulator's own state is
//    corrupt; continuing would produce subtly wrong "results". These abort.
//  * Data/config-dependent failures (SimError) — one (arch, bench, config)
//    point of a sweep is invalid or ran into a modelled hazard (inconsistent
//    MachineConfig, flow-control deadlock caught by the watchdog,
//    uncorrectable injected memory fault). These throw and are caught at the
//    sim::run_job boundary, so the failing point lands in
//    MatrixResult::error while the rest of the matrix completes.

#include <stdexcept>
#include <string>
#include <utility>

namespace mlp {

/// A recoverable per-job simulation failure. `kind` is a short machine-
/// readable category ("config", "watchdog", "memory-fault"); `diagnostic`
/// optionally carries a multi-line state dump (per-corelet PCs, queue
/// occupancies, ...) for post-mortem reporting.
class SimError : public std::runtime_error {
 public:
  SimError(std::string kind, const std::string& message,
           std::string diagnostic = "")
      : std::runtime_error(kind + ": " + message),
        kind_(std::move(kind)),
        diagnostic_(std::move(diagnostic)) {}

  const std::string& kind() const noexcept { return kind_; }
  const std::string& diagnostic() const noexcept { return diagnostic_; }

 private:
  std::string kind_;
  std::string diagnostic_;
};

}  // namespace mlp

/// Data/config-dependent check in a run path: throws SimError (recoverable at
/// the job boundary) instead of aborting the process. Use MLP_CHECK for true
/// internal invariants.
#define MLP_SIM_CHECK(cond, kind, msg)      \
  do {                                      \
    if (!(cond)) {                          \
      throw ::mlp::SimError((kind), (msg)); \
    }                                       \
  } while (0)
