#pragma once
// Fundamental integer/width aliases and the check macro used across the
// simulator. Kept deliberately tiny: every other header includes this one.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace mlp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Byte address into the simulated machine's global (DRAM) or local space.
using Addr = u64;

/// Simulated wall-clock time in picoseconds. Two clock domains (compute and
/// DRAM channel) are reconciled through this common unit, which also lets
/// dynamic frequency scaling change the compute period mid-run.
using Picos = u64;

}  // namespace mlp

/// Internal invariant check, active in all build types: a simulator that
/// silently corrupts its own state produces subtly wrong "results", which is
/// worse than an abort. Data/config-dependent conditions in run paths use
/// MLP_SIM_CHECK (common/error.hpp) instead, which throws a recoverable
/// SimError. The message is flushed before aborting so it survives ctest and
/// thread-pool output capture.
#define MLP_CHECK(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MLP_CHECK failed in %s at %s:%d: %s\n  %s\n",    \
                   __func__, __FILE__, __LINE__, #cond, msg);                \
      std::fflush(stderr);                                                   \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
