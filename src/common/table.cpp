#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mlp {

void Table::cell(std::string text) {
  MLP_CHECK(!rows_.empty(), "add_row() before cell()");
  rows_.back().push_back(std::move(text));
}

void Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  cell(std::string(buf));
}

void Table::cell(u64 value) { cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      os << text << std::string(widths[c] - text.size() + 2, ' ');
    }
    os << "\n";
  };
  emit(headers_);
  size_t rule = 0;
  for (size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (size_t c = 0; c < headers_.size(); ++c)
    os << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
  return os.str();
}

}  // namespace mlp
