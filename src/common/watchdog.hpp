#pragma once
// Forward-progress watchdog for the architecture step loops. Every
// architecture's main loop advances one clock edge (compute or channel) per
// iteration; a protocol bug or an invalid configuration that slips past the
// fail-fast checks turns that loop into a livelock (e.g. a flow-control
// deadlock: every context blocked on rows beyond the prefetch window, the
// head entry never saturating). The watchdog bounds both failure modes:
//
//  * cycle ceiling — a hard cap on loop iterations (`max_cycles`);
//  * livelock detector — no instruction retired AND no DRAM data movement
//    for `stall_cycles` consecutive iterations;
//  * wall-clock budget — a real-time ceiling (`wall_ms`) for service
//    deployments, where a job that is making nominal progress but will not
//    finish inside the operator's deadline must still be cancelled. Trips
//    with the distinct kind "job-timeout" so clients can tell a genuinely
//    wedged simulation from one that was merely too slow.
//
// On trip it throws SimError("watchdog", ...) (or SimError("job-timeout",
// ...) for the wall-clock budget) carrying the architecture's diagnostic
// dump (per-corelet PC/state, outstanding requests, prefetch buffer
// occupancy, PFT/DF counters), so a hung point in a sweep matrix becomes a
// per-job error instead of a hung pool thread.

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace mlp {

struct WatchdogConfig {
  /// Hard ceiling on main-loop iterations (clock edges across both domains);
  /// 0 disables the ceiling. The default is far beyond any legitimate run of
  /// this simulator's workload sizes.
  u64 max_cycles = 20'000'000'000ull;
  /// Loop iterations without any progress (instructions retired or DRAM
  /// bytes moved) before declaring a livelock; 0 disables the detector. A
  /// live system makes progress every few thousand edges even when rate
  /// matching has slowed compute to its floor.
  u64 stall_cycles = 2'000'000;
  /// Wall-clock budget in milliseconds; 0 disables it. Unlike the cycle
  /// limits this is nondeterministic by nature, so it is OFF by default and
  /// only set by service deployments (mlpserved --job-timeout-ms) where a
  /// client-visible deadline matters more than reproducing the trip point.
  u64 wall_ms = 0;
};

class Watchdog {
 public:
  /// `dump` is invoked only on trip, to snapshot the machine state into the
  /// SimError diagnostic; it may be empty.
  Watchdog(const WatchdogConfig& cfg, std::string arch,
           std::function<std::string()> dump,
           trace::TraceSession* trace = nullptr)
      : cfg_(cfg), arch_(std::move(arch)), dump_(std::move(dump)),
        trace_(trace) {
    if (cfg_.wall_ms != 0) {
      wall_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(cfg_.wall_ms);
    }
  }

  /// Call once per main-loop iteration with a monotonic progress signature
  /// (e.g. instructions retired + DRAM bytes transferred). Throws SimError
  /// on ceiling overrun or livelock. `now` is only used to timestamp the
  /// trip event in an attached trace.
  void step(u64 progress_signature, Picos now = 0) {
    ++iterations_;
    if (progress_signature != last_progress_) {
      last_progress_ = progress_signature;
      stalled_ = 0;
    } else if (cfg_.stall_cycles != 0 && ++stalled_ >= cfg_.stall_cycles) {
      trip(now,
           "no instruction retired and no DRAM response for " +
               std::to_string(stalled_) + " step-loop iterations (livelock)");
    }
    if (cfg_.max_cycles != 0 && iterations_ >= cfg_.max_cycles) {
      trip(now, "cycle ceiling of " + std::to_string(cfg_.max_cycles) +
                    " step-loop iterations exceeded");
    }
    // Amortized wall-clock check: steady_clock::now() per step would double
    // the loop cost, so sample every kWallCheckStride iterations. skip()
    // advances iterations_ too, so a fast-forwarded run still re-checks on
    // its next real step.
    if (cfg_.wall_ms != 0 && iterations_ >= next_wall_check_) {
      next_wall_check_ = iterations_ + kWallCheckStride;
      if (std::chrono::steady_clock::now() >= wall_deadline_) {
        trip(now,
             "wall-clock budget of " + std::to_string(cfg_.wall_ms) +
                 " ms exceeded after " + std::to_string(iterations_) +
                 " step-loop iterations",
             "job-timeout");
      }
    }
  }

  /// How many further step() calls with this (unchanging) progress signature
  /// until the watchdog would trip; ~u64{0} if both limits are disabled. The
  /// kernel's fast-forward refuses to skip across this boundary so a trip
  /// always fires from a real step() at its exact iteration count.
  u64 steps_until_trip(u64 progress_signature) const {
    u64 until = ~u64{0};
    if (cfg_.stall_cycles != 0) {
      until = progress_signature != last_progress_
                  ? cfg_.stall_cycles + 1
                  : cfg_.stall_cycles - stalled_;
    }
    if (cfg_.max_cycles != 0) {
      until = std::min(until, cfg_.max_cycles - iterations_);
    }
    return until;
  }

  /// Bulk-account `edges` skipped loop iterations over which the progress
  /// signature is known constant. Mirrors `edges` consecutive step() calls
  /// exactly — including step()'s quirk that `stalled_` only advances while
  /// the stall detector is enabled. The caller guarantees
  /// `edges < steps_until_trip(progress_signature)`, so no trip can occur.
  void skip(u64 edges, u64 progress_signature) {
    if (edges == 0) return;
    iterations_ += edges;
    if (progress_signature != last_progress_) {
      last_progress_ = progress_signature;
      stalled_ = cfg_.stall_cycles != 0 ? edges - 1 : 0;
    } else if (cfg_.stall_cycles != 0) {
      stalled_ += edges;
    }
  }

  u64 iterations() const { return iterations_; }
  u64 stalled() const { return stalled_; }
  u64 last_progress() const { return last_progress_; }

  /// Snapshot restore (sim/snapshot.hpp): reinstate the deterministic trip
  /// state so cycle-ceiling and livelock trips fire at the exact iteration
  /// they would have in the uninterrupted run. The wall-clock budget
  /// deliberately restarts fresh — it measures THIS process's real time.
  void restore(u64 iterations, u64 stalled, u64 last_progress) {
    iterations_ = iterations;
    stalled_ = stalled;
    last_progress_ = last_progress;
    next_wall_check_ = iterations_ + kWallCheckStride;
  }

 private:
  /// How many step() iterations between steady_clock samples for wall_ms.
  static constexpr u64 kWallCheckStride = 8192;

  [[noreturn]] void trip(Picos now, const std::string& why,
                         const char* kind = "watchdog") const {
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kCompute, trace::EventKind::kWatchdogTrip,
                   now, trace::kWatchdogTrack, iterations_);
    }
    throw SimError(kind, arch_ + ": " + why,
                   dump_ ? dump_() : std::string());
  }

  WatchdogConfig cfg_;
  std::string arch_;
  std::function<std::string()> dump_;
  trace::TraceSession* trace_ = nullptr;
  u64 iterations_ = 0;
  u64 stalled_ = 0;
  u64 last_progress_ = ~u64{0};
  u64 next_wall_check_ = kWallCheckStride;
  std::chrono::steady_clock::time_point wall_deadline_{};
};

}  // namespace mlp
