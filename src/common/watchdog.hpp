#pragma once
// Forward-progress watchdog for the architecture step loops. Every
// architecture's main loop advances one clock edge (compute or channel) per
// iteration; a protocol bug or an invalid configuration that slips past the
// fail-fast checks turns that loop into a livelock (e.g. a flow-control
// deadlock: every context blocked on rows beyond the prefetch window, the
// head entry never saturating). The watchdog bounds both failure modes:
//
//  * cycle ceiling — a hard cap on loop iterations (`max_cycles`);
//  * livelock detector — no instruction retired AND no DRAM data movement
//    for `stall_cycles` consecutive iterations.
//
// On trip it throws SimError("watchdog", ...) carrying the architecture's
// diagnostic dump (per-corelet PC/state, outstanding requests, prefetch
// buffer occupancy, PFT/DF counters), so a hung point in a sweep matrix
// becomes a per-job error instead of a hung pool thread.

#include <algorithm>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace mlp {

struct WatchdogConfig {
  /// Hard ceiling on main-loop iterations (clock edges across both domains);
  /// 0 disables the ceiling. The default is far beyond any legitimate run of
  /// this simulator's workload sizes.
  u64 max_cycles = 20'000'000'000ull;
  /// Loop iterations without any progress (instructions retired or DRAM
  /// bytes moved) before declaring a livelock; 0 disables the detector. A
  /// live system makes progress every few thousand edges even when rate
  /// matching has slowed compute to its floor.
  u64 stall_cycles = 2'000'000;
};

class Watchdog {
 public:
  /// `dump` is invoked only on trip, to snapshot the machine state into the
  /// SimError diagnostic; it may be empty.
  Watchdog(const WatchdogConfig& cfg, std::string arch,
           std::function<std::string()> dump,
           trace::TraceSession* trace = nullptr)
      : cfg_(cfg), arch_(std::move(arch)), dump_(std::move(dump)),
        trace_(trace) {}

  /// Call once per main-loop iteration with a monotonic progress signature
  /// (e.g. instructions retired + DRAM bytes transferred). Throws SimError
  /// on ceiling overrun or livelock. `now` is only used to timestamp the
  /// trip event in an attached trace.
  void step(u64 progress_signature, Picos now = 0) {
    ++iterations_;
    if (progress_signature != last_progress_) {
      last_progress_ = progress_signature;
      stalled_ = 0;
    } else if (cfg_.stall_cycles != 0 && ++stalled_ >= cfg_.stall_cycles) {
      trip(now,
           "no instruction retired and no DRAM response for " +
               std::to_string(stalled_) + " step-loop iterations (livelock)");
    }
    if (cfg_.max_cycles != 0 && iterations_ >= cfg_.max_cycles) {
      trip(now, "cycle ceiling of " + std::to_string(cfg_.max_cycles) +
                    " step-loop iterations exceeded");
    }
  }

  /// How many further step() calls with this (unchanging) progress signature
  /// until the watchdog would trip; ~u64{0} if both limits are disabled. The
  /// kernel's fast-forward refuses to skip across this boundary so a trip
  /// always fires from a real step() at its exact iteration count.
  u64 steps_until_trip(u64 progress_signature) const {
    u64 until = ~u64{0};
    if (cfg_.stall_cycles != 0) {
      until = progress_signature != last_progress_
                  ? cfg_.stall_cycles + 1
                  : cfg_.stall_cycles - stalled_;
    }
    if (cfg_.max_cycles != 0) {
      until = std::min(until, cfg_.max_cycles - iterations_);
    }
    return until;
  }

  /// Bulk-account `edges` skipped loop iterations over which the progress
  /// signature is known constant. Mirrors `edges` consecutive step() calls
  /// exactly — including step()'s quirk that `stalled_` only advances while
  /// the stall detector is enabled. The caller guarantees
  /// `edges < steps_until_trip(progress_signature)`, so no trip can occur.
  void skip(u64 edges, u64 progress_signature) {
    if (edges == 0) return;
    iterations_ += edges;
    if (progress_signature != last_progress_) {
      last_progress_ = progress_signature;
      stalled_ = cfg_.stall_cycles != 0 ? edges - 1 : 0;
    } else if (cfg_.stall_cycles != 0) {
      stalled_ += edges;
    }
  }

  u64 iterations() const { return iterations_; }

 private:
  [[noreturn]] void trip(Picos now, const std::string& why) const {
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kCompute, trace::EventKind::kWatchdogTrip,
                   now, trace::kWatchdogTrack, iterations_);
    }
    throw SimError("watchdog", arch_ + ": " + why,
                   dump_ ? dump_() : std::string());
  }

  WatchdogConfig cfg_;
  std::string arch_;
  std::function<std::string()> dump_;
  trace::TraceSession* trace_ = nullptr;
  u64 iterations_ = 0;
  u64 stalled_ = 0;
  u64 last_progress_ = ~u64{0};
};

}  // namespace mlp
