#pragma once
// Two-domain clock scheduling. The compute domain (corelets / SM / cores,
// nominally 700 MHz) and the DRAM channel domain (1.2 GHz) tick
// independently; the system run loop always advances to whichever domain has
// the earlier next edge. The compute domain's period may be rescaled at run
// time, which is exactly the hook Millipede's DFS rate-matcher uses.

#include "common/types.hpp"
#include "common/units.hpp"

namespace mlp {

class ClockDomain {
 public:
  ClockDomain() = default;
  explicit ClockDomain(Picos period_ps) : period_ps_(period_ps) {
    MLP_CHECK(period_ps_ > 0, "clock period must be positive");
  }

  Picos period_ps() const { return period_ps_; }
  Picos next_edge_ps() const { return next_edge_ps_; }
  u64 ticks() const { return ticks_; }
  double frequency_mhz() const { return mhz_from_period_ps(period_ps_); }

  /// Consume the pending edge: advance the domain to its next edge and
  /// account one tick. The caller performs the domain's per-cycle work.
  void advance() {
    ++ticks_;
    next_edge_ps_ += period_ps_;
  }

  /// Consume `n` consecutive edges at the current period in one step. Used
  /// by the simulation kernel's idle-gap fast-forward; equivalent to calling
  /// advance() `n` times with no work in between.
  void advance_by(u64 n) {
    ticks_ += n;
    next_edge_ps_ += static_cast<Picos>(n) * period_ps_;
  }

  /// Rescale the period (dynamic frequency scaling). Applies from the next
  /// edge onward; the pending edge keeps its already-scheduled time, matching
  /// how a PLL retunes between cycles.
  void set_period_ps(Picos period_ps) {
    MLP_CHECK(period_ps > 0, "clock period must be positive");
    period_ps_ = period_ps;
  }

  /// Align the first edge (used when constructing a system at time zero).
  void reset(Picos first_edge_ps = 0) {
    next_edge_ps_ = first_edge_ps;
    ticks_ = 0;
  }

  /// Snapshot restore (sim/snapshot.hpp): reinstate the exact mid-run edge
  /// grid — period (DFS may have retuned it), pending edge, and tick count.
  void restore(Picos period_ps, Picos next_edge_ps, u64 ticks) {
    MLP_CHECK(period_ps > 0, "clock period must be positive");
    period_ps_ = period_ps;
    next_edge_ps_ = next_edge_ps;
    ticks_ = ticks;
  }

 private:
  Picos period_ps_ = 1;
  Picos next_edge_ps_ = 0;
  u64 ticks_ = 0;
};

}  // namespace mlp
