#pragma once
// Deterministic pseudo-random number generation for workload synthesis.
// A fixed, seedable generator (xoshiro256**) keeps every experiment
// reproducible bit-for-bit across runs and platforms; std::mt19937 would also
// work but distribution implementations vary across standard libraries, so we
// implement the few distributions we need ourselves.

#include <array>
#include <cmath>

#include "common/types.hpp"

namespace mlp {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(u64 seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      u64 z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be nonzero.
  u64 below(u64 bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (no caching of the second variate; the
  /// generators are not on any hot path).
  double gaussian() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipf-distributed integer in [0, n) with exponent s, by inverse CDF over
  /// the precomputable harmonic weights. O(n) per draw is acceptable for the
  /// small n (bin counts) used in workload generation.
  u64 zipf(u64 n, double s) {
    double h = 0.0;
    for (u64 k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
    double target = uniform() * h;
    double acc = 0.0;
    for (u64 k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      if (acc >= target) return k - 1;
    }
    return n - 1;
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

}  // namespace mlp
