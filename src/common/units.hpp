#pragma once
// Unit helpers for frequencies, periods and capacities. The simulator keeps
// all time in picoseconds (see types.hpp); these helpers centralize the
// conversions so off-by-1000 errors cannot scatter across modules.

#include <cmath>

#include "common/types.hpp"

namespace mlp {

inline constexpr u64 kKilo = 1000ull;
inline constexpr u64 kMega = 1000ull * 1000ull;
inline constexpr u64 kGiga = 1000ull * 1000ull * 1000ull;

inline constexpr u64 kKiB = 1024ull;
inline constexpr u64 kMiB = 1024ull * 1024ull;

/// Picoseconds per cycle for a clock of `hz` Hertz, rounded to nearest.
constexpr Picos period_ps_from_hz(double hz) {
  return static_cast<Picos>(1e12 / hz + 0.5);
}

/// Frequency in Hz corresponding to a period in picoseconds.
constexpr double hz_from_period_ps(Picos ps) { return 1e12 / static_cast<double>(ps); }

constexpr double mhz_from_period_ps(Picos ps) { return hz_from_period_ps(ps) / 1e6; }

/// Seconds represented by a picosecond count (for energy = power * time).
constexpr double seconds(Picos ps) { return static_cast<double>(ps) * 1e-12; }

/// True iff x is a nonzero power of two (row sizes, bank counts, ...).
constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 of a power of two.
constexpr u32 log2_exact(u64 x) {
  u32 n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

}  // namespace mlp
