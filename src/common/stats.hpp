#pragma once
// Lightweight named-statistics registry. Components own Counter/Scalar
// members registered into a StatSet so the harness can dump every statistic
// uniformly and tests can assert on individual counters by name.

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mlp {

/// Monotonic event counter.
struct Counter {
  u64 value = 0;
  void inc(u64 by = 1) { value += by; }
  void reset() { value = 0; }
};

/// A set of named statistics. Names are hierarchical by convention
/// ("dram.row_misses"). The set stores pointers to the owning components'
/// counters; it does not own them and must not outlive them.
class StatSet {
 public:
  /// Register a counter/scalar; throws SimError("stat-duplicate") when the
  /// name is already taken (two components claiming one prefix is a wiring
  /// bug, but a recoverable per-job one).
  void add(std::string name, const Counter* counter);
  void add_scalar(std::string name, const double* scalar);

  /// Value of a registered counter; throws SimError("stat-missing") if
  /// absent (recoverable, consistent with the run-path error policy).
  u64 get(const std::string& name) const;

  /// Value of a registered scalar; throws SimError("stat-missing") if absent.
  double get_scalar(const std::string& name) const;

  /// Snapshot restore (sim/snapshot.hpp): overwrite a registered counter
  /// through its owning component. Throws SimError("snapshot") when the name
  /// is not registered in this machine — a snapshot/config mismatch.
  void set(const std::string& name, u64 value);

  bool has(const std::string& name) const { return counters_.count(name) != 0; }

  /// Stable (sorted) name -> value snapshot of all counters.
  std::vector<std::pair<std::string, u64>> snapshot() const;

  /// Render all statistics as "name = value" lines.
  std::string to_string() const;

 private:
  std::map<std::string, const Counter*> counters_;
  std::map<std::string, const double*> scalars_;
};

}  // namespace mlp
