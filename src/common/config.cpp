#include "common/config.hpp"

#include "common/error.hpp"

namespace mlp {

// Configuration consistency is data-dependent (sweeps construct arbitrary
// grid points), so violations throw a recoverable SimError("config") rather
// than aborting the process: one bad point must not kill a 1000-job matrix.
#define MLP_CFG_CHECK(cond, msg) MLP_SIM_CHECK(cond, "config", msg)

void MachineConfig::validate() const {
  MLP_CFG_CHECK(is_pow2(dram.row_bytes), "row size must be a power of two");
  MLP_CFG_CHECK(dram.banks > 0 && is_pow2(dram.banks), "bank count must be a power of two");
  MLP_CFG_CHECK(dram.channel_bits % 8 == 0 && dram.channel_bits > 0, "channel width in whole bytes");
  MLP_CFG_CHECK(dram.queue_depth > 0, "controller queue must be nonempty");
  MLP_CFG_CHECK(dram.bus_efficiency > 0.0 && dram.bus_efficiency <= 1.0,
                "bus efficiency must be in (0, 1]");
  MLP_CFG_CHECK(dram.fault.bit_flip_rate >= 0.0 && dram.fault.bit_flip_rate < 1.0,
                "bit-flip rate must be in [0, 1)");
  MLP_CFG_CHECK(dram.fault.delay_rate >= 0.0 && dram.fault.delay_rate <= 1.0,
                "delay rate must be in [0, 1]");
  MLP_CFG_CHECK(dram.fault.drop_rate >= 0.0 && dram.fault.drop_rate < 1.0,
                "drop rate must be in [0, 1)");
  MLP_CFG_CHECK(!dram.fault.enabled() || dram.fault.max_retries > 0,
                "fault injection needs a nonzero retry budget");
  MLP_CFG_CHECK(core.cores > 0 && core.contexts > 0, "need at least one thread");
  MLP_CFG_CHECK(core.regs >= 8 && core.regs <= 32, "register count out of range");
  MLP_CFG_CHECK(is_pow2(core.cores), "core count must be a power of two for slab mapping");
  MLP_CFG_CHECK(is_pow2(core.contexts), "context count must be a power of two");
  MLP_CFG_CHECK(millipede.pf_entries >= 2, "prefetch buffer needs >= 2 entries");
  MLP_CFG_CHECK(millipede.prime_rows <= millipede.pf_entries,
                "prime depth must fit in the prefetch buffer");
  MLP_CFG_CHECK(millipede.rate_step > 0 && millipede.rate_step < 0.5, "rate step out of range");
  MLP_CFG_CHECK(gpgpu.warp_width > 0 && core.cores % gpgpu.warp_width == 0,
                "warp width must divide lane count");
  MLP_CFG_CHECK(gpgpu.shared_banks > 0, "shared memory needs banks");
  MLP_CFG_CHECK(ssmc.assoc > 0 && ssmc.l1d_bytes % (ssmc.line_bytes * ssmc.assoc) == 0,
                "SSMC L1 size must be sets*ways*line");
  // A row must split evenly into per-corelet slabs of whole words.
  MLP_CFG_CHECK(dram.row_bytes % core.cores == 0, "row must split into corelet slabs");
  MLP_CFG_CHECK((dram.row_bytes / core.cores) % 4 == 0, "slab must hold whole words");
}

}  // namespace mlp
