#include "common/config.hpp"

#include <vector>

#include "common/error.hpp"

namespace mlp {

// Configuration consistency is data-dependent (sweeps construct arbitrary
// grid points), so violations throw a recoverable SimError("config") rather
// than aborting the process: one bad point must not kill a 1000-job matrix.
#define MLP_CFG_CHECK(cond, msg) MLP_SIM_CHECK(cond, "config", msg)

namespace {

std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> terms;
  std::string term;
  for (const char c : spec) {
    if (c == ':') {
      terms.push_back(term);
      term.clear();
    } else {
      term += c;
    }
  }
  terms.push_back(term);
  return terms;
}

/// Parse the "key=N" tail of a spec term; throws SimError("config") unless
/// the term is exactly `key=` followed by a decimal u32.
u32 spec_value(const std::string& what, const std::string& term,
               const std::string& key) {
  const std::string prefix = key + "=";
  MLP_SIM_CHECK(term.size() > prefix.size() &&
                    term.compare(0, prefix.size(), prefix) == 0,
                "config", (what + " spec has a malformed term: " + term));
  u64 value = 0;
  for (size_t i = prefix.size(); i < term.size(); ++i) {
    const char c = term[i];
    MLP_SIM_CHECK(c >= '0' && c <= '9', "config",
                  (what + " spec value is not a number: " + term));
    value = value * 10 + static_cast<u64>(c - '0');
    MLP_SIM_CHECK(value <= 0xffffffffull, "config",
                  (what + " spec value does not fit 32 bits: " + term));
  }
  return static_cast<u32>(value);
}

}  // namespace

PagePolicy parse_page_policy(const std::string& spec) {
  const std::vector<std::string> terms = split_spec(spec);
  PagePolicy policy;
  if (terms[0] == "closed") {
    MLP_SIM_CHECK(terms.size() == 1, "config",
                  "page-policy 'closed' takes no parameters: " + spec);
    policy.max_row_hits = 1;
    return policy;
  }
  MLP_SIM_CHECK(terms[0] == "open", "config",
                "page-policy must start with open|closed: " + spec);
  bool saw_idle = false, saw_hits = false;
  for (size_t i = 1; i < terms.size(); ++i) {
    if (terms[i].compare(0, 5, "idle=") == 0) {
      MLP_SIM_CHECK(!saw_idle, "config",
                    "page-policy repeats idle=: " + spec);
      saw_idle = true;
      policy.max_row_idle = spec_value("page-policy", terms[i], "idle");
    } else if (terms[i].compare(0, 5, "hits=") == 0) {
      MLP_SIM_CHECK(!saw_hits, "config",
                    "page-policy repeats hits=: " + spec);
      saw_hits = true;
      policy.max_row_hits = spec_value("page-policy", terms[i], "hits");
    } else {
      throw SimError("config",
                     "page-policy term must be idle=N or hits=M: " + spec);
    }
  }
  return policy;
}

RefreshSpec parse_refresh(const std::string& spec) {
  const std::vector<std::string> terms = split_spec(spec);
  RefreshSpec refresh;
  if (terms[0] == "off") {
    MLP_SIM_CHECK(terms.size() == 1, "config",
                  "refresh 'off' takes no parameters: " + spec);
    return refresh;
  }
  MLP_SIM_CHECK(terms[0] == "on", "config",
                "refresh must start with on|off: " + spec);
  refresh.enabled = true;
  bool saw_trefi = false, saw_trfc = false, saw_postpone = false;
  for (size_t i = 1; i < terms.size(); ++i) {
    if (terms[i].compare(0, 6, "trefi=") == 0) {
      MLP_SIM_CHECK(!saw_trefi, "config", "refresh repeats trefi=: " + spec);
      saw_trefi = true;
      refresh.t_refi = spec_value("refresh", terms[i], "trefi");
    } else if (terms[i].compare(0, 5, "trfc=") == 0) {
      MLP_SIM_CHECK(!saw_trfc, "config", "refresh repeats trfc=: " + spec);
      saw_trfc = true;
      refresh.t_rfc = spec_value("refresh", terms[i], "trfc");
    } else if (terms[i].compare(0, 9, "postpone=") == 0) {
      MLP_SIM_CHECK(!saw_postpone, "config",
                    "refresh repeats postpone=: " + spec);
      saw_postpone = true;
      refresh.max_postponed = spec_value("refresh", terms[i], "postpone");
    } else {
      throw SimError(
          "config",
          "refresh term must be trefi=N, trfc=N or postpone=K: " + spec);
    }
  }
  MLP_SIM_CHECK(refresh.t_rfc > 0, "config",
                "refresh tRFC must be nonzero: " + spec);
  MLP_SIM_CHECK(refresh.t_refi > refresh.t_rfc, "config",
                "refresh tREFI must exceed tRFC: " + spec);
  MLP_SIM_CHECK(refresh.max_postponed >= 1, "config",
                "refresh postpone window must be >= 1: " + spec);
  return refresh;
}

void MachineConfig::validate() const {
  MLP_CFG_CHECK(is_pow2(dram.row_bytes), "row size must be a power of two");
  MLP_CFG_CHECK(dram.banks > 0 && is_pow2(dram.banks), "bank count must be a power of two");
  MLP_CFG_CHECK(dram.ranks > 0 && is_pow2(dram.ranks), "rank count must be a power of two");
  MLP_CFG_CHECK(dram.channels > 0 && is_pow2(dram.channels),
                "channel count must be a power of two");
  // The mapping string itself is validated by mem::AddressMap (same typed
  // SimError("config") policy, thrown when the controller is built); the
  // page-policy and refresh specs are self-contained and parse here.
  (void)parse_page_policy(dram.page_policy);
  (void)parse_refresh(dram.refresh);
  MLP_CFG_CHECK(dram.channel_bits % 8 == 0 && dram.channel_bits > 0, "channel width in whole bytes");
  MLP_CFG_CHECK(dram.queue_depth > 0, "controller queue must be nonempty");
  MLP_CFG_CHECK(dram.bus_efficiency > 0.0 && dram.bus_efficiency <= 1.0,
                "bus efficiency must be in (0, 1]");
  MLP_CFG_CHECK(dram.fault.bit_flip_rate >= 0.0 && dram.fault.bit_flip_rate < 1.0,
                "bit-flip rate must be in [0, 1)");
  MLP_CFG_CHECK(dram.fault.delay_rate >= 0.0 && dram.fault.delay_rate <= 1.0,
                "delay rate must be in [0, 1]");
  MLP_CFG_CHECK(dram.fault.drop_rate >= 0.0 && dram.fault.drop_rate < 1.0,
                "drop rate must be in [0, 1)");
  MLP_CFG_CHECK(!dram.fault.enabled() || dram.fault.max_retries > 0,
                "fault injection needs a nonzero retry budget");
  MLP_CFG_CHECK(core.cores > 0 && core.contexts > 0, "need at least one thread");
  MLP_CFG_CHECK(core.regs >= 8 && core.regs <= 32, "register count out of range");
  MLP_CFG_CHECK(is_pow2(core.cores), "core count must be a power of two for slab mapping");
  MLP_CFG_CHECK(is_pow2(core.contexts), "context count must be a power of two");
  MLP_CFG_CHECK(millipede.pf_entries >= 2, "prefetch buffer needs >= 2 entries");
  MLP_CFG_CHECK(millipede.prime_rows <= millipede.pf_entries,
                "prime depth must fit in the prefetch buffer");
  MLP_CFG_CHECK(millipede.rate_step > 0 && millipede.rate_step < 0.5, "rate step out of range");
  MLP_CFG_CHECK(gpgpu.warp_width > 0 && core.cores % gpgpu.warp_width == 0,
                "warp width must divide lane count");
  MLP_CFG_CHECK(gpgpu.shared_banks > 0, "shared memory needs banks");
  MLP_CFG_CHECK(ssmc.assoc > 0 && ssmc.l1d_bytes % (ssmc.line_bytes * ssmc.assoc) == 0,
                "SSMC L1 size must be sets*ways*line");
  // A row must split evenly into per-corelet slabs of whole words.
  MLP_CFG_CHECK(dram.row_bytes % core.cores == 0, "row must split into corelet slabs");
  MLP_CFG_CHECK((dram.row_bytes / core.cores) % 4 == 0, "slab must hold whole words");
}

}  // namespace mlp
