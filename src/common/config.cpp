#include "common/config.hpp"

namespace mlp {

void MachineConfig::validate() const {
  MLP_CHECK(is_pow2(dram.row_bytes), "row size must be a power of two");
  MLP_CHECK(dram.banks > 0 && is_pow2(dram.banks), "bank count must be a power of two");
  MLP_CHECK(dram.channel_bits % 8 == 0 && dram.channel_bits > 0, "channel width in whole bytes");
  MLP_CHECK(dram.queue_depth > 0, "controller queue must be nonempty");
  MLP_CHECK(dram.bus_efficiency > 0.0 && dram.bus_efficiency <= 1.0,
            "bus efficiency must be in (0, 1]");
  MLP_CHECK(core.cores > 0 && core.contexts > 0, "need at least one thread");
  MLP_CHECK(core.regs >= 8 && core.regs <= 32, "register count out of range");
  MLP_CHECK(is_pow2(core.cores), "core count must be a power of two for slab mapping");
  MLP_CHECK(is_pow2(core.contexts), "context count must be a power of two");
  MLP_CHECK(millipede.pf_entries >= 2, "prefetch buffer needs >= 2 entries");
  MLP_CHECK(millipede.prime_rows <= millipede.pf_entries,
            "prime depth must fit in the prefetch buffer");
  MLP_CHECK(millipede.rate_step > 0 && millipede.rate_step < 0.5, "rate step out of range");
  MLP_CHECK(gpgpu.warp_width > 0 && core.cores % gpgpu.warp_width == 0,
            "warp width must divide lane count");
  MLP_CHECK(gpgpu.shared_banks > 0, "shared memory needs banks");
  MLP_CHECK(ssmc.assoc > 0 && ssmc.l1d_bytes % (ssmc.line_bytes * ssmc.assoc) == 0,
            "SSMC L1 size must be sets*ways*line");
  // A row must split evenly into per-corelet slabs of whole words.
  MLP_CHECK(dram.row_bytes % core.cores == 0, "row must split into corelet slabs");
  MLP_CHECK((dram.row_bytes / core.cores) % 4 == 0, "slab must hold whole words");
}

}  // namespace mlp
