#pragma once
// Machine configuration structs mirroring the paper's Table III plus the
// knobs the evaluation sweeps (system size, prefetch-buffer count, warp
// width). Every architecture model is constructed from a MachineConfig so
// that cross-architecture comparisons hold resources identical by
// construction, as the paper requires.

#include <string>

#include "common/types.hpp"
#include "common/units.hpp"
#include "common/watchdog.hpp"

namespace mlp {

/// Seeded fault-injection and ECC parameters for the DRAM channel (modelled
/// after the transfer/retention error handling that die-stacked and PIM
/// characterizations treat as first-class). All draws are deterministic:
/// derived from `seed` and the per-controller transfer sequence number, so a
/// faulty run is bit-reproducible for any thread count.
struct FaultConfig {
  /// Probability that any single transferred data bit arrives flipped.
  double bit_flip_rate = 0.0;
  /// Probability that a transfer's response is delayed by `delay_cycles`.
  double delay_rate = 0.0;
  /// Probability that a transfer's response is dropped; the controller
  /// re-issues it (link-level retry), bounded by `max_retries`.
  double drop_rate = 0.0;
  u32 delay_cycles = 64;    ///< channel cycles added to a delayed response
  u64 seed = 1;             ///< fault stream seed (independent of data seed)
  /// SECDED ECC over 64-bit words: single-bit flips are corrected, double-bit
  /// flips are detected and the transfer retried. Without ECC a flip silently
  /// corrupts the transferred data (caught later by golden verification).
  bool ecc = false;
  u32 max_retries = 3;      ///< bounded retry-on-detect / retry-on-drop

  bool enabled() const {
    return bit_flip_rate > 0.0 || delay_rate > 0.0 || drop_rate > 0.0;
  }
};

/// Per-bank row-buffer management policy (the phobos-style `Policy` knob).
/// Both limits default to 0 = unlimited, which is the classic open-page
/// policy the controller has always modelled; `max_row_hits == 1` is
/// closed-page autoprecharge as the degenerate case. Parsed from
/// `DramConfig::page_policy` ("open" | "closed" | "open:idle=N:hits=M").
struct PagePolicy {
  /// Channel cycles an open row may sit idle before an explicit PRE closes
  /// it (0 = keep open until a conflicting activate).
  u32 max_row_idle = 0;
  /// Accesses served from one activation before an explicit PRE closes the
  /// row (0 = unlimited; 1 = closed-page autoprecharge).
  u32 max_row_hits = 0;

  bool open_page() const { return max_row_idle == 0 && max_row_hits == 0; }
};

/// Per-rank refresh scheduling (off by default so default runs stay
/// bit-identical to the pre-refresh model). Parsed from
/// `DramConfig::refresh` ("off" | "on" | "on:trefi=N:trfc=N:postpone=K").
/// When enabled the controller issues an all-bank refresh per rank every
/// tREFI channel cycles; the rank's banks are blocked for tRFC. A refresh
/// may be postponed while demand is queued for the rank, up to the JEDEC
/// debt window of `max_postponed` outstanding refreshes (8 x tREFI), after
/// which the rank stops issuing demand accesses until it catches up.
struct RefreshSpec {
  bool enabled = false;
  u32 t_refi = 4680;      ///< channel cycles between refreshes (3.9 us @ 1.2 GHz)
  u32 t_rfc = 192;        ///< refresh cycle time in channel cycles (160 ns)
  u32 max_postponed = 8;  ///< JEDEC 8 x tREFI postponement debt window
};

/// Parse a `DramConfig::page_policy` spec; throws SimError("config") on a
/// malformed string. Grammar: "open" | "closed" | "open:idle=N:hits=M"
/// (both terms optional, any order; values are channel cycles / accesses).
PagePolicy parse_page_policy(const std::string& spec);

/// Parse a `DramConfig::refresh` spec; throws SimError("config") on a
/// malformed string or inconsistent timing (tRFC >= tREFI, postpone == 0).
/// Grammar: "off" | "on" | "on:trefi=N:trfc=N:postpone=K" (terms optional).
RefreshSpec parse_refresh(const std::string& spec);

/// Die-stacked DRAM parameters (Table III) plus the channel/rank hierarchy
/// knobs. Timing values are in channel-clock cycles; the controller
/// converts to picoseconds. Defaults (1 channel, 1 rank, row-interleaved
/// mapping, open page, refresh off) reproduce the original flat
/// "4 banks behind one bus" model bit-identically.
struct DramConfig {
  u32 row_bytes = 2048;
  u32 banks = 4;      ///< banks per rank
  u32 ranks = 1;      ///< ranks per channel
  u32 channels = 1;   ///< independent channels, one controller each
  double channel_mhz = 1200.0;
  u32 channel_bits = 128;  ///< data bus width; 16 B transferred per cycle
  u32 t_cas = 9;
  u32 t_rp = 9;
  u32 t_rcd = 9;
  u32 t_ras = 27;
  u32 queue_depth = 16;  ///< FR-FCFS scheduler window, per channel
  /// Physical address interleave as a ':'-separated field order, most
  /// significant first, over {row, col, bank, rank, channel}. `row` must
  /// lead (capacity grows upward) and `col` must appear; fields whose
  /// dimension is 1 may be omitted. The default reproduces the legacy
  /// `bank = rowId % banks` row interleave exactly; "row:col:bank:channel"
  /// is fine-grain interleaving that stripes a single row fetch across
  /// every bank and channel. Validated by mem::AddressMap with typed
  /// SimError("config") throws.
  std::string mapping = "row:bank:col";
  /// Row-buffer management policy spec; see parse_page_policy().
  std::string page_policy = "open";
  /// Per-rank refresh spec; see parse_refresh(). NOTE: when refresh is
  /// enabled here it is simulated explicitly (tREFI/tRFC stalls), so the
  /// refresh allowance folded into `bus_efficiency` must not also be
  /// applied — raise bus_efficiency accordingly or the overhead is
  /// double-counted (see the note on bus_efficiency).
  std::string refresh = "off";
  /// Effective fraction of peak data-bus bandwidth actually delivered
  /// (command bandwidth, read/write turnaround, DBI, ... and — only while
  /// `refresh` is "off" — an allowance for refresh). Calibrated to 0.30,
  /// which reproduces the paper's observable that its GPGPU-Sim DRAM makes
  /// the light BMLAs memory-bandwidth-bound (Table IV rate-matched clocks);
  /// see EXPERIMENTS.md. NOTE: with `refresh` enabled the tREFI/tRFC
  /// interference is modelled explicitly and must NOT also be folded in
  /// here — keep the derate to the non-refresh overheads only, otherwise
  /// refresh is double-counted.
  double bus_efficiency = 0.30;
  /// Seeded fault injection + SECDED ECC on this channel (off by default).
  FaultConfig fault;

  Picos period_ps() const { return period_ps_from_hz(channel_mhz * 1e6); }
  u32 bytes_per_cycle() const { return channel_bits / 8; }
  double peak_gbps() const {
    return channel_mhz * 1e6 * bytes_per_cycle() / 1e9;
  }
};

/// Parameters shared by corelets, SSMC cores and GPGPU lanes: the paper holds
/// the number and pipeline of cores and the on-processor-die memory identical
/// across the PNM architectures it compares.
struct CoreConfig {
  double clock_mhz = 700.0;
  u32 cores = 32;     ///< corelets / lanes / simple cores per processor
  u32 contexts = 4;   ///< hardware thread contexts (warps for the SM)
  u32 regs = 32;      ///< architectural registers per context
  u32 icache_bytes = 4 * 1024;
  u32 local_mem_bytes = 4 * 1024;  ///< per corelet (live state)
  u32 local_latency = 2;           ///< compute cycles for a local access
  u32 branch_penalty = 1;          ///< extra busy cycles on taken branches

  Picos period_ps() const { return period_ps_from_hz(clock_mhz * 1e6); }
  u32 threads() const { return cores * contexts; }
};

/// Millipede-specific structures (Section IV).
struct MillipedeConfig {
  u32 pf_entries = 16;      ///< prefetch buffer entries, one DRAM row each
  u32 prime_rows = 0;       ///< rows prefetched at kernel start; 0 = fill the
                            ///< queue. The trigger chain sustains exactly
                            ///< this run-ahead, so it must cover the rows a
                            ///< record's fields touch concurrently.
  bool flow_control = true; ///< DF-counter based cross-corelet flow control
  bool rate_match = true;   ///< coarse-grain compute-memory DFS
  double rate_step = 0.05;  ///< hill-climbing frequency step (5%)
  double min_clock_mhz = 100.0;
  u32 pb_hit_latency = 2;   ///< compute cycles for a prefetch-buffer hit
  u32 rate_window = 16;     ///< per-row votes accumulated per DFS step
  /// Test-only escape hatch: skip the fail-fast "prefetch window smaller
  /// than a record's row footprint" rejection so the resulting flow-control
  /// deadlock can exercise the forward-progress watchdog. Never set this in
  /// real experiments — the run cannot complete.
  bool unsafe_skip_window_check = false;
  /// Section IV-F extension: the paper conservatively assumes frequency-only
  /// scaling ("otherwise, our energy savings would be higher"). When set,
  /// rate matching also scales voltage with frequency (dynamic energy then
  /// falls quadratically with V, floored at min_voltage_ratio).
  bool voltage_scaling = false;
  double min_voltage_ratio = 0.7;
};

/// GPGPU SM parameters (Table III) plus the VWS / VWS-row variants.
struct GpgpuConfig {
  u32 warp_width = 32;       ///< lanes ganged per warp (VWS may pick 4)
  bool vws = false;          ///< dynamic 4-vs-32 warp width selection
  bool row_oriented = false; ///< VWS-row: input via row prefetch buffer
  u32 l1d_bytes = 32 * 1024;
  u32 line_bytes = 128;
  u32 l1d_assoc = 8;
  u32 mshrs = 16;
  u32 shared_mem_bytes = 128 * 1024;
  u32 shared_banks = 32;
  u32 l1_hit_latency = 4;
  u32 shared_latency = 2;
  u32 divergence_penalty = 8;  ///< extra cycles per divergent branch
                               ///< (SIMT-stack push + fetch redirect)
  u32 prefetch_degree = 4;    ///< sequential cache-block prefetcher
  u32 prefetch_distance = 16;
  u32 prefetch_streams = 32;  ///< stride streams tracked (one per warp)
  /// Ablation (Section III-B): force the corelet-style 64 B slab record
  /// mapping on the plain GPGPU, destroying coalescing — demonstrates why
  /// GPGPUs need word-size columns in the interleaved layout.
  bool slab_mapping_ablation = false;
};

/// Plain SSMC: simple MIMD cores with small private L1 D-caches that hold
/// both live state and the prefetched input stream.
struct SsmcConfig {
  u32 l1d_bytes = 5 * 1024;  ///< 5 KB per core (Table III)
  u32 line_bytes = 128;
  u32 assoc = 5;             ///< 8 sets x 5 ways = 40 lines = 5 KB
  u32 mshrs = 8;
  u32 hit_latency = 2;
  // A 40-line cache cannot absorb deep prefetch run-ahead: pollution evicts
  // the hot state/field lines. Shallow, conservative prefetch.
  u32 prefetch_degree = 1;
  u32 prefetch_distance = 2;
  u32 prefetch_streams = 4;  ///< per-core stride streams tracked
};

/// Conventional multicore for the Fig. 5 comparison: Xeon-like out-of-order
/// cores approximated by a wide-issue SMT in-order model (see DESIGN.md).
struct MulticoreConfig {
  u32 cores = 8;
  u32 smt = 4;
  u32 issue_width = 4;
  double clock_mhz = 3600.0;
  u32 l1_bytes = 64 * 1024;
  u32 l1_assoc = 8;
  u32 l2_bytes = 1024 * 1024;  ///< per core
  u32 l2_assoc = 16;
  u32 line_bytes = 128;
  u32 l1_latency = 3;
  u32 l2_latency = 12;
  double offchip_bw_fraction = 0.25;  ///< of one die-stacked channel
  double dram_pj_per_bit = 70.0;      ///< off-chip access energy [44]
};

/// Top-level configuration handed to every System.
struct MachineConfig {
  DramConfig dram;
  CoreConfig core;
  MillipedeConfig millipede;
  GpgpuConfig gpgpu;
  SsmcConfig ssmc;
  MulticoreConfig multicore;
  /// Forward-progress watchdog enforced in every architecture's step loop.
  WatchdogConfig watchdog;

  /// Section IV-C's slab-interleaving ("wider columns"): store each record's
  /// fields contiguously within a row so a record touches exactly one DRAM
  /// row. Supported by the MIMD systems (Millipede/SSMC/multicore) for
  /// power-of-two field counts; the GPGPU keeps word-size columns, as the
  /// paper requires for coalescing.
  bool slab_layout = false;

  /// Let the simulation kernel fast-forward both clock domains across
  /// globally idle gaps (sim/kernel.hpp). Purely a simulator-speed knob:
  /// counters, trace events and timelines are bit-identical either way
  /// (enforced by kernel_test and the CI equivalence step), so it is not
  /// part of the stats-JSON config section or the prepare-cache key.
  /// `--no-fast-forward` on the tools clears it for A/B runs.
  bool fast_forward = true;

  /// Dispatch the interpreter over the decoded-basic-block cache
  /// (core/decode_cache.hpp) instead of re-decoding every issued
  /// instruction. Purely a simulator-speed knob like fast_forward: decode
  /// accounting runs either way, so every counter, trace event and timeline
  /// is bit-identical (enforced by differential_test, the golden matrix and
  /// the CI equivalence step) and the flag stays out of the stats-JSON
  /// config section and the prepare-cache key. `--no-block-cache` on the
  /// tools clears it for A/B runs.
  bool block_cache = true;

  /// Throws SimError("config", ...) on inconsistent parameter combinations;
  /// caught at the sim::run_job boundary so a bad sweep point fails alone.
  void validate() const;

  /// Paper Table III defaults.
  static MachineConfig paper_defaults() { return MachineConfig{}; }
};

}  // namespace mlp
