#include "mem/addrmap.hpp"

#include <vector>

#include "common/error.hpp"

namespace mlp::mem {

namespace {

// Mapping validation runs per sweep point (grids construct arbitrary
// geometry), so violations throw a recoverable SimError("config") — one bad
// point must not kill a matrix.
#define MLP_MAP_CHECK(cond, msg) MLP_SIM_CHECK(cond, "config", msg)

std::vector<std::string> split_fields(const std::string& mapping) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : mapping) {
    if (c == ':') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

void AddressMap::check_grammar(const std::string& mapping) {
  const std::vector<std::string> fields = split_fields(mapping);
  bool seen_row = false, seen_col = false;
  std::vector<std::string> used;
  for (const std::string& name : fields) {
    MLP_MAP_CHECK(name == "row" || name == "col" || name == "bank" ||
                      name == "rank" || name == "channel",
                  "malformed --mapping field: '" + name + "' in '" + mapping +
                      "'");
    for (const std::string& prior : used) {
      MLP_MAP_CHECK(prior != name, "malformed --mapping: duplicate field '" +
                                       name + "' in '" + mapping + "'");
    }
    used.push_back(name);
    seen_row |= name == "row";
    seen_col |= name == "col";
  }
  MLP_MAP_CHECK(seen_col,
                "malformed --mapping: missing 'col' in '" + mapping + "'");
  MLP_MAP_CHECK(seen_row,
                "malformed --mapping: missing 'row' in '" + mapping + "'");
  MLP_MAP_CHECK(fields.front() == "row",
                "malformed --mapping: 'row' must be the most significant "
                "field in '" + mapping + "'");
}

AddressMap::AddressMap(const DramConfig& cfg)
    : row_bytes_(cfg.row_bytes),
      channels_(cfg.channels),
      ranks_(cfg.ranks),
      banks_(cfg.banks) {
  MLP_MAP_CHECK(is_pow2(cfg.row_bytes),
                "row size must be a power of two");
  MLP_MAP_CHECK(cfg.banks > 0 && is_pow2(cfg.banks),
                "bank count must be a power of two");
  MLP_MAP_CHECK(cfg.ranks > 0 && is_pow2(cfg.ranks),
                "rank count must be a power of two");
  MLP_MAP_CHECK(cfg.channels > 0 && is_pow2(cfg.channels),
                "channel count must be a power of two");
  row_shift_ = log2_exact(cfg.row_bytes);

  const std::vector<std::string> fields = split_fields(cfg.mapping);
  bool seen[5] = {false, false, false, false, false};
  enum { kFRow = 0, kFCol = 1, kFBank = 2, kFRank = 3, kFChannel = 4 };
  // Assign offsets from the least significant (last) field upward.
  u32 offset = 0;
  for (size_t i = fields.size(); i > 0; --i) {
    const std::string& name = fields[i - 1];
    int which;
    u32 width;
    if (name == "row") {
      which = kFRow;
      width = 0;  // takes all remaining high bits; patched below
    } else if (name == "col") {
      which = kFCol;
      width = row_shift_;
    } else if (name == "bank") {
      which = kFBank;
      width = log2_exact(cfg.banks);
    } else if (name == "rank") {
      which = kFRank;
      width = log2_exact(cfg.ranks);
    } else if (name == "channel") {
      which = kFChannel;
      width = log2_exact(cfg.channels);
    } else {
      throw SimError("config", "malformed --mapping field: '" + name +
                                   "' in '" + cfg.mapping + "'");
    }
    MLP_MAP_CHECK(!seen[which], "malformed --mapping: duplicate field '" +
                                    name + "' in '" + cfg.mapping + "'");
    seen[which] = true;
    BitField field{width, offset};
    switch (which) {
      case kFRow: row_ = field; break;
      case kFCol: column_ = field; break;
      case kFBank: bank_ = field; break;
      case kFRank: rank_ = field; break;
      default: channel_ = field; break;
    }
    offset += width;
  }
  MLP_MAP_CHECK(seen[kFCol],
                "malformed --mapping: missing 'col' in '" + cfg.mapping + "'");
  MLP_MAP_CHECK(seen[kFRow],
                "malformed --mapping: missing 'row' in '" + cfg.mapping + "'");
  MLP_MAP_CHECK(fields.front() == "row",
                "malformed --mapping: 'row' must be the most significant "
                "field in '" + cfg.mapping + "'");
  // A dimension larger than one with no field in the mapping would decode
  // every address to coordinate 0 — a zero-width field.
  MLP_MAP_CHECK(seen[kFBank] || cfg.banks == 1,
                "--mapping leaves a zero-width 'bank' field (banks > 1 but "
                "'bank' absent from '" + cfg.mapping + "')");
  MLP_MAP_CHECK(seen[kFRank] || cfg.ranks == 1,
                "--mapping leaves a zero-width 'rank' field (ranks > 1 but "
                "'rank' absent from '" + cfg.mapping + "')");
  MLP_MAP_CHECK(seen[kFChannel] || cfg.channels == 1,
                "--mapping leaves a zero-width 'channel' field (channels > 1 "
                "but 'channel' absent from '" + cfg.mapping + "')");
  // Row takes every bit above the fields below it.
  row_.width = 64 - row_.offset;

  // Collect the channel/rank/bank fields sitting below the column field, in
  // ascending offset order (contiguous addresses advance the lowest first):
  // a contiguous row-sized block stripes across their cross product.
  struct Candidate {
    Which which;
    u32 count;
    u32 offset;
  };
  const Candidate candidates[3] = {
      {kChannel, channels_, channel_.offset},
      {kRank, ranks_, rank_.offset},
      {kBank, banks_, bank_.offset},
  };
  for (u32 pass_offset = 0; pass_offset < column_.offset;) {
    u32 best = 3;
    for (u32 i = 0; i < 3; ++i) {
      if (candidates[i].count > 1 && candidates[i].offset >= pass_offset &&
          candidates[i].offset < column_.offset &&
          (best == 3 || candidates[i].offset < candidates[best].offset)) {
        best = i;
      }
    }
    if (best == 3) break;
    striped_[num_striped_++] = {candidates[best].which,
                                candidates[best].count};
    stripes_ *= candidates[best].count;
    pass_offset = candidates[best].offset + 1;
  }
}

}  // namespace mlp::mem
