#pragma once
// Set-associative, write-back, write-allocate cache with MSHRs and a retry
// path for controller backpressure. Used as: SSMC per-core 5 KB L1D, GPGPU
// per-SM 32 KB L1D, and the conventional multicore's L1/L2 (an L2 cache can
// serve as another cache's backend). Timing-only: data comes from DramImage.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "mem/req.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"

namespace mlp::mem {

/// Downstream of a cache: either the memory controller or a larger cache.
class MemBackend {
 public:
  virtual ~MemBackend() = default;

  /// Submit a request. May invoke `on_complete` immediately (with a future
  /// timestamp) or later. Returns false when the backend cannot accept the
  /// request this cycle; the caller retries on a later pump.
  virtual bool request(MemRequest request, Picos now) = 0;
};

/// Adapts the channel demux to the MemBackend interface.
class ChannelDemux;

enum class AccessStatus : u8 {
  kHit,       ///< data available after the cache's hit latency
  kMiss,      ///< an MSHR tracks the fill; callback fires on arrival
  kMshrFull,  ///< structural stall: retry next cycle
};

class Cache : public MemBackend, public sim::Tickable,
              public sim::Snapshottable {
 public:
  using FillCallback = std::function<void(Picos)>;

  Cache(std::string name, u32 size_bytes, u32 line_bytes, u32 assoc, u32 mshrs,
        Picos hit_latency_ps, MemBackend* backend, StatSet* stats);

  /// Demand access. On kMiss, `on_fill` fires once the line (plus hit
  /// latency) is available; on kHit the caller adds hit_latency itself.
  AccessStatus access(Addr addr, bool is_write, Picos now, FillCallback on_fill);

  /// Best-effort prefetch of the line containing `addr`; silently dropped if
  /// the line is present, already being fetched, or no MSHR is free.
  void prefetch(Addr addr, Picos now);

  /// Retry queued downstream requests (fills, writebacks) that previously
  /// hit backpressure. Call once per channel tick.
  void pump(Picos now);

  /// sim::Tickable: a channel edge retries backpressured downstream
  /// requests; fills arrive via backend callbacks, not self-scheduled work.
  void tick(Picos now, Picos /*period_ps*/) override { pump(now); }
  Picos next_event(Picos now) const override {
    return issue_queue_.empty() ? sim::kNoEvent : now;
  }

  /// MemBackend: lets this cache be another cache's next level.
  bool request(MemRequest request, Picos now) override;

  bool quiescent() const override {
    return mshrs_.empty() && issue_queue_.empty();
  }

  // sim::Snapshottable: the full tag/LRU/dirty array plus the LRU clock;
  // MSHRs and the issue queue hold callbacks, so capture requires quiesce.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;

  Picos hit_latency_ps() const { return hit_latency_ps_; }
  u32 line_bytes() const { return line_bytes_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  ///< filled by prefetch, not yet demanded
    u64 tag = 0;
    u64 lru = 0;
  };

  struct Mshr {
    bool is_prefetch = false;
    bool issued = false;
    std::vector<FillCallback> waiters;
    std::vector<bool> waiter_writes;
  };

  Addr line_base(Addr addr) const { return addr & ~static_cast<Addr>(line_bytes_ - 1); }
  /// XOR-folded set index: the interleaved layout strides streams by whole
  /// DRAM rows (2 KB = 16 lines), which would alias every stream of a core
  /// into one set of a small cache. Real L1s hash the index for exactly this
  /// reason; fold higher line-number bits in.
  u32 set_of(Addr line) const {
    const u64 n = line / line_bytes_;
    return static_cast<u32>((n ^ (n >> 4) ^ (n >> 8)) & (sets_ - 1));
  }
  u64 tag_of(Addr line) const { return line / line_bytes_; }

  Line* find(Addr line);
  void install(Addr line, bool dirty, bool prefetched, Picos now);
  void queue_fill(Addr line, Picos now);
  void on_fill_arrived(Addr line, Picos at);

  std::string name_;
  u32 line_bytes_;
  u32 sets_;
  u32 assoc_;
  u32 max_mshrs_;
  Picos hit_latency_ps_;
  MemBackend* backend_;

  std::vector<std::vector<Line>> lines_;  ///< [set][way]
  std::map<Addr, Mshr> mshrs_;            ///< keyed by line base address
  std::vector<MemRequest> issue_queue_;   ///< pending downstream requests
  u64 lru_clock_ = 0;

  Counter hits_, misses_, mshr_merges_, mshr_stalls_, writebacks_,
      prefetch_issued_, prefetch_useful_, evictions_;
};

/// MemBackend view of the DRAM channel demux.
class ControllerBackend : public MemBackend {
 public:
  explicit ControllerBackend(ChannelDemux* ctrl) : ctrl_(ctrl) {}
  bool request(MemRequest request, Picos now) override;

 private:
  ChannelDemux* ctrl_;
};

}  // namespace mlp::mem
