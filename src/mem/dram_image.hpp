#pragma once
// Functional contents of the die-stacked DRAM. Timing (controller/banks) and
// contents are deliberately decoupled, as in most architecture simulators:
// loads read their value here at issue time while the timing model decides
// when the value becomes architecturally visible.

#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace mlp::mem {

class DramImage {
 public:
  DramImage() = default;
  explicit DramImage(u64 bytes) { resize(bytes); }

  void resize(u64 bytes) { bytes_.assign(bytes, 0); }
  u64 size() const { return bytes_.size(); }

  u32 read_u32(Addr addr) const {
    MLP_CHECK(addr + 4 <= bytes_.size() && addr % 4 == 0, "bad DRAM read");
    u32 value;
    std::memcpy(&value, bytes_.data() + addr, 4);
    return value;
  }

  void write_u32(Addr addr, u32 value) {
    MLP_CHECK(addr + 4 <= bytes_.size() && addr % 4 == 0, "bad DRAM write");
    std::memcpy(bytes_.data() + addr, &value, 4);
  }

  float read_f32(Addr addr) const {
    const u32 bits = read_u32(addr);
    float value;
    std::memcpy(&value, &bits, 4);
    return value;
  }

  void write_f32(Addr addr, float value) {
    u32 bits;
    std::memcpy(&bits, &value, 4);
    write_u32(addr, bits);
  }

  /// Fault-injection hook: flip one bit of the stored byte at `addr`.
  /// Out-of-image addresses are ignored — transfers to regions modelled only
  /// in timing (e.g. cached live-state spill space beyond the input image)
  /// have no functional bytes to corrupt.
  void flip_bit(Addr addr, u32 bit) {
    if (addr < bytes_.size()) bytes_[addr] ^= static_cast<u8>(1u << (bit & 7));
  }

  /// Raw byte view for the snapshot subsystem's delta capture/patch
  /// (sim/snapshot.hpp) — restore may only change bytes, never the size.
  const std::vector<u8>& raw() const { return bytes_; }
  std::vector<u8>& raw() { return bytes_; }

 private:
  std::vector<u8> bytes_;
};

}  // namespace mlp::mem
