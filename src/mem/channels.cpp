#include "mem/channels.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mlp::mem {

ChannelDemux::ChannelDemux(const DramConfig& cfg, std::string stat_prefix,
                           StatSet* stats, trace::TraceSession* trace)
    : cfg_(cfg),
      map_(cfg),
      refresh_(parse_refresh(cfg.refresh)),
      policy_(parse_page_policy(cfg.page_policy)) {
  channels_.reserve(cfg.channels);
  channel_bytes_.resize(cfg.channels);
  for (u32 c = 0; c < cfg.channels; ++c) {
    channel_bytes_[c] = std::make_unique<Counter>();
    channels_.push_back(std::make_unique<MemoryController>(
        cfg, c, &map_, &counters_, channel_bytes_[c].get(), stats,
        stat_prefix, trace));
  }
  if (stats != nullptr) {
    stats->add(stat_prefix + ".reads", &counters_.reads);
    stats->add(stat_prefix + ".writes", &counters_.writes);
    stats->add(stat_prefix + ".row_hits", &counters_.row_hits);
    stats->add(stat_prefix + ".row_misses", &counters_.row_misses);
    stats->add(stat_prefix + ".bytes", &counters_.bytes);
    stats->add(stat_prefix + ".queue_rejections", &counters_.rejected);
    stats->add(stat_prefix + ".ecc_corrected", &counters_.ecc_corrected);
    stats->add(stat_prefix + ".ecc_detected", &counters_.ecc_detected);
    stats->add(stat_prefix + ".fault_retries", &counters_.retries);
    stats->add(stat_prefix + ".silent_corruptions",
               &counters_.silent_corruptions);
    // Feature counters follow the fault-injector convention: registered
    // only when the feature is on, so default-knob stat dumps (and the 32
    // golden files) stay bit-identical to the pre-hierarchy model.
    if (refresh_.enabled) {
      stats->add(stat_prefix + ".refreshes", &counters_.refreshes);
      stats->add(stat_prefix + ".refresh_stall_ps",
                 &counters_.refresh_stall_ps);
    }
    if (!policy_.open_page()) {
      stats->add(stat_prefix + ".explicit_precharges",
                 &counters_.explicit_precharges);
    }
    if (cfg.channels > 1) {
      for (u32 c = 0; c < cfg.channels; ++c) {
        stats->add(stat_prefix + ".ch" + std::to_string(c) + ".bytes",
                   channel_bytes_[c].get());
      }
    }
  }
}

void ChannelDemux::attach_image(DramImage* image) {
  for (const auto& channel : channels_) channel->attach_image(image);
}

bool ChannelDemux::try_push(MemRequest request, Picos now) {
  MLP_SIM_CHECK(request.bytes > 0, "config", "empty request");
  const DramCoord base = map_.decode(request.addr);
  const u32 stripes = map_.stripes();
  if (stripes == 1) {
    // Coarse interleave: the whole request lands on one (channel, rank,
    // bank, row) — identical to the pre-hierarchy single-channel path.
    return channels_[base.channel]->try_push(std::move(request), base, now);
  }

  // Sub-row interleave: the contiguous request spreads across the striped
  // dimensions. All-or-nothing capacity pre-check so a partial fan-out never
  // deadlocks the caller's retry logic.
  const u32 n = std::min(request.bytes, stripes);
  const u32 start = map_.stripe_index(base);
  std::vector<u32> demand(channels_.size(), 0);
  for (u32 s = 0; s < n; ++s) {
    demand[map_.stripe_coord(base, (start + s) % stripes).channel]++;
  }
  for (u32 c = 0; c < channels_.size(); ++c) {
    if (demand[c] > channels_[c]->free_slots()) {
      counters_.rejected.inc();
      return false;
    }
  }

  auto join = std::make_shared<StripeJoin>();
  join->remaining = n;
  join->done = std::move(request.on_complete);
  const u32 base_bytes = request.bytes / n;
  const u32 extra = request.bytes % n;
  Addr addr = request.addr;
  for (u32 s = 0; s < n; ++s) {
    MemRequest sub;
    sub.addr = addr;
    sub.bytes = base_bytes + (s < extra ? 1 : 0);
    sub.is_write = request.is_write;
    sub.is_prefetch = request.is_prefetch;
    sub.on_complete = [join](Picos done_at) {
      join->latest = std::max(join->latest, done_at);
      if (--join->remaining == 0 && join->done) join->done(join->latest);
    };
    addr += sub.bytes;
    const DramCoord coord = map_.stripe_coord(base, (start + s) % stripes);
    const bool pushed =
        channels_[coord.channel]->try_push(std::move(sub), coord, now);
    MLP_SIM_CHECK(pushed, "config", "striped push failed after pre-check");
  }
  return true;
}

void ChannelDemux::tick(Picos now) {
  for (const auto& channel : channels_) channel->tick(now);
}

void ChannelDemux::save_state(sim::SnapshotWriter& w) const {
  w.put_u32(static_cast<u32>(channels_.size()));
  for (const auto& channel : channels_) channel->save_state(w);
}

void ChannelDemux::restore_state(sim::SnapshotCursor& r) {
  const u32 channels = r.get_u32();
  MLP_SIM_CHECK(channels == channels_.size(), "snapshot",
                "snapshot channel count does not match this machine");
  for (const auto& channel : channels_) channel->restore_state(r);
}

std::string ChannelDemux::debug_dump() const {
  if (channels_.size() == 1) return channels_[0]->debug_dump();
  std::string out;
  for (u32 c = 0; c < channels_.size(); ++c) {
    out += "  dram channel " + std::to_string(c) + ":\n";
    out += channels_[c]->debug_dump();
  }
  return out;
}

}  // namespace mlp::mem
