#pragma once
// FR-FCFS memory controller over a single die-stacked channel with open-page
// banks (Table III: 16-deep queue, 4 banks, tCAS-tRP-tRCD-tRAS = 9-9-9-27
// channel cycles, 128-bit bus at 1.2 GHz).
//
// Scheduling: one request is selected per channel tick — first any ready
// row-buffer hit (FR), otherwise the oldest request whose bank can start its
// precharge/activate sequence (FCFS). Requests larger than one row-column
// (e.g. Millipede's full 2 KB row fetch) occupy the data bus for the
// corresponding number of beats; bank-level parallelism lets the next bank's
// activation proceed under the current transfer.
//
// The controller is timing-only; functional bytes live in DramImage. The
// exception is the resilience layer: when seeded fault injection is enabled
// (DramConfig::fault), transfers may arrive with flipped bits, delayed, or
// dropped. A SECDED ECC model (64-bit data words, 8 check bits each)
// corrects single-bit flips, detects double-bit flips and re-issues the
// transfer (bounded retry, also used for dropped responses); exhausting the
// retry budget throws a recoverable SimError("memory-fault"). Without ECC,
// flipped bits are applied to the attached DramImage — silent corruption
// that the golden verification surfaces at the end of the run.

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "mem/addrmap.hpp"
#include "mem/dram_image.hpp"
#include "mem/fault.hpp"
#include "mem/req.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::mem {

class MemoryController : public sim::Tickable, public sim::Snapshottable {
 public:
  MemoryController(const DramConfig& cfg, std::string stat_prefix,
                   StatSet* stats, trace::TraceSession* trace = nullptr);

  /// Functional image backing this channel; only consulted by the fault
  /// model (no-ECC bit flips corrupt the transferred bytes in place).
  void attach_image(DramImage* image) { image_ = image; }

  /// Enqueue a request; returns false when the scheduler window is full
  /// (the caller must retry on a later tick, modelling backpressure).
  bool try_push(MemRequest request, Picos now);

  /// Advance one channel clock edge: schedule at most one queued request and
  /// retire any transfers whose data has fully arrived. Throws
  /// SimError("memory-fault") when a transfer exhausts its retry budget.
  void tick(Picos now);

  /// sim::Tickable adapter for the channel domain.
  void tick(Picos now, Picos /*period_ps*/) override { tick(now); }

  /// Earliest channel edge with controller work: an in-flight transfer
  /// retiring (done_at), or a queued request whose bank turns ready
  /// (try_issue only gates on bank.ready_at — the bus merely delays data).
  Picos next_event(Picos now) const override {
    Picos at = sim::kNoEvent;
    for (const InFlight& transfer : in_flight_) {
      at = std::min(at, std::max(transfer.done_at, now));
    }
    for (const Pending& pending : queue_) {
      at = std::min(at, std::max(banks_[pending.coord.bank].ready_at, now));
    }
    return at;
  }

  bool idle() const { return queue_.empty() && in_flight_.empty(); }
  u32 queue_size() const { return static_cast<u32>(queue_.size()); }
  u32 queue_capacity() const { return cfg_.queue_depth; }
  u32 in_flight_size() const { return static_cast<u32>(in_flight_.size()); }

  const AddressMap& address_map() const { return map_; }

  // Energy/analysis counters.
  u64 activations() const { return row_misses_.value; }
  u64 bytes_transferred() const { return bytes_.value; }
  u64 row_hits() const { return row_hits_.value; }
  u64 row_misses() const { return row_misses_.value; }
  Picos busy_ps() const { return busy_ps_; }

  // Resilience counters.
  u64 ecc_corrected() const { return ecc_corrected_.value; }
  u64 ecc_detected() const { return ecc_detected_.value; }
  u64 fault_retries() const { return retries_.value; }
  bool fault_injection_enabled() const { return injector_ != nullptr; }

  /// Transfers drawn by the fault injector so far (0 without injection);
  /// recorded in SnapshotMeta for mlpsweep's fork-safety proof.
  u64 fault_sequence() const {
    return injector_ != nullptr ? injector_->transfers_drawn() : 0;
  }

  // sim::Snapshottable: bank timing state, scheduler order, bus occupancy
  // and the fault injector's sequence number. Captured only at quiesce
  // (queue and in-flight transfers empty), so requests never serialize.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;
  bool quiescent() const override { return idle(); }

  /// One-line-per-item state snapshot (queue, in-flight transfers, banks)
  /// for watchdog diagnostics.
  std::string debug_dump() const;

 private:
  struct Bank {
    bool has_open_row = false;
    u64 open_row = 0;          ///< row index within this bank
    Picos ready_at = 0;        ///< earliest next command issue
    Picos activated_at = 0;    ///< for the tRAS constraint
  };

  struct Pending {
    MemRequest request;
    DramCoord coord;
    Picos arrived_at = 0;
    u64 order = 0;
    u32 attempts = 0;  ///< prior issues of this transfer (retries)
  };

  struct InFlight {
    MemRequest request;
    Picos done_at = 0;
    u32 attempts = 0;
    bool needs_retry = false;  ///< dropped response or uncorrectable ECC
  };

  Picos cycles(u32 n) const { return static_cast<Picos>(n) * period_ps_; }
  Picos transfer_ps(u32 bytes) const {
    const u32 beats = (bytes + bytes_per_cycle_ - 1) / bytes_per_cycle_;
    // Derate by the effective bus efficiency (refresh/turnaround/command
    // overheads folded into the transfer occupancy).
    const double effective =
        static_cast<double>(beats) / cfg_.bus_efficiency;
    return cycles(static_cast<u32>(effective + 0.5));
  }

  /// Attempt to issue `pending` now; returns true and fills `done_at` if the
  /// bank and bus constraints allow starting this tick.
  bool try_issue(Pending& pending, Picos now, bool row_hit_only);

  /// Draw and apply this transfer's injected faults; returns the extra
  /// response latency and sets `needs_retry` for drops / ECC detections.
  Picos apply_faults(const MemRequest& request, Picos now, bool* needs_retry);

  /// Re-enqueue a transfer whose response was dropped or failed ECC; throws
  /// SimError("memory-fault") once the retry budget is exhausted.
  void requeue(InFlight&& transfer, Picos now);

  DramConfig cfg_;
  trace::TraceSession* trace_ = nullptr;
  AddressMap map_;
  Picos period_ps_;
  u32 bytes_per_cycle_;
  std::unique_ptr<FaultInjector> injector_;
  DramImage* image_ = nullptr;

  std::vector<Bank> banks_;
  std::deque<Pending> queue_;
  std::vector<InFlight> in_flight_;
  u64 next_order_ = 0;
  Picos bus_free_at_ = 0;
  Picos busy_ps_ = 0;

  Counter reads_, writes_, row_hits_, row_misses_, bytes_, rejected_;
  Counter ecc_corrected_, ecc_detected_, retries_, silent_corruptions_;
};

}  // namespace mlp::mem
