#pragma once
// FR-FCFS memory controller for ONE die-stacked channel with per-bank page
// policy and per-rank refresh (Table III: 16-deep queue, 4 banks, tCAS-tRP-
// tRCD-tRAS = 9-9-9-27 channel cycles, 128-bit bus at 1.2 GHz). Systems do
// not construct this class directly: mem::ChannelDemux (mem/channels.hpp)
// owns one controller per channel, decodes/stripes requests through the
// configurable AddressMap, and demuxes them here.
//
// Scheduling: one request is selected per channel tick — first any ready
// row-buffer hit (FR), otherwise the oldest request whose bank can start its
// precharge/activate sequence (FCFS). Requests larger than one row-column
// (e.g. Millipede's full 2 KB row fetch) occupy the data bus for the
// corresponding number of beats; bank-level parallelism lets the next bank's
// activation proceed under the current transfer.
//
// Page policy (PagePolicy, default open-page): an explicit PRE closes a row
// after `max_row_idle` idle channel cycles or `max_row_hits` accesses;
// closed-page autoprecharge is max_row_hits == 1. Refresh (RefreshSpec,
// default off): every tREFI channel cycles each rank owes one refresh; a
// refresh blocks all banks of the rank for tRFC and may be postponed while
// demand is queued for the rank, up to the JEDEC debt window of
// `max_postponed` — at the cap the rank stops accepting demand issues until
// it catches up. Refresh times feed next_event() so the kernel's idle
// fast-forward performs refreshes instead of skipping them (poll and
// fast-forward runs stay bit-identical).
//
// The controller is timing-only; functional bytes live in DramImage. The
// exception is the resilience layer: when seeded fault injection is enabled
// (DramConfig::fault), transfers may arrive with flipped bits, delayed, or
// dropped. A SECDED ECC model (64-bit data words, 8 check bits each)
// corrects single-bit flips, detects double-bit flips and re-issues the
// transfer (bounded retry, also used for dropped responses); exhausting the
// retry budget throws a recoverable SimError("memory-fault"). Without ECC,
// flipped bits are applied to the attached DramImage — silent corruption
// that the golden verification surfaces at the end of the run.

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "mem/addrmap.hpp"
#include "mem/dram_image.hpp"
#include "mem/fault.hpp"
#include "mem/req.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::mem {

/// Counters shared by every channel of one DRAM subsystem, owned and
/// registered (under "dram.*") by the ChannelDemux so multi-channel runs
/// aggregate into the same stat names single-channel runs always used.
/// The refresh/page-policy counters are only registered when their feature
/// is enabled (same convention as the fault injector's "dram.fault.*"), so
/// default-knob stat dumps stay bit-identical to the pre-hierarchy model.
struct DramCounters {
  Counter reads, writes, row_hits, row_misses, bytes, rejected;
  Counter ecc_corrected, ecc_detected, retries, silent_corruptions;
  Counter refreshes;            ///< REF commands issued (all ranks/channels)
  Counter refresh_stall_ps;     ///< refresh time with demand queued behind it
  Counter explicit_precharges;  ///< page-policy PREs (idle timeout/hit cap)
};

class MemoryController {
 public:
  /// `channel` is this controller's index in the demux; `map` (owned by the
  /// demux) provides geometry and trace-track layout; `counters` are the
  /// shared subsystem counters and `channel_bytes` the per-channel bytes
  /// counter. `stats` is only used to register this channel's fault
  /// injector ("dram.fault" for channel 0, "dram.ch<k>.fault" beyond).
  MemoryController(const DramConfig& cfg, u32 channel, const AddressMap* map,
                   DramCounters* counters, Counter* channel_bytes,
                   StatSet* stats, const std::string& stat_prefix,
                   trace::TraceSession* trace = nullptr);

  /// Functional image backing this channel; only consulted by the fault
  /// model (no-ECC bit flips corrupt the transferred bytes in place).
  void attach_image(DramImage* image) { image_ = image; }

  /// Enqueue a request already decoded (and, for sub-row interleaves,
  /// striped) by the demux; returns false when the scheduler window is full
  /// (the caller must retry on a later tick, modelling backpressure).
  bool try_push(MemRequest request, const DramCoord& coord, Picos now);

  /// Queue slots available this tick (the demux pre-checks striped fan-outs
  /// so a multi-stripe push is all-or-nothing).
  u32 free_slots() const {
    return cfg_.queue_depth - static_cast<u32>(queue_.size());
  }

  /// Advance one channel clock edge: apply page-policy closures, accrue and
  /// issue refreshes, schedule at most one queued request and retire any
  /// transfers whose data has fully arrived. Throws SimError("memory-fault")
  /// when a transfer exhausts its retry budget.
  void tick(Picos now);

  /// Earliest channel edge with controller work: an in-flight transfer
  /// retiring, a queued request whose bank turns ready, a page-policy idle
  /// closure, or a refresh accrual/issue point (so fast-forward never skips
  /// an observable state change).
  Picos next_event(Picos now) const;

  bool idle() const { return queue_.empty() && in_flight_.empty(); }
  u32 queue_size() const { return static_cast<u32>(queue_.size()); }
  u32 queue_capacity() const { return cfg_.queue_depth; }
  u32 in_flight_size() const { return static_cast<u32>(in_flight_.size()); }
  Picos busy_ps() const { return busy_ps_; }

  bool fault_injection_enabled() const { return injector_ != nullptr; }

  /// Transfers drawn by this channel's fault injector so far (0 without
  /// injection); summed by the demux into SnapshotMeta's fork-safety proof.
  u64 fault_sequence() const {
    return injector_ != nullptr ? injector_->transfers_drawn() : 0;
  }

  /// Outstanding (accrued, unissued) refreshes across this channel's ranks,
  /// for the "dram.refresh" interval gauge. Lazily accrued in tick(), which
  /// next_event() keeps current across fast-forward.
  u64 refresh_debt() const {
    u64 debt = 0;
    for (const RankState& rank : ranks_) debt += rank.debt;
    return debt;
  }

  // Snapshot body (framed by the demux's kSecController section): bank
  // timing + page-policy state, per-rank refresh debt, scheduler order, bus
  // occupancy and the fault injector's sequence number. Captured only at
  // quiesce (queue and in-flight transfers empty), so requests never
  // serialize.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotCursor& r);

  /// One-line-per-item state snapshot (queue, in-flight transfers, banks)
  /// for watchdog diagnostics.
  std::string debug_dump() const;

 private:
  struct Bank {
    bool has_open_row = false;
    u64 open_row = 0;          ///< row index within this bank
    Picos ready_at = 0;        ///< earliest next command issue
    Picos activated_at = 0;    ///< for the tRAS constraint
    u32 accesses = 0;          ///< column accesses since the last activate
  };

  struct RankState {
    Picos next_due = 0;  ///< next tREFI accrual edge
    u32 debt = 0;        ///< accrued refreshes not yet issued
  };

  struct Pending {
    MemRequest request;
    DramCoord coord;
    Picos arrived_at = 0;
    u64 order = 0;
    u32 attempts = 0;  ///< prior issues of this transfer (retries)
  };

  struct InFlight {
    MemRequest request;
    DramCoord coord;
    Picos done_at = 0;
    u32 attempts = 0;
    bool needs_retry = false;  ///< dropped response or uncorrectable ECC
  };

  Picos cycles(u32 n) const { return static_cast<Picos>(n) * period_ps_; }
  Picos transfer_ps(u32 bytes) const {
    const u32 beats = (bytes + bytes_per_cycle_ - 1) / bytes_per_cycle_;
    // Derate by the effective bus efficiency (command/turnaround overheads
    // folded into the transfer occupancy; refresh only while it is not
    // modelled explicitly — see DramConfig::bus_efficiency).
    const double effective =
        static_cast<double>(beats) / cfg_.bus_efficiency;
    return cycles(static_cast<u32>(effective + 0.5));
  }

  Bank& bank_at(const DramCoord& coord) {
    return banks_[coord.rank * cfg_.banks + coord.bank];
  }
  const Bank& bank_at(const DramCoord& coord) const {
    return banks_[coord.rank * cfg_.banks + coord.bank];
  }
  u32 bank_track(const DramCoord& coord) const {
    return track_base_ + coord.rank * cfg_.banks + coord.bank;
  }

  /// Attempt to issue `pending` now; returns true and fills `done_at` if the
  /// bank and bus constraints allow starting this tick.
  bool try_issue(Pending& pending, Picos now, bool row_hit_only);

  /// Page-policy sweep: explicitly precharge rows idle past max_row_idle.
  void apply_idle_closures(Picos now);

  /// Accrue tREFI debt and issue any refresh the postponement rules allow.
  void run_refresh(Picos now);

  /// Earliest time rank `r` could start a refresh: all its banks command-
  /// ready and every open row past its tRAS window.
  Picos rank_refresh_ready(u32 r) const;

  bool rank_has_demand(u32 r) const {
    for (const Pending& pending : queue_) {
      if (pending.coord.rank == r) return true;
    }
    return false;
  }

  /// Draw and apply this transfer's injected faults; returns the extra
  /// response latency and sets `needs_retry` for drops / ECC detections.
  Picos apply_faults(const MemRequest& request, const DramCoord& coord,
                     Picos now, bool* needs_retry);

  /// Re-enqueue a transfer whose response was dropped or failed ECC; throws
  /// SimError("memory-fault") once the retry budget is exhausted.
  void requeue(InFlight&& transfer, Picos now);

  DramConfig cfg_;
  u32 channel_ = 0;
  trace::TraceSession* trace_ = nullptr;
  const AddressMap* map_;
  PagePolicy policy_;
  RefreshSpec refresh_;
  Picos period_ps_;
  Picos trefi_ps_ = 0;
  Picos trfc_ps_ = 0;
  u32 bytes_per_cycle_;
  u32 track_base_;
  std::unique_ptr<FaultInjector> injector_;
  DramImage* image_ = nullptr;
  DramCounters* counters_;
  Counter* channel_bytes_;

  std::vector<Bank> banks_;       ///< ranks x banks, rank-major
  std::vector<RankState> ranks_;  ///< refresh state per rank
  std::deque<Pending> queue_;
  std::vector<InFlight> in_flight_;
  u64 next_order_ = 0;
  Picos bus_free_at_ = 0;
  Picos busy_ps_ = 0;
};

}  // namespace mlp::mem
