#pragma once
// Channel demultiplexer: the memory subsystem the architecture models wire
// up. Owns the configurable AddressMap plus one FR-FCFS MemoryController
// per channel, decodes every request through the mapping, and — for
// mappings that interleave channel/rank/bank fields below the column field
// — stripes a single request into per-channel sub-transfers whose
// completions are joined back into the caller's callback.
//
// The demux is the channel-domain sim::Tickable and the kSecController
// sim::Snapshottable, preserving the kernel's next_event/skip_idle
// fast-forward and snapshot contracts across the hierarchy: next_event is
// the min over channels (including refresh accrual/issue points) and
// snapshots frame every channel's bank/refresh state in one section.
//
// All channels share one set of "dram.*" counters (a 1-channel run is
// bit-identical to the pre-hierarchy controller); per-channel traffic is
// additionally visible as "dram.ch<k>.bytes" when channels > 1, and the
// refresh/page-policy counters appear only when those features are enabled
// (the fault-injector registration convention).

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "mem/addrmap.hpp"
#include "mem/controller.hpp"
#include "mem/dram_image.hpp"
#include "mem/req.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::mem {

class ChannelDemux : public sim::Tickable, public sim::Snapshottable {
 public:
  /// Builds the AddressMap (throws SimError("config") on bad geometry or a
  /// malformed mapping) and one controller per channel. Registers the
  /// shared "dram.*" counters plus the conditional feature counters.
  ChannelDemux(const DramConfig& cfg, std::string stat_prefix, StatSet* stats,
               trace::TraceSession* trace = nullptr);

  /// Functional image backing the memory system; consulted by the fault
  /// model (no-ECC bit flips corrupt the transferred bytes in place).
  void attach_image(DramImage* image);

  /// Decode, stripe and enqueue a request. Returns false (and counts one
  /// queue rejection) when any target channel's scheduler window lacks the
  /// room — the push is all-or-nothing, callers retry on a later tick.
  bool try_push(MemRequest request, Picos now);

  /// Advance one channel clock edge on every channel.
  void tick(Picos now);
  void tick(Picos now, Picos /*period_ps*/) override { tick(now); }

  /// Earliest channel edge with work on any channel.
  Picos next_event(Picos now) const override {
    Picos at = sim::kNoEvent;
    for (const auto& channel : channels_) {
      at = std::min(at, channel->next_event(now));
    }
    return at;
  }

  bool idle() const {
    for (const auto& channel : channels_) {
      if (!channel->idle()) return false;
    }
    return true;
  }
  u32 queue_size() const {
    u32 total = 0;
    for (const auto& channel : channels_) total += channel->queue_size();
    return total;
  }
  u32 queue_capacity() const {
    return cfg_.queue_depth * static_cast<u32>(channels_.size());
  }
  u32 in_flight_size() const {
    u32 total = 0;
    for (const auto& channel : channels_) total += channel->in_flight_size();
    return total;
  }

  const AddressMap& address_map() const { return map_; }
  const DramConfig& config() const { return cfg_; }

  // Energy/analysis counters.
  u64 activations() const { return counters_.row_misses.value; }
  u64 bytes_transferred() const { return counters_.bytes.value; }
  u64 row_hits() const { return counters_.row_hits.value; }
  u64 row_misses() const { return counters_.row_misses.value; }
  /// Summed bus-busy time across channels (equals the single bus's
  /// occupancy when channels == 1).
  Picos busy_ps() const {
    Picos total = 0;
    for (const auto& channel : channels_) total += channel->busy_ps();
    return total;
  }

  // Resilience counters.
  u64 ecc_corrected() const { return counters_.ecc_corrected.value; }
  u64 ecc_detected() const { return counters_.ecc_detected.value; }
  u64 fault_retries() const { return counters_.retries.value; }
  bool fault_injection_enabled() const {
    return channels_[0]->fault_injection_enabled();
  }

  /// Transfers drawn by the fault injectors so far, summed over channels
  /// (0 without injection); recorded in SnapshotMeta for mlpsweep's
  /// fork-safety proof.
  u64 fault_sequence() const {
    u64 total = 0;
    for (const auto& channel : channels_) total += channel->fault_sequence();
    return total;
  }

  // Refresh/page-policy observability.
  bool refresh_enabled() const { return refresh_.enabled; }
  u64 refreshes() const { return counters_.refreshes.value; }
  u64 explicit_precharges() const {
    return counters_.explicit_precharges.value;
  }
  /// Outstanding refresh debt across all channels and ranks, for the
  /// "dram.refresh" interval gauge.
  u64 refresh_debt() const {
    u64 debt = 0;
    for (const auto& channel : channels_) debt += channel->refresh_debt();
    return debt;
  }

  // sim::Snapshottable: the channel count frames each controller's bank
  // timing, page-policy and refresh-debt state. Captured only at quiesce
  // (every channel's queue and in-flight transfers empty).
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;
  bool quiescent() const override { return idle(); }

  /// One-line-per-item state snapshot for watchdog diagnostics.
  std::string debug_dump() const;

 private:
  /// Join node for a striped request: the caller's completion fires once
  /// when the last stripe retires, with the latest stripe finish time.
  struct StripeJoin {
    u32 remaining = 0;
    Picos latest = 0;
    std::function<void(Picos)> done;
  };

  DramConfig cfg_;
  AddressMap map_;
  DramCounters counters_;
  std::vector<std::unique_ptr<Counter>> channel_bytes_;
  std::vector<std::unique_ptr<MemoryController>> channels_;
  RefreshSpec refresh_;
  PagePolicy policy_;
};

}  // namespace mlp::mem
