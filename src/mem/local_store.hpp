#pragma once
// Per-corelet (per-lane) local memory holding the kernel's live state. The
// corelet's hardware contexts share this store; accumulation uses
// single-instruction atomic adds (amoadd.l) which are race-free because the
// core issues one instruction per cycle. Returns of the OLD value make
// "claim a slot" idioms (sample selection) race-free too.

#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace mlp::mem {

class LocalStore {
 public:
  explicit LocalStore(u32 bytes) : words_(bytes / 4, 0) {
    MLP_CHECK(bytes % 4 == 0, "local store must hold whole words");
  }

  u32 size_bytes() const { return static_cast<u32>(words_.size()) * 4; }

  u32 load(u32 addr) const { return words_[index(addr)]; }
  void store(u32 addr, u32 value) { words_[index(addr)] = value; }

  /// Integer fetch-and-add; returns the previous value.
  u32 amoadd(u32 addr, u32 value) {
    u32& slot = words_[index(addr)];
    const u32 old = slot;
    slot = old + value;
    return old;
  }

  /// Float fetch-and-add over bit-cast values; returns previous bits.
  u32 famoadd(u32 addr, u32 value_bits) {
    u32& slot = words_[index(addr)];
    const u32 old = slot;
    float a, b;
    std::memcpy(&a, &old, 4);
    std::memcpy(&b, &value_bits, 4);
    a += b;
    std::memcpy(&slot, &a, 4);
    return old;
  }

  float load_f32(u32 addr) const {
    const u32 bits = load(addr);
    float value;
    std::memcpy(&value, &bits, 4);
    return value;
  }

  void store_f32(u32 addr, float value) {
    u32 bits;
    std::memcpy(&bits, &value, 4);
    store(addr, bits);
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Raw view used by the host-side final Reduce.
  const std::vector<u32>& words() const { return words_; }
  /// Mutable view for snapshot restore (sim/snapshot.hpp) — restore may
  /// only change word values, never the size.
  std::vector<u32>& words() { return words_; }

 private:
  u32 index(u32 addr) const {
    MLP_CHECK(addr % 4 == 0, "unaligned local access");
    const u32 i = addr / 4;
    MLP_CHECK(i < words_.size(), "local access out of bounds");
    return i;
  }

  std::vector<u32> words_;
};

}  // namespace mlp::mem
