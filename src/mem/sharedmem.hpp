#pragma once
// GPGPU shared-memory bank-conflict model. The SM's shared memory has
// `banks` single-ported banks; a warp's simultaneous accesses serialize by
// the maximum number of lanes mapping to one bank.
//
// Two mappings matter for the paper:
//  * kLanePrivate — the BMLA mapping from Section III-E: the i-th thread's
//    live state is striped so its accesses always fall in the i-th bank,
//    making indirect (data-dependent) accesses conflict-free.
//  * kWordInterleaved — the generic CUDA mapping (bank = word % banks),
//    under which indirect accesses from different lanes can collide.

#include <vector>

#include "common/types.hpp"

namespace mlp::mem {

enum class BankMapping : u8 { kLanePrivate, kWordInterleaved };

class SharedMemBanking {
 public:
  SharedMemBanking(u32 banks, BankMapping mapping)
      : banks_(banks), mapping_(mapping) {
    MLP_CHECK(banks_ > 0, "need at least one bank");
  }

  struct LaneAccess {
    u32 lane;
    u32 addr;  ///< local-space byte address
  };

  /// Cycles to service all of a warp's accesses in one shared-memory op.
  u32 conflict_cycles(const std::vector<LaneAccess>& accesses) const {
    if (accesses.empty()) return 0;
    std::vector<u32> per_bank(banks_, 0);
    u32 worst = 0;
    for (const LaneAccess& a : accesses) {
      const u32 bank = mapping_ == BankMapping::kLanePrivate
                           ? a.lane % banks_
                           : (a.addr / 4) % banks_;
      worst = std::max(worst, ++per_bank[bank]);
    }
    return worst;
  }

  BankMapping mapping() const { return mapping_; }

 private:
  u32 banks_;
  BankMapping mapping_;
};

}  // namespace mlp::mem
