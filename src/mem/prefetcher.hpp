#pragma once
// Sequential / stride stream prefetcher at cache-block granularity: the
// "cache-block prefetch" the paper grants to the GPGPU, VWS and SSMC
// baselines. Detects a constant line stride (1 for the GPGPU's coalesced
// stream, row-sized strides for an SSMC core hopping between field rows) and
// runs `degree` lines ahead up to `distance` once confident.

#include <vector>

#include "common/types.hpp"
#include "sim/snapshot.hpp"

namespace mlp::mem {

class StreamPrefetcher : public sim::Snapshottable {
 public:
  StreamPrefetcher(u32 line_bytes, u32 degree, u32 distance)
      : line_bytes_(line_bytes), degree_(degree), distance_(distance) {}

  /// Observe a demand access; returns line addresses to prefetch now.
  std::vector<Addr> observe(Addr addr);

  void reset();

  // sim::Snapshottable: the stride-detection state (pure data).
  void save_state(sim::SnapshotWriter& w) const override {
    w.put_bool(has_last_);
    w.put_u64(last_line_);
    w.put_u64(static_cast<u64>(stride_));
    w.put_u32(confidence_);
    w.put_u64(issued_up_to_);
  }
  void restore_state(sim::SnapshotCursor& r) override {
    has_last_ = r.get_bool();
    last_line_ = r.get_u64();
    stride_ = static_cast<i64>(r.get_u64());
    confidence_ = r.get_u32();
    issued_up_to_ = r.get_u64();
  }

 private:
  u32 line_bytes_;
  u32 degree_;
  u32 distance_;

  bool has_last_ = false;
  u64 last_line_ = 0;
  i64 stride_ = 0;      ///< in lines
  u32 confidence_ = 0;  ///< consecutive accesses matching the stride
  u64 issued_up_to_ = 0;  ///< furthest line already prefetched on this stream
};

/// Jitter-tolerant sequential window prefetcher for a GLOBALLY sequential
/// stream produced by many slightly out-of-phase requesters (an SM's warps
/// marching through the interleaved layout). It tracks a high-water mark and
/// runs `distance` lines ahead of the newest access, so reordered accesses
/// behind the head neither confuse it nor re-issue covered lines.
class SequentialPrefetcher : public sim::Snapshottable {
 public:
  SequentialPrefetcher(u32 line_bytes, u32 degree, u32 distance)
      : line_bytes_(line_bytes), degree_(degree), distance_(distance) {}

  std::vector<Addr> observe(Addr addr);

  // sim::Snapshottable: the high-water-mark window cursor.
  void save_state(sim::SnapshotWriter& w) const override {
    w.put_bool(started_);
    w.put_u64(next_line_);
  }
  void restore_state(sim::SnapshotCursor& r) override {
    started_ = r.get_bool();
    next_line_ = r.get_u64();
  }

 private:
  u32 line_bytes_;
  u32 degree_;
  u32 distance_;
  bool started_ = false;
  u64 next_line_ = 0;  ///< first line not yet prefetched
};

/// A table of independent stride streams, as real prefetchers keep: each
/// access is routed to the stream whose last line is nearest (within a
/// window), so interleaved access streams — e.g. 32 narrow VWS warps or a
/// core hopping between field rows — are each tracked separately instead of
/// destroying one another's stride detection. LRU replacement.
class StreamTable : public sim::Snapshottable {
 public:
  StreamTable(u32 line_bytes, u32 degree, u32 distance, u32 streams);

  /// Observe a demand access; returns line addresses to prefetch now.
  std::vector<Addr> observe(Addr addr);

  // sim::Snapshottable: every stream slot (including its nested stride
  // prefetcher) plus the LRU clock.
  void save_state(sim::SnapshotWriter& w) const override {
    w.put_u32(static_cast<u32>(entries_.size()));
    for (const Entry& entry : entries_) {
      entry.prefetcher.save_state(w);
      w.put_u64(entry.last_line);
      w.put_bool(entry.valid);
      w.put_u64(entry.lru);
    }
    w.put_u64(clock_);
  }
  void restore_state(sim::SnapshotCursor& r) override {
    const u32 streams = r.get_u32();
    MLP_SIM_CHECK(streams == entries_.size(), "snapshot",
                  "snapshot stream count does not match this prefetcher");
    for (Entry& entry : entries_) {
      entry.prefetcher.restore_state(r);
      entry.last_line = r.get_u64();
      entry.valid = r.get_bool();
      entry.lru = r.get_u64();
    }
    clock_ = r.get_u64();
  }

 private:
  struct Entry {
    StreamPrefetcher prefetcher;
    u64 last_line = 0;
    bool valid = false;
    u64 lru = 0;
  };

  u32 line_bytes_;
  u32 degree_;
  u32 distance_;
  std::vector<Entry> entries_;
  u64 clock_ = 0;
};

}  // namespace mlp::mem
