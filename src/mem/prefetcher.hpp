#pragma once
// Sequential / stride stream prefetcher at cache-block granularity: the
// "cache-block prefetch" the paper grants to the GPGPU, VWS and SSMC
// baselines. Detects a constant line stride (1 for the GPGPU's coalesced
// stream, row-sized strides for an SSMC core hopping between field rows) and
// runs `degree` lines ahead up to `distance` once confident.

#include <vector>

#include "common/types.hpp"

namespace mlp::mem {

class StreamPrefetcher {
 public:
  StreamPrefetcher(u32 line_bytes, u32 degree, u32 distance)
      : line_bytes_(line_bytes), degree_(degree), distance_(distance) {}

  /// Observe a demand access; returns line addresses to prefetch now.
  std::vector<Addr> observe(Addr addr);

  void reset();

 private:
  u32 line_bytes_;
  u32 degree_;
  u32 distance_;

  bool has_last_ = false;
  u64 last_line_ = 0;
  i64 stride_ = 0;      ///< in lines
  u32 confidence_ = 0;  ///< consecutive accesses matching the stride
  u64 issued_up_to_ = 0;  ///< furthest line already prefetched on this stream
};

/// Jitter-tolerant sequential window prefetcher for a GLOBALLY sequential
/// stream produced by many slightly out-of-phase requesters (an SM's warps
/// marching through the interleaved layout). It tracks a high-water mark and
/// runs `distance` lines ahead of the newest access, so reordered accesses
/// behind the head neither confuse it nor re-issue covered lines.
class SequentialPrefetcher {
 public:
  SequentialPrefetcher(u32 line_bytes, u32 degree, u32 distance)
      : line_bytes_(line_bytes), degree_(degree), distance_(distance) {}

  std::vector<Addr> observe(Addr addr);

 private:
  u32 line_bytes_;
  u32 degree_;
  u32 distance_;
  bool started_ = false;
  u64 next_line_ = 0;  ///< first line not yet prefetched
};

/// A table of independent stride streams, as real prefetchers keep: each
/// access is routed to the stream whose last line is nearest (within a
/// window), so interleaved access streams — e.g. 32 narrow VWS warps or a
/// core hopping between field rows — are each tracked separately instead of
/// destroying one another's stride detection. LRU replacement.
class StreamTable {
 public:
  StreamTable(u32 line_bytes, u32 degree, u32 distance, u32 streams);

  /// Observe a demand access; returns line addresses to prefetch now.
  std::vector<Addr> observe(Addr addr);

 private:
  struct Entry {
    StreamPrefetcher prefetcher;
    u64 last_line = 0;
    bool valid = false;
    u64 lru = 0;
  };

  u32 line_bytes_;
  u32 degree_;
  u32 distance_;
  std::vector<Entry> entries_;
  u64 clock_ = 0;
};

}  // namespace mlp::mem
