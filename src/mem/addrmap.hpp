#pragma once
// DRAM address decomposition. Rows are interleaved across banks
// (bank = rowId % banks) so that a sequential row stream — exactly what
// Millipede's row prefetcher produces — overlaps each row's activation with
// the previous row's data transfer on a different bank.

#include "common/config.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace mlp::mem {

struct DramCoord {
  u32 bank = 0;
  u64 row = 0;     ///< row index within the bank
  u32 column = 0;  ///< byte offset within the row
};

class AddressMap {
 public:
  explicit AddressMap(const DramConfig& cfg)
      : row_bytes_(cfg.row_bytes),
        row_shift_(log2_exact(cfg.row_bytes)),
        bank_mask_(cfg.banks - 1),
        bank_shift_(log2_exact(cfg.banks)) {
    MLP_CHECK(is_pow2(cfg.banks), "bank count must be a power of two");
  }

  DramCoord decode(Addr addr) const {
    const u64 row_id = addr >> row_shift_;
    return DramCoord{static_cast<u32>(row_id & bank_mask_),
                     row_id >> bank_shift_,
                     static_cast<u32>(addr & (row_bytes_ - 1))};
  }

  /// Global row id (bank-agnostic), the unit of Millipede's row prefetch.
  u64 row_id(Addr addr) const { return addr >> row_shift_; }

  Addr row_base(u64 row_id) const { return row_id << row_shift_; }

  u32 row_bytes() const { return row_bytes_; }

 private:
  u32 row_bytes_;
  u32 row_shift_;
  u64 bank_mask_;
  u32 bank_shift_;
};

}  // namespace mlp::mem
