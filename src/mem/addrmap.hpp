#pragma once
// DRAM address decomposition over a configurable channel x rank x bank
// hierarchy. The physical interleave is a composition of BitFields (after
// the phobos DRAM model): each coordinate is a contiguous bit slice of the
// flat address, and DramConfig::mapping orders the slices, most significant
// first ("row:bank:col", "row:rank:bank:channel:col", "row:col:bank:channel",
// ...). `row` must lead so capacity grows upward and `col` must appear;
// fields whose dimension is 1 may be omitted (they contribute zero bits).
//
// The default "row:bank:col" reproduces the legacy fixed interleave exactly:
// bank = rowId % banks, row = rowId / banks, column = addr % row_bytes —
// a sequential row stream (exactly what Millipede's row prefetcher produces)
// overlaps each row's activation with the previous row's transfer on a
// different bank.
//
// Mappings that place channel/rank/bank fields BELOW the column field
// interleave at sub-row granularity: one contiguous row-sized block then
// stripes across those dimensions. stripes()/stripe_coord() expose that
// split so the channel demux can fan a single request out into per-channel
// sub-transfers.
//
// Functionally the image stays flat: row_id()/row_base() keep addressing
// contiguous row_bytes-sized blocks (the unit of Millipede's row prefetch
// and of the data layout), independent of the physical interleave.

#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace mlp::mem {

/// One contiguous bit slice of a flat address (phobos-style).
struct BitField {
  u32 width = 0;
  u32 offset = 0;

  u64 mask() const {
    return width >= 64 ? ~u64{0} : ((u64{1} << width) - 1);
  }
  u64 value(Addr addr) const {
    return (static_cast<u64>(addr) >> offset) & mask();
  }
  Addr place(u64 v) const { return (v & mask()) << offset; }
};

struct DramCoord {
  u32 channel = 0;
  u32 rank = 0;
  u32 bank = 0;    ///< bank index within the rank
  u64 row = 0;     ///< row index within the bank
  u32 column = 0;  ///< byte offset within the physical row
};

class AddressMap {
 public:
  /// Builds the field composition from cfg.mapping. Throws
  /// SimError("config") on non-power-of-two geometry, a malformed mapping
  /// string (unknown/duplicate/empty fields, row not leading, col missing)
  /// or a zero-width field (a dimension larger than 1 omitted from the
  /// mapping).
  explicit AddressMap(const DramConfig& cfg);

  /// Geometry-independent grammar check for a mapping string (known fields,
  /// no duplicates, row leading, col present). Throws SimError("config") on
  /// violation. The command-line tools use it to reject a malformed
  /// --mapping eagerly (exit 2) before the grid expands; zero-width-field
  /// violations depend on the per-point geometry and stay per-point errors.
  static void check_grammar(const std::string& mapping);

  DramCoord decode(Addr addr) const {
    DramCoord coord;
    coord.channel = static_cast<u32>(channel_.value(addr));
    coord.rank = static_cast<u32>(rank_.value(addr));
    coord.bank = static_cast<u32>(bank_.value(addr));
    coord.row = row_.value(addr);
    coord.column = static_cast<u32>(column_.value(addr));
    return coord;
  }

  /// Inverse of decode (bijective over the address space; property-tested).
  Addr encode(const DramCoord& coord) const {
    return channel_.place(coord.channel) | rank_.place(coord.rank) |
           bank_.place(coord.bank) | row_.place(coord.row) |
           column_.place(coord.column);
  }

  /// Global row id (hierarchy-agnostic), the unit of Millipede's row
  /// prefetch and of the functional data layout.
  u64 row_id(Addr addr) const { return addr >> row_shift_; }

  Addr row_base(u64 row_id) const { return row_id << row_shift_; }

  u32 row_bytes() const { return row_bytes_; }
  u32 channels() const { return channels_; }
  u32 ranks() const { return ranks_; }
  u32 banks() const { return banks_; }

  /// Sub-transfers a contiguous row-sized block spreads across: the product
  /// of the channel/rank/bank dimensions whose field sits below the column
  /// field. 1 for coarse (whole-request) interleaves like the default.
  u32 stripes() const { return stripes_; }

  /// Coordinate of stripe `s` (in [0, stripes())) of a request whose base
  /// decodes to `base`: the sub-column fields are replaced by the s'th
  /// combination (lowest-offset field advancing fastest, matching the
  /// order contiguous addresses walk the combinations).
  DramCoord stripe_coord(DramCoord base, u32 s) const {
    for (u32 i = 0; i < num_striped_; ++i) {
      const u32 digit = s % striped_[i].count;
      s /= striped_[i].count;
      switch (striped_[i].which) {
        case kChannel: base.channel = digit; break;
        case kRank: base.rank = digit; break;
        default: base.bank = digit; break;
      }
    }
    return base;
  }

  /// Inverse of stripe_coord's combination index for a decoded coordinate.
  u32 stripe_index(const DramCoord& coord) const {
    u32 index = 0;
    for (u32 i = num_striped_; i > 0; --i) {
      const StripedField& field = striped_[i - 1];
      const u32 digit = field.which == kChannel ? coord.channel
                        : field.which == kRank  ? coord.rank
                                                : coord.bank;
      index = index * field.count + digit;
    }
    return index;
  }

  // Field accessors for the mapping property tests.
  const BitField& channel_field() const { return channel_; }
  const BitField& rank_field() const { return rank_; }
  const BitField& bank_field() const { return bank_; }
  const BitField& row_field() const { return row_; }
  const BitField& column_field() const { return column_; }

 private:
  enum Which : u32 { kChannel = 0, kRank = 1, kBank = 2 };
  struct StripedField {
    Which which = kChannel;
    u32 count = 1;
  };

  u32 row_bytes_ = 0;
  u32 row_shift_ = 0;
  u32 channels_ = 1;
  u32 ranks_ = 1;
  u32 banks_ = 1;
  u32 stripes_ = 1;
  u32 num_striped_ = 0;
  StripedField striped_[3];  ///< below-column fields, ascending offset
  BitField channel_, rank_, bank_, row_, column_;
};

}  // namespace mlp::mem
