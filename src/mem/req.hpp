#pragma once
// Memory request/response types exchanged between cores, caches, prefetch
// buffers and the memory controller.

#include <functional>

#include "common/types.hpp"

namespace mlp::mem {

/// A read or write of `bytes` starting at `addr`. Completion is signalled by
/// invoking `on_complete` with the time the last data beat leaves the
/// channel. Timing-only: functional data lives in the flat DramImage.
struct MemRequest {
  Addr addr = 0;
  u32 bytes = 0;
  bool is_write = false;
  bool is_prefetch = false;
  std::function<void(Picos)> on_complete;  ///< may be empty (e.g. writebacks)
};

}  // namespace mlp::mem
