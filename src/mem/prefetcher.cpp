#include "mem/prefetcher.hpp"

namespace mlp::mem {

void StreamPrefetcher::reset() {
  has_last_ = false;
  stride_ = 0;
  confidence_ = 0;
  issued_up_to_ = 0;
}

std::vector<Addr> SequentialPrefetcher::observe(Addr addr) {
  const u64 line = addr / line_bytes_;
  std::vector<Addr> out;
  if (!started_) {
    started_ = true;
    next_line_ = line + 1;
    return out;
  }
  const u64 horizon = line + distance_;
  if (horizon < next_line_) return out;  // behind the head: covered
  u64 next = std::max(next_line_, line + 1);
  for (u32 issued = 0; issued < degree_ && next <= horizon; ++issued, ++next) {
    out.push_back(next * line_bytes_);
  }
  next_line_ = next;
  return out;
}

StreamTable::StreamTable(u32 line_bytes, u32 degree, u32 distance,
                         u32 streams)
    : line_bytes_(line_bytes), degree_(degree), distance_(distance) {
  MLP_CHECK(streams > 0, "stream table needs at least one stream");
  for (u32 i = 0; i < streams; ++i) {
    entries_.push_back(
        Entry{StreamPrefetcher(line_bytes, degree, distance), 0, false, 0});
  }
}

std::vector<Addr> StreamTable::observe(Addr addr) {
  const u64 line = addr / line_bytes_;
  // Route to the nearest tracked stream (within a generous window scaled by
  // the prefetch distance); otherwise claim the LRU slot for a new stream.
  Entry* best = nullptr;
  u64 best_gap = static_cast<u64>(distance_ + 1) * 64;  // match window
  for (Entry& entry : entries_) {
    if (!entry.valid) continue;
    const u64 gap = entry.last_line > line ? entry.last_line - line
                                           : line - entry.last_line;
    if (gap < best_gap) {
      best_gap = gap;
      best = &entry;
    }
  }
  if (best == nullptr) {
    for (Entry& entry : entries_) {
      if (best == nullptr || entry.lru < best->lru) best = &entry;
    }
    best->prefetcher.reset();
    best->valid = true;
  }
  best->last_line = line;
  best->lru = ++clock_;
  return best->prefetcher.observe(addr);
}

std::vector<Addr> StreamPrefetcher::observe(Addr addr) {
  const u64 line = addr / line_bytes_;
  std::vector<Addr> out;
  if (has_last_) {
    if (line == last_line_) return out;  // same line: no new information
    const i64 stride = static_cast<i64>(line) - static_cast<i64>(last_line_);
    if (stride == stride_) {
      if (confidence_ < 4) ++confidence_;
    } else {
      stride_ = stride;
      confidence_ = 1;
      issued_up_to_ = line;
    }
    if (confidence_ >= 2 && stride_ != 0) {
      // Run ahead of the stream: issue up to `degree` new lines but never
      // more than `distance` strides beyond the current access.
      const i64 horizon = static_cast<i64>(line) + stride_ * distance_;
      u32 issued = 0;
      i64 next = static_cast<i64>(issued_up_to_) + stride_;
      if ((stride_ > 0 && next <= static_cast<i64>(line)) ||
          (stride_ < 0 && next >= static_cast<i64>(line))) {
        next = static_cast<i64>(line) + stride_;
      }
      while (issued < degree_ &&
             ((stride_ > 0 && next <= horizon) ||
              (stride_ < 0 && next >= horizon))) {
        if (next >= 0) {
          out.push_back(static_cast<Addr>(next) * line_bytes_);
          issued_up_to_ = static_cast<u64>(next);
        }
        next += stride_;
        ++issued;
      }
    }
  }
  has_last_ = true;
  last_line_ = line;
  return out;
}

}  // namespace mlp::mem
