#include "mem/controller.hpp"

#include <algorithm>

namespace mlp::mem {

MemoryController::MemoryController(const DramConfig& cfg,
                                   std::string stat_prefix, StatSet* stats)
    : cfg_(cfg),
      map_(cfg),
      period_ps_(cfg.period_ps()),
      bytes_per_cycle_(cfg.bytes_per_cycle()),
      banks_(cfg.banks) {
  if (stats != nullptr) {
    stats->add(stat_prefix + ".reads", &reads_);
    stats->add(stat_prefix + ".writes", &writes_);
    stats->add(stat_prefix + ".row_hits", &row_hits_);
    stats->add(stat_prefix + ".row_misses", &row_misses_);
    stats->add(stat_prefix + ".bytes", &bytes_);
    stats->add(stat_prefix + ".queue_rejections", &rejected_);
  }
}

bool MemoryController::try_push(MemRequest request, Picos now) {
  if (queue_.size() >= cfg_.queue_depth) {
    rejected_.inc();
    return false;
  }
  MLP_CHECK(request.bytes > 0, "empty request");
  Pending pending;
  pending.coord = map_.decode(request.addr);
  // A request must not straddle a row boundary: callers split at rows.
  MLP_CHECK(pending.coord.column + request.bytes <= cfg_.row_bytes,
            "request crosses a row boundary");
  pending.request = std::move(request);
  pending.arrived_at = now;
  pending.order = next_order_++;
  queue_.push_back(std::move(pending));
  return true;
}

bool MemoryController::try_issue(Pending& pending, Picos now,
                                 bool row_hit_only) {
  Bank& bank = banks_[pending.coord.bank];
  if (bank.ready_at > now) return false;

  const bool row_hit = bank.has_open_row && bank.open_row == pending.coord.row;
  if (row_hit_only && !row_hit) return false;

  Picos cas_start;
  if (row_hit) {
    cas_start = now;
    row_hits_.inc();
  } else {
    Picos start = now;
    if (bank.has_open_row) {
      // Respect tRAS before precharging the currently open row.
      const Picos ras_done = bank.activated_at + cycles(cfg_.t_ras);
      start = std::max(start, ras_done) + cycles(cfg_.t_rp);
    }
    const Picos act_start = start;
    cas_start = act_start + cycles(cfg_.t_rcd);
    bank.has_open_row = true;
    bank.open_row = pending.coord.row;
    bank.activated_at = act_start;
    row_misses_.inc();
  }

  const Picos data_start =
      std::max(cas_start + cycles(cfg_.t_cas), bus_free_at_);
  const Picos data_end = data_start + transfer_ps(pending.request.bytes);
  bus_free_at_ = data_end;
  bank.ready_at = data_end;
  busy_ps_ += data_end - data_start;

  bytes_.inc(pending.request.bytes);
  if (pending.request.is_write) {
    writes_.inc();
  } else {
    reads_.inc();
  }
  in_flight_.push_back(InFlight{std::move(pending.request), data_end});
  return true;
}

void MemoryController::tick(Picos now) {
  // Retire completed transfers.
  for (size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].done_at <= now) {
      if (in_flight_[i].request.on_complete) {
        in_flight_[i].request.on_complete(in_flight_[i].done_at);
      }
      in_flight_[i] = std::move(in_flight_.back());
      in_flight_.pop_back();
    } else {
      ++i;
    }
  }

  if (queue_.empty()) return;

  // FR: any ready row-buffer hit, oldest first.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (try_issue(*it, now, /*row_hit_only=*/true)) {
      queue_.erase(it);
      return;
    }
  }
  // FCFS: oldest request whose bank can begin the activate sequence.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (try_issue(*it, now, /*row_hit_only=*/false)) {
      queue_.erase(it);
      return;
    }
  }
}

}  // namespace mlp::mem
