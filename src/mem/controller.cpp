#include "mem/controller.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace mlp::mem {

MemoryController::MemoryController(const DramConfig& cfg, u32 channel,
                                   const AddressMap* map,
                                   DramCounters* counters,
                                   Counter* channel_bytes, StatSet* stats,
                                   const std::string& stat_prefix,
                                   trace::TraceSession* trace)
    : cfg_(cfg),
      channel_(channel),
      trace_(trace),
      map_(map),
      policy_(parse_page_policy(cfg.page_policy)),
      refresh_(parse_refresh(cfg.refresh)),
      period_ps_(cfg.period_ps()),
      bytes_per_cycle_(cfg.bytes_per_cycle()),
      track_base_(trace::kDramTrackBase + channel * cfg.ranks * cfg.banks),
      counters_(counters),
      channel_bytes_(channel_bytes),
      banks_(static_cast<size_t>(cfg.ranks) * cfg.banks),
      ranks_(cfg.ranks) {
  if (refresh_.enabled) {
    trefi_ps_ = cycles(refresh_.t_refi);
    trfc_ps_ = cycles(refresh_.t_rfc);
    for (RankState& rank : ranks_) rank.next_due = trefi_ps_;
  }
  if (cfg.fault.enabled()) {
    // Each channel draws an independent, deterministic fault stream:
    // channel 0 keeps the configured seed (bit-identity with the
    // single-channel model), further channels mix the channel index in.
    FaultConfig fault_cfg = cfg.fault;
    fault_cfg.seed += u64{0x9e3779b97f4a7c15} * channel;
    const std::string prefix =
        channel == 0 ? stat_prefix + ".fault"
                     : stat_prefix + ".ch" + std::to_string(channel) +
                           ".fault";
    injector_ = std::make_unique<FaultInjector>(fault_cfg, stats, prefix);
  }
}

bool MemoryController::try_push(MemRequest request, const DramCoord& coord,
                                Picos now) {
  if (queue_.size() >= cfg_.queue_depth) {
    counters_->rejected.inc();
    return false;
  }
  MLP_SIM_CHECK(request.bytes > 0, "config", "empty request");
  // A request must not straddle a row boundary: callers split at rows (and
  // the demux splits sub-row interleaves into per-bank stripes).
  MLP_SIM_CHECK(coord.column + request.bytes <= cfg_.row_bytes, "config",
                "request crosses a row boundary");
  Pending pending;
  pending.coord = coord;
  pending.request = std::move(request);
  pending.arrived_at = now;
  pending.order = next_order_++;
  queue_.push_back(std::move(pending));
  return true;
}

Picos MemoryController::apply_faults(const MemRequest& request,
                                     const DramCoord& coord, Picos now,
                                     bool* needs_retry) {
  TransferFaults faults = injector_->draw(request.bytes);
  Picos extra = 0;
  if (faults.delayed) extra += cycles(cfg_.fault.delay_cycles);
  if (faults.dropped) *needs_retry = true;
  if (trace_ != nullptr &&
      (faults.delayed || faults.dropped || !faults.flipped_bits.empty())) {
    const u64 kind = !faults.flipped_bits.empty() ? 1 : faults.delayed ? 2 : 3;
    trace_->emit(trace::Domain::kChannel, trace::EventKind::kFault, now,
                 bank_track(coord), request.addr, kind);
  }

  if (!faults.flipped_bits.empty()) {
    if (cfg_.fault.ecc) {
      // SECDED over 64-bit data words: one flip per word corrects, two or
      // more detect as uncorrectable — the whole transfer is re-read.
      u64 word = ~u64{0};
      u32 flips_in_word = 0;
      for (const u32 bit : faults.flipped_bits) {  // bits arrive sorted
        if (bit / 64 != word) {
          if (flips_in_word == 1) counters_->ecc_corrected.inc();
          word = bit / 64;
          flips_in_word = 0;
        }
        ++flips_in_word;
        if (flips_in_word == 2) {
          counters_->ecc_detected.inc();
          *needs_retry = true;
        }
      }
      if (flips_in_word == 1) counters_->ecc_corrected.inc();
    } else {
      // No ECC: the flips land in the functional bytes. Golden verification
      // turns this into a per-job failure instead of a silent wrong result.
      for (const u32 bit : faults.flipped_bits) {
        if (image_ != nullptr) {
          image_->flip_bit(request.addr + bit / 8, bit % 8);
        }
        counters_->silent_corruptions.inc();
      }
    }
  }
  return extra;
}

bool MemoryController::try_issue(Pending& pending, Picos now,
                                 bool row_hit_only) {
  // A rank at its refresh-postponement cap stops issuing demand accesses
  // until it catches up (the JEDEC debt window).
  if (refresh_.enabled &&
      ranks_[pending.coord.rank].debt >= refresh_.max_postponed) {
    return false;
  }
  Bank& bank = bank_at(pending.coord);
  if (bank.ready_at > now) return false;

  const bool row_hit = bank.has_open_row && bank.open_row == pending.coord.row;
  if (row_hit_only && !row_hit) return false;

  const u32 track = bank_track(pending.coord);
  Picos cas_start;
  if (row_hit) {
    cas_start = now;
    counters_->row_hits.inc();
    ++bank.accesses;
  } else {
    Picos start = now;
    if (bank.has_open_row) {
      // Respect tRAS before precharging the currently open row.
      const Picos ras_done = bank.activated_at + cycles(cfg_.t_ras);
      const Picos pre_start = std::max(start, ras_done);
      start = pre_start + cycles(cfg_.t_rp);
      if (trace_ != nullptr) {
        trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramPrecharge,
                     pre_start, track, bank.open_row);
      }
    }
    const Picos act_start = start;
    cas_start = act_start + cycles(cfg_.t_rcd);
    bank.has_open_row = true;
    bank.open_row = pending.coord.row;
    bank.activated_at = act_start;
    bank.accesses = 1;
    counters_->row_misses.inc();
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramActivate,
                   act_start, track, pending.coord.row);
    }
  }

  const Picos data_start =
      std::max(cas_start + cycles(cfg_.t_cas), bus_free_at_);
  Picos data_end = data_start + transfer_ps(pending.request.bytes);
  bus_free_at_ = data_end;
  bank.ready_at = data_end;
  busy_ps_ += data_end - data_start;

  counters_->bytes.inc(pending.request.bytes);
  if (channel_bytes_ != nullptr) channel_bytes_->inc(pending.request.bytes);
  if (pending.request.is_write) {
    counters_->writes.inc();
  } else {
    counters_->reads.inc();
  }
  if (trace_ != nullptr) {
    trace_->emit(trace::Domain::kChannel,
                 pending.request.is_write ? trace::EventKind::kDramWrite
                                          : trace::EventKind::kDramRead,
                 data_start, track, pending.coord.row, row_hit ? 1 : 0);
  }

  // Hit-streak cap: autoprecharge after this access once the row has served
  // max_row_hits column accesses (closed-page when the cap is 1).
  if (policy_.max_row_hits != 0 && bank.accesses >= policy_.max_row_hits) {
    const Picos pre_start =
        std::max(data_end, bank.activated_at + cycles(cfg_.t_ras));
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramPrecharge,
                   pre_start, track, bank.open_row);
    }
    counters_->explicit_precharges.inc();
    bank.has_open_row = false;
    bank.accesses = 0;
    bank.ready_at = pre_start + cycles(cfg_.t_rp);
  }

  InFlight transfer;
  transfer.attempts = pending.attempts;
  transfer.coord = pending.coord;
  if (injector_ != nullptr) {
    // Fault draw at issue: the injected delay lands on the response time
    // only (the bus/bank occupancy above is the physical transfer).
    data_end += apply_faults(pending.request, pending.coord, now,
                             &transfer.needs_retry);
  }
  transfer.request = std::move(pending.request);
  transfer.done_at = data_end;
  in_flight_.push_back(std::move(transfer));
  return true;
}

void MemoryController::apply_idle_closures(Picos now) {
  const Picos idle_ps = cycles(policy_.max_row_idle);
  for (u32 b = 0; b < banks_.size(); ++b) {
    Bank& bank = banks_[b];
    if (!bank.has_open_row) continue;
    // The row starts idling when its last transfer leaves the bank
    // (ready_at); a future ready_at means a transfer is still in progress.
    const Picos deadline = bank.ready_at + idle_ps;
    if (deadline > now) continue;
    const Picos pre_start =
        std::max(deadline, bank.activated_at + cycles(cfg_.t_ras));
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramPrecharge,
                   pre_start, track_base_ + b, bank.open_row);
    }
    counters_->explicit_precharges.inc();
    bank.has_open_row = false;
    bank.accesses = 0;
    bank.ready_at = pre_start + cycles(cfg_.t_rp);
  }
}

Picos MemoryController::rank_refresh_ready(u32 r) const {
  Picos ready = 0;
  for (u32 b = 0; b < cfg_.banks; ++b) {
    const Bank& bank = banks_[r * cfg_.banks + b];
    ready = std::max(ready, bank.ready_at);
    if (bank.has_open_row) {
      ready = std::max(ready, bank.activated_at + cycles(cfg_.t_ras));
    }
  }
  return ready;
}

void MemoryController::run_refresh(Picos now) {
  for (u32 r = 0; r < ranks_.size(); ++r) {
    RankState& rank = ranks_[r];
    while (now >= rank.next_due) {
      ++rank.debt;
      rank.next_due += trefi_ps_;
    }
    if (rank.debt == 0) continue;
    // Postpone while demand is queued for the rank, unless the JEDEC debt
    // window is exhausted (try_issue then blocks the rank's demand, so the
    // banks drain and the refresh goes through).
    const bool demand = rank_has_demand(r);
    if (demand && rank.debt < refresh_.max_postponed) continue;
    if (rank_refresh_ready(r) > now) continue;

    // All banks of the rank must be precharged for REF; close any open rows
    // first (one extra tRP) and block the rank for tRFC.
    bool any_open = false;
    for (u32 b = 0; b < cfg_.banks; ++b) {
      if (banks_[r * cfg_.banks + b].has_open_row) any_open = true;
    }
    const Picos stall = (any_open ? cycles(cfg_.t_rp) : 0) + trfc_ps_;
    for (u32 b = 0; b < cfg_.banks; ++b) {
      Bank& bank = banks_[r * cfg_.banks + b];
      if (bank.has_open_row && trace_ != nullptr) {
        trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramPrecharge,
                     now, track_base_ + r * cfg_.banks + b, bank.open_row);
      }
      bank.has_open_row = false;
      bank.accesses = 0;
      bank.ready_at = now + stall;
    }
    counters_->refreshes.inc();
    // Deterministic stall attribution: a refresh only counts as interference
    // when demand was queued behind it at issue time.
    if (demand) counters_->refresh_stall_ps.inc(stall);
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramRefresh,
                   now, track_base_ + r * cfg_.banks, r, rank.debt);
    }
    --rank.debt;
  }
}

void MemoryController::requeue(InFlight&& transfer, Picos now) {
  if (transfer.attempts + 1 > cfg_.fault.max_retries) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "transfer addr=0x%llx bytes=%u failed %u attempts",
                  static_cast<unsigned long long>(transfer.request.addr),
                  transfer.request.bytes, transfer.attempts + 1);
    throw SimError("memory-fault",
                   cfg_.fault.ecc
                       ? "uncorrectable ECC error: retry budget exhausted"
                       : "dropped response: retry budget exhausted",
                   detail);
  }
  counters_->retries.inc();
  Pending pending;
  pending.coord = transfer.coord;
  pending.request = std::move(transfer.request);
  pending.arrived_at = now;
  pending.order = next_order_++;
  pending.attempts = transfer.attempts + 1;
  // Retries bypass the scheduler-window cap: the slot the original transfer
  // occupied has already drained, and rejecting a retry could deadlock
  // callers that have no retry loop for completions.
  queue_.push_back(std::move(pending));
}

void MemoryController::tick(Picos now) {
  // Retire completed transfers.
  for (size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].done_at <= now) {
      InFlight transfer = std::move(in_flight_[i]);
      in_flight_[i] = std::move(in_flight_.back());
      in_flight_.pop_back();
      if (transfer.needs_retry) {
        requeue(std::move(transfer), now);
      } else if (transfer.request.on_complete) {
        transfer.request.on_complete(transfer.done_at);
      }
    } else {
      ++i;
    }
  }

  if (policy_.max_row_idle != 0) apply_idle_closures(now);
  if (refresh_.enabled) run_refresh(now);

  if (queue_.empty()) return;

  // FR: any ready row-buffer hit, oldest first.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (try_issue(*it, now, /*row_hit_only=*/true)) {
      queue_.erase(it);
      return;
    }
  }
  // FCFS: oldest request whose bank can begin the activate sequence.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (try_issue(*it, now, /*row_hit_only=*/false)) {
      queue_.erase(it);
      return;
    }
  }
}

Picos MemoryController::next_event(Picos now) const {
  Picos at = sim::kNoEvent;
  for (const InFlight& transfer : in_flight_) {
    at = std::min(at, std::max(transfer.done_at, now));
  }
  for (const Pending& pending : queue_) {
    at = std::min(at, std::max(bank_at(pending.coord).ready_at, now));
  }
  if (policy_.max_row_idle != 0) {
    const Picos idle_ps = cycles(policy_.max_row_idle);
    for (const Bank& bank : banks_) {
      if (bank.has_open_row) {
        at = std::min(at, std::max(bank.ready_at + idle_ps, now));
      }
    }
  }
  if (refresh_.enabled) {
    for (u32 r = 0; r < ranks_.size(); ++r) {
      const RankState& rank = ranks_[r];
      // Accrual edges are observable (the refresh-debt gauge), and once debt
      // is owed the issue point matters; postponed-by-demand refreshes wake
      // through the pending entries above.
      at = std::min(at, std::max(rank.next_due, now));
      if (rank.debt > 0 &&
          (rank.debt >= refresh_.max_postponed || !rank_has_demand(r))) {
        at = std::min(at, std::max(rank_refresh_ready(r), now));
      }
    }
  }
  return at;
}

void MemoryController::save_state(sim::SnapshotWriter& w) const {
  MLP_SIM_CHECK(idle(), "snapshot",
                "memory controller captured with outstanding transfers");
  w.put_u32(static_cast<u32>(banks_.size()));
  for (const Bank& bank : banks_) {
    w.put_bool(bank.has_open_row);
    w.put_u64(bank.open_row);
    w.put_u64(bank.ready_at);
    w.put_u64(bank.activated_at);
    w.put_u32(bank.accesses);
  }
  w.put_u32(static_cast<u32>(ranks_.size()));
  for (const RankState& rank : ranks_) {
    w.put_u64(rank.next_due);
    w.put_u32(rank.debt);
  }
  w.put_u64(next_order_);
  w.put_u64(bus_free_at_);
  w.put_u64(busy_ps_);
  w.put_u64(injector_ != nullptr ? injector_->transfers_drawn() : ~u64{0});
}

void MemoryController::restore_state(sim::SnapshotCursor& r) {
  const u32 banks = r.get_u32();
  MLP_SIM_CHECK(banks == banks_.size(), "snapshot",
                "snapshot bank count does not match this controller");
  for (Bank& bank : banks_) {
    bank.has_open_row = r.get_bool();
    bank.open_row = r.get_u64();
    bank.ready_at = r.get_u64();
    bank.activated_at = r.get_u64();
    bank.accesses = r.get_u32();
  }
  const u32 ranks = r.get_u32();
  MLP_SIM_CHECK(ranks == ranks_.size(), "snapshot",
                "snapshot rank count does not match this controller");
  for (RankState& rank : ranks_) {
    rank.next_due = r.get_u64();
    rank.debt = r.get_u32();
  }
  next_order_ = r.get_u64();
  bus_free_at_ = r.get_u64();
  busy_ps_ = r.get_u64();
  const u64 sequence = r.get_u64();
  MLP_SIM_CHECK((sequence == ~u64{0}) == (injector_ == nullptr), "snapshot",
                "snapshot fault-injection mode does not match this machine");
  if (injector_ != nullptr) injector_->set_sequence(sequence);
}

std::string MemoryController::debug_dump() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "  dram: queue=%u/%u in_flight=%u bus_free_at=%llu\n",
                queue_size(), queue_capacity(), in_flight_size(),
                static_cast<unsigned long long>(bus_free_at_));
  out += line;
  for (const Pending& p : queue_) {
    std::snprintf(line, sizeof(line),
                  "    queued addr=0x%llx bytes=%u bank=%u attempts=%u\n",
                  static_cast<unsigned long long>(p.request.addr),
                  p.request.bytes, p.coord.rank * cfg_.banks + p.coord.bank,
                  p.attempts);
    out += line;
  }
  for (const InFlight& f : in_flight_) {
    std::snprintf(line, sizeof(line),
                  "    in-flight addr=0x%llx bytes=%u done_at=%llu%s\n",
                  static_cast<unsigned long long>(f.request.addr),
                  f.request.bytes,
                  static_cast<unsigned long long>(f.done_at),
                  f.needs_retry ? " (retry pending)" : "");
    out += line;
  }
  for (u32 b = 0; b < banks_.size(); ++b) {
    std::snprintf(line, sizeof(line),
                  "    bank[%u] open=%d row=%llu ready_at=%llu\n", b,
                  banks_[b].has_open_row ? 1 : 0,
                  static_cast<unsigned long long>(banks_[b].open_row),
                  static_cast<unsigned long long>(banks_[b].ready_at));
    out += line;
  }
  if (refresh_.enabled) {
    for (u32 r = 0; r < ranks_.size(); ++r) {
      std::snprintf(line, sizeof(line),
                    "    rank[%u] refresh_debt=%u next_due=%llu\n", r,
                    ranks_[r].debt,
                    static_cast<unsigned long long>(ranks_[r].next_due));
      out += line;
    }
  }
  return out;
}

}  // namespace mlp::mem
