#include "mem/controller.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace mlp::mem {

MemoryController::MemoryController(const DramConfig& cfg,
                                   std::string stat_prefix, StatSet* stats,
                                   trace::TraceSession* trace)
    : cfg_(cfg),
      trace_(trace),
      map_(cfg),
      period_ps_(cfg.period_ps()),
      bytes_per_cycle_(cfg.bytes_per_cycle()),
      banks_(cfg.banks) {
  if (cfg.fault.enabled()) {
    injector_ = std::make_unique<FaultInjector>(cfg.fault, stats,
                                                stat_prefix + ".fault");
  }
  if (stats != nullptr) {
    stats->add(stat_prefix + ".reads", &reads_);
    stats->add(stat_prefix + ".writes", &writes_);
    stats->add(stat_prefix + ".row_hits", &row_hits_);
    stats->add(stat_prefix + ".row_misses", &row_misses_);
    stats->add(stat_prefix + ".bytes", &bytes_);
    stats->add(stat_prefix + ".queue_rejections", &rejected_);
    stats->add(stat_prefix + ".ecc_corrected", &ecc_corrected_);
    stats->add(stat_prefix + ".ecc_detected", &ecc_detected_);
    stats->add(stat_prefix + ".fault_retries", &retries_);
    stats->add(stat_prefix + ".silent_corruptions", &silent_corruptions_);
  }
}

bool MemoryController::try_push(MemRequest request, Picos now) {
  if (queue_.size() >= cfg_.queue_depth) {
    rejected_.inc();
    return false;
  }
  MLP_SIM_CHECK(request.bytes > 0, "config", "empty request");
  Pending pending;
  pending.coord = map_.decode(request.addr);
  // A request must not straddle a row boundary: callers split at rows.
  MLP_SIM_CHECK(pending.coord.column + request.bytes <= cfg_.row_bytes,
                "config", "request crosses a row boundary");
  pending.request = std::move(request);
  pending.arrived_at = now;
  pending.order = next_order_++;
  queue_.push_back(std::move(pending));
  return true;
}

Picos MemoryController::apply_faults(const MemRequest& request, Picos now,
                                     bool* needs_retry) {
  TransferFaults faults = injector_->draw(request.bytes);
  Picos extra = 0;
  if (faults.delayed) extra += cycles(cfg_.fault.delay_cycles);
  if (faults.dropped) *needs_retry = true;
  if (trace_ != nullptr &&
      (faults.delayed || faults.dropped || !faults.flipped_bits.empty())) {
    const u64 kind = !faults.flipped_bits.empty() ? 1 : faults.delayed ? 2 : 3;
    trace_->emit(trace::Domain::kChannel, trace::EventKind::kFault, now,
                 trace::kDramTrackBase + map_.decode(request.addr).bank,
                 request.addr, kind);
  }

  if (!faults.flipped_bits.empty()) {
    if (cfg_.fault.ecc) {
      // SECDED over 64-bit data words: one flip per word corrects, two or
      // more detect as uncorrectable — the whole transfer is re-read.
      u64 word = ~u64{0};
      u32 flips_in_word = 0;
      for (const u32 bit : faults.flipped_bits) {  // bits arrive sorted
        if (bit / 64 != word) {
          if (flips_in_word == 1) ecc_corrected_.inc();
          word = bit / 64;
          flips_in_word = 0;
        }
        ++flips_in_word;
        if (flips_in_word == 2) {
          ecc_detected_.inc();
          *needs_retry = true;
        }
      }
      if (flips_in_word == 1) ecc_corrected_.inc();
    } else {
      // No ECC: the flips land in the functional bytes. Golden verification
      // turns this into a per-job failure instead of a silent wrong result.
      for (const u32 bit : faults.flipped_bits) {
        if (image_ != nullptr) {
          image_->flip_bit(request.addr + bit / 8, bit % 8);
        }
        silent_corruptions_.inc();
      }
    }
  }
  return extra;
}

bool MemoryController::try_issue(Pending& pending, Picos now,
                                 bool row_hit_only) {
  Bank& bank = banks_[pending.coord.bank];
  if (bank.ready_at > now) return false;

  const bool row_hit = bank.has_open_row && bank.open_row == pending.coord.row;
  if (row_hit_only && !row_hit) return false;

  const u32 bank_track = trace::kDramTrackBase + pending.coord.bank;
  Picos cas_start;
  if (row_hit) {
    cas_start = now;
    row_hits_.inc();
  } else {
    Picos start = now;
    if (bank.has_open_row) {
      // Respect tRAS before precharging the currently open row.
      const Picos ras_done = bank.activated_at + cycles(cfg_.t_ras);
      const Picos pre_start = std::max(start, ras_done);
      start = pre_start + cycles(cfg_.t_rp);
      if (trace_ != nullptr) {
        trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramPrecharge,
                     pre_start, bank_track, bank.open_row);
      }
    }
    const Picos act_start = start;
    cas_start = act_start + cycles(cfg_.t_rcd);
    bank.has_open_row = true;
    bank.open_row = pending.coord.row;
    bank.activated_at = act_start;
    row_misses_.inc();
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kChannel, trace::EventKind::kDramActivate,
                   act_start, bank_track, pending.coord.row);
    }
  }

  const Picos data_start =
      std::max(cas_start + cycles(cfg_.t_cas), bus_free_at_);
  Picos data_end = data_start + transfer_ps(pending.request.bytes);
  bus_free_at_ = data_end;
  bank.ready_at = data_end;
  busy_ps_ += data_end - data_start;

  bytes_.inc(pending.request.bytes);
  if (pending.request.is_write) {
    writes_.inc();
  } else {
    reads_.inc();
  }
  if (trace_ != nullptr) {
    trace_->emit(trace::Domain::kChannel,
                 pending.request.is_write ? trace::EventKind::kDramWrite
                                          : trace::EventKind::kDramRead,
                 data_start, bank_track, pending.coord.row, row_hit ? 1 : 0);
  }

  InFlight transfer;
  transfer.attempts = pending.attempts;
  if (injector_ != nullptr) {
    // Fault draw at issue: the injected delay lands on the response time
    // only (the bus/bank occupancy above is the physical transfer).
    data_end += apply_faults(pending.request, now, &transfer.needs_retry);
  }
  transfer.request = std::move(pending.request);
  transfer.done_at = data_end;
  in_flight_.push_back(std::move(transfer));
  return true;
}

void MemoryController::requeue(InFlight&& transfer, Picos now) {
  if (transfer.attempts + 1 > cfg_.fault.max_retries) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "transfer addr=0x%llx bytes=%u failed %u attempts",
                  static_cast<unsigned long long>(transfer.request.addr),
                  transfer.request.bytes, transfer.attempts + 1);
    throw SimError("memory-fault",
                   cfg_.fault.ecc
                       ? "uncorrectable ECC error: retry budget exhausted"
                       : "dropped response: retry budget exhausted",
                   detail);
  }
  retries_.inc();
  Pending pending;
  pending.coord = map_.decode(transfer.request.addr);
  pending.request = std::move(transfer.request);
  pending.arrived_at = now;
  pending.order = next_order_++;
  pending.attempts = transfer.attempts + 1;
  // Retries bypass the scheduler-window cap: the slot the original transfer
  // occupied has already drained, and rejecting a retry could deadlock
  // callers that have no retry loop for completions.
  queue_.push_back(std::move(pending));
}

void MemoryController::tick(Picos now) {
  // Retire completed transfers.
  for (size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].done_at <= now) {
      InFlight transfer = std::move(in_flight_[i]);
      in_flight_[i] = std::move(in_flight_.back());
      in_flight_.pop_back();
      if (transfer.needs_retry) {
        requeue(std::move(transfer), now);
      } else if (transfer.request.on_complete) {
        transfer.request.on_complete(transfer.done_at);
      }
    } else {
      ++i;
    }
  }

  if (queue_.empty()) return;

  // FR: any ready row-buffer hit, oldest first.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (try_issue(*it, now, /*row_hit_only=*/true)) {
      queue_.erase(it);
      return;
    }
  }
  // FCFS: oldest request whose bank can begin the activate sequence.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (try_issue(*it, now, /*row_hit_only=*/false)) {
      queue_.erase(it);
      return;
    }
  }
}

void MemoryController::save_state(sim::SnapshotWriter& w) const {
  MLP_SIM_CHECK(idle(), "snapshot",
                "memory controller captured with outstanding transfers");
  w.put_u32(static_cast<u32>(banks_.size()));
  for (const Bank& bank : banks_) {
    w.put_bool(bank.has_open_row);
    w.put_u64(bank.open_row);
    w.put_u64(bank.ready_at);
    w.put_u64(bank.activated_at);
  }
  w.put_u64(next_order_);
  w.put_u64(bus_free_at_);
  w.put_u64(busy_ps_);
  w.put_u64(injector_ != nullptr ? injector_->transfers_drawn() : ~u64{0});
}

void MemoryController::restore_state(sim::SnapshotCursor& r) {
  const u32 banks = r.get_u32();
  MLP_SIM_CHECK(banks == banks_.size(), "snapshot",
                "snapshot bank count does not match this controller");
  for (Bank& bank : banks_) {
    bank.has_open_row = r.get_bool();
    bank.open_row = r.get_u64();
    bank.ready_at = r.get_u64();
    bank.activated_at = r.get_u64();
  }
  next_order_ = r.get_u64();
  bus_free_at_ = r.get_u64();
  busy_ps_ = r.get_u64();
  const u64 sequence = r.get_u64();
  MLP_SIM_CHECK((sequence == ~u64{0}) == (injector_ == nullptr), "snapshot",
                "snapshot fault-injection mode does not match this machine");
  if (injector_ != nullptr) injector_->set_sequence(sequence);
}

std::string MemoryController::debug_dump() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "  dram: queue=%u/%u in_flight=%u bus_free_at=%llu\n",
                queue_size(), queue_capacity(), in_flight_size(),
                static_cast<unsigned long long>(bus_free_at_));
  out += line;
  for (const Pending& p : queue_) {
    std::snprintf(line, sizeof(line),
                  "    queued addr=0x%llx bytes=%u bank=%u attempts=%u\n",
                  static_cast<unsigned long long>(p.request.addr),
                  p.request.bytes, p.coord.bank, p.attempts);
    out += line;
  }
  for (const InFlight& f : in_flight_) {
    std::snprintf(line, sizeof(line),
                  "    in-flight addr=0x%llx bytes=%u done_at=%llu%s\n",
                  static_cast<unsigned long long>(f.request.addr),
                  f.request.bytes,
                  static_cast<unsigned long long>(f.done_at),
                  f.needs_retry ? " (retry pending)" : "");
    out += line;
  }
  for (u32 b = 0; b < banks_.size(); ++b) {
    std::snprintf(line, sizeof(line),
                  "    bank[%u] open=%d row=%llu ready_at=%llu\n", b,
                  banks_[b].has_open_row ? 1 : 0,
                  static_cast<unsigned long long>(banks_[b].open_row),
                  static_cast<unsigned long long>(banks_[b].ready_at));
    out += line;
  }
  return out;
}

}  // namespace mlp::mem
