#include "mem/fault.hpp"

#include <cmath>

namespace mlp::mem {

FaultInjector::FaultInjector(const FaultConfig& cfg, StatSet* stats,
                             const std::string& prefix)
    : cfg_(cfg) {
  if (stats != nullptr) {
    stats->add(prefix + ".bit_flips", &bit_flips_);
    stats->add(prefix + ".delayed", &delayed_);
    stats->add(prefix + ".dropped", &dropped_);
  }
}

TransferFaults FaultInjector::draw(u32 bytes) {
  TransferFaults faults;
  // One independent, reproducible stream per transfer: the Rng's splitmix64
  // seed expansion decorrelates consecutive sequence numbers.
  Rng rng(cfg_.seed ^ (0xa076'1d64'78bd'642full * ++sequence_));

  if (cfg_.bit_flip_rate > 0.0) {
    // Geometric skip sampling: draw the gap to the next flipped bit instead
    // of a Bernoulli per bit, so the cost is O(flips), not O(bits) — a 2 KB
    // row is 16384 Bernoulli draws but typically zero flips.
    const double log1mp = std::log1p(-cfg_.bit_flip_rate);
    const u64 total_bits = static_cast<u64>(bytes) * 8;
    u64 bit = 0;
    while (true) {
      double u = rng.uniform();
      if (u >= 1.0) u = 0.9999999999999999;
      bit += static_cast<u64>(std::log1p(-u) / log1mp);
      if (bit >= total_bits) break;
      faults.flipped_bits.push_back(static_cast<u32>(bit));
      bit_flips_.inc();
      ++bit;
    }
  }
  if (cfg_.delay_rate > 0.0 && rng.chance(cfg_.delay_rate)) {
    faults.delayed = true;
    delayed_.inc();
  }
  if (cfg_.drop_rate > 0.0 && rng.chance(cfg_.drop_rate)) {
    faults.dropped = true;
    dropped_.inc();
  }
  return faults;
}

bool FaultInjector::transfer_clean(const FaultConfig& cfg, u64 sequence,
                                   u32 max_bytes) {
  // Mirrors draw()'s RNG consumption exactly (same seed expansion, same
  // geometric first-gap math) but injects nothing and touches no counters.
  Rng rng(cfg.seed ^ (0xa076'1d64'78bd'642full * sequence));
  if (cfg.bit_flip_rate > 0.0) {
    const double log1mp = std::log1p(-cfg.bit_flip_rate);
    double u = rng.uniform();
    if (u >= 1.0) u = 0.9999999999999999;
    const u64 gap = static_cast<u64>(std::log1p(-u) / log1mp);
    // A first gap inside the largest possible transfer means the flip (and
    // the loop's draw count) would depend on the actual transfer size.
    if (gap < static_cast<u64>(max_bytes) * 8) return false;
  }
  if (cfg.delay_rate > 0.0 && rng.chance(cfg.delay_rate)) return false;
  if (cfg.drop_rate > 0.0 && rng.chance(cfg.drop_rate)) return false;
  return true;
}

}  // namespace mlp::mem
