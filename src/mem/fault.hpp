#pragma once
// Deterministic, seed-derived DRAM fault injection (bit flips on transferred
// data, delayed responses, dropped responses). Die-stacked and PIM hardware
// characterizations treat transfer/retention errors as first-class; this
// model lets the simulator demonstrate that the resilience layer (SECDED ECC
// with bounded retry in the controller, forward-progress watchdog in the
// step loops, per-job error recovery in the sweep harness) degrades
// gracefully instead of producing silently wrong results.
//
// Every draw is a pure function of (FaultConfig::seed, per-controller
// transfer sequence number), so an injected-fault run is bit-reproducible
// for any --jobs thread count, and a retried transfer sees a fresh,
// deterministic draw.

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace mlp::mem {

/// Faults drawn for one transfer.
struct TransferFaults {
  /// Bit offsets (0 = LSB of the transfer's first byte) that arrive flipped.
  std::vector<u32> flipped_bits;
  bool delayed = false;
  bool dropped = false;

  bool any() const { return !flipped_bits.empty() || delayed || dropped; }
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, StatSet* stats,
                const std::string& prefix);

  /// Draw the faults for the next transfer of `bytes` bytes; advances the
  /// deterministic per-transfer sequence.
  TransferFaults draw(u32 bytes);

  u64 transfers_drawn() const { return sequence_; }

 private:
  FaultConfig cfg_;
  u64 sequence_ = 0;

  Counter bit_flips_, delayed_, dropped_;
};

}  // namespace mlp::mem
