#pragma once
// Deterministic, seed-derived DRAM fault injection (bit flips on transferred
// data, delayed responses, dropped responses). Die-stacked and PIM hardware
// characterizations treat transfer/retention errors as first-class; this
// model lets the simulator demonstrate that the resilience layer (SECDED ECC
// with bounded retry in the controller, forward-progress watchdog in the
// step loops, per-job error recovery in the sweep harness) degrades
// gracefully instead of producing silently wrong results.
//
// Every draw is a pure function of (FaultConfig::seed, per-controller
// transfer sequence number), so an injected-fault run is bit-reproducible
// for any --jobs thread count, and a retried transfer sees a fresh,
// deterministic draw.

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace mlp::mem {

/// Faults drawn for one transfer.
struct TransferFaults {
  /// Bit offsets (0 = LSB of the transfer's first byte) that arrive flipped.
  std::vector<u32> flipped_bits;
  bool delayed = false;
  bool dropped = false;

  bool any() const { return !flipped_bits.empty() || delayed || dropped; }
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, StatSet* stats,
                const std::string& prefix);

  /// Draw the faults for the next transfer of `bytes` bytes; advances the
  /// deterministic per-transfer sequence.
  TransferFaults draw(u32 bytes);

  u64 transfers_drawn() const { return sequence_; }

  /// Snapshot restore (sim/snapshot.hpp): the sequence number is the
  /// injector's only state — reinstating it replays the exact same fault
  /// stream the uninterrupted run would have drawn.
  void set_sequence(u64 sequence) { sequence_ = sequence; }

  /// True when the draw at `sequence` under `cfg` injects nothing AND
  /// consumes an RNG draw count independent of the transfer size, for every
  /// transfer of at most `max_bytes` bytes. mlpsweep's --fork-at uses this to
  /// prove that two fault configs behave identically over a warmup prefix
  /// (sequences 1..S): the flip loop consumes exactly one uniform whenever
  /// its first geometric gap clears max_bytes*8 bits, so the downstream
  /// delay/drop draws line up regardless of the actual transfer sizes.
  static bool transfer_clean(const FaultConfig& cfg, u64 sequence,
                             u32 max_bytes);

 private:
  FaultConfig cfg_;
  u64 sequence_ = 0;

  Counter bit_flips_, delayed_, dropped_;
};

}  // namespace mlp::mem
