#include "mem/cache.hpp"

#include "common/units.hpp"
#include "mem/channels.hpp"

namespace mlp::mem {

Cache::Cache(std::string name, u32 size_bytes, u32 line_bytes, u32 assoc,
             u32 mshrs, Picos hit_latency_ps, MemBackend* backend,
             StatSet* stats)
    : name_(std::move(name)),
      line_bytes_(line_bytes),
      sets_(size_bytes / (line_bytes * assoc)),
      assoc_(assoc),
      max_mshrs_(mshrs),
      hit_latency_ps_(hit_latency_ps),
      backend_(backend) {
  MLP_CHECK(sets_ > 0 && is_pow2(sets_), "cache sets must be a power of two");
  MLP_CHECK(is_pow2(line_bytes_), "line size must be a power of two");
  MLP_CHECK(backend_ != nullptr, "cache needs a backend");
  lines_.assign(sets_, std::vector<Line>(assoc_));
  if (stats != nullptr) {
    stats->add(name_ + ".hits", &hits_);
    stats->add(name_ + ".misses", &misses_);
    stats->add(name_ + ".mshr_merges", &mshr_merges_);
    stats->add(name_ + ".mshr_stalls", &mshr_stalls_);
    stats->add(name_ + ".writebacks", &writebacks_);
    stats->add(name_ + ".prefetch_issued", &prefetch_issued_);
    stats->add(name_ + ".prefetch_useful", &prefetch_useful_);
    stats->add(name_ + ".evictions", &evictions_);
  }
}

Cache::Line* Cache::find(Addr line) {
  auto& set = lines_[set_of(line)];
  const u64 tag = tag_of(line);
  for (Line& way : set) {
    if (way.valid && way.tag == tag) return &way;
  }
  return nullptr;
}

AccessStatus Cache::access(Addr addr, bool is_write, Picos now,
                           FillCallback on_fill) {
  const Addr line = line_base(addr);
  if (Line* hit = find(line)) {
    hit->lru = ++lru_clock_;
    hit->dirty |= is_write;
    if (hit->prefetched) {
      hit->prefetched = false;
      prefetch_useful_.inc();
    }
    hits_.inc();
    return AccessStatus::kHit;
  }

  auto it = mshrs_.find(line);
  if (it != mshrs_.end()) {
    it->second.waiters.push_back(std::move(on_fill));
    it->second.waiter_writes.push_back(is_write);
    it->second.is_prefetch = false;  // demand access upgrades a prefetch
    mshr_merges_.inc();
    misses_.inc();
    return AccessStatus::kMiss;
  }

  if (mshrs_.size() >= max_mshrs_) {
    mshr_stalls_.inc();
    return AccessStatus::kMshrFull;
  }

  Mshr& mshr = mshrs_[line];
  mshr.waiters.push_back(std::move(on_fill));
  mshr.waiter_writes.push_back(is_write);
  misses_.inc();
  queue_fill(line, now);
  return AccessStatus::kMiss;
}

void Cache::prefetch(Addr addr, Picos now) {
  const Addr line = line_base(addr);
  if (find(line) != nullptr) return;
  if (mshrs_.count(line) != 0) return;
  if (mshrs_.size() >= max_mshrs_) return;
  Mshr& mshr = mshrs_[line];
  mshr.is_prefetch = true;
  prefetch_issued_.inc();
  queue_fill(line, now);
}

void Cache::queue_fill(Addr line, Picos now) {
  MemRequest fill;
  fill.addr = line;
  fill.bytes = line_bytes_;
  fill.is_write = false;
  fill.is_prefetch = mshrs_[line].is_prefetch;
  fill.on_complete = [this, line](Picos at) { on_fill_arrived(line, at); };
  if (backend_->request(fill, now)) {
    // A backing cache may hit and complete synchronously, in which case the
    // MSHR is already retired — do not resurrect it.
    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) it->second.issued = true;
  } else {
    issue_queue_.push_back(std::move(fill));
  }
}

void Cache::on_fill_arrived(Addr line, Picos at) {
  auto it = mshrs_.find(line);
  MLP_CHECK(it != mshrs_.end(), "fill for unknown MSHR");
  Mshr mshr = std::move(it->second);
  mshrs_.erase(it);

  bool write = false;
  for (bool w : mshr.waiter_writes) write |= w;
  install(line, write, mshr.is_prefetch && mshr.waiters.empty(), at);
  for (FillCallback& waiter : mshr.waiters) {
    if (waiter) waiter(at + hit_latency_ps_);
  }
}

void Cache::install(Addr line, bool dirty, bool prefetched, Picos now) {
  auto& set = lines_[set_of(line)];
  Line* victim = nullptr;
  for (Line& way : set) {
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  if (victim->valid) {
    evictions_.inc();
    if (victim->dirty) {
      // The tag holds the full line number (the set index is hashed).
      const Addr victim_line = victim->tag * line_bytes_;
      MemRequest wb;
      wb.addr = victim_line;
      wb.bytes = line_bytes_;
      wb.is_write = true;
      writebacks_.inc();
      if (!backend_->request(wb, now)) issue_queue_.push_back(std::move(wb));
    }
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = prefetched;
  victim->tag = tag_of(line);
  victim->lru = ++lru_clock_;
}

void Cache::save_state(sim::SnapshotWriter& w) const {
  MLP_SIM_CHECK(quiescent(), "snapshot",
                "cache captured with outstanding fills");
  w.put_u32(sets_);
  w.put_u32(assoc_);
  for (const auto& set : lines_) {
    for (const Line& way : set) {
      w.put_bool(way.valid);
      w.put_bool(way.dirty);
      w.put_bool(way.prefetched);
      w.put_u64(way.tag);
      w.put_u64(way.lru);
    }
  }
  w.put_u64(lru_clock_);
}

void Cache::restore_state(sim::SnapshotCursor& r) {
  const u32 sets = r.get_u32();
  const u32 assoc = r.get_u32();
  MLP_SIM_CHECK(sets == sets_ && assoc == assoc_, "snapshot",
                "snapshot cache geometry does not match " + name_);
  for (auto& set : lines_) {
    for (Line& way : set) {
      way.valid = r.get_bool();
      way.dirty = r.get_bool();
      way.prefetched = r.get_bool();
      way.tag = r.get_u64();
      way.lru = r.get_u64();
    }
  }
  lru_clock_ = r.get_u64();
}

void Cache::pump(Picos now) {
  while (!issue_queue_.empty()) {
    if (!backend_->request(issue_queue_.front(), now)) return;
    if (!issue_queue_.front().is_write) {
      auto it = mshrs_.find(line_base(issue_queue_.front().addr));
      if (it != mshrs_.end()) it->second.issued = true;
    }
    issue_queue_.erase(issue_queue_.begin());
  }
}

bool Cache::request(MemRequest request, Picos now) {
  // Serving as a backend (e.g. L2 under L1): a hit completes after our hit
  // latency; a miss is tracked by an MSHR like any demand access.
  MLP_CHECK(request.bytes <= line_bytes_, "upstream line larger than ours");
  auto cb = request.on_complete;
  const Picos latency = hit_latency_ps_;
  const AccessStatus status =
      access(request.addr, request.is_write, now,
             [cb](Picos at) {
               if (cb) cb(at);
             });
  if (status == AccessStatus::kHit) {
    if (cb) cb(now + latency);
    return true;
  }
  return status != AccessStatus::kMshrFull;
}

bool ControllerBackend::request(MemRequest request, Picos now) {
  return ctrl_->try_push(std::move(request), now);
}

}  // namespace mlp::mem
