#pragma once
// Millipede's row-oriented, flow-controlled, cross-corelet prefetch buffer
// (Sections IV-B and IV-C). The paper's core mechanism:
//
//  * Entries form a circular queue; each holds one full DRAM row, split into
//    one fixed 64 B slab per corelet (slab c = bytes [c*slab, (c+1)*slab)).
//  * The row stream is strictly sequential (interleaved layout), so "next
//    prefetch" is always the next row id — 100% accurate by construction.
//  * PFT bit: the FIRST demand access to an entry triggers allocation of the
//    next row; later accesses don't re-trigger (like an MSHR's full/empty bit).
//  * DF counter: counts corelets that have fully consumed their slab of the
//    entry (tracked by per-corelet word bitmasks against an expected mask so
//    partial tail groups can't deadlock). Only a saturated head entry may be
//    re-allocated — that is the cross-corelet flow control.
//  * Without flow control (the Millipede-no-flow-control ablation), a full
//    queue evicts the unsaturated head; lagging corelets then miss and pay a
//    direct DRAM fetch, losing row locality — the failure mode the paper
//    quantifies in Fig. 3.
//  * Rate-matching votes: a stall on an unfilled entry votes "memory-bound";
//    a deferred trigger against a fully-delivered queue votes "compute-bound".

#include <deque>
#include <map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/port.hpp"
#include "mem/channels.hpp"
#include "millipede/rate_match.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::millipede {

/// Describes the sequential row stream the kernel will consume and which
/// slab words each corelet will demand from each row (tail groups may have
/// partially-used rows).
struct RowPlan {
  u64 first_row = 0;
  u64 num_rows = 0;
  /// Bitmask over the corelet's slab words (bit w = word w) that the corelet
  /// will demand-fetch from this row; 0 if the corelet never touches it.
  std::function<u64(u64 row, u32 corelet)> expected_mask;
};

class PrefetchBuffer : public core::GlobalPort, public sim::Tickable,
                       public sim::Snapshottable {
 public:
  PrefetchBuffer(const MachineConfig& cfg, RowPlan plan,
                 mem::ChannelDemux* ctrl, RateMatcher* rate_matcher,
                 StatSet* stats, const std::string& prefix,
                 trace::TraceSession* trace = nullptr);

  /// Issue the initial row prefetches (fills the queue) before kernel start.
  void prime(Picos now);

  /// GlobalPort: demand access from (corelet, ctx) to an input word.
  core::PortResult load(u32 core, u32 ctx, Addr addr, Picos now,
                        std::function<void(Picos)> wakeup) override;

  /// Retry prefetch issues that hit controller backpressure; call once per
  /// channel tick.
  void pump(Picos now);

  /// sim::Tickable: a channel edge retries backpressured issues; with an
  /// empty issue queue the buffer only reacts to fills and demand accesses
  /// driven from other components.
  void tick(Picos now, Picos /*period_ps*/) override { pump(now); }
  Picos next_event(Picos now) const override {
    return issue_queue_.empty() ? sim::kNoEvent : now;
  }

  /// Quiesce for snapshot capture: no backpressured issues, no wakeup
  /// closures anywhere (entry waiters, flow-control waits, victim-slab
  /// waits) and every allocated entry's row data delivered. Holds whenever
  /// the window is fully filled and compute lags — including the final
  /// compute-only reduce phase.
  bool quiescent() const override {
    if (!issue_queue_.empty() || !future_waiters_.empty()) return false;
    for (u32 i = 0; i < count_; ++i) {
      const Entry& entry = entries_[(head_ + i) % num_entries_];
      if (!entry.filled || !entry.waiters.empty()) return false;
    }
    for (const auto& [key, slab] : victim_slabs_) {
      if (!slab.filled || !slab.waiters.empty()) return false;
    }
    return true;
  }

  // sim::Snapshottable: ring state, per-entry PFT/DF/consumption masks,
  // trigger backlog, rate-match warmup cursor and the victim-slab keys.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;

  // Observability for tests and the rate matcher.
  u32 occupancy() const { return count_; }
  /// Entries whose DF counter saturated (every corelet consumed its slab).
  u32 saturated_entries() const {
    u32 n = 0;
    for (u32 i = 0; i < count_; ++i) {
      if (entries_[(head_ + i) % num_entries_].df >= cfg_.core.cores) ++n;
    }
    return n;
  }
  u64 premature_evictions() const { return premature_evictions_.value; }
  u64 direct_fetches() const { return direct_fetches_.value; }

  /// Per-entry PFT/DF/fill state plus pending triggers and flow-control
  /// waiters, for watchdog diagnostics: a flow-control deadlock shows up
  /// here as an unsaturated head entry and a pile of future waiters.
  std::string debug_dump() const;

 private:
  struct Entry {
    u64 row = 0;
    bool valid = false;
    bool filled = false;
    bool pft = true;
    bool demanded_before_fill = false;  ///< rate-matching per-row signal
    u32 df = 0;  ///< corelets that fully consumed their slab
    std::vector<u64> consumed;  ///< per-corelet consumed-word bitmask
    std::vector<u64> expected;  ///< per-corelet expected-word bitmask
    std::vector<std::function<void(Picos)>> waiters;
  };

  u32 index_of(u64 row) const;   ///< entry index; entries hold consecutive rows
  Entry* find(u64 row);
  u64 head_row() const { return entries_[head_].row; }

  void allocate_next(Picos now);
  void issue_prefetch(u64 row, Picos now);
  void on_fill(u64 row, Picos at);
  void retire_saturated_heads(Picos now);
  /// Consume pending allocation triggers. Without flow control,
  /// `force_evict` (set when a leading corelet's demand wrapped past the
  /// window) re-allocates unsaturated heads — the premature eviction the
  /// paper quantifies; ordinary triggers defer exactly like flow control.
  void trigger(Picos now, bool force_evict = false);
  bool all_filled() const;
  core::PortResult victim_fetch(u32 core, u64 row, Picos now,
                                std::function<void(Picos)> wakeup);

  MachineConfig cfg_;
  RowPlan plan_;
  mem::ChannelDemux* ctrl_;
  RateMatcher* rate_matcher_;
  trace::TraceSession* trace_ = nullptr;

  u32 num_entries_;
  u32 slab_bytes_;
  u32 slab_words_;
  u32 row_shift_;
  Picos hit_latency_ps_;

  std::vector<Entry> entries_;
  u32 head_ = 0;
  u32 count_ = 0;
  u64 next_row_;  ///< next row id to allocate (plan-relative stream)
  u32 pending_triggers_ = 0;
  u64 retired_rows_ = 0;  ///< for the rate-matching warmup window

  /// Flow-control waits: demands for rows beyond the allocated window.
  std::map<u64, std::vector<std::function<void(Picos)>>> future_waiters_;

  /// Victim slabs (no-flow-control only): after a premature eviction, a
  /// lagging corelet refetches its 64 B slab once; later words of the slab
  /// hit this side structure instead of issuing further DRAM traffic.
  struct VictimSlab {
    bool filled = false;
    std::vector<std::function<void(Picos)>> waiters;
  };
  std::map<std::pair<u64, u32>, VictimSlab> victim_slabs_;

  std::vector<mem::MemRequest> issue_queue_;

  Counter row_prefetches_, hits_, fill_waits_, flow_waits_,
      premature_evictions_, direct_fetches_, votes_memory_, votes_compute_;
};

}  // namespace mlp::millipede
