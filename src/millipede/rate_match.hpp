#pragma once
// Coarse-grain compute-memory rate matching (Section IV-F): a one-dimensional
// hill-climbing controller that retunes the whole processor's clock in small
// (default 5%) steps. Votes arrive from the prefetch buffer:
//   * memory-bound vote  — a leading corelet found the buffers EMPTY (it
//     stalled on an unfilled entry): compute is outrunning memory, step the
//     clock DOWN.
//   * compute-bound vote — a prefetch trigger found the buffers FULL of
//     already-delivered rows: memory is outrunning compute, step the clock
//     UP (capped at the nominal frequency).
// Votes are accumulated over a window and the majority decides each step,
// which converges once at the start of the (behaviourally stationary) BMLA
// and then oscillates within one step, as the paper argues.

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/snapshot.hpp"
#include "trace/trace.hpp"

namespace mlp::millipede {

class RateMatcher : public sim::Snapshottable {
 public:
  RateMatcher(const MillipedeConfig& cfg, const CoreConfig& core,
              ClockDomain* compute_clock, StatSet* stats,
              const std::string& prefix,
              trace::TraceSession* trace = nullptr);

  void vote_memory_bound(Picos now = 0);
  void vote_compute_bound(Picos now = 0);

  double current_mhz() const { return clock_->frequency_mhz(); }
  u64 adjustments() const { return steps_down_.value + steps_up_.value; }

  // sim::Snapshottable: the in-window vote tallies (the clock period itself
  // is restored with the compute ClockDomain by the kernel section).
  void save_state(sim::SnapshotWriter& w) const override {
    w.put_u32(memory_votes_);
    w.put_u32(compute_votes_);
  }
  void restore_state(sim::SnapshotCursor& r) override {
    memory_votes_ = r.get_u32();
    compute_votes_ = r.get_u32();
  }

 private:
  void maybe_step(Picos now);

  MillipedeConfig cfg_;
  Picos nominal_period_ps_;
  Picos max_period_ps_;
  ClockDomain* clock_;
  trace::TraceSession* trace_ = nullptr;

  u32 memory_votes_ = 0;
  u32 compute_votes_ = 0;
  Counter steps_down_, steps_up_;
};

}  // namespace mlp::millipede
