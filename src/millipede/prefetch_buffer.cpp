#include "millipede/prefetch_buffer.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/units.hpp"

namespace mlp::millipede {

PrefetchBuffer::PrefetchBuffer(const MachineConfig& cfg, RowPlan plan,
                               mem::ChannelDemux* ctrl,
                               RateMatcher* rate_matcher, StatSet* stats,
                               const std::string& prefix,
                               trace::TraceSession* trace)
    : cfg_(cfg),
      plan_(std::move(plan)),
      ctrl_(ctrl),
      rate_matcher_(rate_matcher),
      trace_(trace),
      num_entries_(cfg.millipede.pf_entries),
      slab_bytes_(cfg.dram.row_bytes / cfg.core.cores),
      slab_words_(slab_bytes_ / 4),
      row_shift_(log2_exact(cfg.dram.row_bytes)),
      hit_latency_ps_(static_cast<Picos>(cfg.millipede.pb_hit_latency) *
                      cfg.core.period_ps()),
      entries_(num_entries_),
      next_row_(plan_.first_row) {
  MLP_CHECK(ctrl_ != nullptr, "prefetch buffer needs a controller");
  MLP_SIM_CHECK(slab_words_ <= 64, "config",
                "slab word mask limited to 64 words");
  MLP_CHECK(plan_.expected_mask != nullptr, "row plan needs an expected mask");
  if (stats != nullptr) {
    stats->add(prefix + ".row_prefetches", &row_prefetches_);
    stats->add(prefix + ".hits", &hits_);
    stats->add(prefix + ".fill_waits", &fill_waits_);
    stats->add(prefix + ".flow_waits", &flow_waits_);
    stats->add(prefix + ".premature_evictions", &premature_evictions_);
    stats->add(prefix + ".direct_fetches", &direct_fetches_);
    stats->add(prefix + ".votes_memory", &votes_memory_);
    stats->add(prefix + ".votes_compute", &votes_compute_);
  }
}

u32 PrefetchBuffer::index_of(u64 row) const {
  return static_cast<u32>((head_ + (row - head_row())) % num_entries_);
}

PrefetchBuffer::Entry* PrefetchBuffer::find(u64 row) {
  if (count_ == 0) return nullptr;
  if (row < head_row() || row >= head_row() + count_) return nullptr;
  Entry& entry = entries_[index_of(row)];
  MLP_CHECK(entry.valid && entry.row == row, "prefetch queue out of order");
  return &entry;
}

bool PrefetchBuffer::all_filled() const {
  for (u32 i = 0; i < count_; ++i) {
    if (!entries_[(head_ + i) % num_entries_].filled) return false;
  }
  return count_ > 0;
}

void PrefetchBuffer::prime(Picos now) {
  const u64 end = plan_.first_row + plan_.num_rows;
  // Steady-state run-ahead equals the priming depth (each entry's first
  // demand access triggers exactly one further row), so prime deep enough
  // to cover all the rows a record's fields touch concurrently — by default
  // the whole queue, as in the paper.
  const u32 depth = cfg_.millipede.prime_rows == 0
                        ? num_entries_
                        : cfg_.millipede.prime_rows;
  while (count_ < depth && next_row_ < end) allocate_next(now);
}

void PrefetchBuffer::allocate_next(Picos now) {
  MLP_CHECK(count_ < num_entries_, "allocation into a full queue");
  const u64 row = next_row_++;
  Entry& entry = entries_[(head_ + count_) % num_entries_];
  ++count_;
  entry.row = row;
  entry.valid = true;
  entry.filled = false;
  entry.pft = true;
  entry.df = 0;
  entry.consumed.assign(cfg_.core.cores, 0);
  entry.expected.resize(cfg_.core.cores);
  for (u32 c = 0; c < cfg_.core.cores; ++c) {
    entry.expected[c] = plan_.expected_mask(row, c);
    if (entry.expected[c] == 0) ++entry.df;  // nothing to consume
  }
  entry.waiters.clear();
  entry.demanded_before_fill = false;
  // Leading corelets already blocked on this row (flow-control waits): the
  // demand clearly precedes the data.
  auto pending = future_waiters_.find(row);
  if (pending != future_waiters_.end()) {
    entry.waiters = std::move(pending->second);
    entry.demanded_before_fill = !entry.waiters.empty();
    future_waiters_.erase(pending);
  }
  issue_prefetch(row, now);
}

void PrefetchBuffer::issue_prefetch(u64 row, Picos now) {
  mem::MemRequest req;
  req.addr = ctrl_->address_map().row_base(row);
  req.bytes = cfg_.dram.row_bytes;
  req.is_prefetch = true;
  req.on_complete = [this, row](Picos at) { on_fill(row, at); };
  row_prefetches_.inc();
  if (trace_ != nullptr) {
    trace_->emit(trace::Domain::kChannel, trace::EventKind::kPrefetchIssue,
                 now, trace::kPrefetchTrack, row);
  }
  if (!ctrl_->try_push(req, now)) issue_queue_.push_back(std::move(req));
}

void PrefetchBuffer::pump(Picos now) {
  while (!issue_queue_.empty()) {
    if (!ctrl_->try_push(issue_queue_.front(), now)) return;
    issue_queue_.erase(issue_queue_.begin());
  }
}

void PrefetchBuffer::on_fill(u64 row, Picos at) {
  Entry* entry = find(row);
  if (entry == nullptr) return;  // evicted before arrival (no flow control)
  entry->filled = true;
  if (trace_ != nullptr) {
    trace_->emit(trace::Domain::kChannel, trace::EventKind::kPrefetchFill, at,
                 trace::kPrefetchTrack, row);
  }
  auto waiters = std::move(entry->waiters);
  entry->waiters.clear();
  for (auto& waiter : waiters) waiter(at + hit_latency_ps_);
  retire_saturated_heads(at);
}

void PrefetchBuffer::retire_saturated_heads(Picos now) {
  while (count_ > 0) {
    Entry& head = entries_[head_];
    if (!head.filled || head.df < cfg_.core.cores) break;
    // Rate-matching signal, one vote per retired row: a row some corelet had
    // to WAIT for means the buffers ran empty ahead of compute (memory
    // behind -> slow the clock); a row whose data arrived before anyone
    // asked means memory ran ahead (compute behind -> speed up, capped at
    // nominal). The equilibrium is just-in-time delivery — exactly
    // compute-memory rate matching. Startup rows are warmup and do not vote.
    if (rate_matcher_ != nullptr &&
        retired_rows_ > 2ull * num_entries_) {
      if (head.demanded_before_fill) {
        votes_memory_.inc();
        rate_matcher_->vote_memory_bound(now);
      } else {
        votes_compute_.inc();
        rate_matcher_->vote_compute_bound(now);
      }
    }
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kChannel, trace::EventKind::kPrefetchRetire,
                   now, trace::kPrefetchTrack, head.row,
                   (u64{head.df} << 1) | (head.pft ? 1 : 0));
    }
    ++retired_rows_;
    head.valid = false;
    head_ = (head_ + 1) % num_entries_;
    --count_;
  }
  trigger(now);
}

void PrefetchBuffer::trigger(Picos now, bool force_evict) {
  const u64 end = plan_.first_row + plan_.num_rows;
  while (pending_triggers_ > 0 && next_row_ < end) {
    if (count_ < num_entries_) {
      allocate_next(now);
      --pending_triggers_;
      continue;
    }
    // Forced eviction only runs until every wrapped demand is covered.
    if (force_evict && future_waiters_.empty()) force_evict = false;
    if (cfg_.millipede.flow_control || !force_evict) {
      // Deferred until the head's DF counter saturates. Without flow
      // control ordinary PFT triggers also wait — eviction happens only
      // when a leading corelet's demand wraps past the whole window
      // (force_evict), which is what makes it "not frequent with 16
      // buffers" in the paper.
      return;
    }
    // Premature eviction: re-allocate the unsaturated head.
    Entry& head = entries_[head_];
    if (head.df < cfg_.core.cores || !head.filled) {
      premature_evictions_.inc();
      if (trace_ != nullptr) {
        trace_->emit(trace::Domain::kChannel, trace::EventKind::kPrefetchEvict,
                     now, trace::kPrefetchTrack, head.row,
                     (u64{head.df} << 1) | (head.pft ? 1 : 0));
      }
      // Orphaned waiters must still get data: direct slab fetches.
      for (auto& waiter : head.waiters) {
        mem::MemRequest req;
        req.addr = ctrl_->address_map().row_base(head.row);
        req.bytes = slab_bytes_;
        req.on_complete = std::move(waiter);
        direct_fetches_.inc();
        if (!ctrl_->try_push(req, now)) issue_queue_.push_back(std::move(req));
      }
    }
    head.valid = false;
    head.waiters.clear();
    head_ = (head_ + 1) % num_entries_;
    --count_;
    allocate_next(now);
    --pending_triggers_;
  }
}

void PrefetchBuffer::save_state(sim::SnapshotWriter& w) const {
  MLP_SIM_CHECK(quiescent(), "snapshot",
                "prefetch buffer captured with outstanding waiters");
  w.put_u32(num_entries_);
  w.put_u32(head_);
  w.put_u32(count_);
  w.put_u64(next_row_);
  w.put_u32(pending_triggers_);
  w.put_u64(retired_rows_);
  for (const Entry& entry : entries_) {
    w.put_u64(entry.row);
    w.put_bool(entry.valid);
    w.put_bool(entry.filled);
    w.put_bool(entry.pft);
    w.put_bool(entry.demanded_before_fill);
    w.put_u32(entry.df);
    w.put_u64(entry.consumed.size());
    for (const u64 mask : entry.consumed) w.put_u64(mask);
    for (const u64 mask : entry.expected) w.put_u64(mask);
  }
  w.put_u64(victim_slabs_.size());
  for (const auto& [key, slab] : victim_slabs_) {
    w.put_u64(key.first);
    w.put_u32(key.second);
  }
}

void PrefetchBuffer::restore_state(sim::SnapshotCursor& r) {
  const u32 num_entries = r.get_u32();
  MLP_SIM_CHECK(num_entries == num_entries_, "snapshot",
                "snapshot prefetch-buffer depth does not match this machine");
  head_ = r.get_u32();
  count_ = r.get_u32();
  next_row_ = r.get_u64();
  pending_triggers_ = r.get_u32();
  retired_rows_ = r.get_u64();
  for (Entry& entry : entries_) {
    entry.row = r.get_u64();
    entry.valid = r.get_bool();
    entry.filled = r.get_bool();
    entry.pft = r.get_bool();
    entry.demanded_before_fill = r.get_bool();
    entry.df = r.get_u32();
    // Never-allocated slots carry empty masks; allocated ones one per core.
    const u64 cores = r.get_u64();
    MLP_SIM_CHECK(cores == 0 || cores == cfg_.core.cores, "snapshot",
                  "snapshot slab-mask width does not match this machine");
    entry.consumed.assign(cores, 0);
    for (u64& mask : entry.consumed) mask = r.get_u64();
    entry.expected.assign(cores, 0);
    for (u64& mask : entry.expected) mask = r.get_u64();
    entry.waiters.clear();
  }
  future_waiters_.clear();
  victim_slabs_.clear();
  const u64 slabs = r.get_u64();
  for (u64 i = 0; i < slabs; ++i) {
    const u64 row = r.get_u64();
    const u32 core = r.get_u32();
    victim_slabs_[{row, core}].filled = true;
  }
}

std::string PrefetchBuffer::debug_dump() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "  pb: occupancy=%u/%u next_row=%llu pending_triggers=%u "
                "future_waiter_rows=%zu\n",
                count_, num_entries_,
                static_cast<unsigned long long>(next_row_), pending_triggers_,
                future_waiters_.size());
  out += line;
  for (u32 i = 0; i < count_; ++i) {
    const Entry& e = entries_[(head_ + i) % num_entries_];
    std::snprintf(line, sizeof(line),
                  "    entry[%u] row=%llu filled=%d pft=%d df=%u/%u "
                  "waiters=%zu\n",
                  (head_ + i) % num_entries_,
                  static_cast<unsigned long long>(e.row), e.filled ? 1 : 0,
                  e.pft ? 1 : 0, e.df, cfg_.core.cores, e.waiters.size());
    out += line;
  }
  for (const auto& [row, waiters] : future_waiters_) {
    std::snprintf(line, sizeof(line),
                  "    flow-wait row=%llu waiters=%zu (beyond window)\n",
                  static_cast<unsigned long long>(row), waiters.size());
    out += line;
  }
  return out;
}

core::PortResult PrefetchBuffer::victim_fetch(
    u32 core, u64 row, Picos now, std::function<void(Picos)> wakeup) {
  const auto key = std::make_pair(row, core);
  auto it = victim_slabs_.find(key);
  if (it != victim_slabs_.end()) {
    if (it->second.filled) {
      return {core::PortStatus::kDone, now + hit_latency_ps_};
    }
    it->second.waiters.push_back(std::move(wakeup));
    return {core::PortStatus::kPending, 0};
  }
  VictimSlab& slab = victim_slabs_[key];
  slab.waiters.push_back(std::move(wakeup));
  mem::MemRequest req;
  req.addr = ctrl_->address_map().row_base(row) +
             static_cast<Addr>(core) * slab_bytes_;
  req.bytes = slab_bytes_;
  const Picos lat = hit_latency_ps_;
  req.on_complete = [this, key, lat](Picos at) {
    auto entry = victim_slabs_.find(key);
    MLP_CHECK(entry != victim_slabs_.end(), "victim slab vanished");
    entry->second.filled = true;
    auto batch = std::move(entry->second.waiters);
    entry->second.waiters.clear();
    for (auto& waiter : batch) waiter(at + lat);
  };
  direct_fetches_.inc();
  if (!ctrl_->try_push(req, now)) issue_queue_.push_back(std::move(req));
  return {core::PortStatus::kPending, 0};
}

core::PortResult PrefetchBuffer::load(u32 core, u32 /*ctx*/, Addr addr,
                                      Picos now,
                                      std::function<void(Picos)> wakeup) {
  const u64 row = addr >> row_shift_;
  Entry* entry = find(row);

  if (entry == nullptr) {
    if (count_ > 0 && row < head_row()) {
      // Only reachable without flow control: the row was prematurely
      // re-allocated before this lagging corelet consumed its slab. Pay a
      // direct DRAM fetch — once per (row, corelet) slab; later words of
      // the refetched slab hit the victim-slab side structure.
      MLP_CHECK(!cfg_.millipede.flow_control,
                "flow control must prevent post-retirement demands");
      return victim_fetch(core, row, now, std::move(wakeup));
    }
    // The row is beyond the allocated window: a leading corelet ran into the
    // flow-control barrier (or, without flow control, raced ahead of the
    // trigger chain). Register the demand as triggers and wait.
    MLP_CHECK(count_ == 0 || row >= next_row_,
              "demand below allocated window with flow control");
    if (row >= next_row_) {
      const u64 needed = row - next_row_ + 1;
      pending_triggers_ += static_cast<u32>(needed);
    }
    flow_waits_.inc();
    future_waiters_[row].push_back(std::move(wakeup));
    // A demand past the window is the "leading corelet wrapping around":
    // without flow control it may evict unsaturated heads.
    trigger(now, /*force_evict=*/!cfg_.millipede.flow_control);
    // The trigger may have allocated (and even satisfied) the row when space
    // was available; the waiter list was moved into the entry in that case.
    return {core::PortStatus::kPending, 0};
  }

  // Slab discipline: the interleaved layout routes each corelet only to its
  // own slab slice, keeping the buffer-to-corelet interconnect trivial.
  const u32 offset = static_cast<u32>(addr & (cfg_.dram.row_bytes - 1));
  const u32 slab = offset / slab_bytes_;
  MLP_CHECK(slab == core, "corelet accessed a foreign slab");
  const u32 word = (offset % slab_bytes_) / 4;

  // Decide the access outcome and update consumption state FIRST; the
  // trigger/retire calls below may re-allocate the very slot `entry` points
  // to, so no dereference is allowed after them.
  const bool was_filled = entry->filled;
  const u64 bit = u64{1} << word;
  if ((entry->consumed[core] & bit) == 0) {
    entry->consumed[core] |= bit;
    if (entry->consumed[core] == entry->expected[core]) ++entry->df;
  }
  const bool head_retires = entry == &entries_[head_] && was_filled &&
                            entry->df == cfg_.core.cores;

  core::PortResult result;
  if (was_filled) {
    hits_.inc();
    result = {core::PortStatus::kDone, now + hit_latency_ps_};
  } else {
    fill_waits_.inc();
    entry->demanded_before_fill = true;
    entry->waiters.push_back(std::move(wakeup));
    result = {core::PortStatus::kPending, 0};
  }

  if (entry->pft) {
    entry->pft = false;
    ++pending_triggers_;
    if (trace_ != nullptr) {
      trace_->emit(trace::Domain::kCompute, trace::EventKind::kPrefetchFirstUse,
                   now, trace::kPrefetchTrack, row,
                   (u64{entry->df} << 1) | (was_filled ? 1 : 0));
    }
  }
  if (head_retires) {
    retire_saturated_heads(now);  // also runs trigger()
  } else {
    trigger(now);
  }
  return result;
}

}  // namespace mlp::millipede
