#include "millipede/rate_match.hpp"

namespace mlp::millipede {

RateMatcher::RateMatcher(const MillipedeConfig& cfg, const CoreConfig& core,
                         ClockDomain* compute_clock, StatSet* stats,
                         const std::string& prefix,
                         trace::TraceSession* trace)
    : cfg_(cfg),
      nominal_period_ps_(core.period_ps()),
      max_period_ps_(period_ps_from_hz(cfg.min_clock_mhz * 1e6)),
      clock_(compute_clock),
      trace_(trace) {
  MLP_CHECK(clock_ != nullptr, "rate matcher needs a clock");
  if (stats != nullptr) {
    stats->add(prefix + ".steps_down", &steps_down_);
    stats->add(prefix + ".steps_up", &steps_up_);
  }
}

void RateMatcher::vote_memory_bound(Picos now) {
  ++memory_votes_;
  maybe_step(now);
}

void RateMatcher::vote_compute_bound(Picos now) {
  ++compute_votes_;
  maybe_step(now);
}

void RateMatcher::maybe_step(Picos now) {
  if (memory_votes_ + compute_votes_ < cfg_.rate_window) return;
  // Seek the EDGE of memory-boundedness: the ideal operating point keeps
  // memory the bottleneck (virtually every row demanded before its data
  // arrives) at the lowest clock that does not extend the run. Step down
  // only on a near-unanimous memory-bound window; step back up as soon as a
  // couple of rows arrive early (compute becoming the constraint).
  const bool step_down = memory_votes_ >= cfg_.rate_window - 1;
  const bool step_up = compute_votes_ >= 2;
  memory_votes_ = 0;
  compute_votes_ = 0;
  if (!step_down && !step_up) return;

  const double factor = step_down ? (1.0 - cfg_.rate_step)   // f down
                                  : (1.0 + cfg_.rate_step);  // f up
  Picos period = static_cast<Picos>(
      static_cast<double>(clock_->period_ps()) / factor + 0.5);
  if (period < nominal_period_ps_) period = nominal_period_ps_;  // cap at 700 MHz
  if (period > max_period_ps_) period = max_period_ps_;
  if (period == clock_->period_ps()) return;
  if (step_down) {
    steps_down_.inc();
  } else {
    steps_up_.inc();
  }
  clock_->set_period_ps(period);
  if (trace_ != nullptr) {
    // Frequency in kHz keeps the value integral (1e9 / period_ps * 1e6).
    const u64 khz = 1000000000ull / period;
    trace_->emit(trace::Domain::kCompute, trace::EventKind::kFreqStep, now,
                 trace::kRateMatchTrack, period, khz);
  }
}

}  // namespace mlp::millipede
