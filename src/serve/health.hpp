#pragma once
// Fleet-health accounting for the self-healing sweep client. Two layers:
//
//  * process-global counters (health_counters()) — lock-free tallies bumped
//    by the client/shard machinery wherever a resilience path fires
//    (request timeout, chaos injection, node death, failover re-dispatch,
//    reconnect). service_bench folds them into the bench-trajectory JSON as
//    info-class fields; they are observations, never gated.
//  * per-sweep FleetHealth — the structured report run_matrix_sharded fills
//    for ONE sweep: how degraded the run was (retries, failovers, lost
//    points) and each node's share of the work. mlpsweep prints it on
//    stderr and, behind --fleet-stats, appends it to the stats-JSON
//    document footer.

#include <atomic>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/json.hpp"

namespace mlp::serve {

/// Process-global resilience tallies (monotonic, relaxed ordering — they
/// are reporting counters, not synchronization).
struct HealthCounters {
  std::atomic<u64> request_timeouts{0};  ///< deadlines tripped mid-exchange
  std::atomic<u64> chaos_injected{0};    ///< chaos actions fired (any kind)
  std::atomic<u64> node_deaths{0};       ///< nodes declared dead
  std::atomic<u64> reconnects{0};        ///< dead nodes re-admitted
  std::atomic<u64> failovers{0};         ///< points placed off their home node
  std::atomic<u64> retries{0};           ///< points re-dispatched after a loss
};

inline HealthCounters& health_counters() {
  static HealthCounters counters;
  return counters;
}

/// One node's share of a sharded sweep.
struct NodeHealth {
  std::string address;
  u64 jobs_completed = 0;  ///< results fetched from this node
  u64 deaths = 0;          ///< times this node was declared dead
  u64 reconnects = 0;      ///< times a probe re-admitted it
  u64 window = 0;          ///< in-flight window the sweep actually used
  bool window_from_status = false;  ///< sized from queue_limit vs. fallback
};

/// How degraded one sharded sweep was. All-zero (except windows) on a
/// healthy run.
struct FleetHealth {
  u64 retries = 0;          ///< point re-dispatches after a node loss
  u64 failovers = 0;        ///< points that ran off their home ring node
  u64 reconnects = 0;       ///< node re-admissions
  u64 node_deaths = 0;      ///< node-death events (a node can die repeatedly)
  u64 request_timeouts = 0; ///< request deadlines tripped
  u64 chaos_injected = 0;   ///< chaos actions fired during the sweep
  u64 points_lost = 0;      ///< points that became error rows
  std::vector<NodeHealth> nodes;

  bool degraded() const {
    return retries != 0 || failovers != 0 || reconnects != 0 ||
           node_deaths != 0 || request_timeouts != 0 || points_lost != 0;
  }
};

/// The FleetHealth as a JSON object (for the --fleet-stats footer and
/// tests). Deterministic member order.
inline std::string fleet_health_json(const FleetHealth& health) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("retries");
  w.value(health.retries);
  w.key("failovers");
  w.value(health.failovers);
  w.key("reconnects");
  w.value(health.reconnects);
  w.key("node_deaths");
  w.value(health.node_deaths);
  w.key("request_timeouts");
  w.value(health.request_timeouts);
  w.key("chaos_injected");
  w.value(health.chaos_injected);
  w.key("points_lost");
  w.value(health.points_lost);
  w.key("nodes");
  w.begin_array();
  for (const NodeHealth& node : health.nodes) {
    w.begin_object();
    w.key("address");
    w.value(node.address);
    w.key("jobs_completed");
    w.value(node.jobs_completed);
    w.key("deaths");
    w.value(node.deaths);
    w.key("reconnects");
    w.value(node.reconnects);
    w.key("window");
    w.value(node.window);
    w.key("window_from_status");
    w.value(node.window_from_status);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace mlp::serve
