#pragma once
// Multi-node sweep sharding: fan one (arch × bench × config) grid across
// several mlpserved daemons and merge the results back into submission
// order, byte-identical to a single local run.
//
// Placement is a consistent-hash ring over the jobs' PREPARE-CACHE keys
// (bench / records / rows / seed / record_barrier / slab_layout — see
// sim::prepare_key): every job sharing preparation artifacts lands on the
// same node, so each node's PrepareCache sees the same 8×-deduplicated
// working set it would serve alone, and repeated grids stay warm per node.
// The ring hashes node INDEX (not address), so the assignment depends only
// on the node count and list order — deterministic across runs, and adding
// a node moves only the keys that fall to its virtual points.
//
// The sweep is SELF-HEALING. Each node gets its own connection, its own
// sliding in-flight window sized to that node's admission bound, and its
// own queue-full retry. A node that dies mid-sweep — connection refused,
// reset, mid-frame close, or a request-deadline trip on a hung peer — loses
// nothing but time: its submitted-but-unfetched points are RE-DISPATCHED to
// the next surviving node on the ring (bounded by a per-point retry
// budget), dead nodes are probed with exponentially backed-off pings and
// re-admitted when they resurrect, and only when every node is dead or a
// point's budget is exhausted does a typed `node-lost` error row appear.
// Because jobs are pure functions of their spec and results merge by
// submission index, a sweep that failed over is byte-identical to one that
// never saw a fault.

#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/health.hpp"

namespace mlp::serve {

/// Typed kind reported for jobs lost to node failure: every node dead, the
/// point's retry budget exhausted, or (with failover disabled) its home
/// node down.
inline constexpr char kErrNodeLost[] = "node-lost";

/// Consistent-hash ring: `nodes` members, `kVirtualNodes` points each.
class ShardRing {
 public:
  explicit ShardRing(std::size_t nodes);

  /// Node index owning `key` (the first ring point at or after the key's
  /// hash, wrapping). Pure function of (key, node count): same grid, same
  /// assignment, every run.
  std::size_t node_for(const std::string& key) const;

  static constexpr u32 kVirtualNodes = 64;

 private:
  std::vector<std::pair<u64, u32>> ring_;  ///< (point, node), sorted
};

/// Shard index of one job: its prepare key hashed onto an `nodes`-member
/// ring. Exposed for tests and for predicting CI grid placement.
std::size_t shard_for_job(const sim::MatrixJob& job, std::size_t nodes);

/// Resilience policy for one sharded sweep.
struct ShardOptions {
  /// Initial-connect window per node in ms: a just-launched daemon that
  /// refuses the first connect is retried with a short backoff until this
  /// elapses (also the per-attempt TCP handshake bound). <= 0 disables the
  /// retry window AND the handshake bound (single blocking attempt).
  i64 connect_timeout_ms = 5000;
  /// Whole-roundtrip deadline per request in ms; a trip marks the node dead
  /// (a hung node is indistinguishable from — and treated as — a crashed
  /// one). Long jobs stay safe: result waits are bounded server-side and
  /// answered with typed heartbeats well inside this deadline. <= 0
  /// disables deadlines (a hung node then hangs the sweep; only for
  /// debugging).
  i64 request_timeout_ms = 30000;
  /// How many times one point may be re-dispatched after a node loss before
  /// it becomes a typed error row.
  u32 retry_budget = 3;
  /// Dead-node probe backoff: first probe after ~probe_min_ms, doubling
  /// (with ±50% jitter) to at most probe_max_ms. probe_max_ms also bounds
  /// the probe ping itself, so a SIGSTOPped daemon whose listener still
  /// accepts cannot wedge the prober.
  u64 probe_min_ms = 50;
  u64 probe_max_ms = 2000;
  /// Re-dispatch points from dead nodes to ring survivors. Off = the
  /// legacy behaviour (a dead node's points become typed node-lost rows).
  bool failover = true;
  /// Outgoing-frame chaos injection (see serve/transport.hpp); defaults to
  /// the MLP_CHAOS environment variable. Probe pings are exempt — chaos
  /// exercises the RPC path, not the healing path.
  ChaosConfig chaos = chaos_from_env();
};

/// Fan `jobs` across the daemons at `addresses` (AF_UNIX paths or
/// HOST:PORT) and return per-job results in submission order, healing
/// around node failure per `options`. `health` (optional) receives the
/// sweep's degradation report. The call itself only throws on misuse (no
/// addresses).
std::vector<RemoteResult> run_matrix_sharded(
    const std::vector<std::string>& addresses,
    const std::vector<sim::MatrixJob>& jobs, const ShardOptions& options,
    FleetHealth* health = nullptr);

/// Default-policy convenience overload.
std::vector<RemoteResult> run_matrix_sharded(
    const std::vector<std::string>& addresses,
    const std::vector<sim::MatrixJob>& jobs);

}  // namespace mlp::serve
