#pragma once
// Multi-node sweep sharding: fan one (arch × bench × config) grid across
// several mlpserved daemons and merge the results back into submission
// order, byte-identical to a single local run.
//
// Placement is a consistent-hash ring over the jobs' PREPARE-CACHE keys
// (bench / records / rows / seed / record_barrier / slab_layout — see
// sim::prepare_key): every job sharing preparation artifacts lands on the
// same node, so each node's PrepareCache sees the same 8×-deduplicated
// working set it would serve alone, and repeated grids stay warm per node.
// The ring hashes node INDEX (not address), so the assignment depends only
// on the node count and list order — deterministic across runs, and adding
// a node moves only the keys that fall to its virtual points.
//
// Each node gets its own connection, its own sliding in-flight window sized
// to that node's admission bound, and its own queue-full retry (drain the
// node's oldest in-flight result, resubmit). A node that dies mid-sweep
// (connection refused, reset, mid-frame close) fails only ITS jobs — each
// gets a typed `node-lost` error that renders as a regular CSV error row —
// and the sweep completes on the surviving nodes instead of hanging.

#include <string>
#include <vector>

#include "serve/client.hpp"

namespace mlp::serve {

/// Typed kind reported for jobs lost to a dead node (submitted to it and
/// unfetchable, or assigned to it after it died).
inline constexpr char kErrNodeLost[] = "node-lost";

/// Consistent-hash ring: `nodes` members, `kVirtualNodes` points each.
class ShardRing {
 public:
  explicit ShardRing(std::size_t nodes);

  /// Node index owning `key` (the first ring point at or after the key's
  /// hash, wrapping). Pure function of (key, node count): same grid, same
  /// assignment, every run.
  std::size_t node_for(const std::string& key) const;

  static constexpr u32 kVirtualNodes = 64;

 private:
  std::vector<std::pair<u64, u32>> ring_;  ///< (point, node), sorted
};

/// Shard index of one job: its prepare key hashed onto an `nodes`-member
/// ring. Exposed for tests and for predicting CI grid placement.
std::size_t shard_for_job(const sim::MatrixJob& job, std::size_t nodes);

/// Fan `jobs` across the daemons at `addresses` (AF_UNIX paths or
/// HOST:PORT) and return per-job results in submission order. With one
/// address this degenerates to run_matrix_remote's behaviour. Jobs on a
/// node that cannot be reached or dies mid-sweep carry error=node-lost;
/// the call itself only throws on misuse (no addresses).
std::vector<RemoteResult> run_matrix_sharded(
    const std::vector<std::string>& addresses,
    const std::vector<sim::MatrixJob>& jobs);

}  // namespace mlp::serve
