#include "serve/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "common/error.hpp"
#include "serve/health.hpp"
#include "serve/transport.hpp"

namespace mlp::serve {

namespace {

/// Connection ordinal feeding each connection's decorrelated chaos stream.
std::atomic<u64> g_connection_serial{0};

}  // namespace

Client::~Client() { close(); }

void Client::connect(const std::string& address) {
  close();
  fd_ = connect_endpoint(parse_endpoint(address), options_.connect_timeout_ms);
  if (options_.chaos.enabled()) {
    chaos_.emplace(options_.chaos,
                   g_connection_serial.fetch_add(1,
                                                 std::memory_order_relaxed));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  chaos_.reset();
}

Response Client::roundtrip(const std::string& request) {
  MLP_SIM_CHECK(fd_ >= 0, "serve", "not connected");
  const i64 timeout = options_.request_timeout_ms;
  bool skip_write = false;
  if (chaos_) {
    switch (chaos_->next()) {
      case ChaosInjector::Action::kNone:
        break;
      case ChaosInjector::Action::kDelay:
        // Injected latency only; the frame still goes out.
        health_counters().chaos_injected.fetch_add(1,
                                                   std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(chaos_->delay_ms()));
        break;
      case ChaosInjector::Action::kDrop:
        health_counters().chaos_injected.fetch_add(1,
                                                   std::memory_order_relaxed);
        if (timeout > 0) {
          // Swallow the request and let the response read run into the
          // deadline — the exact signature of a hung peer.
          skip_write = true;
          break;
        }
        // Without a deadline a dropped frame would hang forever; degrade
        // to a close so the caller still sees a clean transport failure.
        close();
        throw SimError("serve", "chaos: request frame dropped "
                                "(no request deadline; closed)");
      case ChaosInjector::Action::kTruncate: {
        health_counters().chaos_injected.fetch_add(1,
                                                   std::memory_order_relaxed);
        // Half a frame on the wire: header promising the full payload,
        // then silence — the peer sees a mid-frame close and drops us.
        const u32 len = static_cast<u32>(request.size());
        const char header[4] = {static_cast<char>(len & 0xff),
                                static_cast<char>((len >> 8) & 0xff),
                                static_cast<char>((len >> 16) & 0xff),
                                static_cast<char>((len >> 24) & 0xff)};
        ::send(fd_, header, sizeof(header), MSG_NOSIGNAL);
        if (len > 1) ::send(fd_, request.data(), len / 2, MSG_NOSIGNAL);
        close();
        throw SimError("serve", "chaos: request frame truncated");
      }
      case ChaosInjector::Action::kClose:
        health_counters().chaos_injected.fetch_add(1,
                                                   std::memory_order_relaxed);
        close();
        throw SimError("serve", "chaos: connection closed before request");
    }
  }
  try {
    if (!skip_write) {
      MLP_SIM_CHECK(write_frame(fd_, request, timeout), "serve",
                    "connection lost while sending request");
    }
    std::optional<std::string> frame = read_frame(fd_, timeout);
    MLP_SIM_CHECK(frame.has_value(), "serve",
                  "server closed the connection before responding");
    return parse_response(*frame);
  } catch (const SimError& e) {
    if (e.kind() == kErrTimeout) {
      // The half-finished exchange poisons the byte stream; drop it so the
      // next request cannot desync against a late response.
      health_counters().request_timeouts.fetch_add(
          1, std::memory_order_relaxed);
      close();
    }
    throw;
  }
}

Response Client::ping() { return roundtrip(ping_request()); }
Response Client::submit(const JobSpec& spec) {
  return roundtrip(submit_request(spec));
}
Response Client::server_status() { return roundtrip(status_request()); }
Response Client::job_status(u64 id) {
  return roundtrip(job_status_request(id));
}
Response Client::result(u64 id, bool wait) {
  return roundtrip(result_request(id, wait));
}
Response Client::result(u64 id, bool wait, u64 wait_ms) {
  return roundtrip(result_request(id, wait, wait_ms));
}
Response Client::cancel(u64 id) { return roundtrip(cancel_request(id)); }
Response Client::shutdown() { return roundtrip(shutdown_request()); }
Response Client::snapshot(const JobSpec& spec, u64 cycle) {
  return roundtrip(snapshot_request(spec, cycle));
}
Response Client::restore(const JobSpec& spec, u64 cycle) {
  return roundtrip(restore_request(spec, cycle));
}

/// Decode a result response into the RemoteResult slot.
void decode_result_response(const Response& r, RemoteResult* out) {
  const trace::JsonValue* csv = r.doc.find("csv");
  const trace::JsonValue* stats = r.doc.find("stats");
  const trace::JsonValue* hit = r.doc.find("cache_hit");
  const trace::JsonValue* run_ok = r.doc.find("run_ok");
  out->ok = true;
  out->run_ok = run_ok != nullptr && run_ok->boolean;
  out->csv = csv != nullptr ? csv->string : "";
  out->stats_run_json = stats != nullptr ? stats->string : "";
  out->cache_hit = hit != nullptr && hit->boolean;
}

std::vector<RemoteResult> run_matrix_remote(Client& client,
                                            const std::vector<sim::MatrixJob>& jobs,
                                            u64 window) {
  std::vector<RemoteResult> results(jobs.size());
  if (window == 0) {
    const Response status = client.server_status();
    const trace::JsonValue* limit = status.doc.find("queue_limit");
    window = limit != nullptr && limit->unsigned_integer > 0
                 ? limit->unsigned_integer
                 : 8;
  }

  // (job index, server id) of submitted-but-unfetched jobs, FIFO. The
  // result-wait fetch of the oldest entry is what frees an admission slot,
  // so a queue-full rejection always resolves by draining the head.
  std::deque<std::pair<std::size_t, u64>> inflight;
  const auto drain_one = [&] {
    const auto [index, id] = inflight.front();
    inflight.pop_front();
    const Response r = client.result(id, /*wait=*/true);
    if (r.ok) {
      decode_result_response(r, &results[index]);
    } else {
      results[index].error = r.error;
      results[index].message = r.message;
    }
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (inflight.size() >= window) drain_one();
    for (;;) {
      const Response r = client.submit(JobSpec{jobs[i], 0});
      if (r.ok) {
        inflight.emplace_back(i, r.doc.u64_at("id"));
        break;
      }
      if (r.error == kErrQueueFull && !inflight.empty()) {
        drain_one();  // free one admission slot, then retry the submit
        continue;
      }
      results[i].error = r.error;
      results[i].message = r.message;
      break;
    }
  }
  while (!inflight.empty()) drain_one();
  return results;
}

}  // namespace mlp::serve
