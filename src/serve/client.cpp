#include "serve/client.hpp"

#include <unistd.h>

#include <deque>

#include "common/error.hpp"
#include "serve/transport.hpp"

namespace mlp::serve {

Client::~Client() { close(); }

void Client::connect(const std::string& address) {
  close();
  fd_ = connect_endpoint(parse_endpoint(address));
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::roundtrip(const std::string& request) {
  MLP_SIM_CHECK(fd_ >= 0, "serve", "not connected");
  MLP_SIM_CHECK(write_frame(fd_, request), "serve",
                "connection lost while sending request");
  std::optional<std::string> frame = read_frame(fd_);
  MLP_SIM_CHECK(frame.has_value(), "serve",
                "server closed the connection before responding");
  return parse_response(*frame);
}

Response Client::ping() { return roundtrip(ping_request()); }
Response Client::submit(const JobSpec& spec) {
  return roundtrip(submit_request(spec));
}
Response Client::server_status() { return roundtrip(status_request()); }
Response Client::job_status(u64 id) {
  return roundtrip(job_status_request(id));
}
Response Client::result(u64 id, bool wait) {
  return roundtrip(result_request(id, wait));
}
Response Client::cancel(u64 id) { return roundtrip(cancel_request(id)); }
Response Client::shutdown() { return roundtrip(shutdown_request()); }

/// Decode a result response into the RemoteResult slot.
void decode_result_response(const Response& r, RemoteResult* out) {
  const trace::JsonValue* csv = r.doc.find("csv");
  const trace::JsonValue* stats = r.doc.find("stats");
  const trace::JsonValue* hit = r.doc.find("cache_hit");
  const trace::JsonValue* run_ok = r.doc.find("run_ok");
  out->ok = true;
  out->run_ok = run_ok != nullptr && run_ok->boolean;
  out->csv = csv != nullptr ? csv->string : "";
  out->stats_run_json = stats != nullptr ? stats->string : "";
  out->cache_hit = hit != nullptr && hit->boolean;
}

std::vector<RemoteResult> run_matrix_remote(Client& client,
                                            const std::vector<sim::MatrixJob>& jobs,
                                            u64 window) {
  std::vector<RemoteResult> results(jobs.size());
  if (window == 0) {
    const Response status = client.server_status();
    const trace::JsonValue* limit = status.doc.find("queue_limit");
    window = limit != nullptr && limit->unsigned_integer > 0
                 ? limit->unsigned_integer
                 : 8;
  }

  // (job index, server id) of submitted-but-unfetched jobs, FIFO. The
  // result-wait fetch of the oldest entry is what frees an admission slot,
  // so a queue-full rejection always resolves by draining the head.
  std::deque<std::pair<std::size_t, u64>> inflight;
  const auto drain_one = [&] {
    const auto [index, id] = inflight.front();
    inflight.pop_front();
    const Response r = client.result(id, /*wait=*/true);
    if (r.ok) {
      decode_result_response(r, &results[index]);
    } else {
      results[index].error = r.error;
      results[index].message = r.message;
    }
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (inflight.size() >= window) drain_one();
    for (;;) {
      const Response r = client.submit(JobSpec{jobs[i], 0});
      if (r.ok) {
        inflight.emplace_back(i, r.doc.u64_at("id"));
        break;
      }
      if (r.error == kErrQueueFull && !inflight.empty()) {
        drain_one();  // free one admission slot, then retry the submit
        continue;
      }
      results[i].error = r.error;
      results[i].message = r.message;
      break;
    }
  }
  while (!inflight.empty()) drain_one();
  return results;
}

}  // namespace mlp::serve
