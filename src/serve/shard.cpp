#include "serve/shard.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "sim/prepare.hpp"

namespace mlp::serve {

ShardRing::ShardRing(std::size_t nodes) {
  MLP_SIM_CHECK(nodes > 0, "serve", "shard ring needs at least one node");
  ring_.reserve(nodes * kVirtualNodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (u32 v = 0; v < kVirtualNodes; ++v) {
      const std::string point =
          "node" + std::to_string(n) + "#" + std::to_string(v);
      ring_.emplace_back(sim::stable_hash64(point), static_cast<u32>(n));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRing::node_for(const std::string& key) const {
  const u64 hash = sim::stable_hash64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(hash, u32{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->second;
}

namespace {

/// The sharding key: the job's prepare-cache key when it is computable. A
/// job the server would reject anyway (unknown benchmark) still needs a
/// deterministic home for its error row; its bench name stands in.
std::string shard_key(const sim::MatrixJob& job) {
  try {
    return sim::prepare_key(job);
  } catch (const SimError&) {
    return job.bench;
  }
}

/// One daemon's connection + sliding submit window.
struct Node {
  std::string address;
  Client client;
  u64 window = 8;  ///< in-flight bound, sized to the node's queue_limit
  std::deque<std::pair<std::size_t, u64>> inflight;  ///< (job idx, server id)
  bool dead = false;
  std::string reason;
};

/// Fail the node: every submitted-but-unfetched job becomes a typed
/// node-lost error (rendered as a regular CSV error row upstream), and
/// later jobs assigned here fail fast instead of re-trying a dead peer.
void kill_node(Node* node, const std::string& reason,
               std::vector<RemoteResult>* results) {
  node->dead = true;
  node->reason = reason;
  node->client.close();
  for (const auto& [index, id] : node->inflight) {
    (*results)[index].error = kErrNodeLost;
    (*results)[index].message = node->address + ": " + reason;
  }
  node->inflight.clear();
}

/// Fetch (blocking) the node's oldest in-flight result — the step that
/// frees one admission slot. A connection failure kills the node.
void drain_one(Node* node, std::vector<RemoteResult>* results) {
  const auto [index, id] = node->inflight.front();
  try {
    const Response r = node->client.result(id, /*wait=*/true);
    node->inflight.pop_front();
    if (r.ok) {
      decode_result_response(r, &(*results)[index]);
    } else {
      (*results)[index].error = r.error;
      (*results)[index].message = r.message;
    }
  } catch (const SimError& e) {
    kill_node(node, e.what(), results);
  }
}

}  // namespace

std::size_t shard_for_job(const sim::MatrixJob& job, std::size_t nodes) {
  return ShardRing(nodes).node_for(shard_key(job));
}

std::vector<RemoteResult> run_matrix_sharded(
    const std::vector<std::string>& addresses,
    const std::vector<sim::MatrixJob>& jobs) {
  MLP_SIM_CHECK(!addresses.empty(), "serve", "no server addresses");
  std::vector<RemoteResult> results(jobs.size());

  std::vector<Node> nodes(addresses.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    Node& node = nodes[n];
    node.address = addresses[n];
    try {
      node.client.connect(node.address);
      // Per-node window sizing: each node's admission bound, not the first
      // node's — a narrow node must not stall (or overflow) a wide one.
      const Response status = node.client.server_status();
      const trace::JsonValue* limit = status.doc.find("queue_limit");
      if (limit != nullptr && limit->unsigned_integer > 0) {
        node.window = limit->unsigned_integer;
      }
    } catch (const SimError& e) {
      kill_node(&node, e.what(), &results);
    }
  }

  const ShardRing ring(nodes.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Node& node = nodes[ring.node_for(shard_key(jobs[i]))];
    if (node.dead) {
      results[i].error = kErrNodeLost;
      results[i].message = node.address + ": " + node.reason;
      continue;
    }
    if (node.inflight.size() >= node.window) drain_one(&node, &results);
    if (!node.dead) {
      try {
        for (;;) {
          const Response r = node.client.submit(JobSpec{jobs[i], 0});
          if (r.ok) {
            node.inflight.emplace_back(i, r.doc.u64_at("id"));
            break;
          }
          if (r.error == kErrQueueFull && !node.inflight.empty()) {
            // This node's backpressure: free one of ITS slots and retry.
            drain_one(&node, &results);
            if (node.dead) break;
            continue;
          }
          results[i].error = r.error;
          results[i].message = r.message;
          break;
        }
      } catch (const SimError& e) {
        kill_node(&node, e.what(), &results);
      }
    }
    if (node.dead && results[i].error.empty()) {
      results[i].error = kErrNodeLost;
      results[i].message = node.address + ": " + node.reason;
    }
  }

  for (Node& node : nodes) {
    while (!node.dead && !node.inflight.empty()) drain_one(&node, &results);
  }
  return results;
}

}  // namespace mlp::serve
