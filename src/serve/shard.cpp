#include "serve/shard.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <iostream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/prepare.hpp"

namespace mlp::serve {

ShardRing::ShardRing(std::size_t nodes) {
  MLP_SIM_CHECK(nodes > 0, "serve", "shard ring needs at least one node");
  ring_.reserve(nodes * kVirtualNodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (u32 v = 0; v < kVirtualNodes; ++v) {
      const std::string point =
          "node" + std::to_string(n) + "#" + std::to_string(v);
      ring_.emplace_back(sim::stable_hash64(point), static_cast<u32>(n));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRing::node_for(const std::string& key) const {
  const u64 hash = sim::stable_hash64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(hash, u32{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->second;
}

namespace {

/// The sharding key: the job's prepare-cache key when it is computable. A
/// job the server would reject anyway (unknown benchmark) still needs a
/// deterministic home for its error row; its bench name stands in.
std::string shard_key(const sim::MatrixJob& job) {
  try {
    return sim::prepare_key(job);
  } catch (const SimError&) {
    return job.bench;
  }
}

u64 steady_now_ms() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One daemon's connection + sliding submit window + liveness state.
struct Node {
  std::string address;
  Client client;
  u64 window = 8;  ///< in-flight bound, sized to the node's queue_limit
  std::deque<std::pair<std::size_t, u64>> inflight;  ///< (job idx, server id)
  bool alive = false;
  std::string reason;       ///< last failure, for error rows and probes
  NodeHealth health;
  u64 backoff_ms = 0;       ///< current probe backoff
  u64 next_probe_ms = 0;    ///< steady-clock ms gating the next probe
  Rng jitter{1};            ///< desynchronizes this node's probe schedule
};

/// Connect (or reconnect) a node and size its window from the daemon's
/// admission bound. Retries ANY failure with a short sleep until
/// `window_ms` elapses — a just-launched daemon refuses its first connects
/// for a few ms, and that race must not read as node death.
bool connect_node(Node* node, i64 window_ms) {
  const u64 deadline =
      window_ms > 0 ? steady_now_ms() + static_cast<u64>(window_ms) : 0;
  for (;;) {
    try {
      node->client.connect(node->address);
      const Response status = node->client.server_status();
      const trace::JsonValue* limit = status.doc.find("queue_limit");
      if (limit != nullptr && limit->unsigned_integer > 0) {
        // Per-node window sizing: each node's admission bound, not the
        // first node's — a narrow node must not stall (or overflow) a wide
        // one.
        node->window = limit->unsigned_integer;
        node->health.window_from_status = true;
      } else {
        node->health.window_from_status = false;
        std::cerr << "[sweep] warning: node " << node->address
                  << " reported no queue_limit; keeping in-flight window "
                  << node->window << "\n";
      }
      node->health.window = node->window;
      node->alive = true;
      node->reason.clear();
      return true;
    } catch (const SimError& e) {
      node->reason = e.what();
      node->client.close();
      if (deadline == 0 || steady_now_ms() + 20 >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace

std::size_t shard_for_job(const sim::MatrixJob& job, std::size_t nodes) {
  return ShardRing(nodes).node_for(shard_key(job));
}

std::vector<RemoteResult> run_matrix_sharded(
    const std::vector<std::string>& addresses,
    const std::vector<sim::MatrixJob>& jobs, const ShardOptions& options,
    FleetHealth* health) {
  MLP_SIM_CHECK(!addresses.empty(), "serve", "no server addresses");
  std::vector<RemoteResult> results(jobs.size());
  std::vector<u32> attempts(jobs.size(), 0);
  FleetHealth fleet;
  const u64 timeouts_before = health_counters().request_timeouts.load();
  const u64 chaos_before = health_counters().chaos_injected.load();

  ClientOptions copts;
  copts.connect_timeout_ms = options.connect_timeout_ms;
  copts.request_timeout_ms = options.request_timeout_ms;
  copts.chaos = options.chaos;
  // Probes heal the fleet; they get a tight deadline of their own (a
  // SIGSTOPped daemon still accepts into its listen backlog, so the ping —
  // not the connect — is what detects the hang) and no chaos.
  ClientOptions probe_opts;
  probe_opts.connect_timeout_ms = static_cast<i64>(options.probe_max_ms);
  probe_opts.request_timeout_ms = static_cast<i64>(options.probe_max_ms);
  probe_opts.chaos = ChaosConfig{};

  const std::size_t count = addresses.size();
  std::vector<Node> nodes(count);

  auto kill_node = [&](Node* node, const std::string& reason) {
    node->alive = false;
    node->reason = reason;
    node->client.close();
    ++node->health.deaths;
    ++fleet.node_deaths;
    health_counters().node_deaths.fetch_add(1, std::memory_order_relaxed);
    node->backoff_ms = std::max<u64>(options.probe_min_ms, 1);
    node->next_probe_ms = steady_now_ms() + node->backoff_ms;
    return;
  };

  std::deque<std::size_t> pending;
  auto requeue = [&](std::size_t index, const std::string& why) {
    ++attempts[index];
    ++fleet.retries;
    health_counters().retries.fetch_add(1, std::memory_order_relaxed);
    if (attempts[index] > options.retry_budget) {
      results[index].error = kErrNodeLost;
      results[index].message = "retry budget (" +
                               std::to_string(options.retry_budget) +
                               ") exhausted; last loss: " + why;
      ++fleet.points_lost;
      return;
    }
    pending.push_back(index);
  };

  /// Declare a node dead and put its in-flight points back on the queue.
  auto lose_node = [&](Node* node, const std::string& reason) {
    kill_node(node, reason);
    std::deque<std::pair<std::size_t, u64>> orphaned;
    orphaned.swap(node->inflight);
    for (const auto& [index, id] : orphaned) {
      requeue(index, node->address + ": " + reason);
    }
  };

  /// Fetch the node's oldest in-flight result, heartbeating through long
  /// jobs: the server parks at most ~half the request deadline and answers
  /// with a typed job-running/job-pending when the job is still in flight,
  /// so a responsive-but-busy node never trips the deadline while a hung
  /// one trips it in one period.
  auto drain_one = [&](Node* node) {
    const auto [index, id] = node->inflight.front();
    const u64 heartbeat_ms =
        options.request_timeout_ms > 0
            ? std::max<u64>(100,
                            static_cast<u64>(options.request_timeout_ms) / 2)
            : 0;
    try {
      for (;;) {
        const Response r = node->client.result(id, /*wait=*/true,
                                               heartbeat_ms);
        if (r.ok) {
          node->inflight.pop_front();
          decode_result_response(r, &results[index]);
          ++node->health.jobs_completed;
          return;
        }
        if (r.error == kErrJobRunning || r.error == kErrJobPending) {
          continue;  // heartbeat: the job is slow but the node is alive
        }
        // The job is unfetchable HERE (e.g. the daemon restarted and lost
        // it) but the node answers — re-dispatch the point, keep the node.
        node->inflight.pop_front();
        requeue(index, node->address + ": " + r.error + ": " + r.message);
        return;
      }
    } catch (const SimError& e) {
      lose_node(node, e.what());
    }
  };

  /// Probe dead nodes and re-admit the ones that resurrected. `force`
  /// ignores the backoff gate (used when the whole fleet looks dead).
  auto probe_dead = [&](bool force) {
    for (Node& node : nodes) {
      if (node.alive) continue;
      const u64 now = steady_now_ms();
      if (!force && now < node.next_probe_ms) continue;
      bool daemon_up = false;
      {
        Client probe(probe_opts);
        try {
          probe.connect(node.address);
          daemon_up = probe.ping().ok;
        } catch (const SimError&) {
          daemon_up = false;
        }
      }
      if (daemon_up &&
          connect_node(&node, static_cast<i64>(options.probe_max_ms))) {
        ++node.health.reconnects;
        ++fleet.reconnects;
        health_counters().reconnects.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Still down: back off exponentially with ±50% jitter so a fleet of
      // probers does not re-synchronize against a flapping daemon.
      node.backoff_ms = std::min(
          options.probe_max_ms,
          std::max<u64>(1, node.backoff_ms) * 2);
      node.next_probe_ms =
          steady_now_ms() + static_cast<u64>(static_cast<double>(
                                node.backoff_ms) *
                            (0.5 + node.jitter.uniform()));
    }
  };

  /// Place one point on `node`: make a window slot, submit with queue-full
  /// retry, and convert any transport loss into a re-dispatch.
  auto place_point = [&](Node* node, std::size_t index) {
    while (node->alive && node->inflight.size() >= node->window) {
      drain_one(node);
    }
    if (!node->alive) {
      requeue(index, node->address + ": " + node->reason);
      return;
    }
    try {
      for (;;) {
        const Response r = node->client.submit(JobSpec{jobs[index], 0});
        if (r.ok) {
          node->inflight.emplace_back(index, r.doc.u64_at("id"));
          return;
        }
        if (r.error == kErrQueueFull && !node->inflight.empty()) {
          // This node's backpressure: free one of ITS slots and retry.
          drain_one(node);
          if (!node->alive) {
            requeue(index, node->address + ": " + node->reason);
            return;
          }
          continue;
        }
        if (r.error == kErrShuttingDown) {
          // A graceful drain is a typed response, not a transport error,
          // but the node is leaving the fleet all the same.
          lose_node(node, "server is draining (shutting-down)");
          requeue(index, node->address + ": shutting-down");
          return;
        }
        // Deterministic per-job rejection (bad-request, ...): no node will
        // accept this job, so it becomes an error row, not a retry.
        results[index].error = r.error;
        results[index].message = r.message;
        return;
      }
    } catch (const SimError& e) {
      lose_node(node, e.what());
      requeue(index, node->address + ": " + e.what());
    }
  };

  // ---- initial fleet bring-up ----
  for (std::size_t n = 0; n < count; ++n) {
    Node& node = nodes[n];
    node.address = addresses[n];
    node.health.address = addresses[n];
    node.health.window = node.window;
    node.jitter.reseed(0x5eed'f1ee'7000'0000ull + n);
    node.client.set_options(copts);
    if (!connect_node(&node, options.connect_timeout_ms)) {
      kill_node(&node, node.reason);
    }
  }

  const ShardRing ring(count);
  std::vector<std::size_t> home(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    home[i] = ring.node_for(shard_key(jobs[i]));
    pending.push_back(i);
  }

  auto any_inflight = [&] {
    for (const Node& node : nodes) {
      if (!node.inflight.empty()) return true;
    }
    return false;
  };
  auto choose_node = [&](std::size_t index) -> Node* {
    const std::size_t h = home[index];
    if (!options.failover) return nodes[h].alive ? &nodes[h] : nullptr;
    for (std::size_t k = 0; k < count; ++k) {
      Node& node = nodes[(h + k) % count];
      if (!node.alive) continue;
      if (k != 0) {
        ++fleet.failovers;
        health_counters().failovers.fetch_add(1, std::memory_order_relaxed);
      }
      return &node;
    }
    return nullptr;
  };

  // ---- main loop: place pending points, drain in-flight results ----
  while (!pending.empty() || any_inflight()) {
    probe_dead(/*force=*/false);
    if (pending.empty()) {
      // Nothing left to place: drain whichever node still owes results.
      // Node loss during the drain refills `pending`, so the loop re-enters
      // placement naturally.
      for (Node& node : nodes) {
        if (node.alive && !node.inflight.empty()) {
          drain_one(&node);
          break;
        }
      }
      continue;
    }
    const std::size_t index = pending.front();
    pending.pop_front();
    Node* node = choose_node(index);
    if (node == nullptr && options.failover) {
      // The whole fleet looks dead — give every node one immediate probe
      // before giving up on the remaining points.
      probe_dead(/*force=*/true);
      node = choose_node(index);
    }
    if (node == nullptr) {
      const Node& h = nodes[home[index]];
      results[index].error = kErrNodeLost;
      results[index].message =
          options.failover
              ? "every node is dead; last loss on " + h.address + ": " +
                    h.reason
              : h.address + ": " + h.reason;
      ++fleet.points_lost;
      if (options.failover) {
        // With failover on, "no node" means NO node — every remaining
        // point meets the same fate; fail them in one sweep instead of
        // re-probing per point.
        for (const std::size_t j : pending) {
          results[j].error = kErrNodeLost;
          results[j].message = results[index].message;
          ++fleet.points_lost;
        }
        pending.clear();
      }
      continue;
    }
    place_point(node, index);
  }

  // ---- health report ----
  fleet.request_timeouts =
      health_counters().request_timeouts.load() - timeouts_before;
  fleet.chaos_injected =
      health_counters().chaos_injected.load() - chaos_before;
  for (Node& node : nodes) {
    fleet.nodes.push_back(node.health);
  }
  if (health != nullptr) *health = fleet;
  return results;
}

std::vector<RemoteResult> run_matrix_sharded(
    const std::vector<std::string>& addresses,
    const std::vector<sim::MatrixJob>& jobs) {
  return run_matrix_sharded(addresses, jobs, ShardOptions{});
}

}  // namespace mlp::serve
