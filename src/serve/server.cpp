#include "serve/server.hpp"

#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "serve/transport.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace mlp::serve {

namespace {

/// A job still occupying an admission slot (the queue_limit population).
bool non_terminal(JobState state) {
  return state == JobState::kQueued || state == JobState::kRunning;
}

/// The snapshot verbs are version-gated: a request that does not declare
/// the current protocol version gets the typed version-mismatch rejection,
/// so an old client can never trip into semantics it predates.
void require_protocol_version(const trace::JsonValue& doc, const char* verb) {
  const trace::JsonValue* v = doc.find("protocol_version");
  MLP_SIM_CHECK(
      v != nullptr && v->type == trace::JsonValue::Type::kNumber &&
          v->is_integer && v->unsigned_integer == kProtocolVersion,
      kErrVersionMismatch,
      std::string(verb) + " requires \"protocol_version\":" +
          std::to_string(kProtocolVersion) +
          " (snapshot verbs joined the protocol in version 2)");
}

/// Shared parse of the snapshot/restore request body: the job spec plus the
/// checkpoint cycle, with the snapshot-specific validity checks.
JobSpec snapshot_verb_spec(const trace::JsonValue& doc, u64* cycle) {
  const trace::JsonValue* job = doc.find("job");
  MLP_SIM_CHECK(job != nullptr, kErrBadRequest,
                "request lacks a \"job\" object");
  JobSpec spec = job_from_json(*job);
  // The cache key ignores trace config, and a restored run's trace would
  // silently lack every warmup event — tracing and server-side snapshots
  // don't compose.
  MLP_SIM_CHECK(!spec.job.options.trace.enabled(), kErrBadRequest,
                "snapshot/restore jobs cannot enable tracing");
  MLP_SIM_CHECK(doc.find("cycle") != nullptr, kErrBadRequest,
                "request lacks \"cycle\"");
  *cycle = doc.u64_at("cycle");
  MLP_SIM_CHECK(*cycle > 0, kErrBadRequest, "\"cycle\" must be positive");
  return spec;
}

/// Cache key of a captured blob: preparation identity + architecture +
/// REQUESTED cycle (what the client can reproduce; the quiesce-drained
/// capture cycle travels in the response instead).
std::string snapshot_cache_key(const sim::MatrixJob& job, u64 cycle) {
  return sim::prepare_key(job) + "|" + arch::arch_name(job.kind) + "|" +
         std::to_string(cycle);
}

}  // namespace

Server::Server(const ServeConfig& cfg)
    : cfg_(cfg), cache_(cfg.cache_entries), snapshots_(cfg.snapshot_entries) {}

Server::~Server() { close_listeners(); }

void Server::close_listeners() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
}

std::string Server::tcp_address() const {
  if (tcp_fd_ < 0) return "";
  Endpoint ep = parse_endpoint(cfg_.listen_address);
  ep.port = tcp_port_;
  return endpoint_name(ep);
}

void Server::listen() {
  MLP_SIM_CHECK(!cfg_.socket_path.empty() || !cfg_.listen_address.empty(),
                "serve", "no endpoint: need a socket path or a TCP address");
  if (!cfg_.socket_path.empty()) {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = cfg_.socket_path;
    unix_fd_ = listen_endpoint(ep);
  }
  if (!cfg_.listen_address.empty()) {
    const Endpoint ep = parse_endpoint(cfg_.listen_address);
    MLP_SIM_CHECK(ep.kind == Endpoint::Kind::kTcp, "serve",
                  "--listen expects HOST:PORT, got: " + cfg_.listen_address);
    tcp_fd_ = listen_endpoint(ep, &tcp_port_);
  }
  pool_ = std::make_unique<sim::ThreadPool>(cfg_.threads);
}

void Server::run() {
  MLP_SIM_CHECK(unix_fd_ >= 0 || tcp_fd_ >= 0, "serve",
                "run() before listen()");
  while (!stop_.load()) {
    pollfd pfds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) pfds[nfds++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[nfds++] = pollfd{tcp_fd_, POLLIN, 0};
    // 100 ms poll timeout: the upper bound on SIGTERM-to-drain latency
    // without needing a self-pipe in the signal handler.
    const int ready = ::poll(pfds, nfds, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(pfds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      if (pfds[i].fd == tcp_fd_) set_tcp_nodelay(fd);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      open_fds_.push_back(fd);
      connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  // ---- drain ----
  // 1. Cut artificial holds short so queued jobs reach the workers, and
  //    take the pool out of jobs_' sight so late submits see shutting-down
  //    instead of racing the teardown.
  std::unique_ptr<sim::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, entry] : jobs_) {
      entry.wake = true;
      entry.cv.notify_all();
    }
    pool.swap(pool_);
  }
  // 2. Let every admitted job finish (ThreadPool's destructor runs the
  //    remaining queue; in-flight simulations stay under their per-job
  //    watchdog, so this cannot wedge). Clients blocked in result-wait are
  //    released by the jobs' completion notifications.
  pool.reset();
  // 3. Unblock idle connections parked in read_frame and join the handlers.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) t.join();
  close_listeners();
}

void Server::request_stop() { stop_.store(true); }

ServerStatus Server::status() const {
  ServerStatus out;
  out.queue_limit = cfg_.queue_limit;
  out.accepting = !stop_.load();
  out.cache = cache_.stats();
  const sim::SnapshotCache::Stats snap = snapshots_.stats();
  out.snapshot_hits = snap.hits;
  out.snapshot_misses = snap.misses;
  out.snapshot_evictions = snap.evictions;
  out.snapshot_entries = snap.entries;
  out.snapshot_blob_bytes = snap.blob_bytes;
  std::lock_guard<std::mutex> lock(mutex_);
  out.threads = pool_ != nullptr ? pool_->size() : 0;
  for (const auto& [id, entry] : jobs_) {
    switch (entry.state) {
      case JobState::kQueued:
        ++out.queued;
        break;
      case JobState::kRunning:
        ++out.running;
        break;
      case JobState::kDone:
        ++out.done;
        break;
      case JobState::kCancelled:
        ++out.cancelled;
        break;
    }
  }
  return out;
}

void Server::serve_connection(int fd) {
  for (;;) {
    std::string request;
    try {
      std::optional<std::string> frame = read_frame(fd);
      if (!frame.has_value()) break;  // clean EOF
      request = std::move(*frame);
    } catch (const SimError&) {
      // Desynced framing: the byte stream is unrecoverable, drop the peer.
      break;
    }
    const std::string response = handle_request(request);
    if (!write_frame(fd, response)) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(threads_mutex_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
}

std::string Server::handle_request(const std::string& payload) {
  try {
    const trace::JsonValue doc = trace::json_parse(payload);
    MLP_SIM_CHECK(doc.is_object(), kErrBadRequest,
                  "request is not a JSON object");
    const trace::JsonValue* type = doc.find("type");
    MLP_SIM_CHECK(
        type != nullptr && type->type == trace::JsonValue::Type::kString,
        kErrBadRequest, "request lacks a string \"type\"");
    if (type->string == "ping") return pong_response();
    if (type->string == "submit") return handle_submit(doc);
    if (type->string == "status") return handle_status(doc);
    if (type->string == "result") return handle_result(doc);
    if (type->string == "cancel") return handle_cancel(doc);
    if (type->string == "snapshot") return handle_snapshot(doc);
    if (type->string == "restore") return handle_restore(doc);
    if (type->string == "shutdown") {
      request_stop();
      return shutting_down_response();
    }
    return error_response(kErrBadRequest,
                          "unknown request type \"" + type->string + "\"");
  } catch (const SimError& e) {
    // Typed kinds (queue-full, no-such-job, ...) pass through; anything
    // else (json parse, config validation) is the client's bad request.
    static const char* const kTyped[] = {
        kErrQueueFull,  kErrBadRequest, kErrNoSuchJob,    kErrJobRunning,
        kErrJobPending, kErrJobDone,    kErrShuttingDown,
        kErrVersionMismatch, kErrNoSuchSnapshot,
    };
    for (const char* kind : kTyped) {
      if (e.kind() == kind) return error_response(e.kind(), e.what());
    }
    return error_response(kErrBadRequest, e.what());
  }
}

std::string Server::handle_submit(const trace::JsonValue& doc) {
  const trace::JsonValue* job = doc.find("job");
  MLP_SIM_CHECK(job != nullptr, kErrBadRequest,
                "submit lacks a \"job\" object");
  JobSpec spec = job_from_json(*job);

  u64 id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.load() || pool_ == nullptr) {
      return error_response(kErrShuttingDown, "server is draining");
    }
    if (active_ >= cfg_.queue_limit) {
      return error_response(
          kErrQueueFull, "admission queue full (" +
                             std::to_string(cfg_.queue_limit) +
                             " jobs queued or running); retry after a fetch");
    }
    id = next_id_++;
    JobEntry& entry = jobs_[id];
    entry.spec = std::move(spec);
    ++active_;
    // Submit under the lock: drain swaps pool_ out under the same lock, so
    // an admitted job can never race the pool teardown.
    pool_->submit([this, id] { execute(id); });
  }
  return submitted_response(id);
}

std::string Server::handle_status(const trace::JsonValue& doc) {
  if (doc.find("id") == nullptr) return status_response(status());
  const u64 id = doc.u64_at("id");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  MLP_SIM_CHECK(it != jobs_.end(), kErrNoSuchJob,
                "no job " + std::to_string(id));
  return job_status_response(id, it->second.state);
}

std::string Server::handle_result(const trace::JsonValue& doc) {
  MLP_SIM_CHECK(doc.find("id") != nullptr, kErrBadRequest,
                "result lacks \"id\"");
  const u64 id = doc.u64_at("id");
  const trace::JsonValue* wait = doc.find("wait");
  const bool block = wait != nullptr && wait->boolean;
  const trace::JsonValue* wait_ms = doc.find("wait_ms");
  const u64 bound_ms =
      wait_ms != nullptr ? wait_ms->unsigned_integer : 0;

  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  MLP_SIM_CHECK(it != jobs_.end(), kErrNoSuchJob,
                "no job " + std::to_string(id));
  JobEntry& entry = it->second;
  if (block && bound_ms > 0) {
    // Bounded wait: park at most wait_ms, then answer with a typed
    // heartbeat if the job is still in flight. This is the client's
    // liveness probe — a heartbeat proves the node is responsive even when
    // the job itself is slow, so silence within the request deadline can
    // safely be read as node death.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(bound_ms);
    entry.cv.wait_until(lock, deadline,
                        [&entry] { return !non_terminal(entry.state); });
  } else if (block) {
    entry.cv.wait(lock, [&entry] { return !non_terminal(entry.state); });
  }
  if (entry.state == JobState::kQueued) {
    throw SimError(kErrJobPending, "job " + std::to_string(id) +
                                       " is still queued; poll or wait");
  } else if (entry.state == JobState::kRunning) {
    throw SimError(kErrJobRunning, "job " + std::to_string(id) +
                                       " is still running; poll or wait");
  }
  if (entry.state == JobState::kCancelled) {
    return result_response(id, entry.state, false, false, "", "");
  }
  return result_response(id, entry.state, entry.cache_hit,
                         entry.result.ok(), sim::sweep_csv_row(entry.result),
                         sim::stats_json_run(entry.result));
}

std::string Server::handle_cancel(const trace::JsonValue& doc) {
  MLP_SIM_CHECK(doc.find("id") != nullptr, kErrBadRequest,
                "cancel lacks \"id\"");
  const u64 id = doc.u64_at("id");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    MLP_SIM_CHECK(it != jobs_.end(), kErrNoSuchJob,
                  "no job " + std::to_string(id));
    JobEntry& entry = it->second;
    switch (entry.state) {
      case JobState::kRunning:
        throw SimError(kErrJobRunning,
                       "job " + std::to_string(id) +
                           " already started; simulations are not preempted");
      case JobState::kDone:
        throw SimError(kErrJobDone,
                       "job " + std::to_string(id) + " already finished");
      case JobState::kCancelled:
        break;  // idempotent
      case JobState::kQueued:
        entry.state = JobState::kCancelled;
        entry.wake = true;
        --active_;
        break;
    }
    entry.cv.notify_all();
  }
  return job_status_response(id, JobState::kCancelled);
}

std::string Server::handle_snapshot(const trace::JsonValue& doc) {
  require_protocol_version(doc, "snapshot");
  u64 cycle = 0;
  JobSpec spec = snapshot_verb_spec(doc, &cycle);
  if (stop_.load()) {
    return error_response(kErrShuttingDown, "server is draining");
  }
  const std::string key = snapshot_cache_key(spec.job, cycle);

  // Synchronous on the connection thread: the run both produces its normal
  // result AND parks the quiesce-drained state in the snapshot cache.
  sim::SnapshotPlan plan;
  plan.capture = true;
  plan.checkpoint_at = cycle;
  const sim::MatrixResult result =
      sim::run_job(spec.job, &cache_, nullptr, &plan);
  u64 blob_bytes = 0;
  const bool captured = result.ok() && plan.captured_ok;
  if (captured) {
    blob_bytes = plan.captured.size();
    snapshots_.put(key, std::move(plan.captured), plan.captured_cycle);
  }
  return snapshot_response(key, captured ? plan.captured_cycle : 0,
                           blob_bytes, captured, result.ok(),
                           sim::sweep_csv_row(result),
                           sim::stats_json_run(result));
}

std::string Server::handle_restore(const trace::JsonValue& doc) {
  require_protocol_version(doc, "restore");
  u64 cycle = 0;
  JobSpec spec = snapshot_verb_spec(doc, &cycle);
  if (stop_.load()) {
    return error_response(kErrShuttingDown, "server is draining");
  }
  const std::string key = snapshot_cache_key(spec.job, cycle);
  const sim::SnapshotCache::EntryPtr entry = snapshots_.get(key);
  if (entry == nullptr) {
    throw SimError(kErrNoSuchSnapshot,
                   "no cached snapshot for \"" + key +
                       "\"; capture one with the snapshot verb first");
  }
  sim::SnapshotPlan plan;
  plan.restore_from = &entry->blob;
  const sim::MatrixResult result =
      sim::run_job(spec.job, &cache_, nullptr, &plan);
  return restored_response(key, entry->captured_cycle, result.ok(),
                           sim::sweep_csv_row(result),
                           sim::stats_json_run(result));
}

void Server::execute(u64 id) {
  sim::MatrixJob job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    JobEntry& entry = it->second;
    if (entry.spec.hold_ms > 0) {
      // Artificial queue dwell: the job HOLDS ITS WORKER but stays in
      // kQueued (cancellable) until the hold elapses or drain/cancel wakes
      // it. Deliberate — tests pin a worker with a held job to exercise
      // queue-full backpressure and cancel deterministically.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(entry.spec.hold_ms);
      entry.cv.wait_until(lock, deadline,
                          [&entry] { return entry.wake; });
    }
    if (entry.state != JobState::kQueued) return;  // cancelled while held
    entry.state = JobState::kRunning;
    job = entry.spec.job;
  }
  if (cfg_.job_timeout_ms != 0) {
    // The server's wall-clock budget caps whatever the job asked for; a
    // client cannot opt out of the operator's hang backstop.
    u64& wall = job.options.cfg.watchdog.wall_ms;
    if (wall == 0 || wall > cfg_.job_timeout_ms) wall = cfg_.job_timeout_ms;
  }

  bool cache_hit = false;
  sim::MatrixResult result = sim::run_job(job, &cache_, &cache_hit);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      JobEntry& entry = it->second;
      entry.result = std::move(result);
      entry.cache_hit = cache_hit;
      entry.state = JobState::kDone;
      --active_;
      entry.cv.notify_all();
    }
  }
}

}  // namespace mlp::serve
