#pragma once
// Client side of the mlpserved protocol: a blocking connection wrapper plus
// typed helpers for each request, and run_matrix_remote — the drop-in
// counterpart of sim::run_matrix that ships a job list to a daemon with
// sliding-window submission (respecting the server's queue-full
// backpressure) and returns per-job results in submission order.

#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace mlp::serve {

/// Per-connection policy knobs. The defaults preserve the original
/// behaviour (block until connect/response) except that TCP connects get a
/// sane handshake bound instead of the kernel's minutes-long SYN retry.
struct ClientOptions {
  /// TCP handshake deadline in ms; <= 0 blocks (AF_UNIX connects resolve
  /// synchronously either way).
  i64 connect_timeout_ms = 5000;
  /// Whole-roundtrip deadline in ms (request write + response read); <= 0
  /// disables it. A trip throws SimError("timeout", ...) and POISONS the
  /// connection (the half-exchange on the wire is undecodable), so the
  /// client closes it — callers treat this exactly like a dead peer.
  i64 request_timeout_ms = 0;
  /// Outgoing-frame chaos; defaults to the MLP_CHAOS environment variable
  /// so any tool can be chaos-tested without new plumbing.
  ChaosConfig chaos = chaos_from_env();
};

/// One connection to a daemon. Requests are strictly sequential
/// (request/response lock-step); open several Clients for concurrency.
class Client {
 public:
  Client() = default;
  explicit Client(const ClientOptions& options) : options_(options) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon address — an AF_UNIX path or "HOST:PORT" for TCP
  /// (see serve/transport.hpp for the grammar). Throws SimError("serve",
  /// ...) when the daemon is absent, refuses, or the address is invalid,
  /// SimError("timeout", ...) when the handshake deadline expires.
  void connect(const std::string& address);
  bool connected() const { return fd_ >= 0; }
  void close();

  const ClientOptions& options() const { return options_; }
  void set_options(const ClientOptions& options) { options_ = options; }

  /// One request/response round trip; throws SimError("serve", ...) if the
  /// connection drops mid-exchange, SimError("timeout", ...) if the
  /// request deadline expires first (the connection is closed either way).
  Response roundtrip(const std::string& request);

  // Typed helpers (thin wrappers over roundtrip).
  Response ping();
  Response submit(const JobSpec& spec);
  Response server_status();
  Response job_status(u64 id);
  Response result(u64 id, bool wait);
  /// Bounded result wait: the server answers within ~wait_ms with either
  /// the result or a typed job-running/job-pending heartbeat.
  Response result(u64 id, bool wait, u64 wait_ms);
  Response cancel(u64 id);
  Response shutdown();
  /// Protocol v2: capture the job's quiesce-drained state at the first
  /// quiescent cycle >= `cycle` into the daemon's snapshot cache / finish
  /// the job from that cached snapshot (typed no-such-snapshot on a miss).
  Response snapshot(const JobSpec& spec, u64 cycle);
  Response restore(const JobSpec& spec, u64 cycle);

 private:
  int fd_ = -1;
  ClientOptions options_;
  /// Armed at connect when options_.chaos is enabled; one decision stream
  /// per connection, decorrelated by a global connection ordinal.
  std::optional<ChaosInjector> chaos_;
};

/// One remote job's outcome, in submission order.
struct RemoteResult {
  bool ok = false;        ///< the protocol exchange succeeded
  bool run_ok = false;    ///< the simulation itself completed and verified
  bool cache_hit = false;
  std::string csv;             ///< sim::sweep_csv_row line (server-rendered)
  std::string stats_run_json;  ///< sim::stats_json_run object
  std::string error;           ///< typed kind when the SUBMISSION failed
  std::string message;
};

/// Decode an ok result response into a RemoteResult (shared by the
/// single-connection and sharded sweep paths).
void decode_result_response(const Response& r, RemoteResult* out);

/// Submit `jobs` through one connection with at most `window` outstanding at
/// a time; a queue-full rejection retries after draining one in-flight
/// result, so the caller never has to tune the window to the daemon's
/// admission bound. `window` 0 sizes to the daemon's queue_limit.
std::vector<RemoteResult> run_matrix_remote(Client& client,
                                            const std::vector<sim::MatrixJob>& jobs,
                                            u64 window = 0);

}  // namespace mlp::serve
