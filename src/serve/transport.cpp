#include "serve/transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace mlp::serve {

namespace {

[[noreturn]] void serve_error(const std::string& what, const Endpoint& ep,
                              const std::string& reason) {
  throw SimError("serve", what + "(" + endpoint_name(ep) + "): " + reason);
}

/// Resolve host:port to AF_INET addresses (numeric fast path via
/// AI_NUMERICHOST falls out of getaddrinfo automatically).
addrinfo* resolve(const Endpoint& ep, bool listening) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  if (listening) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &result);
  if (rc != 0) serve_error("resolve", ep, ::gai_strerror(rc));
  return result;
}

void fill_unix_addr(const Endpoint& ep, sockaddr_un* addr) {
  addr->sun_family = AF_UNIX;
  MLP_SIM_CHECK(ep.path.size() < sizeof(addr->sun_path), "serve",
                "socket path too long for AF_UNIX: " + ep.path);
  std::strncpy(addr->sun_path, ep.path.c_str(), sizeof(addr->sun_path) - 1);
}

/// Non-blocking connect bounded by `timeout_ms`: start the handshake with
/// O_NONBLOCK, poll for writability, then read SO_ERROR for the verdict.
/// Returns 0 on success, a positive errno on failure, -1 on timeout. The fd
/// is restored to blocking mode on success.
int connect_with_deadline(int fd, const sockaddr* addr, socklen_t len,
                          i64 timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS) return errno;
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return errno;
      if (ready == 0) return -1;  // handshake deadline
      break;
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len);
    if (soerr != 0) return soerr;
  }
  ::fcntl(fd, F_SETFL, flags);
  return 0;
}

/// One "key=value" chaos assignment into the config; throws on unknowns.
void apply_chaos_kv(const std::string& item, ChaosConfig* cfg) {
  const std::size_t eq = item.find('=');
  MLP_SIM_CHECK(eq != std::string::npos, "serve",
                "chaos spec item \"" + item + "\" is not key=value");
  const std::string key = item.substr(0, eq);
  const std::string value = item.substr(eq + 1);
  const auto rate = [&] {
    char* end = nullptr;
    const double r = std::strtod(value.c_str(), &end);
    MLP_SIM_CHECK(end != value.c_str() && *end == '\0' && r >= 0.0 &&
                      r <= 1.0,
                  "serve",
                  "chaos rate \"" + key + "\" must be in [0, 1], got: " +
                      value);
    return r;
  };
  const auto integer = [&] {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    MLP_SIM_CHECK(end != value.c_str() && *end == '\0', "serve",
                  "chaos \"" + key + "\" must be an integer, got: " + value);
    return static_cast<u64>(n);
  };
  if (key == "drop") {
    cfg->drop_rate = rate();
  } else if (key == "delay") {
    cfg->delay_rate = rate();
  } else if (key == "truncate") {
    cfg->truncate_rate = rate();
  } else if (key == "close") {
    cfg->close_rate = rate();
  } else if (key == "delay-ms") {
    cfg->delay_ms = integer();
  } else if (key == "seed") {
    cfg->seed = integer();
  } else {
    throw SimError("serve", "unknown chaos key \"" + key +
                                "\" (drop, delay, truncate, close, "
                                "delay-ms, seed)");
  }
}

}  // namespace

Endpoint parse_endpoint(const std::string& address) {
  Endpoint ep;
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos && colon > 0 &&
      address.find('/') == std::string::npos) {
    const std::string port_text = address.substr(colon + 1);
    bool numeric = !port_text.empty();
    for (const char c : port_text) numeric = numeric && c >= '0' && c <= '9';
    if (numeric) {
      const unsigned long port = std::strtoul(port_text.c_str(), nullptr, 10);
      MLP_SIM_CHECK(port <= 65535, "serve",
                    "TCP port out of range in address: " + address);
      ep.kind = Endpoint::Kind::kTcp;
      ep.host = address.substr(0, colon);
      ep.port = static_cast<u16>(port);
      return ep;
    }
  }
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = address;
  return ep;
}

std::string endpoint_name(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) return endpoint.path;
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

int listen_endpoint(const Endpoint& endpoint, u16* bound_port) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    fill_unix_addr(endpoint, &addr);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) serve_error("socket", endpoint, std::strerror(errno));
    // A stale socket file from a crashed daemon would make bind fail; remove
    // it (a LIVE daemon on the path would still conflict at connect time).
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      serve_error("bind", endpoint, reason);
    }
    // SOMAXCONN backlog: a load spike of N simultaneous connects must queue,
    // not overflow — an overflowed accept queue surfaces to the peer as a
    // reset mid-exchange, which no client retry policy can distinguish from
    // a genuine crash.
    if (::listen(fd, SOMAXCONN) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      serve_error("listen", endpoint, reason);
    }
    if (bound_port != nullptr) *bound_port = 0;
    return fd;
  }

  addrinfo* addrs = resolve(endpoint, /*listening=*/true);
  int fd = -1;
  std::string reason = "no usable address";
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      reason = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0) {
      break;
    }
    reason = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) serve_error("bind", endpoint, reason);
  if (bound_port != nullptr) {
    sockaddr_in local{};
    socklen_t len = sizeof(local);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &len) == 0) {
      *bound_port = ntohs(local.sin_port);
    }
  }
  return fd;
}

int connect_endpoint(const Endpoint& endpoint, i64 timeout_ms) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    // AF_UNIX connect resolves synchronously in the kernel (refused or
    // accepted into the backlog immediately), so no deadline machinery.
    sockaddr_un addr{};
    fill_unix_addr(endpoint, &addr);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) serve_error("socket", endpoint, std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      serve_error("connect", endpoint,
                  reason + " (is mlpserved running?)");
    }
    return fd;
  }

  addrinfo* addrs = resolve(endpoint, /*listening=*/false);
  int fd = -1;
  bool timed_out = false;
  std::string reason = "no usable address";
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      reason = std::strerror(errno);
      continue;
    }
    if (timeout_ms > 0) {
      const int rc =
          connect_with_deadline(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms);
      if (rc == 0) break;
      timed_out = rc < 0;
      reason = rc < 0 ? "handshake timed out after " +
                            std::to_string(timeout_ms) + " ms"
                      : std::strerror(rc);
    } else {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      reason = std::strerror(errno);
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    if (timed_out) {
      throw SimError("timeout", "connect(" + endpoint_name(endpoint) + "): " +
                                    reason);
    }
    serve_error("connect", endpoint, reason + " (is mlpserved running?)");
  }
  set_tcp_nodelay(fd);
  return fd;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ChaosConfig parse_chaos(const std::string& spec) {
  ChaosConfig cfg;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) apply_chaos_kv(spec.substr(start, end - start), &cfg);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return cfg;
}

ChaosConfig chaos_from_env() {
  const char* spec = std::getenv("MLP_CHAOS");
  if (spec == nullptr || *spec == '\0') return ChaosConfig{};
  return parse_chaos(spec);
}

const char* chaos_action_name(ChaosInjector::Action action) {
  switch (action) {
    case ChaosInjector::Action::kNone:
      return "none";
    case ChaosInjector::Action::kDrop:
      return "drop";
    case ChaosInjector::Action::kDelay:
      return "delay";
    case ChaosInjector::Action::kTruncate:
      return "truncate";
    case ChaosInjector::Action::kClose:
      return "close";
  }
  return "unknown";
}

}  // namespace mlp::serve
