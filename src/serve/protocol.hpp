#pragma once
// Wire protocol of the mlpserved simulation service: length-prefixed JSON
// over a Unix-domain stream socket. One frame = one u32 little-endian
// payload length followed by exactly that many bytes of UTF-8 JSON (always
// a single object). Requests carry a "type" discriminator; every response
// carries "ok" plus "type", and failures are TYPED — "error" is a stable
// machine-readable kind (queue-full, bad-request, no-such-job, ...) with a
// human "message" beside it, so clients can implement backpressure without
// string-matching prose. The JSON itself reuses the exact-u64 writer/parser
// from src/trace.
//
// Request vocabulary:
//   {"type":"ping"}                      -> pong (version + schema handshake)
//   {"type":"submit","job":{...}}        -> submitted {id} | error queue-full
//   {"type":"status"}                    -> server status incl. cache counters
//   {"type":"status","id":N}             -> job-status {state}
//   {"type":"result","id":N,"wait":b}    -> result {state,cache_hit,csv,stats}
//   {"type":"cancel","id":N}             -> cancelled | error job-running/...
//   {"type":"shutdown"}                  -> shutting-down (drain + exit)
//   {"type":"snapshot","protocol_version":2,"cycle":N,"job":{...}}
//                                        -> snapshot {key,cycle,...} — run the
//                                           job, capture at the first
//                                           quiescent cycle >= N, cache the
//                                           blob server-side
//   {"type":"restore","protocol_version":2,"cycle":N,"job":{...}}
//                                        -> restored {csv,stats} | error
//                                           no-such-snapshot
//
// The snapshot verbs joined in protocol version 2 and REQUIRE the client to
// declare it ("protocol_version":2 in the request): an old client replaying
// captured frames gets a typed version-mismatch, never a silent misparse.
// Snapshot blobs never cross the wire — they live in the daemon's LRU cache
// keyed (prepare key, architecture, requested cycle).
//
// The result's "stats" member is the run's stats-JSON object shipped as an
// escaped string, byte-for-byte what a local sim::stats_json_run() emits, so
// client-side document reassembly is bit-identical to a local run.

#include <optional>
#include <string>

#include "sim/prepare.hpp"
#include "sim/runner.hpp"
#include "trace/json.hpp"

namespace mlp::serve {

/// Protocol revision; bumped on breaking wire changes. Reported by pong.
/// History: 1 initial vocabulary; 2 snapshot/restore verbs (which demand the
/// client declare this version) and zero-length frames became typed
/// bad-request rejections.
inline constexpr u32 kProtocolVersion = 2;

/// A frame larger than this is a protocol violation (a desynced or hostile
/// peer), not a legitimate request.
inline constexpr u32 kMaxFrameBytes = 64u << 20;

// Stable error kinds (the "error" member of a failed response).
inline constexpr char kErrQueueFull[] = "queue-full";
inline constexpr char kErrBadRequest[] = "bad-request";
inline constexpr char kErrNoSuchJob[] = "no-such-job";
inline constexpr char kErrJobRunning[] = "job-running";
inline constexpr char kErrJobPending[] = "job-pending";
inline constexpr char kErrJobDone[] = "job-done";
inline constexpr char kErrShuttingDown[] = "shutting-down";
/// A version-gated request (snapshot/restore) without the right
/// "protocol_version" declaration — the typed rejection old clients see.
inline constexpr char kErrVersionMismatch[] = "version-mismatch";
/// Restore for a (prepare key, arch, cycle) the daemon has not captured (or
/// has LRU-evicted).
inline constexpr char kErrNoSuchSnapshot[] = "no-such-snapshot";
/// CLIENT-side kind for a deadline expiring mid-exchange (connect handshake,
/// request write, response read). Never sent by the server: a peer that hit
/// this has an undecodable half-exchange on the wire and must drop the
/// connection.
inline constexpr char kErrTimeout[] = "timeout";

/// Lifecycle of a submitted job. Held (hold_ms) jobs count as queued — the
/// hold models queue dwell and stays cancellable.
enum class JobState : u8 { kQueued, kRunning, kDone, kCancelled };

const char* job_state_name(JobState state);

/// One submitted job plus its service-level options.
struct JobSpec {
  sim::MatrixJob job;
  /// Artificial queue dwell in milliseconds before execution starts; the
  /// job stays in kQueued (and cancellable) while held. Used by tests and
  /// load experiments to make admission behaviour deterministic; cut short
  /// by shutdown drain.
  u64 hold_ms = 0;
};

// ---- framing ----

/// Write one frame; false on a broken/closed peer (EPIPE, short write).
bool write_frame(int fd, const std::string& payload);

/// Read one frame; std::nullopt on clean EOF before a length byte. Throws
/// SimError("protocol", ...) on oversized/truncated frames.
std::optional<std::string> read_frame(int fd);

/// Deadline variants: poll the (blocking) fd before every read/write with
/// the time remaining, so the existing EINTR/EAGAIN retry loops stay
/// correct, and throw SimError("timeout", ...) when `timeout_ms` elapses
/// before the frame completes. The deadline covers the WHOLE frame, not
/// each syscall — a peer trickling one byte per poll cannot stretch it.
/// `timeout_ms` <= 0 delegates to the untimed variants.
bool write_frame(int fd, const std::string& payload, i64 timeout_ms);
std::optional<std::string> read_frame(int fd, i64 timeout_ms);

// ---- job spec (de)serialization ----

/// The job object of a submit request. Omitted fields take the same
/// defaults as the command-line tools.
std::string job_json(const JobSpec& spec);

/// Strict parse: unknown members, wrong types, or unknown arch/bench
/// spellings throw SimError(kErrBadRequest, ...).
JobSpec job_from_json(const trace::JsonValue& doc);

// ---- request builders (client side) ----

std::string ping_request();
std::string submit_request(const JobSpec& spec);
std::string status_request();
std::string job_status_request(u64 id);
std::string result_request(u64 id, bool wait);
/// Bounded wait: "wait_ms" asks the server to park at most that long and
/// answer with a typed job-running/job-pending HEARTBEAT if the job is
/// still in flight — the client's liveness probe for long jobs (a silent
/// node within the request deadline = dead; a heartbeat = alive, keep
/// waiting). wait_ms 0 emits the classic unbounded-wait request.
std::string result_request(u64 id, bool wait, u64 wait_ms);
std::string cancel_request(u64 id);
std::string shutdown_request();
/// Snapshot verbs (protocol version 2): capture the job's state at the
/// first quiescent cycle >= `cycle` into the daemon's snapshot cache /
/// finish the job from that cached snapshot. Both requests carry the
/// protocol_version declaration the server demands.
std::string snapshot_request(const JobSpec& spec, u64 cycle);
std::string restore_request(const JobSpec& spec, u64 cycle);

// ---- response builders (server side) ----

/// Server-level status snapshot shipped by the status response.
struct ServerStatus {
  u64 queued = 0;
  u64 running = 0;
  u64 done = 0;
  u64 cancelled = 0;
  u32 threads = 0;
  u64 queue_limit = 0;
  bool accepting = true;
  sim::PrepareCacheStats cache;
  /// Snapshot-blob cache counters (protocol v2 snapshot/restore verbs).
  u64 snapshot_hits = 0;
  u64 snapshot_misses = 0;
  u64 snapshot_evictions = 0;
  u64 snapshot_entries = 0;
  u64 snapshot_blob_bytes = 0;
};

std::string pong_response();
std::string submitted_response(u64 id);
std::string status_response(const ServerStatus& status);
std::string job_status_response(u64 id, JobState state);
/// `run_ok` distinguishes a job that executed but FAILED (bad config,
/// watchdog trip, verification mismatch — a per-job error, not a protocol
/// error) from a verified run. `stats_run_json` is the sim::stats_json_run
/// object (may be empty for cancelled jobs); `csv` is the
/// sim::sweep_csv_row line.
std::string result_response(u64 id, JobState state, bool cache_hit,
                            bool run_ok, const std::string& csv,
                            const std::string& stats_run_json);
std::string shutting_down_response();
/// Snapshot capture outcome: `captured` false means the run completed
/// before any quiescent cycle >= the request's (graceful miss, nothing
/// cached). `csv`/`stats_run_json` report the capturing run itself, which
/// finishes normally either way.
std::string snapshot_response(const std::string& key, u64 captured_cycle,
                              u64 blob_bytes, bool captured, bool run_ok,
                              const std::string& csv,
                              const std::string& stats_run_json);
/// Restore-and-finish outcome; same result payload shape as
/// result_response so clients reuse the decoding path.
std::string restored_response(const std::string& key, u64 captured_cycle,
                              bool run_ok, const std::string& csv,
                              const std::string& stats_run_json);
std::string error_response(const std::string& kind,
                           const std::string& message);

// ---- response decoding (client side) ----

/// A parsed response envelope. For ok responses `doc` carries the full
/// object; for failures `error` is the typed kind.
struct Response {
  bool ok = false;
  std::string type;
  std::string error;    ///< typed kind; empty iff ok
  std::string message;  ///< human diagnostic; empty iff ok
  std::string raw;      ///< the response frame verbatim (for --raw output)
  trace::JsonValue doc;
};

/// Parse a response frame; throws SimError("protocol", ...) if the payload
/// is not a response-shaped object.
Response parse_response(const std::string& payload);

}  // namespace mlp::serve
