#include "serve/protocol.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/error.hpp"
#include "mem/addrmap.hpp"
#include "sim/report.hpp"

namespace mlp::serve {

namespace {

/// Read exactly `len` bytes; false on clean EOF at offset 0, throws on EOF
/// mid-buffer (a truncated frame is a protocol violation, not a shutdown).
bool read_exact(int fd, char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (n == 0 && done == 0) return false;  // clean EOF between frames
    MLP_SIM_CHECK(false, "protocol",
                  "connection closed mid-frame (" + std::to_string(done) +
                      "/" + std::to_string(len) + " bytes)");
  }
  return true;
}

bool write_exact(int fd, const char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return false;  // EPIPE / closed peer: caller drops the connection
  }
  return true;
}

[[noreturn]] void bad_request(const std::string& message) {
  throw SimError(kErrBadRequest, message);
}

// ---- deadline-bounded I/O --------------------------------------------------
// The fds stay BLOCKING; each read/write is gated by a poll() with the time
// remaining until the frame's deadline, so the EINTR/EAGAIN semantics of
// the untimed helpers carry over unchanged and a timeout is always a typed
// SimError("timeout", ...), never a silent partial frame.

i64 steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void poll_until(int fd, short events, i64 deadline_ms) {
  for (;;) {
    const i64 remaining = deadline_ms - steady_now_ms();
    MLP_SIM_CHECK(remaining > 0, kErrTimeout,
                  "no peer activity before the request deadline");
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>(std::min<i64>(remaining, 60'000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      MLP_SIM_CHECK(false, "protocol",
                    std::string("poll: ") + std::strerror(errno));
    }
    if (ready > 0) return;  // readable/writable (or error/hup: let I/O see it)
  }
}

bool read_exact_deadline(int fd, char* buf, std::size_t len,
                         i64 deadline_ms) {
  std::size_t done = 0;
  while (done < len) {
    poll_until(fd, POLLIN, deadline_ms);
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (n == 0 && done == 0) return false;  // clean EOF between frames
    MLP_SIM_CHECK(false, "protocol",
                  "connection closed mid-frame (" + std::to_string(done) +
                      "/" + std::to_string(len) + " bytes)");
  }
  return true;
}

bool write_exact_deadline(int fd, const char* buf, std::size_t len,
                          i64 deadline_ms) {
  std::size_t done = 0;
  while (done < len) {
    poll_until(fd, POLLOUT, deadline_ms);
    const ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return false;  // EPIPE / closed peer: caller drops the connection
  }
  return true;
}

// ---- strict typed member extraction ----------------------------------------
// Every accessor checks presence AND type so a malformed submit is rejected
// with a message naming the offending member instead of silently defaulting.

u64 member_u64(const trace::JsonValue& obj, const std::string& name, u64 def) {
  const trace::JsonValue* v = obj.find(name);
  if (v == nullptr) return def;
  if (v->type != trace::JsonValue::Type::kNumber || !v->is_integer ||
      v->number < 0) {
    bad_request("\"" + name + "\" must be a non-negative integer");
  }
  return v->unsigned_integer;
}

double member_double(const trace::JsonValue& obj, const std::string& name,
                     double def) {
  const trace::JsonValue* v = obj.find(name);
  if (v == nullptr) return def;
  if (v->type != trace::JsonValue::Type::kNumber) {
    bad_request("\"" + name + "\" must be a number");
  }
  return v->number;
}

bool member_bool(const trace::JsonValue& obj, const std::string& name,
                 bool def) {
  const trace::JsonValue* v = obj.find(name);
  if (v == nullptr) return def;
  if (v->type != trace::JsonValue::Type::kBool) {
    bad_request("\"" + name + "\" must be a boolean");
  }
  return v->boolean;
}

std::string member_string(const trace::JsonValue& obj, const std::string& name,
                          const std::string& def) {
  const trace::JsonValue* v = obj.find(name);
  if (v == nullptr) return def;
  if (v->type != trace::JsonValue::Type::kString) {
    bad_request("\"" + name + "\" must be a string");
  }
  return v->string;
}

/// Wrap an envelope: every response is {"ok":..,"type":..,...}.
trace::JsonWriter response_head(bool ok, const char* type) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("ok");
  w.value(ok);
  w.key("type");
  w.value(type);
  return w;
}

std::string id_request(const char* type, u64 id) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("type");
  w.value(type);
  w.key("id");
  w.value(id);
  w.end_object();
  return w.take();
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

// ---- framing ---------------------------------------------------------------

bool write_frame(int fd, const std::string& payload) {
  MLP_SIM_CHECK(payload.size() <= kMaxFrameBytes, "protocol",
                "outgoing frame exceeds " + std::to_string(kMaxFrameBytes) +
                    " bytes");
  const u32 len = static_cast<u32>(payload.size());
  char header[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  if (!write_exact(fd, header, sizeof(header))) return false;
  return write_exact(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  char header[4];
  if (!read_exact(fd, header, sizeof(header))) return std::nullopt;
  const u32 len = static_cast<u32>(static_cast<unsigned char>(header[0])) |
                  static_cast<u32>(static_cast<unsigned char>(header[1])) << 8 |
                  static_cast<u32>(static_cast<unsigned char>(header[2]))
                      << 16 |
                  static_cast<u32>(static_cast<unsigned char>(header[3]))
                      << 24;
  MLP_SIM_CHECK(len <= kMaxFrameBytes, "protocol",
                "frame length " + std::to_string(len) + " exceeds limit (" +
                    std::to_string(kMaxFrameBytes) + ")");
  // A zero-length frame can never hold the JSON object every request and
  // response is; it is a desynced or broken peer, rejected with the typed
  // kind instead of surfacing downstream as a confusing parse error.
  MLP_SIM_CHECK(len > 0, kErrBadRequest, "zero-length frame");
  std::string payload(len, '\0');
  if (!read_exact(fd, payload.data(), len)) {
    MLP_SIM_CHECK(false, "protocol", "connection closed before frame payload");
  }
  return payload;
}

bool write_frame(int fd, const std::string& payload, i64 timeout_ms) {
  if (timeout_ms <= 0) return write_frame(fd, payload);
  MLP_SIM_CHECK(payload.size() <= kMaxFrameBytes, "protocol",
                "outgoing frame exceeds " + std::to_string(kMaxFrameBytes) +
                    " bytes");
  const i64 deadline = steady_now_ms() + timeout_ms;
  const u32 len = static_cast<u32>(payload.size());
  char header[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  if (!write_exact_deadline(fd, header, sizeof(header), deadline)) {
    return false;
  }
  return write_exact_deadline(fd, payload.data(), payload.size(), deadline);
}

std::optional<std::string> read_frame(int fd, i64 timeout_ms) {
  if (timeout_ms <= 0) return read_frame(fd);
  const i64 deadline = steady_now_ms() + timeout_ms;
  char header[4];
  if (!read_exact_deadline(fd, header, sizeof(header), deadline)) {
    return std::nullopt;
  }
  const u32 len = static_cast<u32>(static_cast<unsigned char>(header[0])) |
                  static_cast<u32>(static_cast<unsigned char>(header[1])) << 8 |
                  static_cast<u32>(static_cast<unsigned char>(header[2]))
                      << 16 |
                  static_cast<u32>(static_cast<unsigned char>(header[3]))
                      << 24;
  MLP_SIM_CHECK(len <= kMaxFrameBytes, "protocol",
                "frame length " + std::to_string(len) + " exceeds limit (" +
                    std::to_string(kMaxFrameBytes) + ")");
  MLP_SIM_CHECK(len > 0, kErrBadRequest, "zero-length frame");
  std::string payload(len, '\0');
  if (!read_exact_deadline(fd, payload.data(), len, deadline)) {
    MLP_SIM_CHECK(false, "protocol", "connection closed before frame payload");
  }
  return payload;
}

// ---- job spec (de)serialization --------------------------------------------

std::string job_json(const JobSpec& spec) {
  const sim::SuiteOptions& o = spec.job.options;
  trace::JsonWriter w;
  w.begin_object();
  w.key("arch");
  w.value(arch::arch_name(spec.job.kind));
  w.key("bench");
  w.value(spec.job.bench);
  w.key("tag");
  w.value(spec.job.tag);
  w.key("records");
  w.value(o.records);
  w.key("rows");
  w.value(o.rows);
  w.key("seed");
  w.value(o.seed);
  w.key("record_barrier");
  w.value(o.record_barrier);
  w.key("cores");
  w.value(o.cfg.core.cores);
  w.key("pf_entries");
  w.value(o.cfg.millipede.pf_entries);
  w.key("bus_efficiency");
  w.value(o.cfg.dram.bus_efficiency);
  w.key("channels");
  w.value(o.cfg.dram.channels);
  w.key("ranks");
  w.value(o.cfg.dram.ranks);
  w.key("mapping");
  w.value(o.cfg.dram.mapping);
  w.key("page_policy");
  w.value(o.cfg.dram.page_policy);
  w.key("refresh");
  w.value(o.cfg.dram.refresh);
  w.key("slab_layout");
  w.value(o.cfg.slab_layout);
  w.key("fault_rate");
  w.value(o.cfg.dram.fault.bit_flip_rate);
  w.key("fault_delay");
  w.value(o.cfg.dram.fault.delay_rate);
  w.key("fault_drop");
  w.value(o.cfg.dram.fault.drop_rate);
  w.key("fault_seed");
  w.value(o.cfg.dram.fault.seed);
  w.key("ecc");
  w.value(o.cfg.dram.fault.ecc);
  w.key("watchdog_cycles");
  w.value(o.cfg.watchdog.max_cycles);
  w.key("watchdog_stall");
  w.value(o.cfg.watchdog.stall_cycles);
  w.key("watchdog_wall");
  w.value(o.cfg.watchdog.wall_ms);
  w.key("fast_forward");
  w.value(o.cfg.fast_forward);
  w.key("block_cache");
  w.value(o.cfg.block_cache);
  w.key("trace");
  w.value(o.trace.chrome_json);
  w.key("trace_dir");
  w.value(o.trace.dir);
  w.key("trace_ring");
  w.value(o.trace.ring_entries);
  w.key("trace_interval");
  w.value(o.trace.interval_cycles);
  w.key("hold_ms");
  w.value(spec.hold_ms);
  w.end_object();
  return w.take();
}

JobSpec job_from_json(const trace::JsonValue& doc) {
  if (!doc.is_object()) bad_request("job must be a JSON object");
  static const char* const kKnown[] = {
      "arch",        "bench",          "tag",            "records",
      "rows",        "seed",           "record_barrier", "cores",
      "pf_entries",  "bus_efficiency", "slab_layout",    "fault_rate",
      "channels",    "ranks",          "mapping",        "page_policy",
      "refresh",
      "fault_delay", "fault_drop",     "fault_seed",     "ecc",
      "watchdog_cycles", "watchdog_stall", "watchdog_wall", "fast_forward",
      "block_cache",
      "trace",       "trace_dir",      "trace_ring",     "trace_interval",
      "hold_ms",
  };
  for (const auto& [name, value] : doc.object) {
    bool known = false;
    for (const char* k : kKnown) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known) bad_request("unknown job member \"" + name + "\"");
  }

  JobSpec spec;
  sim::MatrixJob& job = spec.job;
  sim::SuiteOptions& o = job.options;

  const std::string arch_name = member_string(doc, "arch", "millipede");
  if (!arch::arch_from_name(arch_name, &job.kind)) {
    bad_request("unknown architecture \"" + arch_name + "\"");
  }
  job.bench = member_string(doc, "bench", "");
  if (job.bench.empty()) bad_request("\"bench\" is required");
  job.tag = member_string(doc, "tag", "");

  o.records = member_u64(doc, "records", 0);
  o.rows = member_u64(doc, "rows", sim::kDefaultRows);
  if (o.rows == 0) bad_request("\"rows\" must be positive");
  o.seed = member_u64(doc, "seed", 1);
  o.record_barrier = member_bool(doc, "record_barrier", false);

  const u64 cores = member_u64(doc, "cores", o.cfg.core.cores);
  if (cores == 0 || cores > 0xffffffffull) {
    bad_request("\"cores\" must be a positive 32-bit integer");
  }
  o.cfg.core.cores = static_cast<u32>(cores);
  // Match mlpsweep's convention: one --cores axis sizes the GPGPU warp too,
  // keeping cross-architecture resources identical by construction.
  o.cfg.gpgpu.warp_width = static_cast<u32>(cores);
  const u64 pf = member_u64(doc, "pf_entries", o.cfg.millipede.pf_entries);
  if (pf == 0 || pf > 0xffffffffull) {
    bad_request("\"pf_entries\" must be a positive 32-bit integer");
  }
  o.cfg.millipede.pf_entries = static_cast<u32>(pf);
  o.cfg.dram.bus_efficiency =
      member_double(doc, "bus_efficiency", o.cfg.dram.bus_efficiency);
  if (!(o.cfg.dram.bus_efficiency > 0.0)) {
    bad_request("\"bus_efficiency\" must be positive");
  }
  o.cfg.slab_layout = member_bool(doc, "slab_layout", false);

  const u64 channels = member_u64(doc, "channels", o.cfg.dram.channels);
  if (channels == 0 || channels > 0xffffffffull) {
    bad_request("\"channels\" must be a positive 32-bit integer");
  }
  o.cfg.dram.channels = static_cast<u32>(channels);
  const u64 ranks = member_u64(doc, "ranks", o.cfg.dram.ranks);
  if (ranks == 0 || ranks > 0xffffffffull) {
    bad_request("\"ranks\" must be a positive 32-bit integer");
  }
  o.cfg.dram.ranks = static_cast<u32>(ranks);
  o.cfg.dram.mapping = member_string(doc, "mapping", o.cfg.dram.mapping);
  o.cfg.dram.page_policy =
      member_string(doc, "page_policy", o.cfg.dram.page_policy);
  o.cfg.dram.refresh = member_string(doc, "refresh", o.cfg.dram.refresh);
  // Spec-string grammar errors surface here as kErrBadRequest rather than
  // per-job failures (geometry-dependent checks stay per-job: the worker
  // validates the full config when it builds the machine).
  try {
    mem::AddressMap::check_grammar(o.cfg.dram.mapping);
    (void)parse_page_policy(o.cfg.dram.page_policy);
    (void)parse_refresh(o.cfg.dram.refresh);
  } catch (const SimError& e) {
    bad_request(e.what());
  }

  o.cfg.dram.fault.bit_flip_rate = member_double(doc, "fault_rate", 0.0);
  o.cfg.dram.fault.delay_rate = member_double(doc, "fault_delay", 0.0);
  o.cfg.dram.fault.drop_rate = member_double(doc, "fault_drop", 0.0);
  for (const double rate :
       {o.cfg.dram.fault.bit_flip_rate, o.cfg.dram.fault.delay_rate,
        o.cfg.dram.fault.drop_rate}) {
    if (!(rate >= 0.0) || rate > 1.0) {
      bad_request("fault rates must be probabilities in [0, 1]");
    }
  }
  o.cfg.dram.fault.seed = member_u64(doc, "fault_seed", 1);
  o.cfg.dram.fault.ecc = member_bool(doc, "ecc", false);

  o.cfg.watchdog.max_cycles =
      member_u64(doc, "watchdog_cycles", o.cfg.watchdog.max_cycles);
  o.cfg.watchdog.stall_cycles =
      member_u64(doc, "watchdog_stall", o.cfg.watchdog.stall_cycles);
  o.cfg.watchdog.wall_ms =
      member_u64(doc, "watchdog_wall", o.cfg.watchdog.wall_ms);
  o.cfg.fast_forward = member_bool(doc, "fast_forward", true);
  o.cfg.block_cache = member_bool(doc, "block_cache", true);

  o.trace.chrome_json = member_bool(doc, "trace", false);
  o.trace.dir = member_string(doc, "trace_dir", o.trace.dir);
  o.trace.ring_entries = member_u64(doc, "trace_ring", 0);
  o.trace.interval_cycles = member_u64(doc, "trace_interval", 0);

  spec.hold_ms = member_u64(doc, "hold_ms", 0);
  return spec;
}

// ---- request builders ------------------------------------------------------

std::string ping_request() { return R"({"type":"ping"})"; }

std::string submit_request(const JobSpec& spec) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("type");
  w.value("submit");
  w.key("job");
  w.raw(job_json(spec));
  w.end_object();
  return w.take();
}

std::string status_request() { return R"({"type":"status"})"; }

std::string job_status_request(u64 id) { return id_request("status", id); }

std::string result_request(u64 id, bool wait) {
  return result_request(id, wait, 0);
}

std::string result_request(u64 id, bool wait, u64 wait_ms) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("type");
  w.value("result");
  w.key("id");
  w.value(id);
  w.key("wait");
  w.value(wait);
  if (wait_ms > 0) {
    // Additive member: servers that predate the bounded wait ignore it and
    // park unbounded, exactly the old behaviour.
    w.key("wait_ms");
    w.value(wait_ms);
  }
  w.end_object();
  return w.take();
}

std::string cancel_request(u64 id) { return id_request("cancel", id); }

std::string shutdown_request() { return R"({"type":"shutdown"})"; }

namespace {

std::string versioned_job_request(const char* type, const JobSpec& spec,
                                  u64 cycle) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("type");
  w.value(type);
  // The version declaration is MANDATORY for the snapshot verbs: the server
  // rejects its absence with version-mismatch, so a v1 client replaying
  // captured frames cannot trip into semantics it predates.
  w.key("protocol_version");
  w.value(kProtocolVersion);
  w.key("cycle");
  w.value(cycle);
  w.key("job");
  w.raw(job_json(spec));
  w.end_object();
  return w.take();
}

}  // namespace

std::string snapshot_request(const JobSpec& spec, u64 cycle) {
  return versioned_job_request("snapshot", spec, cycle);
}

std::string restore_request(const JobSpec& spec, u64 cycle) {
  return versioned_job_request("restore", spec, cycle);
}

// ---- response builders -----------------------------------------------------

std::string pong_response() {
  trace::JsonWriter w = response_head(true, "pong");
  w.key("protocol_version");
  w.value(kProtocolVersion);
  w.key("schema_version");
  w.value(sim::kStatsJsonSchemaVersion);
  w.end_object();
  return w.take();
}

std::string submitted_response(u64 id) {
  trace::JsonWriter w = response_head(true, "submitted");
  w.key("id");
  w.value(id);
  w.end_object();
  return w.take();
}

std::string status_response(const ServerStatus& status) {
  trace::JsonWriter w = response_head(true, "status");
  w.key("accepting");
  w.value(status.accepting);
  w.key("threads");
  w.value(status.threads);
  w.key("queue_limit");
  w.value(status.queue_limit);
  w.key("jobs");
  w.begin_object();
  w.key("queued");
  w.value(status.queued);
  w.key("running");
  w.value(status.running);
  w.key("done");
  w.value(status.done);
  w.key("cancelled");
  w.value(status.cancelled);
  w.end_object();
  w.key("cache");
  w.begin_object();
  w.key("hits");
  w.value(status.cache.hits);
  w.key("misses");
  w.value(status.cache.misses);
  w.key("evictions");
  w.value(status.cache.evictions);
  w.key("entries");
  w.value(status.cache.entries);
  w.key("image_bytes");
  w.value(status.cache.image_bytes);
  w.end_object();
  w.key("snapshots");
  w.begin_object();
  w.key("hits");
  w.value(status.snapshot_hits);
  w.key("misses");
  w.value(status.snapshot_misses);
  w.key("evictions");
  w.value(status.snapshot_evictions);
  w.key("entries");
  w.value(status.snapshot_entries);
  w.key("blob_bytes");
  w.value(status.snapshot_blob_bytes);
  w.end_object();
  w.end_object();
  return w.take();
}

std::string job_status_response(u64 id, JobState state) {
  trace::JsonWriter w = response_head(true, "job-status");
  w.key("id");
  w.value(id);
  w.key("state");
  w.value(job_state_name(state));
  w.end_object();
  return w.take();
}

std::string result_response(u64 id, JobState state, bool cache_hit,
                            bool run_ok, const std::string& csv,
                            const std::string& stats_run_json) {
  trace::JsonWriter w = response_head(true, "result");
  w.key("id");
  w.value(id);
  w.key("state");
  w.value(job_state_name(state));
  w.key("cache_hit");
  w.value(cache_hit);
  w.key("run_ok");
  w.value(run_ok);
  w.key("csv");
  w.value(csv);
  // Shipped as an escaped string (not a nested object) so the client can
  // reassemble sim::stats_json_document byte-for-byte from the fragments.
  w.key("stats");
  w.value(stats_run_json);
  w.end_object();
  return w.take();
}

std::string snapshot_response(const std::string& key, u64 captured_cycle,
                              u64 blob_bytes, bool captured, bool run_ok,
                              const std::string& csv,
                              const std::string& stats_run_json) {
  trace::JsonWriter w = response_head(true, "snapshot");
  w.key("key");
  w.value(key);
  w.key("captured");
  w.value(captured);
  w.key("cycle");
  w.value(captured_cycle);
  w.key("blob_bytes");
  w.value(blob_bytes);
  w.key("run_ok");
  w.value(run_ok);
  w.key("csv");
  w.value(csv);
  w.key("stats");
  w.value(stats_run_json);
  w.end_object();
  return w.take();
}

std::string restored_response(const std::string& key, u64 captured_cycle,
                              bool run_ok, const std::string& csv,
                              const std::string& stats_run_json) {
  trace::JsonWriter w = response_head(true, "restored");
  w.key("key");
  w.value(key);
  w.key("cycle");
  w.value(captured_cycle);
  w.key("run_ok");
  w.value(run_ok);
  w.key("csv");
  w.value(csv);
  w.key("stats");
  w.value(stats_run_json);
  w.end_object();
  return w.take();
}

std::string shutting_down_response() {
  trace::JsonWriter w = response_head(true, "shutting-down");
  w.end_object();
  return w.take();
}

std::string error_response(const std::string& kind,
                           const std::string& message) {
  trace::JsonWriter w = response_head(false, "error");
  w.key("error");
  w.value(kind);
  w.key("message");
  w.value(message);
  w.end_object();
  return w.take();
}

// ---- response decoding -----------------------------------------------------

Response parse_response(const std::string& payload) {
  Response out;
  out.raw = payload;
  out.doc = trace::json_parse(payload);
  MLP_SIM_CHECK(out.doc.is_object(), "protocol",
                "response is not a JSON object");
  const trace::JsonValue* ok = out.doc.find("ok");
  const trace::JsonValue* type = out.doc.find("type");
  MLP_SIM_CHECK(ok != nullptr && ok->type == trace::JsonValue::Type::kBool,
                "protocol", "response lacks a boolean \"ok\"");
  MLP_SIM_CHECK(
      type != nullptr && type->type == trace::JsonValue::Type::kString,
      "protocol", "response lacks a string \"type\"");
  out.ok = ok->boolean;
  out.type = type->string;
  if (!out.ok) {
    const trace::JsonValue* kind = out.doc.find("error");
    const trace::JsonValue* message = out.doc.find("message");
    out.error = kind != nullptr ? kind->string : "unknown";
    out.message = message != nullptr ? message->string : "";
  }
  return out;
}

}  // namespace mlp::serve
