#pragma once
// Transport abstraction for the mlpserved protocol: one address grammar and
// one socket-setup path shared by the daemon, the clients and the sweep
// drivers, over two stream transports with identical framing semantics:
//
//  * AF_UNIX  — "/tmp/mlp.sock" (anything that does not parse as HOST:PORT);
//    single-host, lowest latency, filesystem permissions.
//  * AF_INET  — "HOST:PORT" ("127.0.0.1:7411", "0.0.0.0:0", "node3:7411");
//    multi-host sweeps. Port 0 binds an ephemeral port (the bound port is
//    reported back so tests and tools can discover it). Accepted and
//    connected sockets get TCP_NODELAY — the protocol is small
//    request/response frames and Nagle would serialize them behind ACKs.
//
// The u32-length-prefixed JSON framing, the typed-error vocabulary and
// protocol_version are transport-independent: read_frame/write_frame only
// ever see a connected stream fd.
//
// The transport also hosts the seeded CHAOS layer: an env/flag-driven fault
// injector that drops, delays, truncates or closes outgoing request frames
// with a per-connection decorrelated RNG (the same scheme as the DRAM
// FaultInjector), so every client-side resilience path — deadlines, node
// death, reconnect, failover re-dispatch — is deterministically testable
// without root, network namespaces, or flaky sleeps.

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlp::serve {

struct Endpoint {
  enum class Kind : u8 { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< AF_UNIX socket path
  std::string host;  ///< AF_INET host (numeric or resolvable name)
  u16 port = 0;      ///< AF_INET port; 0 = ephemeral (listen only)
};

/// Parse an address string: "HOST:PORT" (nonempty host without '/', all-digit
/// port in [0, 65535]) is TCP; everything else is an AF_UNIX path.
Endpoint parse_endpoint(const std::string& address);

/// Canonical display form ("host:port" or the path), for diagnostics.
std::string endpoint_name(const Endpoint& endpoint);

/// Bind + listen on the endpoint; returns the listening fd. For TCP the
/// socket gets SO_REUSEADDR, and `bound_port` (optional) reports the actual
/// port — the way to discover an ephemeral ":0" binding. Throws
/// SimError("serve", ...) on resolution/bind/listen failures.
int listen_endpoint(const Endpoint& endpoint, u16* bound_port = nullptr);

/// Connect a blocking stream socket to the endpoint; returns the connected
/// fd. A dead peer is a typed SimError("serve", ...) naming the address —
/// connect-refused must be a clean per-node failure, never a crash or hang.
/// `timeout_ms` > 0 bounds the TCP handshake (non-blocking connect + poll;
/// a blackholed peer becomes a typed "timeout" error instead of the
/// kernel's minutes-long SYN retry); <= 0 keeps the blocking behaviour.
int connect_endpoint(const Endpoint& endpoint, i64 timeout_ms = 0);

/// Disable Nagle on an accepted TCP connection (the daemon side of the
/// latency story; connect_endpoint already handles the client side).
void set_tcp_nodelay(int fd);

// ---- seeded RPC chaos ------------------------------------------------------

/// What the chaos layer may do to one outgoing request frame. Rates are
/// independent probabilities evaluated in this order; at most one action
/// fires per frame.
struct ChaosConfig {
  double drop_rate = 0.0;      ///< swallow the frame (peer sees silence)
  double delay_rate = 0.0;     ///< sleep delay_ms before sending
  double truncate_rate = 0.0;  ///< send a partial frame, then close
  double close_rate = 0.0;     ///< close the connection instead of sending
  u64 delay_ms = 20;           ///< injected latency for kDelay
  u64 seed = 1;                ///< root seed; per-connection decorrelated

  bool enabled() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || truncate_rate > 0.0 ||
           close_rate > 0.0;
  }
};

/// Parse a chaos spec "drop=0.05,delay=0.1,delay-ms=20,truncate=0.01,
/// close=0.02,seed=7" (any subset of keys). Throws SimError("serve", ...)
/// on unknown keys or rates outside [0, 1].
ChaosConfig parse_chaos(const std::string& spec);

/// Chaos config from the MLP_CHAOS environment variable (same grammar);
/// all-zero (disabled) when unset or empty.
ChaosConfig chaos_from_env();

/// Per-connection chaos decision stream. Mirrors the DRAM FaultInjector:
/// each connection draws from its own decorrelated RNG
/// (seed ^ golden-ratio-mix of the connection ordinal), so injected
/// failures are reproducible for a fixed seed yet uncorrelated across
/// connections.
class ChaosInjector {
 public:
  enum class Action : u8 { kNone, kDrop, kDelay, kTruncate, kClose };

  ChaosInjector(const ChaosConfig& cfg, u64 connection_id)
      : cfg_(cfg),
        rng_(cfg.seed ^ (0xa076'1d64'78bd'642full * (connection_id + 1))) {}

  /// Decide the fate of the next outgoing frame.
  Action next() {
    const double draw = rng_.uniform();
    double acc = cfg_.drop_rate;
    if (draw < acc) return count(Action::kDrop);
    acc += cfg_.delay_rate;
    if (draw < acc) return count(Action::kDelay);
    acc += cfg_.truncate_rate;
    if (draw < acc) return count(Action::kTruncate);
    acc += cfg_.close_rate;
    if (draw < acc) return count(Action::kClose);
    return Action::kNone;
  }

  u64 delay_ms() const { return cfg_.delay_ms; }
  u64 injected() const { return injected_; }

 private:
  Action count(Action action) {
    ++injected_;
    return action;
  }

  ChaosConfig cfg_;
  Rng rng_;
  u64 injected_ = 0;
};

const char* chaos_action_name(ChaosInjector::Action action);

}  // namespace mlp::serve
