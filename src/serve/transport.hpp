#pragma once
// Transport abstraction for the mlpserved protocol: one address grammar and
// one socket-setup path shared by the daemon, the clients and the sweep
// drivers, over two stream transports with identical framing semantics:
//
//  * AF_UNIX  — "/tmp/mlp.sock" (anything that does not parse as HOST:PORT);
//    single-host, lowest latency, filesystem permissions.
//  * AF_INET  — "HOST:PORT" ("127.0.0.1:7411", "0.0.0.0:0", "node3:7411");
//    multi-host sweeps. Port 0 binds an ephemeral port (the bound port is
//    reported back so tests and tools can discover it). Accepted and
//    connected sockets get TCP_NODELAY — the protocol is small
//    request/response frames and Nagle would serialize them behind ACKs.
//
// The u32-length-prefixed JSON framing, the typed-error vocabulary and
// protocol_version are transport-independent: read_frame/write_frame only
// ever see a connected stream fd.

#include <string>

#include "common/types.hpp"

namespace mlp::serve {

struct Endpoint {
  enum class Kind : u8 { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< AF_UNIX socket path
  std::string host;  ///< AF_INET host (numeric or resolvable name)
  u16 port = 0;      ///< AF_INET port; 0 = ephemeral (listen only)
};

/// Parse an address string: "HOST:PORT" (nonempty host without '/', all-digit
/// port in [0, 65535]) is TCP; everything else is an AF_UNIX path.
Endpoint parse_endpoint(const std::string& address);

/// Canonical display form ("host:port" or the path), for diagnostics.
std::string endpoint_name(const Endpoint& endpoint);

/// Bind + listen on the endpoint; returns the listening fd. For TCP the
/// socket gets SO_REUSEADDR, and `bound_port` (optional) reports the actual
/// port — the way to discover an ephemeral ":0" binding. Throws
/// SimError("serve", ...) on resolution/bind/listen failures.
int listen_endpoint(const Endpoint& endpoint, u16* bound_port = nullptr);

/// Connect a blocking stream socket to the endpoint; returns the connected
/// fd. A dead peer is a typed SimError("serve", ...) naming the address —
/// connect-refused must be a clean per-node failure, never a crash or hang.
int connect_endpoint(const Endpoint& endpoint);

/// Disable Nagle on an accepted TCP connection (the daemon side of the
/// latency story; connect_endpoint already handles the client side).
void set_tcp_nodelay(int fd);

}  // namespace mlp::serve
