#pragma once
// mlpserved core: a persistent simulation service. One Server owns
//
//  * up to two listening sockets — Unix-domain and/or TCP — speaking the
//    same serve/protocol framing (the transport is invisible above accept),
//  * a sim::ThreadPool executing admitted jobs,
//  * a bounded admission queue — when the number of not-yet-finished jobs
//    reaches `queue_limit`, submits are REJECTED with a typed queue-full
//    error (backpressure the client can see), never silently dropped,
//  * a sim::PrepareCache keeping assembled programs, record sets, initial
//    DRAM images and golden references warm across jobs, so a 4-arch ×
//    8-bench matrix assembles each kernel once instead of 32 times.
//
// Lifecycle: run() blocks in the accept loop until request_stop() (SIGTERM/
// SIGINT handler or a shutdown request) and then DRAINS — queued and running
// jobs complete (their results stay fetchable until exit), new submits are
// refused with shutting-down, and in-flight jobs remain under the per-job
// forward-progress watchdog, so drain cannot hang on a wedged simulation.
// Connections are handled one thread each; results are plain protocol
// responses carrying the run's CSV row and its stats-JSON object.

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "sim/fork.hpp"
#include "sim/pool.hpp"
#include "sim/prepare.hpp"

namespace mlp::serve {

struct ServeConfig {
  std::string socket_path;  ///< AF_UNIX path (sun_path limit ~107 chars)
  /// TCP listen address "HOST:PORT" (port 0 = ephemeral, discover through
  /// tcp_port()). Either endpoint may be empty; at least one is required.
  std::string listen_address;
  u32 threads = 0;          ///< simulation workers; 0 = hardware threads
  /// Admission bound: maximum jobs queued-or-running at once. A submit
  /// beyond it gets a typed queue-full rejection.
  u64 queue_limit = 64;
  std::size_t cache_entries = sim::PrepareCache::kDefaultEntries;
  /// Snapshot-blob cache capacity (protocol v2 snapshot/restore verbs);
  /// LRU-evicted. Blobs can reach tens of MB for big images, so the bound
  /// is entries, with blob_bytes observable through status.
  std::size_t snapshot_entries = sim::SnapshotCache::kDefaultEntries;
  /// Wall-clock budget per job in ms (0 = unlimited). Caps every job's
  /// watchdog.wall_ms — the backstop for the hang class the cycle watchdog
  /// cannot see (a simulation making nominal forward progress forever). A
  /// trip surfaces as a typed "job-timeout" error in the job's result.
  u64 job_timeout_ms = 0;
};

class Server {
 public:
  explicit Server(const ServeConfig& cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on every configured endpoint; throws SimError("serve",
  /// ...) on socket errors (path too long, address in use, ...). Separate
  /// from run() so callers can report readiness before blocking.
  void listen();

  /// Accept/serve until request_stop(), then drain in-flight jobs and
  /// return. The accept loop polls with a 100 ms timeout so a signal
  /// handler's request_stop() is honoured promptly without self-pipes.
  void run();

  /// Async-signal-safe stop request (only touches lock-free state).
  void request_stop();

  /// Aggregate counters for the status response (also used by tests).
  ServerStatus status() const;

  const std::string& socket_path() const { return cfg_.socket_path; }

  /// Bound TCP port after listen(); 0 when no TCP endpoint is configured.
  /// With a ":0" listen address this is how the ephemeral port is found.
  u16 tcp_port() const { return tcp_port_; }

  /// "host:port" client address of the TCP listener ("" without one).
  std::string tcp_address() const;

 private:
  struct JobEntry {
    JobSpec spec;
    JobState state = JobState::kQueued;
    sim::MatrixResult result;
    bool cache_hit = false;
    /// Set when the hold/queue wait should end early (cancel or drain).
    bool wake = false;
    /// Per-job wakeups (result-waiters, held workers). A single server-wide
    /// condition variable broadcasts every completion to EVERY parked
    /// connection — O(clients) wakeups per job, which melts down at
    /// thousand-client fan-in; map entries are address-stable, so each job
    /// carries its own.
    std::condition_variable cv;
  };

  std::string handle_request(const std::string& payload);
  std::string handle_submit(const trace::JsonValue& doc);
  std::string handle_status(const trace::JsonValue& doc);
  std::string handle_result(const trace::JsonValue& doc);
  std::string handle_cancel(const trace::JsonValue& doc);
  /// Protocol v2 verbs; both run SYNCHRONOUSLY on the connection thread
  /// (the caller wants the state transition, not a ticket) and require the
  /// request to declare "protocol_version":2.
  std::string handle_snapshot(const trace::JsonValue& doc);
  std::string handle_restore(const trace::JsonValue& doc);
  void execute(u64 id);
  void serve_connection(int fd);

  void close_listeners();

  ServeConfig cfg_;
  int unix_fd_ = -1;  ///< AF_UNIX listener (-1 when not configured)
  int tcp_fd_ = -1;   ///< AF_INET listener (-1 when not configured)
  u16 tcp_port_ = 0;  ///< actual bound TCP port (resolves ":0" bindings)
  std::atomic<bool> stop_{false};

  std::unique_ptr<sim::ThreadPool> pool_;
  sim::PrepareCache cache_;
  /// Captured snapshot blobs keyed "prepare_key|arch|cycle"; thread-safe,
  /// shared by every connection thread. Blobs never leave the daemon.
  sim::SnapshotCache snapshots_;

  mutable std::mutex mutex_;
  std::map<u64, JobEntry> jobs_;
  u64 next_id_ = 1;
  u64 active_ = 0;  ///< queued + running (the admission-bounded population)

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> open_fds_;  ///< live connection sockets, for drain
};

}  // namespace mlp::serve
