#pragma once
// Cycle-domain tracing and interval statistics for the simulator — the
// observability layer behind `--trace`, `--trace-ring`, `--trace-interval`
// and `--stats-json`.
//
// Design constraints, in order:
//  1. OFF MEANS FREE. Components hold a `TraceSession*` that is nullptr in
//     normal runs; every emit site is guarded by that pointer test, so the
//     disabled-path cost is one predictable branch (measured ≤1% on
//     bench/micro_simulator).
//  2. Deterministic. Events are timestamped in simulated picoseconds and
//     contain no host state, so per-job trace files are bit-identical for
//     any `run_matrix` thread count.
//  3. Two capture modes sharing one emit path: an unbounded buffer exported
//     as Chrome-trace JSON (chrome://tracing / Perfetto loadable), and a
//     fixed-capacity binary ring cheap enough to leave on in long sweeps
//     (the most recent N events survive, e.g. for post-mortem of a watchdog
//     trip).
//
// Event taxonomy (see docs/ARCHITECTURE.md for the full table):
//   corelet stall begin/end      compute domain, track = corelet*contexts+ctx
//   DRAM ACT/PRE/RD/WR           channel domain, track = bank, row + hit/miss
//   prefetch lifecycle           issue -> fill -> first-use -> retire/evict,
//                                with the entry's PFT bit and DF counter
//   frequency-scaling steps      rate matcher retunes the compute clock
//   watchdog trip / fault        resilience events
//
// The interval sampler is the timeline view: every `interval_cycles` compute
// cycles it snapshots every registered StatSet counter (as per-interval
// deltas) plus run-registered gauges (prefetch-buffer occupancy, DF
// saturation, clock period) into one CSV row, with derived row-hit-rate and
// IPC columns.

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace mlp::trace {

enum class EventKind : u8 {
  kStallBegin,        // a hardware context blocked on a global load
  kStallEnd,          // ...and the data arrived (a = address)
  kDramActivate,      // a = row
  kDramPrecharge,     // a = previously open row
  kDramRead,          // a = row, b = 1 row hit / 0 row miss
  kDramWrite,         // a = row, b = 1 row hit / 0 row miss
  kPrefetchIssue,     // a = row
  kPrefetchFill,      // a = row
  kPrefetchFirstUse,  // a = row, b = (df << 1) | filled
  kPrefetchRetire,    // a = row, b = (df << 1) | pft   (DF-saturated head)
  kPrefetchEvict,     // a = row, b = (df << 1) | pft   (premature eviction)
  kFreqStep,          // a = new period [ps], b = new frequency [kHz]
  kWatchdogTrip,      // a = loop iterations at trip
  kFault,             // a = address, b = bit0 flip / bit1 delay / bit2 drop
  kDramRefresh,       // a = rank, b = refresh debt at issue
};

/// Clock domain an event was recorded against; events are buffered per
/// domain and merged (by timestamp) at export time.
enum class Domain : u8 { kCompute = 0, kChannel = 1 };

/// Track-id convention for non-corelet emitters (corelet stalls use
/// `corelet * contexts + context`, matching the dump_corelets layout).
inline constexpr u32 kDramTrackBase = 0x10000;  ///< + (channel*ranks + rank)
                                                ///<   * banks + bank
inline constexpr u32 kPrefetchTrack = 0x20000;
inline constexpr u32 kRateMatchTrack = 0x20001;
inline constexpr u32 kWatchdogTrack = 0x20002;

/// One captured event; plain data so the binary ring can write it raw.
struct Event {
  Picos ts = 0;
  u64 a = 0;
  u64 b = 0;
  u32 track = 0;
  EventKind kind = EventKind::kStallBegin;
  Domain domain = Domain::kCompute;
};

struct TraceConfig {
  /// Export the event buffer as Chrome-trace JSON ("--trace").
  bool chrome_json = false;
  /// Fixed-capacity binary ring buffer; 0 disables ("--trace-ring N"). When
  /// set, capture wraps instead of growing and the ring is exported as a
  /// compact binary blob.
  u64 ring_entries = 0;
  /// Interval-sampler cadence in compute cycles; 0 disables
  /// ("--trace-interval N").
  u64 interval_cycles = 0;
  /// Output directory for per-job files (tools / sim::run_job).
  std::string dir = "traces";

  bool enabled() const {
    return chrome_json || ring_entries > 0 || interval_cycles > 0;
  }
};

class TraceSession {
 public:
  explicit TraceSession(const TraceConfig& cfg);

  // ---- capture (hot path; callers guard on the session pointer) ----

  void emit(Domain domain, EventKind kind, Picos ts, u32 track, u64 a = 0,
            u64 b = 0) {
    if (!capture_events_) return;
    record({ts, a, b, track, kind, domain});
  }

  /// Compute-domain edge hook: drives the interval sampler. `cycle` is the
  /// domain's tick count BEFORE this edge.
  void tick_compute(u64 cycle, Picos now) {
    if (cfg_.interval_cycles == 0) return;
    if (cycle < next_sample_cycle_) return;
    sample(cycle, now);
  }

  /// First compute-domain cycle at which tick_compute() would take a sample;
  /// ~u64{0} when interval sampling is off. The simulation kernel caps its
  /// compute-domain fast-forward at this cycle so timelines keep every row.
  u64 next_sample_cycle() const {
    return cfg_.interval_cycles == 0 ? ~u64{0} : next_sample_cycle_;
  }

  // ---- per-run wiring (called once by the architecture model) ----

  /// Names the trace "process" (arch/workload) and attaches the counter set
  /// the interval sampler snapshots. The StatSet must outlive the run.
  void begin_run(std::string process_name, const StatSet* stats);

  /// Registers an instantaneous gauge sampled into the interval timeline.
  /// The callback is only invoked during the run (never at export time).
  void add_gauge(std::string name, std::function<u64()> fn);

  /// Perfetto/chrome thread metadata: names a track in the exported JSON.
  void set_track_name(u32 track, std::string name);

  /// Final simulated timestamp (close of the last interval). Safe to call
  /// whether or not the run completed.
  void finish_run(u64 cycle, Picos now);

  /// Interval-sampler cursor for mid-run snapshots (sim/snapshot.hpp). A
  /// restored session emits exactly the timeline rows the uninterrupted run
  /// emits past the restore point: same sample cycles, same counter deltas
  /// (last_counters holds the values already accounted to earlier rows).
  struct SamplerState {
    u64 next_sample_cycle = 0;
    u64 last_cycle = 0;
    std::vector<u64> last_counters;
  };
  SamplerState sampler_state() const {
    return {next_sample_cycle_, last_cycle_, last_counters_};
  }
  /// Apply a captured cursor; must follow begin_run (the counter column set
  /// is rebuilt there and the sizes must agree, else SimError("snapshot")).
  void restore_sampler(const SamplerState& state);

  // ---- export ----

  const TraceConfig& config() const { return cfg_; }
  const std::string& process_name() const { return process_name_; }
  u64 events_captured() const { return total_emitted_; }
  u64 events_retained() const;
  /// Events in capture order after ring reassembly (for tests).
  std::vector<Event> events() const;

  /// Chrome-trace JSON (traceEvents array object form). Deterministic for a
  /// given run; timestamps are microseconds with the full picosecond
  /// precision retained in 6 decimals.
  std::string chrome_trace_json() const;

  /// Interval timeline as CSV: cycle,ps,<counter deltas...>,<gauges...>,
  /// row_hit_rate,ipc. Header is stable for a given architecture (columns
  /// are the sorted registered counter names).
  std::string interval_csv() const;

  /// Compact binary blob: "MLPTRACE" magic, version, event size, retained
  /// and total counts, then raw Event records oldest-first.
  std::string binary_blob() const;

 private:
  struct Gauge {
    std::string name;
    std::function<u64()> fn;
  };

  struct IntervalRow {
    u64 cycle = 0;
    Picos ps = 0;
    std::vector<u64> counter_deltas;  ///< aligned with counter_names_
    std::vector<u64> gauges;          ///< aligned with gauges_
  };

  void record(const Event& event) {
    ++total_emitted_;
    if (cfg_.ring_entries > 0 && events_.size() >= cfg_.ring_entries) {
      events_[ring_head_] = event;
      ring_head_ = (ring_head_ + 1) % cfg_.ring_entries;
      return;
    }
    events_.push_back(event);
  }

  void sample(u64 cycle, Picos now);

  TraceConfig cfg_;
  bool capture_events_ = false;
  std::string process_name_;

  std::vector<Event> events_;
  u64 ring_head_ = 0;  ///< oldest element once the ring wrapped
  u64 total_emitted_ = 0;

  std::vector<std::pair<u32, std::string>> track_names_;

  // Interval sampler state.
  const StatSet* stats_ = nullptr;
  std::vector<std::string> counter_names_;
  std::vector<u64> last_counters_;
  std::vector<Gauge> gauges_;
  std::vector<IntervalRow> rows_;
  u64 next_sample_cycle_ = 0;
  u64 last_cycle_ = 0;
  /// Cycle baseline for the first row's per-interval rates; nonzero only in
  /// a snapshot-restored session (the pre-capture rows live in the capturing
  /// process's timeline).
  u64 base_cycle_ = 0;
};

/// Registers the standard per-context track names ("c3.x1") used by the
/// MIMD architectures' stall events.
void name_context_tracks(TraceSession* session, u32 cores, u32 contexts);

}  // namespace mlp::trace
