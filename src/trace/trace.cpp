#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "trace/json.hpp"

namespace mlp::trace {

namespace {

const char* event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kStallBegin:
    case EventKind::kStallEnd: return "mem_stall";
    case EventKind::kDramActivate: return "ACT";
    case EventKind::kDramPrecharge: return "PRE";
    case EventKind::kDramRead: return "RD";
    case EventKind::kDramWrite: return "WR";
    case EventKind::kPrefetchIssue: return "pf_issue";
    case EventKind::kPrefetchFill: return "pf_fill";
    case EventKind::kPrefetchFirstUse: return "pf_first_use";
    case EventKind::kPrefetchRetire: return "pf_retire";
    case EventKind::kPrefetchEvict: return "pf_evict";
    case EventKind::kFreqStep: return "freq_step";
    case EventKind::kWatchdogTrip: return "watchdog_trip";
    case EventKind::kFault: return "fault";
    case EventKind::kDramRefresh: return "REF";
  }
  return "?";
}

/// Simulated picoseconds rendered as chrome-trace microseconds. Integer
/// arithmetic keeps the text deterministic across compilers.
std::string ts_micros(Picos ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                static_cast<unsigned long long>(ps / 1000000),
                static_cast<unsigned long long>(ps % 1000000));
  return buf;
}

void csv_append_u64(std::string& out, u64 value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

TraceSession::TraceSession(const TraceConfig& cfg) : cfg_(cfg) {
  capture_events_ = cfg_.chrome_json || cfg_.ring_entries > 0;
  if (cfg_.ring_entries > 0) events_.reserve(cfg_.ring_entries);
  next_sample_cycle_ = cfg_.interval_cycles;
}

void TraceSession::begin_run(std::string process_name, const StatSet* stats) {
  process_name_ = std::move(process_name);
  stats_ = stats;
  counter_names_.clear();
  last_counters_.clear();
  if (stats_ != nullptr && cfg_.interval_cycles > 0) {
    for (const auto& [name, value] : stats_->snapshot()) {
      counter_names_.push_back(name);
      last_counters_.push_back(value);
    }
  }
}

void TraceSession::add_gauge(std::string name, std::function<u64()> fn) {
  if (cfg_.interval_cycles == 0) return;
  MLP_SIM_CHECK(rows_.empty(), "trace", "gauge registered after sampling began");
  gauges_.push_back({std::move(name), std::move(fn)});
}

void TraceSession::set_track_name(u32 track, std::string name) {
  track_names_.emplace_back(track, std::move(name));
}

void TraceSession::sample(u64 cycle, Picos now) {
  // The StatSet may gain counters after begin_run (components register
  // lazily); resync the column set while it still only grows append-sorted.
  const auto snap = stats_ != nullptr
                        ? stats_->snapshot()
                        : std::vector<std::pair<std::string, u64>>{};
  if (snap.size() != counter_names_.size()) {
    MLP_SIM_CHECK(rows_.empty(), "trace",
                  "counter set changed after sampling began");
    counter_names_.clear();
    last_counters_.clear();
    for (const auto& [name, value] : snap) {
      counter_names_.push_back(name);
      last_counters_.push_back(0);
    }
  }
  IntervalRow row;
  row.cycle = cycle;
  row.ps = now;
  row.counter_deltas.reserve(snap.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    row.counter_deltas.push_back(snap[i].second - last_counters_[i]);
    last_counters_[i] = snap[i].second;
  }
  row.gauges.reserve(gauges_.size());
  for (const Gauge& gauge : gauges_) row.gauges.push_back(gauge.fn());
  rows_.push_back(std::move(row));
  last_cycle_ = cycle;
  next_sample_cycle_ = cycle + cfg_.interval_cycles;
}

void TraceSession::restore_sampler(const SamplerState& state) {
  if (cfg_.interval_cycles == 0) return;
  MLP_SIM_CHECK(rows_.empty(), "snapshot",
                "sampler restore after sampling began");
  MLP_SIM_CHECK(state.last_counters.size() == last_counters_.size(),
                "snapshot",
                "snapshot sampler column count does not match this machine");
  next_sample_cycle_ = state.next_sample_cycle;
  last_cycle_ = state.last_cycle;
  last_counters_ = state.last_counters;
  // The first restored row's per-interval rates (ipc) divide by the cycles
  // since the last PRE-capture sample, exactly as the uninterrupted export
  // does for that row.
  base_cycle_ = state.last_cycle;
}

void TraceSession::finish_run(u64 cycle, Picos now) {
  if (cfg_.interval_cycles == 0) return;
  if (!rows_.empty() && rows_.back().cycle == cycle) return;
  if (cycle <= last_cycle_ && !rows_.empty()) return;
  sample(cycle, now);
}

u64 TraceSession::events_retained() const { return events_.size(); }

std::vector<Event> TraceSession::events() const {
  std::vector<Event> out;
  out.reserve(events_.size());
  // ring_head_ is the oldest record once the ring wrapped (0 otherwise).
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(ring_head_ + i) % events_.size()]);
  }
  return out;
}

std::string TraceSession::chrome_trace_json() const {
  // Sort by timestamp for export; stable so same-ts events keep capture
  // order (chrome://tracing requires non-decreasing ts within a thread).
  std::vector<Event> sorted = events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& x, const Event& y) { return x.ts < y.ts; });

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ns");
  w.key("traceEvents");
  w.begin_array();

  // Metadata: one "process" for the run, one named "thread" per track.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(0);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(process_name_.empty() ? std::string("mlpsim") : process_name_);
  w.end_object();
  w.end_object();
  for (const auto& [track, name] : track_names_) {
    w.newline();
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(track);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(name);
    w.end_object();
    w.end_object();
  }

  for (const Event& event : sorted) {
    w.newline();
    w.begin_object();
    w.key("name");
    w.value(event_name(event.kind));
    w.key("ph");
    switch (event.kind) {
      case EventKind::kStallBegin: w.value("B"); break;
      case EventKind::kStallEnd: w.value("E"); break;
      case EventKind::kFreqStep: w.value("C"); break;
      default: w.value("i"); break;
    }
    w.key("ts");
    w.raw(ts_micros(event.ts));
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(event.track);
    if (event.kind != EventKind::kStallBegin &&
        event.kind != EventKind::kStallEnd && event.kind != EventKind::kFreqStep) {
      w.key("s");
      w.value("t");  // thread-scoped instant
    }
    w.key("args");
    w.begin_object();
    w.key("domain");
    w.value(event.domain == Domain::kCompute ? "compute" : "channel");
    switch (event.kind) {
      case EventKind::kStallBegin:
      case EventKind::kStallEnd:
        w.key("addr");
        w.value(event.a);
        break;
      case EventKind::kDramActivate:
      case EventKind::kDramPrecharge:
        w.key("row");
        w.value(event.a);
        break;
      case EventKind::kDramRead:
      case EventKind::kDramWrite:
        w.key("row");
        w.value(event.a);
        w.key("row_hit");
        w.value(event.b != 0);
        break;
      case EventKind::kPrefetchIssue:
      case EventKind::kPrefetchFill:
        w.key("row");
        w.value(event.a);
        break;
      case EventKind::kPrefetchFirstUse:
        w.key("row");
        w.value(event.a);
        w.key("df");
        w.value(event.b >> 1);
        w.key("filled");
        w.value((event.b & 1) != 0);
        break;
      case EventKind::kPrefetchRetire:
      case EventKind::kPrefetchEvict:
        w.key("row");
        w.value(event.a);
        w.key("df");
        w.value(event.b >> 1);
        w.key("pft");
        w.value((event.b & 1) != 0);
        break;
      case EventKind::kFreqStep:
        w.key("mhz");
        // kHz resolution rendered as fixed-point MHz text would lose the
        // counter-track semantics; chrome counters want numbers.
        w.raw(ts_micros(event.b * 1000));  // kHz -> "MHz.micro" fixed point
        break;
      case EventKind::kWatchdogTrip:
        w.key("iterations");
        w.value(event.a);
        break;
      case EventKind::kFault:
        w.key("addr");
        w.value(event.a);
        w.key("kind");
        w.value(event.b == 1 ? "flip" : event.b == 2 ? "delay" : "drop");
        break;
      case EventKind::kDramRefresh:
        w.key("rank");
        w.value(event.a);
        w.key("debt");
        w.value(event.b);
        break;
    }
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  w.newline();
  return w.take();
}

std::string TraceSession::interval_csv() const {
  std::string out = "cycle,ps";
  for (const std::string& name : counter_names_) {
    out += ',';
    out += name;
  }
  for (const Gauge& gauge : gauges_) {
    out += ',';
    out += gauge.name;
  }
  out += ",row_hit_rate,ipc\n";

  // Column indices for the derived per-interval rates.
  auto index_of = [&](const char* name) -> size_t {
    for (size_t i = 0; i < counter_names_.size(); ++i) {
      if (counter_names_[i] == name) return i;
    }
    return counter_names_.size();
  };
  const size_t hit_col = index_of("dram.row_hits");
  const size_t miss_col = index_of("dram.row_misses");
  size_t inst_col = counter_names_.size();
  u64 inst_cols_found = 0;
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    // "exec.instructions" (MIMD archs) or "sm.instructions" (GPGPU).
    if (counter_names_[i].size() > 13 &&
        counter_names_[i].compare(counter_names_[i].size() - 13, 13,
                                  ".instructions") == 0) {
      inst_col = i;
      ++inst_cols_found;
    }
  }

  u64 prev_cycle = base_cycle_;
  for (const IntervalRow& row : rows_) {
    csv_append_u64(out, row.cycle);
    out += ',';
    csv_append_u64(out, row.ps);
    for (const u64 delta : row.counter_deltas) {
      out += ',';
      csv_append_u64(out, delta);
    }
    for (const u64 gauge : row.gauges) {
      out += ',';
      csv_append_u64(out, gauge);
    }
    char buf[48];
    const u64 hits = hit_col < row.counter_deltas.size() ? row.counter_deltas[hit_col] : 0;
    const u64 misses =
        miss_col < row.counter_deltas.size() ? row.counter_deltas[miss_col] : 0;
    const double hit_rate =
        hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;
    const u64 insts = (inst_cols_found == 1 && inst_col < row.counter_deltas.size())
                          ? row.counter_deltas[inst_col]
                          : 0;
    const u64 cycles = row.cycle - prev_cycle;
    const double ipc =
        cycles > 0 ? static_cast<double>(insts) / static_cast<double>(cycles) : 0.0;
    std::snprintf(buf, sizeof(buf), ",%.6f,%.6f\n", hit_rate, ipc);
    out += buf;
    prev_cycle = row.cycle;
  }
  return out;
}

std::string TraceSession::binary_blob() const {
  static_assert(sizeof(Event) == 32, "binary trace layout changed");
  struct Header {
    char magic[8];
    u32 version;
    u32 event_size;
    u64 retained;
    u64 total_emitted;
  };
  static_assert(sizeof(Header) == 32, "binary header layout changed");
  Header header{};
  std::memcpy(header.magic, "MLPTRACE", 8);
  header.version = 1;
  header.event_size = sizeof(Event);
  header.retained = events_.size();
  header.total_emitted = total_emitted_;

  const std::vector<Event> ordered = events();
  std::string out;
  out.resize(sizeof(Header) + ordered.size() * sizeof(Event));
  std::memcpy(out.data(), &header, sizeof(Header));
  if (!ordered.empty()) {
    std::memcpy(out.data() + sizeof(Header), ordered.data(),
                ordered.size() * sizeof(Event));
  }
  return out;
}

void name_context_tracks(TraceSession* session, u32 cores, u32 contexts) {
  if (session == nullptr) return;
  for (u32 core = 0; core < cores; ++core) {
    for (u32 ctx = 0; ctx < contexts; ++ctx) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "c%u.x%u", core, ctx);
      session->set_track_name(core * contexts + ctx, buf);
    }
  }
}

}  // namespace mlp::trace
