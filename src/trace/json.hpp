#pragma once
// Minimal JSON support for the observability layer: a streaming writer used
// by the trace/stats exporters and a small recursive-descent parser used by
// the schema tests and the golden-counter regression suite. Deliberately
// tiny — no external dependency, deterministic output (stable key order is
// the caller's job; numbers are formatted with fixed printf specifiers so a
// given build emits byte-identical documents for identical inputs).

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace mlp::trace {

/// Escape a string for embedding inside JSON quotes.
std::string json_escape(const std::string& text);

/// Append-only JSON builder. The caller opens/closes containers in order;
/// commas are inserted automatically. No pretty-printing beyond optional
/// newlines between top-level-array elements (keeps multi-MB traces
/// line-diffable).
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text);
  void value(u64 number);
  void value(i64 number);
  void value(u32 number) { value(static_cast<u64>(number)); }
  void value(int number) { value(static_cast<i64>(number)); }
  void value(double number);
  void value(bool flag);
  void raw(const std::string& text);  ///< pre-rendered JSON fragment
  void newline();                     ///< cosmetic separator (after commas)

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void separator();

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Parsed JSON value. Numbers keep both the double and (when the text was
/// integral) the exact signed integer, so counters survive a round trip.
struct JsonValue {
  enum class Type : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  i64 integer = 0;           ///< saturated at i64 max for huge u64 tokens
  u64 unsigned_integer = 0;  ///< exact for non-negative integer tokens
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& name) const;
  /// Convenience: member as u64 (checks presence and integrality).
  u64 u64_at(const std::string& name) const;
  const std::string& str_at(const std::string& name) const;
};

/// Parse a complete JSON document; throws SimError("json", ...) on malformed
/// input (including trailing garbage).
JsonValue json_parse(const std::string& text);

}  // namespace mlp::trace
