#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace mlp::trace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted "name":
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separator();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  MLP_SIM_CHECK(!needs_comma_.empty(), "json", "end_object without begin");
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  separator();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  MLP_SIM_CHECK(!needs_comma_.empty(), "json", "end_array without begin");
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  separator();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  separator();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(u64 number) {
  separator();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(number));
  out_ += buf;
}

void JsonWriter::value(i64 number) {
  separator();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(number));
  out_ += buf;
}

void JsonWriter::value(double number) {
  separator();
  char buf[40];
  // %.17g round-trips any double; JSON has no inf/nan, map them to null.
  if (std::isfinite(number)) {
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
  } else {
    out_ += "null";
  }
}

void JsonWriter::value(bool flag) {
  separator();
  out_ += flag ? "true" : "false";
}

void JsonWriter::raw(const std::string& text) {
  separator();
  out_ += text;
}

void JsonWriter::newline() { out_ += '\n'; }

const JsonValue* JsonValue::find(const std::string& name) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

u64 JsonValue::u64_at(const std::string& name) const {
  const JsonValue* v = find(name);
  MLP_SIM_CHECK(v != nullptr && v->type == Type::kNumber && v->is_integer &&
                    v->integer >= 0,
                "json", "missing or non-integral member: " + name);
  return v->unsigned_integer;
}

const std::string& JsonValue::str_at(const std::string& name) const {
  const JsonValue* v = find(name);
  MLP_SIM_CHECK(v != nullptr && v->type == Type::kString, "json",
                "missing or non-string member: " + name);
  return v->string;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    MLP_SIM_CHECK(pos_ == text_.size(), "json", "trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw SimError("json", why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Traces only contain ASCII; encode low codepoints directly.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += '?';
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = std::strtod(token.c_str(), nullptr);
    if (token.find_first_of(".eE") == std::string::npos) {
      value.is_integer = true;
      value.integer = std::strtoll(token.c_str(), nullptr, 10);
      if (!token.empty() && token[0] != '-') {
        // Counters are u64; keep full precision beyond i64 range.
        value.unsigned_integer = std::strtoull(token.c_str(), nullptr, 10);
      }
    }
    return value;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue value;
    switch (peek()) {
      case '{': {
        value.type = JsonValue::Type::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return value;
        }
        while (true) {
          skip_ws();
          std::string name = parse_string();
          skip_ws();
          expect(':');
          value.object.emplace_back(std::move(name), parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return value;
        }
      }
      case '[': {
        value.type = JsonValue::Type::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return value;
        }
        while (true) {
          value.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return value;
        }
      }
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        value.type = JsonValue::Type::kNull;
        return value;
      default:
        return parse_number();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace mlp::trace
