#include "sim/prepare.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace mlp::sim {

std::string prepare_key(const MatrixJob& job) {
  const SuiteOptions& o = job.options;
  // The effective record count folds `records`, `rows` and the row geometry
  // into one number, so "--records 49152" and the "--rows 192" sizing that
  // produces 49152 records share an entry.
  u64 records = o.records;
  if (records == 0) {
    const std::vector<std::string>& names = workloads::bmla_names();
    MLP_SIM_CHECK(
        std::find(names.begin(), names.end(), job.bench) != names.end(),
        "prepare", "unknown benchmark: " + job.bench);
    records = records_for(job.bench, o.cfg, o.rows);
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s|n%llu|s%llu|b%d|rb%u|slab%d",
                job.bench.c_str(), static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(o.seed),
                o.record_barrier ? 1 : 0, o.cfg.dram.row_bytes,
                o.cfg.slab_layout ? 1 : 0);
  return buf;
}

u64 stable_hash64(const std::string& text) {
  u64 hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  // FNV-1a's high bits avalanche poorly for short, similar strings; the
  // consistent-hash ring orders points by the FULL word, so finalize with
  // the murmur3 mixer to spread ring arcs evenly.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

PreparedJobPtr prepare_job(const MatrixJob& job) {
  const std::vector<std::string>& names = workloads::bmla_names();
  MLP_SIM_CHECK(
      std::find(names.begin(), names.end(), job.bench) != names.end(),
      "prepare", "unknown benchmark: " + job.bench);
  workloads::WorkloadParams params;
  params.num_records =
      job.options.records != 0
          ? job.options.records
          : records_for(job.bench, job.options.cfg, job.options.rows);
  params.seed = job.options.seed;
  params.record_barrier = job.options.record_barrier;
  workloads::Workload workload = workloads::make_bmla(job.bench, params);
  arch::PreparedInput input =
      arch::prepare_input(job.options.cfg, workload, job.options.seed);
  return std::make_shared<const PreparedJob>(
      PreparedJob{std::move(workload), std::move(input)});
}

PrepareCache::PrepareCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

PreparedJobPtr PrepareCache::get(const MatrixJob& job, bool* hit) {
  const std::string key = prepare_key(job);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      return it->second->value;
    }
  }
  // Prepare outside the lock: assembly + generation + reference are the
  // expensive part, and a concurrent miss on another key must not serialize
  // behind it. Two concurrent misses on the SAME key both prepare; the
  // results are identical, the first insert wins.
  PreparedJobPtr value = prepare_job(job);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  if (hit != nullptr) *hit = false;
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second->value;  // lost the race
  lru_.push_front(Entry{key, value});
  index_[key] = lru_.begin();
  stats_.image_bytes += value->input.image.size();
  while (lru_.size() > max_entries_) {
    const Entry& victim = lru_.back();
    stats_.image_bytes -= victim.value->input.image.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  return value;
}

PrepareCacheStats PrepareCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PrepareCacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

void PrepareCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.image_bytes = 0;
}

}  // namespace mlp::sim
