#pragma once
// Mid-run checkpoint format and component contract (ROADMAP item 5). A
// snapshot is a versioned binary blob — "MLPSNAP" header, then per-component
// sections of (u32 id, u64 length, payload) — capturing the complete
// architectural and micro-architectural state of a simulation at a QUIESCENT
// compute-clock edge, so a fresh process can reconstruct the machine and
// finish the run with every counter, trace event and result byte identical
// to the uninterrupted run.
//
// Quiescence is the load-bearing invariant: component wake-ups are arbitrary
// std::function closures and cannot be serialized, so the kernel only
// captures at a step-loop top where no callback is outstanding anywhere —
// every context runnable or halted (none kWaitMem), no warp waiting on a
// fill, MSHRs and issue queues empty, the memory controller idle. Each
// Snapshottable reports its own quiescence; the kernel scans from the
// requested cycle to the first edge where all agree (sim/kernel.hpp).
//
// Unknown or malformed sections are a typed SimError("snapshot"), never a
// crash: snapshots cross protocol boundaries (mlpserved snapshot/restore
// verbs) and version skew must fail cleanly.
//
// Everything here is header-only so the component libraries (mem, core,
// millipede, gpgpu) can implement the contract without linking mlp_sim.

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "mem/dram_image.hpp"

namespace mlp::sim {

inline constexpr char kSnapshotMagic[8] = {'M', 'L', 'P', 'S',
                                           'N', 'A', 'P', '\0'};
/// Version history:
///  1  initial format;
///  2  kSecController gained per-bank access streaks and per-rank refresh
///     cursors (next_due, postponement debt), framed per channel, and the
///     fork key gained the dch/drk/dmap/dpp/dref DRAM-hierarchy entries.
inline constexpr u32 kSnapshotVersion = 2;

/// Section ids. Low ids are singleton kernel-level sections; component
/// ranges are BASE + instance so per-core components stay distinct.
enum SnapshotSectionId : u32 {
  kSecMeta = 1,          ///< always first: identity + geometry
  kSecKernel = 2,        ///< clocks, watchdog, fast-forward scan state
  kSecDramDelta = 3,     ///< DRAM image as RLE delta against the pristine image
  kSecController = 4,    ///< memory controller banks + fault-injector stream
  kSecStats = 5,         ///< always last: every StatSet counter by name
  kSecTraceSampler = 6,  ///< interval-sampler cursor (present iff traced)
  kSecSm = 16,           ///< GPGPU streaming multiprocessor
  kSecPrefetchBuffer = 17,
  kSecRateMatcher = 18,
  kSecBarrier = 19,         ///< record-barrier ablation state
  kSecSeqPrefetcher = 20,   ///< GPGPU sequential cache-block prefetcher
  kSecDecodeCache = 21,     ///< decoded-basic-block cache (decoded set)
  kSecCoreletBase = 64,     ///< + core index
  kSecL1Base = 256,         ///< + core index
  kSecL2Base = 512,         ///< + core index
  kSecStreamTableBase = 768 ///< + core index
};

/// Append-only little-endian section writer.
class SnapshotWriter {
 public:
  SnapshotWriter() {
    buf_.append(kSnapshotMagic, sizeof(kSnapshotMagic));
    put_u32(kSnapshotVersion);
  }

  void begin_section(u32 id) {
    MLP_CHECK(length_at_ == kNone, "nested snapshot section");
    put_u32(id);
    length_at_ = buf_.size();
    put_u64(0);  // patched by end_section
  }

  void end_section() {
    MLP_CHECK(length_at_ != kNone, "end_section without begin_section");
    const u64 length = buf_.size() - length_at_ - 8;
    for (u32 i = 0; i < 8; ++i) {
      buf_[length_at_ + i] = static_cast<char>((length >> (8 * i)) & 0xff);
    }
    length_at_ = kNone;
  }

  void put_u8(u8 v) { buf_.push_back(static_cast<char>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(u32 v) {
    for (u32 i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void put_u64(u64 v) {
    for (u32 i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void put_bytes(const void* data, u64 size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  void put_string(const std::string& s) {
    put_u64(s.size());
    buf_.append(s);
  }

  const std::string& blob() const {
    MLP_CHECK(length_at_ == kNone, "unterminated snapshot section");
    return buf_;
  }

 private:
  static constexpr u64 kNone = ~u64{0};
  std::string buf_;
  u64 length_at_ = kNone;
};

/// Bounded read cursor over one section's payload. Every overrun — and any
/// other format violation in this header — is SimError("snapshot").
class SnapshotCursor {
 public:
  SnapshotCursor() = default;
  SnapshotCursor(const u8* data, u64 size) : p_(data), end_(data + size) {}

  u8 get_u8() {
    need(1);
    return *p_++;
  }
  bool get_bool() { return get_u8() != 0; }
  u32 get_u32() {
    need(4);
    u32 v = 0;
    for (u32 i = 0; i < 4; ++i) v |= static_cast<u32>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  u64 get_u64() {
    need(8);
    u64 v = 0;
    for (u32 i = 0; i < 8; ++i) v |= static_cast<u64>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  void get_bytes(void* out, u64 size) {
    need(size);
    std::memcpy(out, p_, size);
    p_ += size;
  }
  std::string get_string() {
    const u64 size = get_u64();
    need(size);
    std::string s(reinterpret_cast<const char*>(p_), size);
    p_ += size;
    return s;
  }

  u64 remaining() const { return static_cast<u64>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  void need(u64 bytes) const {
    MLP_SIM_CHECK(static_cast<u64>(end_ - p_) >= bytes, "snapshot",
                  "truncated snapshot section");
  }

  const u8* p_ = nullptr;
  const u8* end_ = nullptr;
};

struct SnapshotSection {
  u32 id = 0;
  SnapshotCursor cursor;
};

/// Header validation + section iteration over a complete blob.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& blob) : blob_(&blob) {
    MLP_SIM_CHECK(blob.size() >= sizeof(kSnapshotMagic) + 4, "snapshot",
                  "snapshot blob shorter than its header");
    MLP_SIM_CHECK(
        std::memcmp(blob.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) == 0,
        "snapshot", "bad snapshot magic (not an MLPSNAP blob)");
    pos_ = sizeof(kSnapshotMagic);
    SnapshotCursor header(data() + pos_, 4);
    const u32 version = header.get_u32();
    MLP_SIM_CHECK(version == kSnapshotVersion, "snapshot",
                  "unsupported snapshot version " + std::to_string(version));
    pos_ += 4;
  }

  /// Advance to the next section; false at a clean end of blob.
  bool next(SnapshotSection* out) {
    if (pos_ == blob_->size()) return false;
    MLP_SIM_CHECK(blob_->size() - pos_ >= 12, "snapshot",
                  "truncated snapshot section header");
    SnapshotCursor head(data() + pos_, 12);
    out->id = head.get_u32();
    const u64 length = head.get_u64();
    pos_ += 12;
    MLP_SIM_CHECK(blob_->size() - pos_ >= length, "snapshot",
                  "snapshot section length exceeds the blob");
    out->cursor = SnapshotCursor(data() + pos_, length);
    pos_ += length;
    return true;
  }

 private:
  const u8* data() const {
    return reinterpret_cast<const u8*>(blob_->data());
  }

  const std::string* blob_;
  u64 pos_ = 0;
};

/// Contract implemented by every stateful component. save_state is only
/// invoked when quiescent() is true for EVERY registered component, so
/// implementations may assume (and should MLP_CHECK) that no wake-up
/// closures are outstanding.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void save_state(SnapshotWriter& w) const = 0;
  virtual void restore_state(SnapshotCursor& r) = 0;
  /// True when this component holds no unserializable in-flight state
  /// (outstanding callbacks, queued requests). Stateless-between-edges
  /// components keep the default.
  virtual bool quiescent() const { return true; }
};

/// Identity and geometry, always the blob's first section. Restore validates
/// it against the reconstructed machine before touching any component.
struct SnapshotMeta {
  u32 version = kSnapshotVersion;
  u64 cycle = 0;    ///< compute-domain ticks at capture
  u64 now_ps = 0;   ///< simulated time at capture
  std::string arch_label;
  u32 warp_width = 0;      ///< GPGPU/VWS chosen width; 0 elsewhere
  u64 image_bytes = 0;     ///< DRAM image size the delta applies to
  u64 fault_sequence = 0;  ///< fault-injector transfers drawn (fork safety)

  void save(SnapshotWriter& w) const {
    w.put_u32(version);
    w.put_u64(cycle);
    w.put_u64(now_ps);
    w.put_string(arch_label);
    w.put_u32(warp_width);
    w.put_u64(image_bytes);
    w.put_u64(fault_sequence);
  }
  void restore(SnapshotCursor& r) {
    version = r.get_u32();
    cycle = r.get_u64();
    now_ps = r.get_u64();
    arch_label = r.get_string();
    warp_width = r.get_u32();
    image_bytes = r.get_u64();
    fault_sequence = r.get_u64();
  }
};

/// Peek a blob's meta section without reconstructing a machine (systems read
/// the captured warp width before construction; the sweep forker reads the
/// fault sequence for its safety check).
inline SnapshotMeta snapshot_meta(const std::string& blob) {
  SnapshotReader reader(blob);
  SnapshotSection section;
  MLP_SIM_CHECK(reader.next(&section) && section.id == kSecMeta, "snapshot",
                "snapshot does not start with a meta section");
  SnapshotMeta meta;
  meta.restore(section.cursor);
  return meta;
}

/// Checkpoint intent threaded through run_arch into the kernel. Exactly one
/// of capture/restore may be set per run; capture is non-invasive (the run
/// continues and finishes identically).
struct SnapshotPlan {
  /// Capture at the first quiescent step-loop top at or >= checkpoint_at
  /// compute cycles. If the run finishes first, no snapshot is taken
  /// (captured_ok stays false) — a graceful miss, not an error.
  bool capture = false;
  u64 checkpoint_at = 0;
  /// Restore this blob into the freshly-constructed machine, then run to
  /// completion. The caller keeps ownership of the string.
  const std::string* restore_from = nullptr;

  // Capture outputs.
  bool captured_ok = false;
  u64 captured_cycle = 0;
  std::string captured;
};

/// The DRAM image serialized as a delta against the PreparedJob's pristine
/// image (functional stores and no-ECC fault flips are sparse, so warm
/// snapshots stay small). Registered with the kernel as section kSecDramDelta
/// and captured AT quiesce time like any other component.
class DramImageDelta : public Snapshottable {
 public:
  DramImageDelta(mem::DramImage* live, const mem::DramImage* pristine)
      : live_(live), pristine_(pristine) {
    MLP_CHECK(live_->size() == pristine_->size(),
              "delta images must have one size");
  }

  void save_state(SnapshotWriter& w) const override {
    const u8* a = live_->raw().data();
    const u8* b = pristine_->raw().data();
    const u64 n = live_->size();
    w.put_u64(n);
    u64 runs = 0;
    // Two passes keep the writer simple (no nested patching): count, emit.
    for (u64 i = 0; i < n;) {
      if (a[i] == b[i]) {
        ++i;
        continue;
      }
      u64 j = i;
      while (j < n && a[j] != b[j]) ++j;
      ++runs;
      i = j;
    }
    w.put_u64(runs);
    for (u64 i = 0; i < n;) {
      if (a[i] == b[i]) {
        ++i;
        continue;
      }
      u64 j = i;
      while (j < n && a[j] != b[j]) ++j;
      w.put_u64(i);
      w.put_u64(j - i);
      w.put_bytes(a + i, j - i);
      i = j;
    }
  }

  void restore_state(SnapshotCursor& r) override {
    const u64 n = r.get_u64();
    MLP_SIM_CHECK(n == live_->size(), "snapshot",
                  "snapshot image size does not match the prepared image");
    // The live image starts pristine (freshly copied from the PreparedJob);
    // re-copy defensively so restore is idempotent, then patch the runs.
    live_->raw() = pristine_->raw();
    const u64 runs = r.get_u64();
    for (u64 k = 0; k < runs; ++k) {
      const u64 offset = r.get_u64();
      const u64 length = r.get_u64();
      MLP_SIM_CHECK(length > 0 && offset <= n && n - offset >= length,
                    "snapshot", "snapshot image delta run out of bounds");
      r.get_bytes(live_->raw().data() + offset, length);
    }
  }

 private:
  mem::DramImage* live_;
  const mem::DramImage* pristine_;
};

}  // namespace mlp::sim
