#pragma once
// Machine-readable reporting shared by the command-line tools (mlpsim,
// mlpsweep) and the schema tests: the sweep CSV (one row per grid point,
// config columns first, trailing `error` column so failed points stay in the
// table without corrupting it) and the `--stats-json` document exposing
// every registered counter of every run under a stable schema.

#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace mlp::sim {

/// Version stamp embedded in the stats-JSON document; bump when the schema
/// shape changes so downstream parsers can fail loudly. History:
///  1  initial schema;
///  2  decode.block_hits / decode.block_misses / decode.batched_lanes
///     counters joined every run's counter map (docs/ARCHITECTURE.md,
///     "Interpreter fast path");
///  3  channels / ranks / mapping / page_policy / refresh joined the config
///     object (and the sweep CSV grew the same five columns after `ecc`);
///     refresh-enabled runs add dram.refreshes / dram.refresh_stall_ps,
///     non-open page policies add dram.explicit_precharges, and multi-channel
///     runs add dram.ch<k>.bytes to the counter map (docs/ARCHITECTURE.md,
///     "DRAM timing model").
inline constexpr u32 kStatsJsonSchemaVersion = 3;

/// Header line (with trailing '\n') for the sweep CSV. The final column is
/// `error`: empty for successful points, the sanitized error message for
/// failed ones.
std::string sweep_csv_header();

/// One CSV row (with trailing '\n') for a matrix result. Failed points emit
/// their full configuration columns, empty metric cells, and the error text
/// with CSV-hostile characters (commas, quotes, newlines) replaced, so a
/// partially failed sweep still parses as a rectangular table.
std::string sweep_csv_row(const MatrixResult& run);

/// Effective record count of a job (explicit records or sized by rows).
u64 job_records(const MatrixJob& job);

/// The `--stats-json` document: schema_version + one entry per run carrying
/// the job configuration, the derived metrics, and EVERY registered counter
/// (sorted by name — the StatSet snapshot order). Deterministic: identical
/// runs produce byte-identical documents.
std::string stats_json(const std::vector<MatrixResult>& runs);

/// One run's entry of the stats-JSON document, as a standalone JSON object.
/// The mlpserved daemon ships these to clients verbatim so a document
/// reassembled client-side is byte-identical to a local stats_json() call.
std::string stats_json_run(const MatrixResult& run);

/// Wrap pre-rendered run objects (stats_json_run output) into the full
/// schema_version-stamped document. stats_json(runs) ==
/// stats_json_document({stats_json_run(r)...}) byte for byte.
std::string stats_json_document(const std::vector<std::string>& run_objects);

/// Same, with one extra raw member appended after "runs" (e.g. mlpsweep's
/// opt-in "fleet" health footer). An empty `footer_key` omits the member,
/// reproducing the plain document byte for byte.
std::string stats_json_document(const std::vector<std::string>& run_objects,
                                const std::string& footer_key,
                                const std::string& footer_object);

}  // namespace mlp::sim
