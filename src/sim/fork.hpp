#pragma once
// Warm-snapshot forking for sweep grids (mlpsweep --fork-at) and the
// mlpserved snapshot cache. Sweep points that differ ONLY in fault-injection
// rates share a bit-identical warmup: the machine state at a quiescent cycle
// N is independent of the fault configuration as long as no fault fired in
// the first N cycles under either configuration — which FaultInjector's
// deterministic draw stream lets us prove without simulating
// (FaultInjector::transfer_clean). run_matrix_forked simulates each group's
// warmup ONCE in a leader run that captures a snapshot at cycle N, then
// restores the divergent members from the warm blob. Results are merged in
// submission order and are byte-identical to an unforked run (enforced by
// snapshot_test and the CI checkpoint-equivalence step); only the simulated
// warmup cycles are saved.

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/runner.hpp"

namespace mlp::sim {

/// Groups jobs whose runs are identical up to any cycle where no fault has
/// fired: every protocol-visible knob EXCEPT the fault rates (bit flip,
/// delay, drop) — plus whether fault injection is wired at all, since the
/// snapshot records the injector's draw sequence. Jobs with equal keys may
/// share a warm snapshot when the fault streams check out clean.
std::string fork_key(const MatrixJob& job);

/// True when `member` can be restored from a snapshot `leader` captured:
/// same fork key, and no fault draw among the `fault_sequence` transfers the
/// leader consumed before capture would have fired under EITHER config (a
/// conservative per-transfer bound of one DRAM row). Unsafe members simply
/// run in full — correctness never depends on this predicate.
bool fork_safe(const MatrixJob& leader, const MatrixJob& member,
               u64 fault_sequence);

/// What forking saved and skipped (reported by mlpsweep to stderr and into
/// the stats-JSON "fork" footer under --fleet-stats).
struct ForkStats {
  u64 groups = 0;         ///< multi-point groups that captured a snapshot
  u64 forked_points = 0;  ///< members restored from a warm snapshot
  u64 unsafe_points = 0;  ///< members that ran in full (dirty fault stream,
                          ///< leader miss/failure, or traced point)
  u64 warmup_cycles_saved = 0;  ///< sum of captured cycles skipped
};

/// run_matrix with warm-snapshot forking: group `jobs` by fork_key, run each
/// multi-point group's first job as a capturing leader (checkpoint at the
/// first quiescent cycle >= fork_at), then restore the remaining members
/// from the leader's blob. Singleton groups, traced jobs and unsafe members
/// run exactly as run_matrix would. Results are in submission order,
/// byte-identical to run_matrix for any thread count.
std::vector<MatrixResult> run_matrix_forked(const std::vector<MatrixJob>& jobs,
                                            u64 fork_at, u32 threads = 0,
                                            PrepareCache* cache = nullptr,
                                            ForkStats* fork_stats = nullptr);

/// Thread-safe LRU cache of captured snapshot blobs, keyed by
/// (prepare key, architecture, requested checkpoint cycle) — the mlpserved
/// `snapshot`/`restore` verbs. Blobs are shared_ptr so a restore can run
/// against an entry concurrently evicted by a later capture.
class SnapshotCache {
 public:
  explicit SnapshotCache(std::size_t max_entries = kDefaultEntries);

  struct Entry {
    std::string blob;
    u64 captured_cycle = 0;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  void put(const std::string& key, std::string blob, u64 captured_cycle);
  /// nullptr on miss.
  EntryPtr get(const std::string& key);

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 entries = 0;
    u64 blob_bytes = 0;
  };
  Stats stats() const;

  static constexpr std::size_t kDefaultEntries = 16;

 private:
  struct Node {
    std::string key;
    EntryPtr value;
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  Stats stats_;
};

}  // namespace mlp::sim
