#include "sim/pool.hpp"

#include <algorithm>

namespace mlp::sim {

u32 ThreadPool::default_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(u32 threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (u32 i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MLP_CHECK(!stop_, "submit on a stopped pool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions are captured into the future
  }
}

}  // namespace mlp::sim
