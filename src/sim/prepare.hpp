#pragma once
// Memoizable job preparation: everything about a simulation job that does
// NOT depend on the architecture that will run it — the assembled kernel
// binary, the generated record set materialized in the initial DramImage,
// the interleaved layout, and the host golden verification reference. A
// 4-architecture x 8-benchmark matrix shares one PreparedJob per benchmark
// instead of assembling and generating 32 times; the mlpserved daemon keeps
// these warm across whole client sessions in an LRU-bounded PrepareCache.
//
// Sharing is safe because runs never mutate a PreparedJob: run_arch copies
// the prepared input (the controller attaches to — and no-ECC fault
// injection corrupts — the copy), and the Workload's closures only read
// their captured state.

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/runner.hpp"

namespace mlp::sim {

/// The architecture-independent artifacts of one job, produced once and
/// shared (read-only) by every run with an equivalent preparation key.
struct PreparedJob {
  workloads::Workload workload;  ///< assembled program + generators + schema
  arch::PreparedInput input;     ///< layout + pristine image + golden ref
};

using PreparedJobPtr = std::shared_ptr<const PreparedJob>;

/// Canonical cache key: exactly the fields preparation reads — benchmark,
/// effective record count (explicit or sized by rows), generation seed, the
/// record-barrier ablation (compiled into the kernel), and the layout
/// geometry (DRAM row bytes + slab-interleaving switch). Deliberately NOT
/// keyed on the architecture or any timing parameter.
std::string prepare_key(const MatrixJob& job);

/// Process- and platform-independent 64-bit FNV-1a hash. Multi-node sweep
/// sharding hashes prepare keys with this (NOT std::hash, whose value is
/// implementation-defined), so job→node assignment is stable across runs,
/// builds and machines — the property that keeps each node's PrepareCache
/// hot over repeated grids.
u64 stable_hash64(const std::string& text);

/// Build the job's artifacts (uncached). Throws SimError for preparation
/// failures (unknown benchmark, slab layout on a non-power-of-two record
/// width, ...); callers at the run_job boundary convert those into per-job
/// errors.
PreparedJobPtr prepare_job(const MatrixJob& job);

/// Point-in-time counters of a PrepareCache (exposed through the mlpserved
/// `status` response and the tools' --cache-stats reporting).
struct PrepareCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 entries = 0;
  u64 image_bytes = 0;  ///< total pristine-image bytes held
};

/// Thread-safe LRU-bounded memoization of prepare_job. Concurrent misses on
/// the same key may both prepare (the results are identical by construction;
/// the first insert wins and the loser's copy is dropped) — simple, and
/// correct because preparation is deterministic.
class PrepareCache {
 public:
  explicit PrepareCache(std::size_t max_entries = kDefaultEntries);

  /// Memoized prepare_job. `hit` (optional) reports whether the entry was
  /// already warm — the mlpserved per-job cache-hit flag.
  PreparedJobPtr get(const MatrixJob& job, bool* hit = nullptr);

  PrepareCacheStats stats() const;
  void clear();

  static constexpr std::size_t kDefaultEntries = 64;

 private:
  struct Entry {
    std::string key;
    PreparedJobPtr value;
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PrepareCacheStats stats_;
};

}  // namespace mlp::sim
