#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>

#include "trace/json.hpp"

namespace mlp::sim {

namespace {

u64 stat_or_zero(const arch::RunResult& r, const char* key) {
  const auto it = r.stats.find(key);
  return it == r.stats.end() ? u64{0} : it->second;
}

/// Error messages can contain anything (diagnostics quote machine state);
/// strip the characters that would break the one-row-per-point invariant.
std::string csv_sanitize(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == ',') {
      out.push_back(';');
    } else if (c == '"') {
      out.push_back('\'');
    } else if (c == '\n' || c == '\r') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// The architecture column: the model's own label when the run produced one
/// (distinguishes the Millipede ablations), the requested kind otherwise.
const char* arch_column(const MatrixResult& run) {
  return run.result.arch.empty() ? arch::arch_name(run.job.kind)
                                 : run.result.arch.c_str();
}

}  // namespace

u64 job_records(const MatrixJob& job) {
  if (job.options.records != 0) return job.options.records;
  // An unknown benchmark (already a per-job error) cannot be sized.
  const std::vector<std::string>& names = workloads::bmla_names();
  if (std::find(names.begin(), names.end(), job.bench) == names.end()) {
    return 0;
  }
  return records_for(job.bench, job.options.cfg, job.options.rows);
}

std::string sweep_csv_header() {
  return "arch,bench,cores,pf_entries,bus_efficiency,rows,records,seed,"
         "fault_rate,ecc,channels,ranks,mapping,page_policy,refresh,"
         "runtime_us,cycles,insts,insts_per_word,clock_mhz,"
         "core_uj,dram_uj,leak_uj,row_miss_rate,ecc_corrected,ecc_detected,"
         "fault_retries,error\n";
}

std::string sweep_csv_row(const MatrixResult& run) {
  const SuiteOptions& o = run.job.options;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s,%s,%u,%u,%.3f,%llu,%llu,%llu,%g,%d,%u,%u,%s,%s,%s,",
                arch_column(run), run.job.bench.c_str(), o.cfg.core.cores,
                o.cfg.millipede.pf_entries, o.cfg.dram.bus_efficiency,
                static_cast<unsigned long long>(o.rows),
                static_cast<unsigned long long>(job_records(run.job)),
                static_cast<unsigned long long>(o.seed),
                o.cfg.dram.fault.bit_flip_rate, o.cfg.dram.fault.ecc ? 1 : 0,
                o.cfg.dram.channels, o.cfg.dram.ranks,
                o.cfg.dram.mapping.c_str(), o.cfg.dram.page_policy.c_str(),
                o.cfg.dram.refresh.c_str());
  std::string row = buf;
  if (!run.ok()) {
    // 12 empty metric cells, then the error column.
    row += std::string(12, ',');
    row += csv_sanitize(run.error);
    row += '\n';
    return row;
  }
  const arch::RunResult& r = run.result;
  std::snprintf(buf, sizeof(buf),
                "%.3f,%llu,%llu,%.2f,%.0f,%.3f,%.3f,%.3f,%.4f,%llu,%llu,%llu",
                static_cast<double>(r.runtime_ps) / 1e6,
                static_cast<unsigned long long>(r.compute_cycles),
                static_cast<unsigned long long>(r.thread_instructions),
                r.insts_per_word, r.final_clock_mhz, r.energy.core_j * 1e6,
                r.energy.dram_j * 1e6, r.energy.leak_j * 1e6, r.row_miss_rate,
                static_cast<unsigned long long>(
                    stat_or_zero(r, "dram.ecc_corrected")),
                static_cast<unsigned long long>(
                    stat_or_zero(r, "dram.ecc_detected")),
                static_cast<unsigned long long>(
                    stat_or_zero(r, "dram.fault_retries")));
  row += buf;
  row += ",\n";  // empty error column
  return row;
}

std::string stats_json_run(const MatrixResult& run) {
  const SuiteOptions& o = run.job.options;
  trace::JsonWriter w;
  w.begin_object();
  w.key("arch");
  w.value(std::string(arch_column(run)));
  w.key("bench");
  w.value(run.job.bench);
  w.key("tag");
  w.value(run.job.tag);
  w.key("ok");
  w.value(run.ok());
  w.key("error");
  w.value(run.error);
  w.key("config");
  w.begin_object();
  w.key("cores");
  w.value(o.cfg.core.cores);
  w.key("pf_entries");
  w.value(o.cfg.millipede.pf_entries);
  w.key("bus_efficiency");
  w.value(o.cfg.dram.bus_efficiency);
  w.key("rows");
  w.value(o.rows);
  w.key("records");
  w.value(job_records(run.job));
  w.key("seed");
  w.value(o.seed);
  w.key("record_barrier");
  w.value(o.record_barrier);
  w.key("fault_rate");
  w.value(o.cfg.dram.fault.bit_flip_rate);
  w.key("ecc");
  w.value(o.cfg.dram.fault.ecc);
  w.key("channels");
  w.value(o.cfg.dram.channels);
  w.key("ranks");
  w.value(o.cfg.dram.ranks);
  w.key("mapping");
  w.value(o.cfg.dram.mapping);
  w.key("page_policy");
  w.value(o.cfg.dram.page_policy);
  w.key("refresh");
  w.value(o.cfg.dram.refresh);
  w.end_object();
  if (run.ok()) {
    const arch::RunResult& r = run.result;
    w.key("metrics");
    w.begin_object();
    w.key("runtime_ps");
    w.value(static_cast<u64>(r.runtime_ps));
    w.key("compute_cycles");
    w.value(r.compute_cycles);
    w.key("thread_instructions");
    w.value(r.thread_instructions);
    w.key("input_words");
    w.value(r.input_words);
    w.key("insts_per_word");
    w.value(r.insts_per_word);
    w.key("branches_per_inst");
    w.value(r.branches_per_inst);
    w.key("row_miss_rate");
    w.value(r.row_miss_rate);
    w.key("final_clock_mhz");
    w.value(r.final_clock_mhz);
    w.key("warp_width");
    w.value(r.warp_width);
    w.key("core_j");
    w.value(r.energy.core_j);
    w.key("dram_j");
    w.value(r.energy.dram_j);
    w.key("leak_j");
    w.value(r.energy.leak_j);
    w.key("total_j");
    w.value(r.energy.total_j());
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : r.stats) {  // std::map: sorted names
      w.key(name);
      w.value(value);
    }
    w.end_object();
  }
  if (!run.trace_files.empty()) {
    w.key("trace_files");
    w.begin_array();
    for (const std::string& path : run.trace_files) w.value(path);
    w.end_array();
  }
  w.end_object();
  return w.take();
}

std::string stats_json_document(const std::vector<std::string>& run_objects) {
  return stats_json_document(run_objects, "", "");
}

std::string stats_json_document(const std::vector<std::string>& run_objects,
                                const std::string& footer_key,
                                const std::string& footer_object) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema_version");
  w.value(kStatsJsonSchemaVersion);
  w.key("runs");
  w.begin_array();
  for (const std::string& object : run_objects) {
    w.newline();
    w.raw(object);
  }
  w.end_array();
  if (!footer_key.empty()) {
    w.key(footer_key);
    w.raw(footer_object);
  }
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

std::string stats_json(const std::vector<MatrixResult>& runs) {
  std::vector<std::string> objects;
  objects.reserve(runs.size());
  for (const MatrixResult& run : runs) objects.push_back(stats_json_run(run));
  return stats_json_document(objects);
}

}  // namespace mlp::sim
