// Warm-snapshot forking (sim/fork.hpp): fork-key grouping, the provable
// fault-stream safety predicate, the two-phase forked matrix runner, and the
// mlpserved snapshot blob cache.

#include "sim/fork.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <unordered_map>

#include "mem/fault.hpp"
#include "sim/pool.hpp"
#include "sim/prepare.hpp"
#include "sim/snapshot.hpp"

namespace mlp::sim {

namespace {

void append_kv(std::string& out, const char* name, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "|%s%.17g", name, value);
  out += buf;
}

void append_kv(std::string& out, const char* name, u64 value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "|%s%llu", name,
                static_cast<unsigned long long>(value));
  out += buf;
}

void append_kv(std::string& out, const char* name, bool value) {
  out += '|';
  out += name;
  out += value ? '1' : '0';
}

void append_kv(std::string& out, const char* name, const std::string& value) {
  out += '|';
  out += name;
  out += value;
}

}  // namespace

std::string fork_key(const MatrixJob& job) {
  const MachineConfig& c = job.options.cfg;
  // arch + preparation identity (bench, effective records, data seed,
  // record-barrier, row geometry, slab layout)...
  std::string key = std::string(arch::arch_name(job.kind)) + "|" +
                    prepare_key(job);
  // ...then EVERY remaining knob that shapes the run, except the three
  // fault-firing rates — those are exactly what forked points diverge in.
  // The injector's presence bit stays: a snapshot records the draw-sequence
  // cursor, so a no-injector machine cannot restore an injector one.
  const FaultConfig& f = c.dram.fault;
  append_kv(key, "fen", f.enabled());
  append_kv(key, "fdc", u64{f.delay_cycles});
  append_kv(key, "fs", f.seed);
  append_kv(key, "fecc", f.ecc);
  append_kv(key, "fmr", u64{f.max_retries});
  append_kv(key, "drb", u64{c.dram.row_bytes});
  append_kv(key, "dbk", u64{c.dram.banks});
  append_kv(key, "dmhz", c.dram.channel_mhz);
  append_kv(key, "dcb", u64{c.dram.channel_bits});
  append_kv(key, "dcas", u64{c.dram.t_cas});
  append_kv(key, "drp", u64{c.dram.t_rp});
  append_kv(key, "drcd", u64{c.dram.t_rcd});
  append_kv(key, "dras", u64{c.dram.t_ras});
  append_kv(key, "dqd", u64{c.dram.queue_depth});
  append_kv(key, "dbe", c.dram.bus_efficiency);
  append_kv(key, "dch", u64{c.dram.channels});
  append_kv(key, "drk", u64{c.dram.ranks});
  append_kv(key, "dmap", c.dram.mapping);
  append_kv(key, "dpp", c.dram.page_policy);
  append_kv(key, "dref", c.dram.refresh);
  append_kv(key, "cmhz", c.core.clock_mhz);
  append_kv(key, "cc", u64{c.core.cores});
  append_kv(key, "cx", u64{c.core.contexts});
  append_kv(key, "cr", u64{c.core.regs});
  append_kv(key, "cic", u64{c.core.icache_bytes});
  append_kv(key, "clm", u64{c.core.local_mem_bytes});
  append_kv(key, "cll", u64{c.core.local_latency});
  append_kv(key, "cbp", u64{c.core.branch_penalty});
  append_kv(key, "mpf", u64{c.millipede.pf_entries});
  append_kv(key, "mpr", u64{c.millipede.prime_rows});
  append_kv(key, "mfc", c.millipede.flow_control);
  append_kv(key, "mrm", c.millipede.rate_match);
  append_kv(key, "mrs", c.millipede.rate_step);
  append_kv(key, "mmc", c.millipede.min_clock_mhz);
  append_kv(key, "mhl", u64{c.millipede.pb_hit_latency});
  append_kv(key, "mrw", u64{c.millipede.rate_window});
  append_kv(key, "musw", c.millipede.unsafe_skip_window_check);
  append_kv(key, "mvs", c.millipede.voltage_scaling);
  append_kv(key, "mmv", c.millipede.min_voltage_ratio);
  append_kv(key, "gww", u64{c.gpgpu.warp_width});
  append_kv(key, "gvws", c.gpgpu.vws);
  append_kv(key, "gro", c.gpgpu.row_oriented);
  append_kv(key, "gl1", u64{c.gpgpu.l1d_bytes});
  append_kv(key, "glb", u64{c.gpgpu.line_bytes});
  append_kv(key, "gla", u64{c.gpgpu.l1d_assoc});
  append_kv(key, "gm", u64{c.gpgpu.mshrs});
  append_kv(key, "gsm", u64{c.gpgpu.shared_mem_bytes});
  append_kv(key, "gsb", u64{c.gpgpu.shared_banks});
  append_kv(key, "ghl", u64{c.gpgpu.l1_hit_latency});
  append_kv(key, "gsl", u64{c.gpgpu.shared_latency});
  append_kv(key, "gdp", u64{c.gpgpu.divergence_penalty});
  append_kv(key, "gpd", u64{c.gpgpu.prefetch_degree});
  append_kv(key, "gpx", u64{c.gpgpu.prefetch_distance});
  append_kv(key, "gps", u64{c.gpgpu.prefetch_streams});
  append_kv(key, "gsma", c.gpgpu.slab_mapping_ablation);
  append_kv(key, "sl1", u64{c.ssmc.l1d_bytes});
  append_kv(key, "slb", u64{c.ssmc.line_bytes});
  append_kv(key, "sa", u64{c.ssmc.assoc});
  append_kv(key, "sm", u64{c.ssmc.mshrs});
  append_kv(key, "shl", u64{c.ssmc.hit_latency});
  append_kv(key, "spd", u64{c.ssmc.prefetch_degree});
  append_kv(key, "spx", u64{c.ssmc.prefetch_distance});
  append_kv(key, "sps", u64{c.ssmc.prefetch_streams});
  append_kv(key, "uc", u64{c.multicore.cores});
  append_kv(key, "us", u64{c.multicore.smt});
  append_kv(key, "uiw", u64{c.multicore.issue_width});
  append_kv(key, "umhz", c.multicore.clock_mhz);
  append_kv(key, "ul1", u64{c.multicore.l1_bytes});
  append_kv(key, "ul1a", u64{c.multicore.l1_assoc});
  append_kv(key, "ul2", u64{c.multicore.l2_bytes});
  append_kv(key, "ul2a", u64{c.multicore.l2_assoc});
  append_kv(key, "ulb", u64{c.multicore.line_bytes});
  append_kv(key, "ul1l", u64{c.multicore.l1_latency});
  append_kv(key, "ul2l", u64{c.multicore.l2_latency});
  append_kv(key, "ubw", c.multicore.offchip_bw_fraction);
  append_kv(key, "upj", c.multicore.dram_pj_per_bit);
  append_kv(key, "wmc", c.watchdog.max_cycles);
  append_kv(key, "wsc", c.watchdog.stall_cycles);
  append_kv(key, "ww", c.watchdog.wall_ms);
  append_kv(key, "sl", c.slab_layout);
  append_kv(key, "ff", c.fast_forward);
  append_kv(key, "bc", c.block_cache);
  return key;
}

bool fork_safe(const MatrixJob& leader, const MatrixJob& member,
               u64 fault_sequence) {
  if (fork_key(leader) != fork_key(member)) return false;
  // Every transfer the leader's injector drew before capture must have been
  // clean — no flip, no delay, no drop — under BOTH fault configurations;
  // then the member's uninterrupted warmup is bit-identical to the leader's,
  // draw cursor included. One DRAM row bounds any transfer's size.
  const FaultConfig& a = leader.options.cfg.dram.fault;
  const FaultConfig& b = member.options.cfg.dram.fault;
  const u32 bound = leader.options.cfg.dram.row_bytes;
  for (u64 seq = 1; seq <= fault_sequence; ++seq) {
    if (!mem::FaultInjector::transfer_clean(a, seq, bound)) return false;
    if (!mem::FaultInjector::transfer_clean(b, seq, bound)) return false;
  }
  return true;
}

std::vector<MatrixResult> run_matrix_forked(const std::vector<MatrixJob>& jobs,
                                            u64 fork_at, u32 threads,
                                            PrepareCache* cache,
                                            ForkStats* fork_stats) {
  const std::size_t n = jobs.size();
  std::vector<MatrixResult> results(n);

  // Group by fork key. Traced jobs never fork: a restored member's trace
  // would lack the warmup events an unforked run records, breaking per-point
  // trace byte-identity. Unknown benchmarks can't compute a prepare key;
  // they run solo and fail in run_job exactly as run_matrix would fail them.
  const std::vector<std::string>& known = workloads::bmla_names();
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key;
    if (jobs[i].options.trace.enabled() ||
        std::find(known.begin(), known.end(), jobs[i].bench) == known.end()) {
      key = "!solo" + std::to_string(i);
    } else {
      key = fork_key(jobs[i]);
    }
    groups[key].push_back(i);
  }

  // Leaders capture; everyone else in phase 1 runs plain. group_of[i] points
  // members at their leader's plan.
  std::vector<SnapshotPlan> plans;
  std::vector<std::size_t> leader_of(n, n);  // member index -> leader index
  std::vector<std::size_t> plan_of(n, ~std::size_t{0});
  std::vector<std::size_t> phase1, phase2;
  for (auto& [key, bucket] : groups) {
    if (bucket.size() < 2) {
      phase1.push_back(bucket.front());
      continue;
    }
    const std::size_t leader = bucket.front();
    plans.emplace_back();
    plans.back().capture = true;
    plans.back().checkpoint_at = fork_at;
    const std::size_t plan_index = plans.size() - 1;
    plan_of[leader] = plan_index;
    phase1.push_back(leader);
    for (std::size_t k = 1; k < bucket.size(); ++k) {
      leader_of[bucket[k]] = leader;
      plan_of[bucket[k]] = plan_index;
      phase2.push_back(bucket[k]);
    }
  }
  std::sort(phase1.begin(), phase1.end());
  std::sort(phase2.begin(), phase2.end());

  ForkStats local;
  std::mutex stats_mutex;

  const auto run_one_phase1 = [&](std::size_t i) {
    SnapshotPlan* plan =
        plan_of[i] != ~std::size_t{0} ? &plans[plan_of[i]] : nullptr;
    results[i] = run_job(jobs[i], cache, nullptr, plan);
  };
  const auto run_one_phase2 = [&](std::size_t i) {
    const std::size_t leader = leader_of[i];
    const SnapshotPlan& plan = plans[plan_of[i]];
    bool restored = false;
    if (results[leader].ok() && plan.captured_ok &&
        fork_safe(jobs[leader], jobs[i],
                  snapshot_meta(plan.captured).fault_sequence)) {
      SnapshotPlan restore;
      restore.restore_from = &plan.captured;
      results[i] = run_job(jobs[i], cache, nullptr, &restore);
      // A restore failure is defensive-only: rerun in full so the merged
      // results stay byte-identical to an unforked matrix.
      restored = results[i].ok();
    }
    if (!restored) results[i] = run_job(jobs[i], cache);
    std::lock_guard<std::mutex> lock(stats_mutex);
    if (restored) {
      ++local.forked_points;
      local.warmup_cycles_saved += plan.captured_cycle;
    } else {
      ++local.unsafe_points;
    }
  };

  const auto run_phase = [&](const std::vector<std::size_t>& indices,
                             const auto& fn, ThreadPool* pool) {
    if (pool == nullptr) {
      for (const std::size_t i : indices) fn(i);
      return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(indices.size());
    for (const std::size_t i : indices) {
      pending.push_back(pool->submit([&fn, i] { fn(i); }));
    }
    for (std::future<void>& f : pending) f.get();
  };

  if (threads == 0) threads = ThreadPool::default_threads();
  threads = static_cast<u32>(
      std::min<std::size_t>(threads, std::max<std::size_t>(1, n)));
  if (threads <= 1) {
    run_phase(phase1, run_one_phase1, nullptr);
    run_phase(phase2, run_one_phase2, nullptr);
  } else {
    ThreadPool pool(threads);
    run_phase(phase1, run_one_phase1, &pool);
    run_phase(phase2, run_one_phase2, &pool);
  }

  for (const SnapshotPlan& plan : plans) {
    if (plan.captured_ok) ++local.groups;
  }
  if (fork_stats != nullptr) *fork_stats = local;
  return results;
}

SnapshotCache::SnapshotCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

void SnapshotCache::put(const std::string& key, std::string blob,
                        u64 captured_cycle) {
  auto value = std::make_shared<const Entry>(
      Entry{std::move(blob), captured_cycle});
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.blob_bytes -= it->second->value->blob.size();
    it->second->value = std::move(value);
    stats_.blob_bytes += it->second->value->blob.size();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(value)});
  index_[key] = lru_.begin();
  stats_.blob_bytes += lru_.front().value->blob.size();
  while (lru_.size() > max_entries_) {
    const Node& victim = lru_.back();
    stats_.blob_bytes -= victim.value->blob.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

SnapshotCache::EntryPtr SnapshotCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->value;
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace mlp::sim
