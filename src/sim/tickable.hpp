#pragma once
// The component interface of the shared simulation kernel. A Tickable is
// anything wired onto one of the kernel's two clock domains (corelets and
// the SM on the compute domain; prefetch buffer, caches and the memory
// controller on the DRAM-channel domain). Besides the per-edge tick, each
// component reports the earliest future time it could change state, which
// is what lets the kernel fast-forward both domains across globally idle
// gaps instead of polling every edge (sim/kernel.hpp).

#include "common/types.hpp"

namespace mlp::sim {

/// next_event() return value: this component cannot change state without
/// external stimulus (a callback fired by another component's tick).
inline constexpr Picos kNoEvent = ~Picos{0};

class Tickable {
 public:
  virtual ~Tickable() = default;

  /// One clock edge in this component's domain. `period_ps` is the domain's
  /// current period (the compute domain's may be retuned mid-run by DFS
  /// rate matching).
  virtual void tick(Picos now, Picos period_ps) = 0;

  /// Earliest picosecond (>= now) at which this component could change any
  /// observable state — counters, queues, trace events — on its own, or
  /// kNoEvent when it is entirely at the mercy of callbacks. The contract
  /// backing idle-gap fast-forward: a tick() at any time strictly before
  /// next_event(now), with no intervening external stimulus, must be a
  /// no-op except for the idle accounting that skip_idle() replicates.
  virtual Picos next_event(Picos now) const = 0;

  /// Bulk-account `edges` skipped idle edges of this component's domain.
  /// Must reproduce exactly what `edges` consecutive no-op tick() calls
  /// would have done to the component's counters (idle cycles, idle issue
  /// slots); components with no per-idle-edge accounting keep the no-op
  /// default.
  virtual void skip_idle(u64 edges) { (void)edges; }
};

}  // namespace mlp::sim
