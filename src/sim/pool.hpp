#pragma once
// A deliberately simple fixed-size thread pool (single shared FIFO queue, no
// work stealing): every simulation job is seconds-long, so queue contention
// is irrelevant and submission-order fairness is exactly what the matrix
// harness wants. Tasks are submitted through std::packaged_task, so a task
// that throws surfaces the exception at future.get() on the caller's thread
// instead of killing a worker.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace mlp::sim {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(u32 threads = 0);

  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  u32 size() const { return static_cast<u32>(workers_.size()); }

  /// One worker per hardware thread (at least one).
  static u32 default_threads();

  /// Enqueue `fn` and return a future for its result; exceptions thrown by
  /// `fn` are rethrown from future.get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task lives behind a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace mlp::sim
