#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mlp::sim {

u64 default_rows() {
  if (const char* env = std::getenv("MLP_BENCH_ROWS")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<u64>(value);
  }
  return 192;
}

u64 records_for(const std::string& bench, const MachineConfig& cfg) {
  if (const char* env = std::getenv("MLP_BENCH_RECORDS")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<u64>(value);
  }
  // Probe the workload's record width, then size by data volume.
  workloads::WorkloadParams probe;
  probe.num_records = 1;
  const u32 fields = workloads::make_bmla(bench, probe).fields;
  const u64 group_records = cfg.dram.row_bytes / 4;
  const u64 groups =
      std::max<u64>(1, default_rows() / fields);
  return groups * group_records;
}

arch::RunResult run_verified(arch::ArchKind kind, const std::string& bench,
                             const SuiteOptions& options) {
  workloads::WorkloadParams params;
  params.num_records = options.records != 0
                           ? options.records
                           : records_for(bench, options.cfg);
  params.seed = options.seed;
  const workloads::Workload workload = workloads::make_bmla(bench, params);
  arch::RunResult result = arch::run_arch(kind, options.cfg, workload,
                                          options.seed);
  if (!result.verification.empty()) {
    std::fprintf(stderr, "VERIFICATION FAILED %s/%s: %s\n",
                 result.arch.c_str(), bench.c_str(),
                 result.verification.c_str());
    std::abort();
  }
  return result;
}

std::vector<arch::RunResult> run_suite(arch::ArchKind kind,
                                       const SuiteOptions& options) {
  std::vector<arch::RunResult> results;
  for (const std::string& bench : workloads::bmla_names()) {
    results.push_back(run_verified(kind, bench, options));
  }
  return results;
}

double geomean(const std::vector<double>& values) {
  MLP_CHECK(!values.empty(), "geomean of nothing");
  double log_sum = 0.0;
  for (double v : values) {
    MLP_CHECK(v > 0.0, "geomean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mlp::sim
