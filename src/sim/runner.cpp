#include "sim/runner.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <future>
#include <optional>

#include "common/error.hpp"
#include "sim/pool.hpp"
#include "sim/prepare.hpp"

namespace mlp::sim {

namespace {

/// Tags come from arbitrary caller labels (sweep points); keep only
/// filesystem-safe characters so the trace path is valid on any platform.
std::string sanitize_component(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const bool safe = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '.' || c == '-' || c == '_';
    out.push_back(safe ? c : '_');
  }
  return out;
}

/// Write one trace artifact; a filesystem failure becomes the job's error
/// (unless the run already failed — the simulation error is the headline).
void write_trace_file(const std::filesystem::path& path,
                      const std::string& data, MatrixResult* out) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  file.close();
  if (!file) {
    if (out->error.empty()) {
      out->error = "failed to write trace file: " + path.string();
    }
    return;
  }
  out->trace_files.push_back(path.string());
}

/// Export every enabled artifact of a finished (or aborted) session. Runs in
/// pool threads: paths are derived purely from the job, so concurrent jobs
/// never write the same file as long as (kind, bench, tag) tuples are unique.
void export_trace(const trace::TraceSession& session, MatrixResult* out) {
  namespace fs = std::filesystem;
  const trace::TraceConfig& cfg = session.config();
  std::error_code ec;
  fs::create_directories(cfg.dir, ec);
  if (ec) {
    if (out->error.empty()) {
      out->error = "failed to create trace dir " + cfg.dir + ": " +
                   ec.message();
    }
    return;
  }
  const fs::path dir(cfg.dir);
  const std::string base = trace_basename(out->job);
  if (cfg.chrome_json) {
    write_trace_file(dir / (base + ".trace.json"),
                     session.chrome_trace_json(), out);
  }
  if (cfg.interval_cycles > 0) {
    write_trace_file(dir / (base + ".timeline.csv"), session.interval_csv(),
                     out);
  }
  if (cfg.ring_entries > 0) {
    write_trace_file(dir / (base + ".ring.bin"), session.binary_blob(), out);
  }
}

}  // namespace

std::string trace_basename(const MatrixJob& job) {
  std::string base = std::string(arch::arch_name(job.kind)) + "-" + job.bench;
  if (!job.tag.empty()) base += "-" + sanitize_component(job.tag);
  return base;
}

u64 records_for(const std::string& bench, const MachineConfig& cfg,
                u64 rows) {
  // Probe the workload's record width, then size by data volume.
  workloads::WorkloadParams probe;
  probe.num_records = 1;
  const u32 fields = workloads::make_bmla(bench, probe).fields;
  const u64 group_records = cfg.dram.row_bytes / 4;
  const u64 groups = std::max<u64>(1, rows / fields);
  return groups * group_records;
}

MatrixResult run_job(const MatrixJob& job, PrepareCache* cache,
                     bool* cache_hit, SnapshotPlan* snapshot) {
  MatrixResult out;
  out.job = job;
  if (cache_hit != nullptr) *cache_hit = false;
  const std::vector<std::string>& names = workloads::bmla_names();
  if (std::find(names.begin(), names.end(), job.bench) == names.end()) {
    out.error = "unknown benchmark: " + job.bench;
    return out;
  }
  std::optional<trace::TraceSession> session;
  if (job.options.trace.enabled()) session.emplace(job.options.trace);
  try {
    const PreparedJobPtr prepared =
        cache != nullptr ? cache->get(job, cache_hit) : prepare_job(job);
    out.result = arch::run_arch(job.kind, job.options.cfg,
                                prepared->workload, job.options.seed,
                                session ? &*session : nullptr,
                                &prepared->input, snapshot);
  } catch (const SimError& e) {
    out.error = e.what();
    out.diagnostic = e.diagnostic();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  if (out.error.empty() && !out.result.verification.empty()) {
    out.error = "verification failed: " + out.result.verification;
  }
  // Export even after a SimError: the partial trace of a watchdog trip or
  // uncorrectable fault is exactly what post-mortem needs.
  if (session) export_trace(*session, &out);
  return out;
}

std::vector<MatrixResult> run_matrix(const std::vector<MatrixJob>& jobs,
                                     u32 threads, PrepareCache* cache) {
  std::vector<MatrixResult> results(jobs.size());
  if (threads == 0) threads = ThreadPool::default_threads();
  threads = static_cast<u32>(std::min<std::size_t>(
      threads, std::max<std::size_t>(1, jobs.size())));
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_job(jobs[i], cache);
    }
    return results;
  }
  ThreadPool pool(threads);
  std::vector<std::future<void>> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pending.push_back(pool.submit(
        [&jobs, &results, cache, i] { results[i] = run_job(jobs[i], cache); }));
  }
  for (std::future<void>& f : pending) f.get();
  return results;
}

arch::RunResult run_verified(arch::ArchKind kind, const std::string& bench,
                             const SuiteOptions& options) {
  MatrixResult r = run_job({kind, bench, options, /*tag=*/""});
  if (!r.ok()) {
    std::fprintf(stderr, "RUN FAILED %s/%s: %s\n", arch::arch_name(kind),
                 bench.c_str(), r.error.c_str());
    std::abort();
  }
  return std::move(r.result);
}

std::vector<arch::RunResult> run_suite(arch::ArchKind kind,
                                       const SuiteOptions& options,
                                       u32 threads) {
  std::vector<MatrixJob> jobs;
  for (const std::string& bench : workloads::bmla_names()) {
    jobs.push_back({kind, bench, options, /*tag=*/""});
  }
  PrepareCache cache;  // suite-local: repeated benches share preparation
  std::vector<arch::RunResult> results;
  results.reserve(jobs.size());
  for (MatrixResult& r : run_matrix(jobs, threads, &cache)) {
    if (!r.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(r.job.kind), r.job.bench.c_str(),
                   r.error.c_str());
      std::abort();
    }
    results.push_back(std::move(r.result));
  }
  return results;
}

double geomean(const std::vector<double>& values) {
  MLP_CHECK(!values.empty(), "geomean of nothing");
  double log_sum = 0.0;
  for (double v : values) {
    MLP_CHECK(v > 0.0, "geomean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mlp::sim
