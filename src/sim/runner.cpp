#include "sim/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <future>

#include "common/error.hpp"
#include "sim/pool.hpp"

namespace mlp::sim {

u64 records_for(const std::string& bench, const MachineConfig& cfg,
                u64 rows) {
  // Probe the workload's record width, then size by data volume.
  workloads::WorkloadParams probe;
  probe.num_records = 1;
  const u32 fields = workloads::make_bmla(bench, probe).fields;
  const u64 group_records = cfg.dram.row_bytes / 4;
  const u64 groups = std::max<u64>(1, rows / fields);
  return groups * group_records;
}

MatrixResult run_job(const MatrixJob& job) {
  MatrixResult out;
  out.job = job;
  const std::vector<std::string>& names = workloads::bmla_names();
  if (std::find(names.begin(), names.end(), job.bench) == names.end()) {
    out.error = "unknown benchmark: " + job.bench;
    return out;
  }
  workloads::WorkloadParams params;
  params.num_records = job.options.records != 0
                           ? job.options.records
                           : records_for(job.bench, job.options.cfg,
                                         job.options.rows);
  params.seed = job.options.seed;
  params.record_barrier = job.options.record_barrier;
  try {
    const workloads::Workload workload = workloads::make_bmla(job.bench,
                                                              params);
    out.result = arch::run_arch(job.kind, job.options.cfg, workload,
                                job.options.seed);
  } catch (const SimError& e) {
    out.error = e.what();
    out.diagnostic = e.diagnostic();
    return out;
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }
  if (!out.result.verification.empty()) {
    out.error = "verification failed: " + out.result.verification;
  }
  return out;
}

std::vector<MatrixResult> run_matrix(const std::vector<MatrixJob>& jobs,
                                     u32 threads) {
  std::vector<MatrixResult> results(jobs.size());
  if (threads == 0) threads = ThreadPool::default_threads();
  threads = static_cast<u32>(std::min<std::size_t>(
      threads, std::max<std::size_t>(1, jobs.size())));
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_job(jobs[i]);
    }
    return results;
  }
  ThreadPool pool(threads);
  std::vector<std::future<void>> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pending.push_back(
        pool.submit([&jobs, &results, i] { results[i] = run_job(jobs[i]); }));
  }
  for (std::future<void>& f : pending) f.get();
  return results;
}

arch::RunResult run_verified(arch::ArchKind kind, const std::string& bench,
                             const SuiteOptions& options) {
  MatrixResult r = run_job({kind, bench, options, /*tag=*/""});
  if (!r.ok()) {
    std::fprintf(stderr, "RUN FAILED %s/%s: %s\n", arch::arch_name(kind),
                 bench.c_str(), r.error.c_str());
    std::abort();
  }
  return std::move(r.result);
}

std::vector<arch::RunResult> run_suite(arch::ArchKind kind,
                                       const SuiteOptions& options,
                                       u32 threads) {
  std::vector<MatrixJob> jobs;
  for (const std::string& bench : workloads::bmla_names()) {
    jobs.push_back({kind, bench, options, /*tag=*/""});
  }
  std::vector<arch::RunResult> results;
  results.reserve(jobs.size());
  for (MatrixResult& r : run_matrix(jobs, threads)) {
    if (!r.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(r.job.kind), r.job.bench.c_str(),
                   r.error.c_str());
      std::abort();
    }
    results.push_back(std::move(r.result));
  }
  return results;
}

double geomean(const std::vector<double>& values) {
  MLP_CHECK(!values.empty(), "geomean of nothing");
  double log_sum = 0.0;
  for (double v : values) {
    MLP_CHECK(v > 0.0, "geomean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mlp::sim
