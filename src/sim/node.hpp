#pragma once
// Node- and cluster-level scale model (Section IV-D): a node holds 32
// Millipede processors whose Maps + partial Reduces run independently (one
// is simulated; the rest are statistically identical); the host CPU performs
// the per-node Reduce over every corelet's live state, and the cluster's
// final Reduce combines the node results over the network. The paper argues
// communication support for the Reduce phases "may not be worth it" because
// Map dominates by orders of magnitude — this model reproduces that claim's
// arithmetic from measured per-record Map cost.

#include "arch/system.hpp"

namespace mlp::sim {

struct NodeScaleConfig {
  u32 processors_per_node = 32;  ///< Millipede processors on the node
  u64 node_records = 40'000'000; ///< "tens of millions of records" per node
  u32 cluster_nodes = 5000;      ///< cluster size in the paper's example
  /// Host CPU cost to fetch+accumulate one live-state word during the
  /// per-node Reduce (3.6 GHz host, cache-resident states).
  double host_ns_per_word = 1.0;
  /// Per-word cost of the cross-cluster shuffle + final Reduce (network
  /// serialization dominates).
  double network_ns_per_word = 100.0;
};

struct NodeScaleResult {
  std::string workload;
  u64 state_words = 0;          ///< partially-reduced output per corelet
  double map_seconds = 0.0;     ///< per-node Map + partial Reduce
  double node_reduce_seconds = 0.0;
  double cluster_reduce_seconds = 0.0;
  arch::RunResult processor_run;  ///< the simulated processor's detail

  double reduce_fraction() const {
    return node_reduce_seconds / map_seconds;
  }
};

/// Simulate one processor on a steady-state slice, then scale to the node
/// and cluster per NodeScaleConfig.
NodeScaleResult run_node_scale(const std::string& bench,
                               const MachineConfig& cfg,
                               const NodeScaleConfig& node);

}  // namespace mlp::sim
