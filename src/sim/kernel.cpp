#include "sim/kernel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mlp::sim {
namespace {

/// First edge of `clock`'s grid at or after `at` (the grid is anchored at
/// next_edge_ps and spaced by the current period; the period only changes
/// inside processed edges, never across a skipped gap).
Picos first_edge_at_or_after(const ClockDomain& clock, Picos at) {
  if (at == kNoEvent) return kNoEvent;
  const Picos edge = clock.next_edge_ps();
  if (at <= edge) return edge;
  const Picos period = clock.period_ps();
  return edge + (at - edge + period - 1) / period * period;
}

/// Number of `clock` edges strictly before `target`.
u64 edges_before(const ClockDomain& clock, Picos target) {
  const Picos edge = clock.next_edge_ps();
  if (target == kNoEvent || target <= edge) return 0;
  const Picos period = clock.period_ps();
  return static_cast<u64>((target - edge + period - 1) / period);
}

}  // namespace

SimulationKernel::SimulationKernel(const MachineConfig& cfg,
                                   std::string watchdog_arch,
                                   trace::TraceSession* trace)
    : compute_(cfg.core.period_ps()),
      channel_(cfg.dram.period_ps()),
      watchdog_cfg_(cfg.watchdog),
      watchdog_arch_(std::move(watchdog_arch)),
      channels_(cfg.dram.channels),
      ranks_(cfg.dram.ranks),
      banks_(cfg.dram.banks),
      fast_forward_(cfg.fast_forward),
      trace_(trace) {}

void SimulationKernel::wire_trace(
    const std::string& process_name, const StatSet* stats,
    const std::function<void(trace::TraceSession*)>& name_tracks,
    const std::function<void(trace::TraceSession*)>& arch_hook,
    std::function<u64()> dram_queue, std::function<u64()> dram_refresh) {
  if (trace_ == nullptr) return;
  trace_->begin_run(process_name, stats);
  if (name_tracks) name_tracks(trace_);
  // Bank tracks span the channel x rank x bank hierarchy; the default 1x1
  // hierarchy keeps the historical flat "dram.bank<b>" names.
  const bool flat = channels_ == 1 && ranks_ == 1;
  for (u32 c = 0; c < channels_; ++c) {
    for (u32 r = 0; r < ranks_; ++r) {
      for (u32 b = 0; b < banks_; ++b) {
        const u32 track =
            trace::kDramTrackBase + (c * ranks_ + r) * banks_ + b;
        trace_->set_track_name(
            track, flat ? "dram.bank" + std::to_string(b)
                        : "dram.c" + std::to_string(c) + ".r" +
                              std::to_string(r) + ".b" + std::to_string(b));
      }
    }
  }
  if (arch_hook) arch_hook(trace_);
  trace_->set_track_name(trace::kWatchdogTrack, "watchdog");
  if (dram_queue) trace_->add_gauge("dram.queue", std::move(dram_queue));
  if (dram_refresh) {
    trace_->add_gauge("dram.refresh", std::move(dram_refresh));
  }
  trace_->add_gauge("clock.period_ps",
                    [this] { return compute_.period_ps(); });
}

bool SimulationKernel::all_quiescent() const {
  for (const auto& [id, state] : states_) {
    if (!state->quiescent()) return false;
  }
  return true;
}

void SimulationKernel::capture(const Watchdog& watchdog) {
  SnapshotWriter w;

  SnapshotMeta meta;
  if (meta_fn_) meta_fn_(meta);
  meta.cycle = compute_.ticks();
  meta.now_ps = now_;
  w.begin_section(kSecMeta);
  meta.save(w);
  w.end_section();

  w.begin_section(kSecKernel);
  w.put_u64(compute_.period_ps());
  w.put_u64(compute_.next_edge_ps());
  w.put_u64(compute_.ticks());
  w.put_u64(channel_.period_ps());
  w.put_u64(channel_.next_edge_ps());
  w.put_u64(channel_.ticks());
  w.put_u64(now_);
  w.put_u64(flat_edges_);
  w.put_bool(scan_enabled_);
  w.put_u64(watchdog.iterations());
  w.put_u64(watchdog.stalled());
  w.put_u64(watchdog.last_progress());
  w.end_section();

  if (trace_ != nullptr) {
    const trace::TraceSession::SamplerState sampler = trace_->sampler_state();
    w.begin_section(kSecTraceSampler);
    w.put_u64(sampler.next_sample_cycle);
    w.put_u64(sampler.last_cycle);
    w.put_u64(sampler.last_counters.size());
    for (const u64 value : sampler.last_counters) w.put_u64(value);
    w.end_section();
  }

  for (const auto& [id, state] : states_) {
    w.begin_section(id);
    state->save_state(w);
    w.end_section();
  }

  // Counters LAST: restore then overwrites any restore-time side effects.
  if (stats_snapshot_ != nullptr) {
    w.begin_section(kSecStats);
    const auto snap = stats_snapshot_->snapshot();
    w.put_u64(snap.size());
    for (const auto& [name, value] : snap) {
      w.put_string(name);
      w.put_u64(value);
    }
    w.end_section();
  }

  plan_->captured = w.blob();
  plan_->captured_cycle = meta.cycle;
  plan_->captured_ok = true;
}

void SimulationKernel::restore(const std::string& blob) {
  SnapshotReader reader(blob);
  bool saw_meta = false;
  bool saw_kernel = false;
  bool saw_sampler = false;
  bool saw_stats = false;
  SnapshotSection section;
  while (reader.next(&section)) {
    SnapshotCursor& r = section.cursor;
    switch (section.id) {
      case kSecMeta: {
        MLP_SIM_CHECK(!saw_meta, "snapshot", "duplicate meta section");
        SnapshotMeta meta;
        meta.restore(r);
        if (meta_fn_) {
          SnapshotMeta expected;
          meta_fn_(expected);
          MLP_SIM_CHECK(meta.arch_label == expected.arch_label, "snapshot",
                        "snapshot architecture '" + meta.arch_label +
                            "' does not match this machine '" +
                            expected.arch_label + "'");
          MLP_SIM_CHECK(meta.warp_width == expected.warp_width, "snapshot",
                        "snapshot warp width does not match this machine");
          MLP_SIM_CHECK(meta.image_bytes == expected.image_bytes, "snapshot",
                        "snapshot image size does not match this machine");
        }
        saw_meta = true;
        break;
      }
      case kSecKernel: {
        MLP_SIM_CHECK(saw_meta, "snapshot", "kernel section before meta");
        // Named locals: argument evaluation order is unspecified.
        const Picos c_period = r.get_u64();
        const Picos c_edge = r.get_u64();
        const u64 c_ticks = r.get_u64();
        compute_.restore(c_period, c_edge, c_ticks);
        const Picos ch_period = r.get_u64();
        const Picos ch_edge = r.get_u64();
        const u64 ch_ticks = r.get_u64();
        channel_.restore(ch_period, ch_edge, ch_ticks);
        now_ = r.get_u64();
        flat_edges_ = r.get_u64();
        scan_enabled_ = r.get_bool();
        pending_wd_iterations_ = r.get_u64();
        pending_wd_stalled_ = r.get_u64();
        pending_wd_last_progress_ = r.get_u64();
        saw_kernel = true;
        break;
      }
      case kSecTraceSampler: {
        MLP_SIM_CHECK(trace_ != nullptr, "snapshot",
                      "snapshot was traced but this run has no trace session");
        trace::TraceSession::SamplerState sampler;
        sampler.next_sample_cycle = r.get_u64();
        sampler.last_cycle = r.get_u64();
        const u64 columns = r.get_u64();
        sampler.last_counters.reserve(columns);
        for (u64 i = 0; i < columns; ++i) {
          sampler.last_counters.push_back(r.get_u64());
        }
        trace_->restore_sampler(sampler);
        saw_sampler = true;
        break;
      }
      case kSecStats: {
        MLP_SIM_CHECK(stats_snapshot_ != nullptr, "snapshot",
                      "snapshot has counters but no StatSet is attached");
        const u64 count = r.get_u64();
        for (u64 i = 0; i < count; ++i) {
          const std::string name = r.get_string();
          const u64 value = r.get_u64();
          stats_snapshot_->set(name, value);
        }
        saw_stats = true;
        break;
      }
      default: {
        Snapshottable* target = nullptr;
        for (const auto& [id, state] : states_) {
          if (id == section.id) {
            target = state;
            break;
          }
        }
        MLP_SIM_CHECK(target != nullptr, "snapshot",
                      "unknown snapshot section id " +
                          std::to_string(section.id));
        target->restore_state(r);
        break;
      }
    }
    MLP_SIM_CHECK(r.done(), "snapshot",
                  "trailing bytes in snapshot section " +
                      std::to_string(section.id));
  }
  MLP_SIM_CHECK(saw_meta && saw_kernel, "snapshot",
                "snapshot is missing its meta/kernel sections");
  MLP_SIM_CHECK((trace_ != nullptr) == saw_sampler, "snapshot",
                "trace attachment does not match the snapshot");
  MLP_SIM_CHECK((stats_snapshot_ != nullptr) == saw_stats, "snapshot",
                "counter section presence does not match the snapshot");
  restored_ = true;
}

Picos SimulationKernel::run(const std::function<bool()>& done) {
  MLP_CHECK(progress_ != nullptr, "kernel needs a progress signature");
  Watchdog watchdog(watchdog_cfg_, watchdog_arch_, dump_, trace_);
  if (restored_) {
    watchdog.restore(pending_wd_iterations_, pending_wd_stalled_,
                     pending_wd_last_progress_);
  }
  const bool want_capture = plan_ != nullptr && plan_->capture;
  while (!done()) {
    if (want_capture && !plan_->captured_ok &&
        compute_.ticks() >= plan_->checkpoint_at && all_quiescent()) {
      capture(watchdog);
    }
    const u64 signature = progress_();
    watchdog.step(signature, now_);
    if (compute_.next_edge_ps() <= channel_.next_edge_ps()) {
      now_ = compute_.next_edge_ps();
      const Picos period = compute_.period_ps();
      if (compute_edge_hook_) compute_edge_hook_();
      for (Tickable* unit : compute_units_) unit->tick(now_, period);
      if (trace_ != nullptr) trace_->tick_compute(compute_.ticks(), now_);
      compute_.advance();
    } else {
      now_ = channel_.next_edge_ps();
      const Picos period = channel_.period_ps();
      for (Tickable* unit : channel_units_) unit->tick(now_, period);
      channel_.advance();
    }
    if (!fast_forward_) continue;
    if (progress_() != signature) {
      scan_enabled_ = true;  // progress may have broken a deadlock
      flat_edges_ = 0;
      continue;
    }
    // Hysteresis: a gap worth skipping is many edges long, so only pay for
    // an event scan once the signature has been flat for a few edges. Busy
    // phases (progress nearly every edge) then never scan at all.
    if (++flat_edges_ < kScanHysteresis) continue;
    if (scan_enabled_ && !try_fast_forward(&watchdog, signature)) {
      scan_enabled_ = false;
    }
  }
  if (trace_ != nullptr) trace_->finish_run(compute_.ticks(), now_);
  return now_;
}

bool SimulationKernel::try_fast_forward(Watchdog* watchdog, u64 signature) {
  // Earliest time any compute component could act...
  Picos compute_at = kNoEvent;
  const Picos compute_edge = compute_.next_edge_ps();
  for (const Tickable* unit : compute_units_) {
    compute_at = std::min(compute_at, unit->next_event(compute_edge));
  }
  // ... capped at the interval sampler's next sample edge, which must be
  // processed for real so the timeline keeps every row.
  if (trace_ != nullptr) {
    const u64 sample_cycle = trace_->next_sample_cycle();
    if (sample_cycle != ~u64{0}) {
      const u64 ticks = compute_.ticks();
      const Picos sample_at =
          sample_cycle <= ticks
              ? compute_edge
              : compute_edge + static_cast<Picos>(sample_cycle - ticks) *
                                   compute_.period_ps();
      compute_at = std::min(compute_at, sample_at);
    }
  }
  Picos channel_at = kNoEvent;
  const Picos channel_edge = channel_.next_edge_ps();
  for (const Tickable* unit : channel_units_) {
    channel_at = std::min(channel_at, unit->next_event(channel_edge));
  }

  // The first edge that must be processed for real. Every edge strictly
  // before it lies strictly before its own domain's earliest event, so its
  // tick would have been a no-op (the Tickable contract) — skip them all.
  const Picos target = std::min(first_edge_at_or_after(compute_, compute_at),
                                first_edge_at_or_after(channel_, channel_at));
  if (target == kNoEvent) return false;  // deadlock: poll to the trip

  const u64 skip_compute = edges_before(compute_, target);
  const u64 skip_channel = edges_before(channel_, target);
  const u64 total = skip_compute + skip_channel;
  // A zero-yield scan (an event sits on the very next edge — e.g. a corelet
  // retry-polling a full MSHR) would repeat every edge of the stall; stand
  // down until progress re-arms the scan. Which edges get skipped is pure
  // policy: results are identical either way, only wall-clock changes.
  if (total == 0) return false;
  // Never skip across a watchdog limit: the trip must fire from a real
  // step() at its exact iteration count (and trace timestamp).
  if (total >= watchdog->steps_until_trip(signature)) return true;

  // `now` at the resumed edge's step() is the last skipped edge's time,
  // exactly as if it had been polled.
  Picos last = now_;
  if (skip_compute > 0) {
    last = std::max(last, compute_edge + (skip_compute - 1) *
                                             compute_.period_ps());
  }
  if (skip_channel > 0) {
    last = std::max(last, channel_edge + (skip_channel - 1) *
                                             channel_.period_ps());
  }
  now_ = last;

  for (Tickable* unit : compute_units_) unit->skip_idle(skip_compute);
  compute_.advance_by(skip_compute);
  channel_.advance_by(skip_channel);
  watchdog->skip(total, signature);
  return true;
}

}  // namespace mlp::sim
