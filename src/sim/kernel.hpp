#pragma once
// The shared two-domain simulation kernel. Every architecture model wires
// its components (corelets or an SM on the compute domain; prefetch buffer,
// caches and the memory controller on the DRAM-channel domain) onto one
// SimulationKernel and calls run(); the kernel owns the step loop that the
// four *_system.cpp files used to hand-roll:
//
//  * two ClockDomains advanced in global time order (compute edge first on
//    ties), honoring mid-run compute retunes by Millipede's DFS rate
//    matcher (which holds a pointer to compute_clock());
//  * the forward-progress watchdog, stepped once per processed edge;
//  * trace wiring (process/track/gauge registration in the layout the
//    pre-kernel systems used), the interval sampler's tick_compute hook and
//    the closing finish_run;
//  * idle-cycle fast-forward: after an edge that made no progress, the
//    kernel asks every component for its next_event() and skips both
//    domains' edges up to the earliest one — bulk-accounting idle counters
//    (Tickable::skip_idle) and watchdog iterations (Watchdog::skip) so all
//    counters, trace events and timelines stay bit-identical to polling
//    every edge (MachineConfig::fast_forward / --no-fast-forward is the
//    A/B escape hatch; kernel_test and the CI equivalence step enforce it).

#include <functional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/watchdog.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::sim {

class SimulationKernel {
 public:
  /// `watchdog_arch` labels watchdog trips; `trace` may be null. The clock
  /// periods, watchdog limits, DRAM bank count (for trace track names) and
  /// the fast-forward switch all come from `cfg`.
  SimulationKernel(const MachineConfig& cfg, std::string watchdog_arch,
                   trace::TraceSession* trace);

  /// Registration order is tick order within a domain (the channel tick
  /// order is architecture-defined: e.g. prefetch buffer before the
  /// controller, L1s before L2s before the controller).
  void add_compute(Tickable* component) { compute_units_.push_back(component); }
  void add_channel(Tickable* component) { channel_units_.push_back(component); }

  /// The compute domain, for Millipede's rate matcher (DFS retunes the
  /// period mid-run) and for tests.
  ClockDomain* compute_clock() { return &compute_; }

  /// Lazy machine-state snapshot attached to a watchdog trip's SimError.
  void set_dump(std::function<std::string()> dump) { dump_ = std::move(dump); }

  /// Monotonic progress signature (instructions retired + DRAM bytes moved)
  /// feeding the watchdog; an edge that leaves it unchanged is what arms the
  /// fast-forward scan. Required before run().
  void set_progress(std::function<u64()> progress) {
    progress_ = std::move(progress);
  }

  /// Optional hook invoked once per PROCESSED compute edge, before the
  /// compute units tick (the decoded-block cache resets its convergence
  /// memo here). Fast-forwarded edges skip it by construction: a skipped
  /// edge issues nothing, so a memo reset there would be a no-op — which is
  /// why decode counters stay bit-identical across fast-forward modes.
  void set_compute_edge_hook(std::function<void()> hook) {
    compute_edge_hook_ = std::move(hook);
  }

  /// One-stop trace registration reproducing the pre-kernel per-arch layout:
  /// begin_run(process_name, stats), then `name_tracks` (per-context or
  /// per-warp tracks), the DRAM bank tracks (one per channel x rank x bank;
  /// the flat "dram.bank<b>" names when the hierarchy is 1x1), `arch_hook`
  /// (arch-specific tracks and gauges, e.g. pb/rate), the watchdog track,
  /// and finally the "dram.queue", optional "dram.refresh" (pass an empty
  /// function when refresh is off so default timelines keep their columns)
  /// and "clock.period_ps" gauges. No-op without a trace session; either
  /// hook may be empty.
  void wire_trace(const std::string& process_name, const StatSet* stats,
                  const std::function<void(trace::TraceSession*)>& name_tracks,
                  const std::function<void(trace::TraceSession*)>& arch_hook,
                  std::function<u64()> dram_queue,
                  std::function<u64()> dram_refresh = {});

  // ---- mid-run checkpoints (sim/snapshot.hpp) ----

  /// Register a stateful component's snapshot section. Registration order is
  /// capture order; `section_id` must be unique within one machine and
  /// stable across processes (it is the restore dispatch key).
  void add_state(u32 section_id, Snapshottable* state) {
    states_.emplace_back(section_id, state);
  }

  /// The machine's StatSet; the kernel writes every counter by name as the
  /// blob's LAST section, so restore applies counters after every
  /// component's restore_state (whose incidental side effects — e.g. the
  /// decode cache re-decoding its block set — are then overwritten).
  void set_stats(StatSet* stats) { stats_snapshot_ = stats; }

  /// Fills the identity/geometry half of SnapshotMeta (arch label, warp
  /// width, image size, fault sequence); the kernel owns cycle and time.
  /// Also the restore-side validator: a blob whose identity fields disagree
  /// with this machine is rejected with SimError("snapshot").
  void set_meta_fn(std::function<void(SnapshotMeta&)> fn) {
    meta_fn_ = std::move(fn);
  }

  /// Attach the run's checkpoint intent. With `plan->capture`, run() scans
  /// every step-loop top from `checkpoint_at` compute cycles onward and
  /// captures at the first where every registered component is quiescent —
  /// non-invasively: the run continues bit-identically. A run that finishes
  /// first simply leaves `captured_ok` false.
  void set_plan(SnapshotPlan* plan) { plan_ = plan; }

  /// Apply a captured blob to the freshly-constructed machine. Must be
  /// called after wire_trace (the sampler restore needs the counter columns)
  /// and before run(). Throws SimError("snapshot") on any mismatch.
  void restore(const std::string& blob);

  /// Runs until `done()` — typically "all corelets halted". Throws
  /// SimError (watchdog trip, memory-fault retry exhaustion, ...) with the
  /// trace left partially written, exactly like the old per-arch loops.
  /// Returns the final simulated time in picoseconds.
  Picos run(const std::function<bool()>& done);

  u64 compute_cycles() const { return compute_.ticks(); }
  double final_clock_mhz() const { return compute_.frequency_mhz(); }
  Picos now() const { return now_; }

 private:
  /// Attempt one idle-gap skip; returns false when every component in both
  /// domains reports kNoEvent (a deadlock — fall back to polling so the
  /// watchdog trips exactly as it would have).
  bool try_fast_forward(Watchdog* watchdog, u64 signature);

  bool all_quiescent() const;
  void capture(const Watchdog& watchdog);

  ClockDomain compute_;
  ClockDomain channel_;
  WatchdogConfig watchdog_cfg_;
  std::string watchdog_arch_;
  u32 channels_, ranks_, banks_;
  bool fast_forward_;
  trace::TraceSession* trace_;

  std::vector<Tickable*> compute_units_;
  std::vector<Tickable*> channel_units_;
  std::function<std::string()> dump_;
  std::function<u64()> progress_;
  std::function<void()> compute_edge_hook_;

  std::vector<std::pair<u32, Snapshottable*>> states_;
  StatSet* stats_snapshot_ = nullptr;
  std::function<void(SnapshotMeta&)> meta_fn_;
  SnapshotPlan* plan_ = nullptr;
  /// Watchdog state from restore(), applied when run() constructs its
  /// Watchdog (the watchdog is loop-local, not a kernel member).
  bool restored_ = false;
  u64 pending_wd_iterations_ = 0;
  u64 pending_wd_stalled_ = 0;
  u64 pending_wd_last_progress_ = 0;

  Picos now_ = 0;
  /// Consecutive edges with an unchanged progress signature; a scan only
  /// fires once this reaches kScanHysteresis, so busy phases never scan.
  u64 flat_edges_ = 0;
  /// Cleared when a scan yields nothing — both domains event-less (deadlock,
  /// poll to the watchdog trip) or an event on the very next edge (retry
  /// polling). Re-armed by progress.
  bool scan_enabled_ = true;

  /// Edges the signature must stay flat before an event scan pays for
  /// itself; a skippable gap is typically far longer than this.
  static constexpr u64 kScanHysteresis = 8;
};

}  // namespace mlp::sim
