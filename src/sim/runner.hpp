#pragma once
// Benchmark-harness conveniences: consistent workload sizing (overridable
// via the MLP_BENCH_RECORDS environment variable), suite execution, and
// verified runs (a run whose reduced result does not match the golden
// reference aborts the harness — bad timing models must not produce
// "results").

#include <vector>

#include "arch/system.hpp"

namespace mlp::sim {

struct SuiteOptions {
  u64 records = 0;  ///< 0 = default_records()
  u64 seed = 1;
  MachineConfig cfg = MachineConfig::paper_defaults();
};

/// Default sizing is by DATA VOLUME, not record count: each benchmark gets
/// enough records to fill `default_rows()` DRAM rows, so light 1-word
/// records (count) see as many rows — and as much rate-matching history —
/// as heavy 17-word ones (gda). The paper argues (Section V) that BMLAs are
/// behaviourally stationary, so modest inputs reach the same steady state
/// as its 128 MB runs; the ablation_input_size bench demonstrates this.
/// Overrides: MLP_BENCH_ROWS (volume) or MLP_BENCH_RECORDS (absolute).
u64 default_rows();

/// Records giving `default_rows()` of data for a benchmark (honours
/// MLP_BENCH_RECORDS when set).
u64 records_for(const std::string& bench, const MachineConfig& cfg);

/// Run one (architecture, benchmark) pair and abort if verification fails.
arch::RunResult run_verified(arch::ArchKind kind, const std::string& bench,
                             const SuiteOptions& options);

/// Run all eight BMLAs on one architecture.
std::vector<arch::RunResult> run_suite(arch::ArchKind kind,
                                       const SuiteOptions& options);

/// Geometric mean (the paper's summary statistic for Figs. 3/4).
double geomean(const std::vector<double>& values);

}  // namespace mlp::sim
