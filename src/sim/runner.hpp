#pragma once
// Benchmark-harness conveniences: consistent workload sizing, verified runs
// (a run whose reduced result does not match the golden reference aborts the
// harness — bad timing models must not produce "results"), and the parallel
// simulation matrix: every (architecture, benchmark, config) job is a fully
// isolated simulation, so `run_matrix` executes them concurrently and still
// returns bit-identical results for any thread count.

#include <string>
#include <vector>

#include "arch/system.hpp"

namespace mlp::sim {

/// Default data volume per benchmark, in DRAM rows. Sizing is by DATA
/// VOLUME, not record count: each benchmark gets enough records to fill this
/// many rows, so light 1-word records (count) see as many rows — and as much
/// rate-matching history — as heavy 17-word ones (gda). The paper argues
/// (Section V) that BMLAs are behaviourally stationary, so modest inputs
/// reach the same steady state as its 128 MB runs; the ablation_input_size
/// bench demonstrates this. Override per run via SuiteOptions::rows (the
/// benches and tools expose it as --rows).
inline constexpr u64 kDefaultRows = 192;

struct SuiteOptions {
  u64 records = 0;        ///< absolute record count; 0 = size by `rows`
  u64 rows = kDefaultRows;  ///< data volume in DRAM rows when records == 0
  u64 seed = 1;
  /// Section VI-A ablation: MapReduce-expressible software barriers at
  /// record granularity instead of hardware flow control.
  bool record_barrier = false;
  /// Observability: when enabled() the job runs with an attached
  /// TraceSession and run_job writes the per-job trace files (Chrome JSON /
  /// interval CSV / binary ring) under trace.dir. Files are written for
  /// failed runs too (partial traces are precisely the post-mortem case).
  trace::TraceConfig trace;
  MachineConfig cfg = MachineConfig::paper_defaults();
};

/// Records giving `rows` DRAM rows of data for a benchmark.
u64 records_for(const std::string& bench, const MachineConfig& cfg,
                u64 rows = kDefaultRows);

/// One independent simulation in a matrix: an (architecture, benchmark)
/// pair under some options. `tag` is an arbitrary caller label (e.g. the
/// sweep point) carried through to the result untouched.
struct MatrixJob {
  arch::ArchKind kind = arch::ArchKind::kMillipede;
  std::string bench;
  SuiteOptions options;
  std::string tag;
};

struct MatrixResult {
  MatrixJob job;
  arch::RunResult result;
  std::string error;  ///< empty iff the run completed and verified
  /// Multi-line machine-state dump for SimError failures (watchdog trips,
  /// uncorrectable memory faults); empty otherwise.
  std::string diagnostic;
  /// Paths of the trace files run_job wrote for this job (empty when the
  /// job's SuiteOptions::trace is disabled). Deterministically named from
  /// (architecture, benchmark, tag), so a matrix of unique jobs never
  /// collides regardless of the pool's thread count.
  std::vector<std::string> trace_files;

  bool ok() const { return error.empty(); }
};

/// Deterministic per-job trace file stem: "<arch>-<bench>" plus the
/// sanitized tag when present (e.g. "millipede-nbayes-c32-pf16"). Exposed so
/// tools and tests can predict run_job's output paths.
std::string trace_basename(const MatrixJob& job);

class PrepareCache;  // sim/prepare.hpp — memoized job preparation

/// Execute one job, collecting failures (unknown benchmark, bad
/// configuration, watchdog trip, uncorrectable memory fault, verification
/// mismatch) into MatrixResult::error instead of aborting. Preparation
/// (kernel assembly, record generation, initial DramImage, golden reference)
/// goes through `cache` when given, so jobs with equivalent preparation keys
/// share the artifacts; results are bit-identical either way. `cache_hit`
/// (optional) reports whether this job's artifacts were already warm.
/// `snapshot` (optional) threads a checkpoint capture/restore plan into the
/// run (sim/snapshot.hpp) — the mlpsweep --fork-at machinery and the
/// mlpserved snapshot verbs are built on it.
MatrixResult run_job(const MatrixJob& job, PrepareCache* cache = nullptr,
                     bool* cache_hit = nullptr,
                     SnapshotPlan* snapshot = nullptr);

/// Execute `jobs` on a pool of `threads` workers (0 = one per hardware
/// thread) and return results in submission order. Jobs share no mutable
/// state (the prepare cache hands out immutable artifacts), so any thread
/// count yields identical results; `threads` only changes wall-clock time.
std::vector<MatrixResult> run_matrix(const std::vector<MatrixJob>& jobs,
                                     u32 threads = 0,
                                     PrepareCache* cache = nullptr);

/// Run one (architecture, benchmark) pair and abort if verification fails.
arch::RunResult run_verified(arch::ArchKind kind, const std::string& bench,
                             const SuiteOptions& options);

/// Run all eight BMLAs on one architecture, `threads` at a time (0 = one
/// per hardware thread); aborts if any run fails verification. A suite-local
/// prepare cache deduplicates preparation across the grid.
std::vector<arch::RunResult> run_suite(arch::ArchKind kind,
                                       const SuiteOptions& options,
                                       u32 threads = 0);

/// Geometric mean (the paper's summary statistic for Figs. 3/4).
double geomean(const std::vector<double>& values);

}  // namespace mlp::sim
