#include "sim/node.hpp"

#include "sim/runner.hpp"

namespace mlp::sim {

NodeScaleResult run_node_scale(const std::string& bench,
                               const MachineConfig& cfg,
                               const NodeScaleConfig& node) {
  SuiteOptions options;
  options.cfg = cfg;
  NodeScaleResult result;
  result.workload = bench;
  result.processor_run =
      run_verified(arch::ArchKind::kMillipede, bench, options);

  // Steady-state per-record Map cost from the simulated slice (Section V:
  // behaviour is stationary, so linear extrapolation is sound).
  workloads::WorkloadParams probe;
  probe.num_records = 1;
  const workloads::Workload wl = workloads::make_bmla(bench, probe);
  const double records_simulated =
      static_cast<double>(result.processor_run.input_words) / wl.fields;
  const double ps_per_record =
      static_cast<double>(result.processor_run.runtime_ps) /
      records_simulated;
  // The node's processors work in parallel on disjoint shards.
  const double records_per_processor =
      static_cast<double>(node.node_records) / node.processors_per_node;
  result.map_seconds = ps_per_record * records_per_processor * 1e-12;

  u32 state_words = 0;
  for (const auto& field : wl.state_schema) {
    state_words =
        std::max(state_words, field.offset_words +
                                  field.count * field.stride_words);
  }
  result.state_words = state_words;

  // Per-node Reduce: the host walks every corelet state of every processor.
  const double node_words = static_cast<double>(state_words) *
                            cfg.core.cores * node.processors_per_node;
  result.node_reduce_seconds = node_words * node.host_ns_per_word * 1e-9;

  // Cluster final Reduce: one reduced state per node crosses the network.
  result.cluster_reduce_seconds = static_cast<double>(state_words) *
                                  node.cluster_nodes *
                                  node.network_ns_per_word * 1e-9;
  return result;
}

}  // namespace mlp::sim
