// `kmeans` — one k-means iteration: assign each record to its nearest
// centroid and accumulate per-cluster mean sums, counts, and per-dimension
// squared-deviation (diagonal covariance) sums.

#include "isa/assembler.hpp"
#include "workloads/kernels/centroid_common.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {

Workload make_kmeans(const WorkloadParams& params) {
  auto rng = std::make_shared<Rng>(params.seed ^ 0x4b3ea5u);
  auto centers = std::make_shared<std::vector<float>>(
      centroid::make_centers(*rng));

  Workload wl;
  wl.name = "kmeans";
  wl.description = "one k-means iteration: assignment + mean/variance sums";
  wl.program = isa::must_assemble(
      "kmeans",
      kernel_skeleton(centroid::preamble(),
                      centroid::body(/*with_variance=*/true),
                      params.record_barrier));
  wl.fields = centroid::kD;
  wl.num_records = params.num_records;
  wl.state_schema = {
      {"acc", 64, centroid::kK * centroid::kD, 1, true},
      {"counts", 128, centroid::kK, 1, false},
      {"var", 136, centroid::kK * centroid::kD, 1, true},
  };
  wl.tolerance = 1e-3;

  wl.generate = [centers](const InterleavedLayout& layout,
                          mem::DramImage& image, Rng& rng) {
    centroid::generate(*centers, layout, image, rng);
  };
  wl.reference = [centers](const mem::DramImage& image,
                           const InterleavedLayout& layout) {
    return centroid::reference(*centers, image, layout,
                               /*with_variance=*/true);
  };
  wl.init_state = [centers](mem::LocalStore& state) {
    centroid::init_state(*centers, state);
  };
  return wl;
}

}  // namespace mlp::workloads
