// `variance` — per-bin streaming statistics (count, sum, sum of squares)
// over float samples, with a data-dependent validity filter (~70/30). The
// bin is derived from the value itself: a data-dependent indirect update.

#include "isa/assembler.hpp"
#include "workloads/bmla.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {
namespace {

constexpr float kFilter = 7.0f;  // P(v < 7) with v ~ U[0,10) = 0.7

const char* kPreamble = R"(
    csrr r20, ARG0          ; filter threshold (float bits)
    li   r21, 1
)";

// Live state: bin b at byte b*12 — count, sum, sum of squares; outliers
// (count + sum) at words 48,49. The outlier arm makes the filter a genuine
// if/else that SIMT execution must serialize.
const char* kBody = R"(
    lw    r16, 0(r15)       ; sample (float bits)
    flt   r17, r16, r20
    beq   r17, r0, var_outlier  ; data-dependent 70/30 branch
    fcvt.w.s r17, r16
    andi  r17, r17, 15      ; bin = floor(v) mod 16
    slli  r18, r17, 3
    slli  r19, r17, 2
    add   r18, r18, r19     ; bin * 12
    amoadd.l  r19, r21, 0(r18)
    famoadd.l r19, r16, 4(r18)
    fmul  r17, r16, r16
    famoadd.l r19, r17, 8(r18)
    j     var_done
var_outlier:
    li    r18, 192          ; outlier state byte base (word 48)
    amoadd.l  r19, r21, 0(r18)
    famoadd.l r19, r16, 4(r18)
var_done:
)";

u32 f32_bits(float value) {
  u32 bits;
  std::memcpy(&bits, &value, 4);
  return bits;
}

}  // namespace

Workload make_variance(const WorkloadParams& params) {
  Workload wl;
  wl.name = "variance";
  wl.description = "per-bin count/sum/sum-of-squares over float samples";
  wl.program = isa::must_assemble(
      "variance", kernel_skeleton(kPreamble, kBody, params.record_barrier));
  wl.fields = 1;
  wl.num_records = params.num_records;
  wl.args[0] = f32_bits(kFilter);
  wl.state_schema = {
      {"counts", 0, kVarianceBins, 3, false},
      {"sums", 1, kVarianceBins, 3, true},
      {"sumsq", 2, kVarianceBins, 3, true},
      {"outlier_count", 48, 1, 1, false},
      {"outlier_sum", 49, 1, 1, true},
  };
  wl.tolerance = 1e-3;

  wl.generate = [](const InterleavedLayout& layout, mem::DramImage& image,
                   Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      image.write_f32(layout.address(0, r),
                      static_cast<float>(rng.uniform() * 10.0));
    }
  };

  wl.reference = [](const mem::DramImage& image,
                    const InterleavedLayout& layout) {
    std::vector<double> counts(kVarianceBins, 0.0), sums(kVarianceBins, 0.0),
        sumsq(kVarianceBins, 0.0);
    double outlier_count = 0.0, outlier_sum = 0.0;
    for (u64 r = 0; r < layout.num_records(); ++r) {
      const float v = image.read_f32(layout.address(0, r));
      if (!(v < kFilter)) {
        outlier_count += 1.0;
        outlier_sum += v;
        continue;
      }
      const u32 bin = static_cast<u32>(static_cast<i32>(v)) & 15;
      counts[bin] += 1.0;
      sums[bin] += v;
      sumsq[bin] += static_cast<double>(v) * v;
    }
    std::vector<double> out = counts;
    out.insert(out.end(), sums.begin(), sums.end());
    out.insert(out.end(), sumsq.begin(), sumsq.end());
    out.push_back(outlier_count);
    out.push_back(outlier_sum);
    return out;
  };
  return wl;
}

}  // namespace mlp::workloads
