// `classify` — supervised classification via Euclidean distance: find the
// nearest of k constant centroids (O(k) per record) and fold the record into
// the winner's running new-centroid accumulator (O(1) per record).

#include "isa/assembler.hpp"
#include "workloads/kernels/centroid_common.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {

Workload make_classify(const WorkloadParams& params) {
  auto rng = std::make_shared<Rng>(params.seed ^ 0xc1a551f9u);
  auto centers = std::make_shared<std::vector<float>>(
      centroid::make_centers(*rng));

  Workload wl;
  wl.name = "classify";
  wl.description = "nearest-centroid classification with running centroids";
  wl.program = isa::must_assemble(
      "classify",
      kernel_skeleton(centroid::preamble(),
                      centroid::body(/*with_variance=*/false),
                      params.record_barrier));
  wl.fields = centroid::kD;
  wl.num_records = params.num_records;
  wl.state_schema = {
      {"acc", 64, centroid::kK * centroid::kD, 1, true},
      {"counts", 128, centroid::kK, 1, false},
  };
  wl.tolerance = 1e-3;

  wl.generate = [centers](const InterleavedLayout& layout,
                          mem::DramImage& image, Rng& rng) {
    centroid::generate(*centers, layout, image, rng);
  };
  wl.reference = [centers](const mem::DramImage& image,
                           const InterleavedLayout& layout) {
    return centroid::reference(*centers, image, layout,
                               /*with_variance=*/false);
  };
  wl.init_state = [centers](mem::LocalStore& state) {
    centroid::init_state(*centers, state);
  };
  return wl;
}

}  // namespace mlp::workloads
