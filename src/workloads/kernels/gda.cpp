// `gda` — Gaussian Discriminant Analysis training: per-class (2 classes,
// ~70/30 label split) count, mean vector and full centered covariance
// matrix over 16-dimensional records. The heaviest BMLA in the suite.
//
// Live state (words): per class c at c*273 — count@+0, meansum[16]@+1,
// cov[256]@+17; then known-means em[16]@546 and record scratch[16]@562.

#include <cstring>

#include "isa/assembler.hpp"
#include "workloads/bmla.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {
namespace {

constexpr u32 kD = kGdaDims;
constexpr u32 kClassWords = 1 + kD + kD * kD;  // 273

// Per-context scratch slices: see pca.cpp.
const char* kPreamble = R"(
    li   r21, 1
    li   r22, 16            ; dimensions
    li   r28, 2248          ; scratch byte base
    csrr r20, CTX
    slli r20, r20, 6        ; + ctx * 64 B
    add  r28, r28, r20
    li   r29, 2184          ; known-means byte base
)";

// The class is derived from dimension 0 against a threshold (ARG0, float
// bits): a data-dependent ~70/30 branch, and — unlike a separate label
// field — it keeps the record at 16 words so a record's field rows fit the
// 16-entry prefetch window under the word-interleaved layout (the paper's
// slab-interleaving variant is the general solution; Section IV-C).
const char* kBody = R"(
    ; stage the 16 dims in local scratch (each input word read exactly once)
    mv   r16, r28
    li   r17, 0
gda_copy:
    bge  r17, r22, gda_copied
    lw   r18, 0(r15)
    sw.l r18, 0(r16)
    add  r15, r15, r9
    addi r16, r16, 4
    addi r17, r17, 1
    j    gda_copy
gda_copied:
    lw.l r16, 0(r28)        ; x[0] (decides the class)
    csrr r17, ARG0          ; class threshold (float bits)
    li   r30, 0
    flt  r18, r16, r17
    bne  r18, r0, gda_cls   ; ~70% below threshold -> class 0
    li   r30, 1092          ; class-1 state byte base
gda_cls:
    amoadd.l r16, r21, 0(r30)   ; count[class]++
    li   r17, 0                 ; i
    addi r23, r30, 68           ; cov pointer for this class
gda_i:
    bge  r17, r22, gda_done
    slli r18, r17, 2
    add  r19, r18, r28
    lw.l r19, 0(r19)            ; xi
    add  r20, r18, r30
    famoadd.l r26, r19, 4(r20)  ; meansum[class][i] += xi
    add  r20, r18, r29
    lw.l r20, 0(r20)            ; em_i
    fsub r19, r19, r20          ; ti
    li   r24, 0                 ; j
gda_j:
    bge  r24, r22, gda_i_next
    slli r25, r24, 2
    add  r26, r25, r28
    lw.l r26, 0(r26)            ; xj
    add  r27, r25, r29
    lw.l r27, 0(r27)            ; em_j
    fsub r26, r26, r27
    fmul r26, r26, r19
    famoadd.l r27, r26, 0(r23)  ; cov[class][i][j] += ti*tj
    addi r23, r23, 4
    addi r24, r24, 1
    j    gda_j
gda_i_next:
    addi r17, r17, 1
    j    gda_i
gda_done:
)";

float known_mean(u32 d) { return 0.25f * static_cast<float>(d); }

constexpr float kClassThreshold = 0.55f;  // ~70% of x[0] draws fall below

u32 f32_bits(float value) {
  u32 bits;
  std::memcpy(&bits, &value, 4);
  return bits;
}

}  // namespace

Workload make_gda(const WorkloadParams& params) {
  Workload wl;
  wl.name = "gda";
  wl.description = "per-class mean + covariance (Gaussian discriminants)";
  wl.program = isa::must_assemble("gda", kernel_skeleton(kPreamble, kBody, params.record_barrier));
  wl.fields = kD;
  wl.num_records = params.num_records;
  wl.args[0] = f32_bits(kClassThreshold);
  wl.state_schema = {
      {"count0", 0, 1, 1, false},
      {"mean0", 1, kD, 1, true},
      {"cov0", 17, kD * kD, 1, true},
      {"count1", kClassWords, 1, 1, false},
      {"mean1", kClassWords + 1, kD, 1, true},
      {"cov1", kClassWords + 17, kD * kD, 1, true},
  };
  wl.tolerance = 1e-2;

  wl.generate = [](const InterleavedLayout& layout, mem::DramImage& image,
                   Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      const u32 cluster = rng.chance(0.3) ? 1 : 0;
      for (u32 d = 0; d < kD; ++d) {
        float v = known_mean(d) + static_cast<float>(rng.gaussian());
        if (d == 0) v += cluster != 0 ? 1.6f : -0.2f;  // ~70/30 vs threshold
        image.write_f32(layout.address(d, r), v);
      }
    }
  };

  wl.reference = [](const mem::DramImage& image,
                    const InterleavedLayout& layout) {
    std::vector<double> count(2, 0.0);
    std::vector<double> mean(2 * kD, 0.0), cov(2 * kD * kD, 0.0);
    std::vector<float> x(kD);
    for (u64 r = 0; r < layout.num_records(); ++r) {
      for (u32 d = 0; d < kD; ++d) {
        x[d] = image.read_f32(layout.address(d, r));
      }
      // Same float comparison as the kernel: class 0 iff x[0] < threshold.
      const u32 label = x[0] < kClassThreshold ? 0 : 1;
      count[label] += 1.0;
      for (u32 i = 0; i < kD; ++i) {
        mean[label * kD + i] += x[i];
        const float ti = x[i] - known_mean(i);
        for (u32 j = 0; j < kD; ++j) {
          const float tj = x[j] - known_mean(j);
          cov[(label * kD + i) * kD + j] += static_cast<double>(tj * ti);
        }
      }
    }
    std::vector<double> out;
    for (u32 c = 0; c < 2; ++c) {
      out.push_back(count[c]);
      for (u32 i = 0; i < kD; ++i) out.push_back(mean[c * kD + i]);
      for (u32 i = 0; i < kD * kD; ++i) out.push_back(cov[c * kD * kD + i]);
    }
    return out;
  };

  wl.init_state = [](mem::LocalStore& state) {
    for (u32 d = 0; d < kD; ++d) {
      state.store_f32(2184 + d * 4, known_mean(d));
    }
  };
  return wl;
}

}  // namespace mlp::workloads
