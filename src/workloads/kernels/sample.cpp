// `sample` — sample selection: per bin, count occurrences and keep the first
// M sample record-ids. The atomic fetch-and-add returns the claimed slot,
// making the bounded insert race-free across contexts; whether the slot
// branch is taken is data-dependent (bins fill at different times under the
// skewed bin distribution).

#include <cmath>

#include "isa/assembler.hpp"
#include "workloads/bmla.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {
namespace {

const char* kPreamble = R"(
    li   r21, 1
    csrr r22, ARG0          ; slots per bin (M)
)";

// Live state: bin b at byte b*16 — word 0 count, words 1..3 sample ids.
const char* kBody = R"(
    lw   r16, 0(r15)        ; bin
    slli r16, r16, 4
    amoadd.l r17, r21, 0(r16)   ; slot = count++
    bge  r17, r22, samp_skip    ; bin already has M samples?
    sll  r14, r10, r8
    add  r14, r14, r12      ; global record id
    slli r17, r17, 2
    add  r17, r17, r16
    sw.l r14, 4(r17)        ; store the record id
samp_skip:
)";

/// Skewed bin distribution (quadratic toward bin 0), cheap and deterministic.
u32 skewed_bin(Rng& rng) {
  const double u = rng.uniform();
  return static_cast<u32>(u * u * kSampleBins);
}

}  // namespace

Workload make_sample(const WorkloadParams& params) {
  Workload wl;
  wl.name = "sample";
  wl.description = "per-bin sample selection: counts plus first-M elements";
  wl.program = isa::must_assemble(
      "sample", kernel_skeleton(kPreamble, kBody, params.record_barrier));
  wl.fields = 1;
  wl.num_records = params.num_records;
  wl.args[0] = kSampleSlots;
  // Only the counts are deterministically comparable: which record ids land
  // in the slots depends on timing. Slot contents are property-checked in
  // tests (each stored id must belong to the bin).
  wl.state_schema = {{"counts", 0, kSampleBins, 4, false}};

  wl.generate = [](const InterleavedLayout& layout, mem::DramImage& image,
                   Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      image.write_u32(layout.address(0, r), skewed_bin(rng));
    }
  };

  wl.reference = [](const mem::DramImage& image,
                    const InterleavedLayout& layout) {
    std::vector<double> counts(kSampleBins, 0.0);
    for (u64 r = 0; r < layout.num_records(); ++r) {
      counts[image.read_u32(layout.address(0, r))] += 1.0;
    }
    return counts;
  };
  return wl;
}

}  // namespace mlp::workloads
