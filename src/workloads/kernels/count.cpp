// `count` — the lightest BMLA: histogram movie ratings into bins, filtered
// by a data-dependent threshold (engineered ~70/30 taken split). One word
// per record; O(1) work per word; live state = 8 bin counters.

#include "isa/assembler.hpp"
#include "workloads/bmla.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {
namespace {

constexpr u32 kValueRange = 16;
constexpr u32 kThreshold = 11;  // P(v < 11) with v ~ U[0,16) is ~0.69

const char* kPreamble = R"(
    csrr r20, ARG0          ; filter threshold
    li   r21, 1
)";

// Accepted ratings histogram into bins; rejected ones (the ~30% arm) bump a
// rejection counter — a genuine if/else whose arms a SIMT machine must
// serialize. Live state: counts[8] @0, rejected @ word 8.
const char* kBody = R"(
    lw   r16, 0(r15)        ; rating
    bge  r16, r20, count_rej    ; data-dependent 70/30 branch
    andi r17, r16, 7        ; bin
    slli r17, r17, 2
    amoadd.l r18, r21, 0(r17)   ; counts[bin]++
    j    count_done
count_rej:
    li   r17, 32
    amoadd.l r18, r21, 0(r17)   ; rejected++
count_done:
)";

}  // namespace

Workload make_count(const WorkloadParams& params) {
  Workload wl;
  wl.name = "count";
  wl.description = "filtered rating histogram (bin count per rating)";
  wl.program = isa::must_assemble(
      "count", kernel_skeleton(kPreamble, kBody, params.record_barrier));
  wl.fields = 1;
  wl.num_records = params.num_records;
  wl.args[0] = kThreshold;
  wl.state_schema = {{"counts", 0, kCountBins, 1, false},
                     {"rejected", kCountBins, 1, 1, false}};

  wl.generate = [](const InterleavedLayout& layout, mem::DramImage& image,
                   Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      image.write_u32(layout.address(0, r),
                      static_cast<u32>(rng.below(kValueRange)));
    }
  };

  wl.reference = [](const mem::DramImage& image,
                    const InterleavedLayout& layout) {
    std::vector<double> counts(kCountBins, 0.0);
    double rejected = 0.0;
    for (u64 r = 0; r < layout.num_records(); ++r) {
      const u32 v = image.read_u32(layout.address(0, r));
      if (v < kThreshold) {
        counts[v & (kCountBins - 1)] += 1.0;
      } else {
        rejected += 1.0;
      }
    }
    counts.push_back(rejected);
    return counts;
  };
  return wl;
}

}  // namespace mlp::workloads
