// `pca` — dimensionality reduction prep: accumulate the mean vector and the
// full (mean-centered) covariance matrix of 16-dimensional records. O(D)
// operations per input word: the compute-heaviest end of the BMLA spectrum
// together with `gda`.
//
// Live state (words): count@0, meansum[16]@1, cov[16][16]@17,
// known-means em[16]@273 (constants), record scratch[16]@289.

#include "isa/assembler.hpp"
#include "workloads/bmla.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {
namespace {

constexpr u32 kD = kPcaDims;
constexpr u32 kCovBase = 17 * 4;
constexpr u32 kEmBase = 273 * 4;
constexpr u32 kScratchBase = 289 * 4;

// Each hardware context stages records in its own 64 B scratch slice —
// contexts of a corelet share the local store, so a shared scratch would be
// overwritten mid-record by an interleaved sibling context.
const char* kPreamble = R"(
    li   r21, 1
    li   r22, 16            ; dimensions
    li   r28, 1156          ; scratch byte base
    csrr r20, CTX
    slli r20, r20, 6        ; + ctx * 64 B
    add  r28, r28, r20
    li   r29, 1092          ; known-means byte base
)";

const char* kBody = R"(
    ; stage the record in local scratch (each input word read exactly once)
    mv   r16, r28
    li   r17, 0
pca_copy:
    bge  r17, r22, pca_copied
    lw   r18, 0(r15)
    sw.l r18, 0(r16)
    add  r15, r15, r9
    addi r16, r16, 4
    addi r17, r17, 1
    j    pca_copy
pca_copied:
    amoadd.l r16, r21, 0(r0)    ; count++
    li   r17, 0                 ; i
    li   r23, 68                ; cov byte pointer (row-major walk)
pca_i:
    bge  r17, r22, pca_done
    slli r18, r17, 2
    add  r19, r18, r28
    lw.l r19, 0(r19)            ; xi
    famoadd.l r20, r19, 4(r18)  ; meansum[i] += xi
    add  r20, r18, r29
    lw.l r20, 0(r20)            ; em_i
    fsub r19, r19, r20          ; ti = xi - em_i
    li   r24, 0                 ; j
pca_j:
    bge  r24, r22, pca_i_next
    slli r25, r24, 2
    add  r26, r25, r28
    lw.l r26, 0(r26)            ; xj
    add  r27, r25, r29
    lw.l r27, 0(r27)            ; em_j
    fsub r26, r26, r27          ; tj
    fmul r26, r26, r19
    famoadd.l r27, r26, 0(r23)  ; cov[i][j] += ti*tj
    addi r23, r23, 4
    addi r24, r24, 1
    j    pca_j
pca_i_next:
    addi r17, r17, 1
    j    pca_i
pca_done:
)";

float known_mean(u32 d) { return 0.5f * static_cast<float>(d); }

}  // namespace

Workload make_pca(const WorkloadParams& params) {
  Workload wl;
  wl.name = "pca";
  wl.description = "mean vector + full centered covariance matrix";
  wl.program = isa::must_assemble("pca", kernel_skeleton(kPreamble, kBody, params.record_barrier));
  wl.fields = kD;
  wl.num_records = params.num_records;
  wl.state_schema = {
      {"count", 0, 1, 1, false},
      {"meansum", 1, kD, 1, true},
      {"cov", 17, kD * kD, 1, true},
  };
  wl.tolerance = 1e-2;

  wl.generate = [](const InterleavedLayout& layout, mem::DramImage& image,
                   Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      const float shared = static_cast<float>(rng.gaussian());
      for (u32 d = 0; d < kD; ++d) {
        const float v = known_mean(d) + 0.5f * shared +
                        0.8f * static_cast<float>(rng.gaussian());
        image.write_f32(layout.address(d, r), v);
      }
    }
  };

  wl.reference = [](const mem::DramImage& image,
                    const InterleavedLayout& layout) {
    std::vector<double> mean(kD, 0.0), cov(kD * kD, 0.0);
    double count = 0.0;
    std::vector<float> x(kD);
    for (u64 r = 0; r < layout.num_records(); ++r) {
      for (u32 d = 0; d < kD; ++d) x[d] = image.read_f32(layout.address(d, r));
      count += 1.0;
      for (u32 i = 0; i < kD; ++i) {
        mean[i] += x[i];
        const float ti = x[i] - known_mean(i);
        for (u32 j = 0; j < kD; ++j) {
          const float tj = x[j] - known_mean(j);
          cov[i * kD + j] += static_cast<double>(tj * ti);
        }
      }
    }
    std::vector<double> out{count};
    out.insert(out.end(), mean.begin(), mean.end());
    out.insert(out.end(), cov.begin(), cov.end());
    return out;
  };

  wl.init_state = [](mem::LocalStore& state) {
    for (u32 d = 0; d < kD; ++d) {
      state.store_f32(kEmBase + d * 4, known_mean(d));
    }
  };
  (void)kCovBase;
  (void)kScratchBase;
  return wl;
}

}  // namespace mlp::workloads
