#pragma once
// Shared machinery for the two centroid kernels (`classify`, `kmeans`):
// unrolled nearest-centroid assembly generation, cluster data synthesis,
// and the bit-exact float nearest-centroid reference.
//
// Live-state layout (words): centroids[k*D] @0 (constants), accumulators
// [k*D] @64, counts[k] @128, and (kmeans only) variance sums [k*D] @136.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workloads/bmla.hpp"

namespace mlp::workloads::centroid {

inline constexpr u32 kK = kClassifyK;      // 8 centroids
inline constexpr u32 kD = kClassifyDims;   // 8 dimensions
inline constexpr u32 kAccBase = 64 * 4;    // byte offsets
inline constexpr u32 kCountBase = 128 * 4;
inline constexpr u32 kVarBase = 136 * 4;

/// Deterministic, well-separated cluster centers.
inline std::vector<float> make_centers(Rng& rng) {
  std::vector<float> centers(kK * kD);
  for (u32 c = 0; c < kK; ++c) {
    for (u32 d = 0; d < kD; ++d) {
      centers[c * kD + d] =
          static_cast<float>(10.0 * c + 4.0 * rng.uniform() - 2.0);
    }
  }
  return centers;
}

/// Nearest centroid with the exact float arithmetic the kernel uses:
/// distance accumulated in ascending-d order, strict-less argmin.
inline u32 nearest(const float* x, const std::vector<float>& centers) {
  float best = 1e30f;
  u32 best_c = 0;
  for (u32 c = 0; c < kK; ++c) {
    float dist = 0.0f;
    for (u32 d = 0; d < kD; ++d) {
      const float t = x[d] - centers[c * kD + d];
      dist += t * t;
    }
    if (dist < best) {
      best = dist;
      best_c = c;
    }
  }
  return best_c;
}

/// Kernel-specific preamble: r31 = +huge (argmin seed). NOTE: the body loads
/// the 8 record coordinates into r16..r23, so no preamble constant may live
/// in that range.
inline std::string preamble() { return "    li.f r31, 1e30\n"; }

/// Unrolled per-record body: load the D coords into r16..r23, find the
/// nearest of the k centroids (data-dependent argmin-update branches), then
/// accumulate the record into the winner's accumulator and count —
/// optionally also its per-dimension squared-deviation sums (kmeans).
inline std::string body(bool with_variance) {
  std::string s;
  for (u32 d = 0; d < kD; ++d) {
    s += "    lw   r" + std::to_string(16 + d) + ", 0(r15)\n";
    s += "    add  r15, r15, r9\n";
  }
  s += "    mv   r24, r31\n    li   r25, 0\n";  // best dist, best c
  for (u32 c = 0; c < kK; ++c) {
    s += "    li   r26, 0\n";  // dist = 0.0f
    for (u32 d = 0; d < kD; ++d) {
      const u32 cen_off = (c * kD + d) * 4;
      s += "    lw.l r27, " + std::to_string(cen_off) + "(r0)\n";
      s += "    fsub r27, r" + std::to_string(16 + d) + ", r27\n";
      s += "    fmul r27, r27, r27\n";
      s += "    fadd r26, r26, r27\n";
    }
    const std::string skip = "cen_skip" + std::to_string(c);
    s += "    flt  r27, r26, r24\n";
    s += "    beq  r27, r0, " + skip + "\n";  // data-dependent argmin update
    s += "    mv   r24, r26\n";
    s += "    li   r25, " + std::to_string(c) + "\n";
    s += skip + ":\n";
  }
  // Accumulate into the winner: acc[best][d] += x[d]; counts[best]++.
  s += "    slli r27, r25, 5\n";  // best * D * 4
  s += "    addi r27, r27, " + std::to_string(kAccBase) + "\n";
  for (u32 d = 0; d < kD; ++d) {
    s += "    famoadd.l r28, r" + std::to_string(16 + d) + ", " +
         std::to_string(d * 4) + "(r27)\n";
  }
  s += "    slli r28, r25, 2\n";
  s += "    addi r28, r28, " + std::to_string(kCountBase) + "\n";
  s += "    li   r29, 1\n";
  s += "    amoadd.l r30, r29, 0(r28)\n";
  if (with_variance) {
    s += "    slli r28, r25, 5\n";  // centroid byte base
    s += "    slli r29, r25, 5\n";
    s += "    addi r29, r29, " + std::to_string(kVarBase) + "\n";
    for (u32 d = 0; d < kD; ++d) {
      s += "    lw.l r30, " + std::to_string(d * 4) + "(r28)\n";
      s += "    fsub r30, r" + std::to_string(16 + d) + ", r30\n";
      s += "    fmul r30, r30, r30\n";
      s += "    famoadd.l r27, r30, " + std::to_string(d * 4) + "(r29)\n";
    }
  }
  return s;
}

/// Records drawn from Gaussian blobs around the centers.
inline void generate(const std::vector<float>& centers,
                     const InterleavedLayout& layout, mem::DramImage& image,
                     Rng& rng) {
  for (u64 r = 0; r < layout.num_records(); ++r) {
    const u32 c = static_cast<u32>(rng.below(kK));
    for (u32 d = 0; d < kD; ++d) {
      image.write_f32(layout.address(d, r),
                      centers[c * kD + d] +
                          static_cast<float>(rng.gaussian() * 1.5));
    }
  }
}

/// Shared reference: per-cluster accumulator sums, counts, and (optionally)
/// squared-deviation sums, concatenated in schema order.
inline std::vector<double> reference(const std::vector<float>& centers,
                                     const mem::DramImage& image,
                                     const InterleavedLayout& layout,
                                     bool with_variance) {
  std::vector<double> acc(kK * kD, 0.0), counts(kK, 0.0), var(kK * kD, 0.0);
  float x[kD];
  for (u64 r = 0; r < layout.num_records(); ++r) {
    for (u32 d = 0; d < kD; ++d) x[d] = image.read_f32(layout.address(d, r));
    const u32 best = nearest(x, centers);
    counts[best] += 1.0;
    for (u32 d = 0; d < kD; ++d) {
      acc[best * kD + d] += x[d];
      if (with_variance) {
        const float t = x[d] - centers[best * kD + d];
        var[best * kD + d] += static_cast<double>(t) * t;
      }
    }
  }
  std::vector<double> out = acc;
  out.insert(out.end(), counts.begin(), counts.end());
  if (with_variance) out.insert(out.end(), var.begin(), var.end());
  return out;
}

inline void init_state(const std::vector<float>& centers,
                       mem::LocalStore& state) {
  for (u32 i = 0; i < kK * kD; ++i) state.store_f32(i * 4, centers[i]);
}

}  // namespace mlp::workloads::centroid
