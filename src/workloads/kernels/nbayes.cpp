// `nbayes` — Naive Bayes training exactly as in the paper's Table I
// walk-through: classify each record by a data-dependent year threshold
// (~70/30 branch), then bump the conditional-probability counter
// Cprob[dim][x][class] for every dimension — a data-dependent indirect
// update into the live state.

#include <cstring>

#include "isa/assembler.hpp"
#include "workloads/bmla.hpp"
#include "workloads/skeleton.hpp"

namespace mlp::workloads {
namespace {

constexpr u32 kYearRange = 100;
constexpr u32 kThreshold = 69;  // P(year <= 69) = 0.7

const char* kPreamble = R"(
    csrr r20, ARG0          ; year threshold
    li   r21, 1
    li   r22, 8             ; dimensions
    li   r23, 512           ; classCount byte base (after 128 Cprob words)
    li   r24, 64            ; per-dim Cprob stride = K*2*4 bytes
)";

// Record: year, x[8] (x in 0..7). Live state: Cprob[8][8][2] then
// classCount[2]. Cprob[d][x][c] at byte d*64 + x*8 + c*4.
const char* kBody = R"(
    lw   r16, 0(r15)        ; year
    li   r17, 0
    ble  r16, r20, nb_cls   ; 70/30 data-dependent class branch
    li   r17, 1
nb_cls:
    slli r18, r17, 2
    add  r18, r18, r23
    amoadd.l r19, r21, 0(r18)   ; classCount[class]++
    slli r17, r17, 2        ; class * 4
    mv   r25, r15
    li   r26, 0             ; d
    li   r27, 0             ; d * 64
nb_dim:
    bge  r26, r22, nb_done
    add  r25, r25, r9
    lw   r28, 0(r25)        ; x[d]
    slli r29, r28, 3
    add  r29, r29, r27
    add  r29, r29, r17
    amoadd.l r30, r21, 0(r29)   ; Cprob[d][x][class]++  (indirect)
    add  r27, r27, r24
    addi r26, r26, 1
    j    nb_dim
nb_done:
)";

}  // namespace

Workload make_nbayes(const WorkloadParams& params) {
  Workload wl;
  wl.name = "nbayes";
  wl.description = "Naive Bayes conditional-probability training (Table I)";
  wl.program = isa::must_assemble(
      "nbayes", kernel_skeleton(kPreamble, kBody, params.record_barrier));
  wl.fields = 1 + kNbDims;
  wl.num_records = params.num_records;
  wl.args[0] = kThreshold;
  wl.state_schema = {
      {"cprob", 0, kNbDims * kNbBins * 2, 1, false},
      {"class_count", kNbDims * kNbBins * 2, 2, 1, false},
  };

  wl.generate = [](const InterleavedLayout& layout, mem::DramImage& image,
                   Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      image.write_u32(layout.address(0, r),
                      static_cast<u32>(rng.below(kYearRange)));
      for (u32 d = 0; d < kNbDims; ++d) {
        image.write_u32(layout.address(1 + d, r),
                        static_cast<u32>(rng.below(kNbBins)));
      }
    }
  };

  wl.reference = [](const mem::DramImage& image,
                    const InterleavedLayout& layout) {
    std::vector<double> cprob(kNbDims * kNbBins * 2, 0.0);
    std::vector<double> class_count(2, 0.0);
    for (u64 r = 0; r < layout.num_records(); ++r) {
      const u32 year = image.read_u32(layout.address(0, r));
      const u32 cls = year > kThreshold ? 1 : 0;
      class_count[cls] += 1.0;
      for (u32 d = 0; d < kNbDims; ++d) {
        const u32 x = image.read_u32(layout.address(1 + d, r));
        cprob[(d * kNbBins + x) * 2 + cls] += 1.0;
      }
    }
    std::vector<double> out = cprob;
    out.insert(out.end(), class_count.begin(), class_count.end());
    return out;
  };
  return wl;
}

}  // namespace mlp::workloads
