#include "workloads/binding.hpp"

#include "core/functional.hpp"

namespace mlp::workloads {

void bind_csrs(core::CsrValues& csr, const Workload& workload,
               const InterleavedLayout& layout, const ThreadSlice& slice,
               u32 tid, u32 nthreads, u32 cid, u32 ncores, u32 ctx,
               u32 nctx) {
  using isa::Csr;
  csr.set(Csr::kTid, tid);
  csr.set(Csr::kNthreads, nthreads);
  csr.set(Csr::kCid, cid);
  csr.set(Csr::kNcores, ncores);
  csr.set(Csr::kCtx, ctx);
  csr.set(Csr::kNctx, nctx);
  csr.set(Csr::kIdxBase, slice.idx_base);
  csr.set(Csr::kIdxStride, slice.idx_stride);
  csr.set(Csr::kRpt, slice.rpt);
  // The kernel-facing geometry view: identical to the physical geometry for
  // the field-major layout; re-expressed for the record-contiguous layout so
  // the same Map-loop skeleton addresses both (see layout.hpp).
  csr.set(Csr::kGroupShift, layout.csr_group_shift());
  csr.set(Csr::kRowShift, layout.csr_row_shift());
  csr.set(Csr::kNgroups, layout.csr_ngroups());
  csr.set(Csr::kNrecords, layout.csr_nrecords());
  csr.set(Csr::kFields, layout.csr_fields());
  csr.set(Csr::kInputBase, static_cast<u32>(layout.base()));
  for (u32 i = 0; i < workload.args.size(); ++i) {
    csr.set(static_cast<Csr>(static_cast<u32>(Csr::kArg0) + i),
            workload.args[i]);
  }
}

FunctionalResult run_functional(const Workload& workload, u32 cores,
                                u32 contexts, u32 row_bytes,
                                u32 local_mem_bytes, u64 seed) {
  InterleavedLayout layout(row_bytes, workload.fields, workload.num_records);
  mem::DramImage image(layout.total_bytes());
  Rng rng(seed);
  workload.generate(layout, image, rng);

  FunctionalResult result;
  for (u32 c = 0; c < cores; ++c) {
    result.states.emplace_back(local_mem_bytes);
    if (workload.init_state) workload.init_state(result.states.back());
  }

  std::vector<core::Context> threads(static_cast<size_t>(cores) * contexts);
  for (u32 c = 0; c < cores; ++c) {
    for (u32 x = 0; x < contexts; ++x) {
      core::Context& ctx = threads[c * contexts + x];
      const ThreadSlice slice =
          layout.slice(ThreadMapping::kSlab, cores, contexts, c, x);
      bind_csrs(ctx.csr, workload, layout, slice, c * contexts + x,
                cores * contexts, c, cores, x, contexts);
    }
  }

  // Round-robin all threads one instruction at a time so that the contexts
  // of a corelet interleave on the shared state, as on real hardware.
  bool any_running = true;
  while (any_running) {
    any_running = false;
    for (u32 c = 0; c < cores; ++c) {
      for (u32 x = 0; x < contexts; ++x) {
        core::Context& ctx = threads[c * contexts + x];
        if (ctx.state == core::Context::State::kHalted) continue;
        any_running = true;
        const core::StepResult step_result =
            core::step(ctx, workload.program, result.states[c], image);
        ++result.instructions;
        switch (step_result.kind) {
          case core::StepKind::kBranch:
            ++result.branches;
            if (step_result.branch_taken) ++result.branches_taken;
            break;
          case core::StepKind::kGlobalLoad:
            ++result.global_loads;
            break;
          default:
            break;
        }
      }
    }
  }
  return result;
}

}  // namespace mlp::workloads
