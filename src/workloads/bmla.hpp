#pragma once
// The eight BMLA benchmarks of Table II/IV, each packaged as a Workload:
// kernel assembly (built around the common Map-loop skeleton), synthetic
// data generator, live-state schema, host golden reference, and final
// Reduce. Data-dependent branches are engineered with the paper's ~70/30
// taken/not-taken split (Section VI-A).

#include "workloads/workload.hpp"

namespace mlp::workloads {

struct WorkloadParams {
  u64 num_records = 64 * 1024;
  u64 seed = 12345;
  /// Section IV-C ablation: insert a processor-wide barrier after every
  /// record slot (the MapReduce-expressible software alternative to
  /// hardware flow control).
  bool record_barrier = false;
};

Workload make_count(const WorkloadParams& params);     ///< rating histogram
Workload make_sample(const WorkloadParams& params);    ///< sample selection
Workload make_variance(const WorkloadParams& params);  ///< per-bin variance
Workload make_nbayes(const WorkloadParams& params);    ///< Naive Bayes
Workload make_classify(const WorkloadParams& params);  ///< nearest centroid
Workload make_kmeans(const WorkloadParams& params);    ///< k-means iteration
Workload make_pca(const WorkloadParams& params);       ///< mean + covariance
Workload make_gda(const WorkloadParams& params);       ///< per-class Gaussian

/// Benchmark names in the paper's Table IV order.
const std::vector<std::string>& bmla_names();

/// Factory by name; aborts on unknown names.
Workload make_bmla(const std::string& name, const WorkloadParams& params);

// Fixed kernel dimensions (exposed for tests and docs).
inline constexpr u32 kCountBins = 8;
inline constexpr u32 kSampleBins = 64;
inline constexpr u32 kSampleSlots = 3;
inline constexpr u32 kVarianceBins = 16;
inline constexpr u32 kNbDims = 8;
inline constexpr u32 kNbBins = 8;
inline constexpr u32 kClassifyK = 8;
inline constexpr u32 kClassifyDims = 8;
inline constexpr u32 kPcaDims = 16;
inline constexpr u32 kGdaDims = 16;

}  // namespace mlp::workloads
