#pragma once
// Glue between a Workload and the hardware threads that run it: CSR binding
// (thread identity + layout geometry + kernel args) and a pure-functional
// runner used by tests, examples and kernel validation. The functional
// runner executes the exact same binaries as the timing models, so a
// mismatch against the golden reference is a kernel bug, not a timing bug.

#include "core/context.hpp"
#include "workloads/workload.hpp"

namespace mlp::workloads {

/// Fill a thread's CSR file. For kSlab mappings pass (core=corelet id,
/// ctx=context id); for kWordInterleaved pass (core=warp index, ctx=lane)
/// to slice(), but real identity values for the CSR ids.
void bind_csrs(core::CsrValues& csr, const Workload& workload,
               const InterleavedLayout& layout, const ThreadSlice& slice,
               u32 tid, u32 nthreads, u32 cid, u32 ncores, u32 ctx, u32 nctx);

/// Result of a functional (timing-free) run.
struct FunctionalResult {
  std::vector<mem::LocalStore> states;   ///< one per corelet
  u64 instructions = 0;
  u64 branches = 0;
  u64 branches_taken = 0;
  u64 global_loads = 0;

  std::vector<const mem::LocalStore*> state_ptrs() const {
    std::vector<const mem::LocalStore*> out;
    for (const auto& s : states) out.push_back(&s);
    return out;
  }
};

/// Generate the input, run every hardware thread to completion functionally
/// (kSlab mapping, contexts of a corelet interleaved round-robin so atomic
/// accumulation interleaving is exercised), and return the per-corelet
/// states plus dynamic instruction statistics.
FunctionalResult run_functional(const Workload& workload, u32 cores,
                                u32 contexts, u32 row_bytes,
                                u32 local_mem_bytes, u64 seed);

}  // namespace mlp::workloads
