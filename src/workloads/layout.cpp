#include "workloads/layout.hpp"

namespace mlp::workloads {
namespace {

/// Rows per group in kRecordContiguous mode: enough rows that a corelet's
/// slabs hold at least one record per hardware context (sized for the
/// paper's 4-context corelets; slice() validates other configurations).
u32 contiguous_rows_per_group(u32 fields) {
  return fields <= 4 ? 1 : fields / 4;
}

}  // namespace

InterleavedLayout::InterleavedLayout(u32 row_bytes, u32 fields,
                                     u64 num_records, Addr base,
                                     LayoutMode mode)
    : row_bytes_(row_bytes),
      fields_(fields),
      num_records_(num_records),
      group_records_(row_bytes / 4),
      group_shift_(log2_exact(group_records_)),
      row_shift_(log2_exact(row_bytes)),
      num_groups_((num_records + group_records_ - 1) / group_records_),
      base_(base),
      mode_(mode) {
  MLP_CHECK(is_pow2(row_bytes_), "row size must be a power of two");
  MLP_CHECK(fields_ > 0 && num_records_ > 0, "empty layout");
  MLP_CHECK(base_ % row_bytes_ == 0, "base must be row-aligned");
  if (mode_ == LayoutMode::kRecordContiguous) {
    const u32 row_words = row_bytes_ / 4;
    MLP_CHECK(is_pow2(fields_) && fields_ <= row_words,
              "record-contiguous layout needs a power-of-two field count");
    records_per_row_ = row_words / fields_;
    rows_per_group_ = contiguous_rows_per_group(fields_);
    group_records_ = records_per_row_ * rows_per_group_;
    group_shift_ = log2_exact(group_records_);
    num_groups_ = (num_records_ + group_records_ - 1) / group_records_;
  }
}

Addr InterleavedLayout::address(u32 field, u64 record) const {
  MLP_CHECK(field < fields_ && record < num_records_, "record out of range");
  if (mode_ == LayoutMode::kRecordContiguous) {
    // Whole records contiguous: plain array-of-structs bytes (records per
    // row divides the row exactly, so rows never split a record).
    return base_ + (record * fields_ + field) * 4;
  }
  const u64 group = record >> group_shift_;
  const u64 idx = record & (group_records_ - 1);
  return base_ + ((group * fields_ + field) << row_shift_) + idx * 4;
}

u32 InterleavedLayout::csr_fields() const {
  if (mode_ == LayoutMode::kRecordContiguous) {
    return rows_per_group_ * (row_bytes_ / 4);
  }
  return fields_;
}

u32 InterleavedLayout::csr_row_shift() const {
  return mode_ == LayoutMode::kRecordContiguous ? 2 : row_shift_;
}

u32 InterleavedLayout::csr_group_shift() const {
  if (mode_ == LayoutMode::kRecordContiguous) {
    return log2_exact(static_cast<u64>(rows_per_group_) * (row_bytes_ / 4));
  }
  return group_shift_;
}

u32 InterleavedLayout::csr_ngroups() const {
  return static_cast<u32>(num_groups_);
}

u32 InterleavedLayout::csr_nrecords() const {
  if (mode_ == LayoutMode::kRecordContiguous) {
    // The skeleton's indices are in words here; a record with premultiplied
    // index i = r*fields is valid iff i < N*fields.
    return static_cast<u32>(num_records_ * fields_);
  }
  return static_cast<u32>(num_records_);
}

ThreadSlice InterleavedLayout::slice(ThreadMapping mapping, u32 cores,
                                     u32 contexts, u32 core, u32 ctx,
                                     u32 warp_width) const {
  const u32 threads = cores * contexts;
  ThreadSlice s;
  if (mode_ == LayoutMode::kRecordContiguous) {
    MLP_CHECK(mapping == ThreadMapping::kSlab,
              "record-contiguous layout uses slab mapping");
    const u32 row_words = row_bytes_ / 4;
    const u32 slab_words = row_words / cores;
    MLP_CHECK(fields_ <= slab_words,
              "record must fit the corelet slab in contiguous mode");
    const u32 records_per_slab = slab_words / fields_;
    const u32 per_corelet = rows_per_group_ * records_per_slab;
    MLP_CHECK(per_corelet % contexts == 0,
              "group must split evenly across contexts in contiguous mode");
    s.rpt = per_corelet / contexts;
    const u32 m0 = ctx * s.rpt;            // first record (corelet-local)
    const u32 row = m0 / records_per_slab;  // row within the group
    const u32 slot = m0 % records_per_slab;
    s.idx_base = row * row_words + core * slab_words + slot * fields_;
    s.idx_stride = fields_;  // consecutive records stay within the slab
    return s;
  }
  switch (mapping) {
    case ThreadMapping::kSlab: {
      // Corelet c owns slab words [c*S, (c+1)*S); context x owns rpt
      // consecutive records within that slab.
      const u32 slab_words = group_records_ / cores;
      MLP_CHECK(slab_words % contexts == 0,
                "slab must split evenly across contexts");
      s.rpt = slab_words / contexts;
      s.idx_base = core * slab_words + ctx * s.rpt;
      s.idx_stride = 1;
      break;
    }
    case ThreadMapping::kWordInterleaved: {
      // `core` is the warp index, `ctx` the lane: warp lanes own consecutive
      // records so global loads coalesce.
      MLP_CHECK(warp_width > 0, "word mapping needs the warp width");
      MLP_CHECK(group_records_ % threads == 0,
                "groups must split evenly across threads");
      s.rpt = group_records_ / threads;
      s.idx_base = core * warp_width + ctx;
      s.idx_stride = threads;
      break;
    }
  }
  return s;
}

u64 InterleavedLayout::expected_slab_mask(u64 row, u32 corelet,
                                          u32 cores) const {
  MLP_CHECK(row >= first_row() && row < first_row() + num_rows(),
            "row outside layout");
  const u32 slab_words = (row_bytes_ / 4) / cores;
  u64 mask = 0;
  if (mode_ == LayoutMode::kRecordContiguous) {
    const u64 row_index = row - first_row();
    for (u32 w = 0; w < slab_words; ++w) {
      const u64 record = row_index * records_per_row_ +
                         (corelet * slab_words + w) / fields_;
      if (record < num_records_) mask |= u64{1} << w;
    }
    return mask;
  }
  const u64 group = (row - first_row()) / fields_;
  for (u32 w = 0; w < slab_words; ++w) {
    const u64 record = (group << group_shift_) + corelet * slab_words + w;
    if (record < num_records_) mask |= u64{1} << w;
  }
  return mask;
}

}  // namespace mlp::workloads
