#pragma once
// The interleaved "array of structs of arrays" data layout (Section III-B).
//
// Records are organized in *groups* of `row_words` records; a group with F
// fields occupies F consecutive DRAM rows, one row per field:
//
//   row(g, f) = first_row + g*F + f
//   addr(f, r) = base + (g*F + f)*row_bytes + idx*4, g = r/G, idx = r%G
//
// Consequences the whole system relies on:
//  * the aggregate access stream over rows is strictly sequential, making
//    "prefetch the next row" 100% accurate;
//  * the same field of consecutive records is contiguous, so GPGPU warps
//    coalesce and Millipede corelets carve the row into contiguous slabs.
//
// Two thread-to-record mappings (Section IV-C):
//  * kSlab — corelet c owns records [c*S, (c+1)*S) of each group (S = slab
//    words); its context x owns `rpt` consecutive records of that slab.
//    Used by Millipede, SSMC, VWS-row and the multicore.
//  * kWordInterleaved — warp lanes own consecutive records so that a warp's
//    load coalesces into 1-2 cache lines ("GPGPUs must use word-size
//    columns"). Used by the plain GPGPU and VWS.

#include "common/config.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace mlp::workloads {

enum class ThreadMapping : u8 { kSlab, kWordInterleaved };

/// How a record's fields are placed (Section IV-C):
///  * kFieldMajor — the default "array of structs of arrays": field f of a
///    group's records forms one row; a record's fields span F rows.
///  * kRecordContiguous — the paper's slab-interleaving: a record's fields
///    are contiguous within one row ("wider columns"), so a record touches
///    exactly ONE row — tiny prefetch windows suffice. Requires the field
///    count to divide the 16-word corelet slab (F in {1,2,4,8,16}).
/// Kernels are oblivious: the CSR view (csr_* accessors) re-expresses the
/// geometry so the same Map-loop skeleton addresses both layouts.
enum class LayoutMode : u8 { kFieldMajor, kRecordContiguous };

/// A thread's share of each record group: it owns records
/// idx_base + j*idx_stride for j in [0, rpt).
struct ThreadSlice {
  u32 idx_base = 0;
  u32 idx_stride = 1;
  u32 rpt = 0;  ///< records per thread per group
};

class InterleavedLayout {
 public:
  InterleavedLayout(u32 row_bytes, u32 fields, u64 num_records,
                    Addr base = 0, LayoutMode mode = LayoutMode::kFieldMajor);

  LayoutMode mode() const { return mode_; }

  // Kernel-facing CSR view. For kFieldMajor these match the physical
  // geometry; for kRecordContiguous they re-express it so the skeleton's
  //   field0_addr = INPUT_BASE + g*CSR_FIELDS*(1<<CSR_ROW_SHIFT) + idx*4
  //   field stride = 1 << CSR_ROW_SHIFT
  // arithmetic lands on the right bytes (idx is then in words, not records,
  // and the tail guard compares against NRECORDS*fields consistently).
  u32 csr_fields() const;
  u32 csr_row_shift() const;
  u32 csr_group_shift() const;
  u32 csr_ngroups() const;
  u32 csr_nrecords() const;

  u32 fields() const { return fields_; }
  u64 num_records() const { return num_records_; }
  u32 group_records() const { return group_records_; }
  u32 group_shift() const { return group_shift_; }
  u32 row_shift() const { return row_shift_; }
  u64 num_groups() const { return num_groups_; }
  Addr base() const { return base_; }

  /// Byte address of field `f` of record `r`.
  Addr address(u32 field, u64 record) const;

  /// Rows occupied by one record group.
  u64 rows_per_group() const {
    return mode_ == LayoutMode::kRecordContiguous ? rows_per_group_ : fields_;
  }

  /// Concurrent rows a single record's field loads touch (the prefetch
  /// window must cover this).
  u32 record_row_footprint() const {
    return mode_ == LayoutMode::kRecordContiguous ? 1 : fields_;
  }

  /// Total bytes of the image (whole groups, including tail padding).
  u64 total_bytes() const { return num_groups_ * rows_per_group() * row_bytes_; }

  u64 first_row() const { return base_ >> row_shift_; }
  u64 num_rows() const { return num_groups_ * rows_per_group(); }

  /// The slice of each group owned by hardware thread (core, ctx) — or, for
  /// kWordInterleaved, by (warp_index, lane) packed as core=warp, ctx=lane.
  ThreadSlice slice(ThreadMapping mapping, u32 cores, u32 contexts, u32 core,
                    u32 ctx, u32 warp_width = 0) const;

  /// For the prefetch buffer's RowPlan: bitmask of slab words corelet `c`
  /// (of `cores`) will demand from `row` under the kSlab mapping, given the
  /// actual record count (tail groups are partial).
  u64 expected_slab_mask(u64 row, u32 corelet, u32 cores) const;

 private:
  u32 row_bytes_;
  u32 fields_;
  u64 num_records_;
  u32 group_records_;
  u32 group_shift_;
  u32 row_shift_;
  u64 num_groups_;
  Addr base_;
  LayoutMode mode_;

  // kRecordContiguous geometry.
  u32 records_per_row_ = 0;  ///< row_words / fields
  u32 rows_per_group_ = 0;   ///< enough rows for >=1 record per context
};

}  // namespace mlp::workloads
