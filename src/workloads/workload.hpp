#pragma once
// Workload descriptor: a BMLA kernel binary plus its data generator, live
// state schema, host golden reference, and final-Reduce logic. The same
// descriptor runs unchanged on every architecture; the host-side reduce
// combines the per-corelet (per-lane) partially-reduced states exactly as
// the paper's host CPU does (Section IV-D).

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "isa/program.hpp"
#include "mem/dram_image.hpp"
#include "mem/local_store.hpp"
#include "workloads/layout.hpp"

namespace mlp::workloads {

/// One logical field of the live state, used by the generic final Reduce and
/// by result comparison. Words at local offset_words + i*stride_words for
/// i in [0, count).
struct StateField {
  std::string name;
  u32 offset_words = 0;
  u32 count = 1;
  u32 stride_words = 1;
  bool is_float = false;
};

struct Workload {
  std::string name;
  std::string description;
  isa::Program program;
  u32 fields = 1;      ///< words per record
  u64 num_records = 0;
  std::array<u32, 8> args{};  ///< kernel ARG0..ARG7 CSR values

  std::vector<StateField> state_schema;

  /// Writes the synthetic input into the DRAM image through the layout.
  std::function<void(const InterleavedLayout&, mem::DramImage&, Rng&)> generate;

  /// Host golden result computed directly from the generated image; must be
  /// element-wise comparable with reduce_state()'s output.
  std::function<std::vector<double>(const mem::DramImage&,
                                    const InterleavedLayout&)>
      reference;

  /// Optional constant preload of each corelet's live state (e.g. centroids).
  std::function<void(mem::LocalStore&)> init_state;

  /// Relative tolerance for float comparisons (accumulation order differs
  /// between the parallel machine and the serial reference).
  double tolerance = 1e-9;
};

/// Host-side final Reduce: element-wise sum of every schema field across all
/// corelets' live states, flattened in schema order.
std::vector<double> reduce_state(const Workload& workload,
                                 const std::vector<const mem::LocalStore*>& states);

/// Golden comparison: every element within `tolerance` relatively.
/// Returns an empty string on success, else a diagnostic.
std::string compare_results(const std::vector<double>& reference,
                            const std::vector<double>& measured,
                            double tolerance);

}  // namespace mlp::workloads
