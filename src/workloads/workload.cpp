#include "workloads/workload.hpp"

#include <cmath>
#include <sstream>

namespace mlp::workloads {

std::vector<double> reduce_state(
    const Workload& workload,
    const std::vector<const mem::LocalStore*>& states) {
  std::vector<double> out;
  for (const StateField& field : workload.state_schema) {
    for (u32 i = 0; i < field.count; ++i) {
      const u32 addr = (field.offset_words + i * field.stride_words) * 4;
      double sum = 0.0;
      for (const mem::LocalStore* state : states) {
        MLP_CHECK(state != nullptr, "null state in reduce");
        sum += field.is_float
                   ? static_cast<double>(state->load_f32(addr))
                   : static_cast<double>(static_cast<i32>(state->load(addr)));
      }
      out.push_back(sum);
    }
  }
  return out;
}

std::string compare_results(const std::vector<double>& reference,
                            const std::vector<double>& measured,
                            double tolerance) {
  if (reference.size() != measured.size()) {
    std::ostringstream os;
    os << "size mismatch: reference " << reference.size() << " vs measured "
       << measured.size();
    return os.str();
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    const double scale =
        std::max({1.0, std::fabs(reference[i]), std::fabs(measured[i])});
    if (std::fabs(reference[i] - measured[i]) > tolerance * scale) {
      std::ostringstream os;
      os << "element " << i << ": reference " << reference[i]
         << " vs measured " << measured[i] << " (tolerance " << tolerance
         << ")";
      return os.str();
    }
  }
  return "";
}

}  // namespace mlp::workloads
