#pragma once
// The common Map-loop skeleton every BMLA kernel is built around: iterate
// over the record groups of the interleaved layout, and within each group
// over the thread's slice of records (tail records are guarded).
//
// Register conventions (a kernel body must respect them):
//   r1  idx_base        r8  group_shift
//   r2  idx_stride      r9  row_bytes (stride between a record's fields)
//   r3  idx end         r10 g (group index)
//   r4  num_groups      r11 group field-0 row base address
//   r5  num_records     r12 idx (record index within group)
//   r6  fields          r13 per-group idx limit (tail groups are shorter)
//   r7  input_base      r14 free for the body
//                       r15 address of the record's field 0 (body may clobber)
//   r16..r31            free for the kernel body and its preamble constants
//
// A body needing the global record id computes it as (g << group_shift)+idx:
//   sll r14, r10, r8 ; add r14, r14, r12
//
// The body reads every field of its record exactly once, in ascending field
// order (address stepping by r9) — the row-density contract the prefetch
// buffer's expected-consumption masks rely on.

#include <string>

namespace mlp::workloads {

/// Assembles the full kernel text: common preamble, kernel-specific
/// `preamble` (constant setup, may use r16..r31), then the group/record
/// loops around `body`.
///
/// With `record_barrier` (the Section IV-C software-barrier ablation) every
/// thread executes a processor-wide `bar` after each record slot; the loop
/// runs a fixed iteration count with a per-record validity guard so all
/// threads reach every barrier.
std::string kernel_skeleton(const std::string& preamble,
                            const std::string& body,
                            bool record_barrier = false);

}  // namespace mlp::workloads
