#include "workloads/bmla.hpp"

namespace mlp::workloads {

const std::vector<std::string>& bmla_names() {
  static const std::vector<std::string> names = {
      "count", "sample", "variance", "nbayes",
      "classify", "kmeans", "pca", "gda"};
  return names;
}

Workload make_bmla(const std::string& name, const WorkloadParams& params) {
  if (name == "count") return make_count(params);
  if (name == "sample") return make_sample(params);
  if (name == "variance") return make_variance(params);
  if (name == "nbayes") return make_nbayes(params);
  if (name == "classify") return make_classify(params);
  if (name == "kmeans") return make_kmeans(params);
  if (name == "pca") return make_pca(params);
  if (name == "gda") return make_gda(params);
  MLP_CHECK(false, ("unknown benchmark: " + name).c_str());
  return {};
}

}  // namespace mlp::workloads
