#include "workloads/skeleton.hpp"

namespace mlp::workloads {

std::string kernel_skeleton(const std::string& preamble,
                            const std::string& body, bool record_barrier) {
  if (record_barrier) {
    // Fixed-trip-count loop (guarded per record) so every thread reaches
    // every barrier; tail imbalance must not skip synchronization points.
    std::string out;
    out += R"(
    csrr r1, IDX_BASE
    csrr r2, IDX_STRIDE
    csrr r3, RPT
    csrr r4, NGROUPS
    csrr r5, NRECORDS
    csrr r6, FIELDS
    csrr r7, INPUT_BASE
    csrr r8, GROUP_SHIFT
    csrr r14, ROW_SHIFT
    li   r9, 1
    sll  r9, r9, r14        ; r9 = row bytes
    mul  r3, r3, r2
    add  r3, r3, r1         ; r3 = idx end
)";
    out += preamble;
    out += R"(
    li   r10, 0
group_loop:
    bge  r10, r4, done
    mul  r11, r10, r6
    mul  r11, r11, r9
    add  r11, r11, r7
    mv   r12, r1
rec_loop:
    sll  r14, r10, r8
    add  r14, r14, r12
    bge  r14, r5, skip_rec  ; per-record tail guard
    slli r15, r12, 2
    add  r15, r15, r11
)";
    out += body;
    out += R"(
skip_rec:
    bar                     ; record-granularity software barrier
    add  r12, r12, r2
    blt  r12, r3, rec_loop
next_group:
    addi r10, r10, 1
    j    group_loop
done:
    halt
)";
    return out;
  }
  // Per-record overhead is kept minimal (4 instructions: address compute,
  // index bump, loop branch) by hoisting the tail-group guard into a
  // per-group limit: the record loop runs idx from idx_base up to
  // min(idx_base + rpt*stride, records remaining in this group).
  std::string out;
  out += R"(
    csrr r1, IDX_BASE
    csrr r2, IDX_STRIDE
    csrr r3, RPT
    csrr r4, NGROUPS
    csrr r5, NRECORDS
    csrr r6, FIELDS
    csrr r7, INPUT_BASE
    csrr r8, GROUP_SHIFT
    csrr r14, ROW_SHIFT
    li   r9, 1
    sll  r9, r9, r14        ; r9 = row bytes
    mul  r3, r3, r2
    add  r3, r3, r1         ; r3 = idx end = idx_base + rpt*stride
)";
  out += preamble;
  out += R"(
    li   r10, 0             ; g = 0
group_loop:
    bge  r10, r4, done
    mul  r11, r10, r6       ; first row of group = g * fields
    mul  r11, r11, r9
    add  r11, r11, r7       ; field-0 row base address
    sll  r14, r10, r8
    sub  r14, r5, r14       ; records remaining from this group's start
    mv   r13, r3            ; limit = idx end
    bge  r14, r3, limit_ok
    mv   r13, r14           ; tail group: limit = remaining
limit_ok:
    mv   r12, r1            ; idx = idx_base
    bge  r12, r13, next_group
rec_loop:
    slli r15, r12, 2
    add  r15, r15, r11      ; address of field 0
)";
  out += body;
  out += R"(
    add  r12, r12, r2
    blt  r12, r13, rec_loop
next_group:
    addi r10, r10, 1
    j    group_loop
done:
    halt
)";
  return out;
}

}  // namespace mlp::workloads
