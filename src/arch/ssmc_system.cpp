// Plain SSMC: the same MIMD corelets as Millipede, but with a per-core 5 KB
// L1 D-cache holding BOTH the live state and the cache-block-prefetched
// input stream (Section III-E). The cores stray from each other, interleave
// row accesses at the shared FR-FCFS controller, and destroy row locality —
// the baseline Millipede's row-orientedness is measured against.

#include <optional>

#include "arch/system.hpp"
#include "core/corelet.hpp"
#include "core/decode_cache.hpp"
#include "mem/cache.hpp"
#include "mem/channels.hpp"
#include "mem/prefetcher.hpp"
#include "sim/kernel.hpp"

namespace mlp::arch {
namespace {

/// Routes input loads and live-state accesses through the per-core L1D.
class SsmcPort : public core::GlobalPort {
 public:
  SsmcPort(std::vector<mem::Cache>* caches,
           std::vector<mem::StreamTable>* prefetchers, Addr state_base,
           u32 state_stride)
      : caches_(caches),
        prefetchers_(prefetchers),
        state_base_(state_base),
        state_stride_(state_stride) {}

  core::PortResult load(u32 core, u32 /*ctx*/, Addr addr, Picos now,
                        std::function<void(Picos)> wakeup) override {
    mem::Cache& l1 = (*caches_)[core];
    for (Addr line : (*prefetchers_)[core].observe(addr)) {
      l1.prefetch(line, now);
    }
    return access(l1, addr, /*is_write=*/false, now, std::move(wakeup),
                  /*fixed=*/0);
  }

  core::PortResult local_access(u32 core, u32 /*ctx*/, Addr addr,
                                bool is_write, Picos /*fixed*/, Picos now,
                                std::function<void(Picos)> wakeup) override {
    // The live state lives in a cached per-core region of the global
    // address space, competing with the input stream for the 5 KB L1D.
    const Addr global = state_base_ + static_cast<Addr>(core) * state_stride_ +
                        addr;
    return access((*caches_)[core], global, is_write, now, std::move(wakeup),
                  0);
  }

 private:
  core::PortResult access(mem::Cache& l1, Addr addr, bool is_write, Picos now,
                          std::function<void(Picos)> wakeup, Picos) {
    switch (l1.access(addr, is_write, now, std::move(wakeup))) {
      case mem::AccessStatus::kHit:
        return {core::PortStatus::kDone, now + l1.hit_latency_ps()};
      case mem::AccessStatus::kMiss:
        return {core::PortStatus::kPending, 0};
      case mem::AccessStatus::kMshrFull:
        return {core::PortStatus::kRetry, 0};
    }
    return {core::PortStatus::kRetry, 0};
  }

  std::vector<mem::Cache>* caches_;
  std::vector<mem::StreamTable>* prefetchers_;
  Addr state_base_;
  u32 state_stride_;
};

}  // namespace

RunResult run_ssmc(const MachineConfig& cfg,
                   const workloads::Workload& workload, u64 seed,
                   trace::TraceSession* trace, const PreparedInput* prepared,
                   sim::SnapshotPlan* snapshot) {
  cfg.validate();
  // Private copy: the controller attaches to (and faults may corrupt) it.
  PreparedInput input =
      prepared != nullptr ? *prepared : prepare_input(cfg, workload, seed);

  StatSet stats;
  mem::ChannelDemux ctrl(cfg.dram, "dram", &stats, trace);
  ctrl.attach_image(&input.image);
  mem::ControllerBackend backend(&ctrl);

  const u32 cores = cfg.core.cores;
  const Picos hit_latency =
      static_cast<Picos>(cfg.ssmc.hit_latency) * cfg.core.period_ps();
  std::vector<mem::Cache> caches;
  std::vector<mem::StreamTable> prefetchers;
  caches.reserve(cores);
  prefetchers.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    // Only core 0's cache registers stats to keep snapshots readable; all
    // cores behave statistically alike.
    caches.emplace_back("l1d" + std::to_string(c), cfg.ssmc.l1d_bytes,
                        cfg.ssmc.line_bytes, cfg.ssmc.assoc, cfg.ssmc.mshrs,
                        hit_latency, &backend, c == 0 ? &stats : nullptr);
    prefetchers.emplace_back(cfg.ssmc.line_bytes, cfg.ssmc.prefetch_degree,
                             cfg.ssmc.prefetch_distance,
                             cfg.ssmc.prefetch_streams);
  }

  // State region: row-aligned, beyond the input image.
  const u32 state_stride =
      (cfg.core.local_mem_bytes + cfg.dram.row_bytes - 1) /
      cfg.dram.row_bytes * cfg.dram.row_bytes;
  const Addr state_base = input.layout.total_bytes();
  SsmcPort port(&caches, &prefetchers, state_base, state_stride);

  std::vector<mem::LocalStore> locals;
  locals.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    locals.emplace_back(cfg.core.local_mem_bytes);
    if (workload.init_state) workload.init_state(locals.back());
  }

  core::ExecStats exec;
  exec.register_with(&stats, "exec");
  // One decoded-block cache per job, shared read-only by all corelets.
  core::DecodedBlockCache dcache(workload.program, cfg.block_cache);
  dcache.register_with(&stats, "decode");
  std::vector<core::Corelet> corelets;
  corelets.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    corelets.emplace_back(c, cfg.core, &workload.program, &locals[c],
                          &input.image, &port, &exec, trace, &dcache);
    for (u32 x = 0; x < cfg.core.contexts; ++x) {
      const workloads::ThreadSlice slice = input.layout.slice(
          workloads::ThreadMapping::kSlab, cores, cfg.core.contexts, c, x);
      workloads::bind_csrs(corelets.back().context(x).csr, workload,
                           input.layout, slice, c * cfg.core.contexts + x,
                           cfg.core.threads(), c, cores, x,
                           cfg.core.contexts);
    }
  }

  sim::SimulationKernel kernel(cfg, "ssmc", trace);
  kernel.set_compute_edge_hook([&dcache] { dcache.begin_compute_edge(); });
  for (core::Corelet& corelet : corelets) kernel.add_compute(&corelet);
  for (mem::Cache& cache : caches) kernel.add_channel(&cache);
  kernel.add_channel(&ctrl);
  kernel.set_progress([&exec, &ctrl] {
    return exec.instructions.value + ctrl.bytes_transferred();
  });
  kernel.set_dump([&] {
    return "ssmc state:\n" + dump_corelets(corelets) + ctrl.debug_dump();
  });

  // Checkpoint wiring (fixed registration order = capture order).
  std::optional<mem::DramImage> pristine_copy;
  std::optional<sim::DramImageDelta> image_delta;
  if (snapshot != nullptr) {
    const mem::DramImage* pristine = prepared != nullptr ? &prepared->image
                                                         : nullptr;
    if (pristine == nullptr) {
      pristine_copy.emplace(input.image);
      pristine = &*pristine_copy;
    }
    image_delta.emplace(&input.image, pristine);
    kernel.add_state(sim::kSecDramDelta, &*image_delta);
    kernel.add_state(sim::kSecController, &ctrl);
    kernel.add_state(sim::kSecDecodeCache, &dcache);
    for (u32 c = 0; c < cores; ++c) {
      kernel.add_state(sim::kSecCoreletBase + c, &corelets[c]);
      kernel.add_state(sim::kSecL1Base + c, &caches[c]);
      kernel.add_state(sim::kSecStreamTableBase + c, &prefetchers[c]);
    }
    kernel.set_stats(&stats);
    const u64 image_bytes = input.image.size();
    kernel.set_meta_fn([&ctrl, image_bytes](sim::SnapshotMeta& m) {
      m.arch_label = "ssmc";
      m.warp_width = 0;
      m.image_bytes = image_bytes;
      m.fault_sequence = ctrl.fault_sequence();
    });
    kernel.set_plan(snapshot);
  }

  kernel.wire_trace(
      std::string("ssmc/") + workload.name, &stats,
      [&](trace::TraceSession* session) {
        trace::name_context_tracks(session, cores, cfg.core.contexts);
      },
      /*arch_hook=*/nullptr,
      [&ctrl] { return static_cast<u64>(ctrl.queue_size()); },
      ctrl.refresh_enabled()
          ? std::function<u64()>([&ctrl] { return ctrl.refresh_debt(); })
          : std::function<u64()>{});

  if (snapshot != nullptr && snapshot->restore_from != nullptr) {
    kernel.restore(*snapshot->restore_from);
  }

  const Picos runtime = kernel.run([&] {
    for (const auto& corelet : corelets) {
      if (!corelet.halted()) return false;
    }
    return true;
  });

  RunResult result;
  result.arch = "ssmc";
  result.workload = workload.name;
  result.compute_cycles = kernel.compute_cycles();
  result.runtime_ps = runtime;
  result.thread_instructions = exec.instructions.value;
  result.input_words = workload.num_records * workload.fields;
  result.final_clock_mhz = kernel.final_clock_mhz();
  finalize_result(&result, exec.branches.value, stats);

  energy::EnergyModel model;
  result.energy.core_j = model.mimd_core_j(exec, /*state_via_cache=*/true,
                                           /*input_via_cache=*/true);
  result.energy.dram_j = model.dram_j(ctrl.bytes_transferred(),
                                      ctrl.activations(), /*offchip=*/false,
                                      cfg.dram.fault.ecc);
  const double sram_kb =
      cores * (cfg.ssmc.l1d_bytes + cfg.core.icache_bytes) / 1024.0;
  result.energy.leak_j = model.leakage_j(cores, sram_kb, result.seconds());

  verify_result(&result, workload, input, locals, image_may_be_dirty(cfg));
  return result;
}

}  // namespace mlp::arch
