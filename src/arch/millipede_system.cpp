// The Millipede processor system: 32 MIMD corelets with per-corelet local
// memories, fed by the flow-controlled row-granularity prefetch buffer, with
// optional DFS rate matching — the paper's proposed architecture, plus the
// no-flow-control and no-rate-match ablations (selected via MachineConfig).

#include "arch/system.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include "common/error.hpp"
#include "core/barrier.hpp"
#include "core/corelet.hpp"
#include "core/decode_cache.hpp"
#include "mem/channels.hpp"
#include "millipede/prefetch_buffer.hpp"
#include "sim/kernel.hpp"

namespace mlp::arch {

RunResult run_millipede(const MachineConfig& cfg,
                        const workloads::Workload& workload, u64 seed,
                        trace::TraceSession* trace,
                        const PreparedInput* prepared,
                        sim::SnapshotPlan* snapshot) {
  cfg.validate();
  // The run owns a private copy of the prepared input: the controller
  // attaches to (and no-ECC fault injection may corrupt) the image.
  PreparedInput input =
      prepared != nullptr ? *prepared : prepare_input(cfg, workload, seed);
  // A record's field loads touch `record_row_footprint()` concurrent rows
  // (= fields under the field-major layout, 1 under slab-interleaving);
  // flow control deadlocks if the window cannot hold them all. Fail fast —
  // recoverably, so one undersized sweep point cannot kill a whole matrix.
  MLP_SIM_CHECK(cfg.millipede.unsafe_skip_window_check ||
                    cfg.millipede.pf_entries >=
                        input.layout.record_row_footprint(),
                "config",
                "prefetch window smaller than a record's row footprint");

  StatSet stats;
  mem::ChannelDemux ctrl(cfg.dram, "dram", &stats, trace);
  ctrl.attach_image(&input.image);

  sim::SimulationKernel kernel(cfg, "millipede", trace);

  std::unique_ptr<millipede::RateMatcher> rate_matcher;
  if (cfg.millipede.rate_match) {
    rate_matcher = std::make_unique<millipede::RateMatcher>(
        cfg.millipede, cfg.core, kernel.compute_clock(), &stats, "rate",
        trace);
  }

  millipede::RowPlan plan;
  plan.first_row = input.layout.first_row();
  plan.num_rows = input.layout.num_rows();
  const workloads::InterleavedLayout layout = input.layout;
  const u32 cores = cfg.core.cores;
  plan.expected_mask = [layout, cores](u64 row, u32 corelet) {
    return layout.expected_slab_mask(row, corelet, cores);
  };
  millipede::PrefetchBuffer pb(cfg, plan, &ctrl, rate_matcher.get(), &stats,
                               "pb", trace);
  // The software-barrier ablation compiles `bar` into the kernels; wire a
  // processor-wide barrier over the prefetch-buffer port when present.
  bool uses_bar = false;
  for (const isa::Instr& in : workload.program.instrs()) {
    uses_bar |= in.op == isa::Opcode::kBar;
  }
  core::BarrierPort barrier_port(&pb, cfg.core.threads());
  core::GlobalPort* port =
      uses_bar ? static_cast<core::GlobalPort*>(&barrier_port)
               : static_cast<core::GlobalPort*>(&pb);

  std::vector<mem::LocalStore> locals;
  locals.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    locals.emplace_back(cfg.core.local_mem_bytes);
    if (workload.init_state) workload.init_state(locals.back());
  }

  core::ExecStats exec;
  exec.register_with(&stats, "exec");
  // One decoded-block cache per job, shared read-only by all corelets.
  core::DecodedBlockCache dcache(workload.program, cfg.block_cache);
  dcache.register_with(&stats, "decode");
  std::vector<core::Corelet> corelets;
  corelets.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    corelets.emplace_back(c, cfg.core, &workload.program, &locals[c],
                          &input.image, port, &exec, trace, &dcache);
    for (u32 x = 0; x < cfg.core.contexts; ++x) {
      const workloads::ThreadSlice slice = input.layout.slice(
          workloads::ThreadMapping::kSlab, cores, cfg.core.contexts, c, x);
      workloads::bind_csrs(corelets.back().context(x).csr, workload,
                           input.layout, slice, c * cfg.core.contexts + x,
                           cfg.core.threads(), c, cores, x,
                           cfg.core.contexts);
    }
  }

  // On restore, the prefetch buffer's state (and the controller's queue)
  // come from the snapshot; priming would issue duplicate time-0 fetches
  // whose callbacks target entries the restore is about to overwrite.
  const bool restoring =
      snapshot != nullptr && snapshot->restore_from != nullptr;
  if (!restoring) pb.prime(0);
  kernel.set_compute_edge_hook([&dcache] { dcache.begin_compute_edge(); });
  for (core::Corelet& corelet : corelets) kernel.add_compute(&corelet);
  kernel.add_channel(&pb);
  kernel.add_channel(&ctrl);
  kernel.set_progress([&exec, &ctrl] {
    return exec.instructions.value + ctrl.bytes_transferred();
  });
  kernel.set_dump([&] {
    return "millipede state:\n" + dump_corelets(corelets) + pb.debug_dump() +
           ctrl.debug_dump();
  });
  const char* arch_label =
      cfg.millipede.flow_control
          ? (cfg.millipede.rate_match ? "millipede" : "millipede-no-rate-match")
          : "millipede-no-flow-control";

  // Checkpoint wiring: register every stateful component in a fixed order
  // (the capture order and the restore validator), the DRAM image as a delta
  // against the pristine prepared image, and the meta/stat hooks.
  std::optional<mem::DramImage> pristine_copy;
  std::optional<sim::DramImageDelta> image_delta;
  if (snapshot != nullptr) {
    const mem::DramImage* pristine = prepared != nullptr ? &prepared->image
                                                         : nullptr;
    if (pristine == nullptr) {
      pristine_copy.emplace(input.image);  // image is still unmutated here
      pristine = &*pristine_copy;
    }
    image_delta.emplace(&input.image, pristine);
    kernel.add_state(sim::kSecDramDelta, &*image_delta);
    kernel.add_state(sim::kSecController, &ctrl);
    kernel.add_state(sim::kSecPrefetchBuffer, &pb);
    if (rate_matcher) {
      kernel.add_state(sim::kSecRateMatcher, rate_matcher.get());
    }
    if (uses_bar) kernel.add_state(sim::kSecBarrier, &barrier_port);
    kernel.add_state(sim::kSecDecodeCache, &dcache);
    for (u32 c = 0; c < cores; ++c) {
      kernel.add_state(sim::kSecCoreletBase + c, &corelets[c]);
    }
    kernel.set_stats(&stats);
    const u64 image_bytes = input.image.size();
    kernel.set_meta_fn([&ctrl, arch_label, image_bytes](sim::SnapshotMeta& m) {
      m.arch_label = arch_label;
      m.warp_width = 0;
      m.image_bytes = image_bytes;
      m.fault_sequence = ctrl.fault_sequence();
    });
    kernel.set_plan(snapshot);
  }

  kernel.wire_trace(
      std::string(arch_label) + "/" + workload.name, &stats,
      [&](trace::TraceSession* session) {
        trace::name_context_tracks(session, cores, cfg.core.contexts);
      },
      [&](trace::TraceSession* session) {
        session->set_track_name(trace::kPrefetchTrack, "pb");
        session->set_track_name(trace::kRateMatchTrack, "rate");
        session->add_gauge("pb.occupancy",
                           [&pb] { return static_cast<u64>(pb.occupancy()); });
        session->add_gauge("pb.saturated", [&pb] {
          return static_cast<u64>(pb.saturated_entries());
        });
      },
      [&ctrl] { return static_cast<u64>(ctrl.queue_size()); },
      ctrl.refresh_enabled()
          ? std::function<u64()>([&ctrl] { return ctrl.refresh_debt(); })
          : std::function<u64()>{});

  if (restoring) kernel.restore(*snapshot->restore_from);

  const Picos runtime = kernel.run([&] {
    for (const auto& corelet : corelets) {
      if (!corelet.halted()) return false;
    }
    return true;
  });

  RunResult result;
  result.arch = arch_label;
  result.workload = workload.name;
  result.compute_cycles = kernel.compute_cycles();
  result.runtime_ps = runtime;
  result.thread_instructions = exec.instructions.value;
  result.input_words = workload.num_records * workload.fields;
  result.final_clock_mhz = kernel.final_clock_mhz();
  finalize_result(&result, exec.branches.value, stats);

  energy::EnergyModel model;
  result.energy.core_j = model.mimd_core_j(exec, /*state_via_cache=*/false,
                                           /*input_via_cache=*/false);
  if (cfg.millipede.rate_match && cfg.millipede.voltage_scaling) {
    // DVS on top of DFS: dynamic energy scales with V^2; approximate V by
    // the converged frequency ratio (the clock converges once, early).
    const double f_ratio = result.final_clock_mhz / cfg.core.clock_mhz;
    const double v_ratio =
        std::max(cfg.millipede.min_voltage_ratio, std::min(1.0, f_ratio));
    result.energy.core_j *= v_ratio * v_ratio;
  }
  result.energy.dram_j = model.dram_j(ctrl.bytes_transferred(),
                                      ctrl.activations(), /*offchip=*/false,
                                      cfg.dram.fault.ecc);
  // With ECC the prefetch-buffer SRAM also stores the check bits.
  const double pb_scale =
      cfg.dram.fault.ecc ? 1.0 + model.params().ecc_bit_overhead : 1.0;
  const double sram_kb =
      cores * (cfg.core.local_mem_bytes + cfg.core.icache_bytes +
               cfg.millipede.pf_entries * cfg.dram.row_bytes * pb_scale /
                   cores) /
      1024.0;
  result.energy.leak_j = model.leakage_j(cores, sram_kb, result.seconds());

  verify_result(&result, workload, input, locals, image_may_be_dirty(cfg));
  return result;
}

}  // namespace mlp::arch
