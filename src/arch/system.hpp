#pragma once
// Common result type and helpers shared by the architecture systems. Every
// run is also functionally verified: the per-corelet live states are reduced
// on the (simulated) host and compared against the workload's golden
// reference, so a timing-model bug that corrupts execution cannot silently
// produce "results".

#include <map>
#include <string>

#include "common/config.hpp"
#include "core/corelet.hpp"
#include "energy/energy.hpp"
#include "mem/dram_image.hpp"
#include "sim/snapshot.hpp"
#include "trace/trace.hpp"
#include "workloads/binding.hpp"
#include "workloads/bmla.hpp"

namespace mlp::arch {

enum class ArchKind : u8 {
  kMillipede,
  kMillipedeNoFlowControl,
  kMillipedeNoRateMatch,
  kSsmc,
  kGpgpu,
  kVws,
  kVwsRow,
  kMulticore,
};

const char* arch_name(ArchKind kind);

/// Inverse of arch_name (the tools' and the service protocol's spelling).
/// Returns false on unknown names.
bool arch_from_name(const std::string& name, ArchKind* out);

/// All architectures in declaration order (sweep "all" expansion).
const std::vector<ArchKind>& all_arch_kinds();

struct RunResult {
  std::string arch;
  std::string workload;
  u64 compute_cycles = 0;
  Picos runtime_ps = 0;
  u64 thread_instructions = 0;
  u64 input_words = 0;
  double insts_per_word = 0.0;
  double branches_per_inst = 0.0;
  double row_miss_rate = 0.0;      ///< DRAM row misses / row accesses
  double final_clock_mhz = 0.0;    ///< rate-matched clock (Millipede)
  u32 warp_width = 0;              ///< chosen width (GPGPU/VWS)
  energy::EnergyBreakdown energy;
  std::map<std::string, u64> stats;
  std::string verification;  ///< empty iff results matched the reference

  double seconds() const { return static_cast<double>(runtime_ps) * 1e-12; }
  double energy_delay() const { return energy.total_j() * seconds(); }
};

/// Generated input image + layout for a workload under a machine config,
/// plus the host golden reference computed from the pristine image. The
/// struct is position-independent of the architecture that will consume it
/// (only row geometry and the slab-layout switch matter), so one prepared
/// input can be shared — and memoized — across every ArchKind.
struct PreparedInput {
  workloads::InterleavedLayout layout;
  mem::DramImage image;
  /// Golden reference reduced from the pristine image; computed once at
  /// preparation so repeated (warm-cache) runs skip the host recompute.
  std::vector<double> reference;
};

PreparedInput prepare_input(const MachineConfig& cfg,
                            const workloads::Workload& workload, u64 seed);

/// Verify reduced live state against the golden reference; returns the
/// diagnostic ("" on success). Uses input.reference unless `image_dirty`
/// says the run may have mutated the image (no-ECC fault injection corrupts
/// it in place) — then the reference is recomputed from the current image,
/// preserving the pre-cache verification semantics.
std::string verify_run(const workloads::Workload& workload,
                       const PreparedInput& input,
                       const std::vector<const mem::LocalStore*>& states,
                       bool image_dirty = false);

/// True when a run under `cfg` may mutate the DRAM image in place: without
/// ECC, injected bit flips land in the functional bytes (the controller
/// calls DramImage::flip_bit), so the cached pristine reference no longer
/// describes what the corelets read.
inline bool image_may_be_dirty(const MachineConfig& cfg) {
  return cfg.dram.fault.bit_flip_rate > 0.0 && !cfg.dram.fault.ecc;
}

/// Fill the derived metrics every architecture reports the same way —
/// insts_per_word and branches_per_inst (a zero denominator pins the metric
/// to 0.0 rather than NaN/inf), row_miss_rate from the controller counters,
/// and the full counter snapshot. The caller sets thread_instructions and
/// input_words first and passes the branch numerator (the GPGPU scales
/// per-warp branches by the warp width); arch-specific fields
/// (final_clock_mhz, warp_width, energy) stay with the caller.
void finalize_result(RunResult* result, u64 branch_count,
                     const StatSet& stats);

/// Shared tail of every run: reduce the per-core live states and verify
/// against the workload's golden reference (RunResult::verification is ""
/// on success). `image_dirty` as in verify_run.
void verify_result(RunResult* result, const workloads::Workload& workload,
                   const PreparedInput& input,
                   const std::vector<mem::LocalStore>& states,
                   bool image_dirty);

/// Multi-line per-corelet context snapshot (PC, state, ready time) for the
/// forward-progress watchdog's diagnostic dump.
std::string dump_corelets(const std::vector<core::Corelet>& corelets);

/// Run `workload` on the architecture selected by `kind` (dispatches to the
/// concrete systems below). An optional TraceSession captures typed events
/// and interval timelines; it must outlive the call and is also written to
/// (partially) when the run throws SimError. When `prepared` is non-null the
/// run works on a private copy of it instead of regenerating layout, image
/// and golden reference — the warm-cache fast path; the caller keeps
/// ownership and the prepared input is never mutated.
///
/// A non-null SnapshotPlan requests mid-run checkpointing (sim/snapshot.hpp):
/// either capture at the first quiescent edge at or past plan->checkpoint_at,
/// or — when plan->restore_from is set — rebuild the machine, restore the
/// blob's state and finish the run bit-identically to the uninterrupted one.
RunResult run_arch(ArchKind kind, const MachineConfig& cfg,
                   const workloads::Workload& workload, u64 seed = 1,
                   trace::TraceSession* trace = nullptr,
                   const PreparedInput* prepared = nullptr,
                   sim::SnapshotPlan* snapshot = nullptr);

// Concrete system entry points.
RunResult run_millipede(const MachineConfig& cfg,
                        const workloads::Workload& workload, u64 seed,
                        trace::TraceSession* trace = nullptr,
                        const PreparedInput* prepared = nullptr,
                        sim::SnapshotPlan* snapshot = nullptr);
RunResult run_ssmc(const MachineConfig& cfg,
                   const workloads::Workload& workload, u64 seed,
                   trace::TraceSession* trace = nullptr,
                   const PreparedInput* prepared = nullptr,
                   sim::SnapshotPlan* snapshot = nullptr);
RunResult run_gpgpu(const MachineConfig& cfg,
                    const workloads::Workload& workload, u64 seed,
                    trace::TraceSession* trace = nullptr,
                    const PreparedInput* prepared = nullptr,
                    sim::SnapshotPlan* snapshot = nullptr);
RunResult run_multicore(const MachineConfig& cfg,
                        const workloads::Workload& workload, u64 seed,
                        trace::TraceSession* trace = nullptr,
                        const PreparedInput* prepared = nullptr,
                        sim::SnapshotPlan* snapshot = nullptr);

}  // namespace mlp::arch
