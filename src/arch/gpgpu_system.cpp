// GPGPU-based PNM system: one SM with the same lane count, thread count and
// on-die memory budget as the Millipede processor. Variants:
//  * plain GPGPU — 32-wide warps, word-interleaved record mapping (coalesced
//    loads), cache-block prefetch into the 32 KB L1D, live state in the
//    128 KB banked shared memory;
//  * VWS — dynamically picks 4- or 32-wide warps from a divergence-sampling
//    pilot run (the paper reports it always picks 4-wide for BMLAs);
//  * VWS-row — VWS plus Millipede's row-oriented, flow-controlled prefetch
//    buffer on the input path (slab record mapping).

#include "arch/system.hpp"

#include <memory>
#include <optional>
#include "common/error.hpp"
#include "core/decode_cache.hpp"
#include "gpgpu/sm.hpp"
#include "mem/channels.hpp"
#include "sim/kernel.hpp"

namespace mlp::arch {
namespace {

struct GpgpuParts {
  StatSet stats;
  std::unique_ptr<mem::ChannelDemux> ctrl;
  std::unique_ptr<mem::ControllerBackend> backend;
  std::unique_ptr<mem::Cache> l1d;
  std::unique_ptr<mem::SequentialPrefetcher> prefetcher;
  std::unique_ptr<millipede::PrefetchBuffer> pb;
  std::unique_ptr<mem::SharedMemBanking> banking;
  std::vector<mem::LocalStore> lane_state;
  gpgpu::SmStats sm_stats;
  std::unique_ptr<core::DecodedBlockCache> dcache;
  std::unique_ptr<gpgpu::StreamingMultiprocessor> sm;
};

/// Builds a fresh SM system of `width`-wide warps over the prepared input.
GpgpuParts build(const MachineConfig& cfg, const workloads::Workload& wl,
                 PreparedInput& input, u32 width,
                 trace::TraceSession* trace) {
  GpgpuParts parts;
  parts.ctrl = std::make_unique<mem::ChannelDemux>(
      cfg.dram, "dram", &parts.stats, trace);
  parts.ctrl->attach_image(&input.image);
  parts.backend = std::make_unique<mem::ControllerBackend>(parts.ctrl.get());
  const bool row = cfg.gpgpu.row_oriented;
  if (!row) {
    parts.l1d = std::make_unique<mem::Cache>(
        "l1d", cfg.gpgpu.l1d_bytes, cfg.gpgpu.line_bytes, cfg.gpgpu.l1d_assoc,
        cfg.gpgpu.mshrs,
        static_cast<Picos>(cfg.gpgpu.l1_hit_latency) * cfg.core.period_ps(),
        parts.backend.get(), &parts.stats);
    parts.prefetcher = std::make_unique<mem::SequentialPrefetcher>(
        cfg.gpgpu.line_bytes, cfg.gpgpu.prefetch_degree,
        cfg.gpgpu.prefetch_distance);
  } else {
    millipede::RowPlan plan;
    plan.first_row = input.layout.first_row();
    plan.num_rows = input.layout.num_rows();
    const workloads::InterleavedLayout layout = input.layout;
    const u32 cores = cfg.core.cores;
    plan.expected_mask = [layout, cores](u64 r, u32 c) {
      return layout.expected_slab_mask(r, c, cores);
    };
    parts.pb = std::make_unique<millipede::PrefetchBuffer>(
        cfg, plan, parts.ctrl.get(), nullptr, &parts.stats, "pb", trace);
  }
  parts.banking = std::make_unique<mem::SharedMemBanking>(
      cfg.gpgpu.shared_banks, mem::BankMapping::kLanePrivate);
  for (u32 i = 0; i < cfg.core.cores; ++i) {
    parts.lane_state.emplace_back(cfg.core.local_mem_bytes);
    if (wl.init_state) wl.init_state(parts.lane_state.back());
  }
  parts.sm_stats.register_with(&parts.stats, "sm");
  // Shared decoded stream for every warp of the SM (the VWS pilot gets its
  // own cache whose counters are discarded with the pilot's stats).
  parts.dcache =
      std::make_unique<core::DecodedBlockCache>(wl.program, cfg.block_cache);
  parts.dcache->register_with(&parts.stats, "decode");

  gpgpu::StreamingMultiprocessor::Deps deps;
  deps.program = &wl.program;
  deps.lane_state = &parts.lane_state;
  deps.dram = &input.image;
  deps.l1d = parts.l1d.get();
  deps.prefetcher = parts.prefetcher.get();
  deps.pb = parts.pb.get();
  deps.banking = parts.banking.get();
  deps.stats = &parts.sm_stats;
  deps.trace = trace;
  deps.dcache = parts.dcache.get();
  parts.sm =
      std::make_unique<gpgpu::StreamingMultiprocessor>(cfg, width, deps);

  // Thread-to-record mapping and CSR binding.
  const u32 groups = cfg.core.cores / width;
  for (u32 g = 0; g < groups; ++g) {
    for (u32 s = 0; s < cfg.core.contexts; ++s) {
      for (u32 l = 0; l < width; ++l) {
        const u32 lane = g * width + l;
        const u32 tid = s * cfg.core.cores + lane;
        workloads::ThreadSlice slice;
        if (row || cfg.gpgpu.slab_mapping_ablation) {
          // Slab mapping: physical lane == prefetch-buffer slab.
          slice = input.layout.slice(workloads::ThreadMapping::kSlab,
                                     cfg.core.cores, cfg.core.contexts, lane,
                                     s);
        } else {
          // Word-interleaved mapping: warp (g, s) covers consecutive
          // records so its loads coalesce.
          const u32 warp_index = g * cfg.core.contexts + s;
          slice = input.layout.slice(workloads::ThreadMapping::kWordInterleaved,
                                     cfg.core.cores, cfg.core.contexts,
                                     warp_index, l, width);
        }
        workloads::bind_csrs(parts.sm->context(g, s, l).csr, wl, input.layout,
                             slice, tid, cfg.core.threads(), lane,
                             cfg.core.cores, s, cfg.core.contexts);
      }
    }
  }
  // The caller primes the prefetch buffer (skipped when restoring a
  // snapshot, whose state replaces the time-0 fetches).
  return parts;
}

/// Registers the SM system's components and watchdog hooks on a kernel. The
/// caller wires the trace (final run only) and calls run().
void attach(sim::SimulationKernel* kernel, GpgpuParts& parts) {
  core::DecodedBlockCache* dcache = parts.dcache.get();
  kernel->set_compute_edge_hook([dcache] { dcache->begin_compute_edge(); });
  kernel->add_compute(parts.sm.get());
  if (parts.pb) kernel->add_channel(parts.pb.get());
  if (parts.l1d) kernel->add_channel(parts.l1d.get());
  kernel->add_channel(parts.ctrl.get());
  kernel->set_progress([&parts] {
    return parts.sm_stats.thread_instructions.value +
           parts.ctrl->bytes_transferred();
  });
  kernel->set_dump([&parts] {
    std::string out = "gpgpu state:\n" + parts.sm->debug_dump();
    if (parts.pb) out += parts.pb->debug_dump();
    out += parts.ctrl->debug_dump();
    return out;
  });
}

}  // namespace

RunResult run_gpgpu(const MachineConfig& cfg,
                    const workloads::Workload& workload, u64 seed,
                    trace::TraceSession* trace, const PreparedInput* prepared,
                    sim::SnapshotPlan* snapshot) {
  cfg.validate();
  MLP_SIM_CHECK(!cfg.slab_layout, "config",
                "the GPGPU needs word-size columns for coalescing "
                "(paper III-B)");
  MLP_SIM_CHECK(!cfg.gpgpu.row_oriented ||
                    cfg.millipede.unsafe_skip_window_check ||
                    cfg.millipede.pf_entries >= workload.fields,
                "config",
                "prefetch window smaller than a record's row footprint");
  // Private copy: the controller attaches to (and faults may corrupt) it.
  PreparedInput input =
      prepared != nullptr ? *prepared : prepare_input(cfg, workload, seed);

  const bool restoring =
      snapshot != nullptr && snapshot->restore_from != nullptr;
  u32 width = cfg.gpgpu.vws ? 0 : cfg.gpgpu.warp_width;
  if (restoring) {
    // The pilot already ran in the capturing process; its only durable
    // output is the chosen warp width, which the snapshot's meta section
    // carries. Re-running it here would simulate warmup cycles the restore
    // exists to skip.
    width = sim::snapshot_meta(*snapshot->restore_from).warp_width;
    MLP_SIM_CHECK(width != 0 && cfg.core.cores % width == 0, "snapshot",
                  "snapshot warp width does not divide the lane count");
  } else if (cfg.gpgpu.vws) {
    // VWS pilot: sample divergence at full width, then commit to 4- or
    // 32-wide warps for the real run (Rogers et al. [41], coarse-grained).
    MachineConfig pilot_cfg = cfg;
    pilot_cfg.gpgpu.row_oriented = false;  // pilot on the plain input path
    // The VWS pilot is untraced: its events and counters would pollute the
    // real run's timeline.
    GpgpuParts pilot = build(pilot_cfg, workload, input, cfg.core.cores,
                             /*trace=*/nullptr);
    sim::SimulationKernel pilot_kernel(pilot_cfg, "gpgpu", /*trace=*/nullptr);
    attach(&pilot_kernel, pilot);
    pilot_kernel.run([&pilot] {
      return pilot.sm->halted() ||
             pilot.sm_stats.warp_instructions.value >= 20000;
    });
    const double divergence =
        pilot.sm_stats.branches.value == 0
            ? 0.0
            : static_cast<double>(pilot.sm_stats.divergent_branches.value) /
                  static_cast<double>(pilot.sm_stats.branches.value);
    width = divergence > 0.10 ? 4 : cfg.core.cores;
    // Pilot mutated nothing persistent: lane state and image are rebuilt.
    input = prepared != nullptr ? *prepared
                                : prepare_input(cfg, workload, seed);
  }

  GpgpuParts parts = build(cfg, workload, input, width, trace);
  if (parts.pb && !restoring) parts.pb->prime(0);
  const char* arch_label = cfg.gpgpu.row_oriented
                               ? "vws-row"
                               : (cfg.gpgpu.vws ? "vws" : "gpgpu");
  sim::SimulationKernel kernel(cfg, "gpgpu", trace);
  attach(&kernel, parts);

  // Checkpoint wiring (fixed registration order = capture order).
  std::optional<mem::DramImage> pristine_copy;
  std::optional<sim::DramImageDelta> image_delta;
  if (snapshot != nullptr) {
    const mem::DramImage* pristine = prepared != nullptr ? &prepared->image
                                                         : nullptr;
    if (pristine == nullptr) {
      pristine_copy.emplace(input.image);
      pristine = &*pristine_copy;
    }
    image_delta.emplace(&input.image, pristine);
    kernel.add_state(sim::kSecDramDelta, &*image_delta);
    kernel.add_state(sim::kSecController, parts.ctrl.get());
    kernel.add_state(sim::kSecSm, parts.sm.get());
    if (parts.pb) kernel.add_state(sim::kSecPrefetchBuffer, parts.pb.get());
    if (parts.prefetcher) {
      kernel.add_state(sim::kSecSeqPrefetcher, parts.prefetcher.get());
    }
    kernel.add_state(sim::kSecDecodeCache, parts.dcache.get());
    if (parts.l1d) kernel.add_state(sim::kSecL1Base, parts.l1d.get());
    kernel.set_stats(&parts.stats);
    const u64 image_bytes = input.image.size();
    mem::ChannelDemux* ctrl = parts.ctrl.get();
    kernel.set_meta_fn(
        [ctrl, arch_label, width, image_bytes](sim::SnapshotMeta& m) {
          m.arch_label = arch_label;
          m.warp_width = width;
          m.image_bytes = image_bytes;
          m.fault_sequence = ctrl->fault_sequence();
        });
    kernel.set_plan(snapshot);
  }

  kernel.wire_trace(
      std::string(arch_label) + "/" + workload.name, &parts.stats,
      [&](trace::TraceSession* session) {
        const u32 groups = cfg.core.cores / width;
        for (u32 g = 0; g < groups; ++g) {
          for (u32 s2 = 0; s2 < cfg.core.contexts; ++s2) {
            session->set_track_name(g * cfg.core.contexts + s2,
                                    "w" + std::to_string(g) + "." +
                                        std::to_string(s2));
          }
        }
      },
      [&](trace::TraceSession* session) {
        if (parts.pb) {
          session->set_track_name(trace::kPrefetchTrack, "pb");
          session->add_gauge("pb.occupancy", [&parts] {
            return static_cast<u64>(parts.pb->occupancy());
          });
        }
      },
      [&parts] { return static_cast<u64>(parts.ctrl->queue_size()); },
      parts.ctrl->refresh_enabled()
          ? std::function<u64()>(
                [&parts] { return parts.ctrl->refresh_debt(); })
          : std::function<u64()>{});

  if (restoring) kernel.restore(*snapshot->restore_from);

  const Picos runtime = kernel.run([&parts] { return parts.sm->halted(); });

  RunResult result;
  result.arch = arch_label;
  result.workload = workload.name;
  result.compute_cycles = kernel.compute_cycles();
  result.runtime_ps = runtime;
  result.thread_instructions = parts.sm_stats.thread_instructions.value;
  result.input_words = workload.num_records * workload.fields;
  // The nominal frequency, not the kernel's period-derived value: the GPGPU
  // never retunes, and the ps-quantized period round-trips to ~3610 MHz.
  result.final_clock_mhz = cfg.core.clock_mhz;
  result.warp_width = width;
  finalize_result(&result, parts.sm_stats.branches.value * width,
                  parts.stats);

  energy::EnergyModel model;
  result.energy.core_j = model.gpgpu_core_j(parts.sm_stats);
  result.energy.dram_j =
      model.dram_j(parts.ctrl->bytes_transferred(), parts.ctrl->activations(),
                   /*offchip=*/false, cfg.dram.fault.ecc);
  const double sram_kb =
      (cfg.gpgpu.l1d_bytes + cfg.gpgpu.shared_mem_bytes +
       cfg.core.icache_bytes) /
      1024.0;
  result.energy.leak_j =
      model.leakage_j(cfg.core.cores, sram_kb, result.seconds());

  verify_result(&result, workload, input, parts.lane_state,
                image_may_be_dirty(cfg));
  return result;
}

}  // namespace mlp::arch
