// GPGPU-based PNM system: one SM with the same lane count, thread count and
// on-die memory budget as the Millipede processor. Variants:
//  * plain GPGPU — 32-wide warps, word-interleaved record mapping (coalesced
//    loads), cache-block prefetch into the 32 KB L1D, live state in the
//    128 KB banked shared memory;
//  * VWS — dynamically picks 4- or 32-wide warps from a divergence-sampling
//    pilot run (the paper reports it always picks 4-wide for BMLAs);
//  * VWS-row — VWS plus Millipede's row-oriented, flow-controlled prefetch
//    buffer on the input path (slab record mapping).

#include "arch/system.hpp"

#include <memory>
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/watchdog.hpp"
#include "gpgpu/sm.hpp"
#include "mem/controller.hpp"

namespace mlp::arch {
namespace {

struct GpgpuParts {
  StatSet stats;
  std::unique_ptr<mem::MemoryController> ctrl;
  std::unique_ptr<mem::ControllerBackend> backend;
  std::unique_ptr<mem::Cache> l1d;
  std::unique_ptr<mem::SequentialPrefetcher> prefetcher;
  std::unique_ptr<millipede::PrefetchBuffer> pb;
  std::unique_ptr<mem::SharedMemBanking> banking;
  std::vector<mem::LocalStore> lane_state;
  gpgpu::SmStats sm_stats;
  std::unique_ptr<gpgpu::StreamingMultiprocessor> sm;
};

/// Builds a fresh SM system of `width`-wide warps over the prepared input.
GpgpuParts build(const MachineConfig& cfg, const workloads::Workload& wl,
                 PreparedInput& input, u32 width,
                 trace::TraceSession* trace) {
  GpgpuParts parts;
  parts.ctrl = std::make_unique<mem::MemoryController>(
      cfg.dram, "dram", &parts.stats, trace);
  parts.ctrl->attach_image(&input.image);
  parts.backend = std::make_unique<mem::ControllerBackend>(parts.ctrl.get());
  const bool row = cfg.gpgpu.row_oriented;
  if (!row) {
    parts.l1d = std::make_unique<mem::Cache>(
        "l1d", cfg.gpgpu.l1d_bytes, cfg.gpgpu.line_bytes, cfg.gpgpu.l1d_assoc,
        cfg.gpgpu.mshrs,
        static_cast<Picos>(cfg.gpgpu.l1_hit_latency) * cfg.core.period_ps(),
        parts.backend.get(), &parts.stats);
    parts.prefetcher = std::make_unique<mem::SequentialPrefetcher>(
        cfg.gpgpu.line_bytes, cfg.gpgpu.prefetch_degree,
        cfg.gpgpu.prefetch_distance);
  } else {
    millipede::RowPlan plan;
    plan.first_row = input.layout.first_row();
    plan.num_rows = input.layout.num_rows();
    const workloads::InterleavedLayout layout = input.layout;
    const u32 cores = cfg.core.cores;
    plan.expected_mask = [layout, cores](u64 r, u32 c) {
      return layout.expected_slab_mask(r, c, cores);
    };
    parts.pb = std::make_unique<millipede::PrefetchBuffer>(
        cfg, plan, parts.ctrl.get(), nullptr, &parts.stats, "pb", trace);
  }
  parts.banking = std::make_unique<mem::SharedMemBanking>(
      cfg.gpgpu.shared_banks, mem::BankMapping::kLanePrivate);
  for (u32 i = 0; i < cfg.core.cores; ++i) {
    parts.lane_state.emplace_back(cfg.core.local_mem_bytes);
    if (wl.init_state) wl.init_state(parts.lane_state.back());
  }
  parts.sm_stats.register_with(&parts.stats, "sm");

  gpgpu::StreamingMultiprocessor::Deps deps;
  deps.program = &wl.program;
  deps.lane_state = &parts.lane_state;
  deps.dram = &input.image;
  deps.l1d = parts.l1d.get();
  deps.prefetcher = parts.prefetcher.get();
  deps.pb = parts.pb.get();
  deps.banking = parts.banking.get();
  deps.stats = &parts.sm_stats;
  deps.trace = trace;
  parts.sm =
      std::make_unique<gpgpu::StreamingMultiprocessor>(cfg, width, deps);

  // Thread-to-record mapping and CSR binding.
  const u32 groups = cfg.core.cores / width;
  for (u32 g = 0; g < groups; ++g) {
    for (u32 s = 0; s < cfg.core.contexts; ++s) {
      for (u32 l = 0; l < width; ++l) {
        const u32 lane = g * width + l;
        const u32 tid = s * cfg.core.cores + lane;
        workloads::ThreadSlice slice;
        if (row || cfg.gpgpu.slab_mapping_ablation) {
          // Slab mapping: physical lane == prefetch-buffer slab.
          slice = input.layout.slice(workloads::ThreadMapping::kSlab,
                                     cfg.core.cores, cfg.core.contexts, lane,
                                     s);
        } else {
          // Word-interleaved mapping: warp (g, s) covers consecutive
          // records so its loads coalesce.
          const u32 warp_index = g * cfg.core.contexts + s;
          slice = input.layout.slice(workloads::ThreadMapping::kWordInterleaved,
                                     cfg.core.cores, cfg.core.contexts,
                                     warp_index, l, width);
        }
        workloads::bind_csrs(parts.sm->context(g, s, l).csr, wl, input.layout,
                             slice, tid, cfg.core.threads(), lane,
                             cfg.core.cores, s, cfg.core.contexts);
      }
    }
  }
  if (parts.pb) parts.pb->prime(0);
  return parts;
}

/// Runs to completion (or until `max_warp_instructions` for VWS pilots).
Picos run_loop(const MachineConfig& cfg, GpgpuParts& parts,
               u64 max_warp_instructions, u64* cycles_out,
               trace::TraceSession* trace = nullptr) {
  ClockDomain compute(cfg.core.period_ps());
  ClockDomain channel(cfg.dram.period_ps());
  Picos now = 0;
  Watchdog watchdog(cfg.watchdog, "gpgpu", [&parts] {
    std::string out = "gpgpu state:\n" + parts.sm->debug_dump();
    if (parts.pb) out += parts.pb->debug_dump();
    out += parts.ctrl->debug_dump();
    return out;
  }, trace);
  while (!parts.sm->halted() &&
         parts.sm_stats.warp_instructions.value < max_warp_instructions) {
    watchdog.step(parts.sm_stats.thread_instructions.value +
                  parts.ctrl->bytes_transferred(), now);
    if (compute.next_edge_ps() <= channel.next_edge_ps()) {
      now = compute.next_edge_ps();
      parts.sm->tick(now, compute.period_ps());
      if (trace != nullptr) trace->tick_compute(compute.ticks(), now);
      compute.advance();
    } else {
      now = channel.next_edge_ps();
      if (parts.pb) parts.pb->pump(now);
      if (parts.l1d) parts.l1d->pump(now);
      parts.ctrl->tick(now);
      channel.advance();
    }
  }
  *cycles_out = compute.ticks();
  if (trace != nullptr) trace->finish_run(compute.ticks(), now);
  return now;
}

}  // namespace

RunResult run_gpgpu(const MachineConfig& cfg,
                    const workloads::Workload& workload, u64 seed,
                    trace::TraceSession* trace, const PreparedInput* prepared) {
  cfg.validate();
  MLP_SIM_CHECK(!cfg.slab_layout, "config",
                "the GPGPU needs word-size columns for coalescing "
                "(paper III-B)");
  MLP_SIM_CHECK(!cfg.gpgpu.row_oriented ||
                    cfg.millipede.unsafe_skip_window_check ||
                    cfg.millipede.pf_entries >= workload.fields,
                "config",
                "prefetch window smaller than a record's row footprint");
  // Private copy: the controller attaches to (and faults may corrupt) it.
  PreparedInput input =
      prepared != nullptr ? *prepared : prepare_input(cfg, workload, seed);

  u32 width = cfg.gpgpu.vws ? 0 : cfg.gpgpu.warp_width;
  if (cfg.gpgpu.vws) {
    // VWS pilot: sample divergence at full width, then commit to 4- or
    // 32-wide warps for the real run (Rogers et al. [41], coarse-grained).
    MachineConfig pilot_cfg = cfg;
    pilot_cfg.gpgpu.row_oriented = false;  // pilot on the plain input path
    // The VWS pilot is untraced: its events and counters would pollute the
    // real run's timeline.
    GpgpuParts pilot = build(pilot_cfg, workload, input, cfg.core.cores,
                             /*trace=*/nullptr);
    u64 cycles = 0;
    run_loop(pilot_cfg, pilot, /*max_warp_instructions=*/20000, &cycles);
    const double divergence =
        pilot.sm_stats.branches.value == 0
            ? 0.0
            : static_cast<double>(pilot.sm_stats.divergent_branches.value) /
                  static_cast<double>(pilot.sm_stats.branches.value);
    width = divergence > 0.10 ? 4 : cfg.core.cores;
    // Pilot mutated nothing persistent: lane state and image are rebuilt.
    input = prepared != nullptr ? *prepared
                                : prepare_input(cfg, workload, seed);
  }

  GpgpuParts parts = build(cfg, workload, input, width, trace);
  const char* arch_label = cfg.gpgpu.row_oriented
                               ? "vws-row"
                               : (cfg.gpgpu.vws ? "vws" : "gpgpu");
  if (trace != nullptr) {
    trace->begin_run(std::string(arch_label) + "/" + workload.name,
                     &parts.stats);
    const u32 groups = cfg.core.cores / width;
    for (u32 g = 0; g < groups; ++g) {
      for (u32 s2 = 0; s2 < cfg.core.contexts; ++s2) {
        trace->set_track_name(g * cfg.core.contexts + s2,
                              "w" + std::to_string(g) + "." +
                                  std::to_string(s2));
      }
    }
    for (u32 b = 0; b < cfg.dram.banks; ++b) {
      trace->set_track_name(trace::kDramTrackBase + b,
                            "dram.bank" + std::to_string(b));
    }
    if (parts.pb) {
      trace->set_track_name(trace::kPrefetchTrack, "pb");
      trace->add_gauge("pb.occupancy", [&parts] {
        return static_cast<u64>(parts.pb->occupancy());
      });
    }
    trace->set_track_name(trace::kWatchdogTrack, "watchdog");
    trace->add_gauge("dram.queue", [&parts] {
      return static_cast<u64>(parts.ctrl->queue_size());
    });
  }
  u64 cycles = 0;
  const Picos runtime =
      run_loop(cfg, parts, /*max_warp_instructions=*/~0ull, &cycles, trace);

  RunResult result;
  result.arch = arch_label;
  result.workload = workload.name;
  result.compute_cycles = cycles;
  result.runtime_ps = runtime;
  result.thread_instructions = parts.sm_stats.thread_instructions.value;
  result.input_words = workload.num_records * workload.fields;
  result.insts_per_word = static_cast<double>(result.thread_instructions) /
                          static_cast<double>(result.input_words);
  result.branches_per_inst =
      static_cast<double>(parts.sm_stats.branches.value * width) /
      static_cast<double>(result.thread_instructions);
  result.final_clock_mhz = cfg.core.clock_mhz;
  result.warp_width = width;
  fill_dram_stats(&result, parts.stats);

  energy::EnergyModel model;
  result.energy.core_j = model.gpgpu_core_j(parts.sm_stats);
  result.energy.dram_j =
      model.dram_j(parts.ctrl->bytes_transferred(), parts.ctrl->activations(),
                   /*offchip=*/false, cfg.dram.fault.ecc);
  const double sram_kb =
      (cfg.gpgpu.l1d_bytes + cfg.gpgpu.shared_mem_bytes +
       cfg.core.icache_bytes) /
      1024.0;
  result.energy.leak_j =
      model.leakage_j(cfg.core.cores, sram_kb, result.seconds());

  std::vector<const mem::LocalStore*> states;
  for (const auto& local : parts.lane_state) states.push_back(&local);
  result.verification =
      verify_run(workload, input, states, image_may_be_dirty(cfg));
  return result;
}

}  // namespace mlp::arch
