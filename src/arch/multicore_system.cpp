// Conventional multicore baseline for the Fig. 5 comparison: 8 Xeon-like
// cores at 3.6 GHz, 4-way SMT, 4-wide issue (approximated by issuing up to
// 4 instructions per cycle across a core's SMT contexts — see DESIGN.md),
// 64 KB L1 + 1 MB per-core L2, and off-chip DRAM at one quarter of the
// die-stacked channel bandwidth with 70 pJ/bit access energy.

#include <optional>

#include "arch/system.hpp"
#include "core/corelet.hpp"
#include "core/decode_cache.hpp"
#include "mem/cache.hpp"
#include "mem/channels.hpp"
#include "mem/prefetcher.hpp"
#include "sim/kernel.hpp"

namespace mlp::arch {
namespace {

/// Routes loads and state accesses through the per-core L1 -> L2 -> DRAM.
class MulticorePort : public core::GlobalPort {
 public:
  MulticorePort(std::vector<mem::Cache>* l1s,
                std::vector<mem::StreamTable>* prefetchers,
                Addr state_base, u32 state_stride)
      : l1s_(l1s),
        prefetchers_(prefetchers),
        state_base_(state_base),
        state_stride_(state_stride) {}

  core::PortResult load(u32 core, u32 /*ctx*/, Addr addr, Picos now,
                        std::function<void(Picos)> wakeup) override {
    mem::Cache& l1 = (*l1s_)[core];
    for (Addr line : (*prefetchers_)[core].observe(addr)) {
      l1.prefetch(line, now);
    }
    return access(l1, addr, false, now, std::move(wakeup));
  }

  core::PortResult local_access(u32 core, u32 /*ctx*/, Addr addr,
                                bool is_write, Picos /*fixed*/, Picos now,
                                std::function<void(Picos)> wakeup) override {
    const Addr global =
        state_base_ + static_cast<Addr>(core) * state_stride_ + addr;
    return access((*l1s_)[core], global, is_write, now, std::move(wakeup));
  }

 private:
  core::PortResult access(mem::Cache& l1, Addr addr, bool is_write, Picos now,
                          std::function<void(Picos)> wakeup) {
    switch (l1.access(addr, is_write, now, std::move(wakeup))) {
      case mem::AccessStatus::kHit:
        return {core::PortStatus::kDone, now + l1.hit_latency_ps()};
      case mem::AccessStatus::kMiss:
        return {core::PortStatus::kPending, 0};
      case mem::AccessStatus::kMshrFull:
        return {core::PortStatus::kRetry, 0};
    }
    return {core::PortStatus::kRetry, 0};
  }

  std::vector<mem::Cache>* l1s_;
  std::vector<mem::StreamTable>* prefetchers_;
  Addr state_base_;
  u32 state_stride_;
};

/// Wide issue: up to issue_width instructions per core per cycle, drawn from
/// its SMT contexts (OoO approximation; DESIGN.md) — the corelet ticks
/// issue_width times per compute edge. An idle edge therefore charges
/// issue_width idle cycles, which skip_idle reproduces in bulk.
class WideCorelet final : public sim::Tickable {
 public:
  WideCorelet(core::Corelet* corelet, u32 issue_width)
      : corelet_(corelet), issue_width_(issue_width) {}

  void tick(Picos now, Picos period_ps) override {
    for (u32 slot = 0; slot < issue_width_; ++slot) {
      corelet_->tick(now, period_ps);
    }
  }
  Picos next_event(Picos now) const override {
    return corelet_->next_event(now);
  }
  void skip_idle(u64 edges) override {
    corelet_->skip_idle(edges * issue_width_);
  }

 private:
  core::Corelet* corelet_;
  u32 issue_width_;
};

}  // namespace

RunResult run_multicore(const MachineConfig& cfg,
                        const workloads::Workload& workload, u64 seed,
                        trace::TraceSession* trace,
                        const PreparedInput* prepared,
                        sim::SnapshotPlan* snapshot) {
  // Off-chip memory: one quarter of the die-stacked memory bandwidth. A
  // die-stacked cube exposes 4 channels, so the multicore's off-chip DRAM
  // gets one channel's worth of bandwidth (~DDR4-class).
  MachineConfig mc = cfg;
  mc.dram.channel_bits = static_cast<u32>(cfg.dram.channel_bits * 4 *
                                          cfg.multicore.offchip_bw_fraction);
  mc.core.cores = cfg.multicore.cores;
  mc.core.contexts = cfg.multicore.smt;
  mc.core.clock_mhz = cfg.multicore.clock_mhz;
  mc.gpgpu.warp_width = 1;  // unused; keep validation happy
  mc.validate();
  // `mc` only retunes core counts and channel width; layout and image depend
  // solely on row geometry, so the shared prepared input is still valid.
  PreparedInput input =
      prepared != nullptr ? *prepared : prepare_input(mc, workload, seed);

  StatSet stats;
  mem::ChannelDemux ctrl(mc.dram, "dram", &stats, trace);
  ctrl.attach_image(&input.image);
  mem::ControllerBackend backend(&ctrl);

  const u32 cores = mc.core.cores;
  const Picos period = mc.core.period_ps();
  std::vector<mem::Cache> l2s, l1s;
  std::vector<mem::StreamTable> prefetchers;
  l2s.reserve(cores);
  l1s.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    l2s.emplace_back("l2." + std::to_string(c), cfg.multicore.l2_bytes,
                     cfg.multicore.line_bytes, cfg.multicore.l2_assoc, 16,
                     static_cast<Picos>(cfg.multicore.l2_latency) * period,
                     &backend, c == 0 ? &stats : nullptr);
  }
  for (u32 c = 0; c < cores; ++c) {
    l1s.emplace_back("l1." + std::to_string(c), cfg.multicore.l1_bytes,
                     cfg.multicore.line_bytes, cfg.multicore.l1_assoc, 16,
                     static_cast<Picos>(cfg.multicore.l1_latency) * period,
                     &l2s[c], c == 0 ? &stats : nullptr);
    prefetchers.emplace_back(cfg.multicore.line_bytes, 4, 16, 8);
  }

  const u32 state_stride =
      (mc.core.local_mem_bytes + mc.dram.row_bytes - 1) / mc.dram.row_bytes *
      mc.dram.row_bytes;
  MulticorePort port(&l1s, &prefetchers, input.layout.total_bytes(),
                     state_stride);

  std::vector<mem::LocalStore> locals;
  for (u32 c = 0; c < cores; ++c) {
    locals.emplace_back(mc.core.local_mem_bytes);
    if (workload.init_state) workload.init_state(locals.back());
  }

  core::ExecStats exec;
  exec.register_with(&stats, "exec");
  // One decoded-block cache per job, shared read-only by all corelets.
  core::DecodedBlockCache dcache(workload.program, mc.block_cache);
  dcache.register_with(&stats, "decode");
  std::vector<core::Corelet> corelets;
  corelets.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    corelets.emplace_back(c, mc.core, &workload.program, &locals[c],
                          &input.image, &port, &exec, trace, &dcache);
    for (u32 x = 0; x < mc.core.contexts; ++x) {
      const workloads::ThreadSlice slice = input.layout.slice(
          workloads::ThreadMapping::kSlab, cores, mc.core.contexts, c, x);
      workloads::bind_csrs(corelets.back().context(x).csr, workload,
                           input.layout, slice, c * mc.core.contexts + x,
                           mc.core.threads(), c, cores, x, mc.core.contexts);
    }
  }

  std::vector<WideCorelet> wide;
  wide.reserve(cores);
  for (core::Corelet& corelet : corelets) {
    wide.emplace_back(&corelet, cfg.multicore.issue_width);
  }

  sim::SimulationKernel kernel(mc, "multicore", trace);
  kernel.set_compute_edge_hook([&dcache] { dcache.begin_compute_edge(); });
  for (WideCorelet& corelet : wide) kernel.add_compute(&corelet);
  for (mem::Cache& l1 : l1s) kernel.add_channel(&l1);
  for (mem::Cache& l2 : l2s) kernel.add_channel(&l2);
  kernel.add_channel(&ctrl);
  kernel.set_progress([&exec, &ctrl] {
    return exec.instructions.value + ctrl.bytes_transferred();
  });
  kernel.set_dump([&] {
    return "multicore state:\n" + dump_corelets(corelets) + ctrl.debug_dump();
  });

  // Checkpoint wiring (fixed registration order = capture order). The inner
  // Corelets — not the WideCorelet issue wrappers, which hold no state —
  // implement the Snapshottable contract.
  std::optional<mem::DramImage> pristine_copy;
  std::optional<sim::DramImageDelta> image_delta;
  if (snapshot != nullptr) {
    const mem::DramImage* pristine = prepared != nullptr ? &prepared->image
                                                         : nullptr;
    if (pristine == nullptr) {
      pristine_copy.emplace(input.image);
      pristine = &*pristine_copy;
    }
    image_delta.emplace(&input.image, pristine);
    kernel.add_state(sim::kSecDramDelta, &*image_delta);
    kernel.add_state(sim::kSecController, &ctrl);
    kernel.add_state(sim::kSecDecodeCache, &dcache);
    for (u32 c = 0; c < cores; ++c) {
      kernel.add_state(sim::kSecCoreletBase + c, &corelets[c]);
      kernel.add_state(sim::kSecL1Base + c, &l1s[c]);
      kernel.add_state(sim::kSecL2Base + c, &l2s[c]);
      kernel.add_state(sim::kSecStreamTableBase + c, &prefetchers[c]);
    }
    kernel.set_stats(&stats);
    const u64 image_bytes = input.image.size();
    kernel.set_meta_fn([&ctrl, image_bytes](sim::SnapshotMeta& m) {
      m.arch_label = "multicore";
      m.warp_width = 0;
      m.image_bytes = image_bytes;
      m.fault_sequence = ctrl.fault_sequence();
    });
    kernel.set_plan(snapshot);
  }

  kernel.wire_trace(
      std::string("multicore/") + workload.name, &stats,
      [&](trace::TraceSession* session) {
        trace::name_context_tracks(session, cores, mc.core.contexts);
      },
      /*arch_hook=*/nullptr,
      [&ctrl] { return static_cast<u64>(ctrl.queue_size()); },
      ctrl.refresh_enabled()
          ? std::function<u64()>([&ctrl] { return ctrl.refresh_debt(); })
          : std::function<u64()>{});

  if (snapshot != nullptr && snapshot->restore_from != nullptr) {
    kernel.restore(*snapshot->restore_from);
  }

  const Picos runtime = kernel.run([&] {
    for (const auto& corelet : corelets) {
      if (!corelet.halted()) return false;
    }
    return true;
  });

  RunResult result;
  result.arch = "multicore";
  result.workload = workload.name;
  result.compute_cycles = kernel.compute_cycles();
  result.runtime_ps = runtime;
  result.thread_instructions = exec.instructions.value;
  result.input_words = workload.num_records * workload.fields;
  // Nominal: no retune, and the ps-quantized period would round-trip off.
  result.final_clock_mhz = mc.core.clock_mhz;
  finalize_result(&result, exec.branches.value, stats);

  energy::EnergyModel model;
  const u64 l1_accesses = exec.local_ops.value + exec.global_loads.value;
  // Approximate L2 accesses by scaling core 0's L1 miss count to all cores.
  const u64 l2_accesses = stats.get("l1.0.misses") * cores;
  result.energy.core_j = model.multicore_core_j(
      exec.instructions.value, l1_accesses, l2_accesses,
      exec.idle_cycles.value);
  result.energy.dram_j =
      model.dram_j(ctrl.bytes_transferred(), ctrl.activations(),
                   /*offchip=*/true, mc.dram.fault.ecc);
  const double sram_kb =
      cores * (cfg.multicore.l1_bytes + cfg.multicore.l2_bytes) / 1024.0;
  result.energy.leak_j =
      model.leakage_j(cores, sram_kb, result.seconds(), /*ooo=*/true);

  verify_result(&result, workload, input, locals, image_may_be_dirty(mc));
  return result;
}

}  // namespace mlp::arch
