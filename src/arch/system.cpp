#include "arch/system.hpp"

#include <cstdio>

namespace mlp::arch {

namespace {
const char* context_state_name(core::Context::State state) {
  switch (state) {
    case core::Context::State::kReady: return "ready";
    case core::Context::State::kWaitMem: return "wait-mem";
    case core::Context::State::kHalted: return "halted";
  }
  return "?";
}
}  // namespace

std::string dump_corelets(const std::vector<core::Corelet>& corelets) {
  std::string out;
  char line[160];
  for (const core::Corelet& corelet : corelets) {
    for (u32 x = 0; x < corelet.num_contexts(); ++x) {
      const core::Context& ctx = corelet.context(x);
      std::snprintf(line, sizeof(line),
                    "  corelet[%u].ctx[%u] pc=%u state=%s ready_at=%llu "
                    "instret=%llu\n",
                    corelet.core_id(), x, ctx.pc,
                    context_state_name(ctx.state),
                    static_cast<unsigned long long>(ctx.ready_at),
                    static_cast<unsigned long long>(ctx.instret));
      out += line;
    }
  }
  return out;
}

const char* arch_name(ArchKind kind) {
  switch (kind) {
    case ArchKind::kMillipede: return "millipede";
    case ArchKind::kMillipedeNoFlowControl: return "millipede-no-flow-control";
    case ArchKind::kMillipedeNoRateMatch: return "millipede-no-rate-match";
    case ArchKind::kSsmc: return "ssmc";
    case ArchKind::kGpgpu: return "gpgpu";
    case ArchKind::kVws: return "vws";
    case ArchKind::kVwsRow: return "vws-row";
    case ArchKind::kMulticore: return "multicore";
  }
  return "?";
}

const std::vector<ArchKind>& all_arch_kinds() {
  static const std::vector<ArchKind> kinds = {
      ArchKind::kMillipede,      ArchKind::kMillipedeNoFlowControl,
      ArchKind::kMillipedeNoRateMatch, ArchKind::kSsmc,
      ArchKind::kGpgpu,          ArchKind::kVws,
      ArchKind::kVwsRow,         ArchKind::kMulticore,
  };
  return kinds;
}

bool arch_from_name(const std::string& name, ArchKind* out) {
  for (const ArchKind kind : all_arch_kinds()) {
    if (name == arch_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

PreparedInput prepare_input(const MachineConfig& cfg,
                            const workloads::Workload& workload, u64 seed) {
  const workloads::LayoutMode mode =
      cfg.slab_layout ? workloads::LayoutMode::kRecordContiguous
                      : workloads::LayoutMode::kFieldMajor;
  workloads::InterleavedLayout layout(cfg.dram.row_bytes, workload.fields,
                                      workload.num_records, /*base=*/0, mode);
  PreparedInput input{layout, mem::DramImage(layout.total_bytes()), {}};
  Rng rng(seed);
  workload.generate(input.layout, input.image, rng);
  input.reference = workload.reference(input.image, input.layout);
  return input;
}

std::string verify_run(const workloads::Workload& workload,
                       const PreparedInput& input,
                       const std::vector<const mem::LocalStore*>& states,
                       bool image_dirty) {
  // A run that may have corrupted the image in place (no-ECC fault
  // injection) recomputes the reference from the current image so the
  // corruption is caught exactly as before caching existed.
  std::vector<double> recomputed;
  if (image_dirty || input.reference.empty()) {
    recomputed = workload.reference(input.image, input.layout);
  }
  const std::vector<double>& reference =
      image_dirty || input.reference.empty() ? recomputed : input.reference;
  const auto measured = workloads::reduce_state(workload, states);
  return workloads::compare_results(reference, measured, workload.tolerance);
}

void finalize_result(RunResult* result, u64 branch_count,
                     const StatSet& stats) {
  result->insts_per_word =
      result->input_words == 0
          ? 0.0
          : static_cast<double>(result->thread_instructions) /
                static_cast<double>(result->input_words);
  result->branches_per_inst =
      result->thread_instructions == 0
          ? 0.0
          : static_cast<double>(branch_count) /
                static_cast<double>(result->thread_instructions);
  const u64 hits =
      stats.has("dram.row_hits") ? stats.get("dram.row_hits") : 0;
  const u64 misses =
      stats.has("dram.row_misses") ? stats.get("dram.row_misses") : 0;
  result->row_miss_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(misses) / static_cast<double>(hits + misses);
  for (const auto& [name, value] : stats.snapshot()) {
    result->stats.emplace(name, value);
  }
}

void verify_result(RunResult* result, const workloads::Workload& workload,
                   const PreparedInput& input,
                   const std::vector<mem::LocalStore>& states,
                   bool image_dirty) {
  std::vector<const mem::LocalStore*> pointers;
  pointers.reserve(states.size());
  for (const mem::LocalStore& state : states) pointers.push_back(&state);
  result->verification = verify_run(workload, input, pointers, image_dirty);
}

RunResult run_arch(ArchKind kind, const MachineConfig& cfg,
                   const workloads::Workload& workload, u64 seed,
                   trace::TraceSession* trace, const PreparedInput* prepared,
                   sim::SnapshotPlan* snapshot) {
  MachineConfig tuned = cfg;
  switch (kind) {
    case ArchKind::kMillipede:
      tuned.millipede.flow_control = true;
      tuned.millipede.rate_match = true;
      return run_millipede(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kMillipedeNoFlowControl:
      tuned.millipede.flow_control = false;
      tuned.millipede.rate_match = false;
      return run_millipede(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kMillipedeNoRateMatch:
      tuned.millipede.flow_control = true;
      tuned.millipede.rate_match = false;
      return run_millipede(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kSsmc:
      return run_ssmc(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kGpgpu:
      tuned.gpgpu.vws = false;
      tuned.gpgpu.row_oriented = false;
      tuned.gpgpu.warp_width = tuned.core.cores;
      return run_gpgpu(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kVws:
      tuned.gpgpu.vws = true;
      tuned.gpgpu.row_oriented = false;
      return run_gpgpu(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kVwsRow:
      tuned.gpgpu.vws = true;
      tuned.gpgpu.row_oriented = true;
      return run_gpgpu(tuned, workload, seed, trace, prepared, snapshot);
    case ArchKind::kMulticore:
      return run_multicore(tuned, workload, seed, trace, prepared, snapshot);
  }
  MLP_CHECK(false, "unknown architecture");
  return {};
}

}  // namespace mlp::arch
