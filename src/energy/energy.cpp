#include "energy/energy.hpp"

namespace mlp::energy {

double EnergyModel::dram_j(u64 bytes, u64 activations, bool offchip,
                           bool ecc) const {
  const double per_bit =
      offchip ? params_.pj_per_bit_offchip : params_.pj_per_bit_stacked;
  const double ecc_scale = ecc ? 1.0 + params_.ecc_bit_overhead : 1.0;
  return ((static_cast<double>(bytes) * 8.0 * per_bit) * 1e-12 +
          static_cast<double>(activations) * params_.nj_per_activation *
              1e-9) *
         ecc_scale;
}

double EnergyModel::mimd_core_j(const core::ExecStats& stats,
                                bool state_via_cache,
                                bool input_via_cache) const {
  const double ints =
      static_cast<double>(stats.instructions.value - stats.float_alu.value);
  const double floats = static_cast<double>(stats.float_alu.value);
  double pj = ints * params_.pj_int_op + floats * params_.pj_float_op;
  // Per-core I-cache fetch for every instruction (MIMD pays this per core;
  // the GPGPU amortizes it across a warp).
  pj += static_cast<double>(stats.instructions.value) * params_.pj_icache_fetch;
  // Live-state accesses: scratchpad (Millipede) vs L1D (SSMC).
  pj += static_cast<double>(stats.local_ops.value) *
        (state_via_cache ? params_.pj_ssmc_l1d_access
                         : params_.pj_local_access);
  // Input loads: L1D (SSMC) vs prefetch-buffer slab slice (Millipede).
  pj += static_cast<double>(stats.global_loads.value) *
        (input_via_cache ? params_.pj_ssmc_l1d_access : params_.pj_pb_access);
  // Idle dynamic from imperfect clock gating.
  pj += static_cast<double>(stats.idle_cycles.value +
                            stats.retry_stalls.value) *
        params_.idle_fraction * params_.pj_int_op;
  return pj * 1e-12;
}

double EnergyModel::gpgpu_core_j(const gpgpu::SmStats& stats) const {
  const double threads = static_cast<double>(stats.thread_instructions.value);
  const double floats = static_cast<double>(stats.thread_float_ops.value);
  double pj = (threads - floats) * params_.pj_int_op +
              floats * params_.pj_float_op;
  // One fetch/decode per *warp* instruction: SIMT's amortization advantage.
  pj += static_cast<double>(stats.warp_instructions.value) *
        params_.pj_warp_fetch_decode;
  // Live state in the big banked shared memory (crossbar included).
  pj += static_cast<double>(stats.thread_local_accesses.value) *
        params_.pj_shared_mem_access;
  // Input path: one L1D access per coalesced line.
  pj += static_cast<double>(stats.global_lines.value) *
        params_.pj_gpgpu_l1d_line;
  // Idle dynamic: whole-group idle slots, plus lanes that are clocked but
  // masked off under divergence — the paper's "higher idle energy due to
  // branches" on the GPGPU.
  pj += static_cast<double>(stats.issue_slots_idle.value) *
        params_.idle_fraction * params_.pj_int_op;
  pj += static_cast<double>(stats.inactive_lane_slots.value) *
        params_.idle_fraction * params_.pj_int_op;
  return pj * 1e-12;
}

double EnergyModel::multicore_core_j(u64 instructions, u64 l1_accesses,
                                     u64 l2_accesses, u64 idle_cycles) const {
  double pj = static_cast<double>(instructions) * params_.pj_ooo_op +
              static_cast<double>(l1_accesses) * params_.pj_l1_access +
              static_cast<double>(l2_accesses) * params_.pj_l2_access +
              static_cast<double>(idle_cycles) * params_.idle_fraction *
                  params_.pj_ooo_op;
  return pj * 1e-12;
}

double EnergyModel::leakage_j(u32 cores, double sram_kb, double seconds,
                              bool ooo) const {
  const double core_w = ooo ? params_.leak_ooo_core_w : params_.leak_core_w;
  return (static_cast<double>(cores) * core_w +
          sram_kb * params_.leak_sram_w_per_kb) *
         seconds;
}

}  // namespace mlp::energy
