#pragma once
// Event-based energy model standing in for GPUWattch (see DESIGN.md). Every
// constant is an explicit, documented parameter; the paper's energy
// conclusions rest on component *ratios* (shared-memory crossbar vs small
// local memories, DRAM activations vs transfers, idle energy under branch
// divergence, off-chip vs die-stacked bit energy), all represented here.
//
// Breakdown matches Fig. 4's stacking: core dynamic (pipeline, register
// file, I-cache, local/L1/shared-memory, idle dynamic from imperfect clock
// gating), DRAM (activation + per-bit transfer), and logic-die leakage.

#include "common/types.hpp"
#include "core/corelet.hpp"
#include "gpgpu/sm.hpp"

namespace mlp::energy {

struct EnergyParams {
  // --- MIMD simple-core events (22 nm-class, pJ) ---
  double pj_int_op = 8.0;          ///< pipeline+RF per integer instruction
  double pj_float_op = 14.0;       ///< per float instruction
  double pj_icache_fetch = 2.5;    ///< 4 KB per-core I-cache, per instruction
  double pj_local_access = 6.0;    ///< 4 KB scratchpad (Millipede live state)
  double pj_pb_access = 4.0;       ///< 1 KB prefetch-buffer slab slice
  double pj_ssmc_l1d_access = 9.0; ///< 5 KB L1D incl. tag match

  // --- GPGPU events ---
  double pj_warp_fetch_decode = 10.0;  ///< shared fetch/decode per warp inst
  double pj_shared_mem_access = 45.0;  ///< 128 KB banked + 32x32 crossbar,
                                       ///< per lane access (GPUWattch-class)
  double pj_gpgpu_l1d_line = 22.0;     ///< 32 KB L1D, per line access

  // --- Conventional multicore (Fig. 5) ---
  double pj_ooo_op = 60.0;   ///< 4-wide OoO pipeline per instruction
  double pj_l1_access = 12.0;
  double pj_l2_access = 35.0;

  // --- Shared ---
  double idle_fraction = 0.35;  ///< imperfect clock gating: an idle cycle
                                ///< costs this fraction of an int op
  double pj_per_bit_stacked = 6.0;   ///< die-stacked DRAM access [31]
  double nj_per_activation = 15.0;   ///< per 2 KB row activation
  double pj_per_bit_offchip = 70.0;  ///< off-chip DRAM access [44]
  /// SECDED ECC storage overhead: 8 check bits per 64-bit data word. With
  /// ECC enabled every transfer moves (and every activation opens) 12.5%
  /// more bits, scaling both DRAM energy terms.
  double ecc_bit_overhead = 8.0 / 64.0;

  // --- Leakage (logic die, W) ---
  double leak_core_w = 0.004;          ///< per simple core / lane
  double leak_sram_w_per_kb = 0.00025;  ///< caches, local memories, buffers
  double leak_ooo_core_w = 0.6;        ///< per conventional OoO core
};

struct EnergyBreakdown {
  double core_j = 0.0;   ///< core dynamic incl. idle dynamic
  double dram_j = 0.0;
  double leak_j = 0.0;
  double total_j() const { return core_j + dram_j + leak_j; }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  const EnergyParams& params() const { return params_; }

  /// DRAM side, shared by all PNM architectures. `ecc` adds the SECDED
  /// check-bit transfer/activation overhead.
  double dram_j(u64 bytes, u64 activations, bool offchip = false,
                bool ecc = false) const;

  /// MIMD core dynamic energy (Millipede corelets or SSMC cores).
  /// `state_via_cache`: SSMC keeps live state in its L1D (pricier access);
  /// `input_via_cache`: SSMC input loads hit the L1D, Millipede's hit the
  /// cheap prefetch-buffer slice.
  double mimd_core_j(const core::ExecStats& stats, bool state_via_cache,
                     bool input_via_cache) const;

  /// GPGPU SM core dynamic energy.
  double gpgpu_core_j(const gpgpu::SmStats& stats) const;

  /// Conventional multicore core dynamic energy.
  double multicore_core_j(u64 instructions, u64 l1_accesses, u64 l2_accesses,
                          u64 idle_cycles) const;

  /// Logic-die leakage over the run.
  double leakage_j(u32 cores, double sram_kb, double seconds,
                   bool ooo = false) const;

 private:
  EnergyParams params_;
};

}  // namespace mlp::energy
