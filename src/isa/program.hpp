#pragma once
// A loaded kernel binary plus its symbol table and static properties.

#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace mlp::isa {

/// Static instruction-mix of a program, used for Table II-style reporting
/// and for sanity checks against the paper's per-benchmark characteristics.
struct StaticCounts {
  u32 total = 0;
  u32 branches = 0;
  u32 jumps = 0;
  u32 global_loads = 0;
  u32 global_stores = 0;
  u32 local_accesses = 0;
  u32 float_ops = 0;
};

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> instrs,
          std::map<std::string, u32> labels);

  const std::string& name() const { return name_; }
  const std::vector<Instr>& instrs() const { return instrs_; }
  const Instr& at(u32 pc) const {
    MLP_CHECK(pc < instrs_.size(), "pc out of program");
    return instrs_[pc];
  }
  u32 size() const { return static_cast<u32>(instrs_.size()); }
  u32 size_bytes() const { return size() * 4; }

  /// Address of a label; aborts if undefined (tests use known labels).
  u32 label(const std::string& name) const;
  const std::map<std::string, u32>& labels() const { return labels_; }

  StaticCounts static_counts() const;

  bool empty() const { return instrs_.empty(); }

 private:
  std::string name_;
  std::vector<Instr> instrs_;
  std::map<std::string, u32> labels_;
};

}  // namespace mlp::isa
