#include "isa/builder.hpp"

#include <cstring>

namespace mlp::isa {

Label KernelBuilder::new_label() {
  label_pcs_.push_back(kUnbound);
  return Label{static_cast<u32>(label_pcs_.size() - 1)};
}

void KernelBuilder::bind(Label label) {
  MLP_CHECK(label.id < label_pcs_.size(), "unknown label");
  MLP_CHECK(label_pcs_[label.id] == kUnbound, "label bound twice");
  label_pcs_[label.id] = static_cast<u32>(instrs_.size());
}

void KernelBuilder::li(u8 rd, u32 value) {
  const i32 as_signed = static_cast<i32>(value);
  if (as_signed >= -(1 << 13) && as_signed <= (1 << 13) - 1) {
    addi(rd, 0, as_signed);
    return;
  }
  emit(Instr{Opcode::kLui, rd, 0, 0, static_cast<i32>(value >> 13)});
  if ((value & 0x1fff) != 0) {
    emit(Instr{Opcode::kOri, rd, rd, 0, static_cast<i32>(value & 0x1fff)});
  }
}

void KernelBuilder::li_f(u8 rd, float value) {
  u32 bits;
  std::memcpy(&bits, &value, sizeof bits);
  li(rd, bits);
}

void KernelBuilder::emit_branch(Opcode op, u8 rs1, u8 rs2, Label l) {
  MLP_CHECK(l.id < label_pcs_.size(), "unknown label");
  pendings_.push_back({static_cast<u32>(instrs_.size()), l.id});
  emit(Instr{op, 0, rs1, rs2, 0});
}

void KernelBuilder::jump(Label l) {
  MLP_CHECK(l.id < label_pcs_.size(), "unknown label");
  pendings_.push_back({static_cast<u32>(instrs_.size()), l.id});
  emit(Instr{Opcode::kJal, 0, 0, 0, 0});
}

Program KernelBuilder::build(std::string name) {
  for (const Pending& p : pendings_) {
    const u32 pc = label_pcs_[p.label_id];
    MLP_CHECK(pc != kUnbound, "label never bound");
    instrs_[p.instr_index].imm =
        static_cast<i32>(pc) - static_cast<i32>(p.instr_index);
  }
  std::map<std::string, u32> labels;
  for (u32 i = 0; i < label_pcs_.size(); ++i) {
    if (label_pcs_[i] != kUnbound) {
      labels.emplace("L" + std::to_string(i), label_pcs_[i]);
    }
  }
  return Program(std::move(name), std::move(instrs_), std::move(labels));
}

}  // namespace mlp::isa
