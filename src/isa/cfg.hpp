#pragma once
// Control-flow analysis over kernel binaries: basic blocks, the CFG, and
// immediate post-dominators. The GPGPU model needs the reconvergence point
// of every branch (classic IPDom-based SIMT stack); static workload analysis
// (Table II) reuses the block structure.

#include <vector>

#include "isa/program.hpp"

namespace mlp::isa {

struct BasicBlock {
  u32 first = 0;               ///< pc of the first instruction
  u32 last = 0;                ///< pc of the terminator (inclusive)
  std::vector<u32> succs;      ///< successor block ids (kExitBlock = exit)
};

class Cfg {
 public:
  /// Virtual exit reached by halt and jalr terminators.
  static constexpr u32 kExitBlock = 0xffffffffu;

  static Cfg build(const Program& program);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  u32 block_of(u32 pc) const {
    MLP_CHECK(pc < block_of_pc_.size(), "pc outside program");
    return block_of_pc_[pc];
  }

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<u32> block_of_pc_;
};

/// Per-branch reconvergence pcs derived from immediate post-dominators.
class ReconvergenceTable {
 public:
  /// Branches with no post-dominating join before program exit (e.g. one arm
  /// halts) get kNoReconv; the SIMT stack then reconverges only when the
  /// entry's lane mask empties.
  static constexpr u32 kNoReconv = 0xffffffffu;

  static ReconvergenceTable build(const Program& program);

  /// Reconvergence pc for the branch at `pc` (must be a branch).
  u32 at(u32 pc) const {
    MLP_CHECK(pc < reconv_.size(), "pc outside program");
    MLP_CHECK(reconv_[pc] != kNotABranch, "pc is not a branch");
    return reconv_[pc];
  }

 private:
  static constexpr u32 kNotABranch = 0xfffffffeu;
  std::vector<u32> reconv_;
};

}  // namespace mlp::isa
