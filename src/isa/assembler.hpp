#pragma once
// Two-pass text assembler for the kernel ISA.
//
// Syntax (one instruction per line, ';' or '#' start comments):
//   label:
//     add   r1, r2, r3
//     addi  r1, r2, -4
//     lw    r4, 8(r5)          ; global load
//     sw.l  r4, 8(r5)          ; local store
//     amoadd.l r6, r4, 0(r5)   ; r6 = old local[r5]; local[r5] += r4
//     beq   r1, r2, label
//     jal   r0, label
//     csrr  r1, TID
//     halt
// Pseudo-instructions: nop, mv, j, li (32-bit int), li.f (float literal),
// ble, bgt (operand-swapped bge/blt).
//
// Registers are r0..r31; r0 reads as zero and ignores writes.

#include <string>

#include "isa/program.hpp"

namespace mlp::isa {

struct AsmResult {
  bool ok = false;
  std::string error;  ///< "line N: message" when !ok
  Program program;
};

AsmResult assemble(const std::string& name, const std::string& source);

/// Assemble source that is expected to be valid (built-in kernels); aborts
/// with the assembler diagnostic otherwise.
Program must_assemble(const std::string& name, const std::string& source);

}  // namespace mlp::isa
