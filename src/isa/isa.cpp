#include "isa/isa.hpp"

#include <array>

namespace mlp::isa {
namespace {

constexpr OpInfo make(const char* name, Format f, bool branch = false,
                      bool jump = false, bool gmem = false, bool lmem = false,
                      bool load = false, bool store = false, bool flt = false) {
  return OpInfo{name, f, branch, jump, gmem, lmem, load, store, flt};
}

// Indexed by Opcode. Order must match the enum exactly; checked in tests by
// round-tripping every opcode through its name.
constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    make("add", Format::kR), make("sub", Format::kR), make("mul", Format::kR),
    make("mulh", Format::kR), make("div", Format::kR), make("rem", Format::kR),
    make("and", Format::kR), make("or", Format::kR), make("xor", Format::kR),
    make("sll", Format::kR), make("srl", Format::kR), make("sra", Format::kR),
    make("slt", Format::kR), make("sltu", Format::kR),
    make("fadd", Format::kR, false, false, false, false, false, false, true),
    make("fsub", Format::kR, false, false, false, false, false, false, true),
    make("fmul", Format::kR, false, false, false, false, false, false, true),
    make("fdiv", Format::kR, false, false, false, false, false, false, true),
    make("fmin", Format::kR, false, false, false, false, false, false, true),
    make("fmax", Format::kR, false, false, false, false, false, false, true),
    make("flt", Format::kR, false, false, false, false, false, false, true),
    make("fle", Format::kR, false, false, false, false, false, false, true),
    make("feq", Format::kR, false, false, false, false, false, false, true),
    make("fsqrt", Format::kRu, false, false, false, false, false, false, true),
    make("fabs", Format::kRu, false, false, false, false, false, false, true),
    make("fneg", Format::kRu, false, false, false, false, false, false, true),
    make("fcvt.w.s", Format::kRu, false, false, false, false, false, false, true),
    make("fcvt.s.w", Format::kRu, false, false, false, false, false, false, true),
    make("addi", Format::kI), make("andi", Format::kI), make("ori", Format::kI),
    make("xori", Format::kI), make("slli", Format::kI), make("srli", Format::kI),
    make("srai", Format::kI), make("slti", Format::kI),
    make("lui", Format::kU),
    make("lw", Format::kL, false, false, true, false, true, false),
    make("sw", Format::kS, false, false, true, false, false, true),
    make("lw.l", Format::kL, false, false, false, true, true, false),
    make("sw.l", Format::kS, false, false, false, true, false, true),
    make("amoadd.l", Format::kA, false, false, false, true, true, true),
    make("famoadd.l", Format::kA, false, false, false, true, true, true, true),
    make("beq", Format::kB, true), make("bne", Format::kB, true),
    make("blt", Format::kB, true), make("bge", Format::kB, true),
    make("bltu", Format::kB, true), make("bgeu", Format::kB, true),
    make("jal", Format::kJ, false, true),
    make("jalr", Format::kI, false, true),
    make("csrr", Format::kC),
    make("halt", Format::kN),
    make("bar", Format::kN),
}};

constexpr std::array<const char*, kNumCsrs> kCsrNames = {{
    "TID", "NTHREADS", "CID", "NCORES", "CTX", "NCTX",
    "IDX_BASE", "IDX_STRIDE", "RPT", "GROUP_SHIFT", "ROW_SHIFT",
    "NGROUPS", "NRECORDS", "FIELDS", "INPUT_BASE", "",
    "ARG0", "ARG1", "ARG2", "ARG3", "ARG4", "ARG5", "ARG6", "ARG7",
}};

}  // namespace

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<u32>(op);
  MLP_CHECK(idx < kNumOpcodes, "opcode out of range");
  return kOpTable[idx];
}

bool opcode_from_name(const std::string& name, Opcode* out) {
  for (u32 i = 0; i < kNumOpcodes; ++i) {
    if (name == kOpTable[i].name) {
      *out = static_cast<Opcode>(i);
      return true;
    }
  }
  return false;
}

const char* csr_name(Csr csr) {
  const auto idx = static_cast<u32>(csr);
  MLP_CHECK(idx < kNumCsrs && kCsrNames[idx][0] != '\0', "bad csr");
  return kCsrNames[idx];
}

bool csr_from_name(const std::string& name, Csr* out) {
  for (u32 i = 0; i < kNumCsrs; ++i) {
    if (kCsrNames[i][0] != '\0' && name == kCsrNames[i]) {
      *out = static_cast<Csr>(i);
      return true;
    }
  }
  return false;
}

}  // namespace mlp::isa
