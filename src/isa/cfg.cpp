#include "isa/cfg.hpp"

#include <algorithm>
#include <set>

namespace mlp::isa {
namespace {

bool ends_block(const Instr& in) {
  const OpInfo& info = op_info(in.op);
  return info.is_branch || info.is_jump || in.op == Opcode::kHalt;
}

/// Branch/jal target pc (absolute) for a control instruction at `pc`.
u32 target_pc(u32 pc, const Instr& in) {
  return static_cast<u32>(static_cast<i32>(pc) + in.imm);
}

}  // namespace

Cfg Cfg::build(const Program& program) {
  const u32 n = program.size();
  std::set<u32> leaders{0};
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& in = program.at(pc);
    const OpInfo& info = op_info(in.op);
    if (info.is_branch || in.op == Opcode::kJal) {
      const u32 t = target_pc(pc, in);
      MLP_CHECK(t < n, "control transfer outside program");
      leaders.insert(t);
    }
    if (ends_block(in) && pc + 1 < n) leaders.insert(pc + 1);
  }

  Cfg cfg;
  cfg.block_of_pc_.assign(n, 0);
  std::vector<u32> leader_list(leaders.begin(), leaders.end());
  for (u32 b = 0; b < leader_list.size(); ++b) {
    BasicBlock block;
    block.first = leader_list[b];
    block.last = (b + 1 < leader_list.size() ? leader_list[b + 1] : n) - 1;
    for (u32 pc = block.first; pc <= block.last; ++pc) cfg.block_of_pc_[pc] = b;
    cfg.blocks_.push_back(block);
  }

  for (u32 b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const Instr& term = program.at(block.last);
    const OpInfo& info = op_info(term.op);
    if (info.is_branch) {
      block.succs.push_back(cfg.block_of_pc_[target_pc(block.last, term)]);
      if (block.last + 1 < n) {
        block.succs.push_back(cfg.block_of_pc_[block.last + 1]);
      } else {
        block.succs.push_back(kExitBlock);
      }
    } else if (term.op == Opcode::kJal) {
      block.succs.push_back(cfg.block_of_pc_[target_pc(block.last, term)]);
    } else if (term.op == Opcode::kJalr || term.op == Opcode::kHalt) {
      block.succs.push_back(kExitBlock);
    } else {
      // Fallthrough into the next leader.
      if (block.last + 1 < n) {
        block.succs.push_back(cfg.block_of_pc_[block.last + 1]);
      } else {
        block.succs.push_back(kExitBlock);
      }
    }
    // Deduplicate (a branch whose target is its own fallthrough).
    std::sort(block.succs.begin(), block.succs.end());
    block.succs.erase(std::unique(block.succs.begin(), block.succs.end()),
                      block.succs.end());
  }
  return cfg;
}

ReconvergenceTable ReconvergenceTable::build(const Program& program) {
  const Cfg cfg = Cfg::build(program);
  const u32 nb = static_cast<u32>(cfg.blocks().size());
  const u32 exit = nb;  // dense id for the virtual exit

  // Post-dominator sets via iterative dataflow. Programs are tiny (a few
  // hundred instructions), so set intersection is simple and fast enough.
  std::vector<std::set<u32>> pdom(nb + 1);
  std::set<u32> all;
  for (u32 b = 0; b <= nb; ++b) all.insert(b);
  for (u32 b = 0; b < nb; ++b) pdom[b] = all;
  pdom[exit] = {exit};

  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 b = 0; b < nb; ++b) {
      std::set<u32> meet = all;
      for (u32 s : cfg.blocks()[b].succs) {
        const u32 sid = (s == Cfg::kExitBlock) ? exit : s;
        std::set<u32> next;
        std::set_intersection(meet.begin(), meet.end(), pdom[sid].begin(),
                              pdom[sid].end(),
                              std::inserter(next, next.begin()));
        meet = std::move(next);
      }
      meet.insert(b);
      if (meet != pdom[b]) {
        pdom[b] = std::move(meet);
        changed = true;
      }
    }
  }

  // ipdom(b): the unique strict post-dominator d whose own strict
  // post-dominator set equals pdom(b) minus {b, d}.
  auto ipdom = [&](u32 b) -> u32 {
    const size_t strict = pdom[b].size() - 1;
    for (u32 d : pdom[b]) {
      if (d == b) continue;
      if (pdom[d].size() == strict) return d;
    }
    return exit;
  };

  ReconvergenceTable table;
  table.reconv_.assign(program.size(), kNotABranch);
  for (u32 pc = 0; pc < program.size(); ++pc) {
    if (!op_info(program.at(pc).op).is_branch) continue;
    const u32 d = ipdom(cfg.block_of(pc));
    table.reconv_[pc] =
        (d == exit) ? kNoReconv : cfg.blocks()[d].first;
  }
  return table;
}

}  // namespace mlp::isa
