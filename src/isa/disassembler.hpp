#pragma once
// Renders decoded instructions back to assembler syntax; used for debugging
// dumps and for assembler round-trip tests.

#include <string>

#include "isa/program.hpp"

namespace mlp::isa {

std::string disassemble(const Instr& instr);

/// Full listing with pc numbers and label annotations.
std::string disassemble(const Program& program);

}  // namespace mlp::isa
