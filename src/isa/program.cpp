#include "isa/program.hpp"

namespace mlp::isa {

Program::Program(std::string name, std::vector<Instr> instrs,
                 std::map<std::string, u32> labels)
    : name_(std::move(name)),
      instrs_(std::move(instrs)),
      labels_(std::move(labels)) {
  MLP_CHECK(!instrs_.empty(), "empty program");
}

u32 Program::label(const std::string& name) const {
  auto it = labels_.find(name);
  MLP_CHECK(it != labels_.end(), "undefined label");
  return it->second;
}

StaticCounts Program::static_counts() const {
  StaticCounts counts;
  counts.total = size();
  for (const Instr& in : instrs_) {
    const OpInfo& info = op_info(in.op);
    if (info.is_branch) ++counts.branches;
    if (info.is_jump) ++counts.jumps;
    if (info.is_global_mem && info.is_load) ++counts.global_loads;
    if (info.is_global_mem && info.is_store) ++counts.global_stores;
    if (info.is_local_mem) ++counts.local_accesses;
    if (info.is_float) ++counts.float_ops;
  }
  return counts;
}

}  // namespace mlp::isa
