#pragma once
// The Millipede kernel ISA: a small 32-bit RISC instruction set executed by
// every simulated architecture (corelet, SSMC core, GPGPU lane, multicore
// context) from identical binaries. The set mirrors what the paper's CUDA
// kernels compile to: integer/float ALU ops, data-dependent branches,
// global (input-stream) loads, local (live-state) accesses, and
// single-instruction atomic accumulations into the live state (the
// MapReduce partial reduce).
//
// Memory spaces:
//   * global  — die-stacked DRAM holding the interleaved input data (lw/sw)
//   * local   — per-corelet (per-lane) live-state memory (lw.l/sw.l/amoadd.l)
//
// Atomic adds (amoadd.l / famoadd.l) return the OLD value, which makes
// shared-state accumulation by the corelet's four contexts race-free with a
// single instruction, exactly as CUDA shared-memory atomics do for the
// paper's GPGPU mapping.

#include <string>

#include "common/types.hpp"

namespace mlp::isa {

enum class Opcode : u8 {
  // Integer register-register.
  kAdd, kSub, kMul, kMulh, kDiv, kRem,
  kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu,
  // Float register-register (values live bit-cast in integer registers).
  kFadd, kFsub, kFmul, kFdiv, kFmin, kFmax,
  kFlt, kFle, kFeq,                       // compare, integer 0/1 result
  kFsqrt, kFabs, kFneg, kFcvtWs, kFcvtSw, // unary (rs2 unused)
  // Integer immediate.
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti,
  kLui,  // rd = imm19 << 13
  // Memory.
  kLw,    // rd = global[rs1+imm]
  kSw,    // global[rs1+imm] = rs2
  kLwl,   // rd = local[rs1+imm]
  kSwl,   // local[rs1+imm] = rs2
  kAmoaddl,   // rd = local[rs1+imm]; local[rs1+imm] += rs2        (integer)
  kFamoaddl,  // rd = local[rs1+imm]; local[rs1+imm] +=f rs2       (float)
  // Control.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,  // pc-relative, imm in instructions
  kJal,   // rd = pc+1; pc += imm
  kJalr,  // rd = pc+1; pc = rs1 + imm
  // System.
  kCsrr,  // rd = csr[imm]
  kHalt,
  kBar,   // processor-wide thread barrier (software-barrier ablation)
  kCount_,
};

inline constexpr u32 kNumOpcodes = static_cast<u32>(Opcode::kCount_);

/// Encoding formats; see encoding.cpp for the exact bit layout.
enum class Format : u8 {
  kR,    // op rd, rs1, rs2
  kRu,   // op rd, rs1          (float unary)
  kI,    // op rd, rs1, imm14
  kU,    // op rd, imm19
  kL,    // op rd, imm14(rs1)   (loads)
  kS,    // op rs2, imm14(rs1)  (stores)
  kA,    // op rd, rs2, imm9(rs1)  (atomics)
  kB,    // op rs1, rs2, imm14  (branches)
  kJ,    // op rd, imm19        (jal)
  kC,    // op rd, csr          (csrr)
  kN,    // op                  (halt)
};

/// Control/status registers readable by kernels. They expose the thread's
/// identity, the interleaved-layout geometry, and up to eight kernel
/// arguments.
enum class Csr : u8 {
  kTid = 0,        ///< global hardware thread id
  kNthreads = 1,   ///< total hardware threads on the processor
  kCid = 2,        ///< corelet / lane / core id
  kNcores = 3,
  kCtx = 4,        ///< context (warp) index within the core
  kNctx = 5,
  kIdxBase = 6,    ///< this thread's first record index within a group
  kIdxStride = 7,  ///< stride between its consecutive records in a group
  kRpt = 8,        ///< records per thread per group
  kGroupShift = 9, ///< log2(records per group)
  kRowShift = 10,  ///< log2(row bytes)
  kNgroups = 11,
  kNrecords = 12,
  kFields = 13,    ///< fields (words) per record
  kInputBase = 14, ///< base address of the input image
  kArg0 = 16, kArg1, kArg2, kArg3, kArg4, kArg5, kArg6, kArg7,
  kCount_ = 24,
};

inline constexpr u32 kNumCsrs = static_cast<u32>(Csr::kCount_);

/// A decoded instruction. The simulator executes this form directly; the
/// 32-bit binary encoding (encoding.hpp) is used for storage, the I-cache
/// footprint, and round-trip tests.
struct Instr {
  Opcode op = Opcode::kHalt;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;

  bool operator==(const Instr&) const = default;
};

/// Static opcode properties used by the assembler, disassembler, timing
/// models and static kernel analysis.
struct OpInfo {
  const char* name;
  Format format;
  bool is_branch;       // conditional branches only
  bool is_jump;         // jal/jalr
  bool is_global_mem;   // lw/sw
  bool is_local_mem;    // lw.l/sw.l/amoadd.l/famoadd.l
  bool is_load;         // produces a register from memory
  bool is_store;
  bool is_float;        // float datapath op
};

const OpInfo& op_info(Opcode op);

/// Opcode from mnemonic; returns false if unknown.
bool opcode_from_name(const std::string& name, Opcode* out);

/// CSR name table ("TID", "ARG0", ...).
const char* csr_name(Csr csr);
bool csr_from_name(const std::string& name, Csr* out);

}  // namespace mlp::isa
