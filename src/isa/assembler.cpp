#include "isa/assembler.hpp"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>

#include "isa/encoding.hpp"

namespace mlp::isa {
namespace {

struct Token {
  std::string text;
};

// A pending branch/jump whose label operand is patched in pass 2.
struct Fixup {
  u32 instr_index;
  std::string label;
  u32 line;
};

class Assembler {
 public:
  AsmResult run(const std::string& name, const std::string& source) {
    std::istringstream stream(source);
    std::string line;
    u32 line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      if (!parse_line(line, line_no)) return fail_result();
    }
    // Pass 2: patch label operands with pc-relative offsets.
    for (const Fixup& fix : fixups_) {
      auto it = labels_.find(fix.label);
      if (it == labels_.end()) {
        set_error(fix.line, "undefined label '" + fix.label + "'");
        return fail_result();
      }
      Instr& in = instrs_[fix.instr_index];
      in.imm = static_cast<i32>(it->second) - static_cast<i32>(fix.instr_index);
      if (!imm_fits(in.op, in.imm)) {
        set_error(fix.line, "branch offset out of range");
        return fail_result();
      }
    }
    if (instrs_.empty()) {
      set_error(line_no, "program has no instructions");
      return fail_result();
    }
    AsmResult result;
    result.ok = true;
    result.program = Program(name, std::move(instrs_), std::move(labels_));
    return result;
  }

 private:
  AsmResult fail_result() {
    AsmResult result;
    result.error = error_;
    return result;
  }

  void set_error(u32 line, const std::string& msg) {
    error_ = "line " + std::to_string(line) + ": " + msg;
  }

  static std::string strip(const std::string& line) {
    std::string out = line;
    const size_t comment = out.find_first_of(";#");
    if (comment != std::string::npos) out.resize(comment);
    size_t begin = out.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    size_t end = out.find_last_not_of(" \t\r");
    return out.substr(begin, end - begin + 1);
  }

  bool parse_line(const std::string& raw, u32 line_no) {
    std::string text = strip(raw);
    if (text.empty()) return true;

    // Leading "label:" (possibly followed by an instruction).
    const size_t colon = text.find(':');
    if (colon != std::string::npos &&
        text.find_first_of(" \t(") > colon) {
      std::string label = text.substr(0, colon);
      if (label.empty() || !std::isalpha(static_cast<unsigned char>(label[0])) ) {
        set_error(line_no, "bad label '" + label + "'");
        return false;
      }
      if (!labels_.emplace(label, static_cast<u32>(instrs_.size())).second) {
        set_error(line_no, "duplicate label '" + label + "'");
        return false;
      }
      text = strip(text.substr(colon + 1));
      if (text.empty()) return true;
    }

    // Mnemonic and comma-separated operands.
    size_t space = text.find_first_of(" \t");
    std::string mnemonic = text.substr(0, space);
    std::vector<std::string> ops;
    if (space != std::string::npos) {
      std::string rest = text.substr(space + 1);
      std::string current;
      for (char c : rest) {
        if (c == ',') {
          ops.push_back(strip(current));
          current.clear();
        } else {
          current += c;
        }
      }
      std::string last = strip(current);
      if (!last.empty()) ops.push_back(last);
    }
    return emit(mnemonic, ops, line_no);
  }

  std::optional<u8> parse_reg(const std::string& text) {
    if (text.size() < 2 || text[0] != 'r') return std::nullopt;
    u32 value = 0;
    for (size_t i = 1; i < text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) return std::nullopt;
      value = value * 10 + static_cast<u32>(text[i] - '0');
    }
    if (value >= 32) return std::nullopt;
    return static_cast<u8>(value);
  }

  std::optional<i64> parse_int(const std::string& text) {
    if (text.empty()) return std::nullopt;
    size_t pos = 0;
    bool negative = false;
    if (text[0] == '-' || text[0] == '+') {
      negative = text[0] == '-';
      pos = 1;
    }
    i64 value = 0;
    int base = 10;
    if (text.size() > pos + 2 && text[pos] == '0' &&
        (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
      base = 16;
      pos += 2;
    }
    if (pos >= text.size()) return std::nullopt;
    for (; pos < text.size(); ++pos) {
      const char c = static_cast<char>(
          std::tolower(static_cast<unsigned char>(text[pos])));
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (base == 16 && c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
      else return std::nullopt;
      value = value * base + digit;
    }
    return negative ? -value : value;
  }

  /// Parses "imm(rN)" or "(rN)"; returns {imm, reg}.
  bool parse_mem_operand(const std::string& text, i32* imm, u8* reg,
                         u32 line_no) {
    const size_t open = text.find('(');
    const size_t close = text.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open || close + 1 != text.size()) {
      set_error(line_no, "expected imm(reg) operand, got '" + text + "'");
      return false;
    }
    std::string imm_text = strip(text.substr(0, open));
    if (imm_text.empty()) {
      *imm = 0;
    } else {
      auto value = parse_int(imm_text);
      if (!value) {
        set_error(line_no, "bad immediate '" + imm_text + "'");
        return false;
      }
      *imm = static_cast<i32>(*value);
    }
    auto r = parse_reg(strip(text.substr(open + 1, close - open - 1)));
    if (!r) {
      set_error(line_no, "bad register in '" + text + "'");
      return false;
    }
    *reg = *r;
    return true;
  }

  void push(Instr in) { instrs_.push_back(in); }

  /// Emit li-style load of an arbitrary 32-bit constant.
  void push_li(u8 rd, u32 value) {
    const i32 signed_value = static_cast<i32>(value);
    if (signed_value >= -(1 << 13) && signed_value <= (1 << 13) - 1) {
      push({Opcode::kAddi, rd, 0, 0, signed_value});
      return;
    }
    const u32 hi = value >> 13;
    const u32 lo = value & 0x1fff;
    push({Opcode::kLui, rd, 0, 0, static_cast<i32>(hi)});
    if (lo != 0) push({Opcode::kOri, rd, rd, 0, static_cast<i32>(lo)});
  }

  bool expect_ops(const std::vector<std::string>& ops, size_t n, u32 line_no,
                  const std::string& mnemonic) {
    if (ops.size() == n) return true;
    set_error(line_no, mnemonic + " expects " + std::to_string(n) +
                           " operands, got " + std::to_string(ops.size()));
    return false;
  }

  bool emit(const std::string& mnemonic, const std::vector<std::string>& ops,
            u32 line_no) {
    // Pseudo-instructions first.
    if (mnemonic == "nop") {
      if (!expect_ops(ops, 0, line_no, mnemonic)) return false;
      push({Opcode::kAddi, 0, 0, 0, 0});
      return true;
    }
    if (mnemonic == "mv") {
      if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
      auto rd = parse_reg(ops[0]);
      auto rs = parse_reg(ops[1]);
      if (!rd || !rs) return bad_reg(line_no);
      push({Opcode::kAddi, *rd, *rs, 0, 0});
      return true;
    }
    if (mnemonic == "j") {
      if (!expect_ops(ops, 1, line_no, mnemonic)) return false;
      fixups_.push_back({static_cast<u32>(instrs_.size()), ops[0], line_no});
      push({Opcode::kJal, 0, 0, 0, 0});
      return true;
    }
    if (mnemonic == "li") {
      if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
      auto rd = parse_reg(ops[0]);
      auto value = parse_int(ops[1]);
      if (!rd) return bad_reg(line_no);
      if (!value || *value < INT32_MIN || *value > static_cast<i64>(UINT32_MAX)) {
        set_error(line_no, "bad li constant '" + ops[1] + "'");
        return false;
      }
      push_li(*rd, static_cast<u32>(*value));
      return true;
    }
    if (mnemonic == "li.f") {
      if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
      auto rd = parse_reg(ops[0]);
      if (!rd) return bad_reg(line_no);
      char* end = nullptr;
      const float f = std::strtof(ops[1].c_str(), &end);
      if (end == ops[1].c_str() || *end != '\0') {
        set_error(line_no, "bad float constant '" + ops[1] + "'");
        return false;
      }
      u32 bits;
      std::memcpy(&bits, &f, sizeof bits);
      push_li(*rd, bits);
      return true;
    }
    if (mnemonic == "ble" || mnemonic == "bgt") {
      if (!expect_ops(ops, 3, line_no, mnemonic)) return false;
      auto rs1 = parse_reg(ops[0]);
      auto rs2 = parse_reg(ops[1]);
      if (!rs1 || !rs2) return bad_reg(line_no);
      const Opcode op = mnemonic == "ble" ? Opcode::kBge : Opcode::kBlt;
      fixups_.push_back({static_cast<u32>(instrs_.size()), ops[2], line_no});
      // Swapped operands: a<=b  <=>  b>=a ; a>b  <=>  b<a.
      push({op, 0, *rs2, *rs1, 0});
      return true;
    }

    Opcode op;
    if (!opcode_from_name(mnemonic, &op)) {
      set_error(line_no, "unknown mnemonic '" + mnemonic + "'");
      return false;
    }
    const OpInfo& info = op_info(op);
    Instr in;
    in.op = op;
    switch (info.format) {
      case Format::kR: {
        if (!expect_ops(ops, 3, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        auto rs1 = parse_reg(ops[1]);
        auto rs2 = parse_reg(ops[2]);
        if (!rd || !rs1 || !rs2) return bad_reg(line_no);
        in.rd = *rd; in.rs1 = *rs1; in.rs2 = *rs2;
        break;
      }
      case Format::kRu: {
        if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        auto rs1 = parse_reg(ops[1]);
        if (!rd || !rs1) return bad_reg(line_no);
        in.rd = *rd; in.rs1 = *rs1;
        break;
      }
      case Format::kI: {
        if (!expect_ops(ops, 3, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        auto rs1 = parse_reg(ops[1]);
        auto imm = parse_int(ops[2]);
        if (!rd || !rs1) return bad_reg(line_no);
        if (!imm) {
          set_error(line_no, "bad immediate '" + ops[2] + "'");
          return false;
        }
        in.rd = *rd; in.rs1 = *rs1; in.imm = static_cast<i32>(*imm);
        break;
      }
      case Format::kU: {
        if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        auto imm = parse_int(ops[1]);
        if (!rd) return bad_reg(line_no);
        if (!imm) {
          set_error(line_no, "bad immediate '" + ops[1] + "'");
          return false;
        }
        in.rd = *rd; in.imm = static_cast<i32>(*imm);
        break;
      }
      case Format::kL: {
        if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        if (!rd) return bad_reg(line_no);
        in.rd = *rd;
        if (!parse_mem_operand(ops[1], &in.imm, &in.rs1, line_no)) return false;
        break;
      }
      case Format::kS: {
        if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
        auto rs2 = parse_reg(ops[0]);
        if (!rs2) return bad_reg(line_no);
        in.rs2 = *rs2;
        if (!parse_mem_operand(ops[1], &in.imm, &in.rs1, line_no)) return false;
        break;
      }
      case Format::kA: {
        if (!expect_ops(ops, 3, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        auto rs2 = parse_reg(ops[1]);
        if (!rd || !rs2) return bad_reg(line_no);
        in.rd = *rd; in.rs2 = *rs2;
        if (!parse_mem_operand(ops[2], &in.imm, &in.rs1, line_no)) return false;
        break;
      }
      case Format::kB: {
        if (!expect_ops(ops, 3, line_no, mnemonic)) return false;
        auto rs1 = parse_reg(ops[0]);
        auto rs2 = parse_reg(ops[1]);
        if (!rs1 || !rs2) return bad_reg(line_no);
        in.rs1 = *rs1; in.rs2 = *rs2;
        if (auto imm = parse_int(ops[2])) {
          in.imm = static_cast<i32>(*imm);
        } else {
          fixups_.push_back({static_cast<u32>(instrs_.size()), ops[2], line_no});
        }
        break;
      }
      case Format::kJ: {
        if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        if (!rd) return bad_reg(line_no);
        in.rd = *rd;
        if (auto imm = parse_int(ops[1])) {
          in.imm = static_cast<i32>(*imm);
        } else {
          fixups_.push_back({static_cast<u32>(instrs_.size()), ops[1], line_no});
        }
        break;
      }
      case Format::kC: {
        if (!expect_ops(ops, 2, line_no, mnemonic)) return false;
        auto rd = parse_reg(ops[0]);
        if (!rd) return bad_reg(line_no);
        Csr csr;
        if (!csr_from_name(ops[1], &csr)) {
          set_error(line_no, "unknown CSR '" + ops[1] + "'");
          return false;
        }
        in.rd = *rd;
        in.imm = static_cast<i32>(csr);
        break;
      }
      case Format::kN: {
        if (!expect_ops(ops, 0, line_no, mnemonic)) return false;
        break;
      }
    }
    if (!imm_fits(in.op, in.imm)) {
      set_error(line_no, "immediate out of range");
      return false;
    }
    push(in);
    return true;
  }

  bool bad_reg(u32 line_no) {
    set_error(line_no, "bad register operand");
    return false;
  }

  std::vector<Instr> instrs_;
  std::map<std::string, u32> labels_;
  std::vector<Fixup> fixups_;
  std::string error_;
};

}  // namespace

AsmResult assemble(const std::string& name, const std::string& source) {
  Assembler assembler;
  return assembler.run(name, source);
}

Program must_assemble(const std::string& name, const std::string& source) {
  AsmResult result = assemble(name, source);
  if (!result.ok) {
    std::fprintf(stderr, "assembly of '%s' failed: %s\n", name.c_str(),
                 result.error.c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace mlp::isa
