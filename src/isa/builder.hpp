#pragma once
// Programmatic kernel construction: a thin, type-safe alternative to writing
// assembler text, used by examples and tests that generate code.
//
//   KernelBuilder b;
//   Label loop = b.new_label();
//   b.csrr(1, Csr::kTid);
//   b.bind(loop);
//   ...
//   b.blt(2, 3, loop);
//   b.halt();
//   Program p = b.build("my_kernel");

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace mlp::isa {

/// Opaque forward-referenceable code position.
struct Label {
  u32 id = 0;
};

class KernelBuilder {
 public:
  Label new_label();
  /// Attach `label` to the next emitted instruction.
  void bind(Label label);

  // Integer ALU.
  void add(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kAdd, rd, rs1, rs2); }
  void sub(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kSub, rd, rs1, rs2); }
  void mul(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kMul, rd, rs1, rs2); }
  void and_(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kAnd, rd, rs1, rs2); }
  void or_(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kOr, rd, rs1, rs2); }
  void xor_(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kXor, rd, rs1, rs2); }
  void sll(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kSll, rd, rs1, rs2); }
  void srl(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kSrl, rd, rs1, rs2); }
  void slt(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kSlt, rd, rs1, rs2); }
  void addi(u8 rd, u8 rs1, i32 imm) { emit_i(Opcode::kAddi, rd, rs1, imm); }
  void slli(u8 rd, u8 rs1, i32 imm) { emit_i(Opcode::kSlli, rd, rs1, imm); }
  void srli(u8 rd, u8 rs1, i32 imm) { emit_i(Opcode::kSrli, rd, rs1, imm); }
  void andi(u8 rd, u8 rs1, i32 imm) { emit_i(Opcode::kAndi, rd, rs1, imm); }
  /// Materialize any 32-bit constant (expands to 1-2 instructions).
  void li(u8 rd, u32 value);
  void li_f(u8 rd, float value);
  void mv(u8 rd, u8 rs) { addi(rd, rs, 0); }

  // Float ALU (values bit-cast in integer registers).
  void fadd(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kFadd, rd, rs1, rs2); }
  void fsub(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kFsub, rd, rs1, rs2); }
  void fmul(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kFmul, rd, rs1, rs2); }
  void fdiv(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kFdiv, rd, rs1, rs2); }
  void flt(u8 rd, u8 rs1, u8 rs2) { emit_r(Opcode::kFlt, rd, rs1, rs2); }
  void i2f(u8 rd, u8 rs1) { emit(Instr{Opcode::kFcvtSw, rd, rs1, 0, 0}); }
  void f2i(u8 rd, u8 rs1) { emit(Instr{Opcode::kFcvtWs, rd, rs1, 0, 0}); }

  // Memory.
  void lw(u8 rd, u8 rs1, i32 imm) { emit(Instr{Opcode::kLw, rd, rs1, 0, imm}); }
  void sw(u8 rs2, u8 rs1, i32 imm) { emit(Instr{Opcode::kSw, 0, rs1, rs2, imm}); }
  void lwl(u8 rd, u8 rs1, i32 imm) { emit(Instr{Opcode::kLwl, rd, rs1, 0, imm}); }
  void swl(u8 rs2, u8 rs1, i32 imm) { emit(Instr{Opcode::kSwl, 0, rs1, rs2, imm}); }
  void amoaddl(u8 rd, u8 rs2, u8 rs1, i32 imm = 0) {
    emit(Instr{Opcode::kAmoaddl, rd, rs1, rs2, imm});
  }
  void famoaddl(u8 rd, u8 rs2, u8 rs1, i32 imm = 0) {
    emit(Instr{Opcode::kFamoaddl, rd, rs1, rs2, imm});
  }

  // Control.
  void beq(u8 rs1, u8 rs2, Label l) { emit_branch(Opcode::kBeq, rs1, rs2, l); }
  void bne(u8 rs1, u8 rs2, Label l) { emit_branch(Opcode::kBne, rs1, rs2, l); }
  void blt(u8 rs1, u8 rs2, Label l) { emit_branch(Opcode::kBlt, rs1, rs2, l); }
  void bge(u8 rs1, u8 rs2, Label l) { emit_branch(Opcode::kBge, rs1, rs2, l); }
  void jump(Label l);
  void halt() { emit(Instr{Opcode::kHalt, 0, 0, 0, 0}); }

  void csrr(u8 rd, Csr csr) {
    emit(Instr{Opcode::kCsrr, rd, 0, 0, static_cast<i32>(csr)});
  }

  /// Finalize: resolves all labels; aborts on unbound labels.
  Program build(std::string name);

 private:
  void emit(Instr in) { instrs_.push_back(in); }
  void emit_r(Opcode op, u8 rd, u8 rs1, u8 rs2) {
    emit(Instr{op, rd, rs1, rs2, 0});
  }
  void emit_i(Opcode op, u8 rd, u8 rs1, i32 imm) {
    emit(Instr{op, rd, rs1, 0, imm});
  }
  void emit_branch(Opcode op, u8 rs1, u8 rs2, Label l);

  struct Pending {
    u32 instr_index;
    u32 label_id;
  };

  static constexpr u32 kUnbound = 0xffffffffu;
  std::vector<Instr> instrs_;
  std::vector<u32> label_pcs_;  ///< indexed by label id
  std::vector<u32> bind_queue_;  ///< labels waiting for the next instruction
  std::vector<Pending> pendings_;
};

}  // namespace mlp::isa
