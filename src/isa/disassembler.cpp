#include "isa/disassembler.hpp"

#include <sstream>

namespace mlp::isa {
namespace {

std::string reg(u8 r) { return "r" + std::to_string(r); }

}  // namespace

std::string disassemble(const Instr& in) {
  const OpInfo& info = op_info(in.op);
  std::ostringstream os;
  os << info.name;
  switch (info.format) {
    case Format::kR:
      os << " " << reg(in.rd) << ", " << reg(in.rs1) << ", " << reg(in.rs2);
      break;
    case Format::kRu:
      os << " " << reg(in.rd) << ", " << reg(in.rs1);
      break;
    case Format::kI:
      os << " " << reg(in.rd) << ", " << reg(in.rs1) << ", " << in.imm;
      break;
    case Format::kU:
    case Format::kJ:
      os << " " << reg(in.rd) << ", " << in.imm;
      break;
    case Format::kL:
      os << " " << reg(in.rd) << ", " << in.imm << "(" << reg(in.rs1) << ")";
      break;
    case Format::kS:
      os << " " << reg(in.rs2) << ", " << in.imm << "(" << reg(in.rs1) << ")";
      break;
    case Format::kA:
      os << " " << reg(in.rd) << ", " << reg(in.rs2) << ", " << in.imm << "("
         << reg(in.rs1) << ")";
      break;
    case Format::kB:
      os << " " << reg(in.rs1) << ", " << reg(in.rs2) << ", " << in.imm;
      break;
    case Format::kC:
      os << " " << reg(in.rd) << ", " << csr_name(static_cast<Csr>(in.imm));
      break;
    case Format::kN:
      break;
  }
  return os.str();
}

std::string disassemble(const Program& program) {
  // Invert the label map for annotation.
  std::map<u32, std::string> by_pc;
  for (const auto& [name, pc] : program.labels()) by_pc[pc] = name;
  std::ostringstream os;
  for (u32 pc = 0; pc < program.size(); ++pc) {
    auto it = by_pc.find(pc);
    if (it != by_pc.end()) os << it->second << ":\n";
    os << "  " << pc << ":\t" << disassemble(program.at(pc)) << "\n";
  }
  return os.str();
}

}  // namespace mlp::isa
