#include "isa/encoding.hpp"

#include "common/error.hpp"

namespace mlp::isa {
namespace {

constexpr i32 kImm14Min = -(1 << 13), kImm14Max = (1 << 13) - 1;
constexpr i32 kImm9Min = -(1 << 8), kImm9Max = (1 << 8) - 1;
constexpr i32 kImm19Min = -(1 << 18), kImm19Max = (1 << 18) - 1;

u32 field(u32 value, u32 shift, u32 bits) {
  return (value & ((1u << bits) - 1)) << shift;
}

u32 extract(u32 word, u32 shift, u32 bits) {
  return (word >> shift) & ((1u << bits) - 1);
}

i32 sign_extend(u32 value, u32 bits) {
  const u32 mask = 1u << (bits - 1);
  return static_cast<i32>((value ^ mask)) - static_cast<i32>(mask);
}

}  // namespace

bool imm_fits(Opcode op, i32 imm) {
  switch (op_info(op).format) {
    case Format::kR:
    case Format::kRu:
    case Format::kN:
      return imm == 0;
    case Format::kI:
    case Format::kL:
    case Format::kS:
    case Format::kB:
    case Format::kC:
      return imm >= kImm14Min && imm <= kImm14Max;
    case Format::kA:
      return imm >= kImm9Min && imm <= kImm9Max;
    case Format::kJ:
      return imm >= kImm19Min && imm <= kImm19Max;
    case Format::kU:
      return imm >= 0 && imm <= ((1 << 19) - 1);
  }
  return false;
}

u32 encode(const Instr& in) {
  MLP_CHECK(in.rd < 32 && in.rs1 < 32 && in.rs2 < 32, "register out of range");
  MLP_CHECK(imm_fits(in.op, in.imm), "immediate out of range for format");
  u32 w = field(static_cast<u32>(in.op), 24, 8);
  const u32 uimm = static_cast<u32>(in.imm);
  switch (op_info(in.op).format) {
    case Format::kR:
      w |= field(in.rd, 19, 5) | field(in.rs1, 14, 5) | field(in.rs2, 9, 5);
      break;
    case Format::kRu:
      w |= field(in.rd, 19, 5) | field(in.rs1, 14, 5);
      break;
    case Format::kI:
    case Format::kL:
      w |= field(in.rd, 19, 5) | field(in.rs1, 14, 5) | field(uimm, 0, 14);
      break;
    case Format::kC:
      w |= field(in.rd, 19, 5) | field(uimm, 0, 14);
      break;
    case Format::kU:
    case Format::kJ:
      w |= field(in.rd, 19, 5) | field(uimm, 0, 19);
      break;
    case Format::kS:
    case Format::kB:
      w |= field(uimm >> 9, 19, 5) | field(in.rs1, 14, 5) |
           field(in.rs2, 9, 5) | field(uimm, 0, 9);
      break;
    case Format::kA:
      w |= field(in.rd, 19, 5) | field(in.rs1, 14, 5) | field(in.rs2, 9, 5) |
           field(uimm, 0, 9);
      break;
    case Format::kN:
      break;
  }
  return w;
}

Instr decode(u32 word) {
  const u32 opbyte = extract(word, 24, 8);
  MLP_SIM_CHECK(opbyte < kNumOpcodes, "decode", "invalid opcode byte");
  Instr in;
  in.op = static_cast<Opcode>(opbyte);
  switch (op_info(in.op).format) {
    case Format::kR:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.rs1 = static_cast<u8>(extract(word, 14, 5));
      in.rs2 = static_cast<u8>(extract(word, 9, 5));
      break;
    case Format::kRu:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.rs1 = static_cast<u8>(extract(word, 14, 5));
      break;
    case Format::kI:
    case Format::kL:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.rs1 = static_cast<u8>(extract(word, 14, 5));
      in.imm = sign_extend(extract(word, 0, 14), 14);
      break;
    case Format::kC:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.imm = static_cast<i32>(extract(word, 0, 14));
      MLP_SIM_CHECK(in.imm < static_cast<i32>(kNumCsrs), "decode",
                    "csr index out of range");
      break;
    case Format::kU:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.imm = static_cast<i32>(extract(word, 0, 19));
      break;
    case Format::kJ:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.imm = sign_extend(extract(word, 0, 19), 19);
      break;
    case Format::kS:
    case Format::kB:
      in.rs1 = static_cast<u8>(extract(word, 14, 5));
      in.rs2 = static_cast<u8>(extract(word, 9, 5));
      in.imm = sign_extend((extract(word, 19, 5) << 9) | extract(word, 0, 9), 14);
      break;
    case Format::kA:
      in.rd = static_cast<u8>(extract(word, 19, 5));
      in.rs1 = static_cast<u8>(extract(word, 14, 5));
      in.rs2 = static_cast<u8>(extract(word, 9, 5));
      in.imm = sign_extend(extract(word, 0, 9), 9);
      break;
    case Format::kN:
      break;
  }
  return in;
}

std::vector<u32> encode_program(const std::vector<Instr>& instrs) {
  std::vector<u32> words;
  words.reserve(instrs.size());
  for (const Instr& in : instrs) words.push_back(encode(in));
  return words;
}

std::vector<Instr> decode_program(const std::vector<u32>& words) {
  std::vector<Instr> instrs;
  instrs.reserve(words.size());
  for (u32 w : words) instrs.push_back(decode(w));
  return instrs;
}

}  // namespace mlp::isa
