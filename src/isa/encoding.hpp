#pragma once
// Binary encoding of the kernel ISA into 32-bit words.
//
// Layout (bit 31 is the MSB):
//   [31:24] opcode
//   R  : rd[23:19] rs1[18:14] rs2[13:9]
//   Ru : rd[23:19] rs1[18:14]
//   I,L: rd[23:19] rs1[18:14] imm14[13:0] (signed)
//   C  : rd[23:19] csr[13:0]
//   U,J: rd[23:19] imm19[18:0]  (J signed, U unsigned)
//   S,B: hi5[23:19] rs1[18:14] rs2[13:9] lo9[8:0]; imm14 = hi5:lo9 (signed)
//   A  : rd[23:19] rs1[18:14] rs2[13:9] imm9[8:0] (signed)
//   N  : opcode only
//
// Encoding exists so binaries have a realistic footprint (I-cache sizing)
// and so assembler output can be round-trip tested; the timing models
// execute the decoded Instr form.

#include <vector>

#include "isa/isa.hpp"

namespace mlp::isa {

/// Encodes one instruction. Aborts if a field is out of encodable range
/// (the assembler validates ranges first and reports source locations).
u32 encode(const Instr& instr);

/// Decodes one word. Malformed encodings (unknown opcode byte, csr index
/// past kNumCsrs) throw SimError("decode", ...) — recoverable, never an
/// abort, so corrupt binaries fail one job instead of the whole process.
Instr decode(u32 word);

/// True if `imm` fits the immediate field of `op`'s format.
bool imm_fits(Opcode op, i32 imm);

std::vector<u32> encode_program(const std::vector<Instr>& instrs);
std::vector<Instr> decode_program(const std::vector<u32>& words);

}  // namespace mlp::isa
