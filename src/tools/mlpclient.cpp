// mlpclient — command-line client for the mlpserved simulation service.
//
//   mlpclient --socket /tmp/mlp.sock ping
//   mlpclient --socket /tmp/mlp.sock run --arch millipede --bench count
//   mlpclient --socket /tmp/mlp.sock submit --bench kmeans --hold-ms 500
//   mlpclient --socket /tmp/mlp.sock result --id 1 --wait
//   mlpclient --socket /tmp/mlp.sock sweep --arch all --bench count,kmeans
//   mlpclient --socket /tmp/mlp.sock shutdown
//
// Exit status: 0 on success, 1 on a typed server error (queue-full,
// no-such-job, ...) or a failed simulation, 2 on usage errors. `run` and
// `sweep` print the same CSV / stats-JSON bytes the local tools emit.

#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "serve/client.hpp"
#include "sim/report.hpp"
#include "sweep_grid.hpp"

namespace {

using namespace mlp;

void usage() {
  std::printf(R"(mlpclient — client for the mlpserved simulation service

  mlpclient --socket ADDR COMMAND [flags]

ADDR is a Unix socket path ("/tmp/mlp.sock") or a TCP "HOST:PORT"
("127.0.0.1:7411") — same protocol, same bytes, either transport.

Commands:
  ping               handshake; prints protocol and schema versions
  status             server status (job counts, warm-cache counters)
  status --id N      one job's lifecycle state
  submit JOB         submit one job, print its id (--hold-ms N delays
                     execution; the job stays queued and cancellable)
  result --id N      fetch a finished job's CSV row (--wait blocks;
                     --stats-json prints the run's stats document instead)
  cancel --id N      cancel a queued job (running jobs are not preempted)
  run JOB            submit + wait + print (CSV with header, or
                     --stats-json document)
  sweep GRID         expand a config grid (same axes as mlpsweep), run it
                     through the daemon with queue-full-aware windowing,
                     print CSV rows in grid order (or --stats-json)
  shutdown           ask the daemon to drain and exit

Job flags (submit/run): --arch NAME --bench NAME --records N --rows N
  --seed N --cores N --pf-entries N --bus-efficiency F --fault-rate P
  --ecc --fault-seed N --record-barrier --slab-layout --tag TEXT
  --watchdog-cycles N --watchdog-stall N --watchdog-wall MS
  --trace --trace-dir DIR --trace-ring N --trace-interval N --hold-ms N

Common:
  --raw                   print raw JSON response frames instead of decoding
  --connect-timeout-ms N  TCP handshake deadline (default 5000; 0 = block)
  --request-timeout-ms N  whole-roundtrip deadline; a silent server fails
                          the command with a typed timeout error instead of
                          hanging it (default 0 = no deadline)
  --version               print the toolchain version

%s)",
              tools::SweepGrid::help());
}

/// Typed server errors exit 1 with the kind on stderr so scripts (and the
/// CI queue-full assertion) can branch on the outcome.
int report_error(const serve::Response& r) {
  std::fprintf(stderr, "mlpclient: %s: %s\n", r.error.c_str(),
               r.message.c_str());
  return 1;
}

/// Parse one job's flags (a degenerate one-point grid plus job-only knobs).
serve::JobSpec parse_job(tools::ArgCursor& args, bool* stats_json) {
  serve::JobSpec spec;
  sim::SuiteOptions& o = spec.job.options;
  spec.job.bench = "count";
  while (args.next()) {
    const std::string& arg = args.flag();
    if (args.is("--stats-json")) {
      *stats_json = true;
    } else if (args.is("--arch")) {
      const std::string name = args.value();
      if (!arch::arch_from_name(name, &spec.job.kind)) {
        tools::flag_error(arg, name, "a known architecture");
      }
    } else if (args.is("--bench")) {
      spec.job.bench = args.value();
    } else if (args.is("--tag")) {
      spec.job.tag = args.value();
    } else if (args.is("--records")) {
      o.records = tools::parse_u64(arg, args.value(), /*min=*/1);
    } else if (args.is("--rows")) {
      o.rows = tools::parse_u64(arg, args.value(), /*min=*/1);
    } else if (args.is("--seed")) {
      o.seed = tools::parse_u64(arg, args.value());
    } else if (args.is("--cores")) {
      o.cfg.core.cores = tools::parse_u32(arg, args.value(), /*min=*/1);
      o.cfg.gpgpu.warp_width = o.cfg.core.cores;
    } else if (args.is("--pf-entries")) {
      o.cfg.millipede.pf_entries =
          tools::parse_u32(arg, args.value(), /*min=*/1);
    } else if (args.is("--bus-efficiency")) {
      o.cfg.dram.bus_efficiency =
          tools::parse_positive_double(arg, args.value());
    } else if (args.is("--fault-rate")) {
      o.cfg.dram.fault.bit_flip_rate = tools::parse_rate(arg, args.value());
    } else if (args.is("--fault-seed")) {
      o.cfg.dram.fault.seed = tools::parse_u64(arg, args.value());
    } else if (args.is("--ecc")) {
      o.cfg.dram.fault.ecc = true;
    } else if (args.is("--record-barrier")) {
      o.record_barrier = true;
    } else if (args.is("--slab-layout")) {
      o.cfg.slab_layout = true;
    } else if (args.is("--watchdog-cycles")) {
      o.cfg.watchdog.max_cycles = tools::parse_u64(arg, args.value());
    } else if (args.is("--watchdog-stall")) {
      o.cfg.watchdog.stall_cycles = tools::parse_u64(arg, args.value());
    } else if (args.is("--watchdog-wall")) {
      o.cfg.watchdog.wall_ms = tools::parse_u64(arg, args.value());
    } else if (args.is("--trace")) {
      o.trace.chrome_json = true;
    } else if (args.is("--trace-dir")) {
      o.trace.dir = args.value();
    } else if (args.is("--trace-ring")) {
      o.trace.ring_entries = tools::parse_u64(arg, args.value(), /*min=*/1);
    } else if (args.is("--trace-interval")) {
      o.trace.interval_cycles =
          tools::parse_u64(arg, args.value(), /*min=*/1);
    } else if (args.is("--hold-ms")) {
      spec.hold_ms = tools::parse_u64(arg, args.value());
    } else {
      std::exit(tools::unknown_flag(arg));
    }
  }
  return spec;
}

int print_response(const serve::Response& r, bool raw) {
  if (raw) {
    std::printf("%s\n", r.raw.c_str());
    return r.ok ? 0 : 1;
  }
  if (!r.ok) return report_error(r);
  // Generic decode for the simple commands: print the interesting members.
  if (r.type == "pong") {
    std::printf("pong: protocol %llu, stats schema %llu\n",
                static_cast<unsigned long long>(r.doc.u64_at("protocol_version")),
                static_cast<unsigned long long>(r.doc.u64_at("schema_version")));
  } else if (r.type == "submitted") {
    std::printf("%llu\n",
                static_cast<unsigned long long>(r.doc.u64_at("id")));
  } else if (r.type == "job-status") {
    std::printf("%s\n", r.doc.str_at("state").c_str());
  } else if (r.type == "status") {
    const trace::JsonValue* jobs = r.doc.find("jobs");
    const trace::JsonValue* cache = r.doc.find("cache");
    std::printf("accepting=%d threads=%llu queue_limit=%llu\n",
                r.doc.find("accepting")->boolean ? 1 : 0,
                static_cast<unsigned long long>(r.doc.u64_at("threads")),
                static_cast<unsigned long long>(r.doc.u64_at("queue_limit")));
    std::printf("jobs: queued=%llu running=%llu done=%llu cancelled=%llu\n",
                static_cast<unsigned long long>(jobs->u64_at("queued")),
                static_cast<unsigned long long>(jobs->u64_at("running")),
                static_cast<unsigned long long>(jobs->u64_at("done")),
                static_cast<unsigned long long>(jobs->u64_at("cancelled")));
    std::printf("cache: hits=%llu misses=%llu evictions=%llu entries=%llu "
                "image_bytes=%llu\n",
                static_cast<unsigned long long>(cache->u64_at("hits")),
                static_cast<unsigned long long>(cache->u64_at("misses")),
                static_cast<unsigned long long>(cache->u64_at("evictions")),
                static_cast<unsigned long long>(cache->u64_at("entries")),
                static_cast<unsigned long long>(cache->u64_at("image_bytes")));
  } else if (r.type == "shutting-down") {
    std::printf("shutting down\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  serve::ClientOptions client_options;
  bool raw = false;
  bool stats_json = false;
  bool wait = false;
  u64 id = 0;
  bool have_id = false;

  tools::ArgCursor args(argc, argv);
  // Phase 1: common flags up to the command word.
  while (args.next()) {
    if (args.is("--help") || args.is("-h")) {
      usage();
      return 0;
    } else if (args.is("--version")) {
      tools::print_version("mlpclient");
      return 0;
    } else if (args.is("--socket")) {
      socket_path = args.value();
    } else if (args.is("--raw")) {
      raw = true;
    } else if (args.is("--connect-timeout-ms")) {
      client_options.connect_timeout_ms =
          static_cast<i64>(tools::parse_u64(args.flag(), args.value()));
    } else if (args.is("--request-timeout-ms")) {
      client_options.request_timeout_ms =
          static_cast<i64>(tools::parse_u64(args.flag(), args.value()));
    } else if (args.flag().rfind("--", 0) == 0) {
      return tools::unknown_flag(args.flag());
    } else {
      command = args.flag();
      break;
    }
  }
  if (command.empty()) {
    std::fprintf(stderr, "mlpclient: no command (try --help)\n");
    return 2;
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "mlpclient: --socket ADDR is required\n");
    return 2;
  }

  try {
    serve::Client client(client_options);

    if (command == "run" || command == "sweep") {
      // These own the remaining argv; parse before connecting so usage
      // errors don't need a live daemon.
      if (command == "run") {
        serve::JobSpec spec = parse_job(args, &stats_json);
        client.connect(socket_path);
        const std::vector<serve::RemoteResult> results =
            serve::run_matrix_remote(client, {spec.job});
        const serve::RemoteResult& r = results.at(0);
        if (!r.error.empty()) {
          std::fprintf(stderr, "mlpclient: %s: %s\n", r.error.c_str(),
                       r.message.c_str());
          return 1;
        }
        if (stats_json) {
          std::fputs(sim::stats_json_document({r.stats_run_json}).c_str(),
                     stdout);
        } else {
          std::fputs(sim::sweep_csv_header().c_str(), stdout);
          std::fputs(r.csv.c_str(), stdout);
        }
        return r.run_ok ? 0 : 1;
      }
      // sweep
      tools::SweepGrid grid;
      while (args.next()) {
        if (args.is("--stats-json")) {
          stats_json = true;
        } else if (!grid.consume(args)) {
          return tools::unknown_flag(args.flag());
        }
      }
      const std::vector<sim::MatrixJob> matrix = grid.expand();
      client.connect(socket_path);
      std::fprintf(stderr, "mlpclient: %zu grid points via %s\n",
                   matrix.size(), socket_path.c_str());
      const std::vector<serve::RemoteResult> results =
          serve::run_matrix_remote(client, matrix);
      int exit_code = 0;
      std::vector<std::string> stats_runs;
      if (!stats_json) std::fputs(sim::sweep_csv_header().c_str(), stdout);
      for (std::size_t i = 0; i < results.size(); ++i) {
        const serve::RemoteResult& r = results[i];
        if (!r.error.empty()) {
          std::fprintf(stderr, "SUBMIT FAILED %s/%s: %s: %s\n",
                       arch::arch_name(matrix[i].kind),
                       matrix[i].bench.c_str(), r.error.c_str(),
                       r.message.c_str());
          exit_code = 1;
          continue;
        }
        if (!r.run_ok) exit_code = 1;
        if (stats_json) {
          stats_runs.push_back(r.stats_run_json);
        } else {
          std::fputs(r.csv.c_str(), stdout);
        }
      }
      if (stats_json) {
        std::fputs(sim::stats_json_document(stats_runs).c_str(), stdout);
      }
      return exit_code;
    }

    if (command == "submit") {
      serve::JobSpec spec = parse_job(args, &stats_json);
      client.connect(socket_path);
      return print_response(client.submit(spec), raw);
    }

    // Remaining commands share the trailing flags: --id N --wait
    // --stats-json.
    while (args.next()) {
      if (args.is("--id")) {
        id = tools::parse_u64(args.flag(), args.value(), /*min=*/1);
        have_id = true;
      } else if (args.is("--wait")) {
        wait = true;
      } else if (args.is("--stats-json")) {
        stats_json = true;
      } else {
        return tools::unknown_flag(args.flag());
      }
    }
    client.connect(socket_path);

    serve::Response r;
    if (command == "ping") {
      r = client.ping();
    } else if (command == "status") {
      r = have_id ? client.job_status(id) : client.server_status();
    } else if (command == "result") {
      if (!have_id) {
        std::fprintf(stderr, "mlpclient: result needs --id N\n");
        return 2;
      }
      r = client.result(id, wait);
      if (r.ok && !raw) {
        const trace::JsonValue* state = r.doc.find("state");
        if (state != nullptr && state->string == "cancelled") {
          std::fprintf(stderr, "mlpclient: job %llu was cancelled\n",
                       static_cast<unsigned long long>(id));
          return 1;
        }
        const trace::JsonValue* run_ok = r.doc.find("run_ok");
        if (stats_json) {
          std::fputs(sim::stats_json_document({r.doc.str_at("stats")})
                         .c_str(),
                     stdout);
        } else {
          std::fputs(sim::sweep_csv_header().c_str(), stdout);
          std::fputs(r.doc.str_at("csv").c_str(), stdout);
        }
        return run_ok != nullptr && run_ok->boolean ? 0 : 1;
      }
      if (!r.ok && !raw) {
        return report_error(r);
      }
      // raw: fall through and print the response frame verbatim.
    } else if (command == "cancel") {
      if (!have_id) {
        std::fprintf(stderr, "mlpclient: cancel needs --id N\n");
        return 2;
      }
      r = client.cancel(id);
    } else if (command == "shutdown") {
      r = client.shutdown();
    } else {
      std::fprintf(stderr, "mlpclient: unknown command \"%s\" (try --help)\n",
                   command.c_str());
      return 2;
    }
    return print_response(r, raw);
  } catch (const SimError& e) {
    std::fprintf(stderr, "mlpclient: %s\n", e.what());
    return 1;
  }
}
