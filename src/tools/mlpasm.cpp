// mlpasm — kernel inspection tool: assemble a source file (or dump a
// built-in benchmark kernel), print the listing with labels, the binary
// encoding, static statistics, and the SIMT reconvergence analysis.
//
//   mlpasm --bench nbayes            # disassemble a built-in kernel
//   mlpasm --file my_kernel.s        # assemble + inspect a file
//   mlpasm --bench count --encode    # also dump the 32-bit words

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "argparse.hpp"
#include "isa/assembler.hpp"
#include "isa/cfg.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "workloads/bmla.hpp"

namespace {

using namespace mlp;

void inspect(const isa::Program& program, bool encode) {
  std::printf("== %s: %u instructions (%u bytes) ==\n",
              program.name().c_str(), program.size(), program.size_bytes());
  std::printf("%s\n", isa::disassemble(program).c_str());

  const isa::StaticCounts counts = program.static_counts();
  std::printf("static mix: %u branches, %u jumps, %u global loads, "
              "%u global stores, %u local accesses, %u float ops\n",
              counts.branches, counts.jumps, counts.global_loads,
              counts.global_stores, counts.local_accesses, counts.float_ops);

  const isa::ReconvergenceTable reconv =
      isa::ReconvergenceTable::build(program);
  std::printf("\nSIMT reconvergence points:\n");
  for (u32 pc = 0; pc < program.size(); ++pc) {
    if (!isa::op_info(program.at(pc).op).is_branch) continue;
    const u32 r = reconv.at(pc);
    if (r == isa::ReconvergenceTable::kNoReconv) {
      std::printf("  pc %3u: %-28s -> no join before exit\n", pc,
                  isa::disassemble(program.at(pc)).c_str());
    } else {
      std::printf("  pc %3u: %-28s -> reconverges at pc %u\n", pc,
                  isa::disassemble(program.at(pc)).c_str(), r);
    }
  }

  if (encode) {
    std::printf("\nbinary encoding:\n");
    const auto words = isa::encode_program(program.instrs());
    for (u32 pc = 0; pc < words.size(); ++pc) {
      std::printf("  %3u: 0x%08x  %s\n", pc, words[pc],
                  isa::disassemble(program.at(pc)).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench, file;
  bool encode = false;
  tools::ArgCursor args(argc, argv);
  while (args.next()) {
    if (args.is("--help") || args.is("-h")) {
      std::printf(
          "mlpasm — kernel inspection tool\n"
          "\n"
          "  --bench NAME   disassemble a built-in benchmark kernel\n"
          "  --file PATH    assemble + inspect a source file\n"
          "  --encode       also dump the 32-bit binary encoding\n"
          "  --version      print the toolchain version\n");
      return 0;
    } else if (args.is("--version")) {
      tools::print_version("mlpasm");
      return 0;
    } else if (args.is("--bench")) {
      bench = args.value();
    } else if (args.is("--file")) {
      file = args.value();
    } else if (args.is("--encode")) {
      encode = true;
    } else {
      return tools::unknown_flag(args.flag());
    }
  }

  if (!bench.empty()) {
    workloads::WorkloadParams params;
    params.num_records = 1;
    inspect(workloads::make_bmla(bench, params).program, encode);
    return 0;
  }
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::stringstream source;
    source << in.rdbuf();
    const isa::AsmResult result = isa::assemble(file, source.str());
    if (!result.ok) {
      std::fprintf(stderr, "assembly failed: %s\n", result.error.c_str());
      return 1;
    }
    inspect(result.program, encode);
    return 0;
  }
  std::fprintf(stderr, "usage: mlpasm (--bench NAME | --file PATH) [--encode]\n");
  return 2;
}
