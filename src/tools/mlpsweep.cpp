// mlpsweep — config-grid sweep driver: expands the cross product of
// {architectures} × {benchmarks} × {cores} × {pf-entries} ×
// {bus-efficiencies} × {rows} into independent simulation jobs, runs them
// in parallel through sim::run_matrix, and emits one CSV row per point in
// deterministic grid order. Replaces the old shell-loop-over-mlpsim
// workflow (one process and one thread per sweep point).
//
//   mlpsweep --arch millipede,ssmc --bench count,kmeans --cores 16,32,64
//   mlpsweep --pf-entries 4,8,16,32 --rows 96,192 --jobs 8 > sweep.csv

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "sim/pool.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace {

using namespace mlp;

void usage() {
  std::printf(R"(mlpsweep — parallel configuration-grid sweep

Grid axes (comma-separated lists; each defaults to one paper-default point):
  --arch LIST|all       architectures            (default millipede)
  --bench LIST|all      benchmarks               (default all)
  --cores LIST          corelets / lanes / cores (default 32)
  --pf-entries LIST     prefetch buffer entries  (default 16)
  --bus-efficiency LIST effective bus efficiency (default 0.30)
  --rows LIST           data volume in DRAM rows (default 192)
  --fault-rate LIST     DRAM bit-flip probability per transferred bit
                        (default 0 = off)

Scalars:
  --records N           absolute record count (overrides --rows sizing)
  --seed N              data generation seed     (default 1)
  --jobs N              concurrent simulations   (default: all hw threads)
  --ecc                 SECDED(72,64) correction + retry on detection
  --fault-seed N        fault-injection seed     (default 1)
  --watchdog-cycles N / --watchdog-stall N
                        forward-progress watchdog limits (0 disables)
  --stats-json          emit one JSON document (per-point config, metrics,
                        every registered counter) instead of the CSV
  --trace               per-point Chrome-trace JSON under the trace dir
  --trace-dir DIR       output directory for trace files (default traces)
  --trace-ring N        bounded binary-ring capture (most recent N events)
  --trace-interval N    interval-sampled counter timeline CSV per point

Output: one CSV row per grid point on stdout, config columns first, a
trailing `error` column last. Rows appear in grid order regardless of
--jobs. A failed point (bad config, watchdog trip, uncorrectable memory
fault, verification mismatch) is reported on stderr with its diagnostic,
keeps its row (config columns + error message, metrics empty) so the CSV
stays rectangular, and makes the exit status 1; the remaining points still
run, bit-identically for any --jobs.
)");
}

const std::pair<const char*, arch::ArchKind> kArchTable[] = {
    {"millipede", arch::ArchKind::kMillipede},
    {"millipede-no-flow-control", arch::ArchKind::kMillipedeNoFlowControl},
    {"millipede-no-rate-match", arch::ArchKind::kMillipedeNoRateMatch},
    {"ssmc", arch::ArchKind::kSsmc},
    {"gpgpu", arch::ArchKind::kGpgpu},
    {"vws", arch::ArchKind::kVws},
    {"vws-row", arch::ArchKind::kVwsRow},
    {"multicore", arch::ArchKind::kMulticore},
};

std::vector<arch::ArchKind> parse_archs(const std::string& flag,
                                        const std::string& text) {
  std::vector<arch::ArchKind> kinds;
  if (text == "all") {
    for (const auto& [name, kind] : kArchTable) kinds.push_back(kind);
    return kinds;
  }
  for (const std::string& name : tools::split_list(flag, text)) {
    bool found = false;
    for (const auto& [table_name, kind] : kArchTable) {
      if (name == table_name) {
        kinds.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) tools::flag_error(flag, name, "a known architecture");
  }
  return kinds;
}

std::vector<std::string> parse_benches(const std::string& flag,
                                       const std::string& text) {
  if (text == "all") return workloads::bmla_names();
  std::vector<std::string> benches = tools::split_list(flag, text);
  const std::vector<std::string>& known = workloads::bmla_names();
  for (const std::string& bench : benches) {
    if (std::find(known.begin(), known.end(), bench) == known.end()) {
      tools::flag_error(flag, bench, "a known benchmark");
    }
  }
  return benches;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<arch::ArchKind> archs = {arch::ArchKind::kMillipede};
  std::vector<std::string> benches = workloads::bmla_names();
  std::vector<u32> cores = {32};
  std::vector<u32> pf_entries = {16};
  std::vector<double> bus_efficiencies = {0.30};
  std::vector<u64> rows = {sim::kDefaultRows};
  std::vector<double> fault_rates = {0.0};
  u64 records = 0;
  u64 seed = 1;
  u32 jobs = 0;
  bool ecc = false;
  bool stats_json = false;
  u64 fault_seed = 1;
  WatchdogConfig watchdog;
  trace::TraceConfig trace_cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--arch") {
      archs = parse_archs(arg, next());
    } else if (arg == "--bench") {
      benches = parse_benches(arg, next());
    } else if (arg == "--cores") {
      cores.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        cores.push_back(tools::parse_u32(arg, item, /*min=*/1));
      }
    } else if (arg == "--pf-entries") {
      pf_entries.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        pf_entries.push_back(tools::parse_u32(arg, item, /*min=*/1));
      }
    } else if (arg == "--bus-efficiency") {
      bus_efficiencies.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        bus_efficiencies.push_back(tools::parse_positive_double(arg, item));
      }
    } else if (arg == "--rows") {
      rows.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        rows.push_back(tools::parse_u64(arg, item, /*min=*/1));
      }
    } else if (arg == "--fault-rate") {
      fault_rates.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        fault_rates.push_back(tools::parse_rate(arg, item));
      }
    } else if (arg == "--ecc") {
      ecc = true;
    } else if (arg == "--fault-seed") {
      fault_seed = tools::parse_u64(arg, next());
    } else if (arg == "--watchdog-cycles") {
      watchdog.max_cycles = tools::parse_u64(arg, next());
    } else if (arg == "--watchdog-stall") {
      watchdog.stall_cycles = tools::parse_u64(arg, next());
    } else if (arg == "--records") {
      records = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--seed") {
      seed = tools::parse_u64(arg, next());
    } else if (arg == "--jobs" || arg == "-j") {
      jobs = tools::parse_u32(arg, next(), /*min=*/1);
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (arg == "--trace") {
      trace_cfg.chrome_json = true;
    } else if (arg == "--trace-dir") {
      trace_cfg.dir = next();
    } else if (arg == "--trace-ring") {
      trace_cfg.ring_entries = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--trace-interval") {
      trace_cfg.interval_cycles = tools::parse_u64(arg, next(), /*min=*/1);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Expand the grid in a fixed axis order so the CSV is stable.
  std::vector<sim::MatrixJob> matrix;
  for (const arch::ArchKind kind : archs) {
    for (const std::string& bench : benches) {
      for (const u32 core_count : cores) {
        for (const u32 entries : pf_entries) {
          for (const double bus_eff : bus_efficiencies) {
            for (const u64 row_count : rows) {
              for (const double fault_rate : fault_rates) {
                sim::SuiteOptions options;
                options.records = records;
                options.rows = row_count;
                options.seed = seed;
                options.cfg.core.cores = core_count;
                options.cfg.gpgpu.warp_width = core_count;
                options.cfg.millipede.pf_entries = entries;
                options.cfg.dram.bus_efficiency = bus_eff;
                options.cfg.dram.fault.bit_flip_rate = fault_rate;
                options.cfg.dram.fault.ecc = ecc;
                options.cfg.dram.fault.seed = fault_seed;
                options.cfg.watchdog = watchdog;
                options.trace = trace_cfg;
                // Tracing needs a unique per-point file stem: encode the
                // grid coordinates into the job tag.
                std::string tag;
                if (trace_cfg.enabled()) {
                  char buf[96];
                  std::snprintf(buf, sizeof(buf), "c%u-pf%u-bus%.3f-r%llu-f%g",
                                core_count, entries, bus_eff,
                                static_cast<unsigned long long>(row_count),
                                fault_rate);
                  tag = buf;
                }
                matrix.push_back({kind, bench, options, tag});
              }
            }
          }
        }
      }
    }
  }

  std::fprintf(stderr, "mlpsweep: %zu grid points on %u threads\n",
               matrix.size(),
               jobs == 0 ? sim::ThreadPool::default_threads() : jobs);
  const std::vector<sim::MatrixResult> results = sim::run_matrix(matrix, jobs);

  int exit_code = 0;
  if (!stats_json) std::fputs(sim::sweep_csv_header().c_str(), stdout);
  for (const sim::MatrixResult& run : results) {
    const sim::SuiteOptions& o = run.job.options;
    if (!run.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s cores=%u pf=%u bus=%.2f "
                   "rows=%llu fault=%g: %s\n",
                   arch::arch_name(run.job.kind), run.job.bench.c_str(),
                   o.cfg.core.cores, o.cfg.millipede.pf_entries,
                   o.cfg.dram.bus_efficiency,
                   static_cast<unsigned long long>(o.rows),
                   o.cfg.dram.fault.bit_flip_rate, run.error.c_str());
      if (!run.diagnostic.empty()) {
        std::fprintf(stderr, "%s", run.diagnostic.c_str());
      }
      exit_code = 1;
      // Fall through: a failed point still gets its CSV row (config columns
      // + error message) so the table stays rectangular and in grid order.
    }
    if (!stats_json) std::fputs(sim::sweep_csv_row(run).c_str(), stdout);
  }
  if (stats_json) std::fputs(sim::stats_json(results).c_str(), stdout);
  return exit_code;
}
