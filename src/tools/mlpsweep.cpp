// mlpsweep — config-grid sweep driver: expands the cross product of
// {architectures} × {benchmarks} × {cores} × {pf-entries} ×
// {bus-efficiencies} × {rows} into independent simulation jobs, runs them
// in parallel through sim::run_matrix, and emits one CSV row per point in
// deterministic grid order. Replaces the old shell-loop-over-mlpsim
// workflow (one process and one thread per sweep point).
//
//   mlpsweep --arch millipede,ssmc --bench count,kmeans --cores 16,32,64
//   mlpsweep --pf-entries 4,8,16,32 --rows 96,192 --jobs 8 > sweep.csv

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "sim/pool.hpp"
#include "sim/runner.hpp"

namespace {

using namespace mlp;

void usage() {
  std::printf(R"(mlpsweep — parallel configuration-grid sweep

Grid axes (comma-separated lists; each defaults to one paper-default point):
  --arch LIST|all       architectures            (default millipede)
  --bench LIST|all      benchmarks               (default all)
  --cores LIST          corelets / lanes / cores (default 32)
  --pf-entries LIST     prefetch buffer entries  (default 16)
  --bus-efficiency LIST effective bus efficiency (default 0.30)
  --rows LIST           data volume in DRAM rows (default 192)
  --fault-rate LIST     DRAM bit-flip probability per transferred bit
                        (default 0 = off)

Scalars:
  --records N           absolute record count (overrides --rows sizing)
  --seed N              data generation seed     (default 1)
  --jobs N              concurrent simulations   (default: all hw threads)
  --ecc                 SECDED(72,64) correction + retry on detection
  --fault-seed N        fault-injection seed     (default 1)
  --watchdog-cycles N / --watchdog-stall N
                        forward-progress watchdog limits (0 disables)

Output: one CSV row per grid point on stdout, config columns first. Rows
appear in grid order regardless of --jobs. A failed point (bad config,
watchdog trip, uncorrectable memory fault, verification mismatch) is
reported on stderr with its diagnostic and makes the exit status 1; the
remaining points still run, bit-identically for any --jobs.
)");
}

const std::pair<const char*, arch::ArchKind> kArchTable[] = {
    {"millipede", arch::ArchKind::kMillipede},
    {"millipede-no-flow-control", arch::ArchKind::kMillipedeNoFlowControl},
    {"millipede-no-rate-match", arch::ArchKind::kMillipedeNoRateMatch},
    {"ssmc", arch::ArchKind::kSsmc},
    {"gpgpu", arch::ArchKind::kGpgpu},
    {"vws", arch::ArchKind::kVws},
    {"vws-row", arch::ArchKind::kVwsRow},
    {"multicore", arch::ArchKind::kMulticore},
};

std::vector<arch::ArchKind> parse_archs(const std::string& flag,
                                        const std::string& text) {
  std::vector<arch::ArchKind> kinds;
  if (text == "all") {
    for (const auto& [name, kind] : kArchTable) kinds.push_back(kind);
    return kinds;
  }
  for (const std::string& name : tools::split_list(flag, text)) {
    bool found = false;
    for (const auto& [table_name, kind] : kArchTable) {
      if (name == table_name) {
        kinds.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) tools::flag_error(flag, name, "a known architecture");
  }
  return kinds;
}

std::vector<std::string> parse_benches(const std::string& flag,
                                       const std::string& text) {
  if (text == "all") return workloads::bmla_names();
  std::vector<std::string> benches = tools::split_list(flag, text);
  const std::vector<std::string>& known = workloads::bmla_names();
  for (const std::string& bench : benches) {
    if (std::find(known.begin(), known.end(), bench) == known.end()) {
      tools::flag_error(flag, bench, "a known benchmark");
    }
  }
  return benches;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<arch::ArchKind> archs = {arch::ArchKind::kMillipede};
  std::vector<std::string> benches = workloads::bmla_names();
  std::vector<u32> cores = {32};
  std::vector<u32> pf_entries = {16};
  std::vector<double> bus_efficiencies = {0.30};
  std::vector<u64> rows = {sim::kDefaultRows};
  std::vector<double> fault_rates = {0.0};
  u64 records = 0;
  u64 seed = 1;
  u32 jobs = 0;
  bool ecc = false;
  u64 fault_seed = 1;
  WatchdogConfig watchdog;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--arch") {
      archs = parse_archs(arg, next());
    } else if (arg == "--bench") {
      benches = parse_benches(arg, next());
    } else if (arg == "--cores") {
      cores.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        cores.push_back(tools::parse_u32(arg, item, /*min=*/1));
      }
    } else if (arg == "--pf-entries") {
      pf_entries.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        pf_entries.push_back(tools::parse_u32(arg, item, /*min=*/1));
      }
    } else if (arg == "--bus-efficiency") {
      bus_efficiencies.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        bus_efficiencies.push_back(tools::parse_positive_double(arg, item));
      }
    } else if (arg == "--rows") {
      rows.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        rows.push_back(tools::parse_u64(arg, item, /*min=*/1));
      }
    } else if (arg == "--fault-rate") {
      fault_rates.clear();
      for (const std::string& item : tools::split_list(arg, next())) {
        fault_rates.push_back(tools::parse_rate(arg, item));
      }
    } else if (arg == "--ecc") {
      ecc = true;
    } else if (arg == "--fault-seed") {
      fault_seed = tools::parse_u64(arg, next());
    } else if (arg == "--watchdog-cycles") {
      watchdog.max_cycles = tools::parse_u64(arg, next());
    } else if (arg == "--watchdog-stall") {
      watchdog.stall_cycles = tools::parse_u64(arg, next());
    } else if (arg == "--records") {
      records = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--seed") {
      seed = tools::parse_u64(arg, next());
    } else if (arg == "--jobs" || arg == "-j") {
      jobs = tools::parse_u32(arg, next(), /*min=*/1);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Expand the grid in a fixed axis order so the CSV is stable.
  std::vector<sim::MatrixJob> matrix;
  for (const arch::ArchKind kind : archs) {
    for (const std::string& bench : benches) {
      for (const u32 core_count : cores) {
        for (const u32 entries : pf_entries) {
          for (const double bus_eff : bus_efficiencies) {
            for (const u64 row_count : rows) {
              for (const double fault_rate : fault_rates) {
                sim::SuiteOptions options;
                options.records = records;
                options.rows = row_count;
                options.seed = seed;
                options.cfg.core.cores = core_count;
                options.cfg.gpgpu.warp_width = core_count;
                options.cfg.millipede.pf_entries = entries;
                options.cfg.dram.bus_efficiency = bus_eff;
                options.cfg.dram.fault.bit_flip_rate = fault_rate;
                options.cfg.dram.fault.ecc = ecc;
                options.cfg.dram.fault.seed = fault_seed;
                options.cfg.watchdog = watchdog;
                matrix.push_back({kind, bench, options, /*tag=*/""});
              }
            }
          }
        }
      }
    }
  }

  std::fprintf(stderr, "mlpsweep: %zu grid points on %u threads\n",
               matrix.size(),
               jobs == 0 ? sim::ThreadPool::default_threads() : jobs);
  const std::vector<sim::MatrixResult> results = sim::run_matrix(matrix, jobs);

  std::printf("arch,bench,cores,pf_entries,bus_efficiency,rows,records,seed,"
              "fault_rate,ecc,runtime_us,cycles,insts,insts_per_word,"
              "clock_mhz,core_uj,dram_uj,leak_uj,row_miss_rate,"
              "ecc_corrected,ecc_detected,fault_retries\n");
  auto stat_or_zero = [](const arch::RunResult& r, const char* key) {
    const auto it = r.stats.find(key);
    return it == r.stats.end() ? u64{0} : it->second;
  };
  int exit_code = 0;
  for (const sim::MatrixResult& run : results) {
    const sim::SuiteOptions& o = run.job.options;
    if (!run.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s cores=%u pf=%u bus=%.2f "
                   "rows=%llu fault=%g: %s\n",
                   arch::arch_name(run.job.kind), run.job.bench.c_str(),
                   o.cfg.core.cores, o.cfg.millipede.pf_entries,
                   o.cfg.dram.bus_efficiency,
                   static_cast<unsigned long long>(o.rows),
                   o.cfg.dram.fault.bit_flip_rate, run.error.c_str());
      if (!run.diagnostic.empty()) {
        std::fprintf(stderr, "%s", run.diagnostic.c_str());
      }
      exit_code = 1;
      continue;
    }
    const arch::RunResult& r = run.result;
    const u64 run_records =
        o.records != 0 ? o.records
                       : sim::records_for(run.job.bench, o.cfg, o.rows);
    std::printf(
        "%s,%s,%u,%u,%.3f,%llu,%llu,%llu,%g,%d,%.3f,%llu,%llu,%.2f,%.0f,"
        "%.3f,%.3f,%.3f,%.4f,%llu,%llu,%llu\n",
        r.arch.c_str(), run.job.bench.c_str(), o.cfg.core.cores,
        o.cfg.millipede.pf_entries, o.cfg.dram.bus_efficiency,
        static_cast<unsigned long long>(o.rows),
        static_cast<unsigned long long>(run_records),
        static_cast<unsigned long long>(o.seed),
        o.cfg.dram.fault.bit_flip_rate, o.cfg.dram.fault.ecc ? 1 : 0,
        static_cast<double>(r.runtime_ps) / 1e6,
        static_cast<unsigned long long>(r.compute_cycles),
        static_cast<unsigned long long>(r.thread_instructions),
        r.insts_per_word, r.final_clock_mhz, r.energy.core_j * 1e6,
        r.energy.dram_j * 1e6, r.energy.leak_j * 1e6, r.row_miss_rate,
        static_cast<unsigned long long>(stat_or_zero(r, "dram.ecc_corrected")),
        static_cast<unsigned long long>(stat_or_zero(r, "dram.ecc_detected")),
        static_cast<unsigned long long>(stat_or_zero(r, "dram.fault_retries")));
  }
  return exit_code;
}
