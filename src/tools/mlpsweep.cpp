// mlpsweep — config-grid sweep driver: expands the cross product of
// {architectures} × {benchmarks} × {cores} × {pf-entries} ×
// {bus-efficiencies} × {rows} × {fault-rates} into independent simulation
// jobs and emits one CSV row per point in deterministic grid order. Two
// execution paths with byte-identical output:
//
//  * local (default): sim::run_matrix on an in-process thread pool, with a
//    warm prepare cache deduplicating kernel assembly / record generation /
//    DRAM image construction across the grid;
//  * remote (--server ADDR[,ADDR...]): ship the jobs to one or more running
//    mlpserved daemons (Unix sockets or HOST:PORT) — jobs are consistent-
//    hashed by prepare-cache key so each node's cache stays warm ACROSS
//    sweeps, results merge back in grid order, and a node lost mid-sweep
//    costs typed error rows, not the sweep.
//
//   mlpsweep --arch millipede,ssmc --bench count,kmeans --cores 16,32,64
//   mlpsweep --pf-entries 4,8,16,32 --rows 96,192 --jobs 8 > sweep.csv
//   mlpsweep --server /tmp/mlp.sock --arch all --bench all --stats-json
//   mlpsweep --server node1:7411,node2:7411 --bench all --cores 16,32,64

#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "serve/shard.hpp"
#include "sim/pool.hpp"
#include "sim/prepare.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sweep_grid.hpp"

namespace {

using namespace mlp;

void usage() {
  std::printf(R"(mlpsweep — parallel configuration-grid sweep

%s
Execution:
  --jobs N              concurrent simulations   (default: all hw threads)
  --no-fast-forward     step every clock edge instead of fast-forwarding
                        idle gaps (bit-identical output; equivalence checks)
  --server ADDR[,...]   run the grid on mlpserved daemon(s) instead of
                        in-process (same output bytes, warm caches persist
                        across sweeps). ADDR is a Unix socket path or
                        HOST:PORT; several (comma-separated or repeated)
                        shard the grid by prepare-cache key, one sliding
                        window per node, results merged in grid order
  --stats-json          emit one JSON document (per-point config, metrics,
                        every registered counter) instead of the CSV
  --version             print the toolchain version

Output: one CSV row per grid point on stdout, config columns first, a
trailing `error` column last. Rows appear in grid order regardless of
--jobs. A failed point (bad config, watchdog trip, uncorrectable memory
fault, verification mismatch) is reported on stderr with its diagnostic,
keeps its row (config columns + error message, metrics empty) so the CSV
stays rectangular, and makes the exit status 1; the remaining points still
run, bit-identically for any --jobs.
)",
              tools::SweepGrid::help());
}

int run_remote(const std::vector<std::string>& servers,
               const std::vector<sim::MatrixJob>& matrix, bool stats_json) {
  const std::vector<serve::RemoteResult> results =
      serve::run_matrix_sharded(servers, matrix);

  int exit_code = 0;
  std::vector<std::string> stats_runs;
  if (!stats_json) std::fputs(sim::sweep_csv_header().c_str(), stdout);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const serve::RemoteResult& r = results[i];
    if (!r.error.empty()) {
      std::fprintf(stderr, "SUBMIT FAILED %s/%s: %s: %s\n",
                   arch::arch_name(matrix[i].kind), matrix[i].bench.c_str(),
                   r.error.c_str(), r.message.c_str());
      exit_code = 1;
      // The point still gets its row — config columns + the typed error
      // (node-lost, queue-full, ...) — so a sweep that loses a node emits
      // a rectangular CSV, exactly like a local per-job failure.
      sim::MatrixResult failed;
      failed.job = matrix[i];
      failed.error = r.error + ": " + r.message;
      if (stats_json) {
        stats_runs.push_back(sim::stats_json_run(failed));
      } else {
        std::fputs(sim::sweep_csv_row(failed).c_str(), stdout);
      }
      continue;
    }
    // A point that FAILED ON THE SERVER still yields an ok result response;
    // its CSV row carries the error column, exactly like the local path.
    if (!r.run_ok) exit_code = 1;
    if (stats_json) {
      stats_runs.push_back(r.stats_run_json);
    } else {
      std::fputs(r.csv.c_str(), stdout);
    }
  }
  if (stats_json) {
    std::fputs(sim::stats_json_document(stats_runs).c_str(), stdout);
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  tools::SweepGrid grid;
  u32 jobs = 0;
  bool stats_json = false;
  bool fast_forward = true;
  std::vector<std::string> servers;

  tools::ArgCursor args(argc, argv);
  while (args.next()) {
    if (args.is("--help") || args.is("-h")) {
      usage();
      return 0;
    } else if (args.is("--version")) {
      tools::print_version("mlpsweep");
      return 0;
    } else if (args.is("--jobs") || args.is("-j")) {
      jobs = tools::parse_u32(args.flag(), args.value(), /*min=*/1);
    } else if (args.is("--stats-json")) {
      stats_json = true;
    } else if (args.is("--no-fast-forward")) {
      fast_forward = false;
    } else if (args.is("--server")) {
      for (const std::string& addr :
           tools::split_list(args.flag(), args.value())) {
        servers.push_back(addr);
      }
    } else if (!grid.consume(args)) {
      return tools::unknown_flag(args.flag());
    }
  }

  std::vector<sim::MatrixJob> matrix = grid.expand();
  if (!fast_forward) {
    for (sim::MatrixJob& job : matrix) job.options.cfg.fast_forward = false;
  }

  if (!servers.empty()) {
    std::string names = servers[0];
    for (std::size_t i = 1; i < servers.size(); ++i) names += "," + servers[i];
    std::fprintf(stderr, "mlpsweep: %zu grid points via %zu server(s): %s\n",
                 matrix.size(), servers.size(), names.c_str());
    try {
      return run_remote(servers, matrix, stats_json);
    } catch (const SimError& e) {
      std::fprintf(stderr, "mlpsweep: %s\n", e.what());
      return 1;
    }
  }

  std::fprintf(stderr, "mlpsweep: %zu grid points on %u threads\n",
               matrix.size(),
               jobs == 0 ? sim::ThreadPool::default_threads() : jobs);
  // Warm prepare cache: grid points sharing (bench, records, seed, layout)
  // reuse one assembled program / record set / DRAM image / reference.
  sim::PrepareCache cache;
  const std::vector<sim::MatrixResult> results =
      sim::run_matrix(matrix, jobs, &cache);

  int exit_code = 0;
  if (!stats_json) std::fputs(sim::sweep_csv_header().c_str(), stdout);
  for (const sim::MatrixResult& run : results) {
    const sim::SuiteOptions& o = run.job.options;
    if (!run.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s cores=%u pf=%u bus=%.2f "
                   "rows=%llu fault=%g: %s\n",
                   arch::arch_name(run.job.kind), run.job.bench.c_str(),
                   o.cfg.core.cores, o.cfg.millipede.pf_entries,
                   o.cfg.dram.bus_efficiency,
                   static_cast<unsigned long long>(o.rows),
                   o.cfg.dram.fault.bit_flip_rate, run.error.c_str());
      if (!run.diagnostic.empty()) {
        std::fprintf(stderr, "%s", run.diagnostic.c_str());
      }
      exit_code = 1;
      // Fall through: a failed point still gets its CSV row (config columns
      // + error message) so the table stays rectangular and in grid order.
    }
    if (!stats_json) std::fputs(sim::sweep_csv_row(run).c_str(), stdout);
  }
  if (stats_json) std::fputs(sim::stats_json(results).c_str(), stdout);
  const sim::PrepareCacheStats cs = cache.stats();
  std::fprintf(stderr,
               "mlpsweep: prepare cache %llu hits / %llu misses "
               "(%llu evictions)\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.evictions));
  return exit_code;
}
