// mlpsweep — config-grid sweep driver: expands the cross product of
// {architectures} × {benchmarks} × {cores} × {pf-entries} ×
// {bus-efficiencies} × {rows} × {fault-rates} into independent simulation
// jobs and emits one CSV row per point in deterministic grid order. Two
// execution paths with byte-identical output:
//
//  * local (default): sim::run_matrix on an in-process thread pool, with a
//    warm prepare cache deduplicating kernel assembly / record generation /
//    DRAM image construction across the grid;
//  * remote (--server ADDR[,ADDR...]): ship the jobs to one or more running
//    mlpserved daemons (Unix sockets or HOST:PORT) — jobs are consistent-
//    hashed by prepare-cache key so each node's cache stays warm ACROSS
//    sweeps, results merge back in grid order, and the fleet SELF-HEALS: a
//    node lost mid-sweep (crash, hang, graceful drain) has its points
//    re-dispatched to ring survivors, resurrected nodes are probed back in,
//    and the output stays byte-identical to a local run.
//
//   mlpsweep --arch millipede,ssmc --bench count,kmeans --cores 16,32,64
//   mlpsweep --pf-entries 4,8,16,32 --rows 96,192 --jobs 8 > sweep.csv
//   mlpsweep --server /tmp/mlp.sock --arch all --bench all --stats-json
//   mlpsweep --server node1:7411,node2:7411 --bench all --cores 16,32,64

#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "serve/shard.hpp"
#include "sim/fork.hpp"
#include "sim/pool.hpp"
#include "sim/prepare.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sweep_grid.hpp"
#include "trace/json.hpp"

namespace {

using namespace mlp;

void usage() {
  std::printf(R"(mlpsweep — parallel configuration-grid sweep

%s
Execution:
  --jobs N              concurrent simulations   (default: all hw threads)
  --fork-at N           warm-snapshot forking (local runs only): grid
                        points differing ONLY in fault-injection rates
                        share one simulated warmup — a leader captures a
                        snapshot at the first quiescent cycle >= N and the
                        divergent points restore from it. Output stays
                        byte-identical to an unforked sweep; savings are
                        reported on stderr
  --no-fast-forward     step every clock edge instead of fast-forwarding
                        idle gaps (bit-identical output; equivalence checks)
  --no-block-cache      re-decode every issued instruction instead of
                        dispatching over the decoded-basic-block cache
                        (bit-identical output; equivalence checks)
  --server ADDR[,...]   run the grid on mlpserved daemon(s) instead of
                        in-process (same output bytes, warm caches persist
                        across sweeps). ADDR is a Unix socket path or
                        HOST:PORT; several (comma-separated or repeated)
                        shard the grid by prepare-cache key, one sliding
                        window per node, results merged in grid order
  --stats-json          emit one JSON document (per-point config, metrics,
                        every registered counter) instead of the CSV
  --list-arches         list architectures only, one per line
  --list-benches        list benchmarks only, one per line
  --version             print the toolchain version

Fleet resilience (with --server; see docs/ARCHITECTURE.md):
  --connect-timeout-ms N  initial-connect window + TCP handshake bound per
                          node; a just-launched daemon is retried until it
                          elapses (default 5000; 0 = single blocking try)
  --request-timeout-ms N  per-request deadline; a node silent that long is
                          dead and its points fail over (default 30000;
                          0 = no deadline, a hung node hangs the sweep)
  --retry-budget N        re-dispatches per point after node losses before
                          it becomes a typed error row (default 3)
  --no-failover           legacy behaviour: a dead node's points become
                          typed node-lost rows instead of failing over
  --chaos SPEC            seeded fault injection on outgoing frames, e.g.
                          drop=0.05,delay=0.1,delay-ms=20,truncate=0.01,
                          close=0.02,seed=7 (also: MLP_CHAOS env var)
  --fleet-stats           append the fleet-health report as a "fleet"
                          member of the --stats-json document (with
                          --fork-at: the fork report as a "fork" member)

Output: one CSV row per grid point on stdout, config columns first, a
trailing `error` column last. Rows appear in grid order regardless of
--jobs. A failed point (bad config, watchdog trip, uncorrectable memory
fault, verification mismatch) is reported on stderr with its diagnostic,
keeps its row (config columns + error message, metrics empty) so the CSV
stays rectangular, and makes the exit status 1; the remaining points still
run, bit-identically for any --jobs.
)",
              tools::SweepGrid::help());
}

/// The opt-in "fork" footer of the --stats-json document (mirrors the
/// "fleet" footer of remote sweeps).
std::string fork_stats_json(u64 fork_at, const sim::ForkStats& stats) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("fork_at");
  w.value(fork_at);
  w.key("groups");
  w.value(stats.groups);
  w.key("forked_points");
  w.value(stats.forked_points);
  w.key("unsafe_points");
  w.value(stats.unsafe_points);
  w.key("warmup_cycles_saved");
  w.value(stats.warmup_cycles_saved);
  w.end_object();
  return w.take();
}

void print_fleet_report(const serve::FleetHealth& fleet) {
  std::fprintf(stderr,
               "mlpsweep: fleet health: %llu retries, %llu failovers, "
               "%llu reconnects, %llu node deaths, %llu request timeouts, "
               "%llu chaos injections, %llu points lost\n",
               static_cast<unsigned long long>(fleet.retries),
               static_cast<unsigned long long>(fleet.failovers),
               static_cast<unsigned long long>(fleet.reconnects),
               static_cast<unsigned long long>(fleet.node_deaths),
               static_cast<unsigned long long>(fleet.request_timeouts),
               static_cast<unsigned long long>(fleet.chaos_injected),
               static_cast<unsigned long long>(fleet.points_lost));
  for (const serve::NodeHealth& node : fleet.nodes) {
    std::fprintf(stderr,
                 "mlpsweep:   node %s: %llu jobs, %llu deaths, "
                 "%llu reconnects, window %llu%s\n",
                 node.address.c_str(),
                 static_cast<unsigned long long>(node.jobs_completed),
                 static_cast<unsigned long long>(node.deaths),
                 static_cast<unsigned long long>(node.reconnects),
                 static_cast<unsigned long long>(node.window),
                 node.window_from_status ? "" : " (fallback)");
  }
}

int run_remote(const std::vector<std::string>& servers,
               const std::vector<sim::MatrixJob>& matrix, bool stats_json,
               const serve::ShardOptions& options, bool fleet_stats) {
  serve::FleetHealth fleet;
  const std::vector<serve::RemoteResult> results =
      serve::run_matrix_sharded(servers, matrix, options, &fleet);

  int exit_code = 0;
  std::vector<std::string> stats_runs;
  if (!stats_json) std::fputs(sim::sweep_csv_header().c_str(), stdout);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const serve::RemoteResult& r = results[i];
    if (!r.error.empty()) {
      std::fprintf(stderr, "SUBMIT FAILED %s/%s: %s: %s\n",
                   arch::arch_name(matrix[i].kind), matrix[i].bench.c_str(),
                   r.error.c_str(), r.message.c_str());
      exit_code = 1;
      // The point still gets its row — config columns + the typed error
      // (node-lost, queue-full, ...) — so a sweep that loses a node emits
      // a rectangular CSV, exactly like a local per-job failure.
      sim::MatrixResult failed;
      failed.job = matrix[i];
      failed.error = r.error + ": " + r.message;
      if (stats_json) {
        stats_runs.push_back(sim::stats_json_run(failed));
      } else {
        std::fputs(sim::sweep_csv_row(failed).c_str(), stdout);
      }
      continue;
    }
    // A point that FAILED ON THE SERVER still yields an ok result response;
    // its CSV row carries the error column, exactly like the local path.
    if (!r.run_ok) exit_code = 1;
    if (stats_json) {
      stats_runs.push_back(r.stats_run_json);
    } else {
      std::fputs(r.csv.c_str(), stdout);
    }
  }
  if (stats_json) {
    // The fleet footer is OPT-IN: without --fleet-stats the document stays
    // byte-identical to a local run's, failures or not.
    const std::string doc =
        fleet_stats
            ? sim::stats_json_document(stats_runs, "fleet",
                                       serve::fleet_health_json(fleet))
            : sim::stats_json_document(stats_runs);
    std::fputs(doc.c_str(), stdout);
  }
  if (fleet.degraded() || fleet.chaos_injected != 0) print_fleet_report(fleet);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  tools::SweepGrid grid;
  u32 jobs = 0;
  u64 fork_at = 0;
  bool stats_json = false;
  bool fast_forward = true;
  bool block_cache = true;
  bool fleet_stats = false;
  std::vector<std::string> servers;
  serve::ShardOptions shard_options;

  tools::ArgCursor args(argc, argv);
  while (args.next()) {
    if (args.is("--help") || args.is("-h")) {
      usage();
      return 0;
    } else if (args.is("--version")) {
      tools::print_version("mlpsweep");
      return 0;
    } else if (args.is("--jobs") || args.is("-j")) {
      jobs = tools::parse_u32(args.flag(), args.value(), /*min=*/1);
    } else if (args.is("--fork-at")) {
      fork_at = tools::parse_u64(args.flag(), args.value(), /*min=*/1);
    } else if (args.is("--list-arches")) {
      std::vector<std::string> names;
      for (arch::ArchKind k : arch::all_arch_kinds()) {
        names.push_back(arch::arch_name(k));
      }
      std::fputs(tools::name_list_lines(names).c_str(), stdout);
      return 0;
    } else if (args.is("--list-benches")) {
      std::fputs(tools::name_list_lines(workloads::bmla_names()).c_str(),
                 stdout);
      return 0;
    } else if (args.is("--stats-json")) {
      stats_json = true;
    } else if (args.is("--no-fast-forward")) {
      fast_forward = false;
    } else if (args.is("--no-block-cache")) {
      block_cache = false;
    } else if (args.is("--server")) {
      for (const std::string& addr :
           tools::split_list(args.flag(), args.value())) {
        servers.push_back(addr);
      }
    } else if (args.is("--connect-timeout-ms")) {
      shard_options.connect_timeout_ms =
          static_cast<i64>(tools::parse_u64(args.flag(), args.value()));
    } else if (args.is("--request-timeout-ms")) {
      shard_options.request_timeout_ms =
          static_cast<i64>(tools::parse_u64(args.flag(), args.value()));
    } else if (args.is("--retry-budget")) {
      shard_options.retry_budget =
          tools::parse_u32(args.flag(), args.value());
    } else if (args.is("--no-failover")) {
      shard_options.failover = false;
    } else if (args.is("--chaos")) {
      try {
        shard_options.chaos = serve::parse_chaos(args.value());
      } catch (const SimError& e) {
        std::fprintf(stderr, "mlpsweep: %s\n", e.what());
        return 2;
      }
    } else if (args.is("--fleet-stats")) {
      fleet_stats = true;
    } else if (!grid.consume(args)) {
      return tools::unknown_flag(args.flag());
    }
  }

  std::vector<sim::MatrixJob> matrix = grid.expand();
  if (!fast_forward) {
    for (sim::MatrixJob& job : matrix) job.options.cfg.fast_forward = false;
  }
  if (!block_cache) {
    for (sim::MatrixJob& job : matrix) job.options.cfg.block_cache = false;
  }

  if (!servers.empty()) {
    if (fork_at > 0) {
      std::fprintf(stderr, "mlpsweep: --fork-at runs locally; it cannot be "
                           "combined with --server\n");
      return 2;
    }
    std::string names = servers[0];
    for (std::size_t i = 1; i < servers.size(); ++i) names += "," + servers[i];
    std::fprintf(stderr, "mlpsweep: %zu grid points via %zu server(s): %s\n",
                 matrix.size(), servers.size(), names.c_str());
    try {
      return run_remote(servers, matrix, stats_json, shard_options,
                        fleet_stats);
    } catch (const SimError& e) {
      std::fprintf(stderr, "mlpsweep: %s\n", e.what());
      return 1;
    }
  }

  std::fprintf(stderr, "mlpsweep: %zu grid points on %u threads\n",
               matrix.size(),
               jobs == 0 ? sim::ThreadPool::default_threads() : jobs);
  // Warm prepare cache: grid points sharing (bench, records, seed, layout)
  // reuse one assembled program / record set / DRAM image / reference.
  sim::PrepareCache cache;
  sim::ForkStats fork;
  const std::vector<sim::MatrixResult> results =
      fork_at > 0
          ? sim::run_matrix_forked(matrix, fork_at, jobs, &cache, &fork)
          : sim::run_matrix(matrix, jobs, &cache);

  int exit_code = 0;
  if (!stats_json) std::fputs(sim::sweep_csv_header().c_str(), stdout);
  for (const sim::MatrixResult& run : results) {
    const sim::SuiteOptions& o = run.job.options;
    if (!run.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s cores=%u pf=%u bus=%.2f "
                   "rows=%llu fault=%g: %s\n",
                   arch::arch_name(run.job.kind), run.job.bench.c_str(),
                   o.cfg.core.cores, o.cfg.millipede.pf_entries,
                   o.cfg.dram.bus_efficiency,
                   static_cast<unsigned long long>(o.rows),
                   o.cfg.dram.fault.bit_flip_rate, run.error.c_str());
      if (!run.diagnostic.empty()) {
        std::fprintf(stderr, "%s", run.diagnostic.c_str());
      }
      exit_code = 1;
      // Fall through: a failed point still gets its CSV row (config columns
      // + error message) so the table stays rectangular and in grid order.
    }
    if (!stats_json) std::fputs(sim::sweep_csv_row(run).c_str(), stdout);
  }
  if (stats_json) {
    // The fork footer is OPT-IN, exactly like the remote path's fleet
    // footer: without --fleet-stats the document stays byte-identical to a
    // plain (unforked) sweep's.
    if (fork_at > 0 && fleet_stats) {
      std::vector<std::string> stats_runs;
      stats_runs.reserve(results.size());
      for (const sim::MatrixResult& run : results) {
        stats_runs.push_back(sim::stats_json_run(run));
      }
      std::fputs(sim::stats_json_document(stats_runs, "fork",
                                          fork_stats_json(fork_at, fork))
                     .c_str(),
                 stdout);
    } else {
      std::fputs(sim::stats_json(results).c_str(), stdout);
    }
  }
  if (fork_at > 0) {
    std::fprintf(stderr,
                 "mlpsweep: fork-at %llu: %llu group(s), %llu point(s) "
                 "restored from warm snapshots, %llu ran in full, "
                 "%llu warmup cycles saved\n",
                 static_cast<unsigned long long>(fork_at),
                 static_cast<unsigned long long>(fork.groups),
                 static_cast<unsigned long long>(fork.forked_points),
                 static_cast<unsigned long long>(fork.unsafe_points),
                 static_cast<unsigned long long>(fork.warmup_cycles_saved));
  }
  const sim::PrepareCacheStats cs = cache.stats();
  std::fprintf(stderr,
               "mlpsweep: prepare cache %llu hits / %llu misses "
               "(%llu evictions)\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.evictions));
  return exit_code;
}
