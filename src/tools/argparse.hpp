#pragma once
// Strict flag handling shared by the command-line drivers. Two layers:
//
//  * numeric parsing helpers — a value that is not fully numeric ("0x",
//    "abc", "12 34") is a usage error that exits 2 with a message, never a
//    silent 0;
//  * ArgCursor — a uniform argv walker giving every tool the same UX
//    contract: "--flag value" and "--flag=value" are equivalent, a value
//    glued onto a boolean switch ("--ecc=1") is a usage error, a missing
//    value exits 2, and unknown flags are reported via unknown_flag()
//    (stderr, exit 2). --help goes to stdout with exit 0 and --version
//    reports the common version stamp; both are handled per tool.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mlp::tools {

/// One version stamp for the whole toolchain; every binary's --version
/// reports it so a sweep script can assert client/daemon compatibility.
inline constexpr char kVersionString[] = "0.4.0";

inline void print_version(const char* tool) {
  std::printf("%s (millipede-sim) %s\n", tool, kVersionString);
}

/// Uniform unknown-flag report: stderr + exit status 2 (returned so mains
/// can `return tools::unknown_flag(...)`).
inline int unknown_flag(const std::string& flag) {
  std::fprintf(stderr, "unknown option %s (try --help)\n", flag.c_str());
  return 2;
}

/// argv walker with uniform "--flag value" / "--flag=value" handling.
///
///   tools::ArgCursor args(argc, argv);
///   while (args.next()) {
///     if (args.is("--rows")) rows = parse_u64(args.flag(), args.value());
///     else if (args.is("--ecc")) ecc = true;
///     else return tools::unknown_flag(args.flag());
///   }
class ArgCursor {
 public:
  ArgCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Advance to the next flag; false when argv is exhausted. Exits 2 if the
  /// previous flag carried an inline "=value" that no one consumed (a value
  /// glued onto a boolean switch, e.g. "--ecc=1").
  bool next() {
    if (inline_value_ && !inline_consumed_) {
      std::fprintf(stderr, "%s does not take a value\n", flag_.c_str());
      std::exit(2);
    }
    if (++index_ >= argc_) return false;
    const std::string arg = argv_[index_];
    inline_value_ = false;
    inline_consumed_ = false;
    std::string::size_type eq = std::string::npos;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      eq = arg.find('=');
    }
    if (eq != std::string::npos) {
      flag_ = arg.substr(0, eq);
      value_ = arg.substr(eq + 1);
      inline_value_ = true;
    } else {
      flag_ = arg;
      value_.clear();
    }
    return true;
  }

  const std::string& flag() const { return flag_; }
  bool is(const char* name) const { return flag_ == name; }

  /// The flag's value: the inline "=value" or the next argv element. Exits 2
  /// when neither exists.
  std::string value() {
    if (inline_value_) {
      inline_consumed_ = true;
      return value_;
    }
    if (index_ + 1 >= argc_) {
      std::fprintf(stderr, "missing value for %s\n", flag_.c_str());
      std::exit(2);
    }
    return argv_[++index_];
  }

 private:
  int argc_;
  char** argv_;
  int index_ = 0;
  std::string flag_;
  std::string value_;
  bool inline_value_ = false;
  bool inline_consumed_ = false;
};

[[noreturn]] inline void flag_error(const std::string& flag,
                                    const std::string& text,
                                    const char* expected) {
  std::fprintf(stderr, "%s expects %s, got \"%s\"\n", flag.c_str(), expected,
               text.c_str());
  std::exit(2);
}

/// Unsigned integer; the whole string must parse. `min` rejects e.g. 0.
inline u64 parse_u64(const std::string& flag, const std::string& text,
                     u64 min = 0) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
      text[0] == '-' || value < min) {
    flag_error(flag, text,
               min > 0 ? "a positive integer" : "a non-negative integer");
  }
  return value;
}

inline u32 parse_u32(const std::string& flag, const std::string& text,
                     u32 min = 0) {
  const u64 value = parse_u64(flag, text, min);
  if (value > 0xffffffffull) flag_error(flag, text, "a 32-bit integer");
  return static_cast<u32>(value);
}

/// Strictly positive floating-point value; the whole string must parse.
inline double parse_positive_double(const std::string& flag,
                                    const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
      !(value > 0.0)) {
    flag_error(flag, text, "a positive number");
  }
  return value;
}

/// Probability in [0, 1]; the whole string must parse. 0 is allowed so a
/// sweep axis can include the fault-free baseline.
inline double parse_rate(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
      !(value >= 0.0) || value > 1.0) {
    flag_error(flag, text, "a probability in [0, 1]");
  }
  return value;
}

/// Render a name list one entry per line — the --list-arches /
/// --list-benches output contract shared by mlpsim and mlpsweep, kept
/// grep/xargs-friendly (no header, no indentation, trailing newline).
inline std::string name_list_lines(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    out += name;
    out += '\n';
  }
  return out;
}

/// Split "a,b,c" into non-empty elements; an empty element is a usage error.
inline std::vector<std::string> split_list(const std::string& flag,
                                           const std::string& text) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const std::string::size_type comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (item.empty()) flag_error(flag, text, "a comma-separated list");
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace mlp::tools
