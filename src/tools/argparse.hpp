#pragma once
// Strict numeric flag parsing shared by the command-line drivers: a value
// that is not fully numeric ("0x", "abc", "12 34") is a usage error that
// exits 2 with a message, never a silent 0.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mlp::tools {

[[noreturn]] inline void flag_error(const std::string& flag,
                                    const std::string& text,
                                    const char* expected) {
  std::fprintf(stderr, "%s expects %s, got \"%s\"\n", flag.c_str(), expected,
               text.c_str());
  std::exit(2);
}

/// Unsigned integer; the whole string must parse. `min` rejects e.g. 0.
inline u64 parse_u64(const std::string& flag, const std::string& text,
                     u64 min = 0) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
      text[0] == '-' || value < min) {
    flag_error(flag, text,
               min > 0 ? "a positive integer" : "a non-negative integer");
  }
  return value;
}

inline u32 parse_u32(const std::string& flag, const std::string& text,
                     u32 min = 0) {
  const u64 value = parse_u64(flag, text, min);
  if (value > 0xffffffffull) flag_error(flag, text, "a 32-bit integer");
  return static_cast<u32>(value);
}

/// Strictly positive floating-point value; the whole string must parse.
inline double parse_positive_double(const std::string& flag,
                                    const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
      !(value > 0.0)) {
    flag_error(flag, text, "a positive number");
  }
  return value;
}

/// Probability in [0, 1]; the whole string must parse. 0 is allowed so a
/// sweep axis can include the fault-free baseline.
inline double parse_rate(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno != 0 ||
      !(value >= 0.0) || value > 1.0) {
    flag_error(flag, text, "a probability in [0, 1]");
  }
  return value;
}

/// Split "a,b,c" into non-empty elements; an empty element is a usage error.
inline std::vector<std::string> split_list(const std::string& flag,
                                           const std::string& text) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const std::string::size_type comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (item.empty()) flag_error(flag, text, "a comma-separated list");
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace mlp::tools
