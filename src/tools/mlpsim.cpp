// mlpsim — command-line driver for the simulator: run any (architecture,
// benchmark) pair under a tweaked machine configuration and print the full
// result, optionally as CSV. Independent runs execute in parallel with
// --jobs; output order (and bytes) is identical for any job count.
//
//   mlpsim --arch millipede --bench nbayes --records 65536
//   mlpsim --arch ssmc --bench count --rows 384 --pf-entries 32 --csv
//   mlpsim --bench all --jobs 8 --csv
//   mlpsim --list

#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/snapshot.hpp"
#include "sweep_grid.hpp"

namespace {

using namespace mlp;

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return std::fclose(f) == 0 && ok;
}

void usage() {
  std::printf(R"(mlpsim — Millipede PNM simulator driver

  --arch NAME       millipede | millipede-no-flow-control |
                    millipede-no-rate-match | ssmc | gpgpu | vws | vws-row |
                    multicore                       (default millipede)
  --bench NAME      count|sample|variance|nbayes|classify|kmeans|pca|gda
                    or "all"                        (default all)
  --records N       absolute record count           (default: by volume)
  --rows N          data volume in DRAM rows        (default 192)
  --seed N          data generation seed            (default 1)
  --cores N         corelets / lanes / cores        (default 32)
  --pf-entries N    prefetch buffer entries         (default 16)
  --jobs N          concurrent simulations          (default 1)
  --no-flow-control / --no-rate-match / --record-barrier
  --bus-efficiency F  effective DRAM bus efficiency (default 0.30)
  --channels N      DRAM channels (pow2; one controller each, default 1)
  --ranks N         DRAM ranks per channel (pow2; default 1)
  --mapping SPEC    address interleave field order, msb first, of
                    row|col|bank|rank|channel joined by ':'
                    (default row:bank:col = legacy row-interleaved banks)
  --page-policy SPEC  open | closed | open:idle=N:hits=M — per-bank row
                    policy (N in DRAM cycles, M in column accesses)
  --refresh SPEC    off | on | on:trefi=N:trfc=N:postpone=K — per-rank
                    auto-refresh (cycles; K = JEDEC postponement slots)
  --fault-rate P    DRAM bit-flip probability per transferred bit
                    (deterministic per seed; default 0 = off)
  --fault-delay-rate P / --fault-drop-rate P
                    per-transfer response delay / drop probability
  --fault-seed N    fault-injection seed               (default 1)
  --ecc             SECDED(72,64): correct single-bit flips, retry on
                    detected multi-bit flips; charges 8/64 energy overhead
  --watchdog-cycles N  abort a run (as a per-run error) after N step-loop
                    iterations; 0 disables             (default 2e10)
  --watchdog-stall N   livelock trip: error out after N iterations with no
                    instruction retired and no DRAM byte transferred;
                    0 disables                         (default 2e6)
  --csv             machine-readable one-line-per-run output
  --stats           dump every counter after each run
  --stats-json      emit one JSON document (schema_version, per-run config,
                    metrics, and every registered counter) on stdout instead
                    of the human/CSV report
  --trace           capture typed events (corelet stalls, DRAM ACT/PRE/RD/WR,
                    prefetch lifecycle, freq steps, watchdog/faults) and
                    write per-run Chrome-trace JSON under the trace dir
  --trace-dir DIR   output directory for trace files  (default traces)
  --trace-ring N    bounded capture: keep only the most recent N events and
                    write them as a compact binary ring instead of JSON
  --trace-interval N  sample every registered counter (as per-interval
                    deltas) every N compute cycles into a CSV timeline
  --no-fast-forward disable the kernel's idle-cycle fast-forward and step
                    every clock edge (bit-identical results; debugging aid)
  --no-block-cache  disable the decoded-basic-block interpreter fast path
                    and re-decode every issued instruction (bit-identical
                    results; A/B equivalence checks)
  --checkpoint-at N capture a snapshot of the machine state at the first
                    quiescent cycle >= N (the run still completes; requires
                    a single --bench and --checkpoint-out)
  --checkpoint-out FILE  write the captured snapshot blob to FILE
  --restore FILE    restore the machine from a snapshot blob and run to
                    completion; the remainder is bit-identical to the
                    uninterrupted run (requires a single --bench)
  --list            list architectures and benchmarks
  --list-arches     list architectures only, one per line
  --list-benches    list benchmarks only, one per line
  --version         print the toolchain version

A failed run (bad config, watchdog trip, uncorrectable fault, verification
mismatch) is reported on stderr with its diagnostic dump; remaining runs
still execute and the exit status is nonzero.
)");
}

}  // namespace

int main(int argc, char** argv) {
  arch::ArchKind kind = arch::ArchKind::kMillipede;
  std::string bench = "all";
  bool csv = false;
  bool dump_stats = false;
  bool stats_json = false;
  u32 jobs = 1;
  u64 checkpoint_at = 0;
  std::string checkpoint_out;
  std::string restore_path;
  sim::SuiteOptions options;

  tools::ArgCursor args(argc, argv);
  while (args.next()) {
    const std::string& arg = args.flag();
    auto next = [&]() { return args.value(); };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--version") {
      tools::print_version("mlpsim");
      return 0;
    } else if (arg == "--list") {
      std::printf("architectures:");
      for (arch::ArchKind k : arch::all_arch_kinds()) {
        std::printf(" %s", arch::arch_name(k));
      }
      std::printf("\n");
      std::printf("benchmarks:");
      for (const auto& name : workloads::bmla_names()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      return 0;
    } else if (arg == "--list-arches") {
      std::vector<std::string> names;
      for (arch::ArchKind k : arch::all_arch_kinds()) {
        names.push_back(arch::arch_name(k));
      }
      std::fputs(tools::name_list_lines(names).c_str(), stdout);
      return 0;
    } else if (arg == "--list-benches") {
      std::fputs(tools::name_list_lines(workloads::bmla_names()).c_str(),
                 stdout);
      return 0;
    } else if (arg == "--arch") {
      const std::string name = next();
      if (!arch::arch_from_name(name, &kind)) {
        tools::flag_error(arg, name, "a known architecture");
      }
    } else if (arg == "--bench") {
      bench = next();
    } else if (arg == "--records") {
      options.records = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--rows") {
      options.rows = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--seed") {
      options.seed = tools::parse_u64(arg, next());
    } else if (arg == "--cores") {
      options.cfg.core.cores = tools::parse_u32(arg, next(), /*min=*/1);
      options.cfg.gpgpu.warp_width = options.cfg.core.cores;
    } else if (arg == "--pf-entries") {
      options.cfg.millipede.pf_entries =
          tools::parse_u32(arg, next(), /*min=*/1);
    } else if (arg == "--bus-efficiency") {
      options.cfg.dram.bus_efficiency =
          tools::parse_positive_double(arg, next());
    } else if (arg == "--channels") {
      options.cfg.dram.channels = tools::parse_u32(arg, next(), /*min=*/1);
    } else if (arg == "--ranks") {
      options.cfg.dram.ranks = tools::parse_u32(arg, next(), /*min=*/1);
    } else if (arg == "--mapping") {
      options.cfg.dram.mapping = tools::parse_mapping_spec(arg, next());
    } else if (arg == "--page-policy") {
      options.cfg.dram.page_policy = tools::parse_page_policy_spec(arg, next());
    } else if (arg == "--refresh") {
      options.cfg.dram.refresh = tools::parse_refresh_spec(arg, next());
    } else if (arg == "--fault-rate") {
      options.cfg.dram.fault.bit_flip_rate =
          tools::parse_rate(arg, next());
    } else if (arg == "--fault-delay-rate") {
      options.cfg.dram.fault.delay_rate = tools::parse_rate(arg, next());
    } else if (arg == "--fault-drop-rate") {
      options.cfg.dram.fault.drop_rate = tools::parse_rate(arg, next());
    } else if (arg == "--fault-seed") {
      options.cfg.dram.fault.seed = tools::parse_u64(arg, next());
    } else if (arg == "--ecc") {
      options.cfg.dram.fault.ecc = true;
    } else if (arg == "--watchdog-cycles") {
      options.cfg.watchdog.max_cycles = tools::parse_u64(arg, next());
    } else if (arg == "--watchdog-stall") {
      options.cfg.watchdog.stall_cycles = tools::parse_u64(arg, next());
    } else if (arg == "--checkpoint-at") {
      checkpoint_at = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--checkpoint-out") {
      checkpoint_out = next();
    } else if (arg == "--restore") {
      restore_path = next();
    } else if (arg == "--jobs" || arg == "-j") {
      jobs = tools::parse_u32(arg, next(), /*min=*/1);
    } else if (arg == "--no-flow-control") {
      options.cfg.millipede.flow_control = false;
      options.cfg.millipede.rate_match = false;
      kind = arch::ArchKind::kMillipedeNoFlowControl;
    } else if (arg == "--no-rate-match") {
      kind = arch::ArchKind::kMillipedeNoRateMatch;
    } else if (arg == "--record-barrier") {
      options.record_barrier = true;
    } else if (arg == "--no-fast-forward") {
      options.cfg.fast_forward = false;
    } else if (arg == "--no-block-cache") {
      options.cfg.block_cache = false;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (arg == "--trace") {
      options.trace.chrome_json = true;
    } else if (arg == "--trace-dir") {
      options.trace.dir = next();
    } else if (arg == "--trace-ring") {
      options.trace.ring_entries = tools::parse_u64(arg, next(), /*min=*/1);
    } else if (arg == "--trace-interval") {
      options.trace.interval_cycles =
          tools::parse_u64(arg, next(), /*min=*/1);
    } else {
      return tools::unknown_flag(arg);
    }
  }

  std::vector<std::string> benches;
  if (bench == "all") {
    benches = workloads::bmla_names();
  } else {
    benches.push_back(bench);
  }

  std::vector<sim::MatrixJob> matrix;
  for (const std::string& name : benches) {
    matrix.push_back({kind, name, options, /*tag=*/""});
  }

  std::vector<sim::MatrixResult> results;
  if (checkpoint_at > 0 || !restore_path.empty()) {
    if (checkpoint_at > 0 && !restore_path.empty()) {
      std::fprintf(stderr, "mlpsim: --checkpoint-at and --restore are "
                           "mutually exclusive\n");
      return 2;
    }
    if (checkpoint_at > 0 && checkpoint_out.empty()) {
      std::fprintf(stderr,
                   "mlpsim: --checkpoint-at requires --checkpoint-out FILE\n");
      return 2;
    }
    if (matrix.size() != 1) {
      std::fprintf(stderr, "mlpsim: --checkpoint-at/--restore require a "
                           "single --bench\n");
      return 2;
    }
    sim::SnapshotPlan plan;
    std::string blob;
    if (!restore_path.empty()) {
      if (!read_file(restore_path, &blob)) {
        std::fprintf(stderr, "mlpsim: cannot read snapshot %s\n",
                     restore_path.c_str());
        return 1;
      }
      plan.restore_from = &blob;
    } else {
      plan.capture = true;
      plan.checkpoint_at = checkpoint_at;
    }
    results.push_back(sim::run_job(matrix[0], nullptr, nullptr, &plan));
    if (plan.capture && results[0].ok()) {
      if (!plan.captured_ok) {
        std::fprintf(stderr,
                     "mlpsim: run finished before cycle %llu; no snapshot "
                     "captured\n",
                     static_cast<unsigned long long>(checkpoint_at));
        return 1;
      }
      if (!write_file(checkpoint_out, plan.captured)) {
        std::fprintf(stderr, "mlpsim: cannot write snapshot %s\n",
                     checkpoint_out.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "mlpsim: snapshot captured at cycle %llu (%zu bytes) "
                   "-> %s\n",
                   static_cast<unsigned long long>(plan.captured_cycle),
                   plan.captured.size(), checkpoint_out.c_str());
    }
  } else {
    if (!checkpoint_out.empty()) {
      std::fprintf(stderr, "mlpsim: --checkpoint-out requires "
                           "--checkpoint-at N\n");
      return 2;
    }
    results = sim::run_matrix(matrix, jobs);
  }

  if (csv && !stats_json) {
    std::printf("arch,bench,records,runtime_us,cycles,insts,insts_per_word,"
                "clock_mhz,core_uj,dram_uj,leak_uj,row_miss_rate,"
                "ecc_corrected,ecc_detected,fault_retries\n");
  }
  auto stat_or_zero = [](const arch::RunResult& r, const char* key) {
    const auto it = r.stats.find(key);
    return it == r.stats.end() ? u64{0} : it->second;
  };
  int exit_code = 0;
  for (const sim::MatrixResult& run : results) {
    if (!run.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(run.job.kind), run.job.bench.c_str(),
                   run.error.c_str());
      if (!run.diagnostic.empty()) {
        std::fprintf(stderr, "%s", run.diagnostic.c_str());
      }
      exit_code = 1;
      continue;
    }
    if (stats_json) continue;  // the JSON document is the whole report
    const arch::RunResult& r = run.result;
    const std::string& name = run.job.bench;
    if (csv) {
      const u64 records =
          run.job.options.records != 0
              ? run.job.options.records
              : sim::records_for(name, run.job.options.cfg,
                                 run.job.options.rows);
      std::printf("%s,%s,%llu,%.3f,%llu,%llu,%.2f,%.0f,%.3f,%.3f,%.3f,%.4f,"
                  "%llu,%llu,%llu\n",
                  r.arch.c_str(), name.c_str(),
                  static_cast<unsigned long long>(records),
                  static_cast<double>(r.runtime_ps) / 1e6,
                  static_cast<unsigned long long>(r.compute_cycles),
                  static_cast<unsigned long long>(r.thread_instructions),
                  r.insts_per_word, r.final_clock_mhz, r.energy.core_j * 1e6,
                  r.energy.dram_j * 1e6, r.energy.leak_j * 1e6,
                  r.row_miss_rate,
                  static_cast<unsigned long long>(
                      stat_or_zero(r, "dram.ecc_corrected")),
                  static_cast<unsigned long long>(
                      stat_or_zero(r, "dram.ecc_detected")),
                  static_cast<unsigned long long>(
                      stat_or_zero(r, "dram.fault_retries")));
    } else {
      std::printf(
          "%-10s %-9s verified  rt=%9.2fus  clk=%4.0fMHz  "
          "E=%8.2fuJ  ipw=%6.1f  miss=%.3f\n",
          r.arch.c_str(), name.c_str(),
          static_cast<double>(r.runtime_ps) / 1e6, r.final_clock_mhz,
          r.energy.total_j() * 1e6, r.insts_per_word, r.row_miss_rate);
    }
    if (dump_stats) {
      for (const auto& [key, value] : r.stats) {
        std::printf("    %-32s %llu\n", key.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }
  if (stats_json) {
    std::fputs(sim::stats_json(results).c_str(), stdout);
  }
  return exit_code;
}
