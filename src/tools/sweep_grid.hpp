#pragma once
// Shared configuration-grid definition for the sweep drivers (mlpsweep's
// local path, its --server remote path, and `mlpclient sweep`). One struct
// owns the axis lists, consumes the axis flags from an ArgCursor, and
// expands the cross product in ONE fixed axis order
// (arch → bench → cores → pf → bus → rows → fault → channels → ranks →
// mapping → page-policy → refresh) so every driver emits rows in the same
// deterministic grid order.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "common/error.hpp"
#include "mem/addrmap.hpp"
#include "sim/runner.hpp"

namespace mlp::tools {

inline std::vector<arch::ArchKind> parse_archs(const std::string& flag,
                                               const std::string& text) {
  if (text == "all") return arch::all_arch_kinds();
  std::vector<arch::ArchKind> kinds;
  for (const std::string& name : split_list(flag, text)) {
    arch::ArchKind kind;
    if (!arch::arch_from_name(name, &kind)) {
      flag_error(flag, name, "a known architecture");
    }
    kinds.push_back(kind);
  }
  return kinds;
}

inline std::vector<std::string> parse_benches(const std::string& flag,
                                              const std::string& text) {
  if (text == "all") return workloads::bmla_names();
  std::vector<std::string> benches = split_list(flag, text);
  const std::vector<std::string>& known = workloads::bmla_names();
  for (const std::string& bench : benches) {
    if (std::find(known.begin(), known.end(), bench) == known.end()) {
      flag_error(flag, bench, "a known benchmark");
    }
  }
  return benches;
}

/// Eager command-line validation of the DRAM spec strings: a typo exits 2
/// at parse time instead of failing every grid point. Grammar only for the
/// mapping — zero-width-field checks need the per-point channel/rank/bank
/// geometry and stay per-point SimErrors.
inline std::string parse_mapping_spec(const std::string& flag,
                                      const std::string& text) {
  try {
    mem::AddressMap::check_grammar(text);
  } catch (const SimError&) {
    flag_error(flag, text, "a field list like row:rank:bank:channel:col");
  }
  return text;
}

inline std::string parse_page_policy_spec(const std::string& flag,
                                          const std::string& text) {
  try {
    (void)parse_page_policy(text);
  } catch (const SimError&) {
    flag_error(flag, text, "open, closed, or open:idle=N:hits=M");
  }
  return text;
}

inline std::string parse_refresh_spec(const std::string& flag,
                                      const std::string& text) {
  try {
    (void)parse_refresh(text);
  } catch (const SimError&) {
    flag_error(flag, text, "off, on, or on:trefi=N:trfc=N:postpone=K");
  }
  return text;
}

struct SweepGrid {
  // Axes (each defaults to one paper-default point).
  std::vector<arch::ArchKind> archs = {arch::ArchKind::kMillipede};
  std::vector<std::string> benches = workloads::bmla_names();
  std::vector<u32> cores = {32};
  std::vector<u32> pf_entries = {16};
  std::vector<double> bus_efficiencies = {0.30};
  std::vector<u64> rows = {sim::kDefaultRows};
  std::vector<double> fault_rates = {0.0};
  std::vector<u32> channels = {1};
  std::vector<u32> ranks = {1};
  std::vector<std::string> mappings = {"row:bank:col"};
  std::vector<std::string> page_policies = {"open"};
  std::vector<std::string> refreshes = {"off"};

  // Scalars applied to every point.
  u64 records = 0;
  u64 seed = 1;
  bool ecc = false;
  u64 fault_seed = 1;
  WatchdogConfig watchdog;
  trace::TraceConfig trace_cfg;

  /// Usage text for the flags consume() understands (grid axes + scalars).
  static const char* help() {
    return
        "Grid axes (comma-separated lists; each defaults to one point):\n"
        "  --arch LIST|all       architectures            (default millipede)\n"
        "  --bench LIST|all      benchmarks               (default all)\n"
        "  --cores LIST          corelets / lanes / cores (default 32)\n"
        "  --pf-entries LIST     prefetch buffer entries  (default 16)\n"
        "  --bus-efficiency LIST effective bus efficiency (default 0.30)\n"
        "  --rows LIST           data volume in DRAM rows (default 192)\n"
        "  --fault-rate LIST     DRAM bit-flip probability per transferred\n"
        "                        bit (default 0 = off)\n"
        "  --channels LIST       DRAM channels, pow2       (default 1)\n"
        "  --ranks LIST          DRAM ranks per channel    (default 1)\n"
        "  --mapping LIST        address interleave field order, msb first\n"
        "                        (default row:bank:col; e.g.\n"
        "                        row:rank:bank:channel:col)\n"
        "  --page-policy LIST    open | closed | open:idle=N:hits=M\n"
        "                        (cycles / column accesses; default open)\n"
        "  --refresh LIST        off | on | on:trefi=N:trfc=N:postpone=K\n"
        "                        (cycles / slots; default off)\n"
        "\n"
        "Point scalars:\n"
        "  --records N           absolute record count (overrides --rows)\n"
        "  --seed N              data generation seed     (default 1)\n"
        "  --ecc                 SECDED(72,64) correction + retry on detect\n"
        "  --fault-seed N        fault-injection seed     (default 1)\n"
        "  --watchdog-cycles N / --watchdog-stall N\n"
        "                        forward-progress watchdog limits (0 = off)\n"
        "  --trace               per-point Chrome-trace JSON\n"
        "  --trace-dir DIR       trace output directory   (default traces)\n"
        "  --trace-ring N        bounded binary-ring capture (N events)\n"
        "  --trace-interval N    interval-sampled counter timeline CSV\n";
  }

  /// Try to consume the current ArgCursor flag as a grid/scalar flag;
  /// returns false (cursor untouched) when the flag is not one of ours.
  bool consume(ArgCursor& args) {
    const std::string& arg = args.flag();
    if (args.is("--arch")) {
      archs = parse_archs(arg, args.value());
    } else if (args.is("--bench")) {
      benches = parse_benches(arg, args.value());
    } else if (args.is("--cores")) {
      cores.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        cores.push_back(parse_u32(arg, item, /*min=*/1));
      }
    } else if (args.is("--pf-entries")) {
      pf_entries.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        pf_entries.push_back(parse_u32(arg, item, /*min=*/1));
      }
    } else if (args.is("--bus-efficiency")) {
      bus_efficiencies.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        bus_efficiencies.push_back(parse_positive_double(arg, item));
      }
    } else if (args.is("--rows")) {
      rows.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        rows.push_back(parse_u64(arg, item, /*min=*/1));
      }
    } else if (args.is("--fault-rate")) {
      fault_rates.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        fault_rates.push_back(parse_rate(arg, item));
      }
    } else if (args.is("--channels")) {
      channels.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        channels.push_back(parse_u32(arg, item, /*min=*/1));
      }
    } else if (args.is("--ranks")) {
      ranks.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        ranks.push_back(parse_u32(arg, item, /*min=*/1));
      }
    } else if (args.is("--mapping")) {
      mappings.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        mappings.push_back(parse_mapping_spec(arg, item));
      }
    } else if (args.is("--page-policy")) {
      page_policies.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        page_policies.push_back(parse_page_policy_spec(arg, item));
      }
    } else if (args.is("--refresh")) {
      refreshes.clear();
      for (const std::string& item : split_list(arg, args.value())) {
        refreshes.push_back(parse_refresh_spec(arg, item));
      }
    } else if (args.is("--records")) {
      records = parse_u64(arg, args.value(), /*min=*/1);
    } else if (args.is("--seed")) {
      seed = parse_u64(arg, args.value());
    } else if (args.is("--ecc")) {
      ecc = true;
    } else if (args.is("--fault-seed")) {
      fault_seed = parse_u64(arg, args.value());
    } else if (args.is("--watchdog-cycles")) {
      watchdog.max_cycles = parse_u64(arg, args.value());
    } else if (args.is("--watchdog-stall")) {
      watchdog.stall_cycles = parse_u64(arg, args.value());
    } else if (args.is("--trace")) {
      trace_cfg.chrome_json = true;
    } else if (args.is("--trace-dir")) {
      trace_cfg.dir = args.value();
    } else if (args.is("--trace-ring")) {
      trace_cfg.ring_entries = parse_u64(arg, args.value(), /*min=*/1);
    } else if (args.is("--trace-interval")) {
      trace_cfg.interval_cycles = parse_u64(arg, args.value(), /*min=*/1);
    } else {
      return false;
    }
    return true;
  }

  /// Expand the cross product in the fixed axis order.
  std::vector<sim::MatrixJob> expand() const {
    std::vector<sim::MatrixJob> matrix;
    for (const arch::ArchKind kind : archs) {
      for (const std::string& bench : benches) {
        for (const u32 core_count : cores) {
          for (const u32 entries : pf_entries) {
            for (const double bus_eff : bus_efficiencies) {
              for (const u64 row_count : rows) {
                for (const double fault_rate : fault_rates) {
                  for (const u32 channel_count : channels) {
                  for (const u32 rank_count : ranks) {
                  for (const std::string& mapping : mappings) {
                  for (const std::string& page_policy : page_policies) {
                  for (const std::string& refresh : refreshes) {
                  sim::SuiteOptions options;
                  options.records = records;
                  options.rows = row_count;
                  options.seed = seed;
                  options.cfg.core.cores = core_count;
                  options.cfg.gpgpu.warp_width = core_count;
                  options.cfg.millipede.pf_entries = entries;
                  options.cfg.dram.bus_efficiency = bus_eff;
                  options.cfg.dram.fault.bit_flip_rate = fault_rate;
                  options.cfg.dram.fault.ecc = ecc;
                  options.cfg.dram.fault.seed = fault_seed;
                  options.cfg.dram.channels = channel_count;
                  options.cfg.dram.ranks = rank_count;
                  options.cfg.dram.mapping = mapping;
                  options.cfg.dram.page_policy = page_policy;
                  options.cfg.dram.refresh = refresh;
                  options.cfg.watchdog = watchdog;
                  options.trace = trace_cfg;
                  // Tracing needs a unique per-point file stem: encode the
                  // grid coordinates into the job tag. The DRAM axes join
                  // the stem only when swept (>1 point), keeping legacy
                  // single-point trace names stable.
                  std::string tag;
                  if (trace_cfg.enabled()) {
                    char buf[96];
                    std::snprintf(buf, sizeof(buf),
                                  "c%u-pf%u-bus%.3f-r%llu-f%g", core_count,
                                  entries, bus_eff,
                                  static_cast<unsigned long long>(row_count),
                                  fault_rate);
                    tag = buf;
                    if (channels.size() > 1 || ranks.size() > 1 ||
                        mappings.size() > 1 || page_policies.size() > 1 ||
                        refreshes.size() > 1) {
                      std::snprintf(buf, sizeof(buf), "-ch%u-rk%u-%s-%s-%s",
                                    channel_count, rank_count, mapping.c_str(),
                                    page_policy.c_str(), refresh.c_str());
                      std::string dram_part = buf;
                      // ':' and '=' are awkward in file stems.
                      for (char& ch : dram_part) {
                        if (ch == ':' || ch == '=') ch = '.';
                      }
                      tag += dram_part;
                    }
                  }
                  matrix.push_back({kind, bench, options, tag});
                  }
                  }
                  }
                  }
                  }
                }
              }
            }
          }
        }
      }
    }
    return matrix;
  }
};

}  // namespace mlp::tools
