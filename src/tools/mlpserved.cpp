// mlpserved — persistent simulation service. Listens on a Unix-domain
// socket, executes submitted (architecture, benchmark, config) jobs on an
// in-process thread pool, and keeps preparation artifacts (assembled
// kernels, generated record sets, initial DRAM images, golden references)
// warm in an LRU cache across jobs — repeated sweeps skip preparation
// entirely. Submissions beyond the admission bound are rejected with a
// typed queue-full error; SIGTERM/SIGINT drain gracefully (in-flight jobs
// finish under their per-job watchdog).
//
//   mlpserved --socket /tmp/mlp.sock --threads 8 &
//   mlpclient --socket /tmp/mlp.sock run --arch millipede --bench count

#include <signal.h>

#include <cstdio>
#include <string>

#include "argparse.hpp"
#include "serve/server.hpp"

namespace {

using namespace mlp;

void usage() {
  std::printf(R"(mlpserved — persistent simulation service

  --socket PATH      Unix-domain socket to listen on
  --listen HOST:PORT TCP address to listen on (port 0 = ephemeral; the
                     bound port is printed on stderr). May be combined
                     with --socket; at least one endpoint is required
  --threads N        simulation worker threads (default: all hw threads)
  --queue-limit N    max jobs queued or running at once; further submits
                     are rejected with a typed queue-full error
                     (default 64)
  --cache-entries N  warm prepare-cache capacity, LRU-evicted (default 64)
  --snapshot-entries N  snapshot-blob cache capacity for the protocol v2
                     snapshot/restore verbs, LRU-evicted (default 16).
                     Blobs never cross the wire; a restore of an evicted
                     key is a typed no-such-snapshot error
  --job-timeout-ms N wall-clock budget per job; a job still running after
                     N ms is cancelled by its watchdog and reports a typed
                     job-timeout error (default 0 = unlimited). Catches
                     hangs the cycle watchdog cannot see
  --version          print the toolchain version

Protocol: length-prefixed JSON frames; requests ping / submit / status /
result / cancel / shutdown, plus the version-gated snapshot / restore verbs
(see docs/ARCHITECTURE.md). SIGTERM and SIGINT
drain: queued and running jobs complete, their results stay fetchable
until the last connection closes, then the daemon exits.
)");
}

serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeConfig cfg;

  tools::ArgCursor args(argc, argv);
  while (args.next()) {
    if (args.is("--help") || args.is("-h")) {
      usage();
      return 0;
    } else if (args.is("--version")) {
      tools::print_version("mlpserved");
      return 0;
    } else if (args.is("--socket")) {
      cfg.socket_path = args.value();
    } else if (args.is("--listen")) {
      cfg.listen_address = args.value();
    } else if (args.is("--threads")) {
      cfg.threads = tools::parse_u32(args.flag(), args.value(), /*min=*/1);
    } else if (args.is("--queue-limit")) {
      cfg.queue_limit = tools::parse_u64(args.flag(), args.value(), /*min=*/1);
    } else if (args.is("--cache-entries")) {
      cfg.cache_entries = tools::parse_u64(args.flag(), args.value(),
                                           /*min=*/1);
    } else if (args.is("--snapshot-entries")) {
      cfg.snapshot_entries = tools::parse_u64(args.flag(), args.value(),
                                              /*min=*/1);
    } else if (args.is("--job-timeout-ms")) {
      cfg.job_timeout_ms = tools::parse_u64(args.flag(), args.value(),
                                            /*min=*/0);
    } else {
      return tools::unknown_flag(args.flag());
    }
  }
  if (cfg.socket_path.empty() && cfg.listen_address.empty()) {
    std::fprintf(stderr,
                 "mlpserved: --socket PATH or --listen HOST:PORT is "
                 "required\n");
    return 2;
  }

  serve::Server server(cfg);
  try {
    server.listen();
  } catch (const SimError& e) {
    std::fprintf(stderr, "mlpserved: %s\n", e.what());
    return 1;
  }

  g_server = &server;
  struct sigaction sa {};
  sa.sa_handler = handle_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dropped clients must not kill the daemon

  if (!cfg.socket_path.empty()) {
    std::fprintf(stderr, "mlpserved: listening on %s\n",
                 cfg.socket_path.c_str());
  }
  if (!cfg.listen_address.empty()) {
    std::fprintf(stderr, "mlpserved: listening on %s\n",
                 server.tcp_address().c_str());
  }
  server.run();
  const serve::ServerStatus final = server.status();
  std::fprintf(stderr,
               "mlpserved: drained (%llu done, %llu cancelled; cache %llu "
               "hits / %llu misses)\n",
               static_cast<unsigned long long>(final.done),
               static_cast<unsigned long long>(final.cancelled),
               static_cast<unsigned long long>(final.cache.hits),
               static_cast<unsigned long long>(final.cache.misses));
  return 0;
}
