#include "core/functional.hpp"

#include <cmath>
#include <cstring>

namespace mlp::core {
namespace {

float as_f(u32 bits) {
  float value;
  std::memcpy(&value, &bits, 4);
  return value;
}

u32 as_u(float value) {
  u32 bits;
  std::memcpy(&bits, &value, 4);
  return bits;
}

// ---- Predecoded dispatch handlers ----------------------------------------
// One function per opcode, mirroring step()'s switch arms exactly. The
// operand prologue (a/b/sa/sb) matches step()'s so the expressions below can
// be byte-for-byte copies of the switch cases; handlers return the
// fall-through/jump next pc and leave branch-target arithmetic to
// step_decoded()'s shared epilogue.

#define MLP_STEP_ARGS                                                     \
  [[maybe_unused]] const DecodedInstr& de, [[maybe_unused]] Context& ctx, \
      [[maybe_unused]] mem::LocalStore& local,                            \
      [[maybe_unused]] mem::DramImage& dram,                              \
      [[maybe_unused]] StepResult& result

#define MLP_REG_OP(name, expr)                           \
  u32 name(MLP_STEP_ARGS) {                              \
    const isa::Instr& in = de.instr;                     \
    [[maybe_unused]] const u32 a = ctx.reg(in.rs1);      \
    [[maybe_unused]] const u32 b = ctx.reg(in.rs2);      \
    [[maybe_unused]] const i32 sa = static_cast<i32>(a); \
    [[maybe_unused]] const i32 sb = static_cast<i32>(b); \
    ctx.set_reg(in.rd, (expr));                          \
    return ctx.pc + 1;                                   \
  }

#define MLP_BRANCH_OP(name, expr)                        \
  u32 name(MLP_STEP_ARGS) {                              \
    const isa::Instr& in = de.instr;                     \
    [[maybe_unused]] const u32 a = ctx.reg(in.rs1);      \
    [[maybe_unused]] const u32 b = ctx.reg(in.rs2);      \
    [[maybe_unused]] const i32 sa = static_cast<i32>(a); \
    [[maybe_unused]] const i32 sb = static_cast<i32>(b); \
    result.branch_taken = (expr);                        \
    return ctx.pc + 1;                                   \
  }

MLP_REG_OP(fn_add, a + b)
MLP_REG_OP(fn_sub, a - b)
MLP_REG_OP(fn_mul, a * b)
MLP_REG_OP(fn_mulh,
           static_cast<u32>((static_cast<i64>(sa) * sb) >> 32))
MLP_REG_OP(fn_div, sb == 0 ? 0xffffffffu : static_cast<u32>(sa / sb))
MLP_REG_OP(fn_rem, sb == 0 ? a : static_cast<u32>(sa % sb))
MLP_REG_OP(fn_and, a & b)
MLP_REG_OP(fn_or, a | b)
MLP_REG_OP(fn_xor, a ^ b)
MLP_REG_OP(fn_sll, a << (b & 31))
MLP_REG_OP(fn_srl, a >> (b & 31))
MLP_REG_OP(fn_sra, static_cast<u32>(sa >> (b & 31)))
MLP_REG_OP(fn_slt, sa < sb ? 1 : 0)
MLP_REG_OP(fn_sltu, a < b ? 1 : 0)

MLP_REG_OP(fn_fadd, as_u(as_f(a) + as_f(b)))
MLP_REG_OP(fn_fsub, as_u(as_f(a) - as_f(b)))
MLP_REG_OP(fn_fmul, as_u(as_f(a) * as_f(b)))
MLP_REG_OP(fn_fdiv, as_u(as_f(a) / as_f(b)))
MLP_REG_OP(fn_fmin, as_u(std::fmin(as_f(a), as_f(b))))
MLP_REG_OP(fn_fmax, as_u(std::fmax(as_f(a), as_f(b))))
MLP_REG_OP(fn_flt, as_f(a) < as_f(b) ? 1 : 0)
MLP_REG_OP(fn_fle, as_f(a) <= as_f(b) ? 1 : 0)
MLP_REG_OP(fn_feq, as_f(a) == as_f(b) ? 1 : 0)
MLP_REG_OP(fn_fsqrt, as_u(std::sqrt(as_f(a))))
MLP_REG_OP(fn_fabs, as_u(std::fabs(as_f(a))))
MLP_REG_OP(fn_fneg, as_u(-as_f(a)))
MLP_REG_OP(fn_fcvtws, static_cast<u32>(static_cast<i32>(as_f(a))))
MLP_REG_OP(fn_fcvtsw, as_u(static_cast<float>(sa)))

MLP_REG_OP(fn_addi, a + static_cast<u32>(in.imm))
MLP_REG_OP(fn_andi, a & static_cast<u32>(in.imm))
MLP_REG_OP(fn_ori, a | static_cast<u32>(in.imm))
MLP_REG_OP(fn_xori, a ^ static_cast<u32>(in.imm))
MLP_REG_OP(fn_slli, a << (in.imm & 31))
MLP_REG_OP(fn_srli, a >> (in.imm & 31))
MLP_REG_OP(fn_srai, static_cast<u32>(sa >> (in.imm & 31)))
MLP_REG_OP(fn_slti, sa < in.imm ? 1 : 0)
MLP_REG_OP(fn_lui, static_cast<u32>(in.imm) << 13)

u32 fn_lw(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  result.mem_addr = global_addr(ctx, in);
  ctx.set_reg(in.rd, dram.read_u32(result.mem_addr));
  return ctx.pc + 1;
}
u32 fn_sw(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  result.mem_addr = global_addr(ctx, in);
  dram.write_u32(result.mem_addr, ctx.reg(in.rs2));
  return ctx.pc + 1;
}
u32 fn_lwl(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  ctx.set_reg(in.rd, local.load(ctx.reg(in.rs1) + static_cast<u32>(in.imm)));
  return ctx.pc + 1;
}
u32 fn_swl(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  local.store(ctx.reg(in.rs1) + static_cast<u32>(in.imm), ctx.reg(in.rs2));
  return ctx.pc + 1;
}
u32 fn_amoaddl(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  ctx.set_reg(in.rd, local.amoadd(ctx.reg(in.rs1) + static_cast<u32>(in.imm),
                                  ctx.reg(in.rs2)));
  return ctx.pc + 1;
}
u32 fn_famoaddl(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  ctx.set_reg(in.rd, local.famoadd(ctx.reg(in.rs1) + static_cast<u32>(in.imm),
                                   ctx.reg(in.rs2)));
  return ctx.pc + 1;
}

MLP_BRANCH_OP(fn_beq, a == b)
MLP_BRANCH_OP(fn_bne, a != b)
MLP_BRANCH_OP(fn_blt, sa < sb)
MLP_BRANCH_OP(fn_bge, sa >= sb)
MLP_BRANCH_OP(fn_bltu, a < b)
MLP_BRANCH_OP(fn_bgeu, a >= b)

u32 fn_jal(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  ctx.set_reg(in.rd, ctx.pc + 1);
  return static_cast<u32>(static_cast<i32>(ctx.pc) + in.imm);
}
u32 fn_jalr(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  const u32 target = ctx.reg(in.rs1) + static_cast<u32>(in.imm);
  ctx.set_reg(in.rd, ctx.pc + 1);
  return target;
}
u32 fn_csrr(MLP_STEP_ARGS) {
  const isa::Instr& in = de.instr;
  ctx.set_reg(in.rd, ctx.csr.values[static_cast<u32>(in.imm)]);
  return ctx.pc + 1;
}
u32 fn_halt(MLP_STEP_ARGS) {
  ctx.state = Context::State::kHalted;
  return ctx.pc;
}
u32 fn_bar(MLP_STEP_ARGS) {
  return ctx.pc + 1;  // synchronization is the timing model's job
}

#undef MLP_BRANCH_OP
#undef MLP_REG_OP
#undef MLP_STEP_ARGS

}  // namespace

StepKind classify(const isa::Instr& in) {
  using isa::Opcode;
  const isa::OpInfo& info = isa::op_info(in.op);
  if (in.op == Opcode::kHalt) return StepKind::kHalt;
  if (in.op == Opcode::kBar) return StepKind::kBarrier;
  if (info.is_branch) return StepKind::kBranch;
  if (info.is_jump) return StepKind::kJump;
  if (info.is_local_mem) return StepKind::kLocal;
  if (info.is_global_mem) {
    return info.is_load ? StepKind::kGlobalLoad : StepKind::kGlobalStore;
  }
  if (in.op == Opcode::kCsrr) return StepKind::kCsr;
  if (info.is_float) return StepKind::kFloat;
  return StepKind::kAlu;
}

Addr global_addr(const Context& ctx, const isa::Instr& in) {
  return static_cast<Addr>(
      static_cast<i64>(ctx.reg(in.rs1)) + in.imm);
}

StepResult step(Context& ctx, const isa::Program& program,
                mem::LocalStore& local, mem::DramImage& dram) {
  using isa::Opcode;
  const isa::Instr& in = program.at(ctx.pc);
  StepResult result;
  result.kind = classify(in);
  ++ctx.instret;

  const u32 a = ctx.reg(in.rs1);
  const u32 b = ctx.reg(in.rs2);
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  u32 next_pc = ctx.pc + 1;

  switch (in.op) {
    case Opcode::kAdd: ctx.set_reg(in.rd, a + b); break;
    case Opcode::kSub: ctx.set_reg(in.rd, a - b); break;
    case Opcode::kMul: ctx.set_reg(in.rd, a * b); break;
    case Opcode::kMulh:
      ctx.set_reg(in.rd, static_cast<u32>(
                             (static_cast<i64>(sa) * sb) >> 32));
      break;
    case Opcode::kDiv:
      ctx.set_reg(in.rd, sb == 0 ? 0xffffffffu
                                 : static_cast<u32>(sa / sb));
      break;
    case Opcode::kRem:
      ctx.set_reg(in.rd, sb == 0 ? a : static_cast<u32>(sa % sb));
      break;
    case Opcode::kAnd: ctx.set_reg(in.rd, a & b); break;
    case Opcode::kOr: ctx.set_reg(in.rd, a | b); break;
    case Opcode::kXor: ctx.set_reg(in.rd, a ^ b); break;
    case Opcode::kSll: ctx.set_reg(in.rd, a << (b & 31)); break;
    case Opcode::kSrl: ctx.set_reg(in.rd, a >> (b & 31)); break;
    case Opcode::kSra: ctx.set_reg(in.rd, static_cast<u32>(sa >> (b & 31))); break;
    case Opcode::kSlt: ctx.set_reg(in.rd, sa < sb ? 1 : 0); break;
    case Opcode::kSltu: ctx.set_reg(in.rd, a < b ? 1 : 0); break;

    case Opcode::kFadd: ctx.set_reg(in.rd, as_u(as_f(a) + as_f(b))); break;
    case Opcode::kFsub: ctx.set_reg(in.rd, as_u(as_f(a) - as_f(b))); break;
    case Opcode::kFmul: ctx.set_reg(in.rd, as_u(as_f(a) * as_f(b))); break;
    case Opcode::kFdiv: ctx.set_reg(in.rd, as_u(as_f(a) / as_f(b))); break;
    case Opcode::kFmin: ctx.set_reg(in.rd, as_u(std::fmin(as_f(a), as_f(b)))); break;
    case Opcode::kFmax: ctx.set_reg(in.rd, as_u(std::fmax(as_f(a), as_f(b)))); break;
    case Opcode::kFlt: ctx.set_reg(in.rd, as_f(a) < as_f(b) ? 1 : 0); break;
    case Opcode::kFle: ctx.set_reg(in.rd, as_f(a) <= as_f(b) ? 1 : 0); break;
    case Opcode::kFeq: ctx.set_reg(in.rd, as_f(a) == as_f(b) ? 1 : 0); break;
    case Opcode::kFsqrt: ctx.set_reg(in.rd, as_u(std::sqrt(as_f(a)))); break;
    case Opcode::kFabs: ctx.set_reg(in.rd, as_u(std::fabs(as_f(a)))); break;
    case Opcode::kFneg: ctx.set_reg(in.rd, as_u(-as_f(a))); break;
    case Opcode::kFcvtWs:
      ctx.set_reg(in.rd, static_cast<u32>(static_cast<i32>(as_f(a))));
      break;
    case Opcode::kFcvtSw:
      ctx.set_reg(in.rd, as_u(static_cast<float>(sa)));
      break;

    case Opcode::kAddi: ctx.set_reg(in.rd, a + static_cast<u32>(in.imm)); break;
    case Opcode::kAndi: ctx.set_reg(in.rd, a & static_cast<u32>(in.imm)); break;
    case Opcode::kOri: ctx.set_reg(in.rd, a | static_cast<u32>(in.imm)); break;
    case Opcode::kXori: ctx.set_reg(in.rd, a ^ static_cast<u32>(in.imm)); break;
    case Opcode::kSlli: ctx.set_reg(in.rd, a << (in.imm & 31)); break;
    case Opcode::kSrli: ctx.set_reg(in.rd, a >> (in.imm & 31)); break;
    case Opcode::kSrai:
      ctx.set_reg(in.rd, static_cast<u32>(sa >> (in.imm & 31)));
      break;
    case Opcode::kSlti: ctx.set_reg(in.rd, sa < in.imm ? 1 : 0); break;
    case Opcode::kLui:
      ctx.set_reg(in.rd, static_cast<u32>(in.imm) << 13);
      break;

    case Opcode::kLw: {
      result.mem_addr = global_addr(ctx, in);
      ctx.set_reg(in.rd, dram.read_u32(result.mem_addr));
      break;
    }
    case Opcode::kSw: {
      result.mem_addr = global_addr(ctx, in);
      dram.write_u32(result.mem_addr, b);
      break;
    }
    case Opcode::kLwl:
      ctx.set_reg(in.rd, local.load(a + static_cast<u32>(in.imm)));
      break;
    case Opcode::kSwl:
      local.store(a + static_cast<u32>(in.imm), b);
      break;
    case Opcode::kAmoaddl:
      ctx.set_reg(in.rd, local.amoadd(a + static_cast<u32>(in.imm), b));
      break;
    case Opcode::kFamoaddl:
      ctx.set_reg(in.rd, local.famoadd(a + static_cast<u32>(in.imm), b));
      break;

    case Opcode::kBeq: result.branch_taken = a == b; break;
    case Opcode::kBne: result.branch_taken = a != b; break;
    case Opcode::kBlt: result.branch_taken = sa < sb; break;
    case Opcode::kBge: result.branch_taken = sa >= sb; break;
    case Opcode::kBltu: result.branch_taken = a < b; break;
    case Opcode::kBgeu: result.branch_taken = a >= b; break;

    case Opcode::kJal:
      ctx.set_reg(in.rd, ctx.pc + 1);
      next_pc = static_cast<u32>(static_cast<i32>(ctx.pc) + in.imm);
      break;
    case Opcode::kJalr: {
      const u32 target = a + static_cast<u32>(in.imm);
      ctx.set_reg(in.rd, ctx.pc + 1);
      next_pc = target;
      break;
    }

    case Opcode::kCsrr:
      ctx.set_reg(in.rd, ctx.csr.values[static_cast<u32>(in.imm)]);
      break;
    case Opcode::kHalt:
      ctx.state = Context::State::kHalted;
      next_pc = ctx.pc;
      break;
    case Opcode::kBar:
      break;  // synchronization is the timing model's job
    case Opcode::kCount_:
      MLP_CHECK(false, "invalid opcode");
  }

  if (result.branch_taken) {
    next_pc = static_cast<u32>(static_cast<i32>(ctx.pc) + in.imm);
  }
  if (ctx.state != Context::State::kHalted) ctx.pc = next_pc;
  return result;
}

StepFn step_fn_for(isa::Opcode op) {
  using isa::Opcode;
  switch (op) {
    case Opcode::kAdd: return fn_add;
    case Opcode::kSub: return fn_sub;
    case Opcode::kMul: return fn_mul;
    case Opcode::kMulh: return fn_mulh;
    case Opcode::kDiv: return fn_div;
    case Opcode::kRem: return fn_rem;
    case Opcode::kAnd: return fn_and;
    case Opcode::kOr: return fn_or;
    case Opcode::kXor: return fn_xor;
    case Opcode::kSll: return fn_sll;
    case Opcode::kSrl: return fn_srl;
    case Opcode::kSra: return fn_sra;
    case Opcode::kSlt: return fn_slt;
    case Opcode::kSltu: return fn_sltu;
    case Opcode::kFadd: return fn_fadd;
    case Opcode::kFsub: return fn_fsub;
    case Opcode::kFmul: return fn_fmul;
    case Opcode::kFdiv: return fn_fdiv;
    case Opcode::kFmin: return fn_fmin;
    case Opcode::kFmax: return fn_fmax;
    case Opcode::kFlt: return fn_flt;
    case Opcode::kFle: return fn_fle;
    case Opcode::kFeq: return fn_feq;
    case Opcode::kFsqrt: return fn_fsqrt;
    case Opcode::kFabs: return fn_fabs;
    case Opcode::kFneg: return fn_fneg;
    case Opcode::kFcvtWs: return fn_fcvtws;
    case Opcode::kFcvtSw: return fn_fcvtsw;
    case Opcode::kAddi: return fn_addi;
    case Opcode::kAndi: return fn_andi;
    case Opcode::kOri: return fn_ori;
    case Opcode::kXori: return fn_xori;
    case Opcode::kSlli: return fn_slli;
    case Opcode::kSrli: return fn_srli;
    case Opcode::kSrai: return fn_srai;
    case Opcode::kSlti: return fn_slti;
    case Opcode::kLui: return fn_lui;
    case Opcode::kLw: return fn_lw;
    case Opcode::kSw: return fn_sw;
    case Opcode::kLwl: return fn_lwl;
    case Opcode::kSwl: return fn_swl;
    case Opcode::kAmoaddl: return fn_amoaddl;
    case Opcode::kFamoaddl: return fn_famoaddl;
    case Opcode::kBeq: return fn_beq;
    case Opcode::kBne: return fn_bne;
    case Opcode::kBlt: return fn_blt;
    case Opcode::kBge: return fn_bge;
    case Opcode::kBltu: return fn_bltu;
    case Opcode::kBgeu: return fn_bgeu;
    case Opcode::kJal: return fn_jal;
    case Opcode::kJalr: return fn_jalr;
    case Opcode::kCsrr: return fn_csrr;
    case Opcode::kHalt: return fn_halt;
    case Opcode::kBar: return fn_bar;
    case Opcode::kCount_: break;
  }
  MLP_CHECK(false, "invalid opcode");
  return nullptr;
}

}  // namespace mlp::core
