#include "core/functional.hpp"

#include <cmath>
#include <cstring>

namespace mlp::core {
namespace {

float as_f(u32 bits) {
  float value;
  std::memcpy(&value, &bits, 4);
  return value;
}

u32 as_u(float value) {
  u32 bits;
  std::memcpy(&bits, &value, 4);
  return bits;
}

}  // namespace

StepKind classify(const isa::Instr& in) {
  using isa::Opcode;
  const isa::OpInfo& info = isa::op_info(in.op);
  if (in.op == Opcode::kHalt) return StepKind::kHalt;
  if (in.op == Opcode::kBar) return StepKind::kBarrier;
  if (info.is_branch) return StepKind::kBranch;
  if (info.is_jump) return StepKind::kJump;
  if (info.is_local_mem) return StepKind::kLocal;
  if (info.is_global_mem) {
    return info.is_load ? StepKind::kGlobalLoad : StepKind::kGlobalStore;
  }
  if (in.op == Opcode::kCsrr) return StepKind::kCsr;
  if (info.is_float) return StepKind::kFloat;
  return StepKind::kAlu;
}

Addr global_addr(const Context& ctx, const isa::Instr& in) {
  return static_cast<Addr>(
      static_cast<i64>(ctx.reg(in.rs1)) + in.imm);
}

StepResult step(Context& ctx, const isa::Program& program,
                mem::LocalStore& local, mem::DramImage& dram) {
  using isa::Opcode;
  const isa::Instr& in = program.at(ctx.pc);
  StepResult result;
  result.kind = classify(in);
  ++ctx.instret;

  const u32 a = ctx.reg(in.rs1);
  const u32 b = ctx.reg(in.rs2);
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  u32 next_pc = ctx.pc + 1;

  switch (in.op) {
    case Opcode::kAdd: ctx.set_reg(in.rd, a + b); break;
    case Opcode::kSub: ctx.set_reg(in.rd, a - b); break;
    case Opcode::kMul: ctx.set_reg(in.rd, a * b); break;
    case Opcode::kMulh:
      ctx.set_reg(in.rd, static_cast<u32>(
                             (static_cast<i64>(sa) * sb) >> 32));
      break;
    case Opcode::kDiv:
      ctx.set_reg(in.rd, sb == 0 ? 0xffffffffu
                                 : static_cast<u32>(sa / sb));
      break;
    case Opcode::kRem:
      ctx.set_reg(in.rd, sb == 0 ? a : static_cast<u32>(sa % sb));
      break;
    case Opcode::kAnd: ctx.set_reg(in.rd, a & b); break;
    case Opcode::kOr: ctx.set_reg(in.rd, a | b); break;
    case Opcode::kXor: ctx.set_reg(in.rd, a ^ b); break;
    case Opcode::kSll: ctx.set_reg(in.rd, a << (b & 31)); break;
    case Opcode::kSrl: ctx.set_reg(in.rd, a >> (b & 31)); break;
    case Opcode::kSra: ctx.set_reg(in.rd, static_cast<u32>(sa >> (b & 31))); break;
    case Opcode::kSlt: ctx.set_reg(in.rd, sa < sb ? 1 : 0); break;
    case Opcode::kSltu: ctx.set_reg(in.rd, a < b ? 1 : 0); break;

    case Opcode::kFadd: ctx.set_reg(in.rd, as_u(as_f(a) + as_f(b))); break;
    case Opcode::kFsub: ctx.set_reg(in.rd, as_u(as_f(a) - as_f(b))); break;
    case Opcode::kFmul: ctx.set_reg(in.rd, as_u(as_f(a) * as_f(b))); break;
    case Opcode::kFdiv: ctx.set_reg(in.rd, as_u(as_f(a) / as_f(b))); break;
    case Opcode::kFmin: ctx.set_reg(in.rd, as_u(std::fmin(as_f(a), as_f(b)))); break;
    case Opcode::kFmax: ctx.set_reg(in.rd, as_u(std::fmax(as_f(a), as_f(b)))); break;
    case Opcode::kFlt: ctx.set_reg(in.rd, as_f(a) < as_f(b) ? 1 : 0); break;
    case Opcode::kFle: ctx.set_reg(in.rd, as_f(a) <= as_f(b) ? 1 : 0); break;
    case Opcode::kFeq: ctx.set_reg(in.rd, as_f(a) == as_f(b) ? 1 : 0); break;
    case Opcode::kFsqrt: ctx.set_reg(in.rd, as_u(std::sqrt(as_f(a)))); break;
    case Opcode::kFabs: ctx.set_reg(in.rd, as_u(std::fabs(as_f(a)))); break;
    case Opcode::kFneg: ctx.set_reg(in.rd, as_u(-as_f(a))); break;
    case Opcode::kFcvtWs:
      ctx.set_reg(in.rd, static_cast<u32>(static_cast<i32>(as_f(a))));
      break;
    case Opcode::kFcvtSw:
      ctx.set_reg(in.rd, as_u(static_cast<float>(sa)));
      break;

    case Opcode::kAddi: ctx.set_reg(in.rd, a + static_cast<u32>(in.imm)); break;
    case Opcode::kAndi: ctx.set_reg(in.rd, a & static_cast<u32>(in.imm)); break;
    case Opcode::kOri: ctx.set_reg(in.rd, a | static_cast<u32>(in.imm)); break;
    case Opcode::kXori: ctx.set_reg(in.rd, a ^ static_cast<u32>(in.imm)); break;
    case Opcode::kSlli: ctx.set_reg(in.rd, a << (in.imm & 31)); break;
    case Opcode::kSrli: ctx.set_reg(in.rd, a >> (in.imm & 31)); break;
    case Opcode::kSrai:
      ctx.set_reg(in.rd, static_cast<u32>(sa >> (in.imm & 31)));
      break;
    case Opcode::kSlti: ctx.set_reg(in.rd, sa < in.imm ? 1 : 0); break;
    case Opcode::kLui:
      ctx.set_reg(in.rd, static_cast<u32>(in.imm) << 13);
      break;

    case Opcode::kLw: {
      result.mem_addr = global_addr(ctx, in);
      ctx.set_reg(in.rd, dram.read_u32(result.mem_addr));
      break;
    }
    case Opcode::kSw: {
      result.mem_addr = global_addr(ctx, in);
      dram.write_u32(result.mem_addr, b);
      break;
    }
    case Opcode::kLwl:
      ctx.set_reg(in.rd, local.load(a + static_cast<u32>(in.imm)));
      break;
    case Opcode::kSwl:
      local.store(a + static_cast<u32>(in.imm), b);
      break;
    case Opcode::kAmoaddl:
      ctx.set_reg(in.rd, local.amoadd(a + static_cast<u32>(in.imm), b));
      break;
    case Opcode::kFamoaddl:
      ctx.set_reg(in.rd, local.famoadd(a + static_cast<u32>(in.imm), b));
      break;

    case Opcode::kBeq: result.branch_taken = a == b; break;
    case Opcode::kBne: result.branch_taken = a != b; break;
    case Opcode::kBlt: result.branch_taken = sa < sb; break;
    case Opcode::kBge: result.branch_taken = sa >= sb; break;
    case Opcode::kBltu: result.branch_taken = a < b; break;
    case Opcode::kBgeu: result.branch_taken = a >= b; break;

    case Opcode::kJal:
      ctx.set_reg(in.rd, ctx.pc + 1);
      next_pc = static_cast<u32>(static_cast<i32>(ctx.pc) + in.imm);
      break;
    case Opcode::kJalr: {
      const u32 target = a + static_cast<u32>(in.imm);
      ctx.set_reg(in.rd, ctx.pc + 1);
      next_pc = target;
      break;
    }

    case Opcode::kCsrr:
      ctx.set_reg(in.rd, ctx.csr.values[static_cast<u32>(in.imm)]);
      break;
    case Opcode::kHalt:
      ctx.state = Context::State::kHalted;
      next_pc = ctx.pc;
      break;
    case Opcode::kBar:
      break;  // synchronization is the timing model's job
    case Opcode::kCount_:
      MLP_CHECK(false, "invalid opcode");
  }

  if (result.branch_taken) {
    next_pc = static_cast<u32>(static_cast<i32>(ctx.pc) + in.imm);
  }
  if (ctx.state != Context::State::kHalted) ctx.pc = next_pc;
  return result;
}

}  // namespace mlp::core
