#pragma once
// The global-memory port a core issues input-data accesses through. Each
// architecture provides its own implementation: Millipede's row prefetch
// buffer, SSMC's per-core L1D, the GPGPU's coalescer+L1D, the multicore's
// L1/L2 hierarchy. Keeping the port virtual is what lets one corelet timing
// model serve several architectures.

#include <functional>

#include "common/types.hpp"

namespace mlp::core {

enum class PortStatus : u8 {
  kDone,     ///< satisfied locally; data ready at `ready_at`
  kPending,  ///< in flight; the wakeup callback will fire
  kRetry,    ///< structural hazard (MSHR/queue full); retry next cycle
};

struct PortResult {
  PortStatus status = PortStatus::kDone;
  Picos ready_at = 0;  ///< meaningful for kDone
};

class GlobalPort {
 public:
  virtual ~GlobalPort() = default;

  /// Word load from the input stream by (core, context).
  /// On kPending, `wakeup(at)` fires exactly once when the data is usable.
  virtual PortResult load(u32 core, u32 ctx, Addr addr, Picos now,
                          std::function<void(Picos)> wakeup) = 0;

  /// Global store (rare in BMLAs; results live in local state). Default:
  /// fire-and-forget with unit occupancy.
  virtual PortResult store(u32 core, u32 ctx, Addr addr, Picos now) {
    (void)core; (void)ctx; (void)addr;
    return PortResult{PortStatus::kDone, now};
  }

  /// Live-state (local-space) access timing. Millipede and the GPGPU have a
  /// dedicated local memory / shared memory, so the default is a fixed
  /// latency supplied by the caller. SSMC and the conventional multicore
  /// override this to route the access through their data caches, where the
  /// input stream competes with the state for capacity.
  virtual PortResult local_access(u32 core, u32 ctx, Addr addr, bool is_write,
                                  Picos fixed_ready_at, Picos now,
                                  std::function<void(Picos)> wakeup) {
    (void)core; (void)ctx; (void)addr; (void)is_write; (void)now;
    (void)wakeup;
    return PortResult{PortStatus::kDone, fixed_ready_at};
  }

  /// Processor-wide thread barrier (`bar`). Default: free no-op, for
  /// architectures that don't wire one up (the ablation uses BarrierPort).
  virtual PortResult barrier(u32 core, u32 ctx, Picos now, Picos period_ps,
                             std::function<void(Picos)> wakeup) {
    (void)core; (void)ctx; (void)wakeup;
    return PortResult{PortStatus::kDone, now + period_ps};
  }

  /// Notification that a hardware thread executed halt (barriers must stop
  /// expecting it).
  virtual void thread_halted(u32 core, u32 ctx, Picos now, Picos period_ps) {
    (void)core; (void)ctx; (void)now; (void)period_ps;
  }
};

}  // namespace mlp::core
