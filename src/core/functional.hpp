#pragma once
// The functional executor: one instruction-set semantics shared by every
// architecture model (corelet, SSMC core, GPGPU lane, multicore context).
// Timing models call classify()/global_addr() first to negotiate structural
// resources, then step() to commit architectural state.

#include "core/context.hpp"
#include "isa/program.hpp"
#include "mem/dram_image.hpp"
#include "mem/local_store.hpp"

namespace mlp::core {

enum class StepKind : u8 {
  kAlu,
  kFloat,
  kLocal,        ///< lw.l / sw.l / amoadd.l / famoadd.l
  kGlobalLoad,
  kGlobalStore,
  kBranch,
  kJump,
  kCsr,
  kHalt,
  kBarrier,  ///< processor-wide thread barrier (bar)
};

struct StepResult {
  StepKind kind = StepKind::kAlu;
  bool branch_taken = false;
  Addr mem_addr = 0;  ///< global accesses only
};

/// Classification of the instruction at ctx.pc without side effects; timing
/// models use it to reserve ports before committing execution.
StepKind classify(const isa::Instr& instr);

/// Effective global address of the (global) memory instruction at ctx.pc.
Addr global_addr(const Context& ctx, const isa::Instr& instr);

/// Execute the instruction at ctx.pc: updates registers, pc, instret and the
/// local store; reads global values from `dram` (timing-decoupled). Global
/// stores also write `dram` immediately. Returns what happened for timing.
StepResult step(Context& ctx, const isa::Program& program,
                mem::LocalStore& local, mem::DramImage& dram);

struct DecodedInstr;

/// Per-opcode execute handler of the predecoded fast path (indirect threaded
/// dispatch). Commits the instruction's architectural effects and returns the
/// fall-through/jump next pc; branch targets are applied by step_decoded()
/// from `result.branch_taken`, exactly like step()'s epilogue.
using StepFn = u32 (*)(const DecodedInstr& de, Context& ctx,
                       mem::LocalStore& local, mem::DramImage& dram,
                       StepResult& result);

/// One predecoded instruction: the raw Instr plus everything the per-edge
/// hot path would otherwise recompute (classification, local-store
/// direction, execute handler, branch-taken target, owning basic block).
/// Produced by DecodedBlockCache; `fn == nullptr` marks a slot whose block
/// has not been decoded yet.
struct DecodedInstr {
  isa::Instr instr;
  StepKind kind = StepKind::kAlu;
  bool is_store = false;  ///< op_info(instr.op).is_store, for local accesses
  StepFn fn = nullptr;
  u32 block = 0;     ///< CFG basic-block id of this pc
  u32 taken_pc = 0;  ///< pc + imm: branch target if result.branch_taken
};

/// Execute handler for `op`; aborts on kCount_ (never a real instruction).
StepFn step_fn_for(isa::Opcode op);

/// step() over a predecoded instruction: bit-identical architectural effects
/// and StepResult, minus the per-edge fetch/classify. `de` must be the
/// decoding of program.at(ctx.pc).
inline StepResult step_decoded(const DecodedInstr& de, Context& ctx,
                               mem::LocalStore& local, mem::DramImage& dram) {
  StepResult result;
  result.kind = de.kind;
  ++ctx.instret;
  u32 next_pc = de.fn(de, ctx, local, dram, result);
  if (result.branch_taken) next_pc = de.taken_pc;
  if (ctx.state != Context::State::kHalted) ctx.pc = next_pc;
  return result;
}

}  // namespace mlp::core
