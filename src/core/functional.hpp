#pragma once
// The functional executor: one instruction-set semantics shared by every
// architecture model (corelet, SSMC core, GPGPU lane, multicore context).
// Timing models call classify()/global_addr() first to negotiate structural
// resources, then step() to commit architectural state.

#include "core/context.hpp"
#include "isa/program.hpp"
#include "mem/dram_image.hpp"
#include "mem/local_store.hpp"

namespace mlp::core {

enum class StepKind : u8 {
  kAlu,
  kFloat,
  kLocal,        ///< lw.l / sw.l / amoadd.l / famoadd.l
  kGlobalLoad,
  kGlobalStore,
  kBranch,
  kJump,
  kCsr,
  kHalt,
  kBarrier,  ///< processor-wide thread barrier (bar)
};

struct StepResult {
  StepKind kind = StepKind::kAlu;
  bool branch_taken = false;
  Addr mem_addr = 0;  ///< global accesses only
};

/// Classification of the instruction at ctx.pc without side effects; timing
/// models use it to reserve ports before committing execution.
StepKind classify(const isa::Instr& instr);

/// Effective global address of the (global) memory instruction at ctx.pc.
Addr global_addr(const Context& ctx, const isa::Instr& instr);

/// Execute the instruction at ctx.pc: updates registers, pc, instret and the
/// local store; reads global values from `dram` (timing-decoupled). Global
/// stores also write `dram` immediately. Returns what happened for timing.
StepResult step(Context& ctx, const isa::Program& program,
                mem::LocalStore& local, mem::DramImage& dram);

}  // namespace mlp::core
