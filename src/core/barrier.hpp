#pragma once
// Processor-wide software barrier used by the record-granularity-barrier
// ablation (Section IV-C): the paper argues MapReduce-expressible barriers
// are the only software alternative to hardware flow control, and shows
// they do not help. A thread executing `bar` blocks until every live
// (non-halted) thread has arrived; halted threads deregister so tail
// imbalance cannot deadlock the machine.

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "core/port.hpp"
#include "sim/snapshot.hpp"

namespace mlp::core {

class Barrier {
 public:
  explicit Barrier(u32 expected) : expected_(expected) {
    MLP_CHECK(expected_ > 0, "barrier needs participants");
  }

  /// A thread arrives. Returns kDone (releasing everyone) if this arrival
  /// completes the barrier; otherwise registers `wakeup` and returns
  /// kPending.
  PortResult arrive(Picos now, Picos period_ps,
                    std::function<void(Picos)> wakeup) {
    ++arrived_;
    if (arrived_ >= expected_) {
      release(now + period_ps);
      return {PortStatus::kDone, now + period_ps};
    }
    waiters_.push_back(std::move(wakeup));
    return {PortStatus::kPending, 0};
  }

  /// A thread halted: it will never arrive again. May release the barrier.
  void deregister(Picos now, Picos period_ps) {
    MLP_CHECK(expected_ > 0, "deregister below zero");
    --expected_;
    if (expected_ > 0 && arrived_ >= expected_) release(now + period_ps);
  }

  u32 waiting() const { return static_cast<u32>(waiters_.size()); }
  u64 episodes() const { return episodes_; }

  /// Snapshot support (sim/snapshot.hpp): a barrier-blocked thread holds a
  /// wakeup closure, so capture requires no waiters — then arrived_ is
  /// guaranteed 0 and only the halt-decayed expectation and the episode
  /// count carry state.
  bool quiescent() const { return waiters_.empty(); }
  void save(sim::SnapshotWriter& w) const {
    MLP_SIM_CHECK(waiters_.empty() && arrived_ == 0, "snapshot",
                  "barrier captured with waiting threads");
    w.put_u32(expected_);
    w.put_u64(episodes_);
  }
  void restore(sim::SnapshotCursor& r) {
    expected_ = r.get_u32();
    episodes_ = r.get_u64();
    arrived_ = 0;
  }

 private:
  void release(Picos at) {
    ++episodes_;
    arrived_ = 0;
    auto batch = std::move(waiters_);
    waiters_.clear();
    for (auto& waiter : batch) waiter(at);
  }

  u32 expected_;
  u32 arrived_ = 0;
  u64 episodes_ = 0;
  std::vector<std::function<void(Picos)>> waiters_;
};

/// GlobalPort decorator adding barrier support on top of any memory port.
class BarrierPort : public GlobalPort, public sim::Snapshottable {
 public:
  BarrierPort(GlobalPort* inner, u32 threads)
      : inner_(inner), barrier_(threads) {
    MLP_CHECK(inner_ != nullptr, "barrier needs an inner port");
  }

  PortResult load(u32 core, u32 ctx, Addr addr, Picos now,
                  std::function<void(Picos)> wakeup) override {
    return inner_->load(core, ctx, addr, now, std::move(wakeup));
  }

  PortResult store(u32 core, u32 ctx, Addr addr, Picos now) override {
    return inner_->store(core, ctx, addr, now);
  }

  PortResult local_access(u32 core, u32 ctx, Addr addr, bool is_write,
                          Picos fixed_ready_at, Picos now,
                          std::function<void(Picos)> wakeup) override {
    return inner_->local_access(core, ctx, addr, is_write, fixed_ready_at,
                                now, std::move(wakeup));
  }

  PortResult barrier(u32 /*core*/, u32 /*ctx*/, Picos now, Picos period_ps,
                     std::function<void(Picos)> wakeup) override {
    return barrier_.arrive(now, period_ps, std::move(wakeup));
  }

  void thread_halted(u32 /*core*/, u32 /*ctx*/, Picos now,
                     Picos period_ps) override {
    barrier_.deregister(now, period_ps);
  }

  const Barrier& state() const { return barrier_; }

  // sim::Snapshottable: delegates to the wrapped Barrier.
  void save_state(sim::SnapshotWriter& w) const override { barrier_.save(w); }
  void restore_state(sim::SnapshotCursor& r) override { barrier_.restore(r); }
  bool quiescent() const override { return barrier_.quiescent(); }

 private:
  GlobalPort* inner_;
  Barrier barrier_;
};

}  // namespace mlp::core
