#include "core/decode_cache.hpp"

namespace mlp::core {

DecodedBlockCache::DecodedBlockCache(const isa::Program& program,
                                     bool dispatch_enabled)
    : program_(&program),
      cfg_(isa::Cfg::build(program)),
      dispatch_(dispatch_enabled),
      entries_(program.size()) {}

void DecodedBlockCache::decode_block(u32 block) {
  const isa::BasicBlock& bb = cfg_.blocks()[block];
  for (u32 pc = bb.first; pc <= bb.last; ++pc) {
    const isa::Instr& in = program_->at(pc);
    DecodedInstr& de = entries_[pc];
    de.instr = in;
    de.kind = classify(in);
    de.is_store = isa::op_info(in.op).is_store;
    de.fn = step_fn_for(in.op);
    de.block = block;
    de.taken_pc = static_cast<u32>(static_cast<i32>(pc) + in.imm);
  }
  block_misses_.inc();
}

void DecodedBlockCache::save_state(sim::SnapshotWriter& w) const {
  const auto& blocks = cfg_.blocks();
  u32 decoded = 0;
  for (u32 b = 0; b < blocks.size(); ++b) {
    if (entries_[blocks[b].first].fn != nullptr) ++decoded;
  }
  w.put_u32(decoded);
  for (u32 b = 0; b < blocks.size(); ++b) {
    if (entries_[blocks[b].first].fn != nullptr) w.put_u32(b);
  }
}

void DecodedBlockCache::restore_state(sim::SnapshotCursor& r) {
  const u32 decoded = r.get_u32();
  const u32 blocks = static_cast<u32>(cfg_.blocks().size());
  for (u32 i = 0; i < decoded; ++i) {
    const u32 block = r.get_u32();
    MLP_SIM_CHECK(block < blocks, "snapshot",
                  "snapshot decoded-block id outside this program");
    decode_block(block);
  }
}

void DecodedBlockCache::register_with(StatSet* stats,
                                      const std::string& prefix) {
  if (stats == nullptr) return;
  stats->add(prefix + ".block_hits", &block_hits_);
  stats->add(prefix + ".block_misses", &block_misses_);
  stats->add(prefix + ".batched_lanes", &batched_lanes_);
}

}  // namespace mlp::core
