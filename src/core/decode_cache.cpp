#include "core/decode_cache.hpp"

namespace mlp::core {

DecodedBlockCache::DecodedBlockCache(const isa::Program& program,
                                     bool dispatch_enabled)
    : program_(&program),
      cfg_(isa::Cfg::build(program)),
      dispatch_(dispatch_enabled),
      entries_(program.size()) {}

void DecodedBlockCache::decode_block(u32 block) {
  const isa::BasicBlock& bb = cfg_.blocks()[block];
  for (u32 pc = bb.first; pc <= bb.last; ++pc) {
    const isa::Instr& in = program_->at(pc);
    DecodedInstr& de = entries_[pc];
    de.instr = in;
    de.kind = classify(in);
    de.is_store = isa::op_info(in.op).is_store;
    de.fn = step_fn_for(in.op);
    de.block = block;
    de.taken_pc = static_cast<u32>(static_cast<i32>(pc) + in.imm);
  }
  block_misses_.inc();
}

void DecodedBlockCache::register_with(StatSet* stats,
                                      const std::string& prefix) {
  if (stats == nullptr) return;
  stats->add(prefix + ".block_hits", &block_hits_);
  stats->add(prefix + ".block_misses", &block_misses_);
  stats->add(prefix + ".batched_lanes", &batched_lanes_);
}

}  // namespace mlp::core
