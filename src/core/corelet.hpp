#pragma once
// The in-order, single-issue, fine-grain multithreaded simple core used as
// the Millipede corelet and the SSMC core (the paper holds the pipeline
// identical across architectures). Each cycle the core issues at most one
// instruction from the next runnable hardware context in round-robin order;
// memory latency is tolerated by switching contexts, exactly the
// "small-scale hardware multithreading" of Section IV-A.

#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/functional.hpp"
#include "core/port.hpp"
#include "sim/snapshot.hpp"
#include "sim/tickable.hpp"
#include "trace/trace.hpp"

namespace mlp::core {

class DecodedBlockCache;

/// Execution counters aggregated across all corelets of a processor; the
/// energy model and Table IV derive from these.
struct ExecStats {
  Counter instructions;
  Counter int_alu, float_alu, local_ops, global_loads, global_stores;
  Counter branches, branches_taken, jumps;
  Counter busy_cycles, idle_cycles, retry_stalls;

  void register_with(StatSet* stats, const std::string& prefix) {
    if (stats == nullptr) return;
    stats->add(prefix + ".instructions", &instructions);
    stats->add(prefix + ".int_alu", &int_alu);
    stats->add(prefix + ".float_alu", &float_alu);
    stats->add(prefix + ".local_ops", &local_ops);
    stats->add(prefix + ".global_loads", &global_loads);
    stats->add(prefix + ".global_stores", &global_stores);
    stats->add(prefix + ".branches", &branches);
    stats->add(prefix + ".branches_taken", &branches_taken);
    stats->add(prefix + ".jumps", &jumps);
    stats->add(prefix + ".busy_cycles", &busy_cycles);
    stats->add(prefix + ".idle_cycles", &idle_cycles);
    stats->add(prefix + ".retry_stalls", &retry_stalls);
  }
};

class Corelet : public sim::Tickable, public sim::Snapshottable {
 public:
  /// `dcache` is optional (tests drive bare corelets without one); when
  /// present it provides decode accounting and, if its dispatch flag is on,
  /// the predecoded fast path. Shared read-only across a job's corelets.
  Corelet(u32 core_id, const CoreConfig& cfg, const isa::Program* program,
          mem::LocalStore* local, mem::DramImage* dram, GlobalPort* port,
          ExecStats* stats, trace::TraceSession* trace = nullptr,
          DecodedBlockCache* dcache = nullptr);

  /// One compute-clock edge: issue at most one instruction.
  /// `period_ps` is the current compute period (DFS may change it).
  void tick(Picos now, Picos period_ps) override;

  /// Earliest edge at which some context could issue: the soonest kReady
  /// wake-up. Mem-stalled and halted contexts only change via port
  /// callbacks, which arrive from channel-domain ticks.
  Picos next_event(Picos now) const override;

  /// Bulk idle accounting for fast-forwarded edges (matches tick()'s
  /// nothing-runnable path).
  void skip_idle(u64 edges) override;

  bool halted() const;

  // sim::Snapshottable: every context's architectural state, the round-robin
  // cursor and this corelet's local-store words. A context blocked on a
  // global load holds an unserializable port continuation, so capture waits
  // until no context is in kWaitMem (barrier waiters are kWaitMem too).
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;
  bool quiescent() const override {
    for (const Context& ctx : contexts_) {
      if (ctx.state == Context::State::kWaitMem) return false;
    }
    return true;
  }

  Context& context(u32 i) { return contexts_[i]; }
  const Context& context(u32 i) const { return contexts_[i]; }
  u32 num_contexts() const { return static_cast<u32>(contexts_.size()); }
  u32 core_id() const { return core_id_; }

 private:
  u32 core_id_;
  CoreConfig cfg_;
  const isa::Program* program_;
  mem::LocalStore* local_;
  mem::DramImage* dram_;
  GlobalPort* port_;
  ExecStats* stats_;
  trace::TraceSession* trace_;
  DecodedBlockCache* dcache_;

  std::vector<Context> contexts_;
  u32 rr_next_ = 0;
};

}  // namespace mlp::core
