#include "core/corelet.hpp"

#include <algorithm>

#include "core/decode_cache.hpp"

namespace mlp::core {

Corelet::Corelet(u32 core_id, const CoreConfig& cfg,
                 const isa::Program* program, mem::LocalStore* local,
                 mem::DramImage* dram, GlobalPort* port, ExecStats* stats,
                 trace::TraceSession* trace, DecodedBlockCache* dcache)
    : core_id_(core_id),
      cfg_(cfg),
      program_(program),
      local_(local),
      dram_(dram),
      port_(port),
      stats_(stats),
      trace_(trace),
      dcache_(dcache),
      contexts_(cfg.contexts) {
  MLP_CHECK(program_ != nullptr && local_ != nullptr && dram_ != nullptr &&
                port_ != nullptr && stats_ != nullptr,
            "corelet wiring incomplete");
}

bool Corelet::halted() const {
  for (const Context& ctx : contexts_) {
    if (ctx.state != Context::State::kHalted) return false;
  }
  return true;
}

void Corelet::save_state(sim::SnapshotWriter& w) const {
  MLP_SIM_CHECK(quiescent(), "snapshot",
                "corelet captured with a context blocked on memory");
  w.put_u32(static_cast<u32>(contexts_.size()));
  for (const Context& ctx : contexts_) {
    for (const u32 reg : ctx.regs) w.put_u32(reg);
    w.put_u32(ctx.pc);
    w.put_u8(static_cast<u8>(ctx.state));
    w.put_u64(ctx.ready_at);
    for (const u32 value : ctx.csr.values) w.put_u32(value);
    w.put_u64(ctx.instret);
  }
  w.put_u32(rr_next_);
  const std::vector<u32>& words = local_->words();
  w.put_u64(words.size());
  for (const u32 word : words) w.put_u32(word);
}

void Corelet::restore_state(sim::SnapshotCursor& r) {
  const u32 contexts = r.get_u32();
  MLP_SIM_CHECK(contexts == contexts_.size(), "snapshot",
                "snapshot context count does not match this corelet");
  for (Context& ctx : contexts_) {
    for (u32& reg : ctx.regs) reg = r.get_u32();
    ctx.pc = r.get_u32();
    const u8 state = r.get_u8();
    MLP_SIM_CHECK(state <= static_cast<u8>(Context::State::kHalted),
                  "snapshot", "invalid context state in snapshot");
    ctx.state = static_cast<Context::State>(state);
    ctx.ready_at = r.get_u64();
    for (u32& value : ctx.csr.values) value = r.get_u32();
    ctx.instret = r.get_u64();
  }
  rr_next_ = r.get_u32();
  std::vector<u32>& words = local_->words();
  const u64 size = r.get_u64();
  MLP_SIM_CHECK(size == words.size(), "snapshot",
                "snapshot local-store size does not match this corelet");
  for (u32& word : words) word = r.get_u32();
}

Picos Corelet::next_event(Picos now) const {
  // A kReady context issues at its wake-up edge; kWaitMem and kHalted
  // contexts only become schedulable through a port callback. Note a kReady
  // context whose last issue hit port backpressure (kRetry) keeps
  // ready_at <= now, so retry polling is never skipped over.
  Picos at = sim::kNoEvent;
  for (const Context& ctx : contexts_) {
    if (ctx.state != Context::State::kReady) continue;
    at = std::min(at, std::max(ctx.ready_at, now));
  }
  return at;
}

void Corelet::skip_idle(u64 edges) {
  if (!halted()) stats_->idle_cycles.inc(edges);
}

void Corelet::tick(Picos now, Picos period_ps) {
  // Round-robin pick of the next runnable context.
  Context* chosen = nullptr;
  u32 chosen_index = 0;
  for (u32 i = 0; i < contexts_.size(); ++i) {
    const u32 idx = (rr_next_ + i) % contexts_.size();
    if (contexts_[idx].runnable(now)) {
      chosen = &contexts_[idx];
      chosen_index = idx;
      break;
    }
  }
  if (chosen == nullptr) {
    if (!halted()) stats_->idle_cycles.inc();
    return;
  }
  rr_next_ = (chosen_index + 1) % contexts_.size();
  Context& ctx = *chosen;

  // Decode accounting runs whenever a cache is wired, even with its
  // dispatch fast path disabled (--no-block-cache), so decode.* counters —
  // pure functions of the issue stream — stay bit-identical across modes.
  const DecodedInstr* de =
      dcache_ != nullptr ? &dcache_->entry(ctx.pc) : nullptr;
  const bool fast = de != nullptr && dcache_->dispatch_enabled();
  const isa::Instr& instr = fast ? de->instr : program_->at(ctx.pc);
  const StepKind kind = fast ? de->kind : classify(instr);
  const auto exec = [&]() {
    return fast ? step_decoded(*de, ctx, *local_, *dram_)
                : step(ctx, *program_, *local_, *dram_);
  };

  // Global accesses negotiate the port before committing execution.
  if (kind == StepKind::kGlobalLoad) {
    const Addr addr = global_addr(ctx, instr);
    ctx.state = Context::State::kWaitMem;  // callback may fire synchronously
    PortResult port_result;
    if (trace_ == nullptr) {
      port_result = port_->load(core_id_, chosen_index, addr, now,
                                [&ctx](Picos at) {
                                  ctx.state = Context::State::kReady;
                                  ctx.ready_at = at;
                                });
    } else {
      // A stall slice is only real once the load actually pends; both edges
      // are emitted at wake time (begin carries the issue timestamp — the
      // exporter orders by ts), so synchronous hits add no events. The fat
      // capture is trace-only: the hot path above keeps its two-pointer
      // closure inside std::function's small-buffer optimisation.
      trace::TraceSession* trace = trace_;
      const u32 track = core_id_ * cfg_.contexts + chosen_index;
      port_result = port_->load(
          core_id_, chosen_index, addr, now,
          [&ctx, trace, track, addr, now](Picos at) {
            trace->emit(trace::Domain::kCompute,
                        trace::EventKind::kStallBegin, now, track, addr);
            trace->emit(trace::Domain::kCompute, trace::EventKind::kStallEnd,
                        at, track, addr);
            ctx.state = Context::State::kReady;
            ctx.ready_at = at;
          });
    }
    if (port_result.status == PortStatus::kRetry) {
      ctx.state = Context::State::kReady;
      stats_->retry_stalls.inc();
      return;
    }
    exec();
    stats_->instructions.inc();
    stats_->global_loads.inc();
    stats_->busy_cycles.inc();
    if (port_result.status == PortStatus::kDone) {
      ctx.state = Context::State::kReady;
      ctx.ready_at = port_result.ready_at;
    }
    return;
  }
  if (kind == StepKind::kGlobalStore) {
    const Addr addr = global_addr(ctx, instr);
    const PortResult port_result = port_->store(core_id_, chosen_index, addr, now);
    if (port_result.status == PortStatus::kRetry) {
      stats_->retry_stalls.inc();
      return;
    }
    exec();
    stats_->instructions.inc();
    stats_->global_stores.inc();
    stats_->busy_cycles.inc();
    ctx.ready_at = std::max(port_result.ready_at, now + period_ps);
    return;
  }

  if (kind == StepKind::kBarrier) {
    ctx.state = Context::State::kWaitMem;  // release may fire synchronously
    const PortResult port_result =
        port_->barrier(core_id_, chosen_index, now, period_ps,
                       [&ctx](Picos at) {
                         ctx.state = Context::State::kReady;
                         ctx.ready_at = at;
                       });
    exec();
    stats_->instructions.inc();
    stats_->busy_cycles.inc();
    if (port_result.status == PortStatus::kDone) {
      ctx.state = Context::State::kReady;
      ctx.ready_at = port_result.ready_at;
    }
    return;
  }
  if (kind == StepKind::kLocal) {
    // Live-state access: latency is architecture-specific (dedicated local
    // memory vs. a cached state region competing with the input stream).
    const Addr addr = global_addr(ctx, instr);
    const Picos fixed =
        now + static_cast<Picos>(cfg_.local_latency) * period_ps;
    ctx.state = Context::State::kWaitMem;  // callback may fire synchronously
    const bool is_store =
        fast ? de->is_store : isa::op_info(instr.op).is_store;
    const PortResult port_result = port_->local_access(
        core_id_, chosen_index, addr, is_store, fixed,
        now, [&ctx](Picos at) {
          ctx.state = Context::State::kReady;
          ctx.ready_at = at;
        });
    if (port_result.status == PortStatus::kRetry) {
      ctx.state = Context::State::kReady;
      stats_->retry_stalls.inc();
      return;
    }
    exec();
    stats_->instructions.inc();
    stats_->local_ops.inc();
    stats_->busy_cycles.inc();
    if (port_result.status == PortStatus::kDone) {
      ctx.state = Context::State::kReady;
      ctx.ready_at = port_result.ready_at;
    }
    return;
  }

  const StepResult result = exec();
  stats_->instructions.inc();
  stats_->busy_cycles.inc();
  switch (result.kind) {
    case StepKind::kAlu:
    case StepKind::kCsr:
      stats_->int_alu.inc();
      ctx.ready_at = now + period_ps;
      break;
    case StepKind::kFloat:
      stats_->float_alu.inc();
      ctx.ready_at = now + period_ps;
      break;
    case StepKind::kBranch:
      stats_->branches.inc();
      if (result.branch_taken) {
        stats_->branches_taken.inc();
        ctx.ready_at =
            now + static_cast<Picos>(1 + cfg_.branch_penalty) * period_ps;
      } else {
        ctx.ready_at = now + period_ps;
      }
      break;
    case StepKind::kJump:
      stats_->jumps.inc();
      ctx.ready_at =
          now + static_cast<Picos>(1 + cfg_.branch_penalty) * period_ps;
      break;
    case StepKind::kHalt:
      port_->thread_halted(core_id_, chosen_index, now, period_ps);
      break;
    case StepKind::kLocal:
    case StepKind::kGlobalLoad:
    case StepKind::kGlobalStore:
    case StepKind::kBarrier:
      MLP_CHECK(false, "handled above");
  }
}

}  // namespace mlp::core
