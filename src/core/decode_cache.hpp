#pragma once
// Decoded-basic-block cache: the interpreter fast path. Built lazily over
// the program's CFG (one whole block decoded on first entry), shared
// read-only by every corelet/lane of one job, and dispatched via per-opcode
// handler pointers (step_decoded) instead of the per-edge fetch + classify.
// Accounting (decode.block_hits / block_misses / batched_lanes) is a pure
// function of the deterministic issue stream and runs in BOTH modes, so
// every counter stays bit-identical with the cache disabled — the
// `--no-block-cache` escape hatch turns off only the dispatch fast path.

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/functional.hpp"
#include "isa/cfg.hpp"
#include "sim/snapshot.hpp"

namespace mlp::core {

class DecodedBlockCache : public sim::Snapshottable {
 public:
  /// Builds the CFG eagerly; instruction decoding happens lazily per block.
  /// `dispatch_enabled` false keeps the accounting (and the counters it
  /// feeds) while the execution path stays on the legacy per-edge decode.
  explicit DecodedBlockCache(const isa::Program& program,
                             bool dispatch_enabled = true);

  /// Accounting + lookup for the instruction at `pc`. First touch of a
  /// block decodes it whole (block_misses); later issues into a decoded
  /// block are block_hits, and consecutive issues into the SAME block
  /// within one compute edge additionally count as batched_lanes (the
  /// convergence-batching measure: those issues share one decoded stream).
  const DecodedInstr& entry(u32 pc) {
    MLP_CHECK(pc < entries_.size(), "pc outside the program");
    const DecodedInstr& de = entries_[pc];
    if (de.fn == nullptr) {  // fn is set for every slot of a decoded block
      decode_block(cfg_.block_of(pc));
    } else {
      block_hits_.inc();
      if (de.block == edge_block_) batched_lanes_.inc();
    }
    edge_block_ = de.block;
    return de;
  }

  /// Resets the convergence memo; the kernel calls this once per compute
  /// clock edge (fast-forwarded edges issue nothing, so skipping them
  /// changes no counter).
  void begin_compute_edge() { edge_block_ = kNoBlock; }

  /// Extra converged lanes executing one decoded instruction (SIMT warps:
  /// active_lanes - 1 per issued warp instruction).
  void note_batched(u64 lanes) { batched_lanes_.inc(lanes); }

  bool dispatch_enabled() const { return dispatch_; }
  const isa::Cfg& cfg() const { return cfg_; }

  void register_with(StatSet* stats, const std::string& prefix);

  // sim::Snapshottable: the set of already-decoded blocks. Without this a
  // restored run would count fresh block_misses where the original counted
  // block_hits; restore re-decodes each saved block (the miss counts that
  // incurs are overwritten by the snapshot's counter section, applied last).
  // The convergence memo needs no saving: the kernel's compute-edge hook
  // resets it before any post-restore issue.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotCursor& r) override;

 private:
  static constexpr u32 kNoBlock = 0xffffffffu;

  void decode_block(u32 block);

  const isa::Program* program_;
  isa::Cfg cfg_;
  bool dispatch_;
  std::vector<DecodedInstr> entries_;  ///< indexed by pc
  u32 edge_block_ = kNoBlock;
  Counter block_hits_, block_misses_, batched_lanes_;
};

}  // namespace mlp::core
