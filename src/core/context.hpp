#pragma once
// A hardware thread context: architectural registers, pc, CSR values and the
// scheduling state used by the multithreaded core timing models.

#include <array>

#include "common/types.hpp"
#include "isa/isa.hpp"

namespace mlp::core {

/// Per-thread CSR file (thread identity, layout geometry, kernel args).
struct CsrValues {
  std::array<u32, isa::kNumCsrs> values{};

  u32 get(isa::Csr csr) const { return values[static_cast<u32>(csr)]; }
  void set(isa::Csr csr, u32 value) { values[static_cast<u32>(csr)] = value; }
};

struct Context {
  enum class State : u8 {
    kReady,    ///< schedulable once `ready_at` has passed
    kWaitMem,  ///< blocked on an outstanding global load
    kHalted,
  };

  std::array<u32, 32> regs{};
  u32 pc = 0;
  State state = State::kReady;
  Picos ready_at = 0;
  CsrValues csr;
  u64 instret = 0;

  bool runnable(Picos now) const {
    return state == State::kReady && ready_at <= now;
  }

  u32 reg(u8 r) const { return regs[r]; }
  void set_reg(u8 r, u32 value) {
    if (r != 0) regs[r] = value;  // r0 is hardwired zero
  }

  void reset() {
    regs.fill(0);
    pc = 0;
    state = State::kReady;
    ready_at = 0;
    instret = 0;
  }
};

}  // namespace mlp::core
