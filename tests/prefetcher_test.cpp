// Dedicated tests for the two prefetcher flavours: the jitter-tolerant
// sequential-window prefetcher (GPGPU/VWS) and the multi-stream stride
// table (SSMC/multicore). Includes the regression scenarios that motivated
// each design: out-of-phase narrow warps and interleaved field-row streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "mem/prefetcher.hpp"

namespace mlp::mem {
namespace {

// --- SequentialPrefetcher ---

TEST(SequentialPrefetcher, RunsAheadOfSequentialStream) {
  SequentialPrefetcher pf(128, /*degree=*/2, /*distance=*/4);
  EXPECT_TRUE(pf.observe(0).empty());  // warm up
  auto lines = pf.observe(128);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], 256u);
  EXPECT_EQ(lines[1], 384u);
}

TEST(SequentialPrefetcher, NeverReissuesCoveredLines) {
  SequentialPrefetcher pf(128, 4, 8);
  std::set<Addr> issued;
  for (u32 i = 0; i < 64; ++i) {
    for (Addr a : pf.observe(i * 128)) {
      EXPECT_TRUE(issued.insert(a).second) << "line issued twice";
    }
  }
}

TEST(SequentialPrefetcher, ToleratesJitterFromManyRequesters) {
  // 32 warps marching through the same region slightly out of phase: the
  // observed line sequence is sequential with +-2 jitter. The window
  // prefetcher must keep issuing ahead, never resetting.
  SequentialPrefetcher pf(128, 4, 8);
  Rng rng(3);
  u64 prefetched = 0;
  for (u32 step = 4; step < 512; ++step) {
    const u64 jitter = rng.below(4);
    const u64 line = step >= jitter ? step - jitter : 0;
    prefetched += pf.observe(line * 128).size();
  }
  // It must cover most of the stream despite the jitter.
  EXPECT_GT(prefetched, 400u);
}

TEST(SequentialPrefetcher, AccessBehindHeadIsIgnored) {
  SequentialPrefetcher pf(128, 2, 4);
  for (u32 i = 0; i < 16; ++i) pf.observe(i * 128);
  EXPECT_TRUE(pf.observe(0).empty()) << "stale access far behind the head";
}

TEST(SequentialPrefetcher, ForwardJumpFollowsTheStream) {
  SequentialPrefetcher pf(128, 2, 4);
  pf.observe(0);
  pf.observe(128);
  const auto lines = pf.observe(100 * 128);  // new row region
  ASSERT_FALSE(lines.empty());
  EXPECT_GE(lines[0] / 128, 101u);
}

// --- StreamTable ---

TEST(StreamTable, SeparatesSpatiallyDistantStreams) {
  // Two interleaved streams far apart, each with unit stride.
  StreamTable table(128, 2, 4, 4);
  u64 hits_a = 0, hits_b = 0;
  for (u32 i = 0; i < 16; ++i) {
    for (Addr a : table.observe(i * 128)) {
      if (a < 1u << 20) ++hits_a;
    }
    for (Addr a : table.observe((1u << 24) + i * 128)) {
      if (a >= 1u << 24) ++hits_b;
    }
  }
  EXPECT_GT(hits_a, 8u);
  EXPECT_GT(hits_b, 8u);
}

TEST(StreamTable, TracksRowStridedFieldStreams) {
  // An SSMC core revisits one line per field row: stride 16 lines, with a
  // periodic back-jump at record boundaries. The table must keep
  // prefetching the forward strides.
  StreamTable table(128, 1, 2, 4);
  u64 prefetched = 0;
  for (u32 rec = 0; rec < 8; ++rec) {
    for (u32 f = 0; f < 4; ++f) {
      prefetched += table.observe((rec * 64 + f * 16) * 128).size();
    }
  }
  EXPECT_GT(prefetched, 10u);
}

TEST(StreamTable, LruReplacementUnderManyStreams) {
  // More streams than entries: must not crash, and recent streams win.
  StreamTable table(128, 1, 2, 2);
  for (u32 s = 0; s < 8; ++s) {
    for (u32 i = 0; i < 4; ++i) {
      table.observe(static_cast<Addr>(s) * (1u << 22) + i * 128);
    }
  }
  // The most recent stream still detects its stride.
  EXPECT_FALSE(table.observe(7ull * (1u << 22) + 4 * 128).empty());
}

// --- Parameterized stride sweep for the basic detector ---

class StrideSweep : public ::testing::TestWithParam<int> {};

TEST_P(StrideSweep, DetectsConstantStride) {
  const int stride = GetParam();
  StreamPrefetcher pf(128, 2, 8);
  const i64 base = 1 << 20;  // room for negative strides
  pf.observe(base * 128);
  pf.observe((base + stride) * 128);
  const auto lines = pf.observe((base + 2 * stride) * 128);
  ASSERT_FALSE(lines.empty()) << "stride " << stride;
  EXPECT_EQ(lines[0], static_cast<Addr>((base + 3 * stride)) * 128);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(1, 2, 4, 16, 64, -1, -16));

}  // namespace
}  // namespace mlp::mem
