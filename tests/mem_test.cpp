// Memory subsystem tests: address mapping, FR-FCFS controller timing and
// scheduling, cache hit/miss/MSHR/writeback behaviour, stream prefetcher,
// shared-memory banking, and the local store.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "common/config.hpp"
#include "common/error.hpp"
#include "mem/addrmap.hpp"
#include "mem/cache.hpp"
#include "mem/controller.hpp"
#include "mem/dram_image.hpp"
#include "mem/local_store.hpp"
#include "mem/prefetcher.hpp"
#include "mem/sharedmem.hpp"

namespace mlp::mem {
namespace {

DramConfig dram_cfg() {
  DramConfig cfg = MachineConfig::paper_defaults().dram;
  cfg.bus_efficiency = 1.0;  // exact-beat timing assertions below
  return cfg;
}

// --- AddressMap ---

TEST(AddressMap, DecodesRowBankColumn) {
  AddressMap map(dram_cfg());
  // Row 0 -> bank 0; row 1 -> bank 1 (row-interleaved banks).
  EXPECT_EQ(map.decode(0).bank, 0u);
  EXPECT_EQ(map.decode(0).row, 0u);
  EXPECT_EQ(map.decode(100).column, 100u);
  EXPECT_EQ(map.decode(2048).bank, 1u);
  EXPECT_EQ(map.decode(2048 * 4).bank, 0u);
  EXPECT_EQ(map.decode(2048 * 4).row, 1u);
  EXPECT_EQ(map.row_id(2048 * 5 + 17), 5u);
  EXPECT_EQ(map.row_base(5), 2048u * 5);
}

TEST(AddressMap, SequentialRowsAlternateBanks) {
  AddressMap map(dram_cfg());
  for (u64 r = 0; r + 1 < 64; ++r) {
    EXPECT_NE(map.decode(map.row_base(r)).bank,
              map.decode(map.row_base(r + 1)).bank);
  }
}

// --- MemoryController ---

struct ControllerFixture : ::testing::Test {
  ControllerFixture() : ctrl(dram_cfg(), "dram", &stats) {}

  // Push a read and run ticks until its callback fires; returns done time.
  Picos run_read(Addr addr, u32 bytes) {
    std::optional<Picos> done;
    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.on_complete = [&](Picos at) { done = at; };
    EXPECT_TRUE(ctrl.try_push(std::move(req), now));
    drain();
    EXPECT_TRUE(done.has_value());
    return *done;
  }

  void drain() {
    while (!ctrl.idle()) {
      ctrl.tick(now);
      now += period;
    }
  }

  StatSet stats;
  MemoryController ctrl;
  Picos now = 0;
  Picos period = dram_cfg().period_ps();
};

TEST_F(ControllerFixture, ColdReadPaysActivatePlusCasPlusTransfer) {
  const Picos done = run_read(0, 64);
  // tRCD(9) + tCAS(9) + 4 beats of 16B = 22 cycles.
  EXPECT_EQ(done, 22 * period);
  EXPECT_EQ(stats.get("dram.row_misses"), 1u);
  EXPECT_EQ(stats.get("dram.row_hits"), 0u);
}

TEST_F(ControllerFixture, RowHitSkipsActivation) {
  run_read(0, 64);
  const Picos start = now;
  const Picos done = run_read(64, 64);
  // tCAS(9) + 4 beats = 13 cycles from the scheduling tick. The scheduling
  // tick is the first tick at or after `start`.
  EXPECT_LE(done - start, 14 * period);
  EXPECT_EQ(stats.get("dram.row_hits"), 1u);
}

TEST_F(ControllerFixture, FullRowFetchOccupiesBusFor128Beats) {
  const Picos done = run_read(0, 2048);
  // tRCD + tCAS + 128 beats = 146 cycles.
  EXPECT_EQ(done, 146 * period);
  EXPECT_EQ(stats.get("dram.bytes"), 2048u);
}

TEST_F(ControllerFixture, RowMissAfterOpenRowPaysPrechargeToo) {
  run_read(0, 64);  // opens bank0 row0
  const Picos start = now;
  // Same bank (bank 0 holds rows 0, 4, 8...), different row.
  const Picos done = run_read(4 * 2048, 64);
  // tRP(9) + tRCD(9) + tCAS(9) + 4 beats = 31 cycles minimum (tRAS already
  // satisfied by the elapsed drain time).
  EXPECT_GE(done - start, 31 * period);
  EXPECT_EQ(stats.get("dram.row_misses"), 2u);
}

TEST_F(ControllerFixture, FrFcfsPrefersRowHitOverOlderMiss) {
  run_read(0, 64);  // opens bank0 row0
  // Queue: first a conflicting miss to bank0 row4, then a hit to row0.
  Picos miss_done = 0, hit_done = 0;
  MemRequest miss;
  miss.addr = 4 * 2048;
  miss.bytes = 64;
  miss.on_complete = [&](Picos at) { miss_done = at; };
  MemRequest hit;
  hit.addr = 128;
  hit.bytes = 64;
  hit.on_complete = [&](Picos at) { hit_done = at; };
  ASSERT_TRUE(ctrl.try_push(std::move(miss), now));
  ASSERT_TRUE(ctrl.try_push(std::move(hit), now));
  drain();
  EXPECT_LT(hit_done, miss_done);  // younger row-hit served first
}

TEST_F(ControllerFixture, QueueBackpressure) {
  // Fill the 16-deep window without ticking.
  for (u32 i = 0; i < ctrl.queue_capacity(); ++i) {
    MemRequest req;
    req.addr = i * 2048;
    req.bytes = 64;
    ASSERT_TRUE(ctrl.try_push(std::move(req), now));
  }
  MemRequest overflow;
  overflow.addr = 99 * 2048;
  overflow.bytes = 64;
  EXPECT_FALSE(ctrl.try_push(std::move(overflow), now));
  EXPECT_EQ(stats.get("dram.queue_rejections"), 1u);
  drain();  // must still drain cleanly
}

TEST_F(ControllerFixture, BankParallelismOverlapsActivations) {
  // Two cold reads to different banks finish sooner than two to the same
  // bank+row-conflict because activations overlap.
  Picos done_a = 0, done_b = 0;
  MemRequest a, b;
  a.addr = 0;        // bank 0
  a.bytes = 2048;
  a.on_complete = [&](Picos at) { done_a = at; };
  b.addr = 2048;     // bank 1
  b.bytes = 2048;
  b.on_complete = [&](Picos at) { done_b = at; };
  ASSERT_TRUE(ctrl.try_push(std::move(a), now));
  ASSERT_TRUE(ctrl.try_push(std::move(b), now));
  drain();
  // B's activation overlaps A's transfer: B completes one transfer-time
  // after A (plus nothing else), i.e. well before 2x A's latency.
  EXPECT_EQ(done_a, 146 * period);
  EXPECT_LE(done_b, done_a + 129 * period);
  EXPECT_EQ(stats.get("dram.reads"), 2u);
}

TEST_F(ControllerFixture, RejectsRowStraddlingRequest) {
  MemRequest req;
  req.addr = 2048 - 64;
  req.bytes = 128;  // crosses into the next row
  EXPECT_THROW(ctrl.try_push(std::move(req), now), SimError);
}

// --- Cache ---

/// Scripted backend: records requests; test completes them explicitly.
class FakeBackend : public MemBackend {
 public:
  bool request(MemRequest request, Picos) override {
    if (reject_next > 0) {
      --reject_next;
      return false;
    }
    requests.push_back(std::move(request));
    return true;
  }

  void complete_all(Picos at) {
    auto batch = std::move(requests);
    requests.clear();
    for (MemRequest& r : batch) {
      if (r.on_complete) r.on_complete(at);
    }
  }

  std::vector<MemRequest> requests;
  int reject_next = 0;
};

struct CacheFixture : ::testing::Test {
  CacheFixture()
      : cache("l1", 5 * 1024, 128, 5, 8, /*hit_latency_ps=*/2858, &backend,
              &stats) {}

  FakeBackend backend;
  StatSet stats;
  Cache cache;
  Picos now = 0;
};

TEST_F(CacheFixture, MissThenHit) {
  Picos filled = 0;
  EXPECT_EQ(cache.access(0x100, false, now, [&](Picos at) { filled = at; }),
            AccessStatus::kMiss);
  ASSERT_EQ(backend.requests.size(), 1u);
  EXPECT_EQ(backend.requests[0].addr, 0x100u);
  EXPECT_EQ(backend.requests[0].bytes, 128u);
  backend.complete_all(1000);
  EXPECT_EQ(filled, 1000u + cache.hit_latency_ps());
  EXPECT_EQ(cache.access(0x100, false, now, nullptr), AccessStatus::kHit);
  EXPECT_EQ(cache.access(0x17c, false, now, nullptr), AccessStatus::kHit)
      << "same line";
  EXPECT_EQ(stats.get("l1.hits"), 2u);
  EXPECT_EQ(stats.get("l1.misses"), 1u);
}

TEST_F(CacheFixture, MshrMergesSameLine) {
  int fills = 0;
  EXPECT_EQ(cache.access(0x200, false, now, [&](Picos) { ++fills; }),
            AccessStatus::kMiss);
  EXPECT_EQ(cache.access(0x240, false, now, [&](Picos) { ++fills; }),
            AccessStatus::kMiss);
  EXPECT_EQ(backend.requests.size(), 1u) << "one fill for both waiters";
  backend.complete_all(500);
  EXPECT_EQ(fills, 2);
  EXPECT_EQ(stats.get("l1.mshr_merges"), 1u);
}

TEST_F(CacheFixture, MshrFullStalls) {
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(cache.access(i * 128, false, now, nullptr), AccessStatus::kMiss);
  }
  EXPECT_EQ(cache.access(9 * 128, false, now, nullptr),
            AccessStatus::kMshrFull);
  EXPECT_EQ(stats.get("l1.mshr_stalls"), 1u);
  backend.complete_all(100);
  EXPECT_EQ(cache.access(9 * 128, false, now, nullptr), AccessStatus::kMiss);
}

/// Line addresses that collide in one set under the XOR-hashed index.
std::vector<Addr> same_set_lines(u32 how_many) {
  auto hash = [](u64 n) { return (n ^ (n >> 4) ^ (n >> 8)) & 7; };
  std::vector<Addr> out;
  for (u64 n = 0; out.size() < how_many; ++n) {
    if (hash(n) == hash(0)) out.push_back(n * 128);
  }
  return out;
}

TEST_F(CacheFixture, DirtyEvictionWritesBack) {
  // Fill all 5 ways of one (hashed) set with writes, then force an eviction.
  const std::vector<Addr> lines = same_set_lines(6);
  for (u32 way = 0; way < 5; ++way) {
    cache.access(lines[way], true, now, nullptr);
  }
  backend.complete_all(10);
  backend.requests.clear();
  cache.access(lines[5], false, now, nullptr);
  backend.complete_all(20);  // installs, evicting the LRU dirty line
  ASSERT_FALSE(backend.requests.empty());
  EXPECT_TRUE(backend.requests.back().is_write);
  EXPECT_EQ(backend.requests.back().addr, lines[0]);
  EXPECT_EQ(stats.get("l1.writebacks"), 1u);
}

TEST_F(CacheFixture, LruVictimSelection) {
  const std::vector<Addr> lines = same_set_lines(6);
  for (u32 way = 0; way < 5; ++way) cache.access(lines[way], false, now, nullptr);
  backend.complete_all(10);
  // Touch lines[0] so lines[1] becomes LRU.
  cache.access(lines[0], false, now, nullptr);
  cache.access(lines[5], false, now, nullptr);
  backend.complete_all(20);
  EXPECT_EQ(cache.access(lines[0], false, now, nullptr), AccessStatus::kHit);
  EXPECT_EQ(cache.access(lines[1], false, now, nullptr), AccessStatus::kMiss)
      << "LRU way was evicted";
}

TEST_F(CacheFixture, HashedIndexSpreadsRowStridedStreams) {
  // Nine streams strided by one DRAM row (16 lines) — the interleaved
  // layout's field rows — must not all collide in one set.
  std::set<u64> sets;
  for (u32 f = 0; f < 9; ++f) {
    const u64 n = static_cast<u64>(f) * 16;
    sets.insert((n ^ (n >> 4) ^ (n >> 8)) & 7);
  }
  EXPECT_GE(sets.size(), 4u);
}

TEST_F(CacheFixture, PrefetchFillsLineAndCountsUsefulness) {
  cache.prefetch(0x800, now);
  EXPECT_EQ(stats.get("l1.prefetch_issued"), 1u);
  backend.complete_all(50);
  EXPECT_EQ(cache.access(0x800, false, now, nullptr), AccessStatus::kHit);
  EXPECT_EQ(stats.get("l1.prefetch_useful"), 1u);
}

TEST_F(CacheFixture, PrefetchDroppedWhenLineBusy) {
  cache.access(0x800, false, now, nullptr);
  cache.prefetch(0x800, now);  // already in flight: dropped
  EXPECT_EQ(stats.get("l1.prefetch_issued"), 0u);
  EXPECT_EQ(backend.requests.size(), 1u);
}

TEST_F(CacheFixture, DemandUpgradesPrefetchMshr) {
  cache.prefetch(0xa00, now);
  Picos filled = 0;
  EXPECT_EQ(cache.access(0xa00, false, now, [&](Picos at) { filled = at; }),
            AccessStatus::kMiss);
  backend.complete_all(300);
  EXPECT_GT(filled, 0u) << "waiter attached to in-flight prefetch";
}

TEST_F(CacheFixture, PumpRetriesAfterBackpressure) {
  backend.reject_next = 1;
  cache.access(0xc00, false, now, nullptr);
  EXPECT_TRUE(backend.requests.empty());
  cache.pump(now);
  EXPECT_EQ(backend.requests.size(), 1u);
  backend.complete_all(99);
  EXPECT_EQ(cache.access(0xc00, false, now, nullptr), AccessStatus::kHit);
}

TEST_F(CacheFixture, ActsAsBackendForUpstreamCache) {
  // Use the cache itself through the MemBackend interface.
  Picos done = 0;
  MemRequest req;
  req.addr = 0x1000;
  req.bytes = 128;
  req.on_complete = [&](Picos at) { done = at; };
  EXPECT_TRUE(cache.request(std::move(req), now));  // miss accepted
  backend.complete_all(400);
  EXPECT_GE(done, 400u);
  // Second time: hit completes immediately with +latency timestamp.
  Picos done2 = 0;
  MemRequest req2;
  req2.addr = 0x1000;
  req2.bytes = 128;
  req2.on_complete = [&](Picos at) { done2 = at; };
  EXPECT_TRUE(cache.request(std::move(req2), now));
  EXPECT_EQ(done2, now + cache.hit_latency_ps());
}

// --- StreamPrefetcher ---

TEST(StreamPrefetcher, DetectsUnitStride) {
  StreamPrefetcher pf(128, /*degree=*/2, /*distance=*/8);
  EXPECT_TRUE(pf.observe(0).empty());
  EXPECT_TRUE(pf.observe(128).empty()) << "confidence 1: not yet";
  const auto lines = pf.observe(256);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], 384u);
}

TEST(StreamPrefetcher, DetectsRowStride) {
  // SSMC core stream: one line per field row, stride 16 lines (2 KB / 128 B).
  StreamPrefetcher pf(128, 2, 8);
  pf.observe(0);
  pf.observe(2048);
  const auto lines = pf.observe(4096);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], 6144u);
}

TEST(StreamPrefetcher, RepeatedSameLineIsIgnored) {
  StreamPrefetcher pf(128, 2, 8);
  pf.observe(0);
  pf.observe(128);
  pf.observe(128);  // same line: keeps stream state
  const auto lines = pf.observe(256);
  EXPECT_FALSE(lines.empty());
}

TEST(StreamPrefetcher, StrideChangeResetsConfidence) {
  StreamPrefetcher pf(128, 2, 8);
  pf.observe(0);
  pf.observe(128);
  pf.observe(256);
  EXPECT_TRUE(pf.observe(10'000 * 128).empty()) << "new stream, no prefetch";
}

TEST(StreamPrefetcher, DoesNotReissueCoveredLines) {
  StreamPrefetcher pf(128, 4, 8);
  pf.observe(0);
  pf.observe(128);
  const auto first = pf.observe(256);
  const auto second = pf.observe(384);
  for (Addr a : second) {
    for (Addr b : first) EXPECT_NE(a, b) << "line prefetched twice";
  }
}

// --- SharedMemBanking ---

TEST(SharedMem, LanePrivateMappingIsConflictFree) {
  SharedMemBanking banks(32, BankMapping::kLanePrivate);
  std::vector<SharedMemBanking::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) {
    // Indirect accesses: arbitrary word offsets (data-dependent).
    accesses.push_back({lane, (lane * 37 % 256) * 4});
  }
  EXPECT_EQ(banks.conflict_cycles(accesses), 1u);
}

TEST(SharedMem, WordInterleavedConflictsSerialize) {
  SharedMemBanking banks(32, BankMapping::kWordInterleaved);
  std::vector<SharedMemBanking::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) {
    accesses.push_back({lane, 0});  // all lanes hit bank 0
  }
  EXPECT_EQ(banks.conflict_cycles(accesses), 32u);
}

TEST(SharedMem, WordInterleavedSequentialIsConflictFree) {
  SharedMemBanking banks(32, BankMapping::kWordInterleaved);
  std::vector<SharedMemBanking::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) accesses.push_back({lane, lane * 4});
  EXPECT_EQ(banks.conflict_cycles(accesses), 1u);
}

TEST(SharedMem, EmptyAccessListCostsNothing) {
  SharedMemBanking banks(32, BankMapping::kWordInterleaved);
  EXPECT_EQ(banks.conflict_cycles({}), 0u);
}

// --- LocalStore / DramImage ---

TEST(LocalStore, LoadStoreRoundTrip) {
  LocalStore store(4096);
  store.store(0, 42);
  store.store(4092, 7);
  EXPECT_EQ(store.load(0), 42u);
  EXPECT_EQ(store.load(4092), 7u);
  EXPECT_EQ(store.size_bytes(), 4096u);
}

TEST(LocalStore, AmoaddReturnsOldValue) {
  LocalStore store(64);
  store.store(8, 10);
  EXPECT_EQ(store.amoadd(8, 5), 10u);
  EXPECT_EQ(store.load(8), 15u);
  EXPECT_EQ(store.amoadd(8, 1), 15u);
}

TEST(LocalStore, FamoaddAccumulatesFloats) {
  LocalStore store(64);
  store.store_f32(4, 1.5f);
  u32 bits;
  float addend = 2.25f;
  std::memcpy(&bits, &addend, 4);
  store.famoadd(4, bits);
  EXPECT_FLOAT_EQ(store.load_f32(4), 3.75f);
}

TEST(LocalStoreDeathTest, OutOfBoundsAborts) {
  LocalStore store(64);
  EXPECT_DEATH(store.load(64), "out of bounds");
  EXPECT_DEATH(store.load(2), "unaligned");
}

TEST(DramImage, ReadWriteRoundTrip) {
  DramImage image(1024);
  image.write_u32(0, 0xdeadbeef);
  image.write_f32(4, 3.25f);
  EXPECT_EQ(image.read_u32(0), 0xdeadbeefu);
  EXPECT_FLOAT_EQ(image.read_f32(4), 3.25f);
  EXPECT_EQ(image.size(), 1024u);
}

TEST(DramImageDeathTest, BoundsChecked) {
  DramImage image(16);
  EXPECT_DEATH(image.read_u32(16), "bad DRAM read");
}

}  // namespace
}  // namespace mlp::mem
