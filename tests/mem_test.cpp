// Memory subsystem tests: address mapping, FR-FCFS controller timing and
// scheduling, cache hit/miss/MSHR/writeback behaviour, stream prefetcher,
// shared-memory banking, and the local store.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "common/config.hpp"
#include "common/error.hpp"
#include "mem/addrmap.hpp"
#include "mem/cache.hpp"
#include "mem/channels.hpp"
#include "mem/controller.hpp"
#include "mem/dram_image.hpp"
#include "mem/local_store.hpp"
#include "mem/prefetcher.hpp"
#include "mem/sharedmem.hpp"

namespace mlp::mem {
namespace {

DramConfig dram_cfg() {
  DramConfig cfg = MachineConfig::paper_defaults().dram;
  cfg.bus_efficiency = 1.0;  // exact-beat timing assertions below
  return cfg;
}

// --- AddressMap ---

TEST(AddressMap, DecodesRowBankColumn) {
  AddressMap map(dram_cfg());
  // Row 0 -> bank 0; row 1 -> bank 1 (row-interleaved banks).
  EXPECT_EQ(map.decode(0).bank, 0u);
  EXPECT_EQ(map.decode(0).row, 0u);
  EXPECT_EQ(map.decode(100).column, 100u);
  EXPECT_EQ(map.decode(2048).bank, 1u);
  EXPECT_EQ(map.decode(2048 * 4).bank, 0u);
  EXPECT_EQ(map.decode(2048 * 4).row, 1u);
  EXPECT_EQ(map.row_id(2048 * 5 + 17), 5u);
  EXPECT_EQ(map.row_base(5), 2048u * 5);
}

TEST(AddressMap, SequentialRowsAlternateBanks) {
  AddressMap map(dram_cfg());
  for (u64 r = 0; r + 1 < 64; ++r) {
    EXPECT_NE(map.decode(map.row_base(r)).bank,
              map.decode(map.row_base(r + 1)).bank);
  }
}

// --- MemoryController ---

struct ControllerFixture : ::testing::Test {
  ControllerFixture() : ctrl(dram_cfg(), "dram", &stats) {}

  // Push a read and run ticks until its callback fires; returns done time.
  Picos run_read(Addr addr, u32 bytes) {
    std::optional<Picos> done;
    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.on_complete = [&](Picos at) { done = at; };
    EXPECT_TRUE(ctrl.try_push(std::move(req), now));
    drain();
    EXPECT_TRUE(done.has_value());
    return *done;
  }

  void drain() {
    while (!ctrl.idle()) {
      ctrl.tick(now);
      now += period;
    }
  }

  StatSet stats;
  ChannelDemux ctrl;
  Picos now = 0;
  Picos period = dram_cfg().period_ps();
};

TEST_F(ControllerFixture, ColdReadPaysActivatePlusCasPlusTransfer) {
  const Picos done = run_read(0, 64);
  // tRCD(9) + tCAS(9) + 4 beats of 16B = 22 cycles.
  EXPECT_EQ(done, 22 * period);
  EXPECT_EQ(stats.get("dram.row_misses"), 1u);
  EXPECT_EQ(stats.get("dram.row_hits"), 0u);
}

TEST_F(ControllerFixture, RowHitSkipsActivation) {
  run_read(0, 64);
  const Picos start = now;
  const Picos done = run_read(64, 64);
  // tCAS(9) + 4 beats = 13 cycles from the scheduling tick. The scheduling
  // tick is the first tick at or after `start`.
  EXPECT_LE(done - start, 14 * period);
  EXPECT_EQ(stats.get("dram.row_hits"), 1u);
}

TEST_F(ControllerFixture, FullRowFetchOccupiesBusFor128Beats) {
  const Picos done = run_read(0, 2048);
  // tRCD + tCAS + 128 beats = 146 cycles.
  EXPECT_EQ(done, 146 * period);
  EXPECT_EQ(stats.get("dram.bytes"), 2048u);
}

TEST_F(ControllerFixture, RowMissAfterOpenRowPaysPrechargeToo) {
  run_read(0, 64);  // opens bank0 row0
  const Picos start = now;
  // Same bank (bank 0 holds rows 0, 4, 8...), different row.
  const Picos done = run_read(4 * 2048, 64);
  // tRP(9) + tRCD(9) + tCAS(9) + 4 beats = 31 cycles minimum (tRAS already
  // satisfied by the elapsed drain time).
  EXPECT_GE(done - start, 31 * period);
  EXPECT_EQ(stats.get("dram.row_misses"), 2u);
}

TEST_F(ControllerFixture, FrFcfsPrefersRowHitOverOlderMiss) {
  run_read(0, 64);  // opens bank0 row0
  // Queue: first a conflicting miss to bank0 row4, then a hit to row0.
  Picos miss_done = 0, hit_done = 0;
  MemRequest miss;
  miss.addr = 4 * 2048;
  miss.bytes = 64;
  miss.on_complete = [&](Picos at) { miss_done = at; };
  MemRequest hit;
  hit.addr = 128;
  hit.bytes = 64;
  hit.on_complete = [&](Picos at) { hit_done = at; };
  ASSERT_TRUE(ctrl.try_push(std::move(miss), now));
  ASSERT_TRUE(ctrl.try_push(std::move(hit), now));
  drain();
  EXPECT_LT(hit_done, miss_done);  // younger row-hit served first
}

TEST_F(ControllerFixture, QueueBackpressure) {
  // Fill the 16-deep window without ticking.
  for (u32 i = 0; i < ctrl.queue_capacity(); ++i) {
    MemRequest req;
    req.addr = i * 2048;
    req.bytes = 64;
    ASSERT_TRUE(ctrl.try_push(std::move(req), now));
  }
  MemRequest overflow;
  overflow.addr = 99 * 2048;
  overflow.bytes = 64;
  EXPECT_FALSE(ctrl.try_push(std::move(overflow), now));
  EXPECT_EQ(stats.get("dram.queue_rejections"), 1u);
  drain();  // must still drain cleanly
}

TEST_F(ControllerFixture, BankParallelismOverlapsActivations) {
  // Two cold reads to different banks finish sooner than two to the same
  // bank+row-conflict because activations overlap.
  Picos done_a = 0, done_b = 0;
  MemRequest a, b;
  a.addr = 0;        // bank 0
  a.bytes = 2048;
  a.on_complete = [&](Picos at) { done_a = at; };
  b.addr = 2048;     // bank 1
  b.bytes = 2048;
  b.on_complete = [&](Picos at) { done_b = at; };
  ASSERT_TRUE(ctrl.try_push(std::move(a), now));
  ASSERT_TRUE(ctrl.try_push(std::move(b), now));
  drain();
  // B's activation overlaps A's transfer: B completes one transfer-time
  // after A (plus nothing else), i.e. well before 2x A's latency.
  EXPECT_EQ(done_a, 146 * period);
  EXPECT_LE(done_b, done_a + 129 * period);
  EXPECT_EQ(stats.get("dram.reads"), 2u);
}

TEST_F(ControllerFixture, RejectsRowStraddlingRequest) {
  MemRequest req;
  req.addr = 2048 - 64;
  req.bytes = 128;  // crosses into the next row
  EXPECT_THROW(ctrl.try_push(std::move(req), now), SimError);
}

// --- AddressMap: mapping grammar (typed SimError("config") contracts) ---

DramConfig mapped_cfg(const std::string& mapping, u32 channels = 1,
                      u32 ranks = 1) {
  DramConfig cfg = dram_cfg();
  cfg.mapping = mapping;
  cfg.channels = channels;
  cfg.ranks = ranks;
  return cfg;
}

TEST(AddressMapGrammar, UnknownFieldThrowsTypedConfigError) {
  try {
    AddressMap map(mapped_cfg("row:flib:col"));
    FAIL() << "unknown field accepted";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "config");
    EXPECT_NE(std::string(e.what()).find("flib"), std::string::npos);
  }
}

TEST(AddressMapGrammar, DuplicateFieldThrows) {
  EXPECT_THROW(AddressMap map(mapped_cfg("row:bank:bank:col")), SimError);
}

TEST(AddressMapGrammar, EmptyFieldThrows) {
  EXPECT_THROW(AddressMap map(mapped_cfg("row::col")), SimError);
}

TEST(AddressMapGrammar, MissingColumnThrows) {
  EXPECT_THROW(AddressMap map(mapped_cfg("row:bank")), SimError);
}

TEST(AddressMapGrammar, RowMustLead) {
  EXPECT_THROW(AddressMap map(mapped_cfg("bank:row:col")), SimError);
}

TEST(AddressMapGrammar, ZeroWidthFieldThrows) {
  // banks = 4 but 'bank' absent: every address would decode to bank 0.
  EXPECT_THROW(AddressMap map(mapped_cfg("row:col")), SimError);
  // channels = 2 but 'channel' absent.
  EXPECT_THROW(AddressMap map(mapped_cfg("row:bank:col", /*channels=*/2)),
               SimError);
}

TEST(AddressMapGrammar, DimensionOneFieldsMayBeOmittedOrPresent) {
  // rank/channel count 1: both spellings are valid and equivalent.
  AddressMap omitted(mapped_cfg("row:bank:col"));
  AddressMap spelled(mapped_cfg("row:rank:bank:channel:col"));
  for (const Addr addr : {u64{0}, u64{4096}, u64{123456}}) {
    EXPECT_EQ(omitted.decode(addr).bank, spelled.decode(addr).bank);
    EXPECT_EQ(omitted.decode(addr).row, spelled.decode(addr).row);
  }
}

TEST(AddressMapGrammar, CheckGrammarIsGeometryIndependent) {
  // Grammar violations throw...
  EXPECT_THROW(AddressMap::check_grammar("row:flib:col"), SimError);
  EXPECT_THROW(AddressMap::check_grammar("col:row"), SimError);
  EXPECT_THROW(AddressMap::check_grammar("row:bank:bank:col"), SimError);
  // ...but zero-width checks need the geometry and pass here.
  EXPECT_NO_THROW(AddressMap::check_grammar("row:col"));
  EXPECT_NO_THROW(AddressMap::check_grammar("row:rank:bank:channel:col"));
}

TEST(AddressMap, DefaultMappingReproducesLegacyInterleave) {
  // The default "row:bank:col" must decode exactly like the pre-hierarchy
  // fixed interleave: bank = rowId % banks, row = rowId / banks.
  const DramConfig cfg = dram_cfg();
  AddressMap map(cfg);
  for (Addr addr = 0; addr < 64 * cfg.row_bytes; addr += 97) {
    const DramCoord coord = map.decode(addr);
    const u64 row_id = addr / cfg.row_bytes;
    EXPECT_EQ(coord.bank, row_id % cfg.banks);
    EXPECT_EQ(coord.row, row_id / cfg.banks);
    EXPECT_EQ(coord.column, addr % cfg.row_bytes);
    EXPECT_EQ(coord.channel, 0u);
    EXPECT_EQ(coord.rank, 0u);
    EXPECT_EQ(map.encode(coord), addr);
  }
  EXPECT_EQ(map.stripes(), 1u);
}

TEST(AddressMap, SubRowFieldsStripeOneBlock) {
  // channel below col: a contiguous row-sized block fans out across both
  // channels at matching columns.
  AddressMap map(mapped_cfg("row:bank:col:channel", /*channels=*/2));
  EXPECT_EQ(map.stripes(), 2u);
  const DramCoord base = map.decode(0);
  const DramCoord s0 = map.stripe_coord(base, 0);
  const DramCoord s1 = map.stripe_coord(base, 1);
  EXPECT_EQ(s0.channel, 0u);
  EXPECT_EQ(s1.channel, 1u);
  EXPECT_EQ(map.stripe_index(s0), 0u);
  EXPECT_EQ(map.stripe_index(s1), 1u);
}

// --- Page-policy / refresh spec grammar ---

TEST(DramSpecs, PagePolicyParsesAndRejects) {
  EXPECT_TRUE(parse_page_policy("open").open_page());
  const PagePolicy closed = parse_page_policy("closed");
  EXPECT_EQ(closed.max_row_hits, 1u);
  const PagePolicy tuned = parse_page_policy("open:idle=500:hits=8");
  EXPECT_EQ(tuned.max_row_idle, 500u);
  EXPECT_EQ(tuned.max_row_hits, 8u);
  for (const char* bad :
       {"", "open!", "open:idle=", "open:idle=abc", "open:bogus=1",
        "closed:idle=5", "open:idle=1:idle=2"}) {
    try {
      (void)parse_page_policy(bad);
      FAIL() << "accepted " << bad;
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), "config") << bad;
    }
  }
}

TEST(DramSpecs, RefreshParsesAndRejects) {
  EXPECT_FALSE(parse_refresh("off").enabled);
  const RefreshSpec on = parse_refresh("on");
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.t_refi, 4680u);
  EXPECT_EQ(on.t_rfc, 192u);
  EXPECT_EQ(on.max_postponed, 8u);
  const RefreshSpec tuned = parse_refresh("on:trefi=100:trfc=10:postpone=2");
  EXPECT_EQ(tuned.t_refi, 100u);
  EXPECT_EQ(tuned.t_rfc, 10u);
  EXPECT_EQ(tuned.max_postponed, 2u);
  for (const char* bad :
       {"", "maybe", "off:trefi=5", "on:trefi=abc", "on:trfc=0",
        "on:trefi=10:trfc=20", "on:postpone=0", "on:bogus=1"}) {
    try {
      (void)parse_refresh(bad);
      FAIL() << "accepted " << bad;
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), "config") << bad;
    }
  }
}

// --- Page policy timing (per-bank open/closed state machine) ---

struct PolicyFixture : ::testing::Test {
  void build(const std::string& page_policy) {
    DramConfig cfg = dram_cfg();
    cfg.page_policy = page_policy;
    ctrl.emplace(cfg, "dram", &stats);
  }

  Picos run_read(Addr addr, u32 bytes) {
    std::optional<Picos> done;
    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.on_complete = [&](Picos at) { done = at; };
    EXPECT_TRUE(ctrl->try_push(std::move(req), now));
    while (!ctrl->idle()) {
      ctrl->tick(now);
      now += period;
    }
    EXPECT_TRUE(done.has_value());
    return *done;
  }

  StatSet stats;
  std::optional<ChannelDemux> ctrl;
  Picos now = 0;
  Picos period = dram_cfg().period_ps();
};

TEST_F(PolicyFixture, ClosedPagePrechargesAfterEveryAccess) {
  build("closed");
  run_read(0, 64);
  run_read(64, 64);  // same row: open-page would hit
  EXPECT_EQ(stats.get("dram.row_misses"), 2u);
  EXPECT_EQ(stats.get("dram.row_hits"), 0u);
  EXPECT_EQ(stats.get("dram.explicit_precharges"), 2u);
}

TEST_F(PolicyFixture, HitStreakCapClosesTheRow) {
  build("open:hits=2");
  run_read(0, 64);    // miss, streak 1
  run_read(64, 64);   // hit, streak 2 -> autoprecharge
  run_read(128, 64);  // miss again
  EXPECT_EQ(stats.get("dram.row_misses"), 2u);
  EXPECT_EQ(stats.get("dram.row_hits"), 1u);
  EXPECT_EQ(stats.get("dram.explicit_precharges"), 1u);
}

TEST_F(PolicyFixture, IdleTimeoutClosesTheRow) {
  build("open:idle=50");
  run_read(0, 64);
  EXPECT_EQ(stats.get("dram.explicit_precharges"), 0u);
  // Tick past the idle deadline with no demand: the bank closes on its own.
  for (int i = 0; i < 60; ++i) {
    ctrl->tick(now);
    now += period;
  }
  EXPECT_EQ(stats.get("dram.explicit_precharges"), 1u);
  run_read(64, 64);  // the closed row must re-activate
  EXPECT_EQ(stats.get("dram.row_misses"), 2u);
  EXPECT_EQ(stats.get("dram.row_hits"), 0u);
}

TEST_F(PolicyFixture, IdleDeadlineAppearsInNextEvent) {
  build("open:idle=50");
  run_read(0, 64);
  // The controller must advertise the pending closure so the kernel's
  // fast-forward cannot skip it.
  const Picos at = ctrl->next_event(now);
  ASSERT_NE(at, sim::kNoEvent);
  EXPECT_GE(at, now);
  EXPECT_LE(at, now + 51 * period);
}

// --- Refresh scheduling ---

struct RefreshFixture : ::testing::Test {
  void build(const std::string& refresh, u32 ranks = 1) {
    DramConfig cfg = dram_cfg();
    cfg.refresh = refresh;
    cfg.ranks = ranks;
    cfg.mapping = ranks > 1 ? "row:rank:bank:col" : "row:bank:col";
    period = cfg.period_ps();
    ctrl.emplace(cfg, "dram", &stats);
  }

  StatSet stats;
  std::optional<ChannelDemux> ctrl;
  Picos period = 0;
};

TEST_F(RefreshFixture, IdleRankFollowsTrefiCadenceExactly) {
  build("on:trefi=100:trfc=10");
  for (u64 c = 0; c <= 1000; ++c) ctrl->tick(c * period);
  // Closed form: one refresh per elapsed tREFI, none postponed while idle.
  EXPECT_EQ(stats.get("dram.refreshes"), 10u);
  EXPECT_EQ(stats.get("dram.refresh_stall_ps"), 0u)
      << "idle refreshes are not interference";
  EXPECT_EQ(ctrl->refresh_debt(), 0u);
}

TEST_F(RefreshFixture, EveryRankRefreshesIndependently) {
  build("on:trefi=100:trfc=10", /*ranks=*/2);
  for (u64 c = 0; c <= 500; ++c) ctrl->tick(c * period);
  EXPECT_EQ(stats.get("dram.refreshes"), 2u * 5u);
}

TEST_F(RefreshFixture, DemandPostponesUpToTheDebtWindow) {
  build("on:trefi=20:trfc=5:postpone=2");
  u32 completed = 0;
  u64 max_debt = 0;
  for (u64 c = 0; c < 400; ++c) {
    const Picos now = c * period;
    if (ctrl->queue_size() < ctrl->queue_capacity()) {
      MemRequest req;
      req.addr = 0;  // a hot row: demand always queued for rank 0
      req.bytes = 64;
      req.on_complete = [&](Picos) { ++completed; };
      ctrl->try_push(std::move(req), now);
    }
    ctrl->tick(now);
    max_debt = std::max(max_debt, ctrl->refresh_debt());
  }
  EXPECT_GT(completed, 0u) << "demand still drains between refreshes";
  EXPECT_GT(stats.get("dram.refreshes"), 3u);
  EXPECT_GT(stats.get("dram.refresh_stall_ps"), 0u)
      << "refreshes behind queued demand count as interference";
  // At the cap demand is blocked, but the transfer already in flight still
  // has to drain before REF can issue; with this deliberately tiny tREFI
  // (20 cycles vs a ~22-cycle row-miss access) one accrual edge can pass
  // during that drain. Real tREFI (4680 cycles) dwarfs any single transfer,
  // so the window is effectively hard there.
  EXPECT_LE(max_debt, 3u) << "debt may overshoot the cap by at most the "
                             "one in-flight transfer";
}

TEST_F(RefreshFixture, RefreshCursorAppearsInNextEvent) {
  build("on:trefi=100:trfc=10");
  const Picos at = ctrl->next_event(0);
  ASSERT_NE(at, sim::kNoEvent);
  EXPECT_EQ(at, 100 * period) << "the accrual edge is observable";
}

// --- Channel demux: routing, striping, conditional counters ---

TEST(ChannelDemux, DefaultConfigRegistersOnlyLegacyCounters) {
  StatSet stats;
  ChannelDemux ctrl(dram_cfg(), "dram", &stats);
  EXPECT_TRUE(stats.has("dram.reads"));
  EXPECT_TRUE(stats.has("dram.bytes"));
  // Feature counters join the set only when their feature is on, keeping
  // default stats dumps bit-identical with the pre-hierarchy model.
  EXPECT_FALSE(stats.has("dram.refreshes"));
  EXPECT_FALSE(stats.has("dram.refresh_stall_ps"));
  EXPECT_FALSE(stats.has("dram.explicit_precharges"));
  EXPECT_FALSE(stats.has("dram.ch0.bytes"));
}

struct DemuxFixture : ::testing::Test {
  void build(const std::string& mapping, u32 channels) {
    DramConfig cfg = dram_cfg();
    cfg.mapping = mapping;
    cfg.channels = channels;
    period = cfg.period_ps();
    ctrl.emplace(cfg, "dram", &stats);
  }

  Picos run_read(Addr addr, u32 bytes) {
    std::optional<Picos> done;
    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.on_complete = [&](Picos at) { done = at; };
    EXPECT_TRUE(ctrl->try_push(std::move(req), now));
    while (!ctrl->idle()) {
      ctrl->tick(now);
      now += period;
    }
    EXPECT_TRUE(done.has_value());
    return *done;
  }

  StatSet stats;
  std::optional<ChannelDemux> ctrl;
  Picos now = 0;
  Picos period = 0;
};

TEST_F(DemuxFixture, CoarseMappingRoutesWholeRequestsPerChannel) {
  build("row:bank:channel:col", /*channels=*/2);
  run_read(0, 2048);     // channel bit (just above col) = 0
  run_read(2048, 2048);  // = 1
  EXPECT_EQ(stats.get("dram.bytes"), 4096u);
  EXPECT_EQ(stats.get("dram.ch0.bytes"), 2048u);
  EXPECT_EQ(stats.get("dram.ch1.bytes"), 2048u);
  EXPECT_EQ(stats.get("dram.reads"), 2u);
}

TEST_F(DemuxFixture, SubRowMappingFansOneRequestAcrossChannels) {
  build("row:bank:col:channel", /*channels=*/2);
  run_read(0, 2048);  // one contiguous block -> two 1024 B stripes
  EXPECT_EQ(stats.get("dram.bytes"), 2048u);
  EXPECT_EQ(stats.get("dram.ch0.bytes"), 1024u);
  EXPECT_EQ(stats.get("dram.ch1.bytes"), 1024u);
  EXPECT_EQ(stats.get("dram.reads"), 2u) << "one read per stripe";
}

TEST_F(DemuxFixture, StripedCompletionFiresOnceAtTheLatestStripe) {
  build("row:bank:col:channel", /*channels=*/2);
  u32 completions = 0;
  MemRequest req;
  req.addr = 0;
  req.bytes = 2048;
  req.on_complete = [&](Picos) { ++completions; };
  ASSERT_TRUE(ctrl->try_push(std::move(req), now));
  while (!ctrl->idle()) {
    ctrl->tick(now);
    now += period;
  }
  EXPECT_EQ(completions, 1u);
}

TEST_F(DemuxFixture, ChannelParallelismBeatsSingleChannel) {
  // The same four-row stream, coarse-interleaved across 2 channels, finishes
  // sooner than on one channel: transfers overlap on independent buses.
  auto stream_time = [](u32 channels) {
    DramConfig cfg = dram_cfg();
    cfg.channels = channels;
    cfg.mapping = channels > 1 ? "row:bank:channel:col" : "row:bank:col";
    StatSet stats;
    ChannelDemux ctrl(cfg, "dram", &stats);
    Picos now = 0;
    const Picos period = cfg.period_ps();
    for (u32 r = 0; r < 4; ++r) {
      MemRequest req;
      req.addr = static_cast<Addr>(r) * cfg.row_bytes;
      req.bytes = cfg.row_bytes;
      EXPECT_TRUE(ctrl.try_push(std::move(req), now));
    }
    while (!ctrl.idle()) {
      ctrl.tick(now);
      now += period;
    }
    return now;
  };
  EXPECT_LT(stream_time(2), stream_time(1));
}

// --- Cache ---

/// Scripted backend: records requests; test completes them explicitly.
class FakeBackend : public MemBackend {
 public:
  bool request(MemRequest request, Picos) override {
    if (reject_next > 0) {
      --reject_next;
      return false;
    }
    requests.push_back(std::move(request));
    return true;
  }

  void complete_all(Picos at) {
    auto batch = std::move(requests);
    requests.clear();
    for (MemRequest& r : batch) {
      if (r.on_complete) r.on_complete(at);
    }
  }

  std::vector<MemRequest> requests;
  int reject_next = 0;
};

struct CacheFixture : ::testing::Test {
  CacheFixture()
      : cache("l1", 5 * 1024, 128, 5, 8, /*hit_latency_ps=*/2858, &backend,
              &stats) {}

  FakeBackend backend;
  StatSet stats;
  Cache cache;
  Picos now = 0;
};

TEST_F(CacheFixture, MissThenHit) {
  Picos filled = 0;
  EXPECT_EQ(cache.access(0x100, false, now, [&](Picos at) { filled = at; }),
            AccessStatus::kMiss);
  ASSERT_EQ(backend.requests.size(), 1u);
  EXPECT_EQ(backend.requests[0].addr, 0x100u);
  EXPECT_EQ(backend.requests[0].bytes, 128u);
  backend.complete_all(1000);
  EXPECT_EQ(filled, 1000u + cache.hit_latency_ps());
  EXPECT_EQ(cache.access(0x100, false, now, nullptr), AccessStatus::kHit);
  EXPECT_EQ(cache.access(0x17c, false, now, nullptr), AccessStatus::kHit)
      << "same line";
  EXPECT_EQ(stats.get("l1.hits"), 2u);
  EXPECT_EQ(stats.get("l1.misses"), 1u);
}

TEST_F(CacheFixture, MshrMergesSameLine) {
  int fills = 0;
  EXPECT_EQ(cache.access(0x200, false, now, [&](Picos) { ++fills; }),
            AccessStatus::kMiss);
  EXPECT_EQ(cache.access(0x240, false, now, [&](Picos) { ++fills; }),
            AccessStatus::kMiss);
  EXPECT_EQ(backend.requests.size(), 1u) << "one fill for both waiters";
  backend.complete_all(500);
  EXPECT_EQ(fills, 2);
  EXPECT_EQ(stats.get("l1.mshr_merges"), 1u);
}

TEST_F(CacheFixture, MshrFullStalls) {
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(cache.access(i * 128, false, now, nullptr), AccessStatus::kMiss);
  }
  EXPECT_EQ(cache.access(9 * 128, false, now, nullptr),
            AccessStatus::kMshrFull);
  EXPECT_EQ(stats.get("l1.mshr_stalls"), 1u);
  backend.complete_all(100);
  EXPECT_EQ(cache.access(9 * 128, false, now, nullptr), AccessStatus::kMiss);
}

/// Line addresses that collide in one set under the XOR-hashed index.
std::vector<Addr> same_set_lines(u32 how_many) {
  auto hash = [](u64 n) { return (n ^ (n >> 4) ^ (n >> 8)) & 7; };
  std::vector<Addr> out;
  for (u64 n = 0; out.size() < how_many; ++n) {
    if (hash(n) == hash(0)) out.push_back(n * 128);
  }
  return out;
}

TEST_F(CacheFixture, DirtyEvictionWritesBack) {
  // Fill all 5 ways of one (hashed) set with writes, then force an eviction.
  const std::vector<Addr> lines = same_set_lines(6);
  for (u32 way = 0; way < 5; ++way) {
    cache.access(lines[way], true, now, nullptr);
  }
  backend.complete_all(10);
  backend.requests.clear();
  cache.access(lines[5], false, now, nullptr);
  backend.complete_all(20);  // installs, evicting the LRU dirty line
  ASSERT_FALSE(backend.requests.empty());
  EXPECT_TRUE(backend.requests.back().is_write);
  EXPECT_EQ(backend.requests.back().addr, lines[0]);
  EXPECT_EQ(stats.get("l1.writebacks"), 1u);
}

TEST_F(CacheFixture, LruVictimSelection) {
  const std::vector<Addr> lines = same_set_lines(6);
  for (u32 way = 0; way < 5; ++way) cache.access(lines[way], false, now, nullptr);
  backend.complete_all(10);
  // Touch lines[0] so lines[1] becomes LRU.
  cache.access(lines[0], false, now, nullptr);
  cache.access(lines[5], false, now, nullptr);
  backend.complete_all(20);
  EXPECT_EQ(cache.access(lines[0], false, now, nullptr), AccessStatus::kHit);
  EXPECT_EQ(cache.access(lines[1], false, now, nullptr), AccessStatus::kMiss)
      << "LRU way was evicted";
}

TEST_F(CacheFixture, HashedIndexSpreadsRowStridedStreams) {
  // Nine streams strided by one DRAM row (16 lines) — the interleaved
  // layout's field rows — must not all collide in one set.
  std::set<u64> sets;
  for (u32 f = 0; f < 9; ++f) {
    const u64 n = static_cast<u64>(f) * 16;
    sets.insert((n ^ (n >> 4) ^ (n >> 8)) & 7);
  }
  EXPECT_GE(sets.size(), 4u);
}

TEST_F(CacheFixture, PrefetchFillsLineAndCountsUsefulness) {
  cache.prefetch(0x800, now);
  EXPECT_EQ(stats.get("l1.prefetch_issued"), 1u);
  backend.complete_all(50);
  EXPECT_EQ(cache.access(0x800, false, now, nullptr), AccessStatus::kHit);
  EXPECT_EQ(stats.get("l1.prefetch_useful"), 1u);
}

TEST_F(CacheFixture, PrefetchDroppedWhenLineBusy) {
  cache.access(0x800, false, now, nullptr);
  cache.prefetch(0x800, now);  // already in flight: dropped
  EXPECT_EQ(stats.get("l1.prefetch_issued"), 0u);
  EXPECT_EQ(backend.requests.size(), 1u);
}

TEST_F(CacheFixture, DemandUpgradesPrefetchMshr) {
  cache.prefetch(0xa00, now);
  Picos filled = 0;
  EXPECT_EQ(cache.access(0xa00, false, now, [&](Picos at) { filled = at; }),
            AccessStatus::kMiss);
  backend.complete_all(300);
  EXPECT_GT(filled, 0u) << "waiter attached to in-flight prefetch";
}

TEST_F(CacheFixture, PumpRetriesAfterBackpressure) {
  backend.reject_next = 1;
  cache.access(0xc00, false, now, nullptr);
  EXPECT_TRUE(backend.requests.empty());
  cache.pump(now);
  EXPECT_EQ(backend.requests.size(), 1u);
  backend.complete_all(99);
  EXPECT_EQ(cache.access(0xc00, false, now, nullptr), AccessStatus::kHit);
}

TEST_F(CacheFixture, ActsAsBackendForUpstreamCache) {
  // Use the cache itself through the MemBackend interface.
  Picos done = 0;
  MemRequest req;
  req.addr = 0x1000;
  req.bytes = 128;
  req.on_complete = [&](Picos at) { done = at; };
  EXPECT_TRUE(cache.request(std::move(req), now));  // miss accepted
  backend.complete_all(400);
  EXPECT_GE(done, 400u);
  // Second time: hit completes immediately with +latency timestamp.
  Picos done2 = 0;
  MemRequest req2;
  req2.addr = 0x1000;
  req2.bytes = 128;
  req2.on_complete = [&](Picos at) { done2 = at; };
  EXPECT_TRUE(cache.request(std::move(req2), now));
  EXPECT_EQ(done2, now + cache.hit_latency_ps());
}

// --- StreamPrefetcher ---

TEST(StreamPrefetcher, DetectsUnitStride) {
  StreamPrefetcher pf(128, /*degree=*/2, /*distance=*/8);
  EXPECT_TRUE(pf.observe(0).empty());
  EXPECT_TRUE(pf.observe(128).empty()) << "confidence 1: not yet";
  const auto lines = pf.observe(256);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], 384u);
}

TEST(StreamPrefetcher, DetectsRowStride) {
  // SSMC core stream: one line per field row, stride 16 lines (2 KB / 128 B).
  StreamPrefetcher pf(128, 2, 8);
  pf.observe(0);
  pf.observe(2048);
  const auto lines = pf.observe(4096);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], 6144u);
}

TEST(StreamPrefetcher, RepeatedSameLineIsIgnored) {
  StreamPrefetcher pf(128, 2, 8);
  pf.observe(0);
  pf.observe(128);
  pf.observe(128);  // same line: keeps stream state
  const auto lines = pf.observe(256);
  EXPECT_FALSE(lines.empty());
}

TEST(StreamPrefetcher, StrideChangeResetsConfidence) {
  StreamPrefetcher pf(128, 2, 8);
  pf.observe(0);
  pf.observe(128);
  pf.observe(256);
  EXPECT_TRUE(pf.observe(10'000 * 128).empty()) << "new stream, no prefetch";
}

TEST(StreamPrefetcher, DoesNotReissueCoveredLines) {
  StreamPrefetcher pf(128, 4, 8);
  pf.observe(0);
  pf.observe(128);
  const auto first = pf.observe(256);
  const auto second = pf.observe(384);
  for (Addr a : second) {
    for (Addr b : first) EXPECT_NE(a, b) << "line prefetched twice";
  }
}

// --- SharedMemBanking ---

TEST(SharedMem, LanePrivateMappingIsConflictFree) {
  SharedMemBanking banks(32, BankMapping::kLanePrivate);
  std::vector<SharedMemBanking::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) {
    // Indirect accesses: arbitrary word offsets (data-dependent).
    accesses.push_back({lane, (lane * 37 % 256) * 4});
  }
  EXPECT_EQ(banks.conflict_cycles(accesses), 1u);
}

TEST(SharedMem, WordInterleavedConflictsSerialize) {
  SharedMemBanking banks(32, BankMapping::kWordInterleaved);
  std::vector<SharedMemBanking::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) {
    accesses.push_back({lane, 0});  // all lanes hit bank 0
  }
  EXPECT_EQ(banks.conflict_cycles(accesses), 32u);
}

TEST(SharedMem, WordInterleavedSequentialIsConflictFree) {
  SharedMemBanking banks(32, BankMapping::kWordInterleaved);
  std::vector<SharedMemBanking::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) accesses.push_back({lane, lane * 4});
  EXPECT_EQ(banks.conflict_cycles(accesses), 1u);
}

TEST(SharedMem, EmptyAccessListCostsNothing) {
  SharedMemBanking banks(32, BankMapping::kWordInterleaved);
  EXPECT_EQ(banks.conflict_cycles({}), 0u);
}

// --- LocalStore / DramImage ---

TEST(LocalStore, LoadStoreRoundTrip) {
  LocalStore store(4096);
  store.store(0, 42);
  store.store(4092, 7);
  EXPECT_EQ(store.load(0), 42u);
  EXPECT_EQ(store.load(4092), 7u);
  EXPECT_EQ(store.size_bytes(), 4096u);
}

TEST(LocalStore, AmoaddReturnsOldValue) {
  LocalStore store(64);
  store.store(8, 10);
  EXPECT_EQ(store.amoadd(8, 5), 10u);
  EXPECT_EQ(store.load(8), 15u);
  EXPECT_EQ(store.amoadd(8, 1), 15u);
}

TEST(LocalStore, FamoaddAccumulatesFloats) {
  LocalStore store(64);
  store.store_f32(4, 1.5f);
  u32 bits;
  float addend = 2.25f;
  std::memcpy(&bits, &addend, 4);
  store.famoadd(4, bits);
  EXPECT_FLOAT_EQ(store.load_f32(4), 3.75f);
}

TEST(LocalStoreDeathTest, OutOfBoundsAborts) {
  LocalStore store(64);
  EXPECT_DEATH(store.load(64), "out of bounds");
  EXPECT_DEATH(store.load(2), "unaligned");
}

TEST(DramImage, ReadWriteRoundTrip) {
  DramImage image(1024);
  image.write_u32(0, 0xdeadbeef);
  image.write_f32(4, 3.25f);
  EXPECT_EQ(image.read_u32(0), 0xdeadbeefu);
  EXPECT_FLOAT_EQ(image.read_f32(4), 3.25f);
  EXPECT_EQ(image.size(), 1024u);
}

TEST(DramImageDeathTest, BoundsChecked) {
  DramImage image(16);
  EXPECT_DEATH(image.read_u32(16), "bad DRAM read");
}

}  // namespace
}  // namespace mlp::mem
