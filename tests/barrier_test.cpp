// Tests for the processor-wide software barrier (`bar`) used by the
// Section IV-C record-granularity-barrier ablation: the Barrier component,
// corelet synchronization semantics, deadlock-freedom under uneven halts,
// and end-to-end correctness of barrier-compiled kernels.

#include <gtest/gtest.h>

#include "arch/system.hpp"
#include "core/barrier.hpp"
#include "core/corelet.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"

namespace mlp::core {
namespace {

TEST(Barrier, LastArrivalReleasesAll) {
  Barrier barrier(3);
  int released = 0;
  auto wake = [&](Picos) { ++released; };
  EXPECT_EQ(barrier.arrive(0, 10, wake).status, PortStatus::kPending);
  EXPECT_EQ(barrier.arrive(0, 10, wake).status, PortStatus::kPending);
  EXPECT_EQ(released, 0);
  const PortResult last = barrier.arrive(100, 10, wake);
  EXPECT_EQ(last.status, PortStatus::kDone);
  EXPECT_EQ(last.ready_at, 110u);
  EXPECT_EQ(released, 2);
  EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(Barrier, ReusableAcrossEpisodes) {
  Barrier barrier(2);
  int released = 0;
  auto wake = [&](Picos) { ++released; };
  for (int episode = 0; episode < 5; ++episode) {
    barrier.arrive(0, 1, wake);
    barrier.arrive(0, 1, wake);
  }
  EXPECT_EQ(barrier.episodes(), 5u);
  EXPECT_EQ(released, 5);
}

TEST(Barrier, HaltedThreadDeregistersAndReleases) {
  Barrier barrier(3);
  int released = 0;
  barrier.arrive(0, 1, [&](Picos) { ++released; });
  barrier.arrive(0, 1, [&](Picos) { ++released; });
  // The third thread halts instead of arriving: barrier must release.
  barrier.deregister(0, 1);
  EXPECT_EQ(released, 2);
  EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(BarrierPort, SynchronizesCoreletContexts) {
  // Context 0 does extra work before the barrier; all contexts must leave
  // the barrier together.
  isa::Program program = isa::must_assemble("bar_test", R"(
    csrr r1, CTX
    bne  r1, r0, at_bar
    li   r2, 0
    li   r3, 200
spin:
    addi r2, r2, 1
    blt  r2, r3, spin
at_bar:
    bar
    halt
  )");
  CoreConfig cfg;
  cfg.contexts = 4;
  mem::LocalStore local(1024);
  mem::DramImage dram(1024);
  struct Nop : GlobalPort {
    PortResult load(u32, u32, Addr, Picos now,
                    std::function<void(Picos)>) override {
      return {PortStatus::kDone, now};
    }
  } nop;
  BarrierPort port(&nop, cfg.contexts);
  ExecStats stats;
  Corelet corelet(0, cfg, &program, &local, &dram, &port, &stats);
  for (u32 x = 0; x < 4; ++x) {
    corelet.context(x).csr.set(isa::Csr::kCtx, x);
  }
  Picos now = 0;
  u64 guard = 0;
  bool waiters_seen = false;
  while (!corelet.halted()) {
    ASSERT_LT(++guard, 100000u) << "barrier deadlock";
    corelet.tick(now, 1000);
    waiters_seen |= port.state().waiting() > 0;
    now += 1000;
  }
  EXPECT_TRUE(waiters_seen) << "fast contexts must have waited";
  EXPECT_EQ(port.state().episodes(), 1u);
}

TEST(BarrierPort, UnevenHaltsDoNotDeadlock) {
  // Context 0 halts immediately; the rest synchronize twice.
  isa::Program program = isa::must_assemble("bar_halt", R"(
    csrr r1, CTX
    beq  r1, r0, out
    bar
    bar
out:
    halt
  )");
  CoreConfig cfg;
  cfg.contexts = 4;
  mem::LocalStore local(64);
  mem::DramImage dram(64);
  struct Nop : GlobalPort {
    PortResult load(u32, u32, Addr, Picos now,
                    std::function<void(Picos)>) override {
      return {PortStatus::kDone, now};
    }
  } nop;
  BarrierPort port(&nop, cfg.contexts);
  ExecStats stats;
  Corelet corelet(0, cfg, &program, &local, &dram, &port, &stats);
  for (u32 x = 0; x < 4; ++x) corelet.context(x).csr.set(isa::Csr::kCtx, x);
  Picos now = 0;
  u64 guard = 0;
  while (!corelet.halted()) {
    ASSERT_LT(++guard, 100000u) << "deadlock after context halt";
    corelet.tick(now, 1000);
    now += 1000;
  }
  EXPECT_EQ(port.state().episodes(), 2u);
}

TEST(BarrierIsa, AssemblesAndClassifies) {
  isa::Program p = isa::must_assemble("b", "bar\nhalt\n");
  EXPECT_EQ(p.at(0).op, isa::Opcode::kBar);
  EXPECT_EQ(classify(p.at(0)), StepKind::kBarrier);
  EXPECT_EQ(isa::decode(isa::encode(p.at(0))), p.at(0));
}

TEST(BarrierWorkload, KernelsWithRecordBarriersStayCorrect) {
  workloads::WorkloadParams params;
  params.num_records = 2000;  // tail group exercises guarded barriers
  params.record_barrier = true;
  for (const char* name : {"count", "nbayes"}) {
    const workloads::Workload wl = workloads::make_bmla(name, params);
    // The binary must actually contain barriers.
    bool has_bar = false;
    for (const auto& in : wl.program.instrs()) {
      has_bar |= in.op == isa::Opcode::kBar;
    }
    EXPECT_TRUE(has_bar) << name;
    const arch::RunResult r = arch::run_arch(
        arch::ArchKind::kMillipedeNoFlowControl,
        MachineConfig::paper_defaults(), wl);
    EXPECT_EQ(r.verification, "") << name;
  }
}

TEST(BarrierWorkload, BarriersDoNotPreventPrematureEviction) {
  // The paper's Section VI-A claim: record-granularity software barriers are
  // too coarse to protect the prefetch buffer; only hardware flow control
  // eliminates premature evictions. (With full-row records per barrier the
  // evictions may or may not occur at small scale, but flow control must
  // strictly dominate the barrier variant's runtime.)
  workloads::WorkloadParams params;
  params.num_records = 16384;
  params.record_barrier = true;
  const workloads::Workload barrier_wl =
      workloads::make_bmla("count", params);
  params.record_barrier = false;
  const workloads::Workload plain_wl = workloads::make_bmla("count", params);

  const MachineConfig cfg = MachineConfig::paper_defaults();
  const arch::RunResult with_barriers = arch::run_arch(
      arch::ArchKind::kMillipedeNoFlowControl, cfg, barrier_wl);
  const arch::RunResult flow_control =
      arch::run_arch(arch::ArchKind::kMillipedeNoRateMatch, cfg, plain_wl);
  EXPECT_EQ(with_barriers.verification, "");
  EXPECT_LE(flow_control.runtime_ps, with_barriers.runtime_ps)
      << "hardware flow control must dominate software barriers";
}

}  // namespace
}  // namespace mlp::core
