// Resilience-layer tests: the forward-progress watchdog must convert
// genuine livelocks into structured, diagnosable per-job errors within a
// bounded wall-clock time; seeded fault injection must corrupt results
// without ECC, be corrected (and counted) with ECC, and degrade into a
// per-job error when the retry budget is exhausted — all deterministically
// for any --jobs value.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/runner.hpp"

namespace mlp::sim {
namespace {

MatrixJob job(arch::ArchKind kind, const std::string& bench,
              const SuiteOptions& options) {
  return {kind, bench, options, /*tag=*/""};
}

// --- Watchdog ---

/// A prefetch window smaller than pca's 16-row record footprint, with the
/// fail-fast bypassed and flow control on, is a true livelock: every
/// context blocks on a row beyond the window, the head entry can never
/// saturate its DF count, and DRAM goes idle.
SuiteOptions deadlock_options() {
  SuiteOptions options;
  options.records = 2048;
  options.cfg.millipede.pf_entries = 8;  // < pca's 16 fields
  options.cfg.millipede.unsafe_skip_window_check = true;
  options.cfg.watchdog.stall_cycles = 200'000;  // trip fast in tests
  return options;
}

TEST(Watchdog, FlowControlDeadlockTripsStallDetector) {
  const auto start = std::chrono::steady_clock::now();
  const MatrixResult r =
      run_job(job(arch::ArchKind::kMillipede, "pca", deadlock_options()));
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("livelock"), std::string::npos) << r.error;
  // The diagnostic dump must actually describe the stuck machine.
  ASSERT_FALSE(r.diagnostic.empty());
  EXPECT_NE(r.diagnostic.find("corelet"), std::string::npos) << r.diagnostic;
  EXPECT_NE(r.diagnostic.find("occupancy"), std::string::npos)
      << r.diagnostic;
  // Structured failure, not a hang: well under the suite budget.
  EXPECT_LT(elapsed_s, 60.0);
}

TEST(Watchdog, DeadlockedPointDoesNotPoisonTheMatrix) {
  SuiteOptions good;
  good.records = 2048;
  std::vector<MatrixJob> jobs = {
      job(arch::ArchKind::kMillipede, "count", good),
      job(arch::ArchKind::kMillipede, "pca", deadlock_options()),
      job(arch::ArchKind::kMillipede, "variance", good),
  };
  // Remaining jobs must complete bit-identically for any thread count.
  const std::vector<MatrixResult> serial = run_matrix(jobs, 1);
  const std::vector<MatrixResult> parallel = run_matrix(jobs, 3);
  ASSERT_EQ(serial.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].error, parallel[i].error) << i;
    EXPECT_EQ(serial[i].result.runtime_ps, parallel[i].result.runtime_ps)
        << i;
  }
  EXPECT_TRUE(serial[0].ok()) << serial[0].error;
  EXPECT_FALSE(serial[1].ok());
  EXPECT_FALSE(serial[1].diagnostic.empty());
  EXPECT_TRUE(serial[2].ok()) << serial[2].error;
}

TEST(Watchdog, CycleCeilingBoundsAnyRun) {
  SuiteOptions options;
  options.records = 65536;
  options.cfg.watchdog.max_cycles = 5000;  // far below the run's needs
  const MatrixResult r =
      run_job(job(arch::ArchKind::kSsmc, "count", options));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("ceiling"), std::string::npos) << r.error;
}

// --- Fault injection + ECC ---

TEST(FaultInjection, UnprotectedBitFlipsAreCaughtByVerification) {
  SuiteOptions options;
  options.records = 65536;
  options.cfg.dram.fault.bit_flip_rate = 1e-4;  // ~200 flips over the input
  const MatrixResult r =
      run_job(job(arch::ArchKind::kMillipede, "count", options));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("verification"), std::string::npos) << r.error;
  EXPECT_GT(r.result.stats.at("dram.silent_corruptions"), 0u);
}

TEST(FaultInjection, EccCorrectsEveryArchitectureAtCorrectableRates) {
  using arch::ArchKind;
  for (const ArchKind kind :
       {ArchKind::kMillipede, ArchKind::kMillipedeNoFlowControl,
        ArchKind::kMillipedeNoRateMatch, ArchKind::kSsmc, ArchKind::kGpgpu,
        ArchKind::kVws, ArchKind::kVwsRow, ArchKind::kMulticore}) {
    SuiteOptions options;
    options.records = 16384;
    options.cfg.dram.fault.bit_flip_rate = 1e-4;
    options.cfg.dram.fault.ecc = true;
    const MatrixResult r = run_job(job(kind, "count", options));
    EXPECT_TRUE(r.ok()) << arch::arch_name(kind) << ": " << r.error;
    EXPECT_GT(r.result.stats.at("dram.ecc_corrected"), 0u)
        << arch::arch_name(kind);
  }
}

TEST(FaultInjection, RetryBudgetExhaustionIsARecoverableJobError) {
  SuiteOptions options;
  options.records = 2048;
  options.cfg.dram.fault.drop_rate = 0.9;
  options.cfg.dram.fault.max_retries = 2;
  const MatrixResult r =
      run_job(job(arch::ArchKind::kMillipede, "count", options));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("memory-fault"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("retry budget"), std::string::npos) << r.error;
  EXPECT_FALSE(r.diagnostic.empty());
}

TEST(FaultInjection, DelayedResponsesSlowTheRunButStillVerify) {
  SuiteOptions base;
  base.records = 16384;
  SuiteOptions delayed = base;
  delayed.cfg.dram.fault.delay_rate = 0.5;
  const MatrixResult clean =
      run_job(job(arch::ArchKind::kMillipedeNoRateMatch, "count", base));
  const MatrixResult slow =
      run_job(job(arch::ArchKind::kMillipedeNoRateMatch, "count", delayed));
  ASSERT_TRUE(clean.ok()) << clean.error;
  ASSERT_TRUE(slow.ok()) << slow.error;
  EXPECT_GT(slow.result.runtime_ps, clean.result.runtime_ps);
}

TEST(FaultInjection, DrawsAreDeterministicPerSeed) {
  SuiteOptions options;
  options.records = 16384;
  options.cfg.dram.fault.bit_flip_rate = 1e-4;
  options.cfg.dram.fault.ecc = true;
  const MatrixJob point = job(arch::ArchKind::kMillipede, "count", options);
  const MatrixResult a = run_job(point);
  const MatrixResult b = run_job(point);
  ASSERT_TRUE(a.ok()) << a.error;
  EXPECT_EQ(a.result.runtime_ps, b.result.runtime_ps);
  EXPECT_EQ(a.result.stats.at("dram.ecc_corrected"),
            b.result.stats.at("dram.ecc_corrected"));

  SuiteOptions reseeded = options;
  reseeded.cfg.dram.fault.seed = 99;
  const MatrixResult c =
      run_job(job(arch::ArchKind::kMillipede, "count", reseeded));
  ASSERT_TRUE(c.ok()) << c.error;
  EXPECT_NE(a.result.stats.at("dram.ecc_corrected"),
            c.result.stats.at("dram.ecc_corrected"));
}

}  // namespace
}  // namespace mlp::sim
