// Flag-handling contract tests for the shared tool argument layer: strict
// numeric validation (a junk value exits 2, never a silent 0), the
// "--flag value" / "--flag=value" equivalence, inline values rejected on
// boolean switches, and repeated-flag last-wins semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/argparse.hpp"

namespace mlp::tools {
namespace {

// ---- numeric validation ----------------------------------------------------

TEST(ParseU64, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_u64("--n", "0"), 0u);
  EXPECT_EQ(parse_u64("--n", "42"), 42u);
  EXPECT_EQ(parse_u64("--n", "18446744073709551615"),
            18446744073709551615ull);
}

TEST(ParseU64, RejectsJunkWithExit2) {
  EXPECT_EXIT(parse_u64("--n", "abc"), testing::ExitedWithCode(2), "--n");
  EXPECT_EXIT(parse_u64("--n", ""), testing::ExitedWithCode(2), "--n");
  EXPECT_EXIT(parse_u64("--n", "12x"), testing::ExitedWithCode(2), "--n");
  EXPECT_EXIT(parse_u64("--n", "12 34"), testing::ExitedWithCode(2), "--n");
  EXPECT_EXIT(parse_u64("--n", "-3"), testing::ExitedWithCode(2), "--n");
  EXPECT_EXIT(parse_u64("--n", "1e4"), testing::ExitedWithCode(2), "--n");
}

TEST(ParseU64, EnforcesMinimum) {
  EXPECT_EQ(parse_u64("--n", "1", /*min=*/1), 1u);
  EXPECT_EXIT(parse_u64("--n", "0", /*min=*/1), testing::ExitedWithCode(2),
              "positive");
}

TEST(ParseU32, RejectsValuesAbove32Bits) {
  EXPECT_EQ(parse_u32("--n", "4294967295"), 0xffffffffu);
  EXPECT_EXIT(parse_u32("--n", "4294967296"), testing::ExitedWithCode(2),
              "32-bit");
}

TEST(ParsePositiveDouble, AcceptsPositiveRejectsRest) {
  EXPECT_DOUBLE_EQ(parse_positive_double("--f", "0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_positive_double("--f", "1e-3"), 1e-3);
  EXPECT_EXIT(parse_positive_double("--f", "0"), testing::ExitedWithCode(2),
              "positive");
  EXPECT_EXIT(parse_positive_double("--f", "-1.5"),
              testing::ExitedWithCode(2), "positive");
  EXPECT_EXIT(parse_positive_double("--f", "fast"),
              testing::ExitedWithCode(2), "positive");
}

TEST(ParseRate, EnforcesProbabilityBounds) {
  EXPECT_DOUBLE_EQ(parse_rate("--p", "0"), 0.0);
  EXPECT_DOUBLE_EQ(parse_rate("--p", "1"), 1.0);
  EXPECT_DOUBLE_EQ(parse_rate("--p", "1e-6"), 1e-6);
  EXPECT_EXIT(parse_rate("--p", "1.5"), testing::ExitedWithCode(2),
              "probability");
  EXPECT_EXIT(parse_rate("--p", "-0.1"), testing::ExitedWithCode(2),
              "probability");
}

TEST(SplitList, SplitsAndRejectsEmptyElements) {
  EXPECT_EQ(split_list("--l", "a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("--l", "solo"), (std::vector<std::string>{"solo"}));
  EXPECT_EXIT(split_list("--l", "a,,c"), testing::ExitedWithCode(2),
              "comma-separated");
  EXPECT_EXIT(split_list("--l", "a,"), testing::ExitedWithCode(2),
              "comma-separated");
  EXPECT_EXIT(split_list("--l", ""), testing::ExitedWithCode(2),
              "comma-separated");
}

// ---- name lists ------------------------------------------------------------

// The --list-arches / --list-benches output contract (mlpsim and mlpsweep
// both print through this helper): one name per line, no header, trailing
// newline, empty list -> empty output.
TEST(NameListLines, OneNamePerLineWithTrailingNewline) {
  EXPECT_EQ(name_list_lines({"millipede", "ssmc"}), "millipede\nssmc\n");
  EXPECT_EQ(name_list_lines({"solo"}), "solo\n");
  EXPECT_EQ(name_list_lines({}), "");
}

// ---- ArgCursor -------------------------------------------------------------

/// argv scaffold: keeps the strings alive and hands out char** like main().
struct Argv {
  explicit Argv(std::vector<std::string> args) : store(std::move(args)) {
    ptrs.push_back(const_cast<char*>("test"));
    for (std::string& s : store) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> store;
  std::vector<char*> ptrs;
};

TEST(ArgCursor, SeparateAndInlineValuesAreEquivalent) {
  for (const std::vector<std::string>& form :
       {std::vector<std::string>{"--rows", "96"},
        std::vector<std::string>{"--rows=96"}}) {
    Argv a(form);
    ArgCursor args(a.argc(), a.argv());
    ASSERT_TRUE(args.next());
    EXPECT_TRUE(args.is("--rows"));
    EXPECT_EQ(args.value(), "96");
    EXPECT_FALSE(args.next());
  }
}

TEST(ArgCursor, RepeatedFlagsLastWins) {
  Argv a({"--seed", "1", "--seed=7", "--seed", "9"});
  ArgCursor args(a.argc(), a.argv());
  u64 seed = 0;
  while (args.next()) {
    ASSERT_TRUE(args.is("--seed"));
    seed = parse_u64(args.flag(), args.value());
  }
  EXPECT_EQ(seed, 9u);
}

TEST(ArgCursor, InlineValueOnBooleanSwitchExits2) {
  auto run = [] {
    Argv a({"--ecc=1", "--rows", "96"});
    ArgCursor args(a.argc(), a.argv());
    bool ecc = false;
    while (args.next()) {
      if (args.is("--ecc")) ecc = true;  // boolean: never calls value()
    }
    std::exit(ecc ? 0 : 3);
  };
  EXPECT_EXIT(run(), testing::ExitedWithCode(2), "does not take a value");
}

TEST(ArgCursor, MissingTrailingValueExits2) {
  auto run = [] {
    Argv a({"--rows"});
    ArgCursor args(a.argc(), a.argv());
    while (args.next()) {
      if (args.is("--rows")) args.value();
    }
    std::exit(0);
  };
  EXPECT_EXIT(run(), testing::ExitedWithCode(2), "missing value for --rows");
}

TEST(ArgCursor, EqualsInsideValueIsPreserved) {
  Argv a({"--tag=a=b=c"});
  ArgCursor args(a.argc(), a.argv());
  ASSERT_TRUE(args.next());
  EXPECT_TRUE(args.is("--tag"));
  EXPECT_EQ(args.value(), "a=b=c");  // only the FIRST '=' splits
}

TEST(ArgCursor, MixedFlagsWalkInOrder) {
  Argv a({"--arch=ssmc", "--rows", "48", "--ecc", "--seed=5"});
  ArgCursor args(a.argc(), a.argv());
  std::vector<std::string> seen;
  while (args.next()) {
    seen.push_back(args.flag());
    if (args.is("--arch") || args.is("--rows") || args.is("--seed")) {
      args.value();
    }
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"--arch", "--rows", "--ecc",
                                            "--seed"}));
}

}  // namespace
}  // namespace mlp::tools
