// Tests for ISA metadata, binary encoding round-trips, program static
// analysis, and the kernel builder.

#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "isa/program.hpp"

namespace mlp::isa {
namespace {

TEST(OpInfo, EveryOpcodeHasConsistentName) {
  for (u32 i = 0; i < kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const OpInfo& info = op_info(op);
    ASSERT_NE(info.name, nullptr);
    Opcode back;
    ASSERT_TRUE(opcode_from_name(info.name, &back)) << info.name;
    EXPECT_EQ(back, op) << "name table out of order at " << info.name;
  }
}

TEST(OpInfo, ClassificationSpotChecks) {
  EXPECT_TRUE(op_info(Opcode::kBeq).is_branch);
  EXPECT_FALSE(op_info(Opcode::kJal).is_branch);
  EXPECT_TRUE(op_info(Opcode::kJal).is_jump);
  EXPECT_TRUE(op_info(Opcode::kLw).is_global_mem);
  EXPECT_TRUE(op_info(Opcode::kLw).is_load);
  EXPECT_TRUE(op_info(Opcode::kAmoaddl).is_local_mem);
  EXPECT_TRUE(op_info(Opcode::kAmoaddl).is_load);
  EXPECT_TRUE(op_info(Opcode::kAmoaddl).is_store);
  EXPECT_TRUE(op_info(Opcode::kFamoaddl).is_float);
  EXPECT_TRUE(op_info(Opcode::kFadd).is_float);
  EXPECT_FALSE(op_info(Opcode::kAdd).is_float);
}

TEST(Csr, NamesRoundTrip) {
  for (u32 i = 0; i < kNumCsrs; ++i) {
    if (i == 15) continue;  // hole in the numbering
    const Csr csr = static_cast<Csr>(i);
    Csr back;
    ASSERT_TRUE(csr_from_name(csr_name(csr), &back));
    EXPECT_EQ(back, csr);
  }
}

// --- Encoding round trips, one test per format family. ---

class EncodingRoundTrip : public ::testing::TestWithParam<Instr> {};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode) {
  const Instr in = GetParam();
  EXPECT_EQ(decode(encode(in)), in) << disassemble(in);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, EncodingRoundTrip,
    ::testing::Values(
        Instr{Opcode::kAdd, 1, 2, 3, 0},
        Instr{Opcode::kSub, 31, 30, 29, 0},
        Instr{Opcode::kFsqrt, 5, 6, 0, 0},
        Instr{Opcode::kAddi, 7, 8, 0, -8192},
        Instr{Opcode::kAddi, 7, 8, 0, 8191},
        Instr{Opcode::kLui, 9, 0, 0, (1 << 19) - 1},
        Instr{Opcode::kLw, 10, 11, 0, -4},
        Instr{Opcode::kSw, 0, 12, 13, 2044},
        Instr{Opcode::kLwl, 14, 15, 0, 1020},
        Instr{Opcode::kSwl, 0, 16, 17, -256},
        Instr{Opcode::kAmoaddl, 18, 19, 20, 255},
        Instr{Opcode::kFamoaddl, 21, 22, 23, -256},
        Instr{Opcode::kBeq, 0, 24, 25, -100},
        Instr{Opcode::kBge, 0, 1, 2, 8191},
        Instr{Opcode::kJal, 26, 0, 0, -262144},
        Instr{Opcode::kJalr, 27, 28, 0, 16},
        Instr{Opcode::kCsrr, 1, 0, 0, static_cast<i32>(Csr::kArg7)},
        Instr{Opcode::kHalt, 0, 0, 0, 0}));

TEST(Encoding, ExhaustiveImmediateSweepBranch) {
  for (i32 imm = -(1 << 13); imm < (1 << 13); imm += 97) {
    const Instr in{Opcode::kBne, 0, 3, 4, imm};
    EXPECT_EQ(decode(encode(in)), in);
  }
}

TEST(Encoding, ExhaustiveRegisterSweep) {
  for (u8 r = 0; r < 32; ++r) {
    const Instr in{Opcode::kXor, r, static_cast<u8>(31 - r), r, 0};
    EXPECT_EQ(decode(encode(in)), in);
  }
}

TEST(Encoding, ImmFitsBoundaries) {
  EXPECT_TRUE(imm_fits(Opcode::kAddi, 8191));
  EXPECT_FALSE(imm_fits(Opcode::kAddi, 8192));
  EXPECT_TRUE(imm_fits(Opcode::kAddi, -8192));
  EXPECT_FALSE(imm_fits(Opcode::kAddi, -8193));
  EXPECT_TRUE(imm_fits(Opcode::kAmoaddl, 255));
  EXPECT_FALSE(imm_fits(Opcode::kAmoaddl, 256));
  EXPECT_TRUE(imm_fits(Opcode::kJal, -262144));
  EXPECT_FALSE(imm_fits(Opcode::kJal, 262144));
}

TEST(Encoding, ProgramVectorRoundTrip) {
  std::vector<Instr> prog = {
      {Opcode::kCsrr, 1, 0, 0, 0},
      {Opcode::kAddi, 2, 1, 0, 4},
      {Opcode::kBne, 0, 1, 2, -2},
      {Opcode::kHalt, 0, 0, 0, 0},
  };
  EXPECT_EQ(decode_program(encode_program(prog)), prog);
}

TEST(Program, StaticCounts) {
  std::vector<Instr> instrs = {
      {Opcode::kCsrr, 1, 0, 0, 0},
      {Opcode::kLw, 2, 1, 0, 0},
      {Opcode::kAmoaddl, 3, 4, 2, 0},
      {Opcode::kFadd, 5, 5, 2, 0},
      {Opcode::kBne, 0, 1, 2, -2},
      {Opcode::kJal, 0, 0, 0, -5},
      {Opcode::kHalt, 0, 0, 0, 0},
  };
  Program p("t", instrs, {{"top", 0}});
  const StaticCounts counts = p.static_counts();
  EXPECT_EQ(counts.total, 7u);
  EXPECT_EQ(counts.branches, 1u);
  EXPECT_EQ(counts.jumps, 1u);
  EXPECT_EQ(counts.global_loads, 1u);
  EXPECT_EQ(counts.global_stores, 0u);
  EXPECT_EQ(counts.local_accesses, 1u);
  EXPECT_EQ(counts.float_ops, 1u);
  EXPECT_EQ(p.label("top"), 0u);
  EXPECT_EQ(p.size_bytes(), 28u);
}

TEST(Builder, EmitsForwardAndBackwardBranches) {
  KernelBuilder b;
  Label loop = b.new_label();
  Label done = b.new_label();
  b.csrr(1, Csr::kTid);      // 0
  b.li(2, 10);               // 1
  b.bind(loop);
  b.addi(1, 1, 1);           // 2
  b.blt(1, 2, loop);         // 3 -> 2
  b.jump(done);              // 4 -> 5
  b.bind(done);
  b.halt();                  // 5
  Program p = b.build("builder_test");
  EXPECT_EQ(p.at(3).imm, -1);
  EXPECT_EQ(p.at(4).imm, 1);
  EXPECT_EQ(p.at(5).op, Opcode::kHalt);
}

TEST(Builder, LiExpandsLargeConstants) {
  KernelBuilder b;
  b.li(1, 5);           // 1 instr
  b.li(2, 0x12345678);  // 2 instrs
  b.halt();
  Program p = b.build("li_test");
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(0).op, Opcode::kAddi);
  EXPECT_EQ(p.at(1).op, Opcode::kLui);
  EXPECT_EQ(p.at(2).op, Opcode::kOri);
  // Reassemble the constant.
  const u32 value = (static_cast<u32>(p.at(1).imm) << 13) |
                    static_cast<u32>(p.at(2).imm);
  EXPECT_EQ(value, 0x12345678u);
}

TEST(Disassembler, FormatsEveryFormat) {
  EXPECT_EQ(disassemble(Instr{Opcode::kAdd, 1, 2, 3, 0}), "add r1, r2, r3");
  EXPECT_EQ(disassemble(Instr{Opcode::kLw, 4, 5, 0, 8}), "lw r4, 8(r5)");
  EXPECT_EQ(disassemble(Instr{Opcode::kSwl, 0, 6, 7, -4}), "sw.l r7, -4(r6)");
  EXPECT_EQ(disassemble(Instr{Opcode::kAmoaddl, 1, 2, 3, 0}),
            "amoadd.l r1, r3, 0(r2)");
  EXPECT_EQ(disassemble(Instr{Opcode::kCsrr, 1, 0, 0,
                              static_cast<i32>(Csr::kTid)}),
            "csrr r1, TID");
  EXPECT_EQ(disassemble(Instr{Opcode::kHalt, 0, 0, 0, 0}), "halt");
}

}  // namespace
}  // namespace mlp::isa
