// Tests for ISA metadata, binary encoding round-trips, program static
// analysis, and the kernel builder.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "core/decode_cache.hpp"
#include "core/functional.hpp"
#include "isa/assembler.hpp"
#include "isa/builder.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "isa/program.hpp"

namespace mlp::isa {
namespace {

TEST(OpInfo, EveryOpcodeHasConsistentName) {
  for (u32 i = 0; i < kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const OpInfo& info = op_info(op);
    ASSERT_NE(info.name, nullptr);
    Opcode back;
    ASSERT_TRUE(opcode_from_name(info.name, &back)) << info.name;
    EXPECT_EQ(back, op) << "name table out of order at " << info.name;
  }
}

TEST(OpInfo, ClassificationSpotChecks) {
  EXPECT_TRUE(op_info(Opcode::kBeq).is_branch);
  EXPECT_FALSE(op_info(Opcode::kJal).is_branch);
  EXPECT_TRUE(op_info(Opcode::kJal).is_jump);
  EXPECT_TRUE(op_info(Opcode::kLw).is_global_mem);
  EXPECT_TRUE(op_info(Opcode::kLw).is_load);
  EXPECT_TRUE(op_info(Opcode::kAmoaddl).is_local_mem);
  EXPECT_TRUE(op_info(Opcode::kAmoaddl).is_load);
  EXPECT_TRUE(op_info(Opcode::kAmoaddl).is_store);
  EXPECT_TRUE(op_info(Opcode::kFamoaddl).is_float);
  EXPECT_TRUE(op_info(Opcode::kFadd).is_float);
  EXPECT_FALSE(op_info(Opcode::kAdd).is_float);
}

TEST(Csr, NamesRoundTrip) {
  for (u32 i = 0; i < kNumCsrs; ++i) {
    if (i == 15) continue;  // hole in the numbering
    const Csr csr = static_cast<Csr>(i);
    Csr back;
    ASSERT_TRUE(csr_from_name(csr_name(csr), &back));
    EXPECT_EQ(back, csr);
  }
}

// --- Encoding round trips, one test per format family. ---

class EncodingRoundTrip : public ::testing::TestWithParam<Instr> {};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode) {
  const Instr in = GetParam();
  EXPECT_EQ(decode(encode(in)), in) << disassemble(in);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, EncodingRoundTrip,
    ::testing::Values(
        Instr{Opcode::kAdd, 1, 2, 3, 0},
        Instr{Opcode::kSub, 31, 30, 29, 0},
        Instr{Opcode::kFsqrt, 5, 6, 0, 0},
        Instr{Opcode::kAddi, 7, 8, 0, -8192},
        Instr{Opcode::kAddi, 7, 8, 0, 8191},
        Instr{Opcode::kLui, 9, 0, 0, (1 << 19) - 1},
        Instr{Opcode::kLw, 10, 11, 0, -4},
        Instr{Opcode::kSw, 0, 12, 13, 2044},
        Instr{Opcode::kLwl, 14, 15, 0, 1020},
        Instr{Opcode::kSwl, 0, 16, 17, -256},
        Instr{Opcode::kAmoaddl, 18, 19, 20, 255},
        Instr{Opcode::kFamoaddl, 21, 22, 23, -256},
        Instr{Opcode::kBeq, 0, 24, 25, -100},
        Instr{Opcode::kBge, 0, 1, 2, 8191},
        Instr{Opcode::kJal, 26, 0, 0, -262144},
        Instr{Opcode::kJalr, 27, 28, 0, 16},
        Instr{Opcode::kCsrr, 1, 0, 0, static_cast<i32>(Csr::kArg7)},
        Instr{Opcode::kHalt, 0, 0, 0, 0}));

TEST(Encoding, ExhaustiveImmediateSweepBranch) {
  for (i32 imm = -(1 << 13); imm < (1 << 13); imm += 97) {
    const Instr in{Opcode::kBne, 0, 3, 4, imm};
    EXPECT_EQ(decode(encode(in)), in);
  }
}

TEST(Encoding, ExhaustiveRegisterSweep) {
  for (u8 r = 0; r < 32; ++r) {
    const Instr in{Opcode::kXor, r, static_cast<u8>(31 - r), r, 0};
    EXPECT_EQ(decode(encode(in)), in);
  }
}

TEST(Encoding, ImmFitsBoundaries) {
  EXPECT_TRUE(imm_fits(Opcode::kAddi, 8191));
  EXPECT_FALSE(imm_fits(Opcode::kAddi, 8192));
  EXPECT_TRUE(imm_fits(Opcode::kAddi, -8192));
  EXPECT_FALSE(imm_fits(Opcode::kAddi, -8193));
  EXPECT_TRUE(imm_fits(Opcode::kAmoaddl, 255));
  EXPECT_FALSE(imm_fits(Opcode::kAmoaddl, 256));
  EXPECT_TRUE(imm_fits(Opcode::kJal, -262144));
  EXPECT_FALSE(imm_fits(Opcode::kJal, 262144));
}

TEST(Encoding, ProgramVectorRoundTrip) {
  std::vector<Instr> prog = {
      {Opcode::kCsrr, 1, 0, 0, 0},
      {Opcode::kAddi, 2, 1, 0, 4},
      {Opcode::kBne, 0, 1, 2, -2},
      {Opcode::kHalt, 0, 0, 0, 0},
  };
  EXPECT_EQ(decode_program(encode_program(prog)), prog);
}

TEST(Program, StaticCounts) {
  std::vector<Instr> instrs = {
      {Opcode::kCsrr, 1, 0, 0, 0},
      {Opcode::kLw, 2, 1, 0, 0},
      {Opcode::kAmoaddl, 3, 4, 2, 0},
      {Opcode::kFadd, 5, 5, 2, 0},
      {Opcode::kBne, 0, 1, 2, -2},
      {Opcode::kJal, 0, 0, 0, -5},
      {Opcode::kHalt, 0, 0, 0, 0},
  };
  Program p("t", instrs, {{"top", 0}});
  const StaticCounts counts = p.static_counts();
  EXPECT_EQ(counts.total, 7u);
  EXPECT_EQ(counts.branches, 1u);
  EXPECT_EQ(counts.jumps, 1u);
  EXPECT_EQ(counts.global_loads, 1u);
  EXPECT_EQ(counts.global_stores, 0u);
  EXPECT_EQ(counts.local_accesses, 1u);
  EXPECT_EQ(counts.float_ops, 1u);
  EXPECT_EQ(p.label("top"), 0u);
  EXPECT_EQ(p.size_bytes(), 28u);
}

TEST(Builder, EmitsForwardAndBackwardBranches) {
  KernelBuilder b;
  Label loop = b.new_label();
  Label done = b.new_label();
  b.csrr(1, Csr::kTid);      // 0
  b.li(2, 10);               // 1
  b.bind(loop);
  b.addi(1, 1, 1);           // 2
  b.blt(1, 2, loop);         // 3 -> 2
  b.jump(done);              // 4 -> 5
  b.bind(done);
  b.halt();                  // 5
  Program p = b.build("builder_test");
  EXPECT_EQ(p.at(3).imm, -1);
  EXPECT_EQ(p.at(4).imm, 1);
  EXPECT_EQ(p.at(5).op, Opcode::kHalt);
}

TEST(Builder, LiExpandsLargeConstants) {
  KernelBuilder b;
  b.li(1, 5);           // 1 instr
  b.li(2, 0x12345678);  // 2 instrs
  b.halt();
  Program p = b.build("li_test");
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.at(0).op, Opcode::kAddi);
  EXPECT_EQ(p.at(1).op, Opcode::kLui);
  EXPECT_EQ(p.at(2).op, Opcode::kOri);
  // Reassemble the constant.
  const u32 value = (static_cast<u32>(p.at(1).imm) << 13) |
                    static_cast<u32>(p.at(2).imm);
  EXPECT_EQ(value, 0x12345678u);
}

// --- Seeded decoder fuzz: random valid programs through the assembler,
// --- the binary encoding, and the decoded-block cache; the predecoded
// --- stream must match the per-edge decode instruction for instruction.

/// Random valid assembly source of `n` instructions plus a final halt.
/// Every pc gets its own label so branch/jal targets are always in range.
std::string random_program_source(std::mt19937& rng, u32 n) {
  auto pick = [&](u32 lo, u32 hi) {  // inclusive
    return std::uniform_int_distribution<u32>(lo, hi)(rng);
  };
  auto reg = [&] { return "r" + std::to_string(pick(0, 31)); };
  auto simm = [&](i32 lo, i32 hi) {
    return std::to_string(static_cast<i32>(pick(0, static_cast<u32>(hi - lo)))
                          + lo);
  };
  auto target = [&] { return "L" + std::to_string(pick(0, n)); };
  static const Opcode kRegOps[] = {
      Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kMulh, Opcode::kDiv,
      Opcode::kRem, Opcode::kAnd, Opcode::kOr, Opcode::kXor, Opcode::kSll,
      Opcode::kSrl, Opcode::kSra, Opcode::kSlt, Opcode::kSltu, Opcode::kFadd,
      Opcode::kFsub, Opcode::kFmul, Opcode::kFdiv, Opcode::kFmin,
      Opcode::kFmax, Opcode::kFlt, Opcode::kFle, Opcode::kFeq};
  static const Opcode kUnaryOps[] = {Opcode::kFsqrt, Opcode::kFabs,
                                     Opcode::kFneg, Opcode::kFcvtWs,
                                     Opcode::kFcvtSw};
  static const Opcode kImmOps[] = {Opcode::kAddi, Opcode::kAndi, Opcode::kOri,
                                   Opcode::kXori, Opcode::kSlli, Opcode::kSrli,
                                   Opcode::kSrai, Opcode::kSlti};
  static const Opcode kBranchOps[] = {Opcode::kBeq, Opcode::kBne, Opcode::kBlt,
                                      Opcode::kBge, Opcode::kBltu,
                                      Opcode::kBgeu};
  std::ostringstream os;
  for (u32 pc = 0; pc < n; ++pc) {
    os << "L" << pc << ":\n  ";
    switch (pick(0, 11)) {
      case 0:
      case 1:
      case 2:
        os << op_info(kRegOps[pick(0, std::size(kRegOps) - 1)]).name << " "
           << reg() << ", " << reg() << ", " << reg();
        break;
      case 3:
        os << op_info(kUnaryOps[pick(0, std::size(kUnaryOps) - 1)]).name
           << " " << reg() << ", " << reg();
        break;
      case 4:
        os << op_info(kImmOps[pick(0, std::size(kImmOps) - 1)]).name << " "
           << reg() << ", " << reg() << ", " << simm(-8192, 8191);
        break;
      case 5:
        os << "lui " << reg() << ", " << pick(0, (1u << 19) - 1);
        break;
      case 6:
        os << (pick(0, 1) ? "lw " : "lw.l ") << reg() << ", "
           << simm(-8192, 8191) << "(" << reg() << ")";
        break;
      case 7:
        os << (pick(0, 1) ? "sw " : "sw.l ") << reg() << ", "
           << simm(-8192, 8191) << "(" << reg() << ")";
        break;
      case 8:
        os << (pick(0, 1) ? "amoadd.l " : "famoadd.l ") << reg() << ", "
           << reg() << ", " << simm(-256, 255) << "(" << reg() << ")";
        break;
      case 9:
        os << op_info(kBranchOps[pick(0, std::size(kBranchOps) - 1)]).name
           << " " << reg() << ", " << reg() << ", " << target();
        break;
      case 10:
        if (pick(0, 1)) {
          os << "jal " << reg() << ", " << target();
        } else {
          os << "jalr " << reg() << ", " << reg() << ", "
             << simm(-8192, 8191);
        }
        break;
      case 11: {
        u32 csr = pick(0, kNumCsrs - 1);
        if (csr == 15) csr = 0;  // hole in the numbering
        os << (pick(0, 1) ? std::string("bar")
                          : "csrr " + reg() + ", " +
                                csr_name(static_cast<Csr>(csr)));
        break;
      }
    }
    os << "\n";
  }
  os << "L" << n << ":\n  halt\n";
  return os.str();
}

TEST(DecoderFuzz, RandomProgramsPredecodeIdentically) {
  std::mt19937 rng(20260809);  // fixed seed: failures must reproduce
  for (u32 iter = 0; iter < 25; ++iter) {
    const std::string src = random_program_source(rng, 40);
    const Program p = must_assemble("fuzz", src);

    // Binary encoding round trip of the whole program.
    ASSERT_EQ(decode_program(encode_program(p.instrs())), p.instrs()) << src;

    // The decoded-block cache must agree with the per-edge decode at every
    // pc: same instruction, classification, handler, and branch target.
    core::DecodedBlockCache dcache(p);
    for (u32 pc = 0; pc < p.size(); ++pc) {
      const core::DecodedInstr& de = dcache.entry(pc);
      const Instr& in = p.at(pc);
      ASSERT_EQ(de.instr, in) << "pc " << pc << ": " << disassemble(in);
      EXPECT_EQ(de.kind, core::classify(in)) << disassemble(in);
      EXPECT_EQ(de.fn, core::step_fn_for(in.op)) << disassemble(in);
      EXPECT_EQ(de.is_store, op_info(in.op).is_store) << disassemble(in);
      EXPECT_EQ(de.block, dcache.cfg().block_of(pc));
      EXPECT_EQ(de.taken_pc,
                static_cast<u32>(static_cast<i32>(pc) + in.imm));
    }
  }
}

TEST(DecoderFuzz, InvalidOpcodeByteThrowsTypedError) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<u32> low24(0, (1u << 24) - 1);
  for (u32 opbyte = kNumOpcodes; opbyte < 256; ++opbyte) {
    const u32 word = (opbyte << 24) | low24(rng);
    try {
      decode(word);
      FAIL() << "opcode byte " << opbyte << " decoded without error";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), "decode") << e.what();
    }
  }
}

TEST(DecoderFuzz, CsrIndexOutOfRangeThrowsTypedError) {
  const u32 opbyte = static_cast<u32>(Opcode::kCsrr) << 24;
  for (u32 csr : {kNumCsrs, kNumCsrs + 1, (1u << 14) - 1}) {
    const u32 word = opbyte | (3u << 19) | csr;
    try {
      decode(word);
      FAIL() << "csr index " << csr << " decoded without error";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), "decode") << e.what();
    }
  }
  // The last in-range index still decodes.
  EXPECT_EQ(decode(opbyte | (3u << 19) | (kNumCsrs - 1)).op, Opcode::kCsrr);
}

TEST(DecoderFuzz, ArbitraryWordsNeverCrash) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<u32> any(0, 0xffffffffu);
  u32 decoded = 0, rejected = 0;
  for (u32 i = 0; i < 100000; ++i) {
    const u32 word = any(rng);
    try {
      const Instr in = decode(word);
      EXPECT_LT(static_cast<u32>(in.op), kNumOpcodes);
      ++decoded;
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), "decode") << e.what();
      ++rejected;
    }
    // Anything else (MLP_CHECK abort, other exception types) fails loudly.
  }
  EXPECT_GT(decoded, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(Disassembler, FormatsEveryFormat) {
  EXPECT_EQ(disassemble(Instr{Opcode::kAdd, 1, 2, 3, 0}), "add r1, r2, r3");
  EXPECT_EQ(disassemble(Instr{Opcode::kLw, 4, 5, 0, 8}), "lw r4, 8(r5)");
  EXPECT_EQ(disassemble(Instr{Opcode::kSwl, 0, 6, 7, -4}), "sw.l r7, -4(r6)");
  EXPECT_EQ(disassemble(Instr{Opcode::kAmoaddl, 1, 2, 3, 0}),
            "amoadd.l r1, r3, 0(r2)");
  EXPECT_EQ(disassemble(Instr{Opcode::kCsrr, 1, 0, 0,
                              static_cast<i32>(Csr::kTid)}),
            "csrr r1, TID");
  EXPECT_EQ(disassemble(Instr{Opcode::kHalt, 0, 0, 0, 0}), "halt");
}

}  // namespace
}  // namespace mlp::isa
