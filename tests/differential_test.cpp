// Differential-equivalence suite for the decoded-block interpreter fast
// path: every (architecture, benchmark) pair of the evaluation matrix runs
// twice — block cache on (the default) and off (`--no-block-cache`) — and
// the two runs must be indistinguishable in every observable artifact:
//
//   * every registered counter (the full StatSet, decode.* included — the
//     accounting runs in both modes by design),
//   * every derived metric and the whole stats-JSON run document,
//   * every trace file, byte for byte (Chrome JSON + interval CSV).
//
// The cache is a simulator-speed optimization; if any number moves, it is
// not an optimization but a model change, and this suite names the exact
// counter/file that drifted.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace mlp {
namespace {

namespace fs = std::filesystem;

constexpr u64 kRows = 24;

const arch::ArchKind kArches[] = {
    arch::ArchKind::kMillipede,
    arch::ArchKind::kSsmc,
    arch::ArchKind::kGpgpu,
    arch::ArchKind::kMulticore,
};

/// One full 4x8 matrix with the block cache on or off, tracing into `dir`.
std::vector<sim::MatrixResult> run_mode(bool block_cache,
                                        const std::string& dir) {
  fs::create_directories(dir);
  std::vector<sim::MatrixJob> jobs;
  for (arch::ArchKind kind : kArches) {
    for (const std::string& bench : workloads::bmla_names()) {
      sim::MatrixJob job;
      job.kind = kind;
      job.bench = bench;
      job.options.rows = kRows;
      job.options.cfg.block_cache = block_cache;
      job.options.trace.chrome_json = true;
      job.options.trace.interval_cycles = 4096;
      job.options.trace.dir = dir;
      jobs.push_back(job);
    }
  }
  return sim::run_matrix(jobs, 0);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Replace every occurrence of `from` (a trace directory prefix) so the two
/// modes' stats-JSON documents become comparable despite distinct dirs.
std::string normalized(std::string text, const std::string& from) {
  for (size_t pos = text.find(from); pos != std::string::npos;
       pos = text.find(from, pos)) {
    text.replace(pos, from.size(), "<TRACE_DIR>");
  }
  return text;
}

TEST(Differential, BlockCacheOnOffIsObservationallyIdentical) {
  const fs::path root = fs::path(::testing::TempDir()) / "mlp_differential";
  const std::string dir_on = (root / "cache_on").string();
  const std::string dir_off = (root / "cache_off").string();
  const std::vector<sim::MatrixResult> on = run_mode(true, dir_on);
  const std::vector<sim::MatrixResult> off = run_mode(false, dir_off);
  ASSERT_EQ(on.size(), 32u);
  ASSERT_EQ(off.size(), 32u);

  for (size_t i = 0; i < on.size(); ++i) {
    const sim::MatrixResult& a = on[i];
    const sim::MatrixResult& b = off[i];
    const std::string label =
        std::string(arch::arch_name(a.job.kind)) + "/" + a.job.bench;
    ASSERT_TRUE(a.ok()) << label << " (cache on): " << a.error;
    ASSERT_TRUE(b.ok()) << label << " (cache off): " << b.error;

    // Every registered counter, with a per-counter diff on mismatch.
    const std::map<std::string, u64> sa(a.result.stats.begin(),
                                        a.result.stats.end());
    const std::map<std::string, u64> sb(b.result.stats.begin(),
                                        b.result.stats.end());
    for (const auto& [name, value] : sa) {
      const auto it = sb.find(name);
      ASSERT_TRUE(it != sb.end()) << label << ": counter " << name
                                  << " only exists with the cache on";
      EXPECT_EQ(value, it->second)
          << label << ": counter " << name << " differs (cache on " << value
          << ", off " << it->second << ")";
    }
    EXPECT_EQ(sa.size(), sb.size()) << label << ": counter sets differ";

    // The whole stats-JSON run document (metrics included), modulo the
    // distinct trace directories.
    EXPECT_EQ(normalized(sim::stats_json_run(a), dir_on),
              normalized(sim::stats_json_run(b), dir_off))
        << label << ": stats-JSON run objects differ";

    // Trace files byte for byte, matched by basename.
    ASSERT_EQ(a.trace_files.size(), b.trace_files.size()) << label;
    std::map<std::string, std::string> by_name;
    for (const std::string& path : b.trace_files) {
      by_name[fs::path(path).filename().string()] = path;
    }
    for (const std::string& path : a.trace_files) {
      const std::string name = fs::path(path).filename().string();
      ASSERT_TRUE(by_name.count(name))
          << label << ": trace file " << name << " missing with cache off";
      EXPECT_EQ(read_file(path), read_file(by_name[name]))
          << label << ": trace file " << name << " differs";
    }
  }
  fs::remove_all(root);
}

TEST(Differential, BlockCacheCountersAreLive) {
  // Guard against the equivalence holding vacuously: a compute-heavy run
  // must actually exercise the cache (misses bounded by the block count,
  // hits and batched lanes dominating).
  sim::MatrixJob job;
  job.kind = arch::ArchKind::kMillipede;
  job.bench = "kmeans";
  job.options.rows = kRows;
  const sim::MatrixResult run = sim::run_job(job);
  ASSERT_TRUE(run.ok()) << run.error;
  const auto stat = [&](const char* key) {
    const auto it = run.result.stats.find(key);
    return it == run.result.stats.end() ? u64{0} : it->second;
  };
  const u64 misses = stat("decode.block_misses");
  const u64 hits = stat("decode.block_hits");
  EXPECT_GT(misses, 0u);
  EXPECT_LT(misses, 64u) << "misses must be bounded by the block count";
  EXPECT_GT(hits, 1000u * misses) << "the decoded stream must be reused";
  EXPECT_GT(stat("decode.batched_lanes"), 0u);
}

}  // namespace
}  // namespace mlp
