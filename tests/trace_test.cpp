// Schema tests for the observability layer: the JSON writer/parser, the
// TraceSession capture modes (unbounded Chrome-trace buffer, bounded binary
// ring, interval sampler), the per-job trace files run_job writes (including
// for failed runs and across run_matrix thread counts), the sweep CSV with
// its trailing error column, and the --stats-json document round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace mlp {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("mlp_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

sim::MatrixJob traced_job(const std::string& bench, const fs::path& dir,
                          const std::string& tag = "") {
  sim::MatrixJob job;
  job.kind = arch::ArchKind::kMillipede;
  job.bench = bench;
  job.tag = tag;
  job.options.rows = 24;
  job.options.trace.chrome_json = true;
  job.options.trace.interval_cycles = 256;
  job.options.trace.dir = dir.string();
  return job;
}

// ---------------------------------------------------------------- JSON ----

TEST(Json, WriterParserRoundTrip) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value(std::string("a\"b\\c\n\t"));
  w.key("big");
  w.value(u64{18446744073709551615ull});
  w.key("neg");
  w.value(i64{-42});
  w.key("pi");
  w.value(3.25);
  w.key("flag");
  w.value(true);
  w.key("list");
  w.begin_array();
  w.value(u64{1});
  w.value(u64{2});
  w.end_array();
  w.end_object();
  const trace::JsonValue v = trace::json_parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.str_at("name"), "a\"b\\c\n\t");
  EXPECT_EQ(v.u64_at("big"), 18446744073709551615ull);
  EXPECT_EQ(v.find("neg")->integer, -42);
  EXPECT_DOUBLE_EQ(v.find("pi")->number, 3.25);
  EXPECT_TRUE(v.find("flag")->boolean);
  ASSERT_TRUE(v.find("list")->is_array());
  EXPECT_EQ(v.find("list")->array.size(), 2u);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(trace::json_parse("{"), SimError);
  EXPECT_THROW(trace::json_parse("{\"a\":1,}"), SimError);
  EXPECT_THROW(trace::json_parse("[1,2] trailing"), SimError);
  EXPECT_THROW(trace::json_parse("\"unterminated"), SimError);
  EXPECT_THROW(trace::json_parse(""), SimError);
  try {
    trace::json_parse("nope");
    FAIL() << "must throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "json");
  }
}

TEST(Json, EscapesNullsAndEmptyContainers) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("esc");
  w.value(std::string("cr\r ctl\x01 end"));
  w.key("nan");
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.key("empty_obj");
  w.begin_object();
  w.end_object();
  w.key("empty_arr");
  w.begin_array();
  w.end_array();
  w.end_object();
  const std::string text = w.str();
  EXPECT_NE(text.find("\\r"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);

  const trace::JsonValue v = trace::json_parse(text);
  EXPECT_EQ(v.str_at("esc"), "cr\r ctl\x01 end");
  EXPECT_EQ(v.find("nan")->type, trace::JsonValue::Type::kNull);
  ASSERT_TRUE(v.find("empty_obj")->is_object());
  EXPECT_TRUE(v.find("empty_obj")->object.empty());
  ASSERT_TRUE(v.find("empty_arr")->is_array());
  EXPECT_TRUE(v.find("empty_arr")->array.empty());

  // Escape forms the writer never produces must still parse: solidus, the
  // control shorthands, an ASCII \u escape, and a non-ASCII one (which this
  // deliberately-minimal parser maps to '?').
  const trace::JsonValue esc =
      trace::json_parse("{\"s\": \"a\\/b\\r\\b\\f\\u0041\\u00e9\"}");
  EXPECT_EQ(esc.str_at("s"), "a/b\r\b\fA?");
  EXPECT_THROW(trace::json_parse("{\"s\": \"\\x\"}"), SimError);
  EXPECT_THROW(trace::json_parse("{\"s\": \"\\u00"), SimError);
}

// -------------------------------------------------------- TraceSession ----

TEST(TraceSession, RingKeepsMostRecentEventsInOrder) {
  trace::TraceConfig cfg;
  cfg.ring_entries = 4;
  trace::TraceSession session(cfg);
  for (u64 i = 0; i < 10; ++i) {
    session.emit(trace::Domain::kCompute, trace::EventKind::kDramRead,
                 /*ts=*/i * 100, /*track=*/0, /*a=*/i);
  }
  EXPECT_EQ(session.events_captured(), 10u);
  EXPECT_EQ(session.events_retained(), 4u);
  const std::vector<trace::Event> events = session.events();
  ASSERT_EQ(events.size(), 4u);
  for (u64 i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, 6 + i) << "ring must keep the newest, oldest first";
  }
}

TEST(TraceSession, BinaryBlobLayout) {
  trace::TraceConfig cfg;
  cfg.ring_entries = 8;
  trace::TraceSession session(cfg);
  for (u64 i = 0; i < 3; ++i) {
    session.emit(trace::Domain::kChannel, trace::EventKind::kDramActivate,
                 i, trace::kDramTrackBase, i);
  }
  const std::string blob = session.binary_blob();
  ASSERT_GE(blob.size(), 32u);
  EXPECT_EQ(std::memcmp(blob.data(), "MLPTRACE", 8), 0);
  u32 version = 0, event_size = 0;
  std::memcpy(&version, blob.data() + 8, 4);
  std::memcpy(&event_size, blob.data() + 12, 4);
  u64 retained = 0, total = 0;
  std::memcpy(&retained, blob.data() + 16, 8);
  std::memcpy(&total, blob.data() + 24, 8);
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(event_size, sizeof(trace::Event));
  EXPECT_EQ(retained, 3u);
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(blob.size(), 32u + retained * sizeof(trace::Event));
}

TEST(TraceSession, DisabledConfigCapturesNothing) {
  trace::TraceConfig cfg;  // all off
  EXPECT_FALSE(cfg.enabled());
  trace::TraceSession session(cfg);
  session.emit(trace::Domain::kCompute, trace::EventKind::kDramRead, 1, 0);
  EXPECT_EQ(session.events_captured(), 0u);
  EXPECT_EQ(session.events_retained(), 0u);
}

// ------------------------------------------------- per-job trace files ----

TEST(TraceFiles, ChromeJsonValidatesAndMapsTracks) {
  const fs::path dir = scratch_dir("chrome_json");
  const sim::MatrixResult run = sim::run_job(traced_job("count", dir));
  ASSERT_TRUE(run.ok()) << run.error;
  ASSERT_EQ(run.trace_files.size(), 2u);  // .trace.json + .timeline.csv

  const std::string path = (dir / "millipede-count.trace.json").string();
  EXPECT_EQ(run.trace_files[0], path);
  const trace::JsonValue doc = trace::json_parse(read_file(path));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.str_at("displayTimeUnit"), "ns");
  const trace::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Metadata: the process is arch/workload; thread names cover every tid
  // used by a real event.
  bool process_named = false;
  std::map<i64, std::string> thread_names;
  double last_ts = -1.0;
  std::map<std::string, u64> kinds;
  std::map<i64, i64> open_slices;  // tid -> B/E nesting depth
  for (const trace::JsonValue& e : events->array) {
    const std::string& ph = e.str_at("ph");
    if (ph == "M") {
      if (e.str_at("name") == "process_name") {
        process_named = true;
        EXPECT_EQ(e.find("args")->str_at("name"), "millipede/count");
      } else if (e.str_at("name") == "thread_name") {
        thread_names[e.find("tid")->integer] =
            e.find("args")->str_at("name");
      }
      continue;
    }
    const trace::JsonValue* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->number, last_ts) << "event timestamps must be sorted";
    last_ts = ts->number;
    ++kinds[e.str_at("name")];
    EXPECT_TRUE(thread_names.count(e.find("tid")->integer))
        << "unnamed track " << e.find("tid")->integer;
    if (ph == "B") ++open_slices[e.find("tid")->integer];
    if (ph == "E") {
      EXPECT_GT(open_slices[e.find("tid")->integer], 0)
          << "slice end without begin";
      --open_slices[e.find("tid")->integer];
    }
  }
  EXPECT_TRUE(process_named);
  // The acceptance triad: DRAM traffic, prefetch lifecycle, corelet stalls.
  EXPECT_GT(kinds["RD"], 0u);
  EXPECT_GT(kinds["ACT"], 0u);
  EXPECT_GT(kinds["pf_issue"], 0u);
  EXPECT_GT(kinds["pf_fill"], 0u);
  EXPECT_GT(kinds["pf_first_use"], 0u);
  EXPECT_GT(kinds["pf_retire"], 0u);
  EXPECT_GT(kinds["mem_stall"], 0u);
  for (const auto& [tid, depth] : open_slices) {
    EXPECT_EQ(depth, 0) << "unbalanced stall slices on tid " << tid;
  }
  // Corelet tracks follow the c<core>.x<ctx> convention.
  ASSERT_TRUE(thread_names.count(0));
  EXPECT_EQ(thread_names[0], "c0.x0");
}

TEST(TraceFiles, IntervalCsvHeaderAndMonotonicCycles) {
  const fs::path dir = scratch_dir("interval_csv");
  const sim::MatrixResult run = sim::run_job(traced_job("variance", dir));
  ASSERT_TRUE(run.ok()) << run.error;
  const std::string csv =
      read_file((dir / "millipede-variance.timeline.csv").string());
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("cycle,ps,", 0), 0u);
  EXPECT_NE(header.find(",dram.row_hits,"), std::string::npos);
  EXPECT_NE(header.find(",exec.instructions,"), std::string::npos);
  EXPECT_NE(header.find(",pb.occupancy,"), std::string::npos);
  const std::string tail = ",row_hit_rate,ipc";
  ASSERT_GE(header.size(), tail.size());
  EXPECT_EQ(header.substr(header.size() - tail.size()), tail);
  const std::size_t columns =
      static_cast<std::size_t>(
          std::count(header.begin(), header.end(), ',')) + 1;

  std::string line;
  u64 rows = 0;
  i64 last_cycle = -1, last_ps = -1;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++rows;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) + 1,
              columns)
        << "ragged row: " << line;
    const i64 cycle = std::stoll(line);
    const i64 ps = std::stoll(line.substr(line.find(',') + 1));
    EXPECT_GT(cycle, last_cycle) << "cycle column must increase";
    EXPECT_GE(ps, last_ps) << "ps column must not go backwards";
    last_cycle = cycle;
    last_ps = ps;
  }
  EXPECT_GT(rows, 1u);
}

TEST(TraceFiles, FailedRunStillWritesPartialTrace) {
  const fs::path dir = scratch_dir("failed_run");
  sim::MatrixJob job = traced_job("count", dir);
  job.options.trace.interval_cycles = 0;
  job.options.trace.ring_entries = 64;
  job.options.cfg.watchdog.max_cycles = 500;  // guaranteed trip mid-run
  const sim::MatrixResult run = sim::run_job(job);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error.find("watchdog"), std::string::npos) << run.error;
  ASSERT_EQ(run.trace_files.size(), 2u);  // chrome json + ring
  // The chrome trace of the aborted run still validates, and the ring ends
  // with the watchdog trip event.
  const trace::JsonValue doc =
      trace::json_parse(read_file((dir / "millipede-count.trace.json")
                                      .string()));
  EXPECT_TRUE(doc.find("traceEvents")->is_array());
  const std::string blob =
      read_file((dir / "millipede-count.ring.bin").string());
  ASSERT_GT(blob.size(), 32u);
  trace::Event last{};
  std::memcpy(&last, blob.data() + blob.size() - sizeof(trace::Event),
              sizeof(trace::Event));
  EXPECT_EQ(last.kind, trace::EventKind::kWatchdogTrip);
  EXPECT_EQ(last.a, 500u);
}

TEST(TraceFiles, BitIdenticalAcrossMatrixThreadCounts) {
  const fs::path dir1 = scratch_dir("jobs1");
  const fs::path dir8 = scratch_dir("jobs8");
  const std::vector<std::string> benches = {"count", "variance", "nbayes",
                                            "kmeans"};
  std::vector<sim::MatrixJob> jobs1, jobs8;
  for (const std::string& bench : benches) {
    jobs1.push_back(traced_job(bench, dir1));
    jobs8.push_back(traced_job(bench, dir8));
  }
  const std::vector<sim::MatrixResult> r1 = sim::run_matrix(jobs1, 1);
  const std::vector<sim::MatrixResult> r8 = sim::run_matrix(jobs8, 8);
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    ASSERT_TRUE(r1[i].ok()) << r1[i].error;
    ASSERT_TRUE(r8[i].ok()) << r8[i].error;
    ASSERT_EQ(r1[i].trace_files.size(), r8[i].trace_files.size());
    for (std::size_t f = 0; f < r1[i].trace_files.size(); ++f) {
      EXPECT_EQ(read_file(r1[i].trace_files[f]),
                read_file(r8[i].trace_files[f]))
          << "trace files must not depend on the pool thread count: "
          << r1[i].trace_files[f];
    }
  }
}

// ----------------------------------------------------------- sweep CSV ----

TEST(SweepCsv, HeaderIsLocked) {
  // Golden header: downstream notebooks key on these exact columns. Bump
  // deliberately when adding columns.
  EXPECT_EQ(sim::sweep_csv_header(),
            "arch,bench,cores,pf_entries,bus_efficiency,rows,records,seed,"
            "fault_rate,ecc,channels,ranks,mapping,page_policy,refresh,"
            "runtime_us,cycles,insts,insts_per_word,clock_mhz,"
            "core_uj,dram_uj,leak_uj,row_miss_rate,ecc_corrected,"
            "ecc_detected,fault_retries,error\n");
}

TEST(SweepCsv, SuccessRowShapeAndEccColumns) {
  sim::MatrixJob job;
  job.bench = "count";
  job.options.rows = 24;
  job.options.cfg.dram.fault.bit_flip_rate = 1e-7;
  job.options.cfg.dram.fault.ecc = true;
  const sim::MatrixResult run = sim::run_job(job);
  ASSERT_TRUE(run.ok()) << run.error;
  const std::string header = sim::sweep_csv_header();
  const std::string row = sim::sweep_csv_row(run);
  EXPECT_EQ(std::count(row.begin(), row.end(), ','),
            std::count(header.begin(), header.end(), ','));
  EXPECT_EQ(row.rfind("millipede,count,32,16,0.300,24,", 0), 0u) << row;
  EXPECT_EQ(row.back(), '\n');
  EXPECT_EQ(row[row.size() - 2], ',') << "error column must be empty: " << row;
  // fault_rate and ecc config columns are rendered.
  EXPECT_NE(row.find(",1e-07,1,"), std::string::npos) << row;
}

TEST(SweepCsv, FailedPointKeepsRectangularRow) {
  sim::MatrixJob job;
  job.bench = "pca";
  job.options.records = 2048;
  job.options.cfg.millipede.pf_entries = 8;  // < pca's row footprint
  const sim::MatrixResult run = sim::run_job(job);
  ASSERT_FALSE(run.ok());
  const std::string header = sim::sweep_csv_header();
  const std::string row = sim::sweep_csv_row(run);
  EXPECT_EQ(std::count(row.begin(), row.end(), ','),
            std::count(header.begin(), header.end(), ','))
      << "error text must not add columns: " << row;
  EXPECT_NE(row.find("row footprint"), std::string::npos) << row;
  EXPECT_EQ(row.find('\n'), row.size() - 1) << "single line per point";
  // Metric cells are empty: config prefix is followed immediately by the
  // 12 empty cells.
  EXPECT_NE(row.find(",,,,,,,,,,,,"), std::string::npos) << row;
}

// ----------------------------------------------------------- stats JSON ----

TEST(StatsJson, RoundTripsEveryCounter) {
  sim::MatrixJob ok_job;
  ok_job.bench = "sample";
  ok_job.options.rows = 24;
  sim::MatrixJob bad_job = ok_job;
  bad_job.bench = "nosuchbench";
  const std::vector<sim::MatrixResult> results =
      sim::run_matrix({ok_job, bad_job}, 2);
  const std::string doc_text = sim::stats_json(results);
  const trace::JsonValue doc = trace::json_parse(doc_text);
  EXPECT_EQ(doc.u64_at("schema_version"), sim::kStatsJsonSchemaVersion);
  const trace::JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 2u);

  const trace::JsonValue& good = runs->array[0];
  EXPECT_EQ(good.str_at("arch"), "millipede");
  EXPECT_EQ(good.str_at("bench"), "sample");
  EXPECT_TRUE(good.find("ok")->boolean);
  EXPECT_EQ(good.find("config")->u64_at("rows"), 24u);
  const trace::JsonValue* counters = good.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  // Every registered counter survives the round trip, exactly.
  ASSERT_EQ(counters->object.size(), results[0].result.stats.size());
  for (const auto& [name, value] : results[0].result.stats) {
    EXPECT_EQ(counters->u64_at(name), value) << name;
  }
  const trace::JsonValue* metrics = good.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->u64_at("runtime_ps"),
            static_cast<u64>(results[0].result.runtime_ps));
  EXPECT_GT(metrics->find("total_j")->number, 0.0);

  const trace::JsonValue& bad = runs->array[1];
  EXPECT_FALSE(bad.find("ok")->boolean);
  EXPECT_NE(bad.str_at("error").find("unknown benchmark"), std::string::npos);
  EXPECT_EQ(bad.find("counters"), nullptr);

  // Determinism: rendering the same results again is byte-identical.
  EXPECT_EQ(sim::stats_json(results), doc_text);
}

}  // namespace
}  // namespace mlp
