// Configuration-sweep tests mirroring the Fig. 6/7 experiments at small
// scale, plus the layout-mapping ablation path: every swept configuration
// must stay functionally correct (golden verification) and show the
// qualitative trend the paper reports.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/system.hpp"
#include "common/error.hpp"
#include "sim/runner.hpp"
#include "tools/sweep_grid.hpp"

namespace mlp::arch {
namespace {

workloads::Workload wl(const std::string& name, u64 records) {
  workloads::WorkloadParams params;
  params.num_records = records;
  return workloads::make_bmla(name, params);
}

TEST(Sweep, SixtyFourCoreSystemsVerify) {
  // Fig. 6 configuration: doubled cores and bandwidth.
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.core.cores = 64;
  cfg.gpgpu.warp_width = 64;
  cfg.dram.channel_bits = 256;
  for (const ArchKind kind :
       {ArchKind::kMillipede, ArchKind::kSsmc, ArchKind::kGpgpu}) {
    const RunResult r = run_arch(kind, cfg, wl("variance", 16384));
    EXPECT_EQ(r.verification, "") << arch_name(kind);
  }
}

TEST(Sweep, DoubledSystemIsFasterOnParallelWork) {
  MachineConfig big = MachineConfig::paper_defaults();
  big.core.cores = 64;
  big.gpgpu.warp_width = 64;
  big.dram.channel_bits = 256;
  const RunResult small_run =
      run_arch(ArchKind::kMillipede, MachineConfig::paper_defaults(),
               wl("kmeans", 16384));
  const RunResult big_run = run_arch(ArchKind::kMillipede, big,
                                     wl("kmeans", 16384));
  EXPECT_LT(big_run.runtime_ps, small_run.runtime_ps);
}

TEST(Sweep, PrefetchBufferCountsVerifyAndHelp) {
  // Fig. 7 at small scale: more entries never hurt, and help multi-field
  // kernels whose records span many rows.
  Picos prev = ~Picos{0};
  for (u32 entries : {12u, 16u, 32u}) {
    MachineConfig cfg = MachineConfig::paper_defaults();
    cfg.millipede.pf_entries = entries;
    const RunResult r =
        run_arch(ArchKind::kMillipedeNoRateMatch, cfg, wl("nbayes", 16384));
    EXPECT_EQ(r.verification, "");
    EXPECT_LE(r.runtime_ps, prev + prev / 50) << entries << " entries";
    prev = r.runtime_ps;
  }
}

TEST(Sweep, WindowSmallerThanRecordFootprintFailsFast) {
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.millipede.pf_entries = 8;  // < pca's 16 fields
  try {
    run_arch(ArchKind::kMillipede, cfg, wl("pca", 2048));
    FAIL() << "undersized window must be rejected";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "config");
    EXPECT_NE(std::string(e.what()).find("row footprint"), std::string::npos);
  }
}

TEST(Sweep, MatrixIsolatesFailingPoint) {
  // One undersized-window point in a matrix must land in its own
  // MatrixResult::error; the surrounding jobs still run and verify.
  sim::SuiteOptions good;
  good.records = 2048;
  sim::SuiteOptions bad = good;
  bad.cfg.millipede.pf_entries = 8;  // < pca's 16 fields
  const std::vector<sim::MatrixJob> jobs = {
      {ArchKind::kMillipede, "count", good, ""},
      {ArchKind::kMillipede, "pca", bad, ""},
      {ArchKind::kMillipede, "variance", good, ""},
  };
  const std::vector<sim::MatrixResult> results = sim::run_matrix(jobs, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("row footprint"), std::string::npos)
      << results[1].error;
  EXPECT_TRUE(results[2].ok()) << results[2].error;
}

TEST(Sweep, SlabMappingAblationDestroysCoalescing) {
  MachineConfig word = MachineConfig::paper_defaults();
  MachineConfig slab = MachineConfig::paper_defaults();
  slab.gpgpu.slab_mapping_ablation = true;
  const RunResult w = run_arch(ArchKind::kGpgpu, word, wl("count", 16384));
  const RunResult s = run_arch(ArchKind::kGpgpu, slab, wl("count", 16384));
  EXPECT_EQ(s.verification, "");
  const double w_lines = static_cast<double>(w.stats.at("sm.global_lines")) /
                         static_cast<double>(w.stats.at("sm.global_load_warps"));
  const double s_lines = static_cast<double>(s.stats.at("sm.global_lines")) /
                         static_cast<double>(s.stats.at("sm.global_load_warps"));
  EXPECT_GT(s_lines, 4.0 * w_lines)
      << "slab columns must touch many lines per warp load";
}

TEST(Sweep, NarrowChannelSlowsMemoryBoundKernels) {
  MachineConfig narrow = MachineConfig::paper_defaults();
  narrow.dram.channel_bits = 64;  // half bandwidth
  const RunResult full = run_arch(ArchKind::kMillipedeNoRateMatch,
                                  MachineConfig::paper_defaults(),
                                  wl("count", 65536));
  const RunResult half =
      run_arch(ArchKind::kMillipedeNoRateMatch, narrow, wl("count", 65536));
  EXPECT_GT(half.runtime_ps,
            full.runtime_ps + full.runtime_ps / 2)
      << "count is bandwidth-bound: halving bandwidth must hurt hard";
}

TEST(Sweep, BusEfficiencyOneRestoresPeakBandwidth) {
  MachineConfig ideal = MachineConfig::paper_defaults();
  ideal.dram.bus_efficiency = 1.0;
  const RunResult derated = run_arch(ArchKind::kMillipedeNoRateMatch,
                                     MachineConfig::paper_defaults(),
                                     wl("count", 65536));
  const RunResult full =
      run_arch(ArchKind::kMillipedeNoRateMatch, ideal, wl("count", 65536));
  EXPECT_LT(full.runtime_ps, derated.runtime_ps);
}

// --- SweepGrid DRAM axes ---

// Feeds a synthetic argv through SweepGrid::consume the way the sweep
// drivers do, returning the populated grid.
tools::SweepGrid consume_flags(std::vector<std::string> words) {
  words.insert(words.begin(), "sweep_test");
  std::vector<char*> argv;
  argv.reserve(words.size());
  for (std::string& w : words) argv.push_back(w.data());
  tools::ArgCursor args(static_cast<int>(argv.size()), argv.data());
  tools::SweepGrid grid;
  while (args.next()) {
    if (!grid.consume(args)) {
      ADD_FAILURE() << "flag not consumed: " << args.flag();
      break;
    }
  }
  return grid;
}

TEST(SweepGrid, DramFlagsPopulateAxes) {
  const tools::SweepGrid grid = consume_flags(
      {"--channels", "1,2", "--ranks", "2", "--mapping",
       "row:bank:col,row:rank:bank:channel:col", "--page-policy",
       "open,closed,open:idle=64:hits=4", "--refresh", "off,on:trefi=1000:trfc=100"});
  EXPECT_EQ(grid.channels, (std::vector<u32>{1, 2}));
  EXPECT_EQ(grid.ranks, (std::vector<u32>{2}));
  ASSERT_EQ(grid.mappings.size(), 2u);
  EXPECT_EQ(grid.mappings[1], "row:rank:bank:channel:col");
  EXPECT_EQ(grid.page_policies.size(), 3u);
  ASSERT_EQ(grid.refreshes.size(), 2u);
  EXPECT_EQ(grid.refreshes[1], "on:trefi=1000:trfc=100");
}

TEST(SweepGrid, DramAxesExpandInDocumentedOrder) {
  tools::SweepGrid grid = consume_flags(
      {"--arch", "millipede", "--bench", "count", "--channels", "1,2",
       "--refresh", "off,on"});
  const std::vector<sim::MatrixJob> matrix = grid.expand();
  // channels is the slower axis, refresh the fastest.
  ASSERT_EQ(matrix.size(), 4u);
  EXPECT_EQ(matrix[0].options.cfg.dram.channels, 1u);
  EXPECT_EQ(matrix[0].options.cfg.dram.refresh, "off");
  EXPECT_EQ(matrix[1].options.cfg.dram.channels, 1u);
  EXPECT_EQ(matrix[1].options.cfg.dram.refresh, "on");
  EXPECT_EQ(matrix[2].options.cfg.dram.channels, 2u);
  EXPECT_EQ(matrix[2].options.cfg.dram.refresh, "off");
  EXPECT_EQ(matrix[3].options.cfg.dram.channels, 2u);
  EXPECT_EQ(matrix[3].options.cfg.dram.refresh, "on");
  for (const sim::MatrixJob& job : matrix) {
    EXPECT_EQ(job.options.cfg.dram.mapping, "row:bank:col");
    EXPECT_EQ(job.options.cfg.dram.page_policy, "open");
  }
}

TEST(SweepGrid, MalformedMappingExitsTwoAtParseTime) {
  EXPECT_EXIT(consume_flags({"--mapping", "bank:row:col"}),
              testing::ExitedWithCode(2), "--mapping");
  EXPECT_EXIT(consume_flags({"--mapping", "row:bank"}),
              testing::ExitedWithCode(2), "--mapping");
  EXPECT_EXIT(consume_flags({"--mapping", "row:tower:col"}),
              testing::ExitedWithCode(2), "--mapping");
}

TEST(SweepGrid, MalformedPagePolicyExitsTwoAtParseTime) {
  EXPECT_EXIT(consume_flags({"--page-policy", "ajar"}),
              testing::ExitedWithCode(2), "--page-policy");
  EXPECT_EXIT(consume_flags({"--page-policy", "open:idle=x"}),
              testing::ExitedWithCode(2), "--page-policy");
  EXPECT_EXIT(consume_flags({"--page-policy", "closed:idle=4"}),
              testing::ExitedWithCode(2), "--page-policy");
}

TEST(SweepGrid, MalformedRefreshExitsTwoAtParseTime) {
  EXPECT_EXIT(consume_flags({"--refresh", "sometimes"}),
              testing::ExitedWithCode(2), "--refresh");
  EXPECT_EXIT(consume_flags({"--refresh", "on:trefi=0"}),
              testing::ExitedWithCode(2), "--refresh");
  EXPECT_EXIT(consume_flags({"--refresh", "off:trefi=100"}),
              testing::ExitedWithCode(2), "--refresh");
}

}  // namespace
}  // namespace mlp::arch
