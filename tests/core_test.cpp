// Functional executor semantics and corelet timing behaviour.

#include <gtest/gtest.h>

#include <cstring>

#include "core/corelet.hpp"
#include "core/functional.hpp"
#include "isa/assembler.hpp"

namespace mlp::core {
namespace {

using isa::Csr;
using isa::Opcode;

u32 fbits(float f) {
  u32 bits;
  std::memcpy(&bits, &f, 4);
  return bits;
}

float as_float(u32 bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

/// Runs a small program functionally on one context until halt.
struct FuncRunner {
  explicit FuncRunner(const std::string& src)
      : program(isa::must_assemble("func", src)), local(4096), dram(4096) {}

  void run(u32 max_steps = 100000) {
    while (ctx.state != Context::State::kHalted) {
      ASSERT_GT(max_steps--, 0u) << "program did not halt";
      step(ctx, program, local, dram);
    }
  }

  isa::Program program;
  Context ctx;
  mem::LocalStore local;
  mem::DramImage dram;
};

// --- ALU semantics via parameterized cases: {source, reg, expected} ---

struct AluCase {
  const char* name;
  const char* body;   // program body; result expected in r3
  u32 expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpected) {
  FuncRunner r(std::string(GetParam().body) + "\nhalt\n");
  r.run();
  EXPECT_EQ(r.ctx.reg(3), GetParam().expected) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, AluSemantics,
    ::testing::Values(
        AluCase{"add", "li r1, 7\n li r2, 5\n add r3, r1, r2", 12},
        AluCase{"sub_wraps", "li r1, 3\n li r2, 5\n sub r3, r1, r2",
                0xfffffffe},
        AluCase{"mul", "li r1, 100\n li r2, 200\n mul r3, r1, r2", 20000},
        AluCase{"mulh", "li r1, 0x40000000\n li r2, 8\n mulh r3, r1, r2", 2},
        AluCase{"div", "li r1, -20\n li r2, 3\n div r3, r1, r2",
                static_cast<u32>(-6)},
        AluCase{"div_by_zero", "li r1, 5\n li r2, 0\n div r3, r1, r2",
                0xffffffff},
        AluCase{"rem", "li r1, 17\n li r2, 5\n rem r3, r1, r2", 2},
        AluCase{"and", "li r1, 0xff\n li r2, 0x0f\n and r3, r1, r2", 0x0f},
        AluCase{"or", "li r1, 0xf0\n li r2, 0x0f\n or r3, r1, r2", 0xff},
        AluCase{"xor", "li r1, 0xff\n li r2, 0x0f\n xor r3, r1, r2", 0xf0},
        AluCase{"sll", "li r1, 1\n li r2, 11\n sll r3, r1, r2", 2048},
        AluCase{"srl", "li r1, 0x80000000\n li r2, 31\n srl r3, r1, r2", 1},
        AluCase{"sra", "li r1, -16\n li r2, 2\n sra r3, r1, r2",
                static_cast<u32>(-4)},
        AluCase{"slt_true", "li r1, -1\n li r2, 0\n slt r3, r1, r2", 1},
        AluCase{"sltu_false", "li r1, -1\n li r2, 0\n sltu r3, r1, r2", 0},
        AluCase{"addi", "li r1, 10\n addi r3, r1, -3", 7},
        AluCase{"slli", "li r1, 3\n slli r3, r1, 4", 48},
        AluCase{"srai", "li r1, -64\n srai r3, r1, 3", static_cast<u32>(-8)},
        AluCase{"slti", "li r1, 4\n slti r3, r1, 5", 1},
        AluCase{"lui", "lui r3, 1", 1u << 13}));

INSTANTIATE_TEST_SUITE_P(
    FloatOps, AluSemantics,
    ::testing::Values(
        AluCase{"fadd", "li.f r1, 1.5\n li.f r2, 2.25\n fadd r3, r1, r2",
                0x40700000},  // 3.75f
        AluCase{"fmul", "li.f r1, 2.0\n li.f r2, 3.0\n fmul r3, r1, r2",
                0x40c00000},  // 6.0f
        AluCase{"flt_true", "li.f r1, 1.0\n li.f r2, 2.0\n flt r3, r1, r2", 1},
        AluCase{"flt_false", "li.f r1, 2.0\n li.f r2, 1.0\n flt r3, r1, r2", 0},
        AluCase{"fle_eq", "li.f r1, 2.0\n li.f r2, 2.0\n fle r3, r1, r2", 1},
        AluCase{"fsqrt", "li.f r1, 9.0\n fsqrt r3, r1", 0x40400000},  // 3.0f
        AluCase{"fneg", "li.f r1, 1.0\n fneg r3, r1", 0xbf800000},
        AluCase{"f2i", "li.f r1, 7.9\n fcvt.w.s r3, r1", 7},
        AluCase{"i2f", "li r1, 4\n fcvt.s.w r3, r1", 0x40800000}));  // 4.0f

TEST(Functional, R0IsHardwiredZero) {
  FuncRunner r("li r0, 55\n addi r3, r0, 1\n halt\n");
  r.run();
  EXPECT_EQ(r.ctx.reg(0), 0u);
  EXPECT_EQ(r.ctx.reg(3), 1u);
}

TEST(Functional, BranchLoopCountsToTen) {
  FuncRunner r(R"(
    li r1, 0
    li r2, 10
loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
  )");
  r.run();
  EXPECT_EQ(r.ctx.reg(1), 10u);
}

TEST(Functional, JalLinksReturnAddress) {
  FuncRunner r(R"(
    jal r5, target
    halt
target:
    halt
  )");
  r.run();
  EXPECT_EQ(r.ctx.reg(5), 1u);
  EXPECT_EQ(r.ctx.pc, 2u);
}

TEST(Functional, JalrComputedJump) {
  FuncRunner r(R"(
    li r1, 3
    jalr r2, r1, 0
    halt
    halt
  )");
  r.run();
  EXPECT_EQ(r.ctx.pc, 3u);
  EXPECT_EQ(r.ctx.reg(2), 2u);
}

TEST(Functional, CsrReadsThreadIdentity) {
  FuncRunner r("csrr r1, TID\n csrr r2, ARG3\n halt\n");
  r.ctx.csr.set(Csr::kTid, 77);
  r.ctx.csr.set(Csr::kArg3, 1234);
  r.run();
  EXPECT_EQ(r.ctx.reg(1), 77u);
  EXPECT_EQ(r.ctx.reg(2), 1234u);
}

TEST(Functional, GlobalLoadReadsDramImage) {
  FuncRunner r("li r1, 64\n lw r3, 4(r1)\n halt\n");
  r.dram.write_u32(68, 0xcafe);
  r.run();
  EXPECT_EQ(r.ctx.reg(3), 0xcafeu);
}

TEST(Functional, GlobalStoreWritesDramImage) {
  FuncRunner r("li r1, 128\n li r2, 99\n sw r2, 0(r1)\n halt\n");
  r.run();
  EXPECT_EQ(r.dram.read_u32(128), 99u);
}

TEST(Functional, LocalLoadStoreAndAtomics) {
  FuncRunner r(R"(
    li r1, 16
    li r2, 5
    sw.l r2, 0(r1)
    amoadd.l r3, r2, 0(r1)   ; r3 = 5, local = 10
    lw.l r4, 0(r1)
    halt
  )");
  r.run();
  EXPECT_EQ(r.ctx.reg(3), 5u);
  EXPECT_EQ(r.ctx.reg(4), 10u);
}

TEST(Functional, FloatAtomicAccumulate) {
  FuncRunner r(R"(
    li r1, 8
    li.f r2, 1.25
    famoadd.l r3, r2, 0(r1)
    famoadd.l r3, r2, 0(r1)
    halt
  )");
  r.run();
  EXPECT_FLOAT_EQ(r.local.load_f32(8), 2.5f);
  EXPECT_FLOAT_EQ(as_float(r.ctx.reg(3)), 1.25f);
}

TEST(Functional, ClassifyKinds) {
  EXPECT_EQ(classify({Opcode::kAdd, 1, 2, 3, 0}), StepKind::kAlu);
  EXPECT_EQ(classify({Opcode::kFadd, 1, 2, 3, 0}), StepKind::kFloat);
  EXPECT_EQ(classify({Opcode::kLw, 1, 2, 0, 0}), StepKind::kGlobalLoad);
  EXPECT_EQ(classify({Opcode::kSw, 0, 2, 1, 0}), StepKind::kGlobalStore);
  EXPECT_EQ(classify({Opcode::kLwl, 1, 2, 0, 0}), StepKind::kLocal);
  EXPECT_EQ(classify({Opcode::kBeq, 0, 1, 2, 0}), StepKind::kBranch);
  EXPECT_EQ(classify({Opcode::kJal, 1, 0, 0, 0}), StepKind::kJump);
  EXPECT_EQ(classify({Opcode::kCsrr, 1, 0, 0, 0}), StepKind::kCsr);
  EXPECT_EQ(classify({Opcode::kHalt, 0, 0, 0, 0}), StepKind::kHalt);
}

TEST(Functional, GlobalAddrComputesBasePlusOffset) {
  Context ctx;
  ctx.set_reg(5, 1000);
  EXPECT_EQ(global_addr(ctx, {Opcode::kLw, 1, 5, 0, -8}), 992u);
}

// --- Corelet timing ---

/// Port with scripted latency; can also withhold completions (kPending) or
/// force retries.
class FakePort : public GlobalPort {
 public:
  PortResult load(u32, u32, Addr addr, Picos now,
                  std::function<void(Picos)> wakeup) override {
    ++loads;
    last_addr = addr;
    if (retries_left > 0) {
      --retries_left;
      return {PortStatus::kRetry, 0};
    }
    if (pend) {
      pending.push_back(std::move(wakeup));
      return {PortStatus::kPending, 0};
    }
    return {PortStatus::kDone, now + latency};
  }

  void complete_all(Picos at) {
    auto batch = std::move(pending);
    pending.clear();
    for (auto& cb : batch) cb(at);
  }

  int loads = 0;
  Addr last_addr = 0;
  int retries_left = 0;
  bool pend = false;
  Picos latency = 0;
  std::vector<std::function<void(Picos)>> pending;
};

struct CoreletFixture : ::testing::Test {
  CoreletFixture() : local(4096), dram(65536) {
    cfg.contexts = 4;
  }

  void make(const std::string& src) {
    program = isa::must_assemble("core", src);
    corelet = std::make_unique<Corelet>(0, cfg, &program, &local, &dram,
                                        &port, &stats);
  }

  /// Ticks until halted; returns number of cycles.
  u64 run(u64 limit = 100000) {
    u64 cycles = 0;
    while (!corelet->halted()) {
      MLP_CHECK(cycles < limit, "corelet did not halt");
      corelet->tick(now, period);
      now += period;
      ++cycles;
    }
    return cycles;
  }

  CoreConfig cfg;
  isa::Program program;
  mem::LocalStore local;
  mem::DramImage dram;
  FakePort port;
  ExecStats stats;
  std::unique_ptr<Corelet> corelet;
  Picos now = 0;
  Picos period = 1429;
};

TEST_F(CoreletFixture, AllContextsRunToCompletion) {
  make(R"(
    csrr r1, TID
    addi r2, r1, 1
    halt
  )");
  for (u32 i = 0; i < 4; ++i) corelet->context(i).csr.set(Csr::kTid, i);
  run();
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(corelet->context(i).reg(2), i + 1);
  }
  EXPECT_EQ(stats.instructions.value, 12u);
}

TEST_F(CoreletFixture, SingleIssueOneInstructionPerCycle) {
  make("addi r1, r1, 1\n addi r1, r1, 1\n halt\n");
  const u64 cycles = run();
  // 4 contexts x 3 instructions, one instruction per cycle.
  EXPECT_EQ(cycles, 12u);
  EXPECT_EQ(stats.busy_cycles.value, 12u);
  EXPECT_EQ(stats.idle_cycles.value, 0u);
}

TEST_F(CoreletFixture, MultithreadingHidesMemoryLatency) {
  // Each context: load (port latency 10 cycles) then some ALU work.
  port.latency = 10 * period;
  make(R"(
    csrr r1, INPUT_BASE
    lw   r2, 0(r1)
    addi r3, r2, 1
    halt
  )");
  for (u32 i = 0; i < 4; ++i) {
    corelet->context(i).csr.set(Csr::kInputBase, i * 4);
  }
  dram.write_u32(0, 5);
  const u64 cycles = run();
  // Serial execution would need 4 * (2 + 10 + 2) cycles; overlapping the
  // four loads must be much cheaper.
  EXPECT_LT(cycles, 30u);
  EXPECT_EQ(port.loads, 4);
  EXPECT_EQ(corelet->context(0).reg(3), 6u);
}

TEST_F(CoreletFixture, PendingLoadBlocksContextUntilWakeup) {
  port.pend = true;
  make("lw r2, 0(r0)\n addi r3, r2, 1\n halt\n");
  cfg.contexts = 1;
  make("lw r2, 0(r0)\n addi r3, r2, 1\n halt\n");
  dram.write_u32(0, 41);
  corelet->tick(now, period);
  EXPECT_EQ(corelet->context(0).state, Context::State::kWaitMem);
  // No progress while waiting.
  for (int i = 0; i < 5; ++i) {
    now += period;
    corelet->tick(now, period);
  }
  EXPECT_EQ(stats.instructions.value, 1u);
  EXPECT_EQ(stats.idle_cycles.value, 5u);
  port.complete_all(now + period);
  run();
  EXPECT_EQ(corelet->context(0).reg(3), 42u);
}

TEST_F(CoreletFixture, RetryStallsDoNotExecute) {
  cfg.contexts = 1;
  port.retries_left = 3;
  make("lw r2, 0(r0)\n halt\n");
  run();
  EXPECT_EQ(stats.retry_stalls.value, 3u);
  EXPECT_EQ(port.loads, 4);  // 3 rejected + 1 accepted
  EXPECT_EQ(stats.global_loads.value, 1u);
}

TEST_F(CoreletFixture, LocalLatencyAppliedToContext) {
  cfg.contexts = 1;
  cfg.local_latency = 3;
  make("sw.l r1, 0(r0)\n halt\n");
  const u64 cycles = run();
  EXPECT_EQ(cycles, 1u + 3u);  // store occupies ctx for local_latency cycles
}

TEST_F(CoreletFixture, TakenBranchPaysPenalty) {
  cfg.contexts = 1;
  cfg.branch_penalty = 2;
  make(R"(
    li r1, 1
    beq r0, r0, skip   ; always taken
skip:
    halt
  )");
  const u64 cycles = run();
  // li(1) + branch(1) + 2 penalty cycles + halt(1)
  EXPECT_EQ(cycles, 5u);
  EXPECT_EQ(stats.branches_taken.value, 1u);
}

TEST_F(CoreletFixture, NotTakenBranchSingleCycle) {
  cfg.contexts = 1;
  cfg.branch_penalty = 2;
  make(R"(
    li r1, 1
    beq r1, r0, skip   ; never taken
    nop
skip:
    halt
  )");
  const u64 cycles = run();
  EXPECT_EQ(cycles, 4u);
  EXPECT_EQ(stats.branches.value, 1u);
  EXPECT_EQ(stats.branches_taken.value, 0u);
}

TEST_F(CoreletFixture, RoundRobinIsFairAcrossContexts) {
  make(R"(
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
  )");
  for (u32 i = 0; i < 4; ++i) corelet->context(i).set_reg(2, 100);
  run();
  // All contexts completed the same loop: instret identical.
  const u64 expect = corelet->context(0).instret;
  for (u32 i = 1; i < 4; ++i) {
    EXPECT_EQ(corelet->context(i).instret, expect);
  }
}

TEST_F(CoreletFixture, GlobalStoreGoesThroughPort) {
  cfg.contexts = 1;
  make("li r1, 256\n li r2, 7\n sw r2, 0(r1)\n halt\n");
  run();
  EXPECT_EQ(stats.global_stores.value, 1u);
  EXPECT_EQ(dram.read_u32(256), 7u);
}

TEST(FloatBits, HelperSanity) {
  EXPECT_EQ(fbits(3.75f), 0x40700000u);
}

}  // namespace
}  // namespace mlp::core
