// Tests for the record-contiguous (slab-interleaving) layout of
// Section IV-C: geometry, CSR re-expression, slice partitioning, expected
// masks, and end-to-end golden verification on Millipede and SSMC —
// including tiny prefetch windows that the field-major layout cannot use.

#include <gtest/gtest.h>

#include <set>

#include "arch/system.hpp"
#include "common/error.hpp"
#include "workloads/binding.hpp"

namespace mlp::workloads {
namespace {

TEST(SlabLayout, AddressesAreRecordContiguous) {
  InterleavedLayout layout(2048, 16, 3000, 0,
                           LayoutMode::kRecordContiguous);
  for (u64 r = 0; r < 64; ++r) {
    for (u32 f = 0; f + 1 < 16; ++f) {
      EXPECT_EQ(layout.address(f + 1, r), layout.address(f, r) + 4);
    }
  }
  // 32 records per row: record 32 starts the second row.
  EXPECT_EQ(layout.address(0, 32), 2048u);
  EXPECT_EQ(layout.record_row_footprint(), 1u);
}

TEST(SlabLayout, AddressesBijective) {
  InterleavedLayout layout(2048, 8, 1000, 0,
                           LayoutMode::kRecordContiguous);
  std::set<Addr> seen;
  for (u64 r = 0; r < 1000; ++r) {
    for (u32 f = 0; f < 8; ++f) {
      ASSERT_TRUE(seen.insert(layout.address(f, r)).second);
      ASSERT_LT(layout.address(f, r), layout.total_bytes());
    }
  }
}

TEST(SlabLayout, CsrViewAddressesMatchPhysical) {
  // The kernel computes field f of (group g, idx) as
  //   base + g*CSR_FIELDS*(1<<CSR_ROW_SHIFT) + idx*4 + f*(1<<CSR_ROW_SHIFT)
  // which must agree with address(f, record) under the slice mapping.
  InterleavedLayout layout(2048, 16, 4096, 0,
                           LayoutMode::kRecordContiguous);
  const u32 cores = 32, contexts = 4;
  for (u32 c = 0; c < cores; c += 7) {
    for (u32 x = 0; x < contexts; ++x) {
      const ThreadSlice s =
          layout.slice(ThreadMapping::kSlab, cores, contexts, c, x);
      for (u32 g = 0; g < 3; ++g) {
        for (u32 j = 0; j < s.rpt; ++j) {
          const u64 idx = s.idx_base + j * s.idx_stride;
          const u64 premult = (static_cast<u64>(g) << layout.csr_group_shift()) + idx;
          const u64 record = premult / 16;  // fields = 16
          for (u32 f = 0; f < 16; ++f) {
            const Addr kernel_addr =
                static_cast<Addr>(g) * layout.csr_fields() *
                    (1u << layout.csr_row_shift()) +
                idx * 4 + f * (1u << layout.csr_row_shift());
            EXPECT_EQ(kernel_addr, layout.address(f, record))
                << "c=" << c << " x=" << x << " g=" << g << " j=" << j
                << " f=" << f;
          }
        }
      }
    }
  }
}

TEST(SlabLayout, SlicesPartitionEveryGroupOnce) {
  InterleavedLayout layout(2048, 8, 8192, 0,
                           LayoutMode::kRecordContiguous);
  const u32 cores = 32, contexts = 4;
  // Group = 2 rows x 64 records = 128 records; indices are premultiplied.
  std::set<u64> owned;
  for (u32 c = 0; c < cores; ++c) {
    for (u32 x = 0; x < contexts; ++x) {
      const ThreadSlice s =
          layout.slice(ThreadMapping::kSlab, cores, contexts, c, x);
      for (u32 j = 0; j < s.rpt; ++j) {
        ASSERT_TRUE(owned.insert(s.idx_base + j * s.idx_stride).second);
      }
    }
  }
  EXPECT_EQ(owned.size(), 128u);  // every record exactly once
  for (u64 idx : owned) EXPECT_EQ(idx % 8, 0u) << "record-aligned indices";
}

TEST(SlabLayout, ExpectedMasksCoverValidRecordsOnly) {
  // 40 records of 16 fields: 32 in row 0, 8 in row 1, rows 2-3 padding.
  InterleavedLayout layout(2048, 16, 40, 0, LayoutMode::kRecordContiguous);
  const u32 cores = 32;
  // Row 0: every corelet's slab holds one full 16-word record.
  for (u32 c = 0; c < cores; ++c) {
    EXPECT_EQ(layout.expected_slab_mask(0, c, cores), 0xffffu);
  }
  // Row 1: only corelets 0..7 hold valid records (records 32..39).
  EXPECT_EQ(layout.expected_slab_mask(1, 7, cores), 0xffffu);
  EXPECT_EQ(layout.expected_slab_mask(1, 8, cores), 0u);
}

TEST(SlabLayout, RejectsNonPowerOfTwoFields) {
  EXPECT_DEATH(InterleavedLayout(2048, 9, 100, 0,
                                 LayoutMode::kRecordContiguous),
               "power-of-two field count");
}

class SlabGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(SlabGolden, VerifiesOnMillipedeAndSsmc) {
  WorkloadParams params;
  params.num_records = 4096;
  const Workload wl = make_bmla(GetParam(), params);
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.slab_layout = true;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc}) {
    const arch::RunResult r = arch::run_arch(kind, cfg, wl);
    EXPECT_EQ(r.verification, "") << arch_name(kind) << "/" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2Fields, SlabGolden,
                         ::testing::Values("count", "sample", "variance",
                                           "classify", "kmeans", "pca",
                                           "gda"),
                         [](const auto& info) { return info.param; });

TEST(SlabLayout, TinyPrefetchWindowWorksContiguousOnly) {
  WorkloadParams params;
  params.num_records = 8192;
  const Workload wl = make_bmla("pca", params);
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.millipede.pf_entries = 4;
  // Field-major: a pca record needs 16 concurrent rows -> rejected.
  EXPECT_THROW(arch::run_arch(arch::ArchKind::kMillipede, cfg, wl), SimError);
  // Record-contiguous: one row per record -> 4 entries suffice.
  cfg.slab_layout = true;
  const arch::RunResult r =
      arch::run_arch(arch::ArchKind::kMillipedeNoRateMatch, cfg, wl);
  EXPECT_EQ(r.verification, "");
}

TEST(SlabLayout, GpgpuRejectsContiguousLayout) {
  WorkloadParams params;
  params.num_records = 2048;
  const Workload wl = make_bmla("count", params);
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.slab_layout = true;
  EXPECT_THROW(arch::run_arch(arch::ArchKind::kGpgpu, cfg, wl), SimError);
}

}  // namespace
}  // namespace mlp::workloads
