// Service-layer tests: protocol framing and (de)serialization, then a real
// daemon on a real Unix-domain socket — submit/fetch round trips, concurrent
// clients, queue-full backpressure, cancel semantics, graceful drain, warm
// cache-hit accounting, and the determinism guarantee that a warm-cache
// remote result is byte-identical to a cold local run.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/report.hpp"

namespace mlp::serve {
namespace {

// ---- framing ---------------------------------------------------------------

TEST(Framing, RoundTripsPayloads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<std::string> payloads = {"", "{}",
                                             std::string(4096, 'x')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(write_frame(fds[0], payload));
    const std::optional<std::string> got = read_frame(fds[1]);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  ::close(fds[0]);
  const std::optional<std::string> eof = read_frame(fds[1]);
  EXPECT_FALSE(eof.has_value());  // clean EOF between frames
  ::close(fds[1]);
}

TEST(Framing, RejectsOversizedAndTruncatedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Length header claiming 1 GB: protocol violation before any payload.
  const unsigned char huge[4] = {0, 0, 0, 0x40};
  ASSERT_EQ(::write(fds[0], huge, 4), 4);
  EXPECT_THROW(read_frame(fds[1]), SimError);
  // Header promising 100 bytes, then EOF: truncated frame.
  const unsigned char short_frame[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], short_frame, 4), 4);
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), SimError);
  ::close(fds[1]);
}

// ---- job (de)serialization -------------------------------------------------

TEST(JobJson, RoundTripsEveryField) {
  JobSpec spec;
  spec.job.kind = arch::ArchKind::kVwsRow;
  spec.job.bench = "kmeans";
  spec.job.tag = "point-7";
  spec.job.options.records = 4096;
  spec.job.options.rows = 96;
  spec.job.options.seed = 11;
  spec.job.options.record_barrier = true;
  spec.job.options.cfg.core.cores = 64;
  spec.job.options.cfg.gpgpu.warp_width = 64;
  spec.job.options.cfg.millipede.pf_entries = 8;
  spec.job.options.cfg.dram.bus_efficiency = 0.5;
  spec.job.options.cfg.slab_layout = true;
  spec.job.options.cfg.dram.fault.bit_flip_rate = 1e-7;
  spec.job.options.cfg.dram.fault.ecc = true;
  spec.job.options.cfg.dram.fault.seed = 3;
  spec.job.options.cfg.watchdog.max_cycles = 123456;
  spec.job.options.trace.chrome_json = true;
  spec.job.options.trace.dir = "/tmp/traces";
  spec.hold_ms = 250;

  const JobSpec back = job_from_json(trace::json_parse(job_json(spec)));
  EXPECT_EQ(back.job.kind, spec.job.kind);
  EXPECT_EQ(back.job.bench, spec.job.bench);
  EXPECT_EQ(back.job.tag, spec.job.tag);
  EXPECT_EQ(back.job.options.records, 4096u);
  EXPECT_EQ(back.job.options.rows, 96u);
  EXPECT_EQ(back.job.options.seed, 11u);
  EXPECT_TRUE(back.job.options.record_barrier);
  EXPECT_EQ(back.job.options.cfg.core.cores, 64u);
  EXPECT_EQ(back.job.options.cfg.gpgpu.warp_width, 64u);
  EXPECT_EQ(back.job.options.cfg.millipede.pf_entries, 8u);
  EXPECT_DOUBLE_EQ(back.job.options.cfg.dram.bus_efficiency, 0.5);
  EXPECT_TRUE(back.job.options.cfg.slab_layout);
  EXPECT_DOUBLE_EQ(back.job.options.cfg.dram.fault.bit_flip_rate, 1e-7);
  EXPECT_TRUE(back.job.options.cfg.dram.fault.ecc);
  EXPECT_EQ(back.job.options.cfg.dram.fault.seed, 3u);
  EXPECT_EQ(back.job.options.cfg.watchdog.max_cycles, 123456u);
  EXPECT_TRUE(back.job.options.trace.chrome_json);
  EXPECT_EQ(back.job.options.trace.dir, "/tmp/traces");
  EXPECT_EQ(back.hold_ms, 250u);
}

TEST(JobJson, RejectsMalformedSpecs) {
  const auto parse = [](const std::string& text) {
    return job_from_json(trace::json_parse(text));
  };
  EXPECT_THROW(parse(R"({"bench":"count","no_such_knob":1})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","arch":"cray"})"), SimError);
  EXPECT_THROW(parse(R"({})"), SimError);  // bench is required
  EXPECT_THROW(parse(R"({"bench":"count","rows":"many"})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","cores":0})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","fault_rate":1.5})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","ecc":"yes"})"), SimError);
  EXPECT_THROW(parse(R"([1,2,3])"), SimError);
}

TEST(Responses, EnvelopeDecodes) {
  const Response pong = parse_response(pong_response());
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.type, "pong");
  EXPECT_EQ(pong.doc.u64_at("protocol_version"), kProtocolVersion);

  const Response err =
      parse_response(error_response(kErrQueueFull, "queue full"));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, kErrQueueFull);
  EXPECT_EQ(err.message, "queue full");

  const Response sub = parse_response(submitted_response(42));
  EXPECT_TRUE(sub.ok);
  EXPECT_EQ(sub.doc.u64_at("id"), 42u);

  EXPECT_THROW(parse_response("[]"), SimError);
  EXPECT_THROW(parse_response(R"({"type":"x"})"), SimError);  // no "ok"
}

// ---- live daemon -----------------------------------------------------------

/// Starts a Server on a short /tmp socket path and runs its accept loop on
/// a background thread; tears it down (drain + join) on destruction.
class LiveServer {
 public:
  explicit LiveServer(ServeConfig cfg) : server_([&cfg] {
    static int counter = 0;
    cfg.socket_path = "/tmp/mlpserve-test-" + std::to_string(::getpid()) +
                      "-" + std::to_string(counter++) + ".sock";
    return cfg;
  }()) {
    server_.listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~LiveServer() { stop(); }

  void stop() {
    server_.request_stop();
    if (thread_.joinable()) thread_.join();
  }

  Server& server() { return server_; }
  const std::string& path() const { return server_.socket_path(); }

 private:
  Server server_;
  std::thread thread_;
};

JobSpec small_job(const std::string& bench, arch::ArchKind kind =
                                                arch::ArchKind::kMillipede) {
  JobSpec spec;
  spec.job.kind = kind;
  spec.job.bench = bench;
  spec.job.options.records = 1024;
  return spec;
}

TEST(Service, SubmitFetchRoundTrip) {
  LiveServer live(ServeConfig{"", /*threads=*/2, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  const Response pong = client.ping();
  ASSERT_TRUE(pong.ok);

  const Response sub = client.submit(small_job("count"));
  ASSERT_TRUE(sub.ok) << sub.message;
  const u64 id = sub.doc.u64_at("id");

  const Response result = client.result(id, /*wait=*/true);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(result.doc.str_at("state"), "done");
  EXPECT_TRUE(result.doc.find("run_ok")->boolean);
  // The CSV row and stats object are server-rendered with the shared
  // formatting code, so they match a local run byte for byte.
  const sim::MatrixResult local = sim::run_job(small_job("count").job);
  EXPECT_EQ(result.doc.str_at("csv"), sim::sweep_csv_row(local));
  EXPECT_EQ(result.doc.str_at("stats"), sim::stats_json_run(local));

  // Unknown jobs and unknown request types are typed errors.
  const Response missing = client.result(9999, false);
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, kErrNoSuchJob);
  const Response bogus = client.roundtrip(R"({"type":"frobnicate"})");
  EXPECT_FALSE(bogus.ok);
  EXPECT_EQ(bogus.error, kErrBadRequest);
}

TEST(Service, WarmCacheHitsAreReportedAndBitIdentical) {
  LiveServer live(ServeConfig{"", /*threads=*/2, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  // Same preparation key across architectures: millipede cold, then ssmc
  // and a resubmit both warm.
  const u64 id1 = client.submit(small_job("count")).doc.u64_at("id");
  const Response r1 = client.result(id1, true);
  ASSERT_TRUE(r1.ok);
  EXPECT_FALSE(r1.doc.find("cache_hit")->boolean);

  const u64 id2 =
      client.submit(small_job("count", arch::ArchKind::kSsmc)).doc.u64_at("id");
  const Response r2 = client.result(id2, true);
  ASSERT_TRUE(r2.ok);
  EXPECT_TRUE(r2.doc.find("cache_hit")->boolean);

  const u64 id3 = client.submit(small_job("count")).doc.u64_at("id");
  const Response r3 = client.result(id3, true);
  ASSERT_TRUE(r3.ok);
  EXPECT_TRUE(r3.doc.find("cache_hit")->boolean);
  // Warm rerun: byte-identical to the cold run's document.
  EXPECT_EQ(r3.doc.str_at("csv"), r1.doc.str_at("csv"));
  EXPECT_EQ(r3.doc.str_at("stats"), r1.doc.str_at("stats"));

  const Response status = client.server_status();
  ASSERT_TRUE(status.ok);
  const trace::JsonValue* cache = status.doc.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->u64_at("misses"), 1u);
  EXPECT_EQ(cache->u64_at("hits"), 2u);
}

TEST(Service, ConcurrentClientsGetTheirOwnResults) {
  LiveServer live(ServeConfig{"", /*threads=*/4, /*queue_limit=*/32});
  const std::vector<std::string> benches = {"count", "sample", "variance",
                                            "kmeans"};
  std::vector<std::string> stats(benches.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < benches.size(); ++i) {
    clients.emplace_back([&, i] {
      Client client;
      client.connect(live.path());
      const Response sub = client.submit(small_job(benches[i]));
      ASSERT_TRUE(sub.ok) << sub.message;
      const Response result = client.result(sub.doc.u64_at("id"), true);
      ASSERT_TRUE(result.ok) << result.message;
      stats[i] = result.doc.str_at("stats");
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < benches.size(); ++i) {
    const sim::MatrixResult local = sim::run_job(small_job(benches[i]).job);
    EXPECT_EQ(stats[i], sim::stats_json_run(local)) << benches[i];
  }
}

TEST(Service, QueueFullIsATypedRejectionNotADrop) {
  // One worker, admission bound 2: a held job pins the worker while staying
  // queued, a second waits in the pool queue, and the third submit must be
  // rejected — deterministically, with the typed queue-full error.
  LiveServer live(ServeConfig{"", /*threads=*/1, /*queue_limit=*/2});
  Client client;
  client.connect(live.path());

  JobSpec held = small_job("count");
  held.hold_ms = 60'000;  // released early by drain; never waited out
  const Response first = client.submit(held);
  ASSERT_TRUE(first.ok);
  const Response second = client.submit(small_job("sample"));
  ASSERT_TRUE(second.ok);

  const Response rejected = client.submit(small_job("variance"));
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, kErrQueueFull);

  // Backpressure is recoverable: cancel the held job, slot frees, resubmit
  // succeeds.
  const Response cancelled = client.cancel(first.doc.u64_at("id"));
  ASSERT_TRUE(cancelled.ok) << cancelled.message;
  const Response retried = client.submit(small_job("variance"));
  EXPECT_TRUE(retried.ok) << retried.message;
}

TEST(Service, CancelSemantics) {
  LiveServer live(ServeConfig{"", /*threads=*/1, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  JobSpec held = small_job("count");
  held.hold_ms = 60'000;
  const u64 held_id = client.submit(held).doc.u64_at("id");
  EXPECT_EQ(client.job_status(held_id).doc.str_at("state"), "queued");

  // Cancelling a queued job works and is idempotent.
  ASSERT_TRUE(client.cancel(held_id).ok);
  EXPECT_EQ(client.job_status(held_id).doc.str_at("state"), "cancelled");
  EXPECT_TRUE(client.cancel(held_id).ok);

  // A cancelled job's result reports the cancellation, not stale data.
  const Response result = client.result(held_id, true);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.doc.str_at("state"), "cancelled");

  // A finished job can no longer be cancelled.
  const u64 done_id = client.submit(small_job("sample")).doc.u64_at("id");
  ASSERT_TRUE(client.result(done_id, true).ok);
  const Response late = client.cancel(done_id);
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error, kErrJobDone);

  const Response missing = client.cancel(777);
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, kErrNoSuchJob);
}

TEST(Service, GracefulDrainFinishesAdmittedJobs) {
  LiveServer live(ServeConfig{"", /*threads=*/2, /*queue_limit=*/16});
  Client client;
  client.connect(live.path());

  // Three held jobs: drain must cut the holds short and still run them all.
  std::vector<u64> ids;
  for (const char* bench : {"count", "sample", "variance"}) {
    JobSpec spec = small_job(bench);
    spec.hold_ms = 60'000;
    const Response sub = client.submit(spec);
    ASSERT_TRUE(sub.ok) << sub.message;
    ids.push_back(sub.doc.u64_at("id"));
  }

  const Response bye = client.shutdown();
  ASSERT_TRUE(bye.ok);
  EXPECT_EQ(bye.type, "shutting-down");
  live.stop();  // joins run(): returns only after the drain completes

  const ServerStatus status = live.server().status();
  EXPECT_EQ(status.done, 3u);  // every admitted job ran to completion
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.running, 0u);
  EXPECT_FALSE(status.accepting);
}

TEST(Service, SubmitAfterShutdownIsRefused) {
  LiveServer live(ServeConfig{"", /*threads=*/1, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());
  // Drain only closes connections after running jobs finish, so a slow job
  // holds the window open: the refusal below must be the typed error, not
  // a racy connection drop.
  JobSpec slow = small_job("count");
  slow.job.options.records = u64{1} << 18;
  ASSERT_TRUE(client.submit(slow).ok);
  ASSERT_TRUE(client.shutdown().ok);
  const Response refused = client.submit(small_job("count"));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error, kErrShuttingDown);
}

TEST(Service, RunMatrixRemoteMatchesLocalBytes) {
  LiveServer live(ServeConfig{"", /*threads=*/4, /*queue_limit=*/3});
  Client client;
  client.connect(live.path());

  // 4 architectures × 2 benchmarks through a 3-slot admission window: the
  // sliding-window client must absorb queue-full backpressure and still
  // return every result in submission order.
  std::vector<sim::MatrixJob> jobs;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc,
        arch::ArchKind::kGpgpu, arch::ArchKind::kMulticore}) {
    for (const std::string& bench :
         {std::string("count"), std::string("variance")}) {
      jobs.push_back(small_job(bench, kind).job);
    }
  }
  const std::vector<RemoteResult> remote = run_matrix_remote(client, jobs);
  const std::vector<sim::MatrixResult> local = sim::run_matrix(jobs, 2);

  ASSERT_EQ(remote.size(), local.size());
  std::vector<std::string> remote_stats, local_stats;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(remote[i].ok) << remote[i].message;
    EXPECT_TRUE(remote[i].run_ok);
    EXPECT_EQ(remote[i].csv, sim::sweep_csv_row(local[i]));
    remote_stats.push_back(remote[i].stats_run_json);
    local_stats.push_back(sim::stats_json_run(local[i]));
  }
  // The reassembled remote document equals the local document bit for bit.
  EXPECT_EQ(sim::stats_json_document(remote_stats),
            sim::stats_json(local));
  EXPECT_EQ(sim::stats_json_document(local_stats), sim::stats_json(local));
}

TEST(Service, PerJobErrorsTravelInTheResult) {
  LiveServer live(ServeConfig{"", /*threads=*/1, /*queue_limit=*/4});
  Client client;
  client.connect(live.path());

  // A watchdog-doomed config: valid to ADMIT, fails to RUN. The failure
  // must come back as run_ok=false with the error in the CSV row, exactly
  // like the local harness, not as a protocol error.
  JobSpec doomed = small_job("count");
  doomed.job.options.cfg.watchdog.max_cycles = 10;  // trips immediately
  const Response sub = client.submit(doomed);
  ASSERT_TRUE(sub.ok) << sub.message;
  const Response result = client.result(sub.doc.u64_at("id"), true);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_FALSE(result.doc.find("run_ok")->boolean);
  EXPECT_NE(result.doc.str_at("csv").find("watchdog"), std::string::npos);
}

}  // namespace
}  // namespace mlp::serve
